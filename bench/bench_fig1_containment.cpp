// FIG1 — Vertical vs. horizontal application design (paper Fig. 1, §I).
//
// Claim regenerated: "Because the privileges of each component can be
// limited much tighter according to POLA, a subversion of one component can
// often be contained and does not infect other components."
//
// Experiment: systems of N subsystems with asset values drawn from a
// deterministic distribution and sparse residual trust edges (probability
// p that a component consumes another's replies unwrapped). An attacker
// exploits one uniformly random subsystem. Metric: expected fraction of
// total asset value captured. Vertical design = one protection domain
// (complete propagation graph). Series: N sweep and p sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/manifest.h"
#include "core/trust_graph.h"
#include "util/rng.h"
#include "util/table.h"

using namespace lateral;

namespace {

std::vector<core::Manifest> make_system(std::size_t n, double trust_edge_prob,
                                        std::uint64_t seed) {
  util::Xoshiro rng(seed);
  std::vector<core::Manifest> manifests(n);
  for (std::size_t i = 0; i < n; ++i) {
    manifests[i].name = "comp" + std::to_string(i);
    // Asset values spread over two orders of magnitude, like real apps
    // (TLS keys vs. a rendered page).
    manifests[i].asset_value = 1.0 + static_cast<double>(rng.below(100));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.uniform() < trust_edge_prob) {
        manifests[i].channels.push_back(manifests[j].name);
        manifests[i].trusts.push_back(manifests[j].name);
      }
    }
  }
  return manifests;
}

void run_report() {
  std::printf("== FIG1: compromise containment, vertical vs horizontal ==\n");
  std::printf("metric: expected fraction of asset value captured when one\n");
  std::printf("uniformly random component is exploited (lower is better)\n\n");

  {
    // Hold the expected number of unwrapped-trust edges per component
    // constant (~0.5) as N grows: decomposing more finely with the same
    // wrapper discipline keeps improving containment.
    util::Table table({"components", "vertical", "horizontal", "improvement"});
    for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
      double vertical = 0, horizontal = 0;
      const int kTrials = 20;
      for (int t = 0; t < kTrials; ++t) {
        const auto manifests =
            make_system(n, 0.5 / static_cast<double>(n - 1), 1000 + t);
        vertical +=
            core::TrustGraph::monolithic_counterfactual(manifests).containment();
        horizontal += core::TrustGraph::from_manifests(manifests).containment();
      }
      vertical /= kTrials;
      horizontal /= kTrials;
      char vbuf[32], hbuf[32];
      std::snprintf(vbuf, sizeof vbuf, "%.3f", vertical);
      std::snprintf(hbuf, sizeof hbuf, "%.3f", horizontal);
      table.add_row({std::to_string(n), vbuf, hbuf,
                     util::fmt_ratio(vertical / horizontal)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  {
    std::printf("-- sensitivity to residual trust edges (N=16) --\n");
    std::printf("('trusts' edges are reply-consumption without a trusted\n");
    std::printf(" wrapper; p=1 degenerates to the monolith)\n\n");
    util::Table table({"edge prob p", "horizontal containment", "vs vertical"});
    for (const double p : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0}) {
      double horizontal = 0;
      const int kTrials = 20;
      for (int t = 0; t < kTrials; ++t)
        horizontal +=
            core::TrustGraph::from_manifests(make_system(16, p, 2000 + t))
                .containment();
      horizontal /= kTrials;
      char pbuf[32], hbuf[32];
      std::snprintf(pbuf, sizeof pbuf, "%.2f", p);
      std::snprintf(hbuf, sizeof hbuf, "%.3f", horizontal);
      table.add_row({pbuf, hbuf, util::fmt_ratio(1.0 / horizontal)});
    }
    std::printf("%s\n", table.render().c_str());
  }
}

void BM_ContainmentAnalysis(benchmark::State& state) {
  const auto manifests =
      make_system(static_cast<std::size_t>(state.range(0)), 0.1, 7);
  for (auto _ : state) {
    const auto graph = core::TrustGraph::from_manifests(manifests);
    benchmark::DoNotOptimize(graph.containment());
  }
}
BENCHMARK(BM_ContainmentAnalysis)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
