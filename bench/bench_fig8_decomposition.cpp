// FIG8 — The price of lateral thinking (paper §III-E "Potential
// Roadblocks").
//
// "Platform security by extensive communication control causes things to
// not work that would have worked without it" — and it costs cycles: every
// component hop is a reference-monitor crossing. This bench runs the SAME
// mail workload twice:
//   * monolithic: the engines called directly in one protection domain
//     (the vertical design of Fig. 1 left);
//   * decomposed: the full MailClient assembly, once per substrate.
// The overhead factor is the paper's trade: what you pay for containment.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "mail/client.h"
#include "microkernel/microkernel.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

constexpr int kMails = 16;

void deliver_workload(mail::ImapServer& server) {
  for (int i = 0; i < kMails; ++i) {
    (void)server.deliver(
        "INBOX",
        mail::make_message("peer@example", "alice@example",
                           "subject " + std::to_string(i),
                           "<p>body of message <b>" + std::to_string(i) +
                               "</b> with some text to render</p>"));
  }
}

struct WorkloadCost {
  Cycles sync = 0;
  Cycles read_all = 0;
  Cycles compose = 0;
};

/// Monolithic: engines in one domain; storage still goes through VPFS (the
/// crypto is a property of the storage design, not of decomposition).
WorkloadCost run_monolithic() {
  auto machine = make_machine("fig8-mono");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto blob = *kernel.create_domain(tc_spec("monolith", 16));

  mail::ImapServer server("alice", "token123");
  deliver_workload(server);
  mail::ImapClient imap([&server](const std::string& line) {
    return Result<std::string>(server.handle(line));
  });
  legacy::LegacyFilesystem disk;
  auto fs = vpfs::Vpfs::format(disk, kernel, blob, "/m", to_bytes("k"));
  mail::MailStore store(std::move(*fs));
  (void)store.create_folder("INBOX");
  (void)store.create_folder("Sent");
  mail::HtmlRenderer renderer;
  mail::AddressBook book;
  (void)book.add("bob", "bob@example");

  WorkloadCost cost;
  (void)imap.login("alice", "token123");

  Cycles t0 = machine->now();
  const std::size_t remote = *imap.select("INBOX");
  for (std::size_t i = 0; i < remote; ++i) {
    auto message = *imap.fetch(i);
    (void)store.store("INBOX", message);
  }
  (void)store.sync();
  cost.sync = machine->now() - t0;

  t0 = machine->now();
  for (int i = 0; i < kMails; ++i) {
    auto message = *store.load("INBOX", static_cast<std::size_t>(i));
    benchmark::DoNotOptimize(renderer.render(message.body));
  }
  cost.read_all = machine->now() - t0;

  t0 = machine->now();
  for (int i = 0; i < 4; ++i) {
    const std::string address = *book.lookup("bob");
    const auto message = mail::make_message("me@example", address, "re",
                                            "short reply body");
    (void)imap.append("Sent", message);
    (void)store.store("Sent", message);
  }
  cost.compose = machine->now() - t0;
  return cost;
}

WorkloadCost run_decomposed(const std::string& substrate_name,
                            hw::Machine& machine,
                            substrate::IsolationSubstrate& substrate) {
  (void)substrate_name;
  mail::ImapServer server("alice", "token123");
  deliver_workload(server);
  legacy::LegacyFilesystem disk;
  auto client = mail::MailClient::create({.substrate = &substrate,
                                          .disk = &disk,
                                          .server = &server,
                                          .vpfs_seed = to_bytes("k")});
  if (!client) return {};

  WorkloadCost cost;
  (void)(*client)->login("alice", "token123");

  Cycles t0 = machine.now();
  (void)(*client)->sync_inbox();
  cost.sync = machine.now() - t0;

  t0 = machine.now();
  for (int i = 0; i < kMails; ++i)
    benchmark::DoNotOptimize((*client)->read_mail(static_cast<std::size_t>(i)));
  cost.read_all = machine.now() - t0;

  (void)(*client)->add_contact("bob", "bob@example");
  t0 = machine.now();
  for (int i = 0; i < 4; ++i)
    (void)(*client)->compose("bob", "re", "short reply body");
  cost.compose = machine.now() - t0;
  return cost;
}

void run_report() {
  std::printf("== FIG8: the price of decomposition (mail workload) ==\n");
  std::printf("(simulated cycles; %d mails synced+read, 4 composed)\n\n",
              kMails);

  const WorkloadCost mono = run_monolithic();
  util::Table table({"design", "sync", "read all", "compose", "sync overhead"});
  table.add_row({"monolithic (direct calls)", util::fmt_cycles(mono.sync),
                 util::fmt_cycles(mono.read_all),
                 util::fmt_cycles(mono.compose), "1.00x"});

  for (const char* name : {"microkernel", "trustzone", "sgx"}) {
    auto machine = make_machine(std::string("fig8-") + name);
    auto substrate = *registry().create(name, *machine);
    const WorkloadCost cost = run_decomposed(name, *machine, *substrate);
    table.add_row({std::string("decomposed on ") + name,
                   util::fmt_cycles(cost.sync),
                   util::fmt_cycles(cost.read_all),
                   util::fmt_cycles(cost.compose),
                   util::fmt_ratio(static_cast<double>(cost.sync) /
                                   static_cast<double>(mono.sync))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: decomposition costs a bounded constant factor that\n");
  std::printf("tracks the substrate's invocation price (FIG2); the crypto\n");
  std::printf("in VPFS dominates the storage-heavy ops either way — the\n");
  std::printf("'benefits clearly outweigh these difficulties' (§III-E).\n\n");
}

void BM_DecomposedReadWallClock(benchmark::State& state) {
  auto machine = make_machine("fig8-wall");
  auto substrate = *registry().create("microkernel", *machine);
  mail::ImapServer server("alice", "token123");
  deliver_workload(server);
  legacy::LegacyFilesystem disk;
  auto client = mail::MailClient::create({.substrate = substrate.get(),
                                          .disk = &disk,
                                          .server = &server,
                                          .vpfs_seed = to_bytes("k")});
  (void)(*client)->login("alice", "token123");
  (void)(*client)->sync_inbox();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*client)->read_mail(i++ % kMails));
  }
}
BENCHMARK(BM_DecomposedReadWallClock);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
