// FIG12 — What does observability cost?
//
// lateral::trace stamps a 16-byte context onto every crossing and records
// span events into per-domain flight recorders. A tracing layer that taxes
// the batched fast path defeats the point of PR4/PR1's amortization work,
// so this benchmark drives the FIG9 workload (batch-32, 16 B echo) on
// every substrate in three modes:
//
//   baseline  — no Tracer attached at all
//   disabled  — Tracer attached but switched off (set_enabled(false))
//   enabled   — Tracer attached, a sampled trace installed on the thread
//
// Acceptance bar: enabled costs at most 5% over baseline on every
// substrate, and disabled is indistinguishable from baseline (the
// off-switch must be free — observability you pay for while not looking
// is a tax, not a tool).
//
// With --trace_export=PATH the traced run's flight recorders are also
// serialized through TraceExporter into Chrome trace_event JSON at PATH
// (CI validates the artifact with `python3 -m json.tool`).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/batch_channel.h"
#include "trace/exporter.h"
#include "trace/trace.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

constexpr const char* kSubstrates[] = {"noc",  "cheri", "microkernel",
                                       "trustzone", "ftpm", "sgx",
                                       "sep",  "tpm"};

struct Rig {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<substrate::IsolationSubstrate> substrate;
  substrate::DomainId client = 0;
  substrate::ChannelId channel = 0;
};

Rig make_rig(const std::string& substrate_name) {
  Rig rig;
  rig.machine = make_machine("fig12-" + substrate_name);
  rig.substrate = *registry().create(substrate_name, *rig.machine);
  auto server = *rig.substrate->create_domain(tc_spec("server"));
  const bool legacy_ok = has_feature(rig.substrate->info().features,
                                     substrate::Feature::legacy_hosting);
  rig.client = *rig.substrate->create_domain(
      legacy_ok ? legacy_spec("client") : tc_spec("client"));
  rig.channel = *rig.substrate->create_channel(rig.client, server,
                                               {.max_message_bytes = 1 << 16});
  (void)rig.substrate->set_handler(
      server, [](const substrate::Invocation& inv) -> Result<Bytes> {
        return Bytes(inv.data.begin(), inv.data.end());  // echo
      });
  return rig;
}

enum class Mode { baseline, disabled, enabled };

/// Cycles per call on the FIG9 batch-32 path under the given trace mode.
/// `sink` (optional, enabled mode) receives the Tracer so a caller can
/// export what the run recorded.
Cycles measure(const std::string& substrate_name, Mode mode,
               trace::Tracer* sink = nullptr) {
  Rig rig = make_rig(substrate_name);
  const Bytes data(16, 0x5A);
  (void)rig.substrate->call(rig.client, rig.channel, data);  // warm-up

  trace::Tracer local;
  trace::Tracer* tracer = sink ? sink : &local;
  if (mode != Mode::baseline) {
    rig.substrate->set_tracer(tracer);
    tracer->set_enabled(mode == Mode::enabled);
  }
  std::optional<trace::TraceScope> scope;
  if (mode == Mode::enabled) scope.emplace(tracer->begin_trace());

  const std::size_t kBatch = 32;
  runtime::BatchChannel batch(*rig.substrate, rig.client, rig.channel,
                              {.depth = kBatch, .hub = nullptr, .label = {}});
  const Cycles before = rig.machine->now();
  const int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i) (void)batch.submit(data);
    (void)batch.flush();
    while (batch.next_completion().ok()) {
    }
  }
  return (rig.machine->now() - before) /
         (kRounds * static_cast<Cycles>(kBatch));
}

double overhead_pct(Cycles baseline, Cycles enabled) {
  if (baseline == 0) return 0.0;
  return 100.0 * static_cast<double>(enabled - baseline) /
         static_cast<double>(baseline);
}

void run_report() {
  std::printf("== FIG12: tracing overhead on the batched fast path ==\n");
  std::printf("(FIG9 workload: batch-32, 16 B echo; cycles per call)\n\n");

  util::Table table({"substrate", "baseline", "trace off", "trace on",
                     "overhead", "<= 5%"});
  bool all_pass = true;
  for (const char* name : kSubstrates) {
    const Cycles baseline = measure(name, Mode::baseline);
    const Cycles off = measure(name, Mode::disabled);
    const Cycles on = measure(name, Mode::enabled);
    const double pct = overhead_pct(baseline, on);
    const bool pass = pct <= 5.0 && off == baseline;
    all_pass = all_pass && pass;
    char pct_text[32];
    std::snprintf(pct_text, sizeof pct_text, "%.1f%%", pct);
    table.add_row({name, util::fmt_cycles(baseline), util::fmt_cycles(off),
                   util::fmt_cycles(on), pct_text, pass ? "PASS" : "FAIL"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("trace off must equal baseline exactly (the off-switch is\n");
  std::printf("free); trace on pays one 16 B context per crossing plus the\n");
  std::printf("stamp, amortized across the batch.  overall: %s\n\n",
              all_pass ? "PASS" : "FAIL");
}

/// Trace one enabled run on the microkernel and serialize its flight
/// recorders to Chrome trace_event JSON at `path` (anonymous observer:
/// everything redacted, always exportable).
bool write_trace_export(const std::string& path) {
  trace::Tracer tracer;
  (void)measure("microkernel", Mode::enabled, &tracer);
  trace::TraceExporter exporter(tracer);
  auto json = exporter.chrome_trace_json({});
  if (!json.ok()) return false;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << *json;
  return static_cast<bool>(out);
}

void register_json_benchmarks() {
  // Machine-readable mirror of the report table: wall-clock time of these
  // is meaningless; the counters are the data.
  for (const char* name : kSubstrates) {
    benchmark::RegisterBenchmark(
        ("fig12/" + std::string(name)).c_str(),
        [name](benchmark::State& state) {
          const Cycles baseline = measure(name, Mode::baseline);
          const Cycles off = measure(name, Mode::disabled);
          const Cycles on = measure(name, Mode::enabled);
          for (auto _ : state) benchmark::DoNotOptimize(on);
          state.counters["baseline_cycles_per_call"] =
              static_cast<double>(baseline);
          state.counters["disabled_cycles_per_call"] =
              static_cast<double>(off);
          state.counters["enabled_cycles_per_call"] = static_cast<double>(on);
          state.counters["overhead_pct"] = overhead_pct(baseline, on);
          state.counters["within_budget"] =
              (overhead_pct(baseline, on) <= 5.0 && off == baseline) ? 1.0
                                                                     : 0.0;
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own flag before google-benchmark sees the command line.
  std::string export_path;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with("--trace_export="))
      export_path = std::string(arg.substr(15));
    else
      passthrough.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(passthrough.size());

  if (!machine_readable_output(filtered_argc, passthrough.data()))
    run_report();
  if (!export_path.empty() && !write_trace_export(export_path)) {
    std::fprintf(stderr, "fig12: trace export to %s failed\n",
                 export_path.c_str());
    return 1;
  }
  register_json_benchmarks();
  benchmark::Initialize(&filtered_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
