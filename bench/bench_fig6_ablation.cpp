// FIG6 — Ablation of the design's defences (paper §III-C/D/E).
//
// For each mechanism DESIGN.md calls out, run the concrete attack with the
// defence ON and OFF and report attack success. The paper's argument is
// exactly that these mechanisms, not good intentions, provide the security:
//   * POLA channel whitelisting (manifest + substrate)     — §III-A
//   * capability badges vs client-claimed session ids      — §III-D
//   * memory encryption vs the physical bus attacker       — §II-D
//   * IOMMU vs malicious device DMA                        — §II-D
//   * secure-world secondary isolation (TrustZone)         — §II-B
//   * sealed-state freshness (NV counter) vs rollback      — §III-D
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/session.h"
#include "hw/attacker.h"
#include "microkernel/microkernel.h"
#include "trustzone/trustzone.h"
#include "util/table.h"
#include "vpfs/vpfs.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

const char* outcome(bool attack_succeeded) {
  return attack_succeeded ? "SUCCEEDS" : "blocked";
}

// --- 1. POLA channel whitelisting ------------------------------------------
std::pair<bool, bool> ablate_pola() {
  auto machine = make_machine("pola");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto victim = *kernel.create_domain(tc_spec("addressbook"));
  auto attacker = *kernel.create_domain(tc_spec("render"));
  (void)kernel.set_handler(victim,
                           [](const substrate::Invocation&) -> Result<Bytes> {
                             return to_bytes("all my contacts");
                           });

  // Defence ON: no channel was declared, none exists -> call impossible.
  const bool on_success = false;  // there is no channel id to even name
  // Defence OFF: someone wired a channel "just in case" (the vertical
  // design's default of maximal ambient connectivity).
  auto channel = *kernel.create_channel(attacker, victim);
  const bool off_success =
      kernel.call(attacker, channel, to_bytes("gimme")).ok();
  return {off_success, on_success};
}

// --- 2. Confused deputy: badges vs claimed ids -------------------------------
std::pair<bool, bool> ablate_badges() {
  core::SessionDemux<int> accounts;
  const std::uint64_t alice = 0xA11CE, mallory = 0x3A770;
  accounts.session_by_badge(alice) = 1000;
  accounts.session_by_badge(mallory) = 10;

  // Defence OFF: deputy demuxes by the id the client CLAIMS.
  bool off_success = false;
  {
    auto session = accounts.unsafe_session_by_claimed_id(alice);
    if (session.ok()) {
      **session -= 1000;  // Mallory spends Alice's balance
      off_success = accounts.session_by_badge(alice) == 0;
    }
  }
  accounts.session_by_badge(alice) = 1000;

  // Defence ON: deputy keys on the kernel-minted badge.
  substrate::Invocation invocation{1, mallory, {}};
  accounts.session_for(invocation) -= 10;
  const bool on_success = accounts.session_by_badge(alice) != 1000;
  return {off_success, on_success};
}

// --- 3. Memory encryption vs the physical bus --------------------------------
std::pair<bool, bool> ablate_memory_encryption() {
  const Bytes secret = to_bytes("MASTER-KEY-0xC0FFEE");

  // Defence OFF: component on the plain-MMU microkernel.
  auto machine_off = make_machine("bus-off");
  auto mk = *registry().create("microkernel", *machine_off);
  auto victim_off = *mk->create_domain(tc_spec("vault"));
  (void)mk->write_memory(victim_off, victim_off, 0, secret);
  hw::PhysicalAttacker probe_off(*machine_off);
  const bool off_success = !probe_off.scan(machine_off->dram(), secret).empty();

  // Defence ON: same component inside an SGX enclave.
  auto machine_on = make_machine("bus-on");
  auto sgx = *registry().create("sgx", *machine_on);
  auto victim_on = *sgx->create_domain(tc_spec("vault"));
  (void)sgx->write_memory(victim_on, victim_on, 0, secret);
  hw::PhysicalAttacker probe_on(*machine_on);
  const bool on_success = !probe_on.scan(machine_on->dram(), secret).empty();
  return {off_success, on_success};
}

// --- 4. IOMMU vs rogue DMA ----------------------------------------------------
std::pair<bool, bool> ablate_iommu() {
  auto machine = make_machine("iommu");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto victim = *kernel.create_domain(tc_spec("victim"));
  const auto frames = *kernel.domain_frames(victim);

  hw::Device rogue = kernel.make_device("rogue-nic");
  // Defence ON (default: enforcing, no mapping for this device).
  const bool on_success = rogue.dma_write(frames[0], to_bytes("pwn")).ok();
  // Defence OFF.
  kernel.iommu().set_mode(hw::Iommu::Mode::disabled);
  const bool off_success = rogue.dma_write(frames[0], to_bytes("pwn")).ok();
  return {off_success, on_success};
}

// --- 5. TrustZone secondary isolation -----------------------------------------
std::pair<bool, bool> ablate_secure_world_isolation() {
  const Bytes secret = to_bytes("drm-keys");

  auto machine_off = make_machine("tz-off");
  trustzone::TrustZone weak(*machine_off, substrate::SubstrateConfig{},
                            /*secure_world_isolation=*/false);
  auto victim_off = *weak.create_domain(tc_spec("keymaster"));
  auto rogue_off = *weak.create_domain(tc_spec("rogue-trustlet"));
  (void)weak.write_memory(victim_off, victim_off, 0, secret);
  const bool off_success =
      weak.read_memory(rogue_off, victim_off, 0, secret.size()).ok();

  auto machine_on = make_machine("tz-on");
  trustzone::TrustZone strong(*machine_on, substrate::SubstrateConfig{},
                              /*secure_world_isolation=*/true);
  auto victim_on = *strong.create_domain(tc_spec("keymaster"));
  auto rogue_on = *strong.create_domain(tc_spec("rogue-trustlet"));
  (void)strong.write_memory(victim_on, victim_on, 0, secret);
  const bool on_success =
      strong.read_memory(rogue_on, victim_on, 0, secret.size()).ok();
  return {off_success, on_success};
}

// --- 6. Freshness counter vs storage rollback ----------------------------------
std::pair<bool, bool> ablate_rollback_protection() {
  auto machine = make_machine("rollback");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto domain = *kernel.create_domain(tc_spec("wallet"));
  legacy::LegacyFilesystem disk;
  auto formatted =
      vpfs::Vpfs::format(disk, kernel, domain, "/w", to_bytes("k"));
  auto fs = std::move(*formatted);
  (void)fs->create("balance");
  (void)fs->write("balance", 0, to_bytes("1000"));
  (void)fs->sync();
  for (const auto& path : disk.list("")) (void)disk.snapshot(path);
  (void)fs->write("balance", 0, to_bytes("0500"));
  (void)fs->sync();
  fs.reset();
  for (const auto& path : disk.list("")) (void)disk.rollback(path);

  // Defence ON: mount checks the NV counter. A stack without the counter
  // would accept the (internally consistent) replayed snapshot, so the
  // OFF case succeeds by construction.
  const bool on_success = vpfs::Vpfs::mount(disk, kernel, domain, "/w").ok();
  return {true, on_success};
}

void run_report() {
  std::printf("== FIG6: defence ablations (attack success, off vs on) ==\n\n");
  util::Table table({"attack", "defence OFF", "defence ON"});

  auto add = [&](const char* name, std::pair<bool, bool> result) {
    table.add_row({name, outcome(result.first), outcome(result.second)});
  };
  add("undeclared channel use (POLA)", ablate_pola());
  add("confused deputy (badges)", ablate_badges());
  add("bus probe for keys (mem-enc)", ablate_memory_encryption());
  add("rogue device DMA (IOMMU)", ablate_iommu());
  add("trustlet cross-read (TZ secondary iso)",
      ablate_secure_world_isolation());
  add("storage rollback (NV freshness)", ablate_rollback_protection());

  std::printf("%s\n", table.render().c_str());
  std::printf("every defence flips its attack from SUCCEEDS to blocked.\n\n");
}

void BM_PolaCheck(benchmark::State& state) {
  auto machine = make_machine("pola-bench");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto a = *kernel.create_domain(tc_spec("a"));
  for (auto _ : state)
    benchmark::DoNotOptimize(kernel.send(a, 999, to_bytes("x")));
}
BENCHMARK(BM_PolaCheck);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
