// TAB1 — Substrate capability/overhead matrix (paper §II-B/C/D).
//
// Claim regenerated: "different solutions address different attacker
// models" and carry different TCB sizes and costs — the comparison that
// §II walks through in prose, as one measured table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "trustzone/trustzone.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

std::string defended_string(const substrate::SubstrateInfo& info) {
  std::string out;
  for (const auto model : info.defends_against) {
    if (!out.empty()) out += ",";
    // Short labels to keep the table narrow.
    switch (model) {
      case substrate::AttackerModel::remote_network: out += "remote"; break;
      case substrate::AttackerModel::local_software: out += "local"; break;
      case substrate::AttackerModel::physical_bus: out += "bus"; break;
      case substrate::AttackerModel::physical_intrusion: out += "intrusion"; break;
    }
  }
  return out;
}

void run_report() {
  std::printf("== TAB1: isolation substrate matrix ==\n\n");
  util::Table table({"substrate", "TCB LoC", "defends", "invoke cyc",
                     "attest cyc", "seal cyc", "features"});

  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    auto machine = make_machine(std::string("tab1-") + name);
    auto substrate = *registry().create(name, *machine);
    const auto& info = substrate->info();

    auto server = *substrate->create_domain(tc_spec("server"));
    const bool legacy_ok =
        has_feature(info.features, substrate::Feature::legacy_hosting);
    auto client = *substrate->create_domain(
        legacy_ok ? legacy_spec("client") : tc_spec("client"));
    auto channel = *substrate->create_channel(client, server);
    (void)substrate->set_handler(
        server,
        [](const substrate::Invocation&) -> Result<Bytes> { return Bytes{}; });

    (void)substrate->call(client, channel, to_bytes("warm"));
    Cycles t0 = machine->now();
    for (int i = 0; i < 8; ++i)
      (void)substrate->call(client, channel, to_bytes("x"));
    const Cycles invoke = (machine->now() - t0) / 8;

    Cycles attest = 0;
    if (has_feature(info.features, substrate::Feature::attestation)) {
      t0 = machine->now();
      (void)substrate->attest(server, to_bytes("nonce"));
      attest = machine->now() - t0;
    }
    Cycles seal = 0;
    if (has_feature(info.features, substrate::Feature::sealed_storage)) {
      t0 = machine->now();
      (void)substrate->seal(server, Bytes(64, 1));
      seal = machine->now() - t0;
    }

    table.add_row({info.name, std::to_string(info.tcb_loc),
                   defended_string(info), util::fmt_cycles(invoke),
                   attest ? util::fmt_cycles(attest) : "n/a",
                   seal ? util::fmt_cycles(seal) : "n/a",
                   substrate::features_to_string(info.features)});
  }
  // Mixed hardware/software variant from §II-D: TrustZone upgraded with
  // scratchpad-keyed software memory encryption.
  {
    auto machine = make_machine("tab1-tz-swmee");
    trustzone::TrustZone tz(
        *machine, substrate::SubstrateConfig{},
        trustzone::TrustZoneOptions{.software_memory_encryption = true});
    auto server = *tz.create_domain(tc_spec("server"));
    auto client = *tz.create_domain(legacy_spec("client"));
    auto channel = *tz.create_channel(client, server);
    (void)tz.set_handler(server, [](const substrate::Invocation&)
                                     -> Result<Bytes> { return Bytes{}; });
    (void)tz.call(client, channel, to_bytes("warm"));
    Cycles t0 = machine->now();
    for (int i = 0; i < 8; ++i)
      (void)tz.call(client, channel, to_bytes("x"));
    const Cycles invoke = (machine->now() - t0) / 8;
    t0 = machine->now();
    (void)tz.attest(server, to_bytes("nonce"));
    const Cycles attest = machine->now() - t0;
    t0 = machine->now();
    (void)tz.seal(server, Bytes(64, 1));
    const Cycles seal = machine->now() - t0;
    table.add_row({"trustzone+swmee", std::to_string(tz.info().tcb_loc),
                   defended_string(tz.info()), util::fmt_cycles(invoke),
                   util::fmt_cycles(attest), util::fmt_cycles(seal),
                   substrate::features_to_string(tz.info().features)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("reading guide (paper §II-D): only substrates with mem-enc or\n");
  std::printf("on-chip state defend the memory bus; everyone defends remote\n");
  std::printf("and local software; stronger defenses cost more per invoke.\n");
  std::printf("trustzone+swmee shows §II-D's point that the same feature can\n");
  std::printf("be a hardware/software mix; ftpm shows §II-C's substitution\n");
  std::printf("of a dedicated chip by secure-world software.\n\n");
}

void BM_SubstrateCreation(benchmark::State& state) {
  static const char* kNames[] = {"microkernel", "trustzone", "sgx", "sep",
                                 "tpm"};
  const char* name = kNames[state.range(0)];
  auto machine = make_machine("tab1-create");
  for (auto _ : state) {
    auto substrate = registry().create(name, *machine);
    benchmark::DoNotOptimize(substrate);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_SubstrateCreation)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
