// FIG9 — Amortized boundary crossing via the async batching runtime.
//
// The paper's horizontal paradigm multiplies boundary crossings; §II-B
// measures their cost and §III-A asks the unified interface to keep
// application code independent of it. lateral::runtime attacks the cost
// itself: an io_uring-style submission/completion pair over a substrate
// channel crosses the boundary once per batch instead of once per call.
//
// This benchmark drives the identical workload through the synchronous
// per-call path and through BatchChannel at several batch sizes, on every
// substrate, and reports simulated cycles per call. Acceptance bar: at
// batch 32 the batched path is at least 5x cheaper per call on the
// substrates with meaningful crossing costs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "runtime/batch_channel.h"
#include "runtime/completion_queue.h"
#include "runtime/metrics.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

struct Rig {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<substrate::IsolationSubstrate> substrate;
  substrate::DomainId client = 0;
  substrate::ChannelId channel = 0;
};

Rig make_rig(const std::string& substrate_name) {
  Rig rig;
  rig.machine = make_machine("fig9-" + substrate_name);
  rig.substrate = *registry().create(substrate_name, *rig.machine);
  auto server = *rig.substrate->create_domain(tc_spec("server"));
  const bool legacy_ok = has_feature(rig.substrate->info().features,
                                     substrate::Feature::legacy_hosting);
  rig.client = *rig.substrate->create_domain(
      legacy_ok ? legacy_spec("client") : tc_spec("client"));
  rig.channel = *rig.substrate->create_channel(rig.client, server,
                                               {.max_message_bytes = 1 << 16});
  (void)rig.substrate->set_handler(
      server, [](const substrate::Invocation& inv) -> Result<Bytes> {
        return Bytes(inv.data.begin(), inv.data.end());  // echo
      });
  return rig;
}

/// Cycles per call on the synchronous path.
Cycles measure_sync(const std::string& substrate_name, std::size_t payload) {
  Rig rig = make_rig(substrate_name);
  const Bytes data(payload, 0x5A);
  (void)rig.substrate->call(rig.client, rig.channel, data);  // warm-up
  const Cycles before = rig.machine->now();
  const int kCalls = 64;
  for (int i = 0; i < kCalls; ++i)
    (void)rig.substrate->call(rig.client, rig.channel, data);
  return (rig.machine->now() - before) / kCalls;
}

/// Cycles per call through BatchChannel at the given batch size. When a
/// hub is supplied, per-invocation submit->complete latencies land in its
/// "fig9" counters (p50/p99 below come from there).
Cycles measure_batched(const std::string& substrate_name, std::size_t payload,
                       std::size_t batch_size,
                       runtime::MetricsHub* hub = nullptr) {
  Rig rig = make_rig(substrate_name);
  const Bytes data(payload, 0x5A);
  (void)rig.substrate->call(rig.client, rig.channel, data);  // warm-up

  runtime::BatchChannel batch(*rig.substrate, rig.client, rig.channel,
                              {.depth = batch_size, .hub = hub,
                               .label = "fig9"});
  const Cycles before = rig.machine->now();
  const int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < batch_size; ++i) (void)batch.submit(data);
    (void)batch.flush();
    while (batch.next_completion().ok()) {
    }
  }
  return (rig.machine->now() - before) /
         (kRounds * static_cast<Cycles>(batch_size));
}

/// One CompletionQueue run over the bursty-plus-sparse workload.
struct CqRun {
  Cycles cycles_per_call = 0;  // work cycles only (idle gaps excluded)
  Cycles p50 = 0;              // submit->complete, log2-bucket upper bounds
  Cycles p99 = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t depth = 0;  // controller's final depth target
};

/// Drive the mixed workload through a CompletionQueue: per round, a burst
/// of back-to-back arrivals followed by a sparse phase of one arrival per
/// `tick` (tick = this substrate's measured sync per-call cost, so "sparse"
/// means the same thing on a NoC and a TPM). Fixed mode pins the
/// controller at depth 32 and rings on occupancy only — sparse stragglers
/// sit until the round-end doorbell. Adaptive mode lets the controller
/// deepen through the burst (tail-bounded) and uses a flush_age bound to
/// ring for stragglers.
CqRun measure_cq(const std::string& substrate_name, std::size_t payload,
                 bool adaptive, Cycles tick) {
  Rig rig = make_rig(substrate_name);
  const Bytes data(payload, 0x5A);
  (void)rig.substrate->call(rig.client, rig.channel, data);  // warm-up

  runtime::MetricsHub hub;
  runtime::CompletionQueueConfig cfg;
  cfg.hub = &hub;
  cfg.label = adaptive ? "fig9.adaptive" : "fig9.fixed32";
  if (adaptive) {
    cfg.adaptive = {.min_batch = 4, .max_batch = 256, .initial = 0,
                    .tail_factor = 16, .flush_age = 3 * tick,
                    .adaptive = true};
  } else {
    cfg.adaptive = {.min_batch = 32, .max_batch = 32, .initial = 32,
                    .tail_factor = 16, .flush_age = 0, .adaptive = false};
  }
  runtime::CompletionQueue cq(*rig.substrate, rig.client, rig.channel, cfg);

  constexpr int kRounds = 6;
  constexpr int kBurst = 1024;
  constexpr int kSparse = 24;
  const Cycles before = rig.machine->now();
  Cycles idle = 0;
  std::uint64_t calls = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kBurst; ++i) {
      (void)cq.submit(data);
      ++calls;
      (void)cq.maybe_doorbell();
    }
    (void)cq.doorbell();
    (void)cq.for_each_completion([](runtime::CqEvent&) {});
    for (int i = 0; i < kSparse; ++i) {
      rig.machine->advance(tick);  // the line goes quiet between arrivals
      idle += tick;
      (void)cq.submit(data);
      ++calls;
      (void)cq.maybe_doorbell();
    }
    (void)cq.doorbell();
    (void)cq.for_each_completion([](runtime::CqEvent&) {});
  }

  const auto counters = hub.counters(cfg.label).snapshot();
  CqRun run;
  run.cycles_per_call = (rig.machine->now() - before - idle) / calls;
  run.p50 = counters.latency_percentile(0.50);
  run.p99 = counters.latency_percentile(0.99);
  run.doorbells = counters.doorbells;
  run.depth = counters.adaptive_depth;
  return run;
}

void run_report() {
  std::printf("== FIG9: amortized boundary crossing (cycles per call) ==\n");
  std::printf("(16 B echo; sync = one crossing per call, batch-N = one\n");
  std::printf(" crossing per N submissions through runtime::BatchChannel)\n\n");

  const std::size_t kPayload = 16;
  util::Table table({"substrate", "sync", "batch 8", "batch 32", "batch 128",
                     "sync / batch-32", "p50@32", "p99@32"});
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    const Cycles sync = measure_sync(name, kPayload);
    const Cycles b8 = measure_batched(name, kPayload, 8);
    runtime::MetricsHub hub;
    const Cycles b32 = measure_batched(name, kPayload, 32, &hub);
    const Cycles b128 = measure_batched(name, kPayload, 128);
    const auto counters = hub.counters("fig9").snapshot();
    table.add_row({name, util::fmt_cycles(sync), util::fmt_cycles(b8),
                   util::fmt_cycles(b32), util::fmt_cycles(b128),
                   util::fmt_ratio(static_cast<double>(sync) /
                                   static_cast<double>(b32 ? b32 : 1)),
                   util::fmt_cycles(counters.latency_percentile(0.50)),
                   util::fmt_cycles(counters.latency_percentile(0.99))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("p50/p99: per-invocation submit->complete latency at batch 32\n");
  std::printf("(log2-bucket upper bounds) — amortization trades per-call\n");
  std::printf("cost for queueing delay, and the tail shows the price.\n");
  std::printf("expected shape: the heavier the substrate's fixed crossing\n");
  std::printf("cost, the more batching pays: per-call cost converges to the\n");
  std::printf("per-byte copy cost as the fixed crossing amortizes away.\n\n");

  std::printf("== FIG9b: adaptive CompletionQueue vs fixed batch-32 ==\n");
  std::printf("(bursty-plus-sparse workload: 1024 back-to-back arrivals,\n");
  std::printf(" then 24 arrivals one sync-call-cost apart, x6 rounds.\n");
  std::printf(" fixed-32 rings on occupancy only; adaptive deepens through\n");
  std::printf(" the burst and age-flushes the stragglers)\n\n");
  util::Table cq_table({"substrate", "fixed-32 c/call", "adaptive c/call",
                        "adaptive/fixed", "p99 fixed", "p99 adaptive",
                        "doorbells f/a"});
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    const Cycles tick = measure_sync(name, kPayload);
    const CqRun fixed = measure_cq(name, kPayload, /*adaptive=*/false, tick);
    const CqRun adaptive = measure_cq(name, kPayload, /*adaptive=*/true, tick);
    cq_table.add_row(
        {name, util::fmt_cycles(fixed.cycles_per_call),
         util::fmt_cycles(adaptive.cycles_per_call),
         util::fmt_ratio(static_cast<double>(fixed.cycles_per_call) /
                         static_cast<double>(adaptive.cycles_per_call
                                                 ? adaptive.cycles_per_call
                                                 : 1)),
         util::fmt_cycles(fixed.p99), util::fmt_cycles(adaptive.p99),
         std::to_string(fixed.doorbells) + "/" +
             std::to_string(adaptive.doorbells)});
  }
  std::printf("%s\n", cq_table.render().c_str());
  std::printf("the claim: against the same mixed offered load, the adaptive\n");
  std::printf("controller both raises throughput (fewer, deeper crossings\n");
  std::printf("through the burst) and cuts the p99 (small age-bounded\n");
  std::printf("flushes once the line goes quiet, where fixed-32 leaves\n");
  std::printf("stragglers parked until the next occupancy trigger).\n\n");
}

void BM_BatchFlushWallClock(benchmark::State& state) {
  // Wall-clock cost of the batching machinery itself (not modeled cycles).
  Rig rig = make_rig("microkernel");
  runtime::BatchChannel batch(
      *rig.substrate, rig.client, rig.channel,
      {.depth = static_cast<std::size_t>(state.range(0)), .hub = nullptr, .label = {}});
  const Bytes data(16, 1);
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) (void)batch.submit(data);
    benchmark::DoNotOptimize(batch.flush());
    while (batch.next_completion().ok()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchFlushWallClock)->Arg(8)->Arg(32)->Arg(128);

void register_json_benchmarks() {
  // Machine-readable mirror of the report table: one benchmark per
  // substrate, counters carrying the simulated cycles per call. Wall-clock
  // time of these is meaningless; the counters are the data.
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    benchmark::RegisterBenchmark(
        ("fig9/" + std::string(name)).c_str(),
        [name](benchmark::State& state) {
          const Cycles sync = measure_sync(name, 16);
          const Cycles b8 = measure_batched(name, 16, 8);
          runtime::MetricsHub hub;
          const Cycles b32 = measure_batched(name, 16, 32, &hub);
          const Cycles b128 = measure_batched(name, 16, 128);
          const auto counters = hub.counters("fig9").snapshot();
          for (auto _ : state) benchmark::DoNotOptimize(sync);
          state.counters["sync_cycles_per_call"] = static_cast<double>(sync);
          state.counters["batch8_cycles_per_call"] = static_cast<double>(b8);
          state.counters["batch32_cycles_per_call"] = static_cast<double>(b32);
          state.counters["batch128_cycles_per_call"] =
              static_cast<double>(b128);
          state.counters["sync_over_batch32"] =
              static_cast<double>(sync) / static_cast<double>(b32 ? b32 : 1);
          state.counters["latency_p50_batch32"] =
              static_cast<double>(counters.latency_percentile(0.50));
          state.counters["latency_p99_batch32"] =
              static_cast<double>(counters.latency_percentile(0.99));

          // FIG9b: adaptive CompletionQueue vs fixed batch-32 on the
          // bursty-plus-sparse workload (the CI smoke asserts both deltas).
          const CqRun fixed = measure_cq(name, 16, /*adaptive=*/false, sync);
          const CqRun adaptive = measure_cq(name, 16, /*adaptive=*/true,
                                            sync);
          state.counters["fixed32_cycles_per_call"] =
              static_cast<double>(fixed.cycles_per_call);
          state.counters["adaptive_cycles_per_call"] =
              static_cast<double>(adaptive.cycles_per_call);
          state.counters["adaptive_over_fixed32"] =
              static_cast<double>(fixed.cycles_per_call) /
              static_cast<double>(adaptive.cycles_per_call
                                      ? adaptive.cycles_per_call
                                      : 1);
          state.counters["latency_p50_fixed32"] =
              static_cast<double>(fixed.p50);
          state.counters["latency_p99_fixed32"] =
              static_cast<double>(fixed.p99);
          state.counters["latency_p50_adaptive"] =
              static_cast<double>(adaptive.p50);
          state.counters["latency_p99_adaptive"] =
              static_cast<double>(adaptive.p99);
          state.counters["adaptive_doorbells"] =
              static_cast<double>(adaptive.doorbells);
          state.counters["fixed32_doorbells"] =
              static_cast<double>(fixed.doorbells);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
