// FIG9 — Amortized boundary crossing via the async batching runtime.
//
// The paper's horizontal paradigm multiplies boundary crossings; §II-B
// measures their cost and §III-A asks the unified interface to keep
// application code independent of it. lateral::runtime attacks the cost
// itself: an io_uring-style submission/completion pair over a substrate
// channel crosses the boundary once per batch instead of once per call.
//
// This benchmark drives the identical workload through the synchronous
// per-call path and through BatchChannel at several batch sizes, on every
// substrate, and reports simulated cycles per call. Acceptance bar: at
// batch 32 the batched path is at least 5x cheaper per call on the
// substrates with meaningful crossing costs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "runtime/batch_channel.h"
#include "runtime/metrics.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

struct Rig {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<substrate::IsolationSubstrate> substrate;
  substrate::DomainId client = 0;
  substrate::ChannelId channel = 0;
};

Rig make_rig(const std::string& substrate_name) {
  Rig rig;
  rig.machine = make_machine("fig9-" + substrate_name);
  rig.substrate = *registry().create(substrate_name, *rig.machine);
  auto server = *rig.substrate->create_domain(tc_spec("server"));
  const bool legacy_ok = has_feature(rig.substrate->info().features,
                                     substrate::Feature::legacy_hosting);
  rig.client = *rig.substrate->create_domain(
      legacy_ok ? legacy_spec("client") : tc_spec("client"));
  rig.channel = *rig.substrate->create_channel(rig.client, server,
                                               {.max_message_bytes = 1 << 16});
  (void)rig.substrate->set_handler(
      server, [](const substrate::Invocation& inv) -> Result<Bytes> {
        return Bytes(inv.data.begin(), inv.data.end());  // echo
      });
  return rig;
}

/// Cycles per call on the synchronous path.
Cycles measure_sync(const std::string& substrate_name, std::size_t payload) {
  Rig rig = make_rig(substrate_name);
  const Bytes data(payload, 0x5A);
  (void)rig.substrate->call(rig.client, rig.channel, data);  // warm-up
  const Cycles before = rig.machine->now();
  const int kCalls = 64;
  for (int i = 0; i < kCalls; ++i)
    (void)rig.substrate->call(rig.client, rig.channel, data);
  return (rig.machine->now() - before) / kCalls;
}

/// Cycles per call through BatchChannel at the given batch size. When a
/// hub is supplied, per-invocation submit->complete latencies land in its
/// "fig9" counters (p50/p99 below come from there).
Cycles measure_batched(const std::string& substrate_name, std::size_t payload,
                       std::size_t batch_size,
                       runtime::MetricsHub* hub = nullptr) {
  Rig rig = make_rig(substrate_name);
  const Bytes data(payload, 0x5A);
  (void)rig.substrate->call(rig.client, rig.channel, data);  // warm-up

  runtime::BatchChannel batch(*rig.substrate, rig.client, rig.channel,
                              {.depth = batch_size, .hub = hub,
                               .label = "fig9"});
  const Cycles before = rig.machine->now();
  const int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < batch_size; ++i) (void)batch.submit(data);
    (void)batch.flush();
    while (batch.next_completion().ok()) {
    }
  }
  return (rig.machine->now() - before) /
         (kRounds * static_cast<Cycles>(batch_size));
}

void run_report() {
  std::printf("== FIG9: amortized boundary crossing (cycles per call) ==\n");
  std::printf("(16 B echo; sync = one crossing per call, batch-N = one\n");
  std::printf(" crossing per N submissions through runtime::BatchChannel)\n\n");

  const std::size_t kPayload = 16;
  util::Table table({"substrate", "sync", "batch 8", "batch 32", "batch 128",
                     "sync / batch-32", "p50@32", "p99@32"});
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    const Cycles sync = measure_sync(name, kPayload);
    const Cycles b8 = measure_batched(name, kPayload, 8);
    runtime::MetricsHub hub;
    const Cycles b32 = measure_batched(name, kPayload, 32, &hub);
    const Cycles b128 = measure_batched(name, kPayload, 128);
    const auto counters = hub.counters("fig9").snapshot();
    table.add_row({name, util::fmt_cycles(sync), util::fmt_cycles(b8),
                   util::fmt_cycles(b32), util::fmt_cycles(b128),
                   util::fmt_ratio(static_cast<double>(sync) /
                                   static_cast<double>(b32 ? b32 : 1)),
                   util::fmt_cycles(counters.latency_percentile(0.50)),
                   util::fmt_cycles(counters.latency_percentile(0.99))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("p50/p99: per-invocation submit->complete latency at batch 32\n");
  std::printf("(log2-bucket upper bounds) — amortization trades per-call\n");
  std::printf("cost for queueing delay, and the tail shows the price.\n");
  std::printf("expected shape: the heavier the substrate's fixed crossing\n");
  std::printf("cost, the more batching pays: per-call cost converges to the\n");
  std::printf("per-byte copy cost as the fixed crossing amortizes away.\n\n");
}

void BM_BatchFlushWallClock(benchmark::State& state) {
  // Wall-clock cost of the batching machinery itself (not modeled cycles).
  Rig rig = make_rig("microkernel");
  runtime::BatchChannel batch(
      *rig.substrate, rig.client, rig.channel,
      {.depth = static_cast<std::size_t>(state.range(0)), .hub = nullptr, .label = {}});
  const Bytes data(16, 1);
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) (void)batch.submit(data);
    benchmark::DoNotOptimize(batch.flush());
    while (batch.next_completion().ok()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchFlushWallClock)->Arg(8)->Arg(32)->Arg(128);

void register_json_benchmarks() {
  // Machine-readable mirror of the report table: one benchmark per
  // substrate, counters carrying the simulated cycles per call. Wall-clock
  // time of these is meaningless; the counters are the data.
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    benchmark::RegisterBenchmark(
        ("fig9/" + std::string(name)).c_str(),
        [name](benchmark::State& state) {
          const Cycles sync = measure_sync(name, 16);
          const Cycles b8 = measure_batched(name, 16, 8);
          runtime::MetricsHub hub;
          const Cycles b32 = measure_batched(name, 16, 32, &hub);
          const Cycles b128 = measure_batched(name, 16, 128);
          const auto counters = hub.counters("fig9").snapshot();
          for (auto _ : state) benchmark::DoNotOptimize(sync);
          state.counters["sync_cycles_per_call"] = static_cast<double>(sync);
          state.counters["batch8_cycles_per_call"] = static_cast<double>(b8);
          state.counters["batch32_cycles_per_call"] = static_cast<double>(b32);
          state.counters["batch128_cycles_per_call"] =
              static_cast<double>(b128);
          state.counters["sync_over_batch32"] =
              static_cast<double>(sync) / static_cast<double>(b32 ? b32 : 1);
          state.counters["latency_p50_batch32"] =
              static_cast<double>(counters.latency_percentile(0.50));
          state.counters["latency_p99_batch32"] =
              static_cast<double>(counters.latency_percentile(0.99));
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
