// FIG3 — Smart meter appliance <-> utility server (paper Fig. 3, §III-C).
//
// Claims regenerated:
//  * distributed attestation across heterogeneous substrates (TrustZone
//    meter, SGX server) establishes a mutually verified channel;
//  * the handshake is a one-time cost dominated by attestation signatures;
//  * per-reading protection overhead is bounded (crypto per record), so
//    protected telemetry throughput stays within a small factor of plain.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/attestation.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

struct Scenario {
  std::unique_ptr<hw::Machine> meter_machine;
  std::unique_ptr<hw::Machine> server_machine;
  std::unique_ptr<substrate::IsolationSubstrate> tz;
  std::unique_ptr<substrate::IsolationSubstrate> sgx;
  substrate::DomainId metering = 0;
  substrate::DomainId anonymizer = 0;
  std::unique_ptr<core::AttestationVerifier> meter_verifier;
  std::unique_ptr<core::AttestationVerifier> utility_verifier;
};

Scenario make_scenario() {
  Scenario s;
  s.meter_machine = make_machine("meter");
  s.server_machine = make_machine("server");
  s.tz = *registry().create("trustzone", *s.meter_machine);
  s.sgx = *registry().create("sgx", *s.server_machine);
  s.metering = *s.tz->create_domain(tc_spec("metering"));
  s.anonymizer = *s.sgx->create_domain(tc_spec("anonymizer"));

  s.meter_verifier =
      std::make_unique<core::AttestationVerifier>(to_bytes("mv"));
  s.meter_verifier->add_trusted_root(vendor().root_public_key());
  s.meter_verifier->expect_measurement(
      "anonymizer", tc_spec("anonymizer").image.measurement());
  s.utility_verifier =
      std::make_unique<core::AttestationVerifier>(to_bytes("uv"));
  s.utility_verifier->add_trusted_root(vendor().root_public_key());
  s.utility_verifier->expect_measurement(
      "metering", tc_spec("metering").image.measurement());
  return s;
}

void run_report() {
  std::printf("== FIG3: smart-meter <-> utility-server scenario ==\n\n");

  Scenario s = make_scenario();
  net::SecureChannelEndpoint meter(
      net::Role::initiator, to_bytes("m"),
      net::ProverConfig{s.tz.get(), s.metering},
      net::VerifierConfig{s.meter_verifier.get(), "anonymizer"});
  net::SecureChannelEndpoint utility(
      net::Role::responder, to_bytes("u"),
      net::ProverConfig{s.sgx.get(), s.anonymizer},
      net::VerifierConfig{s.utility_verifier.get(), "metering"});

  // --- Handshake cost (one-time) -------------------------------------------
  const Cycles meter_before = s.meter_machine->now();
  const Cycles server_before = s.server_machine->now();
  auto msg1 = *meter.start();
  auto msg2 = *utility.handle_msg1(msg1);
  auto msg3 = *meter.handle_msg2(msg2);
  (void)utility.handle_msg3(msg3);
  const Cycles meter_handshake = s.meter_machine->now() - meter_before;
  const Cycles server_handshake = s.server_machine->now() - server_before;

  util::Table handshake({"phase", "meter cycles (TrustZone)",
                         "server cycles (SGX)"});
  handshake.add_row({"mutual attested handshake",
                     util::fmt_cycles(meter_handshake),
                     util::fmt_cycles(server_handshake)});
  std::printf("%s\n", handshake.render().c_str());

  // --- Per-reading cost: protected vs plain ---------------------------------
  const Bytes reading = to_bytes("usage:03.217kWh;t=1719791234;tariff=A2");
  // Both modes pay the radio: wake + DMA + per-byte transmission. This is
  // what actually dominates a battery-powered meter's budget.
  constexpr Cycles kRadioWake = 5'000;
  constexpr Cycles kRadioPer16Bytes = 40;
  util::Table per_reading(
      {"mode", "meter cycles/reading", "relative", "wire bytes"});
  Cycles plain_total = 0;

  // Plain: copy + radio, no protection.
  {
    const Cycles before = s.meter_machine->now();
    const int kReadings = 64;
    for (int i = 0; i < kReadings; ++i) {
      s.meter_machine->charge(0, s.meter_machine->costs().memcpy_per_16_bytes,
                              reading.size());
      s.meter_machine->charge(kRadioWake, kRadioPer16Bytes, reading.size());
    }
    plain_total = (s.meter_machine->now() - before) / kReadings;
    per_reading.add_row({"plaintext (no protection)",
                         util::fmt_cycles(plain_total), "1.00x",
                         std::to_string(reading.size())});
  }

  // Protected: AES-CTR + HMAC record through the secure channel; charge the
  // software crypto cost on the meter.
  {
    const Cycles before = s.meter_machine->now();
    const int kReadings = 64;
    std::size_t wire_size = 0;
    for (int i = 0; i < kReadings; ++i) {
      s.meter_machine->charge(
          0, s.meter_machine->costs().sw_aes_per_16_bytes, reading.size());
      s.meter_machine->charge(
          0, s.meter_machine->costs().sw_sha_per_64_bytes / 4, reading.size());
      auto record = *meter.seal_record(reading);
      wire_size = record.size();
      s.meter_machine->charge(kRadioWake, kRadioPer16Bytes, wire_size);
      (void)utility.open_record(record);
    }
    const Cycles protected_cost = (s.meter_machine->now() - before) / kReadings;
    per_reading.add_row(
        {"attested+encrypted channel", util::fmt_cycles(protected_cost),
         util::fmt_ratio(static_cast<double>(protected_cost) /
                         static_cast<double>(std::max<Cycles>(plain_total, 1))),
         std::to_string(wire_size)});
  }
  std::printf("%s\n", per_reading.render().c_str());

  // --- Amortization: how many readings until the handshake is noise? --------
  util::Table amort({"readings sent", "handshake share of total cost"});
  const Cycles per_protected = 1 + s.meter_machine->costs().sw_aes_per_16_bytes *
                                      ((reading.size() + 15) / 16);
  for (const std::uint64_t n : {1ULL, 10ULL, 100ULL, 1000ULL, 10000ULL}) {
    const double share =
        static_cast<double>(meter_handshake) /
        static_cast<double>(meter_handshake + n * per_protected);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", share * 100.0);
    amort.add_row({std::to_string(n), buf});
  }
  std::printf("%s\n", amort.render().c_str());
  std::printf("shape: handshake is expensive (two quote signatures) but\n");
  std::printf("one-time; steady-state protection is a small constant factor.\n\n");
}

void BM_SealRecordWallClock(benchmark::State& state) {
  Scenario s = make_scenario();
  net::SecureChannelEndpoint meter(net::Role::initiator, to_bytes("m"),
                                   std::nullopt, std::nullopt);
  net::SecureChannelEndpoint utility(net::Role::responder, to_bytes("u"),
                                     std::nullopt, std::nullopt);
  auto msg1 = *meter.start();
  auto msg2 = *utility.handle_msg1(msg1);
  auto msg3 = *meter.handle_msg2(msg2);
  (void)utility.handle_msg3(msg3);
  const Bytes reading(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto record = meter.seal_record(reading);
    benchmark::DoNotOptimize(utility.open_record(*record));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SealRecordWallClock)->Arg(64)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
