// FIG7 — Covert timing-channel bandwidth vs scheduling policy (paper §II-C:
// "Using time partitioning and scheduler interference analysis,
// microkernels provide strong temporal isolation by mitigating covert
// channels").
//
// Protocol: a sender domain transmits a random bit string by modulating its
// CPU demand (burn = 1, yield = 0) one bit per scheduling epoch. A receiver
// domain runs greedy and decodes each bit from the cycles it was granted
// (slack donated => sender yielded => 0). We report decoded accuracy and
// effective bandwidth under the work-conserving scheduler, then under fixed
// time partitions.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "microkernel/scheduler.h"
#include "util/rng.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::microkernel;

namespace {

struct ChannelResult {
  double accuracy = 0;        // fraction of bits decoded correctly
  double bandwidth_bits = 0;  // usable bits per epoch (0 when accuracy ~ 1/2)
};

ChannelResult run_channel(SchedulingPolicy policy, std::size_t bits,
                          std::uint64_t seed) {
  Scheduler scheduler(policy);
  (void)scheduler.add_domain(1, 500);  // sender
  (void)scheduler.add_domain(2, 500);  // receiver
  constexpr Cycles kEpoch = 100'000;

  util::Xoshiro rng(seed);
  std::vector<bool> sent(bits);
  for (auto&& bit : sent) bit = rng.below(2) == 1;

  // Calibration epoch: receiver learns its grant when the sender yields.
  (void)scheduler.set_demand(1, 0);
  (void)scheduler.set_demand(2, kEpoch);
  const Cycles idle_grant = scheduler.run_epoch(kEpoch).at(2);

  std::size_t correct = 0;
  for (const bool bit : sent) {
    (void)scheduler.set_demand(1, bit ? kEpoch : 0);
    (void)scheduler.set_demand(2, kEpoch);
    const Cycles grant = scheduler.run_epoch(kEpoch).at(2);
    // Decode: less CPU than the calibrated idle grant => the sender burned.
    const bool decoded = grant < idle_grant;
    if (decoded == bit) ++correct;
  }

  ChannelResult result;
  result.accuracy = static_cast<double>(correct) / static_cast<double>(bits);
  // Binary symmetric channel capacity: 1 - H(p_err); report 0 near 0.5.
  const double p = std::min(std::max(1.0 - result.accuracy, 1e-9), 1.0 - 1e-9);
  const double entropy =
      -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
  result.bandwidth_bits = std::max(0.0, 1.0 - entropy);
  return result;
}

void run_report() {
  std::printf("== FIG7: covert channel bandwidth vs scheduling policy ==\n");
  std::printf("(sender modulates CPU demand; receiver reads its own grant)\n\n");

  util::Table table({"policy", "bits sent", "decode accuracy",
                     "capacity (bits/epoch)"});
  for (const std::size_t bits : {64u, 256u, 1024u}) {
    for (const auto& [policy, name] :
         {std::pair{SchedulingPolicy::work_conserving, "work-conserving"},
          std::pair{SchedulingPolicy::fixed_partition, "fixed-partition"}}) {
      const ChannelResult result = run_channel(policy, bits, 42 + bits);
      char acc[32], cap[32];
      std::snprintf(acc, sizeof acc, "%.1f%%", result.accuracy * 100.0);
      std::snprintf(cap, sizeof cap, "%.3f", result.bandwidth_bits);
      table.add_row({name, std::to_string(bits), acc, cap});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: the work-conserving scheduler is a ~1 bit/epoch\n");
  std::printf("channel; strict partitions push capacity to zero — the\n");
  std::printf("trade is wasted slack (see partition_switch in CostModel).\n\n");

  // The price of mitigation: utilization lost to idle partitions.
  util::Table cost({"policy", "receiver cycles/epoch (sender idle)"});
  for (const auto& [policy, name] :
       {std::pair{SchedulingPolicy::work_conserving, "work-conserving"},
        std::pair{SchedulingPolicy::fixed_partition, "fixed-partition"}}) {
    Scheduler scheduler(policy);
    (void)scheduler.add_domain(1, 500);
    (void)scheduler.add_domain(2, 500);
    (void)scheduler.set_demand(1, 0);
    (void)scheduler.set_demand(2, 100'000);
    cost.add_row({name,
                  util::fmt_cycles(scheduler.run_epoch(100'000).at(2))});
  }
  std::printf("%s\n", cost.render().c_str());
}

void BM_SchedulerEpoch(benchmark::State& state) {
  Scheduler scheduler(state.range(0) == 0 ? SchedulingPolicy::work_conserving
                                          : SchedulingPolicy::fixed_partition);
  for (std::uint64_t d = 1; d <= 16; ++d) {
    (void)scheduler.add_domain(d, 62);
    (void)scheduler.set_demand(d, d * 1000);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(scheduler.run_epoch(100'000));
  state.SetLabel(state.range(0) == 0 ? "work-conserving" : "fixed-partition");
}
BENCHMARK(BM_SchedulerEpoch)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
