// FIG5 — Crypto building-block costs (paper §II-D: memory encryption,
// attestation signatures, accelerated cryptographic operations).
//
// Wall-clock throughput and latency of every from-scratch primitive the
// isolation substrates and protocols are built on. These are the "hardware
// requirements" costs of §II-D expressed in software.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/dh.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "util/rng.h"

using namespace lateral;
using namespace lateral::crypto;

namespace {

void BM_Sha256(benchmark::State& state) {
  util::Xoshiro rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  util::Xoshiro rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_Aes128Ctr(benchmark::State& state) {
  util::Xoshiro rng(3);
  Aes128Key key{};
  const Bytes key_bytes = rng.bytes(16);
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  std::uint64_t nonce = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(aes128_ctr(key, ++nonce, data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_AeadSealOpen(benchmark::State& state) {
  const Aead aead(to_bytes("bench key"));
  util::Xoshiro rng(4);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    auto box = aead.seal(++nonce, {}, data);
    benchmark::DoNotOptimize(aead.open(box, {}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSealOpen)->Arg(64)->Arg(4096);

void BM_HmacDrbg(benchmark::State& state) {
  HmacDrbg drbg(to_bytes("seed"));
  for (auto _ : state)
    benchmark::DoNotOptimize(drbg.generate(static_cast<std::size_t>(state.range(0))));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacDrbg)->Arg(32)->Arg(1024);

void BM_RsaSign(benchmark::State& state) {
  HmacDrbg drbg(to_bytes("rsa-bench"));
  const RsaKeyPair kp =
      RsaKeyPair::generate(drbg, static_cast<std::size_t>(state.range(0)));
  const Bytes message = to_bytes("quote body");
  for (auto _ : state) benchmark::DoNotOptimize(rsa_sign(kp, message));
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
  HmacDrbg drbg(to_bytes("rsa-bench"));
  const RsaKeyPair kp =
      RsaKeyPair::generate(drbg, static_cast<std::size_t>(state.range(0)));
  const Bytes message = to_bytes("quote body");
  const Bytes sig = rsa_sign(kp, message);
  for (auto _ : state)
    benchmark::DoNotOptimize(rsa_verify(kp.pub, message, sig));
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void BM_RsaKeygen(benchmark::State& state) {
  std::uint64_t salt = 0;
  for (auto _ : state) {
    HmacDrbg drbg(to_bytes("keygen" + std::to_string(++salt)));
    benchmark::DoNotOptimize(
        RsaKeyPair::generate(drbg, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_DhExchange(benchmark::State& state) {
  HmacDrbg drbg(to_bytes("dh-bench"));
  const DhGroup& group = DhGroup::oakley1();
  const DhKeyPair peer = DhKeyPair::generate(group, drbg);
  for (auto _ : state) {
    const DhKeyPair mine = DhKeyPair::generate(group, drbg);
    benchmark::DoNotOptimize(
        dh_shared_secret(group, mine.private_key, peer.public_key));
  }
}
BENCHMARK(BM_DhExchange)->Unit(benchmark::kMillisecond);

void BM_MerkleUpdate(benchmark::State& state) {
  MerkleTree tree(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro rng(5);
  const Bytes leaf = rng.bytes(64);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.update_leaf(index++ % tree.leaf_count(), leaf));
  }
}
BENCHMARK(BM_MerkleUpdate)->Arg(64)->Arg(4096);

void BM_BignumPowmod(benchmark::State& state) {
  HmacDrbg drbg(to_bytes("powmod"));
  const Bignum m = Bignum::generate_prime(drbg, static_cast<std::size_t>(state.range(0)));
  const Bignum base = Bignum::random_below(drbg, m);
  const Bignum exp = Bignum::random_below(drbg, m);
  for (auto _ : state) benchmark::DoNotOptimize(base.powmod(exp, m));
}
BENCHMARK(BM_BignumPowmod)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== FIG5: crypto primitive costs (from-scratch software) ==\n");
  std::printf("context: these are the costs behind memory encryption\n");
  std::printf("(AES/16B), measurements (SHA/64B) and quotes (RSA sign).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
