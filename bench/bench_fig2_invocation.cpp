// FIG2 — Component invocation cost across isolation substrates (paper
// Fig. 2, §II-B).
//
// Claim regenerated: all five technologies instantiate the same structural
// template (the identical code below drives every one through the unified
// interface), but their invocation costs span four orders of magnitude —
// from microkernel IPC to TPM commands. Series: substrate x payload size,
// in deterministic simulated cycles.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

/// One cross-domain call round trip on the given substrate; returns
/// simulated cycles consumed.
Cycles measure_call(const std::string& substrate_name, std::size_t payload) {
  auto machine = make_machine("fig2-" + substrate_name);
  auto substrate = *registry().create(substrate_name, *machine);

  auto server = *substrate->create_domain(tc_spec("server"));
  const bool legacy_ok = has_feature(substrate->info().features,
                                     substrate::Feature::legacy_hosting);
  auto client = *substrate->create_domain(
      legacy_ok ? legacy_spec("client") : tc_spec("client"));
  auto channel = *substrate->create_channel(client, server,
                                            {.max_message_bytes = 1 << 16});
  (void)substrate->set_handler(
      server, [](const substrate::Invocation& inv) -> Result<Bytes> {
        return Bytes(inv.data.begin(), inv.data.end());  // echo
      });

  const Bytes payload_bytes(payload, 0x5A);
  // Warm one call (TPM late launch etc.), then measure steady state.
  (void)substrate->call(client, channel, payload_bytes);
  const Cycles before = machine->now();
  const int kCalls = 16;
  for (int i = 0; i < kCalls; ++i)
    (void)substrate->call(client, channel, payload_bytes);
  return (machine->now() - before) / kCalls;
}

void run_report() {
  std::printf("== FIG2: invocation round-trip cost per substrate ==\n");
  std::printf("(simulated cycles; identical driver code on every substrate\n");
  std::printf(" via the unified interface — the paper's POSIX analogy)\n\n");

  const std::size_t payloads[] = {16, 256, 4096};
  struct Row {
    std::string name;
    Cycles cost[3] = {0, 0, 0};
  };
  std::vector<Row> rows;
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    Row row{name, {}};
    for (int i = 0; i < 3; ++i) row.cost[i] = measure_call(name, payloads[i]);
    rows.push_back(std::move(row));
  }
  Cycles baseline = 1;
  for (const Row& row : rows)
    if (row.name == "microkernel") baseline = row.cost[0];

  util::Table table({"substrate", "16 B", "256 B", "4 KiB", "vs microkernel"});
  for (const Row& row : rows) {
    table.add_row({row.name, util::fmt_cycles(row.cost[0]),
                   util::fmt_cycles(row.cost[1]), util::fmt_cycles(row.cost[2]),
                   util::fmt_ratio(static_cast<double>(row.cost[0]) /
                                   static_cast<double>(baseline))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: call gate < IPC < SMC < ECALL < mailbox\n");
  std::printf("<< TPM command; the software fTPM sits at SMC cost, ~1000x\n");
  std::printf("below the discrete chip it replaces.\n\n");
}

void BM_InvokeWallClock(benchmark::State& state) {
  // Wall-clock cost of the simulation itself (not the modeled hardware).
  auto machine = make_machine("fig2-wall");
  auto substrate = *registry().create("microkernel", *machine);
  auto server = *substrate->create_domain(tc_spec("server"));
  auto client = *substrate->create_domain(tc_spec("client"));
  auto channel = *substrate->create_channel(client, server);
  (void)substrate->set_handler(
      server, [](const substrate::Invocation&) -> Result<Bytes> {
        return Bytes{};
      });
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(substrate->call(client, channel, payload));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InvokeWallClock)->Arg(16)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
