// FIG16 — What does the health plane cost?
//
// lateral::health claims to be ALWAYS-ON: a sampling cycle-profiler on the
// crossing fast path, SLO watchdogs over the MetricsHub, and a hash-chained
// audit log behind the refusal paths. An always-on plane that taxes the
// batched fast path defeats FIG9/FIG12's amortization work, so this
// benchmark drives the FIG9 workload (batch-32, 16 B echo) on every
// substrate in three modes:
//
//   baseline  — no profiler attached at all
//   disabled  — CycleProfiler attached but switched off (set_enabled(false))
//   enabled   — CycleProfiler attached and sampling (1 in 8 crossings)
//
// Acceptance bar: enabled costs at most 5% over baseline on every
// substrate, and disabled is bit-exact with baseline (the off-switch must
// charge exactly zero simulated cycles — health you pay for while not
// looking is a tax, not a plane).
//
// Two more rows quantify the rest of the plane:
//   - SLO breach detection latency: simulated cycles from the first bad
//     window to the HealthMonitor raising the breach (multi-window burn
//     rate: both the short and the long window must go bad).
//   - Audit chain verification: wall-clock cost for an operator to verify
//     a sealed 256-record segment (hash chain + quote + seal binding).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "health/audit.h"
#include "health/profiler.h"
#include "health/slo.h"
#include "runtime/batch_channel.h"
#include "runtime/metrics.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

constexpr const char* kSubstrates[] = {"noc",  "cheri", "microkernel",
                                       "trustzone", "ftpm", "sgx",
                                       "sep",  "tpm"};

struct Rig {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<substrate::IsolationSubstrate> substrate;
  substrate::DomainId client = 0;
  substrate::ChannelId channel = 0;
};

Rig make_rig(const std::string& substrate_name) {
  Rig rig;
  rig.machine = make_machine("fig16-" + substrate_name);
  rig.substrate = *registry().create(substrate_name, *rig.machine);
  auto server = *rig.substrate->create_domain(tc_spec("server"));
  const bool legacy_ok = has_feature(rig.substrate->info().features,
                                     substrate::Feature::legacy_hosting);
  rig.client = *rig.substrate->create_domain(
      legacy_ok ? legacy_spec("client") : tc_spec("client"));
  rig.channel = *rig.substrate->create_channel(rig.client, server,
                                               {.max_message_bytes = 1 << 16});
  (void)rig.substrate->set_handler(
      server, [](const substrate::Invocation& inv) -> Result<Bytes> {
        return Bytes(inv.data.begin(), inv.data.end());  // echo
      });
  return rig;
}

enum class Mode { baseline, disabled, enabled };

/// Cycles per call on the FIG9 batch-32 path under the given profiler mode.
Cycles measure(const std::string& substrate_name, Mode mode) {
  Rig rig = make_rig(substrate_name);
  const Bytes data(16, 0x5A);
  (void)rig.substrate->call(rig.client, rig.channel, data);  // warm-up

  health::CycleProfiler profiler;
  if (mode != Mode::baseline) {
    rig.substrate->set_profiler(&profiler);
    profiler.set_enabled(mode == Mode::enabled);
  }

  const std::size_t kBatch = 32;
  runtime::BatchChannel batch(*rig.substrate, rig.client, rig.channel,
                              {.depth = kBatch, .hub = nullptr, .label = {}});
  const Cycles before = rig.machine->now();
  const int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i) (void)batch.submit(data);
    (void)batch.flush();
    while (batch.next_completion().ok()) {
    }
  }
  return (rig.machine->now() - before) /
         (kRounds * static_cast<Cycles>(kBatch));
}

double overhead_pct(Cycles baseline, Cycles enabled) {
  if (baseline == 0) return 0.0;
  return 100.0 * static_cast<double>(enabled - baseline) /
         static_cast<double>(baseline);
}

/// Simulated cycles from SLO violation onset to the HealthMonitor raising
/// the breach (multi-window burn rate; error-rate objective).
Cycles measure_slo_detection() {
  auto machine = make_machine("fig16-slo");
  runtime::MetricsHub hub;
  health::HealthMonitor monitor(
      {.hub = &hub, .clock = machine.get(), .label = "fig16"});

  core::SloPolicy policy;
  policy.error_permille = 50;     // >5% errors is a breach
  policy.window_cycles = 10'000;  // short window
  policy.burn_windows = 4;        // long window = 40'000 cycles
  (void)monitor.watch("svc", policy, "svc");

  auto svc = hub.counters("svc");
  // Healthy warm-up: fill both windows with clean traffic.
  for (int i = 0; i < 64; ++i) {
    machine->advance(1'000);
    svc->submitted += 100;
    svc->completed += 100;
    (void)monitor.tick();
  }
  // Violation: ~9% of offered load rejected, every tick from now on.
  for (int i = 0; i < 256; ++i) {
    machine->advance(1'000);
    svc->submitted += 90;
    svc->completed += 90;
    svc->rejected += 10;
    const auto events = monitor.tick();
    for (const health::HealthEvent& event : events)
      if (event.kind == health::HealthEvent::Kind::error_rate_breach)
        return monitor.stats().mean_detect_cycles();
  }
  return 0;  // never detected: the JSON consumer treats 0 as failure
}

/// A sealed, quote-bound 256-record segment, as an operator would pull it.
/// The seal is attested by a trusted domain (on SGX only enclaves quote).
health::AuditSegment make_audit_segment(Rig& rig) {
  const auto auditor = *rig.substrate->create_domain(tc_spec("auditor"));
  health::AuditLog log(rig.machine.get());
  for (int i = 0; i < 256; ++i)
    log.append(health::AuditKind::ticket_rejected, "meter",
               Errc::ticket_replayed, "bench");
  return *log.segment(0, *rig.substrate, auditor);
}

void run_report() {
  std::printf("== FIG16: health-plane overhead on the batched fast path ==\n");
  std::printf("(FIG9 workload: batch-32, 16 B echo; cycles per call;\n");
  std::printf(" profiler samples 1 in 8 crossings when enabled)\n\n");

  util::Table table({"substrate", "baseline", "health off", "health on",
                     "overhead", "<= 5%"});
  bool all_pass = true;
  for (const char* name : kSubstrates) {
    const Cycles baseline = measure(name, Mode::baseline);
    const Cycles off = measure(name, Mode::disabled);
    const Cycles on = measure(name, Mode::enabled);
    const double pct = overhead_pct(baseline, on);
    const bool pass = pct <= 5.0 && off == baseline;
    all_pass = all_pass && pass;
    char pct_text[32];
    std::snprintf(pct_text, sizeof pct_text, "%.1f%%", pct);
    table.add_row({name, util::fmt_cycles(baseline), util::fmt_cycles(off),
                   util::fmt_cycles(on), pct_text, pass ? "PASS" : "FAIL"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("health off must equal baseline exactly (the off-switch is\n");
  std::printf("free); health on pays one profile stamp per 8 crossings,\n");
  std::printf("amortized across the batch.  overall: %s\n\n",
              all_pass ? "PASS" : "FAIL");

  const Cycles detect = measure_slo_detection();
  std::printf("SLO breach detection (error rate, 10k-cycle window, 4 burn\n");
  std::printf("windows): %llu cycles from onset to alert\n\n",
              static_cast<unsigned long long>(detect));
}

void register_json_benchmarks() {
  // Machine-readable mirror of the report table (BENCH_FIG16.json): the
  // counters are the data, the wall-clock time of these is meaningless —
  // except fig16/audit_verify, which really is wall-clock verifier cost.
  for (const char* name : kSubstrates) {
    benchmark::RegisterBenchmark(
        ("fig16/" + std::string(name)).c_str(),
        [name](benchmark::State& state) {
          const Cycles baseline = measure(name, Mode::baseline);
          const Cycles off = measure(name, Mode::disabled);
          const Cycles on = measure(name, Mode::enabled);
          for (auto _ : state) benchmark::DoNotOptimize(on);
          state.counters["baseline_cycles_per_call"] =
              static_cast<double>(baseline);
          state.counters["disabled_cycles_per_call"] =
              static_cast<double>(off);
          state.counters["enabled_cycles_per_call"] = static_cast<double>(on);
          state.counters["overhead_pct"] = overhead_pct(baseline, on);
          state.counters["zero_when_off"] = off == baseline ? 1.0 : 0.0;
          state.counters["within_budget"] =
              (overhead_pct(baseline, on) <= 5.0 && off == baseline) ? 1.0
                                                                     : 0.0;
        });
  }

  benchmark::RegisterBenchmark("fig16/slo_detection",
                               [](benchmark::State& state) {
                                 const Cycles detect = measure_slo_detection();
                                 for (auto _ : state)
                                   benchmark::DoNotOptimize(detect);
                                 state.counters["detect_cycles"] =
                                     static_cast<double>(detect);
                                 state.counters["detected"] =
                                     detect > 0 ? 1.0 : 0.0;
                               });

  benchmark::RegisterBenchmark(
      "fig16/audit_verify_256", [](benchmark::State& state) {
        // Operator-side wall-clock cost: hash-chain 256 records, check the
        // quote and the seal binding. Built once, verified per iteration.
        Rig rig = make_rig("sgx");
        const health::AuditSegment segment = make_audit_segment(rig);
        health::AuditVerifyConfig config;
        config.vendor_root = vendor().root_public_key();
        bool ok = true;
        for (auto _ : state) {
          ok = ok && health::verify_segment(segment, config).ok();
          benchmark::DoNotOptimize(ok);
        }
        state.SetItemsProcessed(state.iterations());
        state.counters["records_per_segment"] = 256;
        state.counters["verified"] = ok ? 1.0 : 0.0;
      });
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
