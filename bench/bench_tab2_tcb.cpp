// TAB2 — Per-component TCB of the decomposed email client vs the monolith
// (paper §II-A "the isolation substrate constitutes the component's TCB",
// §III-B/C email-client decomposition).
//
// Claim regenerated: in the horizontal design, each component's TCB is its
// own code + its substrate + the few peers it consumes unwrapped — a
// fraction of the monolith, where every subsystem carries every other.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/manifest.h"
#include "core/tcb.h"
#include "util/table.h"

using namespace lateral;

namespace {

constexpr const char* kEmailSystem = R"(
component tls {
  substrate sgx
  channel imap
  assets 10
  loc 4000
}
component imap {
  substrate microkernel
  channel tls
  channel render
  channel storage
  channel addressbook
  channel input
  assets 2
  loc 8000
}
component render {
  substrate microkernel
  channel imap
  trusts imap      # consumes fetched mail bodies unwrapped
  assets 1
  loc 30000
}
component addressbook {
  substrate microkernel
  channel imap
  assets 5
  loc 2000
}
component input {
  substrate microkernel
  channel imap
  assets 4
  loc 3000
}
component storage {
  substrate microkernel
  channel imap
  assets 6
  loc 3000
}
)";

void run_report() {
  std::printf("== TAB2: TCB size, decomposed email client vs monolith ==\n\n");
  auto manifests = core::parse_manifests(kEmailSystem);
  if (!manifests) {
    std::printf("manifest error\n");
    return;
  }
  const std::map<std::string, std::uint64_t> substrate_loc = {
      {"microkernel", 10'000}, {"sgx", 20'000}};

  const auto reports = core::tcb_of_manifests(*manifests, substrate_loc);
  const std::uint64_t monolith =
      core::monolithic_tcb(*manifests, 10'000);

  util::Table table({"component", "own LoC", "substrate", "trusted peers",
                     "total TCB", "vs monolith"});
  std::uint64_t worst = 0;
  for (const auto& report : reports) {
    worst = std::max(worst, report.total());
    table.add_row(
        {report.component, std::to_string(report.own_loc),
         std::to_string(report.substrate_loc),
         std::to_string(report.trusted_peer_loc),
         std::to_string(report.total()),
         util::fmt_ratio(static_cast<double>(report.total()) /
                         static_cast<double>(monolith))});
  }
  table.add_row({"monolithic blob", "-", "-", "-", std::to_string(monolith),
                 "1.00x"});
  std::printf("%s\n", table.render().c_str());
  std::printf("worst decomposed component carries %.0f%% of the monolith's "
              "TCB;\nthe TLS keys' TCB shrinks to %.0f%%.\n\n",
              100.0 * static_cast<double>(worst) / static_cast<double>(monolith),
              100.0 * static_cast<double>(reports[0].total()) /
                  static_cast<double>(monolith));
}

void BM_TcbAnalysis(benchmark::State& state) {
  auto manifests = core::parse_manifests(kEmailSystem);
  const std::map<std::string, std::uint64_t> substrate_loc = {
      {"microkernel", 10'000}, {"sgx", 20'000}};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::tcb_of_manifests(*manifests, substrate_loc));
}
BENCHMARK(BM_TcbAnalysis);

void BM_ManifestParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(core::parse_manifests(kEmailSystem));
}
BENCHMARK(BM_ManifestParse);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
