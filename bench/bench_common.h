// Shared helpers for the benchmark binaries.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/standard_registry.h"
#include "hw/machine.h"
#include "substrate/substrate.h"
#include "util/types.h"

namespace lateral::bench {

/// True when a machine-readable google-benchmark format (json/csv) was
/// requested on the command line. The human-facing printf reports must then
/// stay off stdout so the emitted document remains parseable — this is how
/// BENCH_FIG*.json files are produced:
///   bench_figN --benchmark_format=json > BENCH_FIGN.json
inline bool machine_readable_output(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with("--benchmark_format=") &&
        arg != "--benchmark_format=console")
      return true;
  }
  return false;
}

inline hw::Vendor& vendor() {
  static hw::Vendor v(/*seed=*/0xBE7C4, /*key_bits=*/512);
  return v;
}

inline std::unique_ptr<hw::Machine> make_machine(const std::string& name) {
  hw::MachineConfig config;
  config.name = name;
  return std::make_unique<hw::Machine>(config, vendor(), to_bytes("bench-rom"));
}

inline substrate::SubstrateRegistry& registry() {
  static substrate::SubstrateRegistry r = core::make_standard_registry();
  return r;
}

inline substrate::DomainSpec tc_spec(const std::string& name,
                                     std::size_t pages = 2) {
  substrate::DomainSpec spec;
  spec.name = name;
  spec.kind = substrate::DomainKind::trusted_component;
  spec.image = {name, to_bytes("code:" + name)};
  spec.memory_pages = pages;
  return spec;
}

inline substrate::DomainSpec legacy_spec(const std::string& name,
                                         std::size_t pages = 4) {
  auto spec = tc_spec(name, pages);
  spec.kind = substrate::DomainKind::legacy;
  return spec;
}

}  // namespace lateral::bench
