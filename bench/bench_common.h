// Shared helpers for the benchmark binaries.
#pragma once

#include <memory>
#include <string>

#include "core/standard_registry.h"
#include "hw/machine.h"
#include "substrate/substrate.h"
#include "util/types.h"

namespace lateral::bench {

inline hw::Vendor& vendor() {
  static hw::Vendor v(/*seed=*/0xBE7C4, /*key_bits=*/512);
  return v;
}

inline std::unique_ptr<hw::Machine> make_machine(const std::string& name) {
  hw::MachineConfig config;
  config.name = name;
  return std::make_unique<hw::Machine>(config, vendor(), to_bytes("bench-rom"));
}

inline substrate::SubstrateRegistry& registry() {
  static substrate::SubstrateRegistry r = core::make_standard_registry();
  return r;
}

inline substrate::DomainSpec tc_spec(const std::string& name,
                                     std::size_t pages = 2) {
  substrate::DomainSpec spec;
  spec.name = name;
  spec.kind = substrate::DomainKind::trusted_component;
  spec.image = {name, to_bytes("code:" + name)};
  spec.memory_pages = pages;
  return spec;
}

inline substrate::DomainSpec legacy_spec(const std::string& name,
                                         std::size_t pages = 4) {
  auto spec = tc_spec(name, pages);
  spec.kind = substrate::DomainKind::legacy;
  return spec;
}

}  // namespace lateral::bench
