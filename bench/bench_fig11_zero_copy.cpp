// FIG11 — Zero-copy shared-memory data plane: grant regions +
// scatter-gather batching.
//
// FIG9 amortized the *fixed* crossing cost; what remains is the per-byte
// copy, and for bulk payloads it dominates every substrate's message cost.
// The grant-region data plane removes it: payload lives in a shared region
// (produced in place), and the invocation carries a 16-byte descriptor
// instead of the bytes. The crossing cost becomes O(descriptors), not
// O(payload) — per-crossing cycles independent of payload size.
//
// This benchmark drives the identical bulk workload (batch of 32
// invocations per flush, small reply) through:
//   copy — BatchChannel::submit: every payload byte is copied across by
//          call_batch's delivery (already single-copy: moved buffers);
//   zero-copy — BatchChannel::submit_sg: payload resident in a grant
//          region, consumer reads it in place via region_view (constant
//          cost per descriptor).
// The one-time region map cost is paid at setup and reported separately;
// in steady state data is produced directly into the region, so no staging
// copy appears on the measured path (producers that must retrofit-stage pay
// one memcpy — see RegionPool::stage).
//
// TPM/fTPM have no memory both sides can address (supports_regions() =
// false): their zero-copy column falls back to the copy path, which is the
// exact behaviour composed systems get from region_between's
// no_region_support.
//
// Acceptance bar (ISSUE 4): at 64 KiB the zero-copy path is >= 10x cheaper
// per call than the copy path on microkernel, trustzone, and sgx, and its
// per-call cycles are flat across the payload sweep.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/batch_channel.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

constexpr std::size_t kBatch = 32;
constexpr std::size_t kPayloads[] = {64, 1024, 4096, 65536, 262144};
const char* const kSubstrates[] = {"noc",  "cheri", "microkernel",
                                   "trustzone", "ftpm",  "sgx",
                                   "sep",  "tpm"};

struct Rig {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<substrate::IsolationSubstrate> substrate;
  substrate::DomainId client = 0;
  substrate::DomainId server = 0;
  substrate::ChannelId channel = 0;
};

Rig make_rig(const std::string& substrate_name) {
  Rig rig;
  rig.machine = make_machine("fig11-" + substrate_name);
  rig.substrate = *registry().create(substrate_name, *rig.machine);
  rig.server = *rig.substrate->create_domain(tc_spec("server"));
  const bool legacy_ok = has_feature(rig.substrate->info().features,
                                     substrate::Feature::legacy_hosting);
  rig.client = *rig.substrate->create_domain(
      legacy_ok ? legacy_spec("client") : tc_spec("client"));
  rig.channel = *rig.substrate->create_channel(rig.client, rig.server,
                                               {.max_message_bytes = 1 << 19});
  return rig;
}

struct Measurement {
  Cycles copy_per_call = 0;  // copy path, cycles per call
  Cycles zc_per_call = 0;    // zero-copy path (= copy when unsupported)
  Cycles map_once = 0;       // one-time region map cost (both endpoints)
  bool regions = false;      // substrate realizes grant regions
};

/// Copy path: batch of `kBatch` payload-sized requests per flush; the
/// consumer acknowledges with 8 bytes.
Cycles measure_copy(Rig& rig, std::size_t payload) {
  (void)rig.substrate->set_handler(
      rig.server, [](const substrate::Invocation&) -> Result<Bytes> {
        return Bytes(8, 0xAC);
      });
  runtime::BatchChannel batch(*rig.substrate, rig.client, rig.channel,
                              {.depth = kBatch, .hub = nullptr, .label = {}});
  const Bytes data(payload, 0x5A);
  // Warm-up round so both paths start from identical machine state.
  (void)batch.submit(data);
  (void)batch.flush();
  while (batch.next_completion().ok()) {
  }
  const Cycles before = rig.machine->now();
  const int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i)
      (void)batch.submit(Bytes(data));  // move-in: one copy here, none in ring
    (void)batch.flush();
    while (batch.next_completion().ok()) {
    }
  }
  return (rig.machine->now() - before) / (kRounds * kBatch);
}

/// Zero-copy path: payload is resident in a grant region (produced in
/// place at setup); each invocation submits a descriptor and the consumer
/// reads the bytes in place (region_view: constant cost per descriptor).
Result<Cycles> measure_zero_copy(Rig& rig, std::size_t payload,
                                 Cycles* map_once) {
  auto region =
      rig.substrate->create_region(rig.client, rig.server, kBatch * payload);
  if (!region) return region.error();
  const Cycles map_before = rig.machine->now();
  if (const Status s = rig.substrate->map_region(rig.client, *region); !s.ok())
    return s.error();
  if (const Status s = rig.substrate->map_region(rig.server, *region); !s.ok())
    return s.error();
  *map_once = rig.machine->now() - map_before;

  substrate::IsolationSubstrate* sub = rig.substrate.get();
  const substrate::DomainId server = rig.server;
  (void)rig.substrate->set_handler(
      rig.server,
      [sub, server](const substrate::Invocation& inv) -> Result<Bytes> {
        for (const substrate::RegionDescriptor& seg : inv.segments) {
          auto view = sub->region_view(server, seg);  // in place, O(1)
          if (!view) return view.error();
          benchmark::DoNotOptimize(view->data());
        }
        return Bytes(8, 0xAC);
      });

  // Produce the payloads into the region once: in steady state bulk data is
  // born in the shared region (DMA target, producer's output buffer), so
  // this write is setup, not per-call cost.
  const Bytes data(payload, 0x5A);
  std::vector<substrate::RegionDescriptor> slots;
  slots.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    if (const Status s =
            rig.substrate->region_write(rig.client, *region, i * payload, data);
        !s.ok())
      return s.error();
    auto desc =
        rig.substrate->make_descriptor(rig.client, *region, i * payload,
                                       payload);
    if (!desc) return desc.error();
    slots.push_back(*desc);
  }

  runtime::BatchChannel batch(*rig.substrate, rig.client, rig.channel,
                              {.depth = kBatch, .hub = nullptr, .label = {}});
  const Bytes header(8, 0x11);
  (void)batch.submit_sg(header, {slots[0]});
  (void)batch.flush();
  while (batch.next_completion().ok()) {
  }
  const Cycles before = rig.machine->now();
  const int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i)
      (void)batch.submit_sg(header, {slots[i]});
    (void)batch.flush();
    while (batch.next_completion().ok()) {
    }
  }
  return (rig.machine->now() - before) / (kRounds * kBatch);
}

Measurement measure(const std::string& substrate_name, std::size_t payload) {
  Measurement m;
  {
    Rig rig = make_rig(substrate_name);
    m.copy_per_call = measure_copy(rig, payload);
  }
  Rig rig = make_rig(substrate_name);
  m.regions = rig.substrate->supports_regions();
  if (m.regions) {
    auto zc = measure_zero_copy(rig, payload, &m.map_once);
    m.regions = zc.ok();
    m.zc_per_call = zc.ok() ? *zc : m.copy_per_call;
  }
  if (!m.regions) m.zc_per_call = m.copy_per_call;  // honest fallback
  return m;
}

void run_report() {
  std::printf("== FIG11: zero-copy data plane (cycles per call) ==\n");
  std::printf("(batch %zu per flush; copy = payload copied by call_batch,\n",
              kBatch);
  std::printf(" zc = descriptor crosses, consumer reads region in place;\n");
  std::printf(" 'map once' = one-time cost of mapping both endpoints)\n\n");

  for (const char* name : kSubstrates) {
    util::Table table({"payload", "copy", "zero-copy", "copy / zc",
                       "map once"});
    bool regions = true;
    for (const std::size_t payload : kPayloads) {
      const Measurement m = measure(name, payload);
      regions = m.regions;
      table.add_row(
          {std::to_string(payload) + " B", util::fmt_cycles(m.copy_per_call),
           m.regions ? util::fmt_cycles(m.zc_per_call) : "copy (fallback)",
           util::fmt_ratio(static_cast<double>(m.copy_per_call) /
                           static_cast<double>(m.zc_per_call ? m.zc_per_call
                                                             : 1)),
           util::fmt_cycles(m.map_once)});
    }
    std::printf("-- %s%s --\n%s\n", name,
                regions ? "" : " (no region support)",
                table.render().c_str());
  }
  std::printf("expected shape: the copy column scales with payload; the\n");
  std::printf("zero-copy column is flat — the crossing carries a 16-byte\n");
  std::printf("descriptor regardless of payload size. TPM/fTPM have no\n");
  std::printf("shared memory and honestly fall back to the copy path.\n\n");
}

void register_json_benchmarks() {
  // Machine-readable mirror of the report: one benchmark per
  // (substrate, payload), counters carrying the simulated-cycle results.
  // Wall-clock time of these is meaningless; the counters are the data.
  for (const char* name : kSubstrates) {
    for (const std::size_t payload : kPayloads) {
      benchmark::RegisterBenchmark(
          ("fig11/" + std::string(name) + "/payload:" +
           std::to_string(payload))
              .c_str(),
          [name, payload](benchmark::State& state) {
            const Measurement m = measure(name, payload);
            for (auto _ : state) benchmark::DoNotOptimize(m.copy_per_call);
            state.counters["copy_cycles_per_call"] =
                static_cast<double>(m.copy_per_call);
            state.counters["zc_cycles_per_call"] =
                static_cast<double>(m.zc_per_call);
            state.counters["copy_over_zc"] =
                static_cast<double>(m.copy_per_call) /
                static_cast<double>(m.zc_per_call ? m.zc_per_call : 1);
            state.counters["region_map_once_cycles"] =
                static_cast<double>(m.map_once);
            state.counters["region_support"] = m.regions ? 1.0 : 0.0;
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
