// FIG4 — VPFS trusted-wrapper overhead (paper §III-D "Trusted Reuse";
// Weinhold & Härtig EuroSys'08).
//
// Claim regenerated: wrapping the untrusted legacy file system with
// encryption + MACs buys confidentiality and integrity at a moderate,
// bounded cost per byte. Series: sequential/random read/write throughput,
// raw legacy FS vs VPFS, across I/O sizes (wall time, plus the crypto-op
// counters the cost is made of).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "legacy/filesystem.h"
#include "microkernel/microkernel.h"
#include "util/rng.h"
#include "util/table.h"
#include "vpfs/vpfs.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

struct VpfsFixture {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<microkernel::Microkernel> kernel;
  legacy::LegacyFilesystem disk;
  std::unique_ptr<vpfs::Vpfs> fs;

  VpfsFixture() {
    machine = make_machine("fig4");
    kernel = std::make_unique<microkernel::Microkernel>(
        *machine, substrate::SubstrateConfig{});
    auto domain = *kernel->create_domain(tc_spec("storage"));
    auto formatted =
        vpfs::Vpfs::format(disk, *kernel, domain, "/v", to_bytes("k"));
    fs = std::move(*formatted);
  }
};

void BM_RawWrite(benchmark::State& state) {
  legacy::LegacyFilesystem disk;
  (void)disk.create("/f");
  const Bytes chunk(static_cast<std::size_t>(state.range(0)), 0x77);
  std::size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.write("/f", offset, chunk));
    offset = (offset + chunk.size()) % (1 << 22);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawWrite)->Arg(512)->Arg(4096)->Arg(65536);

void BM_VpfsWrite(benchmark::State& state) {
  VpfsFixture fixture;
  (void)fixture.fs->create("f");
  const Bytes chunk(static_cast<std::size_t>(state.range(0)), 0x77);
  std::size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.fs->write("f", offset, chunk));
    offset = (offset + chunk.size()) % (1 << 22);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VpfsWrite)->Arg(512)->Arg(4096)->Arg(65536);

void BM_RawRead(benchmark::State& state) {
  legacy::LegacyFilesystem disk;
  (void)disk.create("/f");
  (void)disk.write("/f", 0, Bytes(1 << 22, 0x11));
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  util::Xoshiro rng(1);
  for (auto _ : state) {
    const std::size_t offset = rng.below((1 << 22) - len);
    benchmark::DoNotOptimize(disk.read("/f", offset, len));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawRead)->Arg(512)->Arg(4096)->Arg(65536);

void BM_VpfsRead(benchmark::State& state) {
  VpfsFixture fixture;
  (void)fixture.fs->create("f");
  (void)fixture.fs->write("f", 0, Bytes(1 << 22, 0x11));
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  util::Xoshiro rng(1);
  for (auto _ : state) {
    const std::size_t offset = rng.below((1 << 22) - len);
    benchmark::DoNotOptimize(fixture.fs->read("f", offset, len));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VpfsRead)->Arg(512)->Arg(4096)->Arg(65536);

void BM_VpfsSync(benchmark::State& state) {
  VpfsFixture fixture;
  (void)fixture.fs->create("f");
  std::size_t round = 0;
  for (auto _ : state) {
    (void)fixture.fs->write("f", (round++ % 64) * 4096, Bytes(4096, 0x22));
    benchmark::DoNotOptimize(fixture.fs->sync());
  }
}
BENCHMARK(BM_VpfsSync);

void run_report() {
  std::printf("== FIG4: VPFS trusted wrapper over the untrusted legacy FS ==\n\n");

  // What one megabyte of I/O costs in crypto operations, and that the
  // guarantees actually hold (spot checks).
  VpfsFixture fixture;
  (void)fixture.fs->create("doc");
  util::Xoshiro rng(9);
  const Bytes payload = rng.bytes(1 << 20);
  (void)fixture.fs->write("doc", 0, payload);
  (void)fixture.fs->sync();
  auto roundtrip = fixture.fs->read("doc", 0, payload.size());

  util::Table table({"metric", "value"});
  table.add_row({"data written", "1 MiB"});
  table.add_row({"blocks encrypted",
                 std::to_string(fixture.fs->stats().blocks_encrypted)});
  table.add_row({"blocks decrypted",
                 std::to_string(fixture.fs->stats().blocks_decrypted)});
  table.add_row({"round-trip intact",
                 (roundtrip && *roundtrip == payload) ? "yes" : "NO (bug)"});

  // Storage expansion: ciphertext + MACs + shadow slots + metadata.
  std::size_t stored = 0;
  for (const auto& path : fixture.disk.list(""))
    stored += *fixture.disk.size(path);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx",
                static_cast<double>(stored) / static_cast<double>(1 << 20));
  table.add_row({"storage expansion (incl. shadow slots)", buf});
  std::printf("%s\n", table.render().c_str());
  std::printf("wall-clock throughput: see google-benchmark output below —\n");
  std::printf("expected shape: VPFS within a small constant factor of raw\n");
  std::printf("(the factor is the AES+HMAC work), identical asymptotics.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
