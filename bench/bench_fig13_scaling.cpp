// FIG13 — Multi-core scaling of the batched runtime, per substrate.
//
// The paper's horizontal paradigm splits an app into many small domains —
// which is exactly the shape that scales across cores, IF the substrate
// lets concurrent crossings proceed. This benchmark pins that down: the
// FIG9b echo workload (batch-32 through runtime::BatchChannel), replicated
// one shard per core (own server domain, own channel, own arena — the
// `shard N` manifest layout), driven round-robin across 1/2/4/8 simulated
// cores. Throughput is total calls over the machine's global epoch
// (max over per-core clocks), so a serialized substrate shows up as a flat
// line, not a slower one.
//
// Expected shape (the concurrency laws in substrate.cpp):
//   microkernel / noc / cheri  parallel crossings      -> near-linear
//   sgx                        serializes at enclave transitions -> flat
//   trustzone / ftpm           one secure-world monitor -> flat
//   tpm / sep                  single-threaded device   -> flat
//
// Acceptance bar (CI asserts both): microkernel >= 2.5x at 4 cores,
// trustzone <= 1.3x at 4 cores.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/batch_channel.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

/// One shard of the scaling rig: a client/server pair with its own channel,
/// pinned to one core. Mirrors what the composer builds for `shard N`.
struct Shard {
  substrate::DomainId client = 0;
  substrate::ChannelId channel = 0;
  std::unique_ptr<runtime::BatchChannel> batch;
};

struct ScaleRun {
  Cycles elapsed = 0;            // max per-core busy time
  double calls_per_mcycle = 0;   // throughput against the global epoch
  std::uint64_t serial_stalls = 0;
  std::uint64_t contention_events = 0;
};

constexpr std::size_t kBatch = 32;
constexpr int kRounds = 8;
constexpr std::size_t kPayload = 16;

ScaleRun measure_scaling(const std::string& substrate_name,
                         std::size_t cores) {
  hw::MachineConfig config;
  config.name = "fig13-" + substrate_name + "-x" + std::to_string(cores);
  config.cores = cores;
  hw::Machine machine(config, vendor(), to_bytes("bench-rom"));
  auto sub = *registry().create(substrate_name, machine);

  std::vector<Shard> shards(cores);
  for (std::size_t i = 0; i < cores; ++i) {
    hw::CoreLease lease(machine, i);
    const std::string suffix = "#" + std::to_string(i);
    auto server = sub->create_domain(tc_spec("server" + suffix));
    if (!server.ok()) {
      // Two-environment devices (SEP) cannot host a pair per core: every
      // core funnels into shard 0's one mailbox — the honest model of a
      // fixed-function device, and exactly why its curve stays flat.
      shards[i].client = shards[0].client;
      shards[i].channel = shards[0].channel;
    } else {
      auto client = sub->create_domain(tc_spec("client" + suffix));
      if (!client.ok())  // SEP's one trusted slot is taken: app side is legacy
        client = sub->create_domain(legacy_spec("client" + suffix));
      shards[i].client = *client;
      shards[i].channel = *sub->create_channel(
          shards[i].client, *server, {.max_message_bytes = 1 << 16});
      (void)sub->set_handler(
          *server, [](const substrate::Invocation& inv) -> Result<Bytes> {
            return Bytes(inv.data.begin(), inv.data.end());  // echo
          });
    }
    shards[i].batch = std::make_unique<runtime::BatchChannel>(
        *sub, shards[i].client, shards[i].channel,
        runtime::BatchChannelConfig{.depth = kBatch});
    // Warm-up crossing so lazy setup costs land outside the window.
    (void)sub->call(shards[i].client, shards[i].channel,
                    Bytes(kPayload, 0x5A));
  }

  std::vector<Cycles> start(cores);
  for (std::size_t i = 0; i < cores; ++i) start[i] = machine.core(i);
  const std::uint64_t stalls_before = sub->serial_stalls();
  const std::uint64_t contention_before = machine.contention_events();

  const Bytes data(kPayload, 0x5A);
  // Round-robin across cores, one batch per visit: every core offers the
  // same work, and serialized substrates interleave at the gate the way
  // concurrent shards would.
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < cores; ++i) {
      hw::CoreLease lease(machine, i);
      for (std::size_t k = 0; k < kBatch; ++k)
        (void)shards[i].batch->submit(data);
      (void)shards[i].batch->flush();
      while (shards[i].batch->next_completion().ok()) {
      }
    }
  }

  ScaleRun run;
  for (std::size_t i = 0; i < cores; ++i) {
    const Cycles busy = machine.core(i) - start[i];
    if (busy > run.elapsed) run.elapsed = busy;
  }
  const double calls =
      static_cast<double>(cores) * kRounds * static_cast<double>(kBatch);
  run.calls_per_mcycle =
      run.elapsed ? calls * 1e6 / static_cast<double>(run.elapsed) : 0;
  run.serial_stalls = sub->serial_stalls() - stalls_before;
  run.contention_events = machine.contention_events() - contention_before;
  return run;
}

/// Cycles for interleaved 16 B region writes from two cores, either all to
/// the same line (unsharded hot head) or to per-core lines one cache-line
/// stride apart (the RegionPool arena layout). The gap is the machine's
/// bus-contention penalty — what `shard N` plus per-shard arenas removes.
Cycles measure_region_writes(bool sharded) {
  hw::MachineConfig config;
  config.name = sharded ? "fig13-region-sharded" : "fig13-region-shared";
  config.cores = 2;
  hw::Machine machine(config, vendor(), to_bytes("bench-rom"));
  auto sub = *registry().create("microkernel", machine);
  auto a = *sub->create_domain(tc_spec("a"));
  auto b = *sub->create_domain(tc_spec("b"));
  (void)*sub->create_channel(a, b, {});
  const auto region = *sub->create_region(
      a, b, 1 << 16, substrate::RegionPerms::read_write);
  (void)sub->map_region(a, region);
  (void)sub->map_region(b, region);

  const Bytes payload(16, 0x42);
  const std::uint64_t stride = machine.costs().cache_line_bytes;
  const Cycles before = machine.now();
  for (int i = 0; i < 64; ++i) {
    for (std::size_t core = 0; core < 2; ++core) {
      hw::CoreLease lease(machine, core);
      const std::uint64_t offset = sharded ? core * stride : 0;
      (void)sub->region_write(core == 0 ? a : b, region, offset, payload);
    }
  }
  return machine.now() - before;
}

void run_report() {
  std::printf("== FIG13: throughput vs cores, one shard per core ==\n");
  std::printf("(FIG9b echo workload, batch-32 per visit; throughput in\n");
  std::printf(" calls per megacycle of the global epoch = max core clock.\n");
  std::printf(" speedup-N = throughput at N cores / throughput at 1)\n\n");

  util::Table table({"substrate", "law", "1 core", "x2", "x4", "x8",
                     "speedup x4", "stalls x4"});
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    hw::MachineConfig probe_cfg;
    probe_cfg.name = "fig13-probe";
    hw::Machine probe(probe_cfg, vendor(), to_bytes("bench-rom"));
    const auto law = (*registry().create(name, probe))->concurrency_law();

    const ScaleRun c1 = measure_scaling(name, 1);
    const ScaleRun c2 = measure_scaling(name, 2);
    const ScaleRun c4 = measure_scaling(name, 4);
    const ScaleRun c8 = measure_scaling(name, 8);
    table.add_row(
        {name, std::string(substrate::concurrency_law_name(law)),
         util::fmt_ratio(c1.calls_per_mcycle),
         util::fmt_ratio(c2.calls_per_mcycle),
         util::fmt_ratio(c4.calls_per_mcycle),
         util::fmt_ratio(c8.calls_per_mcycle),
         util::fmt_ratio(c4.calls_per_mcycle /
                         (c1.calls_per_mcycle ? c1.calls_per_mcycle : 1)),
         std::to_string(c4.serial_stalls)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the claim: the scaling curve is a property of the substrate's\n");
  std::printf("concurrency law, not of the app. parallel-crossing substrates\n");
  std::printf("(mk/NoC/CHERI) scale near-linearly because shards share\n");
  std::printf("nothing; SGX serializes enclave transitions, TrustZone\n");
  std::printf("funnels every crossing through one secure-world monitor, and\n");
  std::printf("TPM/SEP are single-threaded devices — adding cores only adds\n");
  std::printf("waiting at the gate (the stalls column).\n\n");

  const Cycles shared = measure_region_writes(/*sharded=*/false);
  const Cycles sharded = measure_region_writes(/*sharded=*/true);
  std::printf("== FIG13b: per-shard arenas vs one hot line (2 cores) ==\n");
  std::printf("interleaved 16 B region writes, same line:   %llu cycles\n",
              static_cast<unsigned long long>(shared));
  std::printf("same writes, lines one arena stride apart:   %llu cycles\n",
              static_cast<unsigned long long>(sharded));
  std::printf("the gap is pure bus-contention penalty; RegionPool's sharded\n");
  std::printf("arenas (cache-line-strided slots) make it structural.\n\n");
}

void register_json_benchmarks() {
  // Machine-readable mirror: one benchmark per substrate, counters carrying
  // throughput per core count and the speedups the CI smoke asserts.
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    benchmark::RegisterBenchmark(
        ("fig13/" + std::string(name)).c_str(),
        [name](benchmark::State& state) {
          const ScaleRun c1 = measure_scaling(name, 1);
          const ScaleRun c2 = measure_scaling(name, 2);
          const ScaleRun c4 = measure_scaling(name, 4);
          const ScaleRun c8 = measure_scaling(name, 8);
          for (auto _ : state) benchmark::DoNotOptimize(c1.elapsed);
          state.counters["cores1_calls_per_mcycle"] = c1.calls_per_mcycle;
          state.counters["cores2_calls_per_mcycle"] = c2.calls_per_mcycle;
          state.counters["cores4_calls_per_mcycle"] = c4.calls_per_mcycle;
          state.counters["cores8_calls_per_mcycle"] = c8.calls_per_mcycle;
          const double base =
              c1.calls_per_mcycle ? c1.calls_per_mcycle : 1;
          state.counters["speedup_2"] = c2.calls_per_mcycle / base;
          state.counters["speedup_4"] = c4.calls_per_mcycle / base;
          state.counters["speedup_8"] = c8.calls_per_mcycle / base;
          state.counters["serial_stalls_4"] =
              static_cast<double>(c4.serial_stalls);
          state.counters["contention_events_4"] =
              static_cast<double>(c4.contention_events);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
