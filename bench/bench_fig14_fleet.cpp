// FIG14 — one utility server, a fleet of meters.
//
// lateral::fleet multiplexes many attested meter connections onto one SGX
// anonymizer domain. This benchmark measures the three claims that make
// that fleet-scale story work:
//
//   handshakes  — wall-clock cost of the full three-message quote exchange
//                 (cold verification cache vs warm) against the one-RTT
//                 ticket resumption. Acceptance: resumed is at least 5x the
//                 cold handshake rate.
//   steady state — readings/sec through the anonymizer once the fleet is
//                 connected: pipelined submits, ONE BatchChannel crossing
//                 per pump, sealed replies collected in order.
//   overload    — 10x more arrivals than the service rate, admission gate
//                 off vs on. Off: the backlog (lossless by design) grows
//                 without bound and arrival->completion p99 collapses. On:
//                 the token bucket sheds visibly (Errc::exhausted, counted)
//                 and the p99 of everything ADMITTED stays bounded. Zero
//                 admitted requests are lost either way.
//
// Run with --benchmark_format=json > BENCH_FIG14.json for the committed
// machine-readable artifact (CI validates it with python3 -m json.tool).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/attestation.h"
#include "fleet/fleet_client.h"
#include "fleet/fleet_server.h"
#include "fleet/verification_cache.h"
#include "net/network.h"
#include "runtime/metrics.h"
#include "toolbox/anonymizer.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

// ---------------------------------------------------------------------------
// Rig: the FIG14 topology. One "utility" machine runs the SGX anonymizer
// (service domain) plus an untrusted frontend; one "meter" machine runs the
// TrustZone metering component every client attests as. A CachedVerifier
// guards the server side; its TTL is the scenario knob (0 = every full
// handshake pays the RSA chain check — the cold column).

struct Rig {
  std::unique_ptr<hw::Machine> server_machine;
  std::unique_ptr<substrate::IsolationSubstrate> sgx;
  substrate::DomainId anonymizer = 0, frontend = 0;
  substrate::ChannelId channel = 0;

  std::unique_ptr<hw::Machine> meter_machine;
  std::unique_ptr<substrate::IsolationSubstrate> tz;
  substrate::DomainId metering = 0;

  std::unique_ptr<core::AttestationVerifier> meter_verifier;
  std::unique_ptr<fleet::CachedVerifier> utility_verifier;
  std::unique_ptr<net::SimNetwork> network;
  std::unique_ptr<runtime::MetricsHub> hub;
};

Rig make_rig(Cycles cache_ttl) {
  Rig rig;
  rig.server_machine = make_machine("fig14-utility");
  rig.sgx = *registry().create("sgx", *rig.server_machine);
  rig.anonymizer = *rig.sgx->create_domain(tc_spec("anonymizer"));
  rig.frontend = *rig.sgx->create_domain(tc_spec("frontend"));
  rig.channel = *rig.sgx->create_channel(rig.frontend, rig.anonymizer);
  (void)rig.sgx->set_handler(
      rig.anonymizer,
      [](const substrate::Invocation& inv) -> Result<Bytes> {
        // The ingest path: decode the fixed-width reading, ack with 1 byte.
        auto reading = toolbox::decode_reading(inv.data);
        if (!reading) return reading.error();
        return Bytes{1};
      });

  rig.meter_machine = make_machine("fig14-meter");
  rig.tz = *registry().create("trustzone", *rig.meter_machine);
  rig.metering = *rig.tz->create_domain(tc_spec("metering"));

  rig.meter_verifier =
      std::make_unique<core::AttestationVerifier>(to_bytes("fig14-mv"));
  rig.meter_verifier->add_trusted_root(vendor().root_public_key());
  rig.meter_verifier->expect_measurement(
      "anonymizer", tc_spec("anonymizer").image.measurement());

  rig.utility_verifier = std::make_unique<fleet::CachedVerifier>(
      to_bytes("fig14-uv"),
      fleet::CacheConfig{.capacity = 64,
                         .ttl = cache_ttl,
                         .clock = rig.server_machine.get()});
  rig.utility_verifier->add_trusted_root(vendor().root_public_key());
  rig.utility_verifier->expect_measurement(
      "metering", tc_spec("metering").image.measurement());

  rig.network = std::make_unique<net::SimNetwork>();
  rig.hub = std::make_unique<runtime::MetricsHub>();
  (void)rig.network->register_endpoint("utility");
  return rig;
}

fleet::FleetServerConfig server_config(Rig& rig, const std::string& label) {
  fleet::FleetServerConfig config;
  config.endpoint = "utility";
  config.network = rig.network.get();
  config.substrate = rig.sgx.get();
  config.service_domain = rig.anonymizer;
  config.frontend_domain = rig.frontend;
  config.service_channel = rig.channel;
  config.verifier = rig.utility_verifier.get();
  config.expected_client = "metering";
  config.hub = rig.hub.get();
  config.label = label;
  return config;
}

std::unique_ptr<fleet::FleetClient> make_meter(Rig& rig,
                                               const std::string& name,
                                               fleet::FleetServer& server,
                                               bool attested = true) {
  fleet::FleetClientConfig config;
  config.endpoint = name;
  config.server_endpoint = "utility";
  config.network = rig.network.get();
  if (attested) {
    config.prover = net::ProverConfig{rig.tz.get(), rig.metering};
    config.verifier =
        net::VerifierConfig{rig.meter_verifier.get(), "anonymizer"};
  }
  config.drive = [&server] { (void)server.pump(); };
  return std::make_unique<fleet::FleetClient>(std::move(config));
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fig14: %s\n", what);
  std::abort();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Scenario 1: handshake cost, wall clock.

constexpr int kHandshakes = 24;

struct HandshakeNumbers {
  double cold_us = 0;     // full handshake, verification cache disabled
  double warm_us = 0;     // full handshake, cache hit skips the RSA chain
  double resumed_us = 0;  // one-RTT ticket resumption
  double speedup() const { return resumed_us > 0 ? cold_us / resumed_us : 0; }
  bool pass() const { return speedup() >= 5.0; }
};

double measure_full_us(Cycles cache_ttl) {
  Rig rig = make_rig(cache_ttl);
  fleet::FleetServer server(server_config(rig, "fig14.handshake"));
  auto meter = make_meter(rig, "meter-hs", server);
  if (!meter->connect().ok()) die("full-handshake warm-up failed");

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kHandshakes; ++i) {
    meter->clear_ticket();  // forbid resumption: full quote exchange
    if (!meter->connect().ok()) die("full handshake failed");
  }
  return seconds_since(start) * 1e6 / kHandshakes;
}

double measure_resumed_us() {
  Rig rig = make_rig(/*cache_ttl=*/100'000'000);
  fleet::FleetServer server(server_config(rig, "fig14.handshake"));
  auto meter = make_meter(rig, "meter-hs", server);
  if (!meter->connect().ok()) die("ticket-granting handshake failed");

  double total_s = 0;
  for (int i = 0; i < kHandshakes; ++i) {
    const auto start = std::chrono::steady_clock::now();
    if (!meter->connect().ok()) die("resumed connect failed");
    total_s += seconds_since(start);
    if (!meter->resumed()) die("connect did not resume");
    // Tickets are single-use: an untimed full handshake re-arms the next
    // iteration. (A production server would re-grant on the resumed
    // session; the bench keeps grant and resume strictly separated.)
    if (!meter->connect().ok() || meter->resumed()) die("re-arm failed");
  }
  return total_s * 1e6 / kHandshakes;
}

HandshakeNumbers measure_handshakes() {
  HandshakeNumbers out;
  out.cold_us = measure_full_us(/*cache_ttl=*/0);
  out.warm_us = measure_full_us(/*cache_ttl=*/100'000'000);
  out.resumed_us = measure_resumed_us();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 2: steady-state ingest with the fleet connected.

constexpr std::size_t kFleet = 32;
constexpr int kIngestRounds = 16;

struct SteadyNumbers {
  double readings_per_sec = 0;
  double crossing_cycles_per_reading = 0;  // enclave-boundary cost, amortized
  std::uint64_t batches = 0;
  std::uint64_t cache_misses = 0;  // RSA verifications for all kFleet meters
};

SteadyNumbers measure_steady_state() {
  // Generous TTL: quote *generation* is modeled in simulated cycles, so 32
  // handshakes advance the clock far enough to expire a short hit window.
  Rig rig = make_rig(/*cache_ttl=*/2'000'000'000);
  fleet::FleetServer server(server_config(rig, "fig14.steady"));
  std::vector<std::unique_ptr<fleet::FleetClient>> meters;
  for (std::size_t i = 0; i < kFleet; ++i) {
    meters.push_back(make_meter(rig, "meter-" + std::to_string(i), server));
    if (!meters.back()->connect().ok()) die("fleet connect failed");
  }

  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kIngestRounds; ++round) {
    for (std::size_t i = 0; i < kFleet; ++i) {
      const toolbox::Reading reading{.household = i,
                                     .bucket = static_cast<std::uint64_t>(
                                         round),
                                     .kwh = 1.5};
      if (!meters[i]->submit("report", toolbox::encode_reading(reading)).ok())
        die("steady-state submit failed");
    }
    (void)server.pump();  // one tick serves the whole crossing, batched
    // One megacycle between rounds: the fleet reports on a cadence, and the
    // default admission rate (64/Mcycle) comfortably sustains 32 arrivals.
    rig.server_machine->advance(1'000'000);
    for (auto& meter : meters)
      if (!meter->collect().ok()) die("steady-state reading not acked");
  }
  const double elapsed_s = seconds_since(start);
  const double readings = static_cast<double>(kFleet) * kIngestRounds;

  SteadyNumbers out;
  out.readings_per_sec = readings / elapsed_s;
  // The server's own label counts arrival->completion; the BatchChannel it
  // multiplexes through reports under "<label>.mux".
  const auto mux = rig.hub->counters("fig14.steady.mux").snapshot();
  out.crossing_cycles_per_reading =
      static_cast<double>(mux.crossing_cycles) / readings;
  out.batches = mux.batches;
  out.cache_misses = rig.utility_verifier->cache_stats().misses;
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 3: 10x overload, admission gate off vs on.
//
// Arrival rate: kOverloadMeters readings per megacycle. Service rate:
// kServiceCap batched submits per megacycle (the pump's cap). That is a
// sustained 10x overload; the only question is where the excess goes —
// into an unbounded (lossless!) backlog, or answered-and-shed at the edge.

constexpr std::size_t kOverloadMeters = 10;
constexpr int kOverloadRounds = 40;
constexpr std::size_t kServiceCap = 1;

struct OverloadNumbers {
  Cycles p99 = 0;
  Cycles mean = 0;
  std::uint64_t shed = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t client_acks = 0;  // Errc::ok replies observed by the meters
  std::uint64_t lost() const { return submitted - completed; }
};

OverloadNumbers measure_overload(bool gate_on) {
  Rig rig = make_rig(/*cache_ttl=*/100'000'000);
  const std::string label = gate_on ? "fig14.gate_on" : "fig14.gate_off";
  fleet::FleetServerConfig config = server_config(rig, label);
  // Anonymous sessions: overload is about queueing, not attestation cost.
  config.verifier = nullptr;
  config.expected_client.clear();
  config.admission_enabled = gate_on;
  config.admission = {.burst = 4, .refill_per_megacycle = 1};
  fleet::FleetServer server(config);

  std::vector<std::unique_ptr<fleet::FleetClient>> meters;
  for (std::size_t i = 0; i < kOverloadMeters; ++i) {
    meters.push_back(make_meter(rig, "ovl-" + std::to_string(i), server,
                                /*attested=*/false));
    if (!meters.back()->connect().ok()) die("overload connect failed");
  }

  OverloadNumbers out;
  auto drain_replies = [&] {
    for (auto& meter : meters) {
      while (true) {
        auto reply = meter->collect();
        if (reply.ok())
          ++out.client_acks;
        else if (reply.error() != Errc::exhausted)
          break;  // would_block: nothing pending for this meter
      }
    }
  };

  for (int round = 0; round < kOverloadRounds; ++round) {
    for (std::size_t i = 0; i < kOverloadMeters; ++i) {
      const toolbox::Reading reading{.household = i,
                                     .bucket = static_cast<std::uint64_t>(
                                         round),
                                     .kwh = 0.5};
      if (!meters[i]->submit("report", toolbox::encode_reading(reading)).ok())
        die("overload submit failed");
    }
    (void)server.pump(kServiceCap);
    rig.server_machine->advance(1'000'000);  // one megacycle per round
    drain_replies();
  }
  // Lossless backpressure: whatever was admitted gets served, however long
  // the gate-off backlog has grown. The drain is part of the story — those
  // late completions are exactly the latencies that collapse the p99.
  while (server.backlog() > 0) {
    (void)server.pump(kServiceCap);
    rig.server_machine->advance(1'000'000);
    drain_replies();
  }
  drain_replies();

  const auto counters = rig.hub->counters(label).snapshot();
  out.p99 = counters.latency_percentile(0.99);
  out.mean = counters.mean_latency_cycles();
  out.submitted = counters.submitted;
  out.completed = counters.completed;
  out.cancelled = counters.cancelled;
  out.shed = server.stats().admission_shed;
  return out;
}

bool overload_pass(const OverloadNumbers& off, const OverloadNumbers& on) {
  return on.shed > 0 && on.lost() == 0 && off.lost() == 0 &&
         on.cancelled == 0 && on.client_acks == on.completed &&
         on.p99 < off.p99;
}

// ---------------------------------------------------------------------------
// Human-facing report.

void run_report() {
  std::printf("== FIG14: one utility server, a fleet of meters ==\n\n");

  const HandshakeNumbers hs = measure_handshakes();
  std::printf("-- handshakes (wall clock, %d per mode) --\n", kHandshakes);
  util::Table hs_table({"mode", "per handshake", "handshakes/s", "skips"});
  char buffer[64];
  auto row = [&](const char* mode, double us, const char* skips) {
    std::snprintf(buffer, sizeof buffer, "%.1f us", us);
    std::string per(buffer);
    std::snprintf(buffer, sizeof buffer, "%.0f", 1e6 / us);
    hs_table.add_row({mode, per, buffer, skips});
  };
  row("full, cold cache", hs.cold_us, "nothing: quote + RSA chain both ways");
  row("full, warm cache", hs.warm_us, "server-side RSA chain check");
  row("resumed (ticket)", hs.resumed_us, "quotes, RSA, DH: one RTT, AEAD only");
  std::printf("%s\n", hs_table.render().c_str());
  std::printf("resumed vs cold speedup: %.1fx  (>= 5x: %s)\n\n", hs.speedup(),
              hs.pass() ? "PASS" : "FAIL");

  const SteadyNumbers steady = measure_steady_state();
  std::printf("-- steady state (%zu meters, %d rounds, batched pump) --\n",
              kFleet, kIngestRounds);
  util::Table st_table({"readings/s", "crossing cycles/reading", "batches",
                        "RSA verifications"});
  std::snprintf(buffer, sizeof buffer, "%.0f", steady.readings_per_sec);
  std::string rps(buffer);
  std::snprintf(buffer, sizeof buffer, "%.0f",
                steady.crossing_cycles_per_reading);
  st_table.add_row({rps, buffer, std::to_string(steady.batches),
                    std::to_string(steady.cache_misses)});
  std::printf("%s\n", st_table.render().c_str());
  std::printf("one RSA verification served all %zu meters (cache hits for\n"
              "the rest); every round's %zu readings cross in one batch.\n\n",
              kFleet, kFleet);

  const OverloadNumbers off = measure_overload(false);
  const OverloadNumbers on = measure_overload(true);
  std::printf("-- 10x overload (%zu arrivals vs %zu served per megacycle, "
              "%d megacycles) --\n",
              kOverloadMeters, kServiceCap, kOverloadRounds);
  util::Table ov_table({"admission", "p99 (cycles)", "mean (cycles)", "shed",
                        "admitted", "completed", "lost"});
  auto ov_row = [&](const char* mode, const OverloadNumbers& n) {
    ov_table.add_row({mode, util::fmt_cycles(n.p99), util::fmt_cycles(n.mean),
                      std::to_string(n.shed), std::to_string(n.submitted),
                      std::to_string(n.completed), std::to_string(n.lost())});
  };
  ov_row("gate off", off);
  ov_row("gate on", on);
  std::printf("%s\n", ov_table.render().c_str());
  std::printf("gate off is lossless but unbounded: latency IS the queue.\n");
  std::printf("gate on sheds at the edge (answered, counted) and the p99 of\n");
  std::printf("admitted work stays bounded.  overall: %s\n\n",
              overload_pass(off, on) ? "PASS" : "FAIL");
}

// ---------------------------------------------------------------------------
// Machine-readable mirror (the BENCH_FIG14.json artifact). Wall-clock time
// of the google-benchmark loop is meaningless; the counters are the data.

void register_json_benchmarks() {
  benchmark::RegisterBenchmark("fig14/handshakes", [](benchmark::State& state) {
    const HandshakeNumbers hs = measure_handshakes();
    for (auto _ : state) benchmark::DoNotOptimize(hs.resumed_us);
    state.counters["full_cold_us"] = hs.cold_us;
    state.counters["full_warm_cache_us"] = hs.warm_us;
    state.counters["resumed_us"] = hs.resumed_us;
    state.counters["cold_per_sec"] = 1e6 / hs.cold_us;
    state.counters["resumed_per_sec"] = 1e6 / hs.resumed_us;
    state.counters["resumed_speedup"] = hs.speedup();
    state.counters["meets_5x_bar"] = hs.pass() ? 1.0 : 0.0;
  });
  benchmark::RegisterBenchmark(
      "fig14/steady_state", [](benchmark::State& state) {
        const SteadyNumbers steady = measure_steady_state();
        for (auto _ : state) benchmark::DoNotOptimize(steady.readings_per_sec);
        state.counters["readings_per_sec"] = steady.readings_per_sec;
        state.counters["crossing_cycles_per_reading"] =
            steady.crossing_cycles_per_reading;
        state.counters["batches"] = static_cast<double>(steady.batches);
        state.counters["rsa_verifications"] =
            static_cast<double>(steady.cache_misses);
      });
  benchmark::RegisterBenchmark("fig14/overload", [](benchmark::State& state) {
    const OverloadNumbers off = measure_overload(false);
    const OverloadNumbers on = measure_overload(true);
    for (auto _ : state) benchmark::DoNotOptimize(on.p99);
    state.counters["p99_gate_off_cycles"] = static_cast<double>(off.p99);
    state.counters["p99_gate_on_cycles"] = static_cast<double>(on.p99);
    state.counters["mean_gate_off_cycles"] = static_cast<double>(off.mean);
    state.counters["mean_gate_on_cycles"] = static_cast<double>(on.mean);
    state.counters["shed_gate_on"] = static_cast<double>(on.shed);
    state.counters["admitted_gate_on"] = static_cast<double>(on.submitted);
    state.counters["admitted_lost_gate_on"] = static_cast<double>(on.lost());
    state.counters["admitted_lost_gate_off"] = static_cast<double>(off.lost());
    state.counters["bounded_by_admission"] = overload_pass(off, on) ? 1.0 : 0.0;
  });
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
