// FIG10 — Supervised crash recovery: detection latency, MTTR, losslessness.
//
// The paper's trust argument needs components to be restartable without
// taking the application down: a compromised or crashed component is killed
// (corpse semantics), relaunched through the composer path (same manifest,
// same measured image, re-attested), and its channels re-epoched so nothing
// addressed to the dead incarnation is silently served by the new one.
//
// This benchmark injects a crash mid-invocation on every substrate via the
// fault hook, lets a Supervisor detect and repair it, and reports:
//
//   detect  — cycles from the kill to the supervisor confirming the death
//   mttr    — cycles from detection to the component serving again
//             (backoff + relaunch + re-measurement + re-attestation)
//   in-flight — batched submissions caught by the crash; every one must
//             complete with the honest error (domain_dead), none lost
//   lost    — requests that neither succeeded nor failed honestly
//
// Acceptance bar: lost == 0 on at least 3 substrates (target: all 8), and
// every in-flight submission completes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/attestation.h"
#include "core/composer.h"
#include "runtime/batch_channel.h"
#include "supervisor/supervisor.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

/// Simulated cycles between supervision passes.
constexpr Cycles kProbeInterval = 1024;
constexpr int kTotalRequests = 64;
constexpr int kCrashAtRequest = 20;
constexpr std::size_t kInFlight = 8;

std::string supervised_pair_manifest(const std::string& substrate_name,
                                     bool front_is_legacy) {
  std::string text;
  text += "component front {\n";
  text += "  substrate " + substrate_name + "\n";
  if (front_is_legacy) text += "  kind legacy\n";
  text += "  channel worker\n";
  text += "}\n";
  text += "component worker {\n";
  text += "  substrate " + substrate_name + "\n";
  text += "  channel front\n";
  text += "  restart {\n    max 4\n    backoff 512\n    escalate degraded\n  }\n";
  text += "}\n";
  return text;
}

struct Outcome {
  Cycles detect = 0;
  Cycles mttr = 0;
  int served = 0;
  int refused = 0;
  int lost = kTotalRequests;
  std::size_t inflight_completed = 0;
  bool attested = false;
  bool ok = false;
};

Outcome run_recovery(const std::string& substrate_name) {
  Outcome out;
  auto machine = make_machine("fig10-" + substrate_name);
  auto substrate = *registry().create(substrate_name, *machine);
  const bool legacy_ok = has_feature(substrate->info().features,
                                     substrate::Feature::legacy_hosting);
  const bool attest_ok = has_feature(substrate->info().features,
                                     substrate::Feature::attestation);

  core::SystemComposer composer({{substrate_name, substrate.get()}});
  auto manifests = core::parse_manifests(
      supervised_pair_manifest(substrate_name, legacy_ok));
  if (!manifests) return out;
  auto assembly = composer.compose(*manifests);
  if (!assembly) return out;
  (void)(*assembly)->set_behavior(
      "worker", [](const substrate::Invocation& inv) -> Result<Bytes> {
        return Bytes(inv.data.begin(), inv.data.end());  // echo
      });

  core::AttestationVerifier verifier(to_bytes("fig10-verifier"));
  verifier.add_trusted_root(vendor().root_public_key());
  supervisor::SupervisorConfig config;
  if (attest_ok) config.verifier = &verifier;
  out.attested = attest_ok;
  supervisor::Supervisor sup(**assembly, config);
  if (!sup.watch_all().ok()) return out;

  // A batch of submissions is in flight when the crash lands: losslessness
  // means every one of them completes (with domain_dead, honestly).
  auto endpoint = (*assembly)->endpoint("front", "worker");
  if (!endpoint) return out;
  runtime::BatchChannel batch(*endpoint);

  const Bytes data = to_bytes("req");
  bool crash_armed = false;
  substrate->set_fault_hook(
      [&](substrate::DomainId, std::string_view) {
        const bool fire = crash_armed;
        crash_armed = false;
        return fire;
      });

  Cycles t_kill = 0;
  for (int i = 0; i < kTotalRequests; ++i) {
    if (i == kCrashAtRequest) {
      for (std::size_t j = 0; j < kInFlight; ++j) (void)batch.submit(data);
      crash_armed = true;
    }
    auto reply = (*assembly)->invoke("front", "worker", data);
    if (reply.ok()) {
      ++out.served;
      continue;
    }
    ++out.refused;  // honest failure: domain_dead, never a silent drop
    if (t_kill == 0) {
      t_kill = machine->now();
      // Resolve the in-flight batch against the corpse: all entries must
      // complete promptly with the honest error.
      (void)batch.flush();
      while (batch.next_completion().ok()) {
      }
      out.inflight_completed = batch.metrics().completed;
    }
    // Supervision loop: periodic passes until the component serves again.
    Cycles t_detect = 0;
    for (int pass = 0; pass < 64; ++pass) {
      machine->advance(kProbeInterval);
      const auto report = sup.tick();
      if (report.deaths_detected > 0 && t_detect == 0)
        t_detect = machine->now();
      if (*sup.health("worker") == supervisor::Health::running) break;
    }
    if (t_detect != 0) out.detect = t_detect - t_kill;
  }

  out.mttr = sup.stats().mean_mttr_cycles();
  out.lost = kTotalRequests - out.served - out.refused;
  out.ok = out.lost == 0 && sup.stats().restarts >= 1 &&
           out.inflight_completed == kInFlight &&
           *sup.health("worker") == supervisor::Health::running;
  substrate->set_fault_hook(nullptr);
  return out;
}

void run_report() {
  std::printf("== FIG10: supervised crash recovery ==\n");
  std::printf("(crash injected mid-invocation at request %d of %d; a\n",
              kCrashAtRequest, kTotalRequests);
  std::printf(" Supervisor detects via heartbeat probes every %llu cycles,\n",
              static_cast<unsigned long long>(kProbeInterval));
  std::printf(" relaunches through the composer, re-attests, re-epochs)\n\n");

  util::Table table({"substrate", "detect", "mttr", "served", "refused",
                     "in-flight", "lost", "re-attested", "recovered"});
  int lossless = 0;
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    const Outcome out = run_recovery(name);
    if (out.ok) ++lossless;
    table.add_row(
        {name, util::fmt_cycles(out.detect), util::fmt_cycles(out.mttr),
         std::to_string(out.served), std::to_string(out.refused),
         std::to_string(out.inflight_completed) + "/" +
             std::to_string(kInFlight),
         std::to_string(out.lost), out.attested ? "yes" : "n/a",
         out.ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("acceptance: lost == 0 and full in-flight completion on >= 3\n");
  std::printf("substrates; achieved on %d of 8.\n", lossless);
  std::printf("expected shape: detect is one probe interval plus the probe\n");
  std::printf("cost; mttr adds the policy backoff, the relaunch (domain\n");
  std::printf("creation + image load) and re-attestation where supported.\n\n");
}

void BM_SupervisedRecoveryWallClock(benchmark::State& state) {
  // Wall-clock cost of one full kill -> detect -> relaunch -> re-attest
  // cycle on the microkernel (not modeled cycles).
  for (auto _ : state) {
    const Outcome out = run_recovery("microkernel");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SupervisedRecoveryWallClock);

void register_json_benchmarks() {
  // Machine-readable mirror of the report table (BENCH_FIG10.json): the
  // counters are the data, the wall-clock time of these is meaningless.
  for (const char* name : {"noc", "cheri", "microkernel", "trustzone", "ftpm",
                           "sgx", "sep", "tpm"}) {
    benchmark::RegisterBenchmark(
        ("fig10/" + std::string(name)).c_str(),
        [name](benchmark::State& state) {
          const Outcome out = run_recovery(name);
          for (auto _ : state) benchmark::DoNotOptimize(out);
          state.counters["detect_cycles"] = static_cast<double>(out.detect);
          state.counters["mttr_cycles"] = static_cast<double>(out.mttr);
          state.counters["served"] = out.served;
          state.counters["refused"] = out.refused;
          state.counters["lost"] = out.lost;
          state.counters["inflight_completed"] =
              static_cast<double>(out.inflight_completed);
          state.counters["inflight_submitted"] =
              static_cast<double>(kInFlight);
          state.counters["re_attested"] = out.attested ? 1.0 : 0.0;
          state.counters["recovered"] = out.ok ? 1.0 : 0.0;
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
