// FIG15 — attested over-the-air update with rollback protection.
//
// lateral::update streams a vendor-signed image into the inactive slot
// while the old image keeps serving, swaps through a supervised restart
// with fresh attestation, and lets probation decide commit-or-revert.
// This benchmark measures the three numbers that story hangs on:
//
//   update latency — accept -> committed, through stage (chunked call_sg
//                    over the zero-copy plane), arm, the attested swap,
//                    and a full probation window. The NV counter bumps
//                    once per committed version.
//   revert MTTR    — the new incarnation dies in probation; detect ->
//                    old-image-serving-again, automatic, no operator.
//   served traffic — a fleet client calls through the whole lifecycle.
//                    Acceptance: zero admitted requests lost, the dead
//                    incarnation's ticket visibly refused, and the p99 of
//                    served calls stays bounded across the swap.
//
// Run with --benchmark_format=json > BENCH_FIG15.json for the committed
// machine-readable artifact (CI validates it with python3 -m json.tool).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "bench_common.h"
#include "core/attestation.h"
#include "core/composer.h"
#include "fleet/fleet_client.h"
#include "fleet/fleet_server.h"
#include "microkernel/microkernel.h"
#include "net/network.h"
#include "runtime/metrics.h"
#include "supervisor/supervisor.h"
#include "tpm/tpm.h"
#include "update/update.h"
#include "util/table.h"

using namespace lateral;
using namespace lateral::bench;

namespace {

// ---------------------------------------------------------------------------
// Rig: one device. A microkernel hosts the updatable worker plus the
// untrusted frontend and the updater that drives staging; a discrete TPM
// holds the monotonic NV counter. The restart budget is deliberately
// generous (max 64) so the latency scenarios can run many lifecycles
// without tripping the flap damping that update_test exercises.

constexpr const char* kFig15System = R"(
component updater {
  substrate microkernel
  channel worker
  region worker 65536
}
component front {
  substrate microkernel
  channel worker
}
component worker {
  substrate microkernel
  channel updater
  channel front
  restart {
    max 64
    backoff 10
    escalate degraded
  }
  update {
    key vendor
    slots 2
    probation 3
  }
}
)";

constexpr std::size_t kImageBytes = 4096;   // 16 chunks at 256B each
constexpr std::size_t kChunkBytes = 256;

struct Rig {
  runtime::MetricsHub hub;
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<microkernel::Microkernel> mk;
  std::unique_ptr<tpm::Tpm> tpm;
  std::unique_ptr<core::Assembly> assembly;
  std::unique_ptr<core::AttestationVerifier> verifier;
  std::unique_ptr<supervisor::Supervisor> sup;
  std::unique_ptr<update::DeviceRollbackCounters<tpm::Tpm>> counters;
  crypto::RsaKeyPair vendor_key;
  std::unique_ptr<update::UpdateOrchestrator> orchestrator;
};

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fig15: %s\n", what);
  std::abort();
}

std::unique_ptr<Rig> make_rig() {
  auto rig = std::make_unique<Rig>();
  rig->machine = make_machine("fig15-device");
  rig->mk = std::make_unique<microkernel::Microkernel>(
      *rig->machine, substrate::SubstrateConfig{});
  rig->tpm =
      std::make_unique<tpm::Tpm>(*rig->machine, substrate::SubstrateConfig{});

  core::SystemComposer composer(
      {{"microkernel",
        static_cast<substrate::IsolationSubstrate*>(rig->mk.get())}});
  auto manifests = core::parse_manifests(kFig15System);
  if (!manifests.ok()) die("manifest parse failed");
  auto assembly = composer.compose(*manifests);
  if (!assembly.ok()) die("compose failed");
  rig->assembly = std::move(*assembly);
  if (!rig->assembly
           ->set_behavior("worker",
                          [](const substrate::Invocation&) -> Result<Bytes> {
                            return Bytes{1};
                          })
           .ok())
    die("set_behavior failed");

  rig->verifier =
      std::make_unique<core::AttestationVerifier>(to_bytes("fig15-verifier"));
  rig->verifier->add_trusted_root(vendor().root_public_key());
  rig->sup = std::make_unique<supervisor::Supervisor>(
      *rig->assembly, supervisor::SupervisorConfig{
                          .hub = &rig->hub, .verifier = rig->verifier.get()});
  if (!rig->sup->watch_all().ok()) die("watch_all failed");

  rig->counters =
      std::make_unique<update::DeviceRollbackCounters<tpm::Tpm>>(*rig->tpm);
  crypto::HmacDrbg drbg(to_bytes("fig15-vendor"));
  rig->vendor_key = crypto::RsaKeyPair::generate(drbg, 512);

  update::UpdateOrchestratorConfig config;
  config.chunk_bytes = kChunkBytes;
  config.hub = &rig->hub;
  // Restart backoff doubles per attempt used and never resets; back-to-back
  // lifecycles push the relaunch gate out exponentially, so give commit's
  // drive loop enough spins to ride out the longest gate.
  config.restart_spins = 8192;
  rig->orchestrator = std::make_unique<update::UpdateOrchestrator>(
      *rig->assembly, *rig->sup, *rig->counters, rig->vendor_key.pub, config);
  return rig;
}

std::pair<update::UpdateManifest, Bytes> signed_update(Rig& rig,
                                                       std::uint64_t version) {
  Bytes image = to_bytes("fig15-image-v" + std::to_string(version) + ":");
  while (image.size() < kImageBytes)
    image.push_back(static_cast<std::uint8_t>(version * 31 + image.size()));
  update::UpdateManifest manifest =
      update::make_manifest("worker", version, image);
  update::sign_manifest(manifest, rig.vendor_key);
  return {manifest, image};
}

void stage_arm_commit(Rig& rig, std::uint64_t version) {
  auto [manifest, image] = signed_update(rig, version);
  if (auto s = rig.orchestrator->stage(manifest, image); !s.ok()) {
    std::fprintf(stderr, "fig15: stage v%llu err=%d\n",
                 (unsigned long long)version, (int)s.error());
    die("stage failed");
  }
  if (!rig.orchestrator->arm("worker").ok()) die("arm failed");
  if (auto c = rig.orchestrator->commit("worker"); !c.ok()) {
    std::fprintf(stderr, "fig15: commit v%llu err=%d health=%d\n",
                 (unsigned long long)version, (int)c.error(),
                 (int)*rig.sup->health("worker"));
    die("commit failed");
  }
}

void run_probation(Rig& rig) {
  for (int i = 0; i < 3; ++i)
    if (!rig.orchestrator->probation_tick("worker").ok())
      die("probation tick failed");
  if (rig.orchestrator->state("worker") != update::UpdateState::committed)
    die("probation did not commit");
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Scenario 1: update latency. kUpdates full lifecycles back to back —
// every one streams a fresh 4 KiB image, swaps, survives probation, and
// bumps the NV counter.

constexpr int kUpdates = 8;

struct UpdateNumbers {
  double wall_us = 0;              // per lifecycle, wall clock
  double update_cycles = 0;        // accept -> committed, simulated cycles
  double stage_mbytes_per_sec = 0; // image streaming throughput, wall clock
  std::uint64_t committed = 0;
  std::uint64_t counter = 0;       // NV counter after the run
  bool pass() const { return committed == kUpdates && counter == kUpdates; }
};

UpdateNumbers measure_update_latency() {
  auto rig = make_rig();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t v = 1; v <= kUpdates; ++v) {
    stage_arm_commit(*rig, v);
    run_probation(*rig);
    rig->machine->advance(1 << 16);  // clear any accumulated backoff
  }
  const double elapsed_s = seconds_since(start);

  const runtime::UpdateStats stats = rig->orchestrator->stats();
  UpdateNumbers out;
  out.wall_us = elapsed_s * 1e6 / kUpdates;
  out.update_cycles = static_cast<double>(stats.mean_update_cycles());
  out.stage_mbytes_per_sec =
      static_cast<double>(stats.bytes_streamed) / elapsed_s / 1e6;
  out.committed = stats.committed;
  out.counter = *rig->counters->read("update.worker");
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 2: revert MTTR. Every new incarnation dies on its second
// probation heartbeat; the orchestrator must detect, restore the old
// slot+measurement, and have the old image serving again — automatically.

constexpr int kReverts = 6;

struct RevertNumbers {
  double detect_wall_us = 0;      // probation_tick that reverts, wall clock
  double revert_cycles = 0;       // detect -> old image serving, cycles
  std::uint64_t reverted = 0;
  std::uint64_t audit = 0;        // supervisor-side update_reverts counter
  std::uint64_t counter = 0;      // must stay 0: nothing ever committed
  bool pass() const {
    return reverted == kReverts && audit == kReverts && counter == 0;
  }
};

RevertNumbers measure_revert_mttr() {
  auto rig = make_rig();
  double detect_s = 0;
  for (std::uint64_t v = 1; v <= kReverts; ++v) {
    stage_arm_commit(*rig, v);
    if (!rig->assembly->kill_component("worker").ok()) die("kill failed");
    const auto start = std::chrono::steady_clock::now();
    auto state = rig->orchestrator->probation_tick("worker");
    detect_s += seconds_since(start);
    if (!state.ok() || *state != update::UpdateState::reverted)
      die("expected automatic revert");
    if (!rig->assembly->invoke("front", "worker", to_bytes("x")).ok())
      die("old image not serving after revert");
    rig->machine->advance(1 << 16);
    rig->sup->tick();  // let the supervisor settle between lifecycles
  }

  const runtime::UpdateStats stats = rig->orchestrator->stats();
  RevertNumbers out;
  out.detect_wall_us = detect_s * 1e6 / kReverts;
  out.revert_cycles = static_cast<double>(stats.mean_revert_cycles());
  out.reverted = stats.reverted;
  out.audit = rig->hub.recovery("supervisor")->update_reverts;
  out.counter = *rig->counters->read("update.worker");
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 3: served traffic across the update. A fleet meter calls the
// worker through every phase — before, during staging, in probation, after
// commit. The swap invalidates the old incarnation's ticket (refused,
// counted, full re-handshake) but no admitted request is ever lost.

constexpr int kCallsPerPhase = 32;

struct ServeNumbers {
  Cycles p99 = 0;
  Cycles mean = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t tickets_rejected = 0;
  std::uint64_t lost() const { return admitted - completed; }
  bool pass() const { return lost() == 0 && tickets_rejected >= 1; }
};

ServeNumbers measure_served_traffic() {
  auto rig = make_rig();
  net::SimNetwork network;
  if (!network.register_endpoint("utility").ok()) die("endpoint failed");
  auto endpoint = rig->assembly->endpoint("front", "worker");
  if (!endpoint.ok()) die("no front->worker endpoint");

  fleet::FleetServerConfig config;
  config.endpoint = "utility";
  config.network = &network;
  config.substrate = rig->mk.get();
  config.service_domain = (*rig->assembly->component("worker"))->domain;
  config.frontend_domain = (*rig->assembly->component("front"))->domain;
  config.service_channel = endpoint->channel();
  config.hub = &rig->hub;
  config.label = "fig15.serve";
  fleet::FleetServer server(std::move(config));

  fleet::FleetClientConfig client_config;
  client_config.endpoint = "meter";
  client_config.server_endpoint = "utility";
  client_config.network = &network;
  client_config.drive = [&server] { (void)server.pump(); };
  fleet::FleetClient meter(std::move(client_config));
  if (!meter.connect().ok()) die("fleet connect failed");

  // Tickets sealed by the pre-update incarnation die with the swap.
  rig->sup->on_restart([&](const std::string& name, std::uint32_t) {
    if (name == "worker")
      server.on_service_restart((*rig->assembly->component(name))->domain);
  });

  ServeNumbers out;
  const auto drive_traffic = [&] {
    for (int i = 0; i < kCallsPerPhase; ++i) {
      if (!meter.call("report", to_bytes("r")).ok()) die("serve call failed");
      ++out.admitted;
    }
    rig->machine->advance(1'000'000);  // keep the admission bucket topped up
  };

  drive_traffic();  // baseline
  auto [manifest, image] = signed_update(*rig, 1);
  if (!rig->orchestrator->stage(manifest, image).ok()) die("stage failed");
  drive_traffic();  // the old slot serves during staging
  if (!rig->orchestrator->arm("worker").ok()) die("arm failed");
  if (!rig->orchestrator->commit("worker").ok()) die("commit failed");

  // The held ticket belongs to the dead incarnation: refused, re-handshake.
  if (!meter.connect().ok()) die("post-swap reconnect failed");
  if (meter.resumed()) die("stale ticket was honoured across the swap");
  drive_traffic();  // probation traffic against the new image
  run_probation(*rig);
  drive_traffic();  // steady state on the committed version

  const auto counters = rig->hub.counters("fig15.serve").snapshot();
  out.p99 = counters.latency_percentile(0.99);
  out.mean = counters.mean_latency_cycles();
  out.completed = counters.completed;
  out.tickets_rejected = server.stats().tickets_rejected;
  return out;
}

// ---------------------------------------------------------------------------
// Human-facing report.

void run_report() {
  std::printf("== FIG15: attested OTA update, rollback-protected ==\n\n");
  char buffer[64];

  const UpdateNumbers up = measure_update_latency();
  std::printf("-- update latency (%d full lifecycles, 4 KiB images) --\n",
              kUpdates);
  util::Table up_table({"per update", "accept->commit (cycles)",
                        "staging MB/s", "committed", "NV counter"});
  std::snprintf(buffer, sizeof buffer, "%.1f us", up.wall_us);
  std::string wall(buffer);
  std::snprintf(buffer, sizeof buffer, "%.1f", up.stage_mbytes_per_sec);
  up_table.add_row({wall, util::fmt_cycles(Cycles(up.update_cycles)), buffer,
                    std::to_string(up.committed), std::to_string(up.counter)});
  std::printf("%s\n", up_table.render().c_str());
  std::printf("stage streams chunked call_sg over the zero-copy plane; the\n"
              "NV counter bumps exactly once per committed version: %s\n\n",
              up.pass() ? "PASS" : "FAIL");

  const RevertNumbers rv = measure_revert_mttr();
  std::printf("-- revert MTTR (%d probation failures) --\n", kReverts);
  util::Table rv_table({"detect+revert", "detect->serving (cycles)",
                        "reverted", "audited", "NV counter"});
  std::snprintf(buffer, sizeof buffer, "%.1f us", rv.detect_wall_us);
  rv_table.add_row({buffer, util::fmt_cycles(Cycles(rv.revert_cycles)),
                    std::to_string(rv.reverted), std::to_string(rv.audit),
                    std::to_string(rv.counter)});
  std::printf("%s\n", rv_table.render().c_str());
  std::printf("every failed probation reverts automatically and lands in the\n"
              "supervisor's recovery accounting; the counter never moves, so\n"
              "the failed version stays retryable but replay stays dead: %s\n\n",
              rv.pass() ? "PASS" : "FAIL");

  const ServeNumbers sv = measure_served_traffic();
  std::printf("-- served traffic across the update (%d calls x 4 phases) --\n",
              kCallsPerPhase);
  util::Table sv_table({"p99 (cycles)", "mean (cycles)", "admitted",
                        "completed", "lost", "tickets refused"});
  sv_table.add_row({util::fmt_cycles(sv.p99), util::fmt_cycles(sv.mean),
                    std::to_string(sv.admitted), std::to_string(sv.completed),
                    std::to_string(sv.lost()),
                    std::to_string(sv.tickets_rejected)});
  std::printf("%s\n", sv_table.render().c_str());
  std::printf("the old slot serves through staging, the swap rotates the\n"
              "session ticket, and zero admitted requests are lost: %s\n\n",
              sv.pass() ? "PASS" : "FAIL");
}

// ---------------------------------------------------------------------------
// Machine-readable mirror (the BENCH_FIG15.json artifact). Wall-clock time
// of the google-benchmark loop is meaningless; the counters are the data.

void register_json_benchmarks() {
  benchmark::RegisterBenchmark(
      "fig15/update_latency", [](benchmark::State& state) {
        const UpdateNumbers up = measure_update_latency();
        for (auto _ : state) benchmark::DoNotOptimize(up.update_cycles);
        state.counters["wall_us_per_update"] = up.wall_us;
        state.counters["accept_to_commit_cycles"] = up.update_cycles;
        state.counters["staging_mbytes_per_sec"] = up.stage_mbytes_per_sec;
        state.counters["committed"] = static_cast<double>(up.committed);
        state.counters["nv_counter"] = static_cast<double>(up.counter);
        state.counters["counter_tracks_commits"] = up.pass() ? 1.0 : 0.0;
      });
  benchmark::RegisterBenchmark(
      "fig15/revert_mttr", [](benchmark::State& state) {
        const RevertNumbers rv = measure_revert_mttr();
        for (auto _ : state) benchmark::DoNotOptimize(rv.revert_cycles);
        state.counters["detect_wall_us"] = rv.detect_wall_us;
        state.counters["detect_to_serving_cycles"] = rv.revert_cycles;
        state.counters["reverted"] = static_cast<double>(rv.reverted);
        state.counters["audited_update_reverts"] =
            static_cast<double>(rv.audit);
        state.counters["nv_counter_untouched"] =
            rv.counter == 0 ? 1.0 : 0.0;
        state.counters["auto_revert_holds"] = rv.pass() ? 1.0 : 0.0;
      });
  benchmark::RegisterBenchmark(
      "fig15/served_traffic", [](benchmark::State& state) {
        const ServeNumbers sv = measure_served_traffic();
        for (auto _ : state) benchmark::DoNotOptimize(sv.p99);
        state.counters["p99_cycles"] = static_cast<double>(sv.p99);
        state.counters["mean_cycles"] = static_cast<double>(sv.mean);
        state.counters["admitted"] = static_cast<double>(sv.admitted);
        state.counters["completed"] = static_cast<double>(sv.completed);
        state.counters["admitted_lost"] = static_cast<double>(sv.lost());
        state.counters["tickets_refused"] =
            static_cast<double>(sv.tickets_rejected);
        state.counters["lossless_across_update"] = sv.pass() ? 1.0 : 0.0;
      });
}

}  // namespace

int main(int argc, char** argv) {
  if (!machine_readable_output(argc, argv)) run_report();
  register_json_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
