// cloud_enclave — the Haven/SCONE-style scenario from §II-B:
//
// "When running software on rented servers within a data center, SGX allows
// to run the code without the server operating system or data center staff
// having any visibility into the execution state. The data center customer
// needs to trust only the Intel CPU."
//
// A customer workload runs inside an enclave on a machine whose OS and
// operator are hostile. We demonstrate: (1) the OS sees nothing, (2) the
// physical operator probing DRAM sees only ciphertext, (3) sealing survives
// restarts but not code substitution, (4) trusted reuse of the hostile OS's
// services works only because replies are vetted (trusted wrapper idea).
#include <cstdio>

#include "core/standard_registry.h"
#include "crypto/sha256.h"
#include "hw/attacker.h"
#include "legacy/legacy_os.h"
#include "sgx/sgx.h"
#include "util/hex.h"

using namespace lateral;

int main() {
  hw::Vendor intel(/*seed=*/7);
  hw::Machine host(hw::MachineConfig{.name = "rented-server"}, intel,
                   to_bytes("cloud-rom"));
  sgx::Sgx cpu(host, substrate::SubstrateConfig{});

  // The hostile landlord: cloud OS (software) + operator (physical access).
  substrate::DomainSpec os_spec;
  os_spec.name = "cloud-os";
  os_spec.kind = substrate::DomainKind::legacy;
  os_spec.image = {"cloud-os", to_bytes("ubuntu-cloud")};
  os_spec.memory_pages = 8;
  auto cloud_os = *cpu.create_domain(os_spec);

  // The customer's workload: a whole database engine inside one enclave —
  // "trusted components do not necessarily have to be small".
  substrate::DomainSpec db_spec;
  db_spec.name = "customer-db";
  db_spec.image = {"customer-db", to_bytes("customer database engine v3")};
  db_spec.memory_pages = 8;
  auto db = *cpu.create_domain(db_spec);

  // Customer data goes in.
  const Bytes customer_rows = to_bytes("row1:salary=120k;row2:salary=95k");
  (void)cpu.write_memory(db, db, 0, customer_rows);

  // --- 1. The cloud OS tries to read the enclave -----------------------------
  auto os_peek = cpu.read_memory(cloud_os, db, 0, 32);
  std::printf("cloud OS reads enclave: %s\n",
              std::string(errc_name(os_peek.error())).c_str());

  // --- 2. The operator probes the DIMMs ---------------------------------------
  hw::PhysicalAttacker operator_probe(host);
  const auto hits = operator_probe.scan(host.dram(), to_bytes("salary"));
  std::printf("operator scans DRAM for 'salary': %zu hits (MEE ciphertext)\n",
              hits.size());

  // --- 3. Sealing: durable secrets bound to code identity ---------------------
  auto sealed = cpu.seal(db, to_bytes("db-master-key-0xDEADBEEF"));
  std::printf("sealed DB master key: %zu bytes\n", sealed ? sealed->size() : 0);
  // ... enclave restarts (same code): unseal works.
  auto db2 = *cpu.create_domain(db_spec);
  auto recovered = cpu.unseal(db2, *sealed);
  std::printf("same code after restart unseals: %s\n",
              recovered ? "yes" : "NO (bug)");
  // ... the landlord deploys a lookalike to steal the key: measurement
  // differs, key stays sealed.
  substrate::DomainSpec evil_spec = db_spec;
  evil_spec.name = "evil-db";
  evil_spec.image = {"evil-db", to_bytes("customer database engine v3 ")};
  auto evil = *cpu.create_domain(evil_spec);
  auto stolen = cpu.unseal(evil, *sealed);
  std::printf("lookalike enclave unseals: %s\n",
              stolen ? "YES (bug!)" : std::string(errc_name(stolen.error())).c_str());

  // --- 4. Trusted reuse of the hostile OS (vet every reply!) ------------------
  legacy::LegacyOs os("cloud-os");
  (void)os.register_service("block-store", [](BytesView req) -> Result<Bytes> {
    // An honest block store echoes what was stored.
    return Bytes(req.begin(), req.end());
  });

  // The enclave stores a block WITH a MAC-style digest, then vets the reply
  // ("must carefully vet the reply" — §II-A Communication).
  const Bytes block = to_bytes("page-42-contents");
  const crypto::Digest digest = crypto::Sha256::hash(block);

  auto fetched = os.call_service("block-store", block);
  bool intact = fetched && crypto::Sha256::hash(*fetched) == digest;
  std::printf("honest OS reply vets: %s\n", intact ? "ok" : "corrupt");

  os.compromise(legacy::MaliciousMode::tamper_replies);
  fetched = os.call_service("block-store", block);
  intact = fetched && crypto::Sha256::hash(*fetched) == digest;
  std::printf("compromised OS reply vets: %s (wrapper caught it)\n",
              intact ? "ok (BUG!)" : "corrupt");

  // --- 5. Remote attestation for the customer's peace of mind -----------------
  auto quote = cpu.attest(db, to_bytes("customer-challenge"));
  if (quote) {
    std::printf("attestation chain to vendor root: %s\n",
                quote->verify(intel.root_public_key()).ok() ? "VALID"
                                                            : "BROKEN");
    std::printf("enclave measurement: %s...\n",
                util::to_hex(crypto::digest_view(quote->measurement))
                    .substr(0, 24)
                    .c_str());
  }
  return 0;
}
