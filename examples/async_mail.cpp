// async_mail — the MailClient fetch path on the batching runtime, end to
// end across the network.
//
// The provider's mailbox sits behind an SGX "mailgate" component on a
// remote machine. The laptop verifies the gate's code identity during the
// SecureChannel handshake (so it speaks IMAP only to the audited build),
// then pipelines all FETCHes through runtime::AsyncRemoteProxy: N requests,
// one sealed burst, one network exchange, replies matched by request id.
// The fetched messages land in the local decomposed MailClient through a
// runtime::BatchChannel on the manifest-declared ui->storage wire — one
// boundary crossing for the whole batch — and are rendered by the isolated
// renderer as usual. Every hop is the trustworthy path from the paper; the
// runtime only changes how often its tolls are paid.
#include <cstdio>
#include <string>
#include <vector>

#include "core/attestation.h"
#include "core/composer.h"
#include "core/standard_registry.h"
#include "legacy/filesystem.h"
#include "mail/client.h"
#include "mail/imap.h"
#include "microkernel/microkernel.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "runtime/async_proxy.h"
#include "runtime/batch_channel.h"

using namespace lateral;

int main() {
  hw::Vendor vendor(/*seed=*/7);

  // --- Provider side: mailbox behind an SGX mail gate ----------------------
  mail::ImapServer provider("alice", "token123");
  for (int i = 0; i < 6; ++i)
    (void)provider.deliver(
        "INBOX",
        mail::make_message("bob@example", "alice@example",
                           "Update " + std::to_string(i),
                           "<p>News item <b>" + std::to_string(i) + "</b></p>"));

  auto registry = core::make_standard_registry();
  hw::Machine server_machine(hw::MachineConfig{.name = "provider"}, vendor,
                             to_bytes("provider-rom"));
  auto sgx = *registry.create("sgx", server_machine);
  substrate::DomainSpec gate_spec;
  gate_spec.name = "mailgate";
  gate_spec.kind = substrate::DomainKind::trusted_component;
  gate_spec.image = {"mailgate", to_bytes("code:mailgate")};
  gate_spec.memory_pages = 2;
  auto mailgate = *sgx->create_domain(gate_spec);

  // --- Laptop side: decomposed mail client + gate verifier -----------------
  hw::Machine laptop(hw::MachineConfig{.name = "laptop"}, vendor,
                     to_bytes("laptop-rom"));
  microkernel::Microkernel kernel(laptop, substrate::SubstrateConfig{});
  legacy::LegacyFilesystem disk;
  auto client = mail::MailClient::create({.substrate = &kernel,
                                          .disk = &disk,
                                          .server = &provider,
                                          .vpfs_seed = to_bytes("mail-keys")});
  if (!client) {
    std::printf("client composition failed\n");
    return 1;
  }

  core::AttestationVerifier verifier(to_bytes("laptop-verifier"));
  verifier.add_trusted_root(vendor.root_public_key());
  verifier.expect_measurement("mailgate", gate_spec.image.measurement());

  // --- Attested handshake over the hostile network -------------------------
  net::SimNetwork network;
  (void)network.register_endpoint("laptop");
  (void)network.register_endpoint("provider");

  net::SecureChannelEndpoint laptop_chan(
      net::Role::initiator, to_bytes("laptop-seed"), std::nullopt,
      net::VerifierConfig{&verifier, "mailgate"});
  net::SecureChannelEndpoint gate_chan(
      net::Role::responder, to_bytes("gate-seed"),
      net::ProverConfig{sgx.get(), mailgate}, std::nullopt);

  auto msg1 = laptop_chan.start();
  (void)network.send("laptop", "provider", *msg1);
  auto msg2 = gate_chan.handle_msg1(network.receive("provider")->payload);
  (void)network.send("provider", "laptop", *msg2);
  auto msg3 = laptop_chan.handle_msg2(network.receive("laptop")->payload);
  (void)network.send("laptop", "provider", *msg3);
  if (!gate_chan.handle_msg3(network.receive("provider")->payload).ok() ||
      !laptop_chan.established()) {
    std::printf("handshake failed\n");
    return 1;
  }
  std::printf("attested channel up: laptop verified the mailgate build\n");

  // --- The async RPC plumbing ----------------------------------------------
  runtime::AsyncRemoteDispatcher gate(gate_chan);
  (void)gate.register_method("imap", [&provider](BytesView line)
                                         -> Result<Bytes> {
    return to_bytes(provider.handle(to_string(line)));
  });

  runtime::AsyncRemoteProxy proxy(
      laptop_chan,
      [&](const std::vector<Bytes>& records) -> Result<std::vector<Bytes>> {
        for (const Bytes& record : records)
          if (const Status s = network.send("laptop", "provider", record);
              !s.ok())
            return s.error();
        std::vector<Bytes> burst;
        while (auto datagram = network.receive("provider"))
          burst.push_back(std::move(datagram->payload));
        auto replies = gate.handle_burst(burst);
        if (!replies) return replies.error();
        for (const Bytes& record : *replies)
          if (const Status s = network.send("provider", "laptop", record);
              !s.ok())
            return s.error();
        std::vector<Bytes> out;
        while (auto datagram = network.receive("laptop"))
          out.push_back(std::move(datagram->payload));
        return out;
      },
      {.depth = 32, .hub = nullptr, .label = {}});

  // --- Login + select (sequential), then the pipelined fetch ---------------
  auto login = proxy.call("imap", to_bytes("LOGIN alice token123"));
  auto selected = proxy.call("imap", to_bytes("SELECT INBOX"));
  if (!login || !selected) {
    std::printf("login failed\n");
    return 1;
  }
  std::printf("provider: %s -> %zu message(s) remote\n",
              to_string(*selected).c_str(), std::size_t{6});

  const std::uint64_t bursts_before = proxy.metrics().batches;
  std::vector<runtime::RequestId> fetch_ids;
  for (int i = 0; i < 6; ++i)
    fetch_ids.push_back(
        *proxy.submit("imap", to_bytes("FETCH " + std::to_string(i))));
  if (!proxy.flush().ok()) {
    std::printf("pipelined fetch failed\n");
    return 1;
  }
  std::printf("pipelined %zu FETCHes in %llu sealed burst(s)\n",
              fetch_ids.size(),
              static_cast<unsigned long long>(proxy.metrics().batches -
                                              bursts_before));

  // --- Batched store into the isolated storage component -------------------
  mail::MailClient& mc = **client;
  auto storage_ep = mc.assembly().endpoint("ui", "storage");
  runtime::BatchChannel stores(
      *storage_ep,
      {.depth = 16, .hub = &mc.runtime_metrics(), .label = "ui->storage"});
  std::vector<runtime::SubmissionId> store_ids;
  for (const runtime::RequestId id : fetch_ids) {
    auto reply = proxy.take(id);
    if (!reply) return 1;
    const std::string line = to_string(*reply);  // "OK\n<message wire>"
    if (line.rfind("OK\n", 0) != 0) return 1;
    Bytes request = to_bytes("STORE INBOX\n" + line.substr(3));
    store_ids.push_back(*stores.submit(request));
  }
  if (!stores.flush().ok()) return 1;
  for (const runtime::SubmissionId id : store_ids)
    if (!stores.wait(id).ok()) return 1;
  std::printf("stored %zu message(s) through one ui->storage crossing\n",
              store_ids.size());

  // --- Use the mail as usual -------------------------------------------------
  auto display = mc.read_mail(0);
  std::printf("reading mail 0:\n  %s\n", display ? display->c_str() : "FAILED");

  const runtime::InvocationCounters& store_metrics = stores.metrics();
  std::printf("\n--- runtime metrics ---\n");
  std::printf("network: %llu request(s), %llu burst(s), depth hwm %llu\n",
              static_cast<unsigned long long>(proxy.metrics().submitted),
              static_cast<unsigned long long>(proxy.metrics().batches),
              static_cast<unsigned long long>(proxy.metrics().queue_depth_hwm));
  std::printf("ui->storage: %llu call(s), crossing cycles %llu vs sync %llu "
              "(saved %llu)\n",
              static_cast<unsigned long long>(store_metrics.completed),
              static_cast<unsigned long long>(store_metrics.crossing_cycles),
              static_cast<unsigned long long>(
                  store_metrics.sync_equivalent_cycles),
              static_cast<unsigned long long>(store_metrics.cycles_saved()));
  return 0;
}
