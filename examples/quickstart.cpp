// quickstart — the smallest complete lateral program.
//
// Creates a simulated machine, instantiates an isolation substrate by name,
// launches two mutually distrusting components, wires the one channel they
// are allowed to use, invokes a service across it, and attests the server's
// code identity. Swap "microkernel" for "sgx", "trustzone", "sep" or "tpm"
// and everything still works — that is the unified interface the paper
// calls for.
#include <cstdio>
#include <string>

#include "core/standard_registry.h"
#include "hw/machine.h"
#include "substrate/substrate.h"
#include "util/hex.h"

using namespace lateral;

int main(int argc, char** argv) {
  const std::string substrate_name = argc > 1 ? argv[1] : "microkernel";

  // 1. A hardware vendor manufactures a machine with fused keys.
  hw::Vendor vendor(/*seed=*/2026);
  hw::Machine machine(hw::MachineConfig{.name = "quickstart"}, vendor,
                      to_bytes("boot-rom"));

  // 2. Pick an isolation substrate by name.
  auto registry = core::make_standard_registry();
  auto substrate = registry.create(substrate_name, machine);
  if (!substrate) {
    std::printf("unknown substrate '%s'; try: microkernel trustzone sgx tpm sep\n",
                substrate_name.c_str());
    return 1;
  }
  std::printf("substrate: %s (TCB ~%llu LoC, features: %s)\n",
              (*substrate)->info().name.c_str(),
              static_cast<unsigned long long>((*substrate)->info().tcb_loc),
              substrate::features_to_string((*substrate)->info().features)
                  .c_str());

  // 3. Two components: a key vault (trusted) and a client.
  substrate::DomainSpec vault_spec;
  vault_spec.name = "vault";
  vault_spec.image = {"vault-image", to_bytes("vault code v1.0")};
  vault_spec.memory_pages = 2;
  auto vault = (*substrate)->create_domain(vault_spec);

  substrate::DomainSpec client_spec;
  client_spec.name = "client";
  client_spec.kind =
      has_feature((*substrate)->info().features,
                  substrate::Feature::legacy_hosting)
          ? substrate::DomainKind::legacy
          : substrate::DomainKind::trusted_component;
  client_spec.image = {"client-image", to_bytes("client code v1.0")};
  client_spec.memory_pages = 2;
  auto client = (*substrate)->create_domain(client_spec);
  if (!vault || !client) {
    std::printf("domain creation failed\n");
    return 1;
  }

  // 4. The only channel in the system (POLA: nothing else can talk).
  auto channel = (*substrate)->create_channel(*client, *vault);
  if (!channel) return 1;

  // 5. The vault's behaviour: answer signing requests, refuse the rest.
  (void)(*substrate)
      ->set_handler(*vault,
                    [](const substrate::Invocation& inv) -> Result<Bytes> {
                      if (to_string(inv.data).starts_with("sign:"))
                        return to_bytes("signed(" + to_string(inv.data) + ")");
                      return Errc::access_denied;
                    });

  auto reply = (*substrate)->call(*client, *channel, to_bytes("sign:hello"));
  std::printf("invoke over channel: %s\n",
              reply ? to_string(*reply).c_str() : errc_name(reply.error()).data());

  // 6. Isolation in action: the client cannot read the vault's memory.
  auto steal = (*substrate)->read_memory(*client, *vault, 0, 16);
  std::printf("client reads vault memory: %s (good: the substrate said no)\n",
              std::string(errc_name(steal.error())).c_str());

  // 7. Attestation: prove WHAT code the vault runs, chained to the vendor.
  if (has_feature((*substrate)->info().features,
                  substrate::Feature::attestation)) {
    auto quote = (*substrate)->attest(*vault, to_bytes("fresh-nonce-123"));
    if (quote) {
      const bool chain_ok = quote->verify(vendor.root_public_key()).ok();
      std::printf("quote: measurement=%s... chain=%s\n",
                  util::to_hex(crypto::digest_view(quote->measurement))
                      .substr(0, 16)
                      .c_str(),
                  chain_ok ? "VALID" : "BROKEN");
    }
  }

  std::printf("simulated cycles elapsed: %llu\n",
              static_cast<unsigned long long>(machine.now()));
  return 0;
}
