// smart_meter — Figure 3 of the paper, end to end.
//
//   Smart Meter Appliance                      Utility Server
//   ---------------------                      --------------
//   virtualized Android (legacy)               legacy server OS
//   metering TC  (TrustZone secure world)      anonymizer (SGX enclave)
//   gateway TC   (network whitelist)           database (legacy)
//
// The meter attests itself with the fused TrustZone key; the utility's
// anonymizer attests itself through the SGX quoting enclave; both checks
// are bound into one mutually authenticated secure channel over an
// untrusted network with an active man in the middle.
#include <cstdio>

#include "core/attestation.h"
#include "core/standard_registry.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "toolbox/anonymizer.h"
#include "toolbox/gateway.h"
#include "util/hex.h"

using namespace lateral;

namespace {

substrate::DomainSpec spec_of(const std::string& name,
                              substrate::DomainKind kind, std::string code) {
  substrate::DomainSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.image = {name + "-image", to_bytes(std::move(code))};
  spec.memory_pages = 4;
  return spec;
}

}  // namespace

int main() {
  auto registry = core::make_standard_registry();
  hw::Vendor arm_vendor(/*seed=*/100);     // meter SoC vendor
  hw::Vendor intel_vendor(/*seed=*/200);   // server CPU vendor

  // --- The meter appliance --------------------------------------------------
  hw::Machine meter_machine(hw::MachineConfig{.name = "smart-meter"},
                            arm_vendor, to_bytes("meter-boot-rom"));
  auto tz = *registry.create("trustzone", meter_machine);
  auto android = *tz->create_domain(
      spec_of("android", substrate::DomainKind::legacy, "android 14"));
  auto metering = *tz->create_domain(spec_of(
      "metering", substrate::DomainKind::trusted_component, "metering v2.1"));
  (void)android;

  // --- The utility server ----------------------------------------------------
  hw::Machine server_machine(hw::MachineConfig{.name = "utility-server"},
                             intel_vendor, to_bytes("server-boot-rom"));
  auto sgx = *registry.create("sgx", server_machine);
  auto server_os = *sgx->create_domain(
      spec_of("server-os", substrate::DomainKind::legacy, "linux"));
  const auto anonymizer_spec =
      spec_of("anonymizer", substrate::DomainKind::trusted_component,
              "anonymizer v1.0 (audited open source)");
  auto anonymizer = *sgx->create_domain(anonymizer_spec);
  (void)server_os;

  // --- Verifiers: each side knows the other's audited build -----------------
  core::AttestationVerifier meter_verifier(to_bytes("meter-entropy"));
  meter_verifier.add_trusted_root(intel_vendor.root_public_key());
  meter_verifier.expect_measurement("anonymizer",
                                    anonymizer_spec.image.measurement());

  core::AttestationVerifier utility_verifier(to_bytes("utility-entropy"));
  utility_verifier.add_trusted_root(arm_vendor.root_public_key());
  utility_verifier.expect_measurement(
      "metering",
      spec_of("metering", substrate::DomainKind::trusted_component,
              "metering v2.1")
          .image.measurement());

  // --- Untrusted network with a meddling man in the middle -------------------
  net::SimNetwork network;
  (void)network.register_endpoint("meter");
  (void)network.register_endpoint("utility");
  std::uint64_t observed = 0;
  network.set_tamperer([&](const std::string&, const std::string&,
                           BytesView payload) -> std::optional<Bytes> {
    ++observed;  // records everything; modification shown later
    return Bytes(payload.begin(), payload.end());
  });

  net::SecureChannelEndpoint meter(
      net::Role::initiator, to_bytes("meter-drbg"),
      net::ProverConfig{tz.get(), metering},
      net::VerifierConfig{&meter_verifier, "anonymizer"});
  net::SecureChannelEndpoint utility(
      net::Role::responder, to_bytes("utility-drbg"),
      net::ProverConfig{sgx.get(), anonymizer},
      net::VerifierConfig{&utility_verifier, "metering"});

  // --- Handshake --------------------------------------------------------------
  auto msg1 = meter.start();
  (void)network.send("meter", "utility", *msg1);
  auto msg2 = utility.handle_msg1(network.receive("utility")->payload);
  if (!msg2) {
    std::printf("handshake failed at msg1\n");
    return 1;
  }
  (void)network.send("utility", "meter", *msg2);
  auto msg3 = meter.handle_msg2(network.receive("meter")->payload);
  if (!msg3) {
    std::printf("meter REFUSED the server (anonymizer not the audited build)\n");
    return 1;
  }
  (void)network.send("meter", "utility", *msg3);
  if (!utility.handle_msg3(network.receive("utility")->payload).ok()) {
    std::printf("utility REFUSED the meter (no genuine hardware quote)\n");
    return 1;
  }
  std::printf("mutually attested channel established (MITM observed %llu "
              "datagrams, learned nothing)\n",
              static_cast<unsigned long long>(observed));

  // --- Telemetry into the audited anonymizer -----------------------------------
  // The anonymizer is the open-source trusted component the meter just
  // verified: it answers billing queries and releases only k-anonymous
  // aggregates (k=3 here). We simulate this meter plus two neighbours
  // reporting the same hours.
  toolbox::Anonymizer anon_service(/*k=*/3);
  for (int hour = 0; hour < 3; ++hour) {
    const std::string reading =
        "usage:" + std::to_string(2 + hour) + ".4kWh@h" + std::to_string(hour);
    auto record = meter.seal_record(to_bytes(reading));
    (void)network.send("meter", "utility", *record);
    auto plain = utility.open_record(network.receive("utility")->payload);
    std::printf("utility received: %s\n",
                plain ? to_string(*plain).c_str() : "TAMPERED");
    if (plain)
      (void)anon_service.ingest({.household = 17,
                               .bucket = static_cast<std::uint64_t>(hour),
                               .kwh = 2.4 + hour});
  }
  // Neighbouring households (over their own channels, elided).
  for (std::uint64_t neighbour : {18u, 19u})
    for (std::uint64_t hour = 0; hour < 3; ++hour)
      (void)anon_service.ingest(
          {.household = neighbour, .bucket = hour, .kwh = 2.0});

  std::printf("billing total for household 17: %.1f kWh\n",
              anon_service.billing_total(17).value_or(-1));
  auto aggregate = anon_service.aggregate(0);
  std::printf("analytics aggregate h0: %s (%zu contributors)\n",
              aggregate ? "released" : "withheld (k-anonymity)",
              aggregate ? aggregate->contributors : 0);
  std::printf("analyst asks for household 17's load curve: %s\n",
              std::string(errc_name(
                  anon_service.analyst_query_household_curve(17).error()))
                  .c_str());
  anon_service.retain_only_aggregates();
  std::printf("after retention: per-household data kept = %s\n",
              anon_service.has_per_household_data() ? "YES (bug!)" : "no");

  // --- Gateway: the rooted Android cannot join a botnet -------------------------
  toolbox::GatewayPolicy policy;
  policy.allowed_hosts = {"utility.example"};
  policy.bucket_capacity_bytes = 256;
  policy.refill_bytes_per_megacycle = 64;
  toolbox::Gateway gateway(policy);
  std::printf("gateway: telemetry to utility.example: %s\n",
              gateway.admit(0xA, "utility.example", 64,
                            meter_machine.now()).ok()
                  ? "forwarded"
                  : "blocked");
  std::printf("gateway: SYN flood to victim.example: %s\n",
              gateway.admit(0xA, "victim.example", 64,
                            meter_machine.now()).ok()
                  ? "forwarded (bug!)"
                  : "blocked (whitelist)");
  Status flood = Status::success();
  int sent = 0;
  while (flood.ok() && sent < 100) {
    flood = gateway.admit(0xA, "utility.example", 64, meter_machine.now());
    ++sent;
  }
  std::printf("gateway: flooding the allowed host throttled after %d packets\n",
              sent - 1);

  // --- Active attack: modify a record in flight --------------------------------
  network.set_tamperer([](const std::string&, const std::string&,
                          BytesView payload) -> std::optional<Bytes> {
    Bytes evil(payload.begin(), payload.end());
    evil[evil.size() / 2] ^= 0x80;  // try to lower the bill
    return evil;
  });
  auto record = meter.seal_record(to_bytes("usage:9.9kWh@h3"));
  (void)network.send("meter", "utility", *record);
  auto tampered = utility.open_record(network.receive("utility")->payload);
  std::printf("tampered record: %s\n",
              tampered ? "ACCEPTED (BUG!)"
                       : std::string(errc_name(tampered.error())).c_str());

  // --- What the fake-meter emulation runs into ---------------------------------
  net::SecureChannelEndpoint emulation(net::Role::initiator,
                                       to_bytes("fake-meter"), std::nullopt,
                                       std::nullopt);
  net::SecureChannelEndpoint utility2(
      net::Role::responder, to_bytes("utility-drbg-2"),
      net::ProverConfig{sgx.get(), anonymizer},
      net::VerifierConfig{&utility_verifier, "metering"});
  auto e1 = emulation.start();
  auto e2 = utility2.handle_msg1(*e1);
  auto e3 = emulation.handle_msg2(*e2);
  const Status emulation_result = utility2.handle_msg3(*e3);
  std::printf("software-emulated meter: %s\n",
              emulation_result.ok()
                  ? "ACCEPTED (BUG!)"
                  : "refused - no fused key, no valid quote");

  std::printf("meter cycles: %llu, server cycles: %llu\n",
              static_cast<unsigned long long>(meter_machine.now()),
              static_cast<unsigned long long>(server_machine.now()));
  return 0;
}
