// email_client — the paper's §III-C worked example, using the real
// decomposed mail application from src/mail.
//
// ui | imap | tls | render | addressbook | storage run as six mutually
// isolated components on a microkernel substrate, wired by manifest (POLA).
// Mail is stored through VPFS on an untrusted disk; the provider's IMAP
// server is reachable only through the tls component. The second half of
// the program plays the attack the paper opens with: a crafted HTML mail
// exploits the renderer, and the isolation substrate contains it — then we
// compare against the monolithic counterfactual and print the TCB table.
#include <cstdio>

#include "core/tcb.h"
#include "gui/secure_gui.h"
#include "mail/client.h"
#include "microkernel/microkernel.h"
#include "util/table.h"

using namespace lateral;

int main() {
  hw::Vendor vendor(/*seed=*/42);
  hw::Machine machine(hw::MachineConfig{.name = "laptop"}, vendor,
                      to_bytes("laptop-rom"));
  microkernel::Microkernel kernel(machine, substrate::SubstrateConfig{});

  // The provider side and the untrusted local disk.
  mail::ImapServer provider("alice", "token123");
  legacy::LegacyFilesystem disk;

  auto client = mail::MailClient::create({.substrate = &kernel,
                                          .disk = &disk,
                                          .server = &provider,
                                          .vpfs_seed = to_bytes("mail-keys")});
  if (!client) {
    std::printf("client composition failed\n");
    return 1;
  }
  std::printf("composed the decomposed mail client (6 components, POLA)\n");

  // --- Normal mail day -------------------------------------------------------
  (void)provider.deliver(
      "INBOX", mail::make_message("bob@example", "alice@example", "Dinner?",
                                  "<p>How about <b>8pm</b>?</p>"));
  (void)(*client)->login("alice", "token123");
  auto synced = (*client)->sync_inbox();
  std::printf("synced %zu message(s) from the provider\n",
              synced.value_or(0));
  auto display = (*client)->read_mail(0);
  std::printf("reading mail 0:\n  %s\n",
              display ? display->c_str() : "FAILED");

  (void)(*client)->add_contact("bob", "bob@example");
  auto completions = (*client)->complete_recipient("b");
  std::printf("autocomplete 'b' -> %s\n",
              completions && !completions->empty()
                  ? (*completions)[0].c_str()
                  : "(none)");
  (void)(*client)->compose("bob", "Re: Dinner?", "8pm works!");
  std::printf("replied via the provider's Sent folder\n");

  // The user always sees who they are typing at.
  gui::SecureGui screen(80, 24);
  auto compose_ui = screen.create_session("compose", gui::TrustLevel::trusted,
                                          gui::Rect{0, 1, 80, 10});
  if (compose_ui) {
    (void)screen.set_focus(*compose_ui);
    std::printf("GUI indicator: %s\n", screen.indicator_text().c_str());
  }

  // --- The attack -------------------------------------------------------------
  std::printf("\n--- crafted HTML mail arrives ---\n");
  (void)provider.deliver(
      "INBOX",
      mail::make_message("evil@attacker", "alice@example", "Totally safe",
                         std::string("<p>click here</p>") +
                             mail::HtmlRenderer::kExploitMarker));
  (void)(*client)->sync_inbox();
  auto owned = (*client)->read_mail(1);  // rendering triggers the exploit
  std::printf("rendered: %s\n", owned ? owned->c_str() : "FAILED");
  std::printf("renderer compromised: %s\n",
              (*client)->renderer_compromised() ? "yes" : "no");
  (void)(*client)->flag_renderer_compromised();

  core::Assembly& assembly = (*client)->assembly();
  const auto render = *assembly.component("render");
  const auto tls = *assembly.component("tls");
  auto steal_keys = kernel.read_memory(render->domain, tls->domain, 0, 64);
  std::printf("renderer reads TLS keys: %s\n",
              std::string(errc_name(steal_keys.error())).c_str());
  auto steal_contacts =
      assembly.invoke("render", "addressbook", to_bytes("LOOKUP bob"));
  std::printf("renderer queries addressbook: %s\n",
              std::string(errc_name(steal_contacts.error())).c_str());

  // The rest of the client shrugs.
  auto still_works = (*client)->compose("bob", "after the exploit",
                                        "mail still flows");
  std::printf("composing after the exploit: %s\n",
              still_works.ok() ? "works" : "broken");

  // --- Containment and TCB numbers -------------------------------------------
  std::vector<core::Manifest> manifests;
  for (const std::string& name : assembly.component_names())
    manifests.push_back((*assembly.component(name))->manifest);

  const core::TrustGraph graph = assembly.trust_graph();
  const core::TrustGraph mono =
      core::TrustGraph::monolithic_counterfactual(manifests);
  std::printf("\nasset value lost (decomposed): %.0f of %.0f\n",
              *graph.compromised_value("render"), graph.total_value());
  std::printf("asset value lost (monolithic): %.0f of %.0f\n",
              *mono.compromised_value("render"), mono.total_value());

  std::printf("\n--- per-component TCB ---\n");
  util::Table table({"component", "own", "substrate", "trusted peers", "total"});
  const auto reports = core::tcb_of_manifests(
      manifests, {{"microkernel", kernel.info().tcb_loc}});
  for (const auto& report : reports)
    table.add_row({report.component, std::to_string(report.own_loc),
                   std::to_string(report.substrate_loc),
                   std::to_string(report.trusted_peer_loc),
                   std::to_string(report.total())});
  table.add_row({"(monolith)", "-", "-", "-",
                 std::to_string(core::monolithic_tcb(
                     manifests, kernel.info().tcb_loc))});
  std::printf("%s", table.render().c_str());
  return 0;
}
