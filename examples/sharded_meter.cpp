// sharded_meter — the FIG13 scaling story on the smart-meter workload.
//
// The utility's anonymizer (paper §III-C) is the fleet's hot component:
// every meter reading crosses into it. One domain on one core caps the
// whole ingest pipeline, so the manifest declares `shard 4` and the
// composer expands the anonymizer into four independent domains — one per
// simulated core, each with its own channel from the gate, its own
// scheduler slot, its own flight-recorder ring. Readings route by
// household id (`Assembly::shard_ref`), so one household always lands on
// the same shard and per-shard aggregation stays consistent.
//
// The example drives the same 64-meter workload on a 1-core and a 4-core
// machine and prints the scaling, then exports a Chrome trace in which
// every shard shows up as its own named thread (chrome://tracing).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/composer.h"
#include "core/manifest.h"
#include "core/standard_registry.h"
#include "hw/machine.h"
#include "microkernel/microkernel.h"
#include "trace/exporter.h"
#include "trace/trace.h"

using namespace lateral;

namespace {

constexpr char kManifest[] = R"(# Fleet ingest, sharded across cores.
component anonymizer {
  kind trusted
  shard 4                 # one domain per core - the FIG13 layout
  channel gate
  loc 1200
  trace {
    observer gate         # the gate may read anonymizer spans
  }
}
component gate {
  kind trusted
  channel anonymizer      # fans out to all four shards at compose time
  loc 800
}
)";

constexpr int kMeters = 64;
constexpr int kReadingsPerMeter = 4;

struct RunResult {
  Cycles epoch = 0;              // global epoch: max over core clocks
  std::map<std::string, int> per_shard;  // readings each shard served
};

/// Compose the manifest on a `cores`-core machine and push the fleet's
/// readings through, each meter pinned (by household id) to its shard and
/// to the core that shard calls home.
RunResult run_fleet(std::size_t cores, trace::Tracer* tracer) {
  hw::MachineConfig config;
  config.name = "meter-hub-x" + std::to_string(cores);
  config.cores = cores;
  hw::Vendor vendor(/*seed=*/42);
  hw::Machine machine(config, vendor, to_bytes("hub-boot-rom"));
  microkernel::Microkernel mk(machine, substrate::SubstrateConfig{});
  if (tracer) mk.set_tracer(tracer);

  core::SystemComposer composer({{"microkernel", &mk}});
  auto manifests = core::parse_manifests(kManifest);
  auto assembly = composer.compose(*manifests);
  if (!assembly.ok()) {
    std::printf("compose failed (%zu diagnostics)\n",
                composer.diagnostics().size());
    return {};
  }

  // Each shard anonymizes independently: it sees only its own households.
  const std::size_t shard_count = (*assembly)->shard_count("anonymizer");
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::string name = "anonymizer#" + std::to_string(s);
    (void)(*assembly)->set_behavior(
        name, [name](const substrate::Invocation& inv) -> Result<Bytes> {
          // Strip the household id, keep the bucketed usage — the k-anon
          // aggregation itself is toolbox::Anonymizer's job (smart_meter
          // example); here the point is which *domain* did the work.
          const std::string reading(inv.data.begin(), inv.data.end());
          const auto cut = reading.find('|');
          return to_bytes(name + " kept:" +
                          (cut == std::string::npos
                               ? reading
                               : reading.substr(cut + 1)));
        });
  }

  const auto gate = *(*assembly)->ref("gate");
  RunResult result;
  const trace::TraceContext ctx =
      tracer ? tracer->begin_trace() : trace::TraceContext{};
  for (int round = 0; round < kReadingsPerMeter; ++round) {
    for (int meter = 0; meter < kMeters; ++meter) {
      const auto shard =
          *(*assembly)->shard_ref("anonymizer",
                                  static_cast<std::uint64_t>(meter));
      // The meter's shard index is also its home core: shard s of N serves
      // from core s — the layout bench_fig13_scaling measures.
      const std::size_t core =
          static_cast<std::size_t>(meter) % shard_count % cores;
      hw::CoreLease lease(machine, core);
      trace::TraceScope scope(ctx);
      const std::string reading = "household:" + std::to_string(meter) +
                                  "|2.4kWh@h" + std::to_string(round);
      auto reply = (*assembly)->invoke(gate, shard, to_bytes(reading));
      if (reply.ok()) {
        const std::string who = to_string(*reply);
        ++result.per_shard[who.substr(0, who.find(' '))];
      }
    }
  }
  result.epoch = machine.now();
  return result;
}

}  // namespace

int main() {
  // Same fleet, one core vs four: the manifest does not change, only the
  // machine does — the `shard 4` expansion gives the extra cores something
  // independent to run.
  const RunResult single = run_fleet(1, nullptr);

  trace::Tracer tracer;
  const RunResult quad = run_fleet(4, &tracer);
  if (single.epoch == 0 || quad.epoch == 0) return 1;

  const int total = kMeters * kReadingsPerMeter;
  std::printf("fleet: %d meters x %d readings = %d crossings\n", kMeters,
              kReadingsPerMeter, total);
  std::printf("1 core : %8llu cycles global epoch\n",
              static_cast<unsigned long long>(single.epoch));
  std::printf("4 cores: %8llu cycles global epoch  (%.2fx)\n",
              static_cast<unsigned long long>(quad.epoch),
              static_cast<double>(single.epoch) /
                  static_cast<double>(quad.epoch));
  std::printf("per-shard load (household id mod 4 keeps a household's\n"
              "readings on one shard):\n");
  for (const auto& [shard, served] : quad.per_shard)
    std::printf("  %-14s %3d readings\n", shard.c_str(), served);

  // Per-shard spans in the Chrome export: every shard domain owns its own
  // flight-recorder ring, so chrome://tracing shows anonymizer#0..#3 as
  // separate named threads. The gate is a manifest-declared observer, so
  // the export is policy-checked, not a debug backdoor.
  auto manifests = core::parse_manifests(kManifest);
  trace::TraceExporter exporter(tracer);
  auto json = exporter.chrome_trace_json(
      {.observer = "gate", .manifests = *manifests});
  if (!json.ok()) {
    std::printf("trace export refused: %s\n",
                std::string(errc_name(json.error())).c_str());
    return 1;
  }
  int shard_threads = 0;
  for (const auto& ring : tracer.rings())
    if (ring.label.rfind("anonymizer#", 0) == 0 && ring.ring &&
        !ring.ring->snapshot().empty())
      ++shard_threads;
  std::printf("chrome trace: %zu bytes, %d shard threads with spans\n",
              json->size(), shard_threads);
  std::printf("(pipe to a file and open in chrome://tracing to see the\n"
              " four anonymizer lanes interleave)\n");
  return 0;
}
