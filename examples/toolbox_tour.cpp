// toolbox_tour — the reusable trusted components in one scenario.
//
// Paper §III-C: "these use cases ... will likely appear in many
// applications and should be provided as reusable components." This example
// chains them: a device boots (secure vs authenticated launch), logs into a
// service without any password (attestation-backed tokens), stores its
// state through a generic trusted wrapper on a hostile OS, and reports
// readings over a federated attested link into a k-anonymizing aggregator
// behind a rate-limiting gateway.
#include <cstdio>

#include "lateral.h"

using namespace lateral;

int main() {
  hw::Vendor vendor(/*seed=*/77);

  // --- 1. Launch policies (core/launch) --------------------------------------
  crypto::HmacDrbg owner_drbg(to_bytes("device-owner"));
  const crypto::RsaKeyPair owner = crypto::RsaKeyPair::generate(owner_drbg, 512);
  std::vector<core::BootStage> chain;
  for (const char* stage : {"bootloader", "kernel", "metering-app"}) {
    core::BootStage s;
    s.name = stage;
    s.image = {stage, to_bytes(std::string("code-of-") + stage)};
    s.signature = crypto::rsa_sign(owner, s.image.code);
    chain.push_back(std::move(s));
  }
  auto secure = core::run_secure_boot(owner.pub, chain);
  std::printf("secure boot of signed chain: %s (%zu stages)\n",
              secure.booted ? "booted" : "refused", secure.stages_run);
  chain[1].image.code = to_bytes("code-of-kernel-with-rootkit");
  auto evil = core::run_secure_boot(owner.pub, chain);
  std::printf("secure boot of tampered chain: refused at stage %zu (%s)\n",
              evil.stages_run, evil.refusal.c_str());

  // --- 2. The device and the service ------------------------------------------
  hw::Machine device(hw::MachineConfig{.name = "meter"}, vendor,
                     to_bytes("device-rom"));
  auto registry = core::make_standard_registry();
  auto tz = *registry.create("trustzone", device);
  substrate::DomainSpec metering_spec;
  metering_spec.name = "metering";
  metering_spec.image = {"metering", to_bytes("metering v2.1")};
  metering_spec.memory_pages = 2;
  auto metering = *tz->create_domain(metering_spec);

  core::AttestationVerifier service_verifier(to_bytes("service"));
  service_verifier.add_trusted_root(vendor.root_public_key());
  service_verifier.expect_measurement("metering",
                                      metering_spec.image.measurement());

  // --- 3. Password-less login (toolbox/authenticator) -------------------------
  toolbox::PasswordlessAuthenticator auth(service_verifier, "metering",
                                          to_bytes("service-token-key"));
  const Bytes nonce = auth.begin();
  auto quote = core::respond_to_challenge(*tz, metering, nonce,
                                          to_bytes("lateral.toolbox.login.v1"));
  auto token = auth.complete(*quote, nonce);
  std::printf("password-less login: %s (token %zu bytes)\n",
              token ? "accepted" : "refused",
              token ? token->token.size() : 0);
  const bool valid_before = auth.validate(token->token).ok();
  const bool revoked = auth.revoke(token->serial).ok();
  const bool valid_after = auth.validate(token->token).ok();
  std::printf("token validates: %s; after revocation: %s\n",
              valid_before ? "yes" : "no",
              (revoked && !valid_after) ? "rejected" : "STILL VALID (bug)");

  // --- 4. Trusted wrapper over a hostile OS (toolbox/trusted_wrapper) --------
  legacy::LegacyOs cloud("cloud-os");
  (void)toolbox::TrustedStore::register_backend(cloud);
  toolbox::TrustedStore store(cloud, to_bytes("device-store-key"));
  (void)store.put("calibration", to_bytes("factor=1.000"));
  cloud.compromise(legacy::MaliciousMode::tamper_replies);
  auto tampered = store.get("calibration");
  std::printf("compromised OS serves calibration: %s\n",
              tampered ? "ACCEPTED (bug!)"
                       : std::string(errc_name(tampered.error())).c_str());

  // --- 5. Federated attested reporting (net/federation) -----------------------
  hw::Machine server(hw::MachineConfig{.name = "aggregator"}, vendor,
                     to_bytes("server-rom"));
  auto sgx = *registry.create("sgx", server);
  substrate::DomainSpec anon_spec;
  anon_spec.name = "anonymizer";
  anon_spec.image = {"anonymizer", to_bytes("anonymizer v1.0")};
  anon_spec.memory_pages = 2;
  auto anonymizer_domain = *sgx->create_domain(anon_spec);

  core::AttestationVerifier device_verifier(to_bytes("device-v"));
  device_verifier.add_trusted_root(vendor.root_public_key());
  device_verifier.expect_measurement("anonymizer",
                                     anon_spec.image.measurement());

  net::SimNetwork network;
  (void)network.register_endpoint("meter");
  (void)network.register_endpoint("aggregator");
  auto link = net::establish_link(
      network, "meter", "aggregator",
      {.initiator_verifier = net::VerifierConfig{&device_verifier,
                                                 "anonymizer"},
       .responder_prover = net::ProverConfig{sgx.get(), anonymizer_domain}});
  if (!link) {
    std::printf("federated link failed\n");
    return 1;
  }
  std::printf("federated link up: meter verified the anonymizer enclave\n");

  // The aggregator side: k-anonymizer behind a gateway.
  toolbox::Anonymizer aggregator(/*k=*/3);
  toolbox::Gateway gateway({.allowed_hosts = {"aggregator"},
                            .bucket_capacity_bytes = 4096,
                            .refill_bytes_per_megacycle = 1024});
  (void)(*link)->responder_dispatcher().register_method(
      "report", [&](BytesView payload) -> Result<Bytes> {
        // payload = "<household> <bucket> <kwh*1000>"
        std::uint64_t household = 0, bucket = 0, milli = 0;
        if (std::sscanf(to_string(payload).c_str(), "%lu %lu %lu", &household,
                        &bucket, &milli) != 3)
          return Errc::invalid_argument;
        if (!gateway.admit(household, "aggregator", payload.size(), 0).ok())
          return Errc::exhausted;
        (void)aggregator.ingest({.household = household,
                                 .bucket = bucket,
                                 .kwh = static_cast<double>(milli) / 1000.0});
        return Bytes{};
      });

  for (std::uint64_t household : {17u, 18u, 19u}) {
    const std::string report =
        std::to_string(household) + " 0 " + std::to_string(2000 + household);
    (void)(*link)->proxy().call("report", to_bytes(report));
  }
  auto aggregate = aggregator.aggregate(0);
  std::printf("aggregate released with %zu contributors, mean %.3f kWh\n",
              aggregate ? aggregate->contributors : 0,
              aggregate ? aggregate->mean_kwh : 0.0);
  std::printf("individual curve query: %s\n",
              std::string(errc_name(
                  aggregator.analyst_query_household_curve(17).error()))
                  .c_str());
  return 0;
}
