// toolbox_tour — the reusable trusted components in one scenario.
//
// Paper §III-C: "these use cases ... will likely appear in many
// applications and should be provided as reusable components." This example
// chains them: a device boots (secure vs authenticated launch), logs into a
// service without any password (attestation-backed tokens), stores its
// state through a generic trusted wrapper on a hostile OS, and reports
// readings over a federated attested link into a k-anonymizing aggregator
// behind a rate-limiting gateway — and finally takes a vendor-signed OTA
// update, watches the new image fail its probation heartbeat, and reverts
// automatically with the rollback counter untouched.
#include <cstdio>

#include "lateral.h"
#include "supervisor/supervisor.h"
#include "update/update.h"

using namespace lateral;

int main() {
  hw::Vendor vendor(/*seed=*/77);

  // --- 1. Launch policies (core/launch) --------------------------------------
  crypto::HmacDrbg owner_drbg(to_bytes("device-owner"));
  const crypto::RsaKeyPair owner = crypto::RsaKeyPair::generate(owner_drbg, 512);
  std::vector<core::BootStage> chain;
  for (const char* stage : {"bootloader", "kernel", "metering-app"}) {
    core::BootStage s;
    s.name = stage;
    s.image = {stage, to_bytes(std::string("code-of-") + stage)};
    s.signature = crypto::rsa_sign(owner, s.image.code);
    chain.push_back(std::move(s));
  }
  auto secure = core::run_secure_boot(owner.pub, chain);
  std::printf("secure boot of signed chain: %s (%zu stages)\n",
              secure.booted ? "booted" : "refused", secure.stages_run);
  chain[1].image.code = to_bytes("code-of-kernel-with-rootkit");
  auto evil = core::run_secure_boot(owner.pub, chain);
  std::printf("secure boot of tampered chain: refused at stage %zu (%s)\n",
              evil.stages_run, evil.refusal.c_str());

  // --- 2. The device and the service ------------------------------------------
  hw::Machine device(hw::MachineConfig{.name = "meter"}, vendor,
                     to_bytes("device-rom"));
  auto registry = core::make_standard_registry();
  auto tz = *registry.create("trustzone", device);
  substrate::DomainSpec metering_spec;
  metering_spec.name = "metering";
  metering_spec.image = {"metering", to_bytes("metering v2.1")};
  metering_spec.memory_pages = 2;
  auto metering = *tz->create_domain(metering_spec);

  core::AttestationVerifier service_verifier(to_bytes("service"));
  service_verifier.add_trusted_root(vendor.root_public_key());
  service_verifier.expect_measurement("metering",
                                      metering_spec.image.measurement());

  // --- 3. Password-less login (toolbox/authenticator) -------------------------
  toolbox::PasswordlessAuthenticator auth(service_verifier, "metering",
                                          to_bytes("service-token-key"));
  const Bytes nonce = auth.begin();
  auto quote = core::respond_to_challenge(*tz, metering, nonce,
                                          to_bytes("lateral.toolbox.login.v1"));
  auto token = auth.complete(*quote, nonce);
  std::printf("password-less login: %s (token %zu bytes)\n",
              token ? "accepted" : "refused",
              token ? token->token.size() : 0);
  const bool valid_before = auth.validate(token->token).ok();
  const bool revoked = auth.revoke(token->serial).ok();
  const bool valid_after = auth.validate(token->token).ok();
  std::printf("token validates: %s; after revocation: %s\n",
              valid_before ? "yes" : "no",
              (revoked && !valid_after) ? "rejected" : "STILL VALID (bug)");

  // --- 4. Trusted wrapper over a hostile OS (toolbox/trusted_wrapper) --------
  legacy::LegacyOs cloud("cloud-os");
  (void)toolbox::TrustedStore::register_backend(cloud);
  toolbox::TrustedStore store(cloud, to_bytes("device-store-key"));
  (void)store.put("calibration", to_bytes("factor=1.000"));
  cloud.compromise(legacy::MaliciousMode::tamper_replies);
  auto tampered = store.get("calibration");
  std::printf("compromised OS serves calibration: %s\n",
              tampered ? "ACCEPTED (bug!)"
                       : std::string(errc_name(tampered.error())).c_str());

  // --- 5. Federated attested reporting (net/federation) -----------------------
  hw::Machine server(hw::MachineConfig{.name = "aggregator"}, vendor,
                     to_bytes("server-rom"));
  auto sgx = *registry.create("sgx", server);
  substrate::DomainSpec anon_spec;
  anon_spec.name = "anonymizer";
  anon_spec.image = {"anonymizer", to_bytes("anonymizer v1.0")};
  anon_spec.memory_pages = 2;
  auto anonymizer_domain = *sgx->create_domain(anon_spec);

  core::AttestationVerifier device_verifier(to_bytes("device-v"));
  device_verifier.add_trusted_root(vendor.root_public_key());
  device_verifier.expect_measurement("anonymizer",
                                     anon_spec.image.measurement());

  net::SimNetwork network;
  (void)network.register_endpoint("meter");
  (void)network.register_endpoint("aggregator");
  auto link = net::establish_link(
      network, "meter", "aggregator",
      {.initiator_verifier = net::VerifierConfig{&device_verifier,
                                                 "anonymizer"},
       .responder_prover = net::ProverConfig{sgx.get(), anonymizer_domain}});
  if (!link) {
    std::printf("federated link failed\n");
    return 1;
  }
  std::printf("federated link up: meter verified the anonymizer enclave\n");

  // The aggregator side: k-anonymizer behind a gateway.
  toolbox::Anonymizer aggregator(/*k=*/3);
  toolbox::Gateway gateway({.allowed_hosts = {"aggregator"},
                            .bucket_capacity_bytes = 4096,
                            .refill_bytes_per_megacycle = 1024});
  (void)(*link)->responder_dispatcher().register_method(
      "report", [&](BytesView payload) -> Result<Bytes> {
        // payload = "<household> <bucket> <kwh*1000>"
        std::uint64_t household = 0, bucket = 0, milli = 0;
        if (std::sscanf(to_string(payload).c_str(), "%lu %lu %lu", &household,
                        &bucket, &milli) != 3)
          return Errc::invalid_argument;
        if (!gateway.admit(household, "aggregator", payload.size(), 0).ok())
          return Errc::exhausted;
        (void)aggregator.ingest({.household = household,
                                 .bucket = bucket,
                                 .kwh = static_cast<double>(milli) / 1000.0});
        return Bytes{};
      });

  for (std::uint64_t household : {17u, 18u, 19u}) {
    const std::string report =
        std::to_string(household) + " 0 " + std::to_string(2000 + household);
    (void)(*link)->proxy().call("report", to_bytes(report));
  }
  auto aggregate = aggregator.aggregate(0);
  std::printf("aggregate released with %zu contributors, mean %.3f kWh\n",
              aggregate ? aggregate->contributors : 0,
              aggregate ? aggregate->mean_kwh : 0.0);
  std::printf("individual curve query: %s\n",
              std::string(errc_name(
                  aggregator.analyst_query_household_curve(17).error()))
                  .c_str());

  // --- 6. Staged OTA update with automatic revert (update/) -------------------
  hw::Machine field(hw::MachineConfig{.name = "field-device"}, vendor,
                    to_bytes("field-rom"));
  auto mk = *registry.create("microkernel", field);
  tpm::Tpm rollback_chip(field, {});
  core::SystemComposer composer({{"microkernel", mk.get()}});
  auto manifests = core::parse_manifests(R"(
    component updater {
      substrate microkernel
      channel app
      region app 65536
    }
    component app {
      substrate microkernel
      channel updater
      restart {
        max 4
        backoff 10
        escalate degraded
      }
      update {
        key vendor
        slots 2
        probation 2
      }
    }
  )");
  auto assembly = composer.compose(*manifests);
  if (!assembly) {
    std::printf("update assembly failed to compose\n");
    return 1;
  }
  (void)(*assembly)->set_behavior(
      "app", [](const substrate::Invocation&) -> Result<Bytes> {
        return to_bytes("serving");
      });
  core::AttestationVerifier field_verifier(to_bytes("field-v"));
  field_verifier.add_trusted_root(vendor.root_public_key());
  supervisor::Supervisor sup(**assembly,
                             {.verifier = &field_verifier});
  (void)sup.watch_all();
  update::DeviceRollbackCounters<tpm::Tpm> counters(rollback_chip);
  crypto::HmacDrbg fw_drbg(to_bytes("firmware-vendor"));
  const auto fw_vendor = crypto::RsaKeyPair::generate(fw_drbg, 512);
  update::UpdateOrchestrator ota(**assembly, sup, counters, fw_vendor.pub,
                                 {.chunk_bytes = 64});

  const auto signed_image = [&](std::uint64_t version) {
    Bytes image = to_bytes("app firmware v" + std::to_string(version));
    auto manifest = update::make_manifest("app", version, image);
    update::sign_manifest(manifest, fw_vendor);
    return std::pair{manifest, image};
  };

  // v1 streams into the inactive slot, swaps through an attested restart,
  // survives probation, and the rollback counter advances.
  auto [v1, v1_image] = signed_image(1);
  if (auto s = ota.stage(v1, v1_image); !s.ok())
    std::printf("OTA v1 stage refused: %s\n",
                std::string(errc_name(s.error())).c_str());
  if (auto s = ota.arm("app"); !s.ok())
    std::printf("OTA v1 arm refused: %s\n",
                std::string(errc_name(s.error())).c_str());
  if (auto s = ota.commit("app"); !s.ok())
    std::printf("OTA v1 commit refused: %s\n",
                std::string(errc_name(s.error())).c_str());
  while (ota.state("app") == update::UpdateState::probation)
    (void)ota.probation_tick("app");
  std::printf("OTA v1: %s, rollback counter %llu\n",
              std::string(update::update_state_name(ota.state("app"))).c_str(),
              static_cast<unsigned long long>(*counters.read("update.app")));

  // Re-offering v1 — validly signed, merely old — is the rollback attack;
  // only the monotonic counter can refuse it.
  std::printf("OTA v1 replay: %s\n",
              std::string(errc_name(ota.stage(v1, v1_image).error())).c_str());

  // v2 boots but dies in probation: automatic revert, counter untouched.
  auto [v2, v2_image] = signed_image(2);
  (void)ota.stage(v2, v2_image);
  (void)ota.arm("app");
  field.advance(1 << 16);
  (void)ota.commit("app");
  (void)(*assembly)->kill_component("app");
  (void)ota.probation_tick("app");
  std::printf("OTA v2 failed probation: %s, rollback counter still %llu\n",
              std::string(update::update_state_name(ota.state("app"))).c_str(),
              static_cast<unsigned long long>(*counters.read("update.app")));
  return 0;
}
