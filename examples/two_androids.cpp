// two_androids — the Simko3 "Merkel-Phone" from §II-B.
//
// "This approach was used on ARM hardware to implement Simko3 ... a
// smartphone that is based on the L4Re system. The phone offers two Android
// systems side by side on the same phone, allowing the user to separate
// private and business use within one device. This separation is
// accomplished by running two virtual machines, each running its own
// instance of Android."
//
// We build the phone twice to show the paper's §II-C argument that
// "address space walls are just as impenetrable" as virtual machine walls:
// once as TrustZone + hypervisor, once as a microkernel hosting two
// paravirtualized legacy OSes. The security outcome is identical; the
// TCB and invocation costs differ.
#include <cstdio>

#include "gui/secure_gui.h"
#include "microkernel/microkernel.h"
#include "trustzone/trustzone.h"
#include "util/table.h"

using namespace lateral;

namespace {

substrate::DomainSpec android_spec(const std::string& name) {
  substrate::DomainSpec spec;
  spec.name = name;
  spec.kind = substrate::DomainKind::legacy;
  spec.image = {name + "-image", to_bytes("android-system:" + name)};
  spec.memory_pages = 8;
  return spec;
}

/// Run the separation scenario on any substrate; returns (leak_blocked,
/// cross_write_blocked).
std::pair<bool, bool> run_scenario(substrate::IsolationSubstrate& substrate,
                                   const char* label) {
  auto personal = *substrate.create_domain(android_spec("android-personal"));
  auto business = *substrate.create_domain(android_spec("android-business"));

  (void)substrate.write_memory(personal, personal, 0,
                               to_bytes("private: vacation photos"));
  (void)substrate.write_memory(business, business, 0,
                               to_bytes("business: merger documents"));

  // The personal Android gets rooted by a malicious app.
  (void)substrate.mark_compromised(personal);
  const bool leak_blocked =
      !substrate.read_memory(personal, business, 0, 26).ok();
  const bool write_blocked =
      !substrate.write_memory(personal, business, 0, to_bytes("ransom"))
           .ok();

  std::printf("%s: rooted personal Android reads business data: %s; "
              "tampers with it: %s\n",
              label, leak_blocked ? "blocked" : "LEAKED",
              write_blocked ? "blocked" : "TAMPERED");
  return {leak_blocked, write_blocked};
}

}  // namespace

int main() {
  hw::Vendor vendor(/*seed=*/31337);

  // --- Variant A: TrustZone + hypervisor ------------------------------------
  hw::Machine phone_a(hw::MachineConfig{.name = "simko3-tz"}, vendor,
                      to_bytes("phone-rom"));
  trustzone::TrustZone tz(phone_a, substrate::SubstrateConfig{},
                          trustzone::TrustZoneOptions{.hypervisor = true});
  run_scenario(tz, "TrustZone+hypervisor");

  // --- Variant B: microkernel with two paravirtualized VMs ------------------
  hw::Machine phone_b(hw::MachineConfig{.name = "simko3-l4"}, vendor,
                      to_bytes("phone-rom"));
  microkernel::Microkernel l4(phone_b, substrate::SubstrateConfig{});
  run_scenario(l4, "L4-microkernel      ");

  // --- 'Is virtualization better?' — the §II-C comparison -------------------
  const substrate::IsolationSubstrate& tz_api = tz;
  const substrate::IsolationSubstrate& l4_api = l4;
  util::Table table({"variant", "TCB LoC", "cross-VM message (64 B)"});
  table.add_row({"TrustZone+hypervisor", std::to_string(tz.info().tcb_loc),
                 util::fmt_cycles(tz_api.message_cost(64))});
  table.add_row({"L4 microkernel", std::to_string(l4.info().tcb_loc),
                 util::fmt_cycles(l4_api.message_cost(64))});
  std::printf("\n%s", table.render().c_str());
  std::printf("\nSame walls, different plumbing: the paper's point that the\n"
              "'kernel vs hypervisor' naming is an academic discussion —\n"
              "but TCB size and invocation cost are real engineering\n"
              "trade-offs the unified interface lets you choose between.\n\n");

  // --- Secure GUI so the user always knows which world is focused -----------
  gui::SecureGui screen(72, 20);
  auto personal_ui = screen.create_session(
      "personal", gui::TrustLevel::legacy, gui::Rect{0, 1, 36, 18});
  auto business_ui = screen.create_session(
      "business", gui::TrustLevel::legacy, gui::Rect{36, 1, 36, 18});
  if (personal_ui && business_ui) {
    (void)screen.set_focus(*personal_ui);
    std::printf("focus personal  -> indicator: %s\n",
                screen.indicator_text().c_str());
    (void)screen.set_focus(*business_ui);
    std::printf("focus business  -> indicator: %s\n",
                screen.indicator_text().c_str());
  }
  return 0;
}
