// Unit tests for lateral::util — hex codec, Result/Status, PRNG, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/hex.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/types.h"

namespace lateral {
namespace {

TEST(Hex, EncodesKnownBytes) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(util::to_hex(data), "0001abff");
}

TEST(Hex, EncodesEmpty) { EXPECT_EQ(util::to_hex(Bytes{}), ""); }

TEST(Hex, DecodesLowerAndUpperCase) {
  auto lower = util::from_hex("deadbeef");
  auto upper = util::from_hex("DEADBEEF");
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*lower, *upper);
  EXPECT_EQ((*lower)[0], 0xde);
}

TEST(Hex, RejectsOddLength) {
  EXPECT_EQ(util::from_hex("abc").error(), Errc::invalid_argument);
}

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_EQ(util::from_hex("zz").error(), Errc::invalid_argument);
}

TEST(Hex, RoundTrips) {
  util::Xoshiro rng(42);
  for (int i = 0; i < 50; ++i) {
    const Bytes data = rng.bytes(i);
    auto round = util::from_hex(util::to_hex(data));
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(*round, data);
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.error(), Errc::ok);
}

TEST(Result, HoldsError) {
  Result<int> r(Errc::access_denied);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::access_denied);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r(Errc::exhausted);
  EXPECT_THROW(r.value(), Error);
}

TEST(Result, ConstructingFromOkThrows) {
  EXPECT_THROW(Result<int>(Errc::ok), Error);
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  Status s(Errc::tamper_detected);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), Errc::tamper_detected);
}

TEST(Errc, NamesAreStable) {
  EXPECT_EQ(errc_name(Errc::ok), "ok");
  EXPECT_EQ(errc_name(Errc::tamper_detected), "tamper_detected");
  EXPECT_EQ(errc_name(Errc::policy_violation), "policy_violation");
}

TEST(CtEqual, EqualAndUnequal) {
  const Bytes a = to_bytes("secret");
  const Bytes b = to_bytes("secret");
  const Bytes c = to_bytes("secreT");
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, to_bytes("secre")));
}

TEST(Xoshiro, DeterministicForSameSeed) {
  util::Xoshiro a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  util::Xoshiro a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Xoshiro, BelowRespectsBound) {
  util::Xoshiro rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Xoshiro, BelowCoversRange) {
  util::Xoshiro rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, UniformInUnitInterval) {
  util::Xoshiro rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, BytesLength) {
  util::Xoshiro rng(5);
  EXPECT_EQ(rng.bytes(0).size(), 0u);
  EXPECT_EQ(rng.bytes(7).size(), 7u);
  EXPECT_EQ(rng.bytes(64).size(), 64u);
}

TEST(Table, RendersAlignedColumns) {
  util::Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  util::Table table({"one", "two"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(util::Table({}), Error);
}

TEST(Table, FormatsCycles) {
  EXPECT_EQ(util::fmt_cycles(0), "0");
  EXPECT_EQ(util::fmt_cycles(999), "999");
  EXPECT_EQ(util::fmt_cycles(1234567), "1,234,567");
}

TEST(Table, FormatsRatio) { EXPECT_EQ(util::fmt_ratio(2.5), "2.50x"); }

TEST(TypesBytes, StringRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("hello")), "hello");
  EXPECT_EQ(to_bytes("").size(), 0u);
}

}  // namespace
}  // namespace lateral
