// fTPM: the same TPM command set as the discrete chip, implemented in
// TrustZone software — plus a parameterized interchangeability suite that
// runs the identical BitLocker-style scenario against both implementations
// (the paper's §II-C point that isolation technologies are partially
// interchangeable).
#include <gtest/gtest.h>

#include <functional>

#include "ftpm/ftpm.h"
#include "hw/attacker.h"
#include "test_support.h"
#include "tpm/tpm.h"

namespace lateral {
namespace {

using test::tc_spec;

class FtpmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("ftpm");
    ftpm_ = std::make_unique<ftpm::Ftpm>(*machine_,
                                         substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<ftpm::Ftpm> ftpm_;
};

TEST_F(FtpmTest, CommandsAreOrdersOfMagnitudeCheaperThanTheChip) {
  auto chip_machine = test::make_machine("tpm-chip");
  tpm::Tpm chip(*chip_machine, substrate::SubstrateConfig{});

  const crypto::Digest digest = crypto::Sha256::hash(to_bytes("event"));
  const Cycles ftpm_before = machine_->now();
  ASSERT_TRUE(ftpm_->pcr_extend(5, digest).ok());
  const Cycles ftpm_cost = machine_->now() - ftpm_before;

  const Cycles chip_before = chip_machine->now();
  ASSERT_TRUE(chip.pcr_extend(5, digest).ok());
  const Cycles chip_cost = chip_machine->now() - chip_before;

  EXPECT_LT(ftpm_cost * 100, chip_cost);  // >100x faster
}

TEST_F(FtpmTest, StateIsPlaintextInDramUnlikeTheChip) {
  // The flip side of the speedup: fTPM state lives in secure-world DRAM.
  auto pal = ftpm_->create_domain(tc_spec("pal", 1));
  ASSERT_TRUE(pal.ok());
  ASSERT_TRUE(
      ftpm_->write_memory(*pal, *pal, 0, to_bytes("FTPM-STATE-SECRET")).ok());
  hw::PhysicalAttacker attacker(*machine_);
  EXPECT_FALSE(
      attacker.scan(machine_->dram(), to_bytes("FTPM-STATE-SECRET")).empty());
  EXPECT_FALSE(
      ftpm_->info().defends(substrate::AttackerModel::physical_bus));
  // ...while the discrete chip does defend it (see tpm_test).
}

TEST_F(FtpmTest, ComponentsRunConcurrentlyUnlikeFlicker) {
  auto a = ftpm_->create_domain(tc_spec("pal-a"));
  auto b = ftpm_->create_domain(tc_spec("pal-b"));
  auto caller = ftpm_->create_domain(tc_spec("caller"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(caller.ok());
  auto chan_a = ftpm_->create_channel(*caller, *a);
  auto chan_b = ftpm_->create_channel(*caller, *b);
  ASSERT_TRUE(chan_a.ok());
  ASSERT_TRUE(chan_b.ok());
  const auto echo = [](const substrate::Invocation&) -> Result<Bytes> {
    return Bytes{};
  };
  ASSERT_TRUE(ftpm_->set_handler(*a, echo).ok());
  ASSERT_TRUE(ftpm_->set_handler(*b, echo).ok());

  // Alternating calls have symmetric costs: no late-launch switching toll.
  ASSERT_TRUE(ftpm_->call(*caller, *chan_a, to_bytes("x")).ok());
  const Cycles t1 = machine_->now();
  ASSERT_TRUE(ftpm_->call(*caller, *chan_b, to_bytes("x")).ok());
  const Cycles cost_b = machine_->now() - t1;
  const Cycles t2 = machine_->now();
  ASSERT_TRUE(ftpm_->call(*caller, *chan_a, to_bytes("x")).ok());
  const Cycles cost_a = machine_->now() - t2;
  EXPECT_EQ(cost_a, cost_b);
}

TEST_F(FtpmTest, NormalWorldCannotTouchFtpmState) {
  auto pal = ftpm_->create_domain(tc_spec("pal", 1));
  ASSERT_TRUE(pal.ok());
  auto frames_begin = machine_->dram().begin;
  // A normal-world (non-secure) software access to the fTPM's tagged pages
  // is refused by the TZASC check in the memory system.
  Bytes out;
  const hw::AccessContext normal{hw::SecurityState::non_secure, 0};
  EXPECT_EQ(machine_->memory().read(normal, frames_begin, 16, out).error(),
            Errc::access_denied);
}

// ---------------------------------------------------------------------------
// Interchangeability: one scenario, two implementations. The BitLocker
// story from §II-B runs identically against the chip and the software TPM.
struct TpmLike {
  std::function<Status(std::size_t, const crypto::Digest&)> pcr_extend;
  std::function<Result<substrate::Quote>(const std::vector<std::size_t>&,
                                         BytesView)>
      quote_pcrs;
  std::function<Result<Bytes>(const std::vector<std::size_t>&, BytesView)>
      seal_to_pcrs;
  std::function<Result<Bytes>(BytesView)> unseal_pcrs;
  std::string expected_name;
};

class TpmInterchangeTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("interchange-" + GetParam());
    if (GetParam() == "tpm") {
      auto chip = std::make_unique<tpm::Tpm>(*machine_,
                                             substrate::SubstrateConfig{});
      auto* raw = chip.get();
      holder_ = std::move(chip);
      api_ = TpmLike{
          [raw](std::size_t i, const crypto::Digest& d) {
            return raw->pcr_extend(i, d);
          },
          [raw](const std::vector<std::size_t>& s, BytesView n) {
            return raw->quote_pcrs(s, n);
          },
          [raw](const std::vector<std::size_t>& s, BytesView p) {
            return raw->seal_to_pcrs(s, p);
          },
          [raw](BytesView b) { return raw->unseal_pcrs(b); },
          "tpm"};
    } else {
      auto soft = std::make_unique<ftpm::Ftpm>(*machine_,
                                               substrate::SubstrateConfig{});
      auto* raw = soft.get();
      holder_ = std::move(soft);
      api_ = TpmLike{
          [raw](std::size_t i, const crypto::Digest& d) {
            return raw->pcr_extend(i, d);
          },
          [raw](const std::vector<std::size_t>& s, BytesView n) {
            return raw->quote_pcrs(s, n);
          },
          [raw](const std::vector<std::size_t>& s, BytesView p) {
            return raw->seal_to_pcrs(s, p);
          },
          [raw](BytesView b) { return raw->unseal_pcrs(b); },
          "ftpm"};
    }
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> holder_;
  TpmLike api_;
};

TEST_P(TpmInterchangeTest, BitLockerScenario) {
  // Measured boot: loader and kernel extended into PCR4.
  ASSERT_TRUE(
      api_.pcr_extend(4, crypto::Sha256::hash(to_bytes("bootmgr"))).ok());
  ASSERT_TRUE(
      api_.pcr_extend(4, crypto::Sha256::hash(to_bytes("winload"))).ok());

  // Seal the volume key to the current boot state.
  auto sealed = api_.seal_to_pcrs({0, 4}, to_bytes("volume-key"));
  ASSERT_TRUE(sealed.ok());

  // Same boot chain: key released.
  auto released = api_.unseal_pcrs(*sealed);
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(to_string(*released), "volume-key");

  // Evil-maid boot chain: PCR4 diverges, key stays locked.
  ASSERT_TRUE(
      api_.pcr_extend(4, crypto::Sha256::hash(to_bytes("evil-loader"))).ok());
  EXPECT_EQ(api_.unseal_pcrs(*sealed).error(), Errc::verification_failed);
}

TEST_P(TpmInterchangeTest, QuoteChainsAndNamesImplementation) {
  ASSERT_TRUE(
      api_.pcr_extend(10, crypto::Sha256::hash(to_bytes("app"))).ok());
  auto quote = api_.quote_pcrs({0, 10}, to_bytes("nonce"));
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(quote->verify(test::shared_vendor().root_public_key()).ok());
  // A verifier CAN tell the implementations apart (and may require the
  // chip's stronger attacker model) — the name is in the signed body.
  EXPECT_EQ(quote->substrate_name, api_.expected_name);
}

TEST_P(TpmInterchangeTest, SealedBlobsDoNotCrossImplementations) {
  auto sealed = api_.seal_to_pcrs({0}, to_bytes("secret"));
  ASSERT_TRUE(sealed.ok());

  // The other implementation on the same machine class cannot unseal: the
  // composite may match, but the device key differs per machine, and even
  // on the same machine the PCR0 history differs (chip CRTM vs fTPM CRTM
  // both measure the ROM — so here the distinguishing factor is the device
  // key of the second machine).
  auto other_machine = test::make_machine("interchange-other");
  tpm::Tpm other(*other_machine, substrate::SubstrateConfig{});
  EXPECT_FALSE(other.unseal_pcrs(*sealed).ok());
}

INSTANTIATE_TEST_SUITE_P(ChipAndSoftware, TpmInterchangeTest,
                         ::testing::Values("tpm", "ftpm"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace lateral
