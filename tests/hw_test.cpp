// Simulated hardware: physical memory regions and attributes, frame
// allocation, IOMMU-filtered DMA, physical bus attacker, fuses, cost model.
#include <gtest/gtest.h>

#include "hw/attacker.h"
#include "hw/iommu.h"
#include "hw/machine.h"
#include "hw/memory.h"
#include "test_support.h"
#include "util/rng.h"

namespace lateral::hw {
namespace {

TEST(PhysicalMemory, RegionsMustBePageAligned) {
  PhysicalMemory mem(64 * kPageSize);
  EXPECT_FALSE(mem.add_region("bad", 100, kPageSize, {}).ok());
  EXPECT_FALSE(mem.add_region("bad", 0, 100, {}).ok());
  EXPECT_TRUE(mem.add_region("good", 0, kPageSize, {}).ok());
}

TEST(PhysicalMemory, RegionsMustNotOverlap) {
  PhysicalMemory mem(64 * kPageSize);
  ASSERT_TRUE(mem.add_region("a", 0, 4 * kPageSize, {}).ok());
  EXPECT_FALSE(mem.add_region("b", 2 * kPageSize, 4 * kPageSize, {}).ok());
  EXPECT_TRUE(mem.add_region("c", 4 * kPageSize, kPageSize, {}).ok());
}

TEST(PhysicalMemory, DuplicateRegionNameRejected) {
  PhysicalMemory mem(64 * kPageSize);
  ASSERT_TRUE(mem.add_region("x", 0, kPageSize, {}).ok());
  EXPECT_FALSE(mem.add_region("x", kPageSize, kPageSize, {}).ok());
}

TEST(PhysicalMemory, ReadWriteRoundTrip) {
  PhysicalMemory mem(4 * kPageSize);
  const AccessContext ctx{};
  ASSERT_TRUE(mem.write(ctx, 100, to_bytes("hello")).ok());
  Bytes out;
  ASSERT_TRUE(mem.read(ctx, 100, 5, out).ok());
  EXPECT_EQ(to_string(out), "hello");
}

TEST(PhysicalMemory, SecureOnlyRegionBlocksNonSecure) {
  PhysicalMemory mem(4 * kPageSize);
  ASSERT_TRUE(mem.add_region("sec", 0, kPageSize, {.secure_only = true}).ok());
  Bytes out;
  const AccessContext non_secure{SecurityState::non_secure, 0};
  const AccessContext secure{SecurityState::secure, 0};
  EXPECT_EQ(mem.read(non_secure, 0, 16, out).error(), Errc::access_denied);
  EXPECT_EQ(mem.write(non_secure, 0, to_bytes("x")).error(),
            Errc::access_denied);
  EXPECT_TRUE(mem.read(secure, 0, 16, out).ok());
}

TEST(PhysicalMemory, ReadOnlyRegionBlocksWrites) {
  PhysicalMemory mem(4 * kPageSize);
  ASSERT_TRUE(mem.add_region("rom", 0, kPageSize, {.read_only = true}).ok());
  const AccessContext ctx{};
  EXPECT_EQ(mem.write(ctx, 0, to_bytes("x")).error(), Errc::access_denied);
  Bytes out;
  EXPECT_TRUE(mem.read(ctx, 0, 4, out).ok());
}

TEST(PhysicalMemory, OwnerTagGatesAccess) {
  PhysicalMemory mem(4 * kPageSize);
  ASSERT_TRUE(mem.set_page_owner(0, 42).ok());
  Bytes out;
  EXPECT_EQ(mem.read(AccessContext{SecurityState::non_secure, 0}, 0, 8, out)
                .error(),
            Errc::access_denied);
  EXPECT_EQ(mem.read(AccessContext{SecurityState::non_secure, 7}, 0, 8, out)
                .error(),
            Errc::access_denied);
  EXPECT_TRUE(
      mem.read(AccessContext{SecurityState::non_secure, 42}, 0, 8, out).ok());
  // Clearing the tag restores general access.
  ASSERT_TRUE(mem.set_page_owner(0, 0).ok());
  EXPECT_TRUE(
      mem.read(AccessContext{SecurityState::non_secure, 0}, 0, 8, out).ok());
}

TEST(PhysicalMemory, OutOfBoundsRejected) {
  PhysicalMemory mem(kPageSize);
  Bytes out;
  const AccessContext ctx{};
  EXPECT_FALSE(mem.read(ctx, kPageSize - 1, 2, out).ok());
  EXPECT_FALSE(mem.write(ctx, kPageSize, to_bytes("x")).ok());
}

TEST(PhysicalMemory, RawReadBlockedOnChip) {
  PhysicalMemory mem(4 * kPageSize);
  ASSERT_TRUE(mem.add_region("sram", 0, kPageSize, {.on_chip = true}).ok());
  ASSERT_TRUE(mem.add_region("dram", kPageSize, kPageSize, {}).ok());
  Bytes out;
  EXPECT_EQ(mem.raw_read(0, 16, out).error(), Errc::access_denied);
  EXPECT_TRUE(mem.raw_read(kPageSize, 16, out).ok());
  EXPECT_EQ(mem.raw_write(10, to_bytes("x")).error(), Errc::access_denied);
  EXPECT_TRUE(mem.raw_write(kPageSize + 10, to_bytes("x")).ok());
}

TEST(FrameAllocator, AllocatesAndFrees) {
  FrameAllocator alloc(Range{0, 8 * kPageSize});
  EXPECT_EQ(alloc.pages_free(), 8u);
  auto a = alloc.allocate(3);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.pages_free(), 5u);
  ASSERT_TRUE(alloc.free(*a, 3).ok());
  EXPECT_EQ(alloc.pages_free(), 8u);
}

TEST(FrameAllocator, ContiguousAllocation) {
  FrameAllocator alloc(Range{0, 8 * kPageSize});
  auto a = alloc.allocate(2);
  auto b = alloc.allocate(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(*b - *a, 2 * kPageSize);  // first fit packs densely
}

TEST(FrameAllocator, ExhaustionReported) {
  FrameAllocator alloc(Range{0, 2 * kPageSize});
  ASSERT_TRUE(alloc.allocate(2).ok());
  EXPECT_EQ(alloc.allocate(1).error(), Errc::exhausted);
}

TEST(FrameAllocator, DoubleFreeRejected) {
  FrameAllocator alloc(Range{0, 4 * kPageSize});
  auto a = alloc.allocate(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.free(*a, 1).ok());
  EXPECT_FALSE(alloc.free(*a, 1).ok());
}

TEST(FrameAllocator, ReusesFreedHoles) {
  FrameAllocator alloc(Range{0, 4 * kPageSize});
  auto a = alloc.allocate(2);
  auto b = alloc.allocate(2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.free(*a, 2).ok());
  auto c = alloc.allocate(2);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
}

TEST(Machine, StandardRegionsExist) {
  auto machine = test::make_machine();
  EXPECT_TRUE(machine->memory().region("rom").ok());
  EXPECT_TRUE(machine->memory().region("sram").ok());
  EXPECT_TRUE(machine->memory().region("dram").ok());
  EXPECT_GT(machine->dram().size(), 0u);
}

TEST(Machine, ClockAdvances) {
  auto machine = test::make_machine();
  const Cycles start = machine->now();
  machine->advance(100);
  machine->charge(10, 2, 32);  // 10 + 2*2
  EXPECT_EQ(machine->now(), start + 100 + 14);
}

TEST(Machine, MultiCoreClocksAreIndependent) {
  auto machine = test::make_smp_machine(4);
  EXPECT_EQ(machine->core_count(), 4u);
  {
    CoreLease lease(*machine, 2);
    machine->advance(500);
  }
  EXPECT_EQ(machine->core(2), 500u);
  EXPECT_EQ(machine->core(0), 0u);
  EXPECT_EQ(machine->core(1), 0u);
  // The global epoch is the max over core clocks.
  EXPECT_EQ(machine->now(), 500u);
  {
    CoreLease lease(*machine, 0);
    machine->advance(900);
  }
  EXPECT_EQ(machine->now(), 900u);
}

TEST(Machine, CoreLeaseRestoresPreviousCore) {
  auto machine = test::make_smp_machine(2);
  EXPECT_EQ(machine->active_core(), 0u);
  {
    CoreLease outer(*machine, 1);
    EXPECT_EQ(machine->active_core(), 1u);
    {
      CoreLease inner(*machine, 0);
      EXPECT_EQ(machine->active_core(), 0u);
    }
    EXPECT_EQ(machine->active_core(), 1u);
  }
  EXPECT_EQ(machine->active_core(), 0u);
}

TEST(Machine, SingleCoreNeverPaysContention) {
  // N=1 bit-exactness: the contention model must be invisible on the
  // machines every committed FIG9/11/12 number was measured on.
  auto machine = test::make_machine();
  EXPECT_EQ(machine->note_shared_access(42), 0u);
  EXPECT_EQ(machine->note_shared_access(42), 0u);
  EXPECT_EQ(machine->contention_events(), 0u);
}

TEST(Machine, CrossCoreTouchWithinWindowPaysPenalty) {
  auto machine = test::make_smp_machine(2);
  const Cycles penalty = machine->costs().bus_contention_penalty;
  {
    CoreLease lease(*machine, 0);
    EXPECT_EQ(machine->note_shared_access(7), 0u);  // first touch is free
  }
  {
    CoreLease lease(*machine, 1);
    EXPECT_EQ(machine->note_shared_access(7), penalty);
    EXPECT_EQ(machine->core(1), penalty);
  }
  EXPECT_EQ(machine->contention_events(), 1u);
  // Same core re-touching its own line stays free.
  {
    CoreLease lease(*machine, 1);
    EXPECT_EQ(machine->note_shared_access(7), 0u);
  }
  // Distinct resources never interfere.
  {
    CoreLease lease(*machine, 0);
    EXPECT_EQ(machine->note_shared_access(8), 0u);
  }
}

TEST(Machine, ContentionWindowExpires) {
  auto machine = test::make_smp_machine(2);
  {
    CoreLease lease(*machine, 0);
    machine->note_shared_access(7);
  }
  {
    CoreLease lease(*machine, 1);
    machine->advance(machine->costs().contention_window + 10);
    // The other core's touch has aged out of the window: no penalty.
    EXPECT_EQ(machine->note_shared_access(7), 0u);
  }
  EXPECT_EQ(machine->contention_events(), 0u);
}

TEST(Machine, StallUntilOnlyMovesForward) {
  auto machine = test::make_smp_machine(2);
  {
    CoreLease lease(*machine, 1);
    machine->stall_until(300);
    EXPECT_EQ(machine->core(1), 300u);
    machine->stall_until(100);  // already past the gate: no-op
    EXPECT_EQ(machine->core(1), 300u);
  }
}

TEST(Machine, NvCounterMonotonic) {
  auto machine = test::make_machine();
  const std::uint64_t v = machine->nv_counter();
  EXPECT_EQ(machine->nv_counter_increment(), v + 1);
  EXPECT_EQ(machine->nv_counter(), v + 1);
}

TEST(Machine, BootRomMeasurementStable) {
  auto a = test::make_machine("a");
  auto b = test::make_machine("b");
  EXPECT_EQ(a->boot_rom().measurement(), b->boot_rom().measurement());
}

TEST(Machine, FusesEndorsedByVendor) {
  auto machine = test::make_machine();
  EXPECT_TRUE(crypto::rsa_verify(test::shared_vendor().root_public_key(),
                                 machine->fuses().endorsement_key().pub.serialize(),
                                 machine->fuses().endorsement_cert())
                  .ok());
}

TEST(Machine, DistinctMachinesDistinctDeviceKeys) {
  auto a = test::make_machine("a");
  auto b = test::make_machine("b");
  EXPECT_NE(a->fuses().device_key(), b->fuses().device_key());
  EXPECT_NE(a->fuses().endorsement_key().pub, b->fuses().endorsement_key().pub);
}

TEST(Iommu, EnforcingBlocksUnmappedDma) {
  auto machine = test::make_machine();
  Iommu iommu(Iommu::Mode::enforcing);
  Device device(1, "nic", *machine, iommu);
  const PhysAddr target = machine->dram().begin;
  EXPECT_EQ(device.dma_read(target, 64).error(), Errc::access_denied);
  EXPECT_EQ(device.dma_write(target, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST(Iommu, MappedDmaWorks) {
  auto machine = test::make_machine();
  Iommu iommu(Iommu::Mode::enforcing);
  Device device(1, "nic", *machine, iommu);
  const PhysAddr target = machine->dram().begin;
  ASSERT_TRUE(iommu.map(1, target, 1, /*writable=*/true).ok());
  ASSERT_TRUE(device.dma_write(target, to_bytes("dma-data")).ok());
  auto read = device.dma_read(target, 8);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "dma-data");
}

TEST(Iommu, ReadOnlyMappingBlocksWrites) {
  auto machine = test::make_machine();
  Iommu iommu(Iommu::Mode::enforcing);
  Device device(1, "nic", *machine, iommu);
  const PhysAddr target = machine->dram().begin;
  ASSERT_TRUE(iommu.map(1, target, 1, /*writable=*/false).ok());
  EXPECT_TRUE(device.dma_read(target, 8).ok());
  EXPECT_EQ(device.dma_write(target, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST(Iommu, MappingsArePerDevice) {
  auto machine = test::make_machine();
  Iommu iommu(Iommu::Mode::enforcing);
  Device nic(1, "nic", *machine, iommu);
  Device disk(2, "disk", *machine, iommu);
  const PhysAddr target = machine->dram().begin;
  ASSERT_TRUE(iommu.map(1, target, 1, true).ok());
  EXPECT_TRUE(nic.dma_read(target, 8).ok());
  EXPECT_EQ(disk.dma_read(target, 8).error(), Errc::access_denied);
}

TEST(Iommu, DisabledModeAllowsEverything) {
  // The pre-IOMMU world: any device DMAs anywhere off-chip.
  auto machine = test::make_machine();
  Iommu iommu(Iommu::Mode::disabled);
  Device device(1, "rogue", *machine, iommu);
  EXPECT_TRUE(device.dma_write(machine->dram().begin, to_bytes("pwn")).ok());
}

TEST(Iommu, DmaCannotReachOnChipMemoryEvenWhenDisabled) {
  auto machine = test::make_machine();
  Iommu iommu(Iommu::Mode::disabled);
  Device device(1, "rogue", *machine, iommu);
  EXPECT_FALSE(device.dma_read(machine->sram().begin, 16).ok());
}

TEST(Iommu, UnmapRevokes) {
  auto machine = test::make_machine();
  Iommu iommu(Iommu::Mode::enforcing);
  Device device(1, "nic", *machine, iommu);
  const PhysAddr target = machine->dram().begin;
  ASSERT_TRUE(iommu.map(1, target, 1, true).ok());
  ASSERT_TRUE(iommu.unmap(1, target, 1).ok());
  EXPECT_FALSE(device.dma_read(target, 8).ok());
}

TEST(PhysicalAttacker, ReadsOffChipPlaintext) {
  auto machine = test::make_machine();
  machine->memory().load(machine->dram().begin, to_bytes("secret-in-dram"));
  PhysicalAttacker attacker(*machine);
  auto probe = attacker.probe(machine->dram().begin, 14);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(to_string(*probe), "secret-in-dram");
}

TEST(PhysicalAttacker, CannotReachOnChip) {
  auto machine = test::make_machine();
  PhysicalAttacker attacker(*machine);
  EXPECT_EQ(attacker.probe(machine->sram().begin, 16).error(),
            Errc::access_denied);
  EXPECT_EQ(attacker.tamper(0, to_bytes("x")).error(), Errc::access_denied);
}

TEST(PhysicalAttacker, ScanFindsPattern) {
  auto machine = test::make_machine();
  const PhysAddr offset = machine->dram().begin + 12345;
  machine->memory().load(offset, to_bytes("NEEDLE"));
  PhysicalAttacker attacker(*machine);
  const auto hits = attacker.scan(machine->dram(), to_bytes("NEEDLE"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], offset);
}

TEST(PhysicalAttacker, TamperChangesDram) {
  auto machine = test::make_machine();
  PhysicalAttacker attacker(*machine);
  ASSERT_TRUE(attacker.tamper(machine->dram().begin, to_bytes("EVIL")).ok());
  EXPECT_EQ(to_string(machine->memory().dump(machine->dram().begin, 4)),
            "EVIL");
}

TEST(PhysicalAttacker, BitFlipsLandInRange) {
  auto machine = test::make_machine();
  PhysicalAttacker attacker(*machine);
  util::Xoshiro rng(1);
  const Bytes before = machine->memory().dump(machine->dram().begin, 4096);
  ASSERT_TRUE(
      attacker.flip_random_bits(
                  hw::Range{machine->dram().begin, machine->dram().begin + 4096},
                  32, rng)
          .ok());
  const Bytes after = machine->memory().dump(machine->dram().begin, 4096);
  EXPECT_NE(before, after);
}

TEST(CostModel, StandardOrdering) {
  // The cross-substrate invocation-cost ordering the paper implies:
  // IPC < SMC < ECALL-ish < SEP mailbox < TPM command.
  const CostModel& costs = CostModel::standard();
  EXPECT_LT(costs.ipc_one_way, costs.smc_world_switch);
  EXPECT_LT(costs.smc_world_switch,
            costs.sgx_eenter + costs.sgx_eexit);
  EXPECT_LT(costs.sgx_eenter + costs.sgx_eexit,
            costs.sep_mailbox_round_trip);
  EXPECT_LT(costs.sep_mailbox_round_trip, costs.tpm_command_base);
}

}  // namespace
}  // namespace lateral::hw
