// Toolbox components: k-anonymizer, gateway, password-less authenticator,
// generic trusted wrapper (TrustedStore).
#include <gtest/gtest.h>

#include "test_support.h"
#include "toolbox/anonymizer.h"
#include "toolbox/authenticator.h"
#include "toolbox/gateway.h"
#include "toolbox/trusted_wrapper.h"

namespace lateral::toolbox {
namespace {

// ---------------------------------------------------------------------------
// Anonymizer.
TEST(Anonymizer, RequiresPositiveK) { EXPECT_THROW(Anonymizer(0), Error); }

TEST(Anonymizer, BillingWorksPerHousehold) {
  Anonymizer anonymizer(3);
  ASSERT_TRUE(anonymizer.ingest({.household = 1, .bucket = 0, .kwh = 2.0}).ok());
  ASSERT_TRUE(anonymizer.ingest({.household = 1, .bucket = 1, .kwh = 3.0}).ok());
  ASSERT_TRUE(anonymizer.ingest({.household = 2, .bucket = 0, .kwh = 1.0}).ok());
  EXPECT_DOUBLE_EQ(*anonymizer.billing_total(1), 5.0);
  EXPECT_DOUBLE_EQ(*anonymizer.billing_total(2), 1.0);
  EXPECT_FALSE(anonymizer.billing_total(99).ok());
}

TEST(Anonymizer, KAnonymityGateHoldsUntilKContributors) {
  Anonymizer anonymizer(3);
  ASSERT_TRUE(anonymizer.ingest({.household = 1, .bucket = 7, .kwh = 1.0}).ok());
  ASSERT_TRUE(anonymizer.ingest({.household = 2, .bucket = 7, .kwh = 2.0}).ok());
  // Two households: refused.
  EXPECT_EQ(anonymizer.aggregate(7).error(), Errc::access_denied);
  // Same household again does not count twice.
  ASSERT_TRUE(anonymizer.ingest({.household = 2, .bucket = 7, .kwh = 2.0}).ok());
  EXPECT_EQ(anonymizer.aggregate(7).error(), Errc::access_denied);
  // Third distinct household opens the gate.
  ASSERT_TRUE(anonymizer.ingest({.household = 3, .bucket = 7, .kwh = 3.0}).ok());
  auto aggregate = anonymizer.aggregate(7);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(aggregate->contributors, 3u);
  EXPECT_DOUBLE_EQ(aggregate->total_kwh, 8.0);
}

TEST(Anonymizer, AnalystCannotGetHouseholdCurves) {
  Anonymizer anonymizer(2);
  ASSERT_TRUE(anonymizer.ingest({.household = 1, .bucket = 0, .kwh = 1.0}).ok());
  EXPECT_EQ(anonymizer.analyst_query_household_curve(1).error(),
            Errc::access_denied);
}

TEST(Anonymizer, RetentionDropsPerHouseholdData) {
  Anonymizer anonymizer(2);
  for (std::uint64_t h = 1; h <= 3; ++h)
    ASSERT_TRUE(anonymizer
                    .ingest({.household = h, .bucket = 0,
                             .kwh = static_cast<double>(h)})
                    .ok());
  // Bucket 1 has only one household: it will be discarded, not released.
  ASSERT_TRUE(anonymizer.ingest({.household = 1, .bucket = 1, .kwh = 9.0}).ok());

  anonymizer.retain_only_aggregates();
  EXPECT_FALSE(anonymizer.has_per_household_data());
  ASSERT_EQ(anonymizer.retained().size(), 1u);
  EXPECT_EQ(anonymizer.retained()[0].bucket, 0u);
  EXPECT_FALSE(anonymizer.billing_total(1).ok());  // gone for good
}

TEST(Anonymizer, ReleasableOnlyListsOpenBuckets) {
  Anonymizer anonymizer(2);
  ASSERT_TRUE(anonymizer.ingest({.household = 1, .bucket = 0, .kwh = 1}).ok());
  ASSERT_TRUE(anonymizer.ingest({.household = 2, .bucket = 0, .kwh = 1}).ok());
  ASSERT_TRUE(anonymizer.ingest({.household = 1, .bucket = 1, .kwh = 1}).ok());
  const auto releasable = anonymizer.releasable_aggregates();
  ASSERT_EQ(releasable.size(), 1u);
  EXPECT_EQ(releasable[0].bucket, 0u);
}

// ---------------------------------------------------------------------------
// Gateway.
GatewayPolicy meter_policy() {
  GatewayPolicy policy;
  policy.allowed_hosts = {"utility.example"};
  policy.bucket_capacity_bytes = 1000;
  policy.refill_bytes_per_megacycle = 500;
  return policy;
}

TEST(Gateway, WhitelistEnforced) {
  Gateway gateway(meter_policy());
  EXPECT_TRUE(gateway.admit(1, "utility.example", 100, 0).ok());
  EXPECT_EQ(gateway.admit(1, "ddos-victim.example", 100, 0).error(),
            Errc::access_denied);
  EXPECT_EQ(gateway.stats().blocked_host, 1u);
}

TEST(Gateway, TokenBucketThrottles) {
  Gateway gateway(meter_policy());
  ASSERT_TRUE(gateway.admit(1, "utility.example", 600, 0).ok());
  ASSERT_TRUE(gateway.admit(1, "utility.example", 400, 0).ok());
  // Bucket empty now.
  EXPECT_EQ(gateway.admit(1, "utility.example", 1, 0).error(),
            Errc::exhausted);
  EXPECT_EQ(gateway.stats().throttled, 1u);
}

TEST(Gateway, BucketRefillsWithTime) {
  Gateway gateway(meter_policy());
  ASSERT_TRUE(gateway.admit(1, "utility.example", 1000, 0).ok());
  EXPECT_FALSE(gateway.admit(1, "utility.example", 100, 0).ok());
  // One megacycle later: 500 bytes refilled.
  EXPECT_TRUE(gateway.admit(1, "utility.example", 400, 1'000'000).ok());
  EXPECT_FALSE(gateway.admit(1, "utility.example", 400, 1'000'000).ok());
}

TEST(Gateway, BudgetsArePerClientBadge) {
  Gateway gateway(meter_policy());
  ASSERT_TRUE(gateway.admit(1, "utility.example", 1000, 0).ok());
  EXPECT_FALSE(gateway.admit(1, "utility.example", 100, 0).ok());
  // A different client (different badge) has its own bucket.
  EXPECT_TRUE(gateway.admit(2, "utility.example", 100, 0).ok());
}

TEST(Gateway, PolicyUpdateTakesEffect) {
  Gateway gateway(meter_policy());
  EXPECT_FALSE(gateway.admit(1, "new-service.example", 10, 0).ok());
  GatewayPolicy updated = meter_policy();
  updated.allowed_hosts.insert("new-service.example");
  gateway.set_policy(updated);
  EXPECT_TRUE(gateway.admit(1, "new-service.example", 10, 0).ok());
}

// ---------------------------------------------------------------------------
// Password-less authenticator.
class AuthenticatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("auth");
    tz_ = *test::shared_registry().create("trustzone", *machine_);
    device_ = *tz_->create_domain(test::tc_spec("metering"));
    verifier_ = std::make_unique<core::AttestationVerifier>(to_bytes("v"));
    verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    verifier_->expect_measurement(
        "metering", test::tc_spec("metering").image.measurement());
    auth_ = std::make_unique<PasswordlessAuthenticator>(
        *verifier_, "metering", to_bytes("server-token-key"));
  }

  Result<SessionToken> login() {
    const Bytes nonce = auth_->begin();
    auto quote = core::respond_to_challenge(
        *tz_, device_, nonce, to_bytes("lateral.toolbox.login.v1"));
    if (!quote) return quote.error();
    return auth_->complete(*quote, nonce);
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> tz_;
  substrate::DomainId device_ = 0;
  std::unique_ptr<core::AttestationVerifier> verifier_;
  std::unique_ptr<PasswordlessAuthenticator> auth_;
};

TEST_F(AuthenticatorTest, DeviceLogsInWithoutAnyCredential) {
  auto token = login();
  ASSERT_TRUE(token.ok());
  EXPECT_TRUE(auth_->validate(token->token).ok());
  EXPECT_EQ(auth_->active_sessions(), 1u);
}

TEST_F(AuthenticatorTest, ForgedTokensRejected) {
  auto token = login();
  ASSERT_TRUE(token.ok());
  Bytes forged = token->token;
  forged[12] ^= 0x01;
  EXPECT_EQ(auth_->validate(forged).error(), Errc::verification_failed);
  EXPECT_FALSE(auth_->validate(Bytes(40, 0)).ok());
  EXPECT_FALSE(auth_->validate(Bytes(5, 0)).ok());
}

TEST_F(AuthenticatorTest, RevocationKillsToken) {
  auto token = login();
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(auth_->revoke(token->serial).ok());
  EXPECT_FALSE(auth_->validate(token->token).ok());
  EXPECT_FALSE(auth_->revoke(token->serial).ok());
}

TEST_F(AuthenticatorTest, ReplayedQuoteCannotLoginTwice) {
  const Bytes nonce = auth_->begin();
  auto quote = core::respond_to_challenge(
      *tz_, device_, nonce, to_bytes("lateral.toolbox.login.v1"));
  ASSERT_TRUE(quote.ok());
  ASSERT_TRUE(auth_->complete(*quote, nonce).ok());
  // A network eavesdropper replays the login exchange: the nonce is spent.
  EXPECT_FALSE(auth_->complete(*quote, nonce).ok());
}

TEST_F(AuthenticatorTest, WrongDeviceComponentRejected) {
  auto imposter = tz_->create_domain(test::tc_spec("not-metering"));
  ASSERT_TRUE(imposter.ok());
  const Bytes nonce = auth_->begin();
  auto quote = core::respond_to_challenge(
      *tz_, *imposter, nonce, to_bytes("lateral.toolbox.login.v1"));
  ASSERT_TRUE(quote.ok());
  EXPECT_FALSE(auth_->complete(*quote, nonce).ok());
}

// ---------------------------------------------------------------------------
// TrustedStore (generic trusted wrapper).
class TrustedStoreTest : public ::testing::Test {
 protected:
  TrustedStoreTest() : os_("cloud-os"), store_(os_, to_bytes("store-key")) {
    (void)TrustedStore::register_backend(os_);
  }
  legacy::LegacyOs os_;
  TrustedStore store_;
};

TEST_F(TrustedStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_.put("config", to_bytes("timeout=30")).ok());
  auto value = store_.get("config");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(to_string(*value), "timeout=30");
}

TEST_F(TrustedStoreTest, OverwriteServesLatest) {
  ASSERT_TRUE(store_.put("k", to_bytes("v1")).ok());
  ASSERT_TRUE(store_.put("k", to_bytes("v2")).ok());
  EXPECT_EQ(to_string(*store_.get("k")), "v2");
}

TEST_F(TrustedStoreTest, NoPlaintextInLegacyStorage) {
  ASSERT_TRUE(store_.put("secret", to_bytes("password=hunter2")).ok());
  auto raw = os_.filesystem().snoop("/kv/secret");
  ASSERT_TRUE(raw.ok());
  const Bytes needle = to_bytes("hunter2");
  EXPECT_EQ(std::search(raw->begin(), raw->end(), needle.begin(),
                        needle.end()),
            raw->end());
}

TEST_F(TrustedStoreTest, TamperedRepliesVetoed) {
  ASSERT_TRUE(store_.put("k", to_bytes("value")).ok());
  os_.compromise(legacy::MaliciousMode::tamper_replies);
  EXPECT_EQ(store_.get("k").error(), Errc::tamper_detected);
  EXPECT_GE(store_.stats().vetoed_replies, 1u);
}

TEST_F(TrustedStoreTest, RollbackToStaleValueVetoed) {
  ASSERT_TRUE(store_.put("balance", to_bytes("1000")).ok());
  ASSERT_TRUE(os_.filesystem().snapshot("/kv/balance").ok());
  ASSERT_TRUE(store_.put("balance", to_bytes("0")).ok());
  // The compromised FS rolls the file back to the (authentic!) old value.
  ASSERT_TRUE(os_.filesystem().rollback("/kv/balance").ok());
  EXPECT_EQ(store_.get("balance").error(), Errc::tamper_detected);
}

TEST_F(TrustedStoreTest, CrossKeySubstitutionVetoed) {
  ASSERT_TRUE(store_.put("alice", to_bytes("alice-data")).ok());
  ASSERT_TRUE(store_.put("bob", to_bytes("bob-data")).ok());
  // The legacy side serves bob's (authentic) blob for alice's key.
  auto bob_raw = os_.filesystem().snoop("/kv/bob");
  ASSERT_TRUE(bob_raw.ok());
  (void)os_.filesystem().truncate("/kv/alice", 0);
  ASSERT_TRUE(os_.filesystem().write("/kv/alice", 0, *bob_raw).ok());
  EXPECT_EQ(store_.get("alice").error(), Errc::tamper_detected);
}

TEST_F(TrustedStoreTest, RefusalOnMissingService) {
  legacy::LegacyOs bare("no-services");
  TrustedStore store(bare, to_bytes("k"));
  EXPECT_EQ(store.put("k", to_bytes("v")).error(), Errc::io_error);
  EXPECT_EQ(store.get("k").error(), Errc::io_error);
}

}  // namespace
}  // namespace lateral::toolbox
