// Substrate conformance suite — the paper's POSIX analogy made executable.
//
// One behavioural contract, instantiated against every isolation technology
// ("microkernel", "trustzone", "sgx", "tpm", "sep"). §III-A: "Software
// components should be developed once against the common pattern and then
// should run on any isolation implementation." Each test either passes
// identically on every substrate or consults info().features — never the
// substrate's name — mirroring how portable code must behave.
#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "crypto/rsa.h"
#include "runtime/region_pool.h"
#include "substrate/substrate.h"
#include "test_support.h"
#include "trace/trace.h"

namespace lateral::substrate {
namespace {

using test::legacy_spec;
using test::tc_spec;

class ConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("conformance-" + GetParam());
    auto substrate = test::shared_registry().create(GetParam(), *machine_);
    ASSERT_TRUE(substrate.ok());
    substrate_ = std::move(*substrate);
  }

  /// A pair of domains that can hold a channel on every substrate: the
  /// second is legacy where the substrate hosts legacy code (SEP only
  /// admits one trusted component), trusted otherwise (the TPM hosts no
  /// legacy code at all).
  std::pair<DomainId, DomainId> make_pair() {
    auto a = substrate_->create_domain(tc_spec("alpha"));
    EXPECT_TRUE(a.ok());
    const bool use_legacy =
        has_feature(substrate_->info().features, Feature::legacy_hosting);
    auto b = substrate_->create_domain(use_legacy ? legacy_spec("beta")
                                                  : tc_spec("beta"));
    EXPECT_TRUE(b.ok());
    return {*a, *b};
  }

  Features features() const { return substrate_->info().features; }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<IsolationSubstrate> substrate_;
};

TEST_P(ConformanceTest, InfoIsCoherent) {
  const SubstrateInfo& info = substrate_->info();
  EXPECT_EQ(info.name, GetParam());
  EXPECT_TRUE(has_feature(info.features, Feature::spatial_isolation));
  EXPECT_GT(info.tcb_loc, 0u);
  EXPECT_FALSE(info.defends_against.empty());
  // Everyone defends at least against remote attackers.
  EXPECT_TRUE(info.defends(AttackerModel::remote_network));
}

TEST_P(ConformanceTest, CreateDomain) {
  auto domain = substrate_->create_domain(tc_spec("tc"));
  ASSERT_TRUE(domain.ok());
  EXPECT_NE(*domain, kInvalidDomain);
  EXPECT_EQ(substrate_->domains().size(), 1u);
}

TEST_P(ConformanceTest, RejectsEmptyNameOrImage) {
  DomainSpec spec = tc_spec("x");
  spec.name = "";
  EXPECT_FALSE(substrate_->create_domain(spec).ok());
  spec = tc_spec("x");
  spec.image.code.clear();
  EXPECT_FALSE(substrate_->create_domain(spec).ok());
}

TEST_P(ConformanceTest, DomainSpecRetrievable) {
  auto domain = substrate_->create_domain(tc_spec("tc", 2));
  ASSERT_TRUE(domain.ok());
  auto spec = substrate_->domain_spec(*domain);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "tc");
  EXPECT_EQ(spec->memory_pages, 2u);
  EXPECT_FALSE(substrate_->domain_spec(999).ok());
}

TEST_P(ConformanceTest, MeasurementIsImageHash) {
  const DomainSpec spec = tc_spec("measured");
  auto domain = substrate_->create_domain(spec);
  ASSERT_TRUE(domain.ok());
  auto measurement = substrate_->measurement(*domain);
  ASSERT_TRUE(measurement.ok());
  EXPECT_EQ(*measurement, spec.image.measurement());
}

TEST_P(ConformanceTest, DestroyRemovesDomainAndChannels) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_->destroy_domain(b).ok());
  EXPECT_FALSE(substrate_->domain_spec(b).ok());
  EXPECT_EQ(substrate_->send(a, *channel, to_bytes("x")).error(),
            Errc::no_such_channel);
}

TEST_P(ConformanceTest, OwnMemoryRoundTrip) {
  auto domain = substrate_->create_domain(tc_spec("mem", 2));
  ASSERT_TRUE(domain.ok());
  ASSERT_TRUE(
      substrate_->write_memory(*domain, *domain, 100, to_bytes("payload"))
          .ok());
  auto read = substrate_->read_memory(*domain, *domain, 100, 7);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "payload");
}

TEST_P(ConformanceTest, MemoryAcrossPageBoundary) {
  auto domain = substrate_->create_domain(tc_spec("mem", 2));
  ASSERT_TRUE(domain.ok());
  const std::uint64_t offset = hw::kPageSize - 3;
  ASSERT_TRUE(
      substrate_->write_memory(*domain, *domain, offset, to_bytes("straddle"))
          .ok());
  auto read = substrate_->read_memory(*domain, *domain, offset, 8);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "straddle");
}

TEST_P(ConformanceTest, OutOfBoundsMemoryDenied) {
  auto domain = substrate_->create_domain(tc_spec("mem", 1));
  ASSERT_TRUE(domain.ok());
  EXPECT_FALSE(
      substrate_->read_memory(*domain, *domain, hw::kPageSize - 1, 2).ok());
  EXPECT_FALSE(
      substrate_->write_memory(*domain, *domain, hw::kPageSize, to_bytes("x"))
          .ok());
}

TEST_P(ConformanceTest, SpatialIsolationHolds) {
  // The core guarantee: the "weaker" domain cannot touch the trusted
  // component's memory on ANY substrate.
  auto [tc, other] = make_pair();
  ASSERT_TRUE(
      substrate_->write_memory(tc, tc, 0, to_bytes("tc-secret")).ok());
  EXPECT_EQ(substrate_->read_memory(other, tc, 0, 9).error(),
            Errc::access_denied);
  EXPECT_EQ(substrate_->write_memory(other, tc, 0, to_bytes("pwn")).error(),
            Errc::access_denied);
  // And the secret is intact.
  auto read = substrate_->read_memory(tc, tc, 0, 9);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "tc-secret");
}

TEST_P(ConformanceTest, CompromisedDomainStillConfined) {
  // Marking a domain compromised does not weaken the walls around its
  // peers — that is the whole point of the architecture.
  auto [tc, other] = make_pair();
  ASSERT_TRUE(substrate_->write_memory(tc, tc, 0, to_bytes("asset")).ok());
  ASSERT_TRUE(substrate_->mark_compromised(other).ok());
  EXPECT_TRUE(substrate_->is_compromised(other));
  EXPECT_FALSE(substrate_->is_compromised(tc));
  EXPECT_EQ(substrate_->read_memory(other, tc, 0, 5).error(),
            Errc::access_denied);
}

TEST_P(ConformanceTest, ChannelSendReceive) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_->send(a, *channel, to_bytes("ping")).ok());
  auto msg = substrate_->receive(b, *channel);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(to_string(msg->data), "ping");
  EXPECT_NE(msg->badge, 0u);
}

TEST_P(ConformanceTest, ReceiveOnEmptyChannelWouldBlock) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  EXPECT_EQ(substrate_->receive(b, *channel).error(), Errc::would_block);
}

TEST_P(ConformanceTest, MessagesPreserveFifoOrder) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(substrate_->send(a, *channel,
                                 to_bytes("m" + std::to_string(i)))
                    .ok());
  for (int i = 0; i < 5; ++i) {
    auto msg = substrate_->receive(b, *channel);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(to_string(msg->data), "m" + std::to_string(i));
  }
}

TEST_P(ConformanceTest, PolaUnknownChannelRefused) {
  auto [a, b] = make_pair();
  (void)b;
  EXPECT_EQ(substrate_->send(a, /*channel=*/777, to_bytes("x")).error(),
            Errc::no_such_channel);
  EXPECT_EQ(substrate_->receive(a, 777).error(), Errc::no_such_channel);
  EXPECT_EQ(substrate_->call(a, 777, to_bytes("x")).error(),
            Errc::no_such_channel);
}

TEST_P(ConformanceTest, NonEndpointCannotUseChannel) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  // A domain id that is not an endpoint (may or may not exist).
  const DomainId stranger = 424242;
  EXPECT_EQ(substrate_->send(stranger, *channel, to_bytes("x")).error(),
            Errc::access_denied);
  EXPECT_EQ(substrate_->receive(stranger, *channel).error(),
            Errc::access_denied);
}

TEST_P(ConformanceTest, MessageSizeLimitEnforced) {
  auto [a, b] = make_pair();
  ChannelSpec spec;
  spec.max_message_bytes = 16;
  auto channel = substrate_->create_channel(a, b, spec);
  ASSERT_TRUE(channel.ok());
  EXPECT_TRUE(substrate_->send(a, *channel, Bytes(16, 0)).ok());
  EXPECT_EQ(substrate_->send(a, *channel, Bytes(17, 0)).error(),
            Errc::invalid_argument);
}

TEST_P(ConformanceTest, CallInvokesHandlerWithBadge) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  auto expected_badge = substrate_->endpoint_badge(*channel, a);
  ASSERT_TRUE(expected_badge.ok());

  std::uint64_t seen_badge = 0;
  ASSERT_TRUE(substrate_
                  ->set_handler(b,
                                [&](const Invocation& invocation) -> Result<Bytes> {
                                  seen_badge = invocation.badge;
                                  Bytes reply = to_bytes("echo:");
                                  reply.insert(reply.end(),
                                               invocation.data.begin(),
                                               invocation.data.end());
                                  return reply;
                                })
                  .ok());
  auto reply = substrate_->call(a, *channel, to_bytes("hi"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "echo:hi");
  EXPECT_EQ(seen_badge, *expected_badge);
}

TEST_P(ConformanceTest, CallWithoutHandlerWouldBlock) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  EXPECT_EQ(substrate_->call(a, *channel, to_bytes("x")).error(),
            Errc::would_block);
}

TEST_P(ConformanceTest, HandlerCanRefuse) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return Errc::access_denied;
                  })
                  .ok());
  EXPECT_EQ(substrate_->call(a, *channel, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST_P(ConformanceTest, InvocationAdvancesTheClock) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return Bytes{};
                  })
                  .ok());
  const Cycles before = machine_->now();
  ASSERT_TRUE(substrate_->call(a, *channel, to_bytes("x")).ok());
  EXPECT_GT(machine_->now(), before);
}

TEST_P(ConformanceTest, SealUnsealRoundTrip) {
  if (!has_feature(features(), Feature::sealed_storage)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("sealer"));
  ASSERT_TRUE(domain.ok());
  auto sealed = substrate_->seal(*domain, to_bytes("precious"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->size() > 7u, true);
  auto opened = substrate_->unseal(*domain, *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(*opened), "precious");
}

TEST_P(ConformanceTest, UnsealRejectsTamperedBlob) {
  if (!has_feature(features(), Feature::sealed_storage)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("sealer"));
  ASSERT_TRUE(domain.ok());
  auto sealed = substrate_->seal(*domain, to_bytes("precious"));
  ASSERT_TRUE(sealed.ok());
  (*sealed)[sealed->size() - 1] ^= 0x01;
  EXPECT_EQ(substrate_->unseal(*domain, *sealed).error(),
            Errc::verification_failed);
}

TEST_P(ConformanceTest, SealBindsCodeIdentity) {
  if (!has_feature(features(), Feature::sealed_storage)) GTEST_SKIP();
  auto first = substrate_->create_domain(tc_spec("identity-a"));
  ASSERT_TRUE(first.ok());
  auto sealed = substrate_->seal(*first, to_bytes("bound-secret"));
  ASSERT_TRUE(sealed.ok());
  // A different code identity on the same device must not unseal it.
  // (Destroy first so two-domain-limited substrates can host the second.)
  ASSERT_TRUE(substrate_->destroy_domain(*first).ok());
  auto second = substrate_->create_domain(tc_spec("identity-b"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(substrate_->unseal(*second, *sealed).error(),
            Errc::verification_failed);
}

TEST_P(ConformanceTest, SealedBlobsDifferPerDevice) {
  if (!has_feature(features(), Feature::sealed_storage)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("sealer"));
  ASSERT_TRUE(domain.ok());
  auto sealed = substrate_->seal(*domain, to_bytes("precious"));
  ASSERT_TRUE(sealed.ok());

  // Same code on a different machine cannot unseal: the key derives from
  // that machine's fuses.
  auto other_machine = test::make_machine("other-device");
  auto other = test::shared_registry().create(GetParam(), *other_machine);
  ASSERT_TRUE(other.ok());
  auto twin = (*other)->create_domain(tc_spec("sealer"));
  ASSERT_TRUE(twin.ok());
  EXPECT_FALSE((*other)->unseal(*twin, *sealed).ok());
}

TEST_P(ConformanceTest, AttestationChainVerifies) {
  if (!has_feature(features(), Feature::attestation)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("prover"));
  ASSERT_TRUE(domain.ok());
  auto quote = substrate_->attest(*domain, to_bytes("challenge-data"));
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(quote->verify(test::shared_vendor().root_public_key()).ok());
  EXPECT_EQ(quote->measurement, tc_spec("prover").image.measurement());
  EXPECT_EQ(to_string(quote->user_data), "challenge-data");
}

TEST_P(ConformanceTest, QuoteRejectsWrongRoot) {
  if (!has_feature(features(), Feature::attestation)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("prover"));
  ASSERT_TRUE(domain.ok());
  auto quote = substrate_->attest(*domain, to_bytes("x"));
  ASSERT_TRUE(quote.ok());
  hw::Vendor imposter(/*seed=*/999, /*key_bits=*/512);
  EXPECT_FALSE(quote->verify(imposter.root_public_key()).ok());
}

TEST_P(ConformanceTest, QuoteSerializationRoundTrip) {
  if (!has_feature(features(), Feature::attestation)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("prover"));
  ASSERT_TRUE(domain.ok());
  auto quote = substrate_->attest(*domain, to_bytes("ud"));
  ASSERT_TRUE(quote.ok());
  auto parsed = Quote::deserialize(quote->serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->substrate_name, quote->substrate_name);
  EXPECT_EQ(parsed->measurement, quote->measurement);
  EXPECT_TRUE(parsed->verify(test::shared_vendor().root_public_key()).ok());
}

TEST_P(ConformanceTest, TamperedQuoteRejected) {
  if (!has_feature(features(), Feature::attestation)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("prover"));
  ASSERT_TRUE(domain.ok());
  auto quote = substrate_->attest(*domain, to_bytes("ud"));
  ASSERT_TRUE(quote.ok());
  quote->measurement[0] ^= 0x01;  // claim different code identity
  EXPECT_FALSE(quote->verify(test::shared_vendor().root_public_key()).ok());
}

TEST_P(ConformanceTest, SecureBootRejectsUnsignedCode) {
  // Build a fresh substrate with a secure_boot launch policy.
  crypto::HmacDrbg drbg(to_bytes("owner-key"));
  const crypto::RsaKeyPair owner = crypto::RsaKeyPair::generate(drbg, 512);
  auto machine = test::make_machine("secure-boot");
  SubstrateConfig config;
  config.launch_policy = LaunchPolicy::secure_boot;
  config.owner_key = owner.pub;
  auto substrate = test::shared_registry().create(GetParam(), *machine, config);
  ASSERT_TRUE(substrate.ok());

  DomainSpec unsigned_spec = tc_spec("unsigned");
  EXPECT_EQ((*substrate)->create_domain(unsigned_spec).error(),
            Errc::verification_failed);

  DomainSpec signed_spec = tc_spec("signed");
  signed_spec.image_signature = crypto::rsa_sign(owner, signed_spec.image.code);
  EXPECT_TRUE((*substrate)->create_domain(signed_spec).ok());

  DomainSpec badly_signed = tc_spec("badly-signed");
  badly_signed.image_signature =
      crypto::rsa_sign(owner, to_bytes("different code"));
  EXPECT_EQ((*substrate)->create_domain(badly_signed).error(),
            Errc::verification_failed);
}

TEST_P(ConformanceTest, AuthenticatedBootLogsEveryLaunch) {
  auto machine = test::make_machine("auth-boot");
  SubstrateConfig config;
  config.launch_policy = LaunchPolicy::authenticated_boot;
  auto substrate = test::shared_registry().create(GetParam(), *machine, config);
  ASSERT_TRUE(substrate.ok());

  const DomainSpec spec_a = tc_spec("first");
  ASSERT_TRUE((*substrate)->create_domain(spec_a).ok());
  // Unlike secure boot, nothing is rejected — only recorded. (Second domain
  // is legacy where the substrate can host one, to respect SEP's
  // two-environment limit.)
  const DomainSpec spec_b =
      has_feature((*substrate)->info().features, Feature::legacy_hosting)
          ? legacy_spec("second")
          : tc_spec("second");
  ASSERT_TRUE((*substrate)->create_domain(spec_b).ok());

  const auto& log = (*substrate)->boot_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], spec_a.image.measurement());
  EXPECT_EQ(log[1], spec_b.image.measurement());
}

TEST_P(ConformanceTest, DomainIdsAreNeverReused) {
  auto first = substrate_->create_domain(tc_spec("ephemeral"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(substrate_->destroy_domain(*first).ok());
  auto second = substrate_->create_domain(tc_spec("ephemeral"));
  ASSERT_TRUE(second.ok());
  // A stale capability naming the dead domain must not alias the new one.
  EXPECT_NE(*first, *second);
  EXPECT_FALSE(substrate_->domain_spec(*first).ok());
}

TEST_P(ConformanceTest, MultipleChannelsBetweenSamePair) {
  auto [a, b] = make_pair();
  auto control = substrate_->create_channel(a, b);
  auto data = substrate_->create_channel(a, b);
  ASSERT_TRUE(control.ok());
  ASSERT_TRUE(data.ok());
  EXPECT_NE(*control, *data);
  // Traffic does not bleed between them.
  ASSERT_TRUE(substrate_->send(a, *control, to_bytes("ctl")).ok());
  EXPECT_EQ(substrate_->receive(b, *data).error(), Errc::would_block);
  auto msg = substrate_->receive(b, *control);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(to_string(msg->data), "ctl");
  // Each channel has its own badges.
  EXPECT_NE(*substrate_->endpoint_badge(*control, a),
            *substrate_->endpoint_badge(*data, a));
}

TEST_P(ConformanceTest, HandlerReplacementTakesEffect) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("v1");
                  })
                  .ok());
  EXPECT_EQ(to_string(*substrate_->call(a, *channel, {})), "v1");
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("v2");
                  })
                  .ok());
  EXPECT_EQ(to_string(*substrate_->call(a, *channel, {})), "v2");
}

TEST_P(ConformanceTest, SealEmptyPayload) {
  if (!has_feature(features(), Feature::sealed_storage)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("sealer"));
  ASSERT_TRUE(domain.ok());
  auto sealed = substrate_->seal(*domain, {});
  ASSERT_TRUE(sealed.ok());
  auto opened = substrate_->unseal(*domain, *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

TEST_P(ConformanceTest, SealedBlobsAreNonDeterministic) {
  if (!has_feature(features(), Feature::sealed_storage)) GTEST_SKIP();
  auto domain = substrate_->create_domain(tc_spec("sealer"));
  ASSERT_TRUE(domain.ok());
  auto first = substrate_->seal(*domain, to_bytes("same data"));
  auto second = substrate_->seal(*domain, to_bytes("same data"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Fresh nonce per seal: identical plaintexts must not produce identical
  // blobs (a storage observer could otherwise correlate state).
  EXPECT_NE(*first, *second);
  EXPECT_TRUE(substrate_->unseal(*domain, *second).ok());
}

TEST_P(ConformanceTest, FeatureGatedOperationsReportNotSupported) {
  // A substrate that lacks a feature must say so, not misbehave.
  auto domain = substrate_->create_domain(tc_spec("probe"));
  ASSERT_TRUE(domain.ok());
  if (!has_feature(features(), Feature::sealed_storage)) {
    EXPECT_EQ(substrate_->seal(*domain, to_bytes("x")).error(),
              Errc::not_supported);
  }
  if (!has_feature(features(), Feature::attestation)) {
    EXPECT_EQ(substrate_->attest(*domain, to_bytes("x")).error(),
              Errc::not_supported);
  }
}

// --- Crash semantics: kill_domain, corpses, epochs, fault injection -------
//
// The supervised-restart contract (lateral::supervisor) leans on every
// substrate honouring the same corpse semantics: an abrupt death leaves a
// diagnosable corpse (domain_dead everywhere), channels survive for
// rebinding, and epochs fence off the old life.

TEST_P(ConformanceTest, KillLeavesDiagnosableCorpse) {
  auto domain = substrate_->create_domain(tc_spec("victim"));
  ASSERT_TRUE(domain.ok());
  ASSERT_TRUE(substrate_->kill_domain(*domain).ok());
  EXPECT_TRUE(substrate_->is_dead(*domain));
  // A corpse is not "no such domain": the id stays known and diagnosable.
  EXPECT_EQ(substrate_->domain_spec(*domain).error(), Errc::domain_dead);
  // But it no longer counts as a live domain.
  EXPECT_TRUE(substrate_->domains().empty());
  // Killing a corpse again is refused (the first death is the real one).
  EXPECT_EQ(substrate_->kill_domain(*domain).error(), Errc::domain_dead);
  EXPECT_EQ(substrate_->kill_domain(999).error(), Errc::no_such_domain);
}

TEST_P(ConformanceTest, EveryOperationOnCorpseFailsDomainDead) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("alive");
                  })
                  .ok());
  ASSERT_TRUE(substrate_->call(a, *channel, to_bytes("x")).ok());

  ASSERT_TRUE(substrate_->kill_domain(b).ok());
  EXPECT_EQ(substrate_->call(a, *channel, to_bytes("x")).error(),
            Errc::domain_dead);
  EXPECT_EQ(substrate_->send(a, *channel, to_bytes("x")).error(),
            Errc::domain_dead);
  // receive() against a dead peer fails fast, not would_block forever —
  // this is exactly the supervisor's heartbeat probe.
  EXPECT_EQ(substrate_->receive(a, *channel).error(), Errc::domain_dead);
  EXPECT_EQ(substrate_->read_memory(b, b, 0, 1).error(), Errc::domain_dead);
  EXPECT_EQ(substrate_->write_memory(b, b, 0, to_bytes("x")).error(),
            Errc::domain_dead);
  EXPECT_EQ(substrate_->measurement(b).error(), Errc::domain_dead);
  EXPECT_EQ(substrate_->set_handler(b, nullptr).error(), Errc::domain_dead);
  EXPECT_EQ(substrate_->create_channel(a, b).error(), Errc::domain_dead);
  if (has_feature(features(), Feature::attestation)) {
    EXPECT_EQ(substrate_->attest(b, to_bytes("x")).error(), Errc::domain_dead);
  }
  if (has_feature(features(), Feature::sealed_storage)) {
    EXPECT_EQ(substrate_->seal(b, to_bytes("x")).error(), Errc::domain_dead);
  }
}

TEST_P(ConformanceTest, KillDropsQueuedMessagesBothDirections) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_->send(a, *channel, to_bytes("to-b")).ok());
  ASSERT_TRUE(substrate_->send(b, *channel, to_bytes("to-a")).ok());
  ASSERT_TRUE(substrate_->kill_domain(b).ok());
  // Everything queued belonged to the old life: the survivor sees the
  // death, not a stale message.
  EXPECT_EQ(substrate_->receive(a, *channel).error(), Errc::domain_dead);
}

TEST_P(ConformanceTest, DestroyReapsCorpseAndItsChannels) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_->kill_domain(b).ok());
  ASSERT_TRUE(substrate_->destroy_domain(b).ok());
  EXPECT_FALSE(substrate_->is_dead(b));  // reaped, not a corpse any more
  EXPECT_EQ(substrate_->domain_spec(b).error(), Errc::no_such_domain);
  EXPECT_EQ(substrate_->send(a, *channel, to_bytes("x")).error(),
            Errc::no_such_channel);
}

TEST_P(ConformanceTest, ChannelEpochBumpInvalidatesAndDropsQueues) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  auto epoch = substrate_->channel_epoch(*channel);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);  // every channel starts life at epoch 1
  ASSERT_TRUE(substrate_->send(a, *channel, to_bytes("old-life")).ok());
  ASSERT_TRUE(substrate_->bump_channel_epoch(*channel).ok());
  EXPECT_EQ(*substrate_->channel_epoch(*channel), 2u);
  EXPECT_EQ(substrate_->receive(b, *channel).error(), Errc::would_block);
  EXPECT_EQ(substrate_->channel_epoch(777).error(), Errc::no_such_channel);
}

TEST_P(ConformanceTest, RebindChannelMovesEndpointToSuccessor) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  const std::uint64_t old_badge =
      substrate_->endpoint_badge(*channel, b).value_or(0);
  ASSERT_TRUE(substrate_->kill_domain(b).ok());

  const bool use_legacy =
      has_feature(substrate_->info().features, Feature::legacy_hosting);
  auto b2 = substrate_->create_domain(use_legacy ? legacy_spec("beta2")
                                                 : tc_spec("beta2"));
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(substrate_->rebind_channel(*channel, b, *b2).ok());

  // Same channel id, new life: epoch bumped, fresh badge for the rebound
  // side, and traffic flows to the successor.
  EXPECT_EQ(*substrate_->channel_epoch(*channel), 2u);
  const std::uint64_t new_badge =
      substrate_->endpoint_badge(*channel, *b2).value_or(0);
  EXPECT_NE(new_badge, old_badge);
  ASSERT_TRUE(substrate_
                  ->set_handler(*b2, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("successor");
                  })
                  .ok());
  auto reply = substrate_->call(a, *channel, to_bytes("hi"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "successor");
  // The corpse can now be reaped without touching the rebound channel.
  ASSERT_TRUE(substrate_->destroy_domain(b).ok());
  EXPECT_TRUE(substrate_->call(a, *channel, to_bytes("hi")).ok());
}

TEST_P(ConformanceTest, RebindChannelRefusesBadArguments) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  // A third domain, by whatever kind this substrate still has room for
  // (trustzone hosts one legacy world; SEP hosts one of each and refuses).
  auto c = substrate_->create_domain(tc_spec("gamma"));
  if (!c.ok() &&
      has_feature(substrate_->info().features, Feature::legacy_hosting))
    c = substrate_->create_domain(legacy_spec("gamma"));
  if (c.ok()) {
    // `from` must be a current endpoint of the channel.
    EXPECT_EQ(substrate_->rebind_channel(*channel, *c, *c).error(),
              Errc::access_denied);
  }
  // Rebinding onto the peer would collapse the channel onto one domain.
  EXPECT_EQ(substrate_->rebind_channel(*channel, b, a).error(),
            Errc::invalid_argument);
  EXPECT_EQ(substrate_->rebind_channel(999, a, b).error(),
            Errc::no_such_channel);
  // The successor must be live.
  if (c.ok()) {
    ASSERT_TRUE(substrate_->kill_domain(*c).ok());
    EXPECT_EQ(substrate_->rebind_channel(*channel, b, *c).error(),
              Errc::domain_dead);
  } else {
    // Two-domain substrates still fence dead successors.
    ASSERT_TRUE(substrate_->kill_domain(b).ok());
    EXPECT_EQ(substrate_->rebind_channel(*channel, a, b).error(),
              Errc::domain_dead);
  }
}

TEST_P(ConformanceTest, FaultHookCrashesCalleeMidInvocation) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("served");
                  })
                  .ok());
  int arm = 0;  // fire on the second delivery only
  substrate_->set_fault_hook(
      [&](DomainId callee, std::string_view op) {
        return callee == b && op == "call" && ++arm == 2;
      });
  EXPECT_TRUE(substrate_->call(a, *channel, to_bytes("one")).ok());
  // The fault fires mid-invocation: the caller sees the same domain_dead a
  // real crash would produce, and the callee is a corpse afterwards.
  EXPECT_EQ(substrate_->call(a, *channel, to_bytes("two")).error(),
            Errc::domain_dead);
  EXPECT_TRUE(substrate_->is_dead(b));
  substrate_->set_fault_hook(nullptr);
}

// --- Grant regions (zero-copy data plane) -----------------------------------

TEST_P(ConformanceTest, RegionUnsupportedReportsHonestly) {
  auto [a, b] = make_pair();
  if (substrate_->supports_regions()) return;
  // The discrete/firmware TPMs have no memory both sides can address: the
  // data plane reports that precisely so callers take the copy path.
  EXPECT_EQ(substrate_->create_region(a, b, 4096).error(),
            Errc::no_region_support);
  EXPECT_TRUE(substrate_->regions().empty());
}

TEST_P(ConformanceTest, RegionLifecycleAndInPlaceData) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto region = substrate_->create_region(a, b, 8192);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(*substrate_->region_epoch(*region), 1u);

  // Unmapped endpoints cannot touch the region yet.
  EXPECT_EQ(substrate_->region_write(a, *region, 0, to_bytes("x")).error(),
            Errc::access_denied);
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());  // idempotent

  ASSERT_TRUE(substrate_->region_write(a, *region, 64, to_bytes("bulk")).ok());
  auto desc = substrate_->make_descriptor(a, *region, 64, 4);
  ASSERT_TRUE(desc.ok());
  auto view = substrate_->region_view(b, *desc);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(to_string(*view), "bulk");  // same bytes, no copy
  auto copy = substrate_->region_read(b, *region, 64, 4);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(to_string(*copy), "bulk");

  // Bounds are enforced at mint time and at access time.
  EXPECT_EQ(substrate_->make_descriptor(a, *region, 8190, 8).error(),
            Errc::invalid_argument);
  EXPECT_EQ(substrate_->make_descriptor(a, *region, 0, 0).error(),
            Errc::invalid_argument);

  // The size a pool would carve comes from the substrate, not a restated
  // manifest literal.
  auto size = substrate_->region_size(*region);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 8192u);
  EXPECT_EQ(substrate_->region_size(999).error(), Errc::invalid_argument);
}

TEST_P(ConformanceTest, RegionBoundsRefuseOverflowingRanges) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto region = substrate_->create_region(a, b, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());

  // offset + len wraps to a tiny sum: a naive `offset + len > size` check
  // would accept these ranges and the reference monitor would hand out an
  // out-of-bounds view. Every validation surface must refuse them.
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(substrate_->make_descriptor(a, *region, huge, 2).error(),
            Errc::invalid_argument);
  EXPECT_EQ(substrate_->make_descriptor(a, *region, huge - 1, 4).error(),
            Errc::invalid_argument);
  EXPECT_EQ(substrate_->region_write(a, *region, huge, to_bytes("xx")).error(),
            Errc::invalid_argument);
  EXPECT_EQ(substrate_->region_read(a, *region, huge, 2).error(),
            Errc::invalid_argument);

  // A forged descriptor (bypassing make_descriptor, as a compromised peer
  // could) is caught by check_descriptor before region_view dereferences.
  substrate::RegionDescriptor forged;
  forged.region = *region;
  forged.offset = huge;
  forged.length = 2;
  forged.epoch = *substrate_->region_epoch(*region);
  EXPECT_EQ(substrate_->check_descriptor(a, forged).error(),
            Errc::invalid_argument);
  EXPECT_EQ(substrate_->region_view(a, forged).error(),
            Errc::invalid_argument);
}

TEST_P(ConformanceTest, RegionPolaDeniesNonEndpoint) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto region = substrate_->create_region(a, b, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());

  // A third, undeclared domain (whatever kind this substrate still has
  // room for) is refused at every surface of the plane.
  auto c = substrate_->create_domain(tc_spec("gamma"));
  if (!c.ok() &&
      has_feature(substrate_->info().features, Feature::legacy_hosting))
    c = substrate_->create_domain(legacy_spec("gamma"));
  if (c.ok()) {
    EXPECT_EQ(substrate_->map_region(*c, *region).error(),
              Errc::access_denied);
    EXPECT_EQ(substrate_->region_read(*c, *region, 0, 16).error(),
              Errc::access_denied);
    EXPECT_EQ(substrate_->make_descriptor(*c, *region, 0, 16).error(),
              Errc::access_denied);
    auto desc = substrate_->make_descriptor(a, *region, 0, 16);
    ASSERT_TRUE(desc.ok());
    EXPECT_EQ(substrate_->check_descriptor(*c, *desc).error(),
              Errc::access_denied);
  }
  // Unknown regions are refused regardless of who asks.
  EXPECT_EQ(substrate_->map_region(a, 999).error(), Errc::invalid_argument);
}

TEST_P(ConformanceTest, RegionDescriptorRefusedOnForeignChannel) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  // A descriptor for a region the caller shares with a *third* domain must
  // not ride a channel to someone else — the confused-deputy refusal.
  auto c = substrate_->create_domain(tc_spec("gamma"));
  if (!c.ok() &&
      has_feature(substrate_->info().features, Feature::legacy_hosting))
    c = substrate_->create_domain(legacy_spec("gamma"));
  if (!c.ok()) return;  // two-domain substrate: scenario cannot exist
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return Bytes{};
                  })
                  .ok());
  auto region = substrate_->create_region(a, *c, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(*c, *region).ok());
  auto desc = substrate_->make_descriptor(a, *region, 0, 16);
  ASSERT_TRUE(desc.ok());
  const std::array<RegionDescriptor, 1> segments{*desc};
  EXPECT_EQ(substrate_->call_sg(a, *channel, to_bytes("hdr"), segments)
                .error(),
            Errc::access_denied);
}

TEST_P(ConformanceTest, KillDomainRevokesRegionMappings) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto region = substrate_->create_region(a, b, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());
  ASSERT_TRUE(substrate_->region_write(a, *region, 0, to_bytes("secret")).ok());
  auto desc = substrate_->make_descriptor(a, *region, 0, 6);
  ASSERT_TRUE(desc.ok());

  ASSERT_TRUE(substrate_->kill_domain(b).ok());
  // The survivor's descriptor is fenced: the peer's death is reported (more
  // diagnosable than "stale"), and the epoch was bumped underneath.
  EXPECT_EQ(substrate_->check_descriptor(a, *desc).error(), Errc::domain_dead);
  EXPECT_EQ(substrate_->region_view(a, *desc).error(), Errc::domain_dead);
  EXPECT_EQ(*substrate_->region_epoch(*region), 2u);

  // Secret hygiene: the kill scrubbed the backing, so nothing of the old
  // life is readable even after the survivor legitimately re-maps.
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  auto bytes = substrate_->region_read(a, *region, 0, 6);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, Bytes(6, 0));

  // Reaping the corpse erases the region with it.
  ASSERT_TRUE(substrate_->destroy_domain(b).ok());
  EXPECT_EQ(substrate_->region_epoch(*region).error(), Errc::invalid_argument);
}

TEST_P(ConformanceTest, RevokeRegionPermanentlyFences) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto region = substrate_->create_region(a, b, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());
  auto desc = substrate_->make_descriptor(a, *region, 0, 16);
  ASSERT_TRUE(desc.ok());

  ASSERT_TRUE(substrate_->revoke_region(*region).ok());
  EXPECT_EQ(substrate_->region_view(a, *desc).error(), Errc::stale_epoch);
  EXPECT_EQ(substrate_->map_region(a, *region).error(), Errc::stale_epoch);
  EXPECT_EQ(substrate_->make_descriptor(a, *region, 0, 16).error(),
            Errc::stale_epoch);
  EXPECT_EQ(substrate_->revoke_region(*region).error(), Errc::stale_epoch);
  EXPECT_TRUE(substrate_->regions().empty());  // revoked ids are not listed
}

TEST_P(ConformanceTest, RebindRegionFencesStaleDescriptorsAndScrubs) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto region = substrate_->create_region(a, b, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());
  ASSERT_TRUE(substrate_->region_write(a, *region, 0, to_bytes("oldlife")).ok());
  auto stale = substrate_->make_descriptor(a, *region, 0, 7);
  ASSERT_TRUE(stale.ok());

  const bool use_legacy =
      has_feature(substrate_->info().features, Feature::legacy_hosting);
  auto b2 = substrate_->create_domain(use_legacy ? legacy_spec("beta2")
                                                 : tc_spec("beta2"));
  if (!b2.ok()) {
    // Two-domain substrate: the supervised-restart path still fences via
    // revoke; nothing more to check here.
    return;
  }
  ASSERT_TRUE(substrate_->kill_domain(b).ok());
  ASSERT_TRUE(substrate_->rebind_region(*region, b, *b2).ok());
  EXPECT_EQ(substrate_->check_descriptor(a, *stale).error(),
            Errc::stale_epoch);

  // Both sides re-map; the reincarnation must not inherit the old bytes.
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(*b2, *region).ok());
  auto bytes = substrate_->region_read(*b2, *region, 0, 7);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, Bytes(7, 0));

  // The rebound region carries fresh descriptors end to end.
  ASSERT_TRUE(substrate_->region_write(a, *region, 0, to_bytes("newlife")).ok());
  auto fresh = substrate_->make_descriptor(a, *region, 0, 7);
  ASSERT_TRUE(fresh.ok());
  auto view = substrate_->region_view(*b2, *fresh);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(to_string(*view), "newlife");

  EXPECT_EQ(substrate_->rebind_region(*region, b, *b2).error(),
            Errc::access_denied);  // `from` no longer an endpoint
}

TEST_P(ConformanceTest, ReadOnlyRegionRefusesGranteeWrites) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto region =
      substrate_->create_region(a, b, 4096, RegionPerms::read_only);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());
  ASSERT_TRUE(substrate_->region_write(a, *region, 0, to_bytes("ro")).ok());
  EXPECT_EQ(substrate_->region_write(b, *region, 0, to_bytes("no")).error(),
            Errc::access_denied);
  auto copy = substrate_->region_read(b, *region, 0, 2);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(to_string(*copy), "ro");
}

TEST_P(ConformanceTest, ScatterGatherCrossingIsPayloadIndependent) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation& inv) -> Result<Bytes> {
                    EXPECT_EQ(inv.segments.size(), 1u);
                    return Bytes{};
                  })
                  .ok());
  auto region = substrate_->create_region(a, b, 1 << 16);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());

  auto crossing_for = [&](std::uint64_t len) -> Cycles {
    auto desc = substrate_->make_descriptor(a, *region, 0, len);
    EXPECT_TRUE(desc.ok());
    const std::array<RegionDescriptor, 1> segments{*desc};
    const Cycles before = machine_->now();
    EXPECT_TRUE(
        substrate_->call_sg(a, *channel, to_bytes("h"), segments).ok());
    return machine_->now() - before;
  };
  // 64 B or 32 KiB behind the descriptor: the crossing charge is identical,
  // because only header + 16 bytes per descriptor ever cross.
  EXPECT_EQ(crossing_for(64), crossing_for(32768));
}

TEST_P(ConformanceTest, BatchSgVetoesBadDescriptorWithoutSinkingBatch) {
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("ok");
                  })
                  .ok());
  auto region = substrate_->create_region(a, b, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());
  auto good = substrate_->make_descriptor(a, *region, 0, 16);
  ASSERT_TRUE(good.ok());
  RegionDescriptor stale = *good;
  stale.epoch = 999;  // forged/outdated epoch

  std::vector<SgRequest> requests(2);
  requests[0].header = to_bytes("good");
  requests[0].segments = {*good};
  requests[1].header = to_bytes("bad");
  requests[1].segments = {stale};
  auto reply = substrate_->call_batch_sg(a, *channel, requests);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->replies.size(), 2u);
  EXPECT_TRUE(reply->replies[0].ok());
  EXPECT_EQ(reply->replies[1].error(), Errc::stale_epoch);
}

TEST_P(ConformanceTest, KilledCalleeMidTransferReturnsPoolSlot) {
  // The update orchestrator's staged-transfer loop: acquire a RegionPool
  // slot, stage a chunk, call_sg, release, repeat. A callee killed mid-
  // transfer cancels the call with domain_dead — and the lease must come
  // back to the pool on that path too, or every aborted update would leak
  // a slot until the pool starves.
  auto [a, b] = make_pair();
  if (!substrate_->supports_regions()) return;
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  auto region = substrate_->create_region(a, b, 1024);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(a, *region).ok());
  ASSERT_TRUE(substrate_->map_region(b, *region).ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("ack");
                  })
                  .ok());

  runtime::RegionPool pool(*substrate_, a, *region, 1024, 256);
  int deliveries = 0;  // kill the callee on the third chunk
  substrate_->set_fault_hook([&](DomainId callee, std::string_view op) {
    return callee == b && op == "call_sg" && ++deliveries == 3;
  });
  Errc failure = Errc::ok;
  for (int chunk = 0; chunk < 4 && failure == Errc::ok; ++chunk) {
    auto slot = pool.acquire();
    ASSERT_TRUE(slot.ok());
    auto desc = pool.stage(*slot, to_bytes("chunk-" + std::to_string(chunk)));
    ASSERT_TRUE(desc.ok());
    const std::array<RegionDescriptor, 1> segments{*desc};
    auto reply = substrate_->call_sg(a, *channel, to_bytes("hdr"), segments);
    // Returned on success AND on cancellation — the invariant under test.
    pool.release(*slot);
    if (!reply.ok()) failure = reply.error();
  }
  substrate_->set_fault_hook(nullptr);
  EXPECT_EQ(failure, Errc::domain_dead);
  EXPECT_TRUE(substrate_->is_dead(b));
  EXPECT_EQ(pool.slots_free(), pool.slots_total());
  // A fresh acquire works immediately: nothing stayed in flight.
  EXPECT_TRUE(pool.acquire().ok());
}

// --- lateral::trace conformance: one tracing contract on every substrate ---

TEST_P(ConformanceTest, TraceContextArrivesIntactOnCall) {
  trace::Tracer tracer;
  substrate_->set_tracer(&tracer);
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  trace::TraceContext seen;
  ASSERT_TRUE(substrate_
                  ->set_handler(b,
                                [&](const Invocation& inv) -> Result<Bytes> {
                                  seen = inv.trace;
                                  return Bytes{};
                                })
                  .ok());
  const trace::TraceContext ctx = tracer.begin_trace();
  trace::TraceScope scope(ctx);
  ASSERT_TRUE(substrate_->call(a, *channel, to_bytes("ping")).ok());
  EXPECT_EQ(seen.trace_id, ctx.trace_id);
  EXPECT_TRUE(seen.sampled());
  EXPECT_NE(seen.parent_span, 0u);  // the substrate minted a dispatch span

  // ...and the callee's flight recorder holds dispatch + complete, fenced
  // around the handler in ticket order.
  const auto events = tracer.snapshot(substrate_.get(), b);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, trace::SpanPhase::dispatch);
  EXPECT_EQ(events[1].phase, trace::SpanPhase::complete);
  EXPECT_EQ(events[0].trace_id, ctx.trace_id);
  EXPECT_EQ(events[0].span_id, seen.parent_span);
  EXPECT_EQ(events[0].size, 4u);
  substrate_->set_tracer(nullptr);
}

TEST_P(ConformanceTest, TraceContextArrivesPerRequestOnCallBatch) {
  trace::Tracer tracer;
  substrate_->set_tracer(&tracer);
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  std::vector<trace::TraceContext> seen;
  ASSERT_TRUE(substrate_
                  ->set_handler(b,
                                [&](const Invocation& inv) -> Result<Bytes> {
                                  seen.push_back(inv.trace);
                                  return Bytes{};
                                })
                  .ok());
  const trace::TraceContext ctx = tracer.begin_trace();
  trace::TraceScope scope(ctx);
  const std::vector<Bytes> requests{to_bytes("a"), to_bytes("b"),
                                    to_bytes("c")};
  ASSERT_TRUE(substrate_->call_batch(a, *channel, requests).ok());
  ASSERT_EQ(seen.size(), 3u);
  std::uint32_t last_span = 0;
  for (const trace::TraceContext& got : seen) {
    EXPECT_EQ(got.trace_id, ctx.trace_id);
    EXPECT_TRUE(got.sampled());
    EXPECT_NE(got.parent_span, last_span);  // one span per delivered request
    last_span = got.parent_span;
  }
  EXPECT_EQ(tracer.snapshot(substrate_.get(), b).size(), 6u);
  substrate_->set_tracer(nullptr);
}

TEST_P(ConformanceTest, TraceContextArrivesOnCallSgAndAfterRebind) {
  trace::Tracer tracer;
  substrate_->set_tracer(&tracer);
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  trace::TraceContext seen;
  const auto handler = [&](const Invocation& inv) -> Result<Bytes> {
    seen = inv.trace;
    return Bytes{};
  };
  const trace::TraceContext ctx = tracer.begin_trace();
  trace::TraceScope scope(ctx);

  if (substrate_->supports_regions()) {
    ASSERT_TRUE(substrate_->set_handler(b, handler).ok());
    auto region = substrate_->create_region(a, b, 4096);
    ASSERT_TRUE(region.ok());
    ASSERT_TRUE(substrate_->map_region(a, *region).ok());
    ASSERT_TRUE(substrate_->map_region(b, *region).ok());
    auto desc = substrate_->make_descriptor(a, *region, 0, 64);
    ASSERT_TRUE(desc.ok());
    const std::array<RegionDescriptor, 1> segments{*desc};
    ASSERT_TRUE(substrate_->call_sg(a, *channel, to_bytes("h"), segments).ok());
    EXPECT_EQ(seen.trace_id, ctx.trace_id);
    // The dispatch span's size is header + descriptor-named payload bytes.
    const auto events = tracer.snapshot(substrate_.get(), b);
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events[0].size, 1u + 64u);
  }

  // The context keeps arriving after a supervised-restart-style rebind:
  // the channel id survives, the epoch bumps, the successor sees the trace.
  ASSERT_TRUE(substrate_->kill_domain(b).ok());
  const bool use_legacy =
      has_feature(substrate_->info().features, Feature::legacy_hosting);
  auto b2 = substrate_->create_domain(use_legacy ? legacy_spec("beta2")
                                                 : tc_spec("beta2"));
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(substrate_->rebind_channel(*channel, b, *b2).ok());
  seen = {};
  ASSERT_TRUE(substrate_->set_handler(*b2, handler).ok());
  ASSERT_TRUE(substrate_->call(a, *channel, to_bytes("again")).ok());
  EXPECT_EQ(seen.trace_id, ctx.trace_id);
  EXPECT_TRUE(seen.sampled());
  EXPECT_FALSE(tracer.snapshot(substrate_.get(), *b2).empty());
  substrate_->set_tracer(nullptr);
}

TEST_P(ConformanceTest, DisabledTracerAddsZeroCycles) {
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return Bytes{};
                  })
                  .ok());
  const auto cost_of_call = [&] {
    const Cycles before = machine_->now();
    EXPECT_TRUE(substrate_->call(a, *channel, to_bytes("x")).ok());
    return machine_->now() - before;
  };
  cost_of_call();  // warm up one-time charges (TPM late-launch switch)
  const Cycles bare = cost_of_call();

  trace::Tracer tracer;
  tracer.set_enabled(false);
  substrate_->set_tracer(&tracer);
  const trace::TraceContext ctx = tracer.begin_trace();
  trace::TraceScope scope(ctx);
  // Tracer attached but disabled: the crossing costs exactly what an
  // untraced one does, and no span is recorded.
  EXPECT_EQ(cost_of_call(), bare);
  EXPECT_TRUE(tracer.snapshot(substrate_.get(), b).empty());

  tracer.set_enabled(true);
  const Cycles traced = cost_of_call();
  // The charge lands once, on the request direction (the reply carries no
  // context — correlation is by span id).
  EXPECT_EQ(traced, bare + substrate_->trace_crossing_cost());
  substrate_->set_tracer(nullptr);
}

TEST_P(ConformanceTest, FlightRecorderSurvivesKillDomain) {
  trace::Tracer tracer;
  substrate_->set_tracer(&tracer);
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation&) -> Result<Bytes> {
                    return to_bytes("ok");
                  })
                  .ok());
  const trace::TraceContext ctx = tracer.begin_trace();
  {
    trace::TraceScope scope(ctx);
    ASSERT_TRUE(substrate_->call(a, *channel, to_bytes("work")).ok());
  }
  ASSERT_TRUE(substrate_->kill_domain(b).ok());

  // The domain is a corpse; its ring is not. The timeline ends with the
  // kill itself — exactly what a supervisor snapshots into its report.
  const auto events = tracer.snapshot(substrate_.get(), b);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, trace::SpanPhase::dispatch);
  EXPECT_EQ(events[1].phase, trace::SpanPhase::complete);
  EXPECT_EQ(events[2].phase, trace::SpanPhase::killed);
  tracer.scrub(substrate_.get(), b);
  EXPECT_TRUE(tracer.snapshot(substrate_.get(), b).empty());
  substrate_->set_tracer(nullptr);
}

/// The published concurrency law per substrate (like info().name, this is
/// part of each backend's contract and pinned by name on purpose): how
/// crossings from different cores of one machine compose.
ConcurrencyLaw expected_law(const std::string& name) {
  if (name == "sgx") return ConcurrencyLaw::transition_serialized;
  if (name == "trustzone" || name == "ftpm")
    return ConcurrencyLaw::monitor_serialized;
  if (name == "tpm" || name == "sep")
    return ConcurrencyLaw::device_serialized;
  return ConcurrencyLaw::parallel;  // microkernel, noc, cheri
}

TEST_P(ConformanceTest, ConcurrencyLawPinned) {
  EXPECT_EQ(substrate_->concurrency_law(), expected_law(GetParam()));
}

TEST_P(ConformanceTest, SingleCoreSerializationInvisible) {
  // N=1 exactness: on the single-core machines every committed FIG9/11/12
  // number was measured on, the concurrency law must change nothing — no
  // stalls, no contention, per-call cost constant.
  auto [a, b] = make_pair();
  auto channel = substrate_->create_channel(a, b, {});
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(substrate_
                  ->set_handler(b, [](const Invocation& inv) -> Result<Bytes> {
                    return Bytes(inv.data.begin(), inv.data.end());
                  })
                  .ok());
  (void)substrate_->call(a, *channel, to_bytes("warm-up!"));
  const Cycles before_one = machine_->now();
  ASSERT_TRUE(substrate_->call(a, *channel, to_bytes("workload")).ok());
  const Cycles per_call = machine_->now() - before_one;
  ASSERT_GT(per_call, 0u);
  const Cycles before = machine_->now();
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(substrate_->call(a, *channel, to_bytes("workload")).ok());
  EXPECT_EQ(machine_->now() - before, 8 * per_call);
  EXPECT_EQ(substrate_->serial_stalls(), 0u);
  EXPECT_EQ(machine_->contention_events(), 0u);
}

TEST_P(ConformanceTest, TwoCoreScalingFollowsConcurrencyLaw) {
  // The FIG13 mechanism in miniature: the same offered work from two cores
  // (one client/server lane per core where the substrate can host it)
  // finishes in one core's time on a parallel substrate and approaches the
  // serialized sum behind a monitor/transition/device gate.
  auto machine = test::make_smp_machine(2, "conformance-smp-" + GetParam());
  auto created = test::shared_registry().create(GetParam(), *machine);
  ASSERT_TRUE(created.ok());
  auto& sub = *created;
  const auto echo = [](const Invocation& inv) -> Result<Bytes> {
    return Bytes(inv.data.begin(), inv.data.end());
  };

  struct Lane {
    DomainId client = kInvalidDomain;
    ChannelId channel = 0;
  };
  std::array<Lane, 2> lanes{};
  for (std::size_t i = 0; i < 2; ++i) {
    hw::CoreLease lease(*machine, i);
    const std::string suffix = std::to_string(i);
    auto server = sub->create_domain(tc_spec("server" + suffix));
    if (!server.ok()) {
      // Two-environment devices (SEP): both cores share the one mailbox.
      lanes[i] = lanes[0];
      continue;
    }
    auto client = sub->create_domain(tc_spec("client" + suffix));
    if (!client.ok())
      client = sub->create_domain(legacy_spec("client" + suffix));
    ASSERT_TRUE(client.ok());
    auto channel = sub->create_channel(*client, *server, {});
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE(sub->set_handler(*server, echo).ok());
    lanes[i] = {*client, *channel};
    (void)sub->call(lanes[i].client, lanes[i].channel, to_bytes("warm-up!"));
  }

  // Per-call cost on core 0 with the gate already synchronized to it.
  const Cycles per_call = [&] {
    hw::CoreLease lease(*machine, 0);
    (void)sub->call(lanes[0].client, lanes[0].channel, to_bytes("workload"));
    const Cycles before = machine->core(0);
    (void)sub->call(lanes[0].client, lanes[0].channel, to_bytes("workload"));
    return machine->core(0) - before;
  }();
  ASSERT_GT(per_call, 0u);

  constexpr Cycles kCalls = 8;
  const std::array<Cycles, 2> start{machine->core(0), machine->core(1)};
  for (Cycles i = 0; i < kCalls; ++i) {
    for (std::size_t core = 0; core < 2; ++core) {
      hw::CoreLease lease(*machine, core);
      (void)sub->call(lanes[core].client, lanes[core].channel,
                      to_bytes("workload"));
    }
  }
  Cycles elapsed = 0;
  for (std::size_t core = 0; core < 2; ++core) {
    const Cycles busy = machine->core(core) - start[core];
    if (busy > elapsed) elapsed = busy;
  }

  switch (sub->concurrency_law()) {
    case ConcurrencyLaw::parallel:
      // Both cores cross concurrently: wall time is one core's work.
      EXPECT_LE(elapsed, kCalls * per_call + per_call / 2);
      EXPECT_EQ(sub->serial_stalls(), 0u);
      break;
    case ConcurrencyLaw::transition_serialized:
    case ConcurrencyLaw::monitor_serialized:
    case ConcurrencyLaw::device_serialized:
      // The gate serializes (nearly all of) both cores' crossings: wall
      // time approaches the two-core sum and the stalls are observable.
      EXPECT_GE(elapsed, 3 * kCalls * per_call / 2);
      EXPECT_GT(sub->serial_stalls(), 0u);
      EXPECT_GT(sub->serial_stall_cycles(), 0u);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, ConformanceTest,
                         ::testing::Values("microkernel", "trustzone", "sgx",
                                           "tpm", "ftpm", "sep", "cheri",
                                           "noc"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace lateral::substrate
