// lateral::supervisor — crash detection, supervised restart, escalation.
//
// The contract under test: a component with a `restart` stanza dies
// abruptly; the supervisor's heartbeat notices (substrate corpse semantics,
// no timeouts), relaunches it through the composer path within its policy
// budget, re-attests the relaunch, and re-epochs its channels so nothing
// addressed to the dead incarnation is silently delivered to the new one.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/composer.h"
#include "fleet/fleet_client.h"
#include "fleet/fleet_server.h"
#include "microkernel/microkernel.h"
#include "net/network.h"
#include "supervisor/supervisor.h"
#include "test_support.h"
#include "trace/trace.h"

namespace lateral::supervisor {
namespace {

using core::RestartPolicy;

constexpr const char* kSupervisedPair = R"(
component front {
  substrate microkernel
  channel worker
}
component worker {
  substrate microkernel
  channel front
  restart {
    max 2
    backoff 10
    escalate degraded
  }
}
)";

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("supervisor");
    mk_ = std::make_unique<microkernel::Microkernel>(
        *machine_, substrate::SubstrateConfig{});
    core::SystemComposer composer(
        {{"microkernel", static_cast<substrate::IsolationSubstrate*>(
                             mk_.get())}});
    auto manifests = core::parse_manifests(kSupervisedPair);
    ASSERT_TRUE(manifests.ok());
    auto assembly = composer.compose(*manifests);
    ASSERT_TRUE(assembly.ok());
    assembly_ = std::move(*assembly);
    ASSERT_TRUE(assembly_
                    ->set_behavior("worker",
                                   [](const substrate::Invocation&)
                                       -> Result<Bytes> {
                                     return to_bytes("serving");
                                   })
                    .ok());
  }

  /// Run ticks (advancing the clock past backoffs) until the component is
  /// running again or `limit` ticks elapsed.
  void tick_until_running(Supervisor& sup, const std::string& name,
                          int limit = 10) {
    for (int i = 0; i < limit; ++i) {
      if (*sup.health(name) == Health::running) return;
      machine_->advance(1 << 16);  // past any test backoff
      sup.tick();
    }
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<microkernel::Microkernel> mk_;
  std::unique_ptr<core::Assembly> assembly_;
};

TEST_F(SupervisorTest, WatchAllSelectsComponentsWithRestartStanza) {
  Supervisor sup(*assembly_);
  auto watched = sup.watch_all();
  ASSERT_TRUE(watched.ok());
  EXPECT_EQ(*watched, 1u);  // only `worker` declared a restart stanza
  EXPECT_EQ(*sup.health("worker"), Health::running);
  // `front` opted out; claiming it is healthy would be a lie.
  EXPECT_EQ(sup.health("front").error(), Errc::no_such_domain);
  EXPECT_EQ(sup.watch("ghost", RestartPolicy{}).error(), Errc::no_such_domain);
}

TEST_F(SupervisorTest, HealthyComponentStaysRunningAcrossTicks) {
  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());
  for (int i = 0; i < 3; ++i) {
    const auto report = sup.tick();
    EXPECT_EQ(report.probed, 1u);
    EXPECT_EQ(report.deaths_detected, 0u);
  }
  EXPECT_EQ(*sup.health("worker"), Health::running);
  EXPECT_EQ(sup.stats().kills_detected, 0u);
  // The probes themselves never disturbed the component.
  EXPECT_TRUE(assembly_->invoke("front", "worker", to_bytes("x")).ok());
}

TEST_F(SupervisorTest, DetectsCrashAndRestartsWithinPolicy) {
  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());
  std::vector<std::pair<std::string, std::uint32_t>> hook_calls;
  sup.on_restart([&](const std::string& name, std::uint32_t incarnation) {
    hook_calls.emplace_back(name, incarnation);
  });

  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  EXPECT_EQ(assembly_->invoke("front", "worker", to_bytes("x")).error(),
            Errc::domain_dead);

  const auto report = sup.tick();
  EXPECT_EQ(report.deaths_detected, 1u);
  tick_until_running(sup, "worker");
  ASSERT_EQ(*sup.health("worker"), Health::running);

  // Service restored with the recorded behaviour; nothing to redo by hand.
  auto reply = assembly_->invoke("front", "worker", to_bytes("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "serving");
  EXPECT_EQ(*sup.restarts_of("worker"), 1u);
  ASSERT_EQ(hook_calls.size(), 1u);
  EXPECT_EQ(hook_calls[0], (std::pair<std::string, std::uint32_t>{"worker", 1}));

  const runtime::RecoveryStats& stats = sup.stats();
  EXPECT_EQ(stats.kills_detected, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.restart_failures, 0u);
  EXPECT_GT(stats.mean_mttr_cycles(), 0u);
}

TEST_F(SupervisorTest, BackoffGatesTheRelaunch) {
  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  // Death confirmed, but the policy's backoff (10 cycles) has not elapsed:
  // the component sits in `restarting`, not `running`.
  auto report = sup.tick();
  EXPECT_EQ(report.deaths_detected, 1u);
  EXPECT_EQ(report.restarts, 0u);
  EXPECT_EQ(*sup.health("worker"), Health::restarting);
  machine_->advance(1 << 10);
  report = sup.tick();
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_EQ(*sup.health("worker"), Health::running);
}

TEST_F(SupervisorTest, ExhaustedBudgetEscalatesToDegraded) {
  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());
  // The stanza allows 2 restarts. Kill it three times.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(assembly_->kill_component("worker").ok());
    sup.tick();
    tick_until_running(sup, "worker");
    ASSERT_EQ(*sup.health("worker"), Health::running) << "round " << round;
  }
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  machine_->advance(1 << 16);
  auto report = sup.tick();
  EXPECT_EQ(report.escalations, 1u);
  EXPECT_EQ(*sup.health("worker"), Health::degraded);
  EXPECT_FALSE(sup.halted());  // degraded is not halted
  // The component stays down; peers keep seeing the honest error.
  EXPECT_EQ(assembly_->invoke("front", "worker", to_bytes("x")).error(),
            Errc::domain_dead);
  // A degraded component is terminal: further ticks change nothing.
  machine_->advance(1 << 16);
  EXPECT_EQ(sup.tick().restarts, 0u);
  EXPECT_EQ(sup.stats().escalations, 1u);
  EXPECT_EQ(sup.stats().restarts, 2u);
}

TEST_F(SupervisorTest, HaltedEscalationLatches) {
  Supervisor sup(*assembly_);
  // Explicit policy opt-in for a component without a stanza: no relaunch
  // budget at all, and losing it halts the assembly.
  RestartPolicy mandatory;
  mandatory.max_restarts = 0;
  mandatory.escalation = RestartPolicy::Escalation::halted;
  ASSERT_TRUE(sup.watch("front", mandatory).ok());
  ASSERT_TRUE(assembly_->kill_component("front").ok());
  const auto report = sup.tick();
  EXPECT_EQ(report.deaths_detected, 1u);
  EXPECT_EQ(report.escalations, 1u);
  EXPECT_EQ(*sup.health("front"), Health::halted);
  EXPECT_TRUE(sup.halted());
}

TEST_F(SupervisorTest, ConservativeDetectorConfirmsBeforeRestarting) {
  Supervisor sup(*assembly_, {.confirm_probes = 2});
  ASSERT_TRUE(sup.watch_all().ok());
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  auto report = sup.tick();
  EXPECT_EQ(report.deaths_detected, 0u);
  EXPECT_EQ(*sup.health("worker"), Health::suspect);
  report = sup.tick();
  EXPECT_EQ(report.deaths_detected, 1u);
  EXPECT_EQ(*sup.health("worker"), Health::restarting);
}

TEST_F(SupervisorTest, RelaunchIsReattested) {
  core::AttestationVerifier verifier(to_bytes("supervisor-verifier-seed"));
  verifier.add_trusted_root(test::shared_vendor().root_public_key());
  Supervisor sup(*assembly_, {.verifier = &verifier});
  ASSERT_TRUE(sup.watch_all().ok());

  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  sup.tick();
  tick_until_running(sup, "worker");
  // The relaunch passed the full challenge-response against the identity
  // recorded at watch() time (deterministic image => same measurement).
  EXPECT_EQ(*sup.health("worker"), Health::running);
  EXPECT_EQ(sup.stats().restarts, 1u);
  EXPECT_EQ(sup.stats().restart_failures, 0u);
}

TEST_F(SupervisorTest, FaultInjectedCrashMidInvocationIsRecovered) {
  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());
  // Crash the worker at the next delivery, exactly like bench_fig10 does.
  bool armed = true;
  mk_->set_fault_hook([&](substrate::DomainId, std::string_view) {
    const bool fire = armed;
    armed = false;
    return fire;
  });
  EXPECT_EQ(assembly_->invoke("front", "worker", to_bytes("x")).error(),
            Errc::domain_dead);
  sup.tick();
  tick_until_running(sup, "worker");
  EXPECT_EQ(*sup.health("worker"), Health::running);
  EXPECT_TRUE(assembly_->invoke("front", "worker", to_bytes("x")).ok());
  mk_->set_fault_hook(nullptr);
}

TEST_F(SupervisorTest, ExternalRestartIsNotMisdiagnosed) {
  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());
  // Someone restarts the component outside the supervisor: the corpse (and
  // with it the heartbeat channel) is reaped. The probe re-establishes and
  // reports alive instead of inventing a death.
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  ASSERT_TRUE(assembly_->restart_component("worker").ok());
  const auto report = sup.tick();
  EXPECT_EQ(report.deaths_detected, 0u);
  EXPECT_EQ(*sup.health("worker"), Health::running);
}

TEST_F(SupervisorTest, MetricsFlowIntoSharedHub) {
  runtime::MetricsHub hub;
  Supervisor sup(*assembly_, {.hub = &hub, .label = "sup.test"});
  ASSERT_TRUE(sup.watch_all().ok());
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  sup.tick();
  tick_until_running(sup, "worker");
  EXPECT_EQ(hub.recovery("sup.test")->restarts, 1u);
  EXPECT_EQ(hub.all_recovery().size(), 1u);
}

TEST_F(SupervisorTest, RecoveryReportCarriesCorpseFlightRecorder) {
  trace::Tracer tracer;
  mk_->set_tracer(&tracer);
  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());

  // Traced work first, so the worker's ring holds a timeline when it dies.
  {
    trace::TraceScope scope(tracer.begin_trace());
    ASSERT_TRUE(
        assembly_->invoke("front", "worker", to_bytes("FETCH 1")).ok());
  }
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  sup.tick();  // detect the death
  tick_until_running(sup, "worker");
  ASSERT_EQ(*sup.health("worker"), Health::running);

  // The incident produced exactly one report, closed by the recovery, and
  // it carries the corpse's final cycles: the work it served, the kill, and
  // the supervisor's own detection.
  ASSERT_EQ(sup.reports().size(), 1u);
  const RecoveryReport& report = sup.reports()[0];
  EXPECT_EQ(report.name, "worker");
  EXPECT_EQ(report.incarnation, 1u);
  EXPECT_GE(report.recovered_at, report.detected_at);
  const auto has_phase = [&](trace::SpanPhase phase) {
    return std::any_of(report.flight_recorder.begin(),
                       report.flight_recorder.end(),
                       [&](const trace::SpanEvent& e) {
                         return e.phase == phase;
                       });
  };
  EXPECT_TRUE(has_phase(trace::SpanPhase::dispatch));
  EXPECT_TRUE(has_phase(trace::SpanPhase::complete));
  EXPECT_TRUE(has_phase(trace::SpanPhase::killed));
  EXPECT_TRUE(has_phase(trace::SpanPhase::detected));

  // The corpse's ring was scrubbed after the snapshot; the reincarnation's
  // ring opens with the recovery milestones (relaunch ... recovered).
  const auto fresh =
      tracer.snapshot(mk_.get(), (*assembly_->component("worker"))->domain);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh.front().phase, trace::SpanPhase::relaunch);
  EXPECT_EQ(fresh.back().phase, trace::SpanPhase::recovered);
  mk_->set_tracer(nullptr);
}

TEST_F(SupervisorTest, FlappingRelaunchesBurnBudgetAndEscalate) {
  runtime::MetricsHub hub;
  core::AttestationVerifier verifier(to_bytes("flap-verifier"));
  verifier.add_trusted_root(test::shared_vendor().root_public_key());
  Supervisor sup(*assembly_, {.hub = &hub, .verifier = &verifier});
  ASSERT_TRUE(sup.watch_all().ok());

  // A botched update re-points the expectation at a measurement no
  // incarnation will ever produce: every relaunch comes up "different",
  // fails challenge-response, and is killed as an impostor. The component
  // flaps — and the policy budget must cap the loop at escalation instead
  // of letting it revert-loop forever.
  crypto::Digest wrong{};
  wrong.fill(0xde);
  verifier.expect_measurement("worker", wrong);
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  int ticks = 0;
  for (; ticks < 20 && *sup.health("worker") != Health::degraded; ++ticks) {
    machine_->advance(1 << 20);  // past any exponential backoff
    sup.tick();
  }
  EXPECT_LT(ticks, 20) << "escalation cap never engaged";
  EXPECT_EQ(*sup.health("worker"), Health::degraded);

  const runtime::RecoveryStats stats = sup.stats();
  EXPECT_EQ(stats.escalations, 1u);
  EXPECT_EQ(stats.restarts, 0u);          // no relaunch ever verified
  EXPECT_GE(stats.restart_failures, 2u);  // the policy's budget, burned
  // A degraded component is terminal: no further relaunch attempts.
  machine_->advance(1 << 20);
  EXPECT_EQ(sup.tick().restarts, 0u);

  // Update reverts land in the same RecoveryStats block the supervisor
  // reports (the orchestrator bumps this counter through the shared hub),
  // so a flap audit sees restarts, escalations, and reverts side by side.
  EXPECT_EQ(stats.update_reverts, 0u);
  ++hub.recovery("supervisor")->update_reverts;
  EXPECT_EQ(sup.stats().update_reverts, 1u);
}

TEST_F(SupervisorTest, SupervisedRestartInvalidatesFleetTickets) {
  // A FleetServer fronting the supervised worker: its on_restart hook is
  // the production wiring for fleet::FleetServer::on_service_restart —
  // tickets minted by the dead incarnation must die with it, and clients
  // must land in a clean full-handshake fallback, not a wedged session.
  net::SimNetwork network;
  ASSERT_TRUE(network.register_endpoint("utility").ok());
  auto endpoint = assembly_->endpoint("front", "worker");
  ASSERT_TRUE(endpoint.ok());

  fleet::FleetServerConfig config;
  config.endpoint = "utility";
  config.network = &network;
  config.substrate = mk_.get();
  config.service_domain = (*assembly_->component("worker"))->domain;
  config.frontend_domain = (*assembly_->component("front"))->domain;
  config.service_channel = endpoint->channel();
  fleet::FleetServer server(std::move(config));

  fleet::FleetClientConfig client_config;
  client_config.endpoint = "meter";
  client_config.server_endpoint = "utility";
  client_config.network = &network;
  client_config.drive = [&server] { (void)server.pump(); };
  fleet::FleetClient meter(std::move(client_config));

  ASSERT_TRUE(meter.connect().ok());
  ASSERT_TRUE(meter.has_ticket());
  auto reply = meter.call("report", to_bytes("r1"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "serving");

  Supervisor sup(*assembly_);
  ASSERT_TRUE(sup.watch_all().ok());
  sup.on_restart([&](const std::string& name, std::uint32_t) {
    if (name == "worker")
      server.on_service_restart((*assembly_->component(name))->domain);
  });
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  sup.tick();
  tick_until_running(sup, "worker");
  ASSERT_EQ(*sup.health("worker"), Health::running);

  // The held ticket was sealed by the dead incarnation's key: refused as
  // unverifiable, and the client re-proves itself from scratch.
  ASSERT_TRUE(meter.connect().ok());
  EXPECT_FALSE(meter.resumed());
  EXPECT_EQ(meter.last_reject(), Errc::verification_failed);
  EXPECT_EQ(server.stats().tickets_rejected, 1u);
  EXPECT_EQ(server.stats().handshakes_full, 2u);

  // Service continues against the new incarnation and channel epoch.
  reply = meter.call("report", to_bytes("r2"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "serving");
}

}  // namespace
}  // namespace lateral::supervisor
