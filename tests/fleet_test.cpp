// lateral::fleet — fleet-scale attested federation (FIG14).
//
// The contracts under test, each with its visible rejection path:
//   - tickets are single-use, expiring, key-rotation-invalidated, and
//     identity-bound (TicketIssuer unit tests + e2e through FleetServer);
//   - resumption is one round trip and distinguishable (resumed(), the
//     handshakes_resumed counter, the handshake_resumed trace span);
//   - the verification cache amortizes RSA work across a fleet of
//     identical-measurement meters without giving up nonce freshness;
//   - admission control sheds visibly (Errc::exhausted + admission_shed)
//     and everything admitted is served — lossless accounting;
//   - a bounded pump is backpressure, not loss.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/attestation.h"
#include "fleet/admission.h"
#include "fleet/fleet_client.h"
#include "fleet/fleet_server.h"
#include "fleet/protocol.h"
#include "fleet/ticket.h"
#include "fleet/verification_cache.h"
#include "net/network.h"
#include "runtime/metrics.h"
#include "test_support.h"
#include "trace/exporter.h"
#include "trace/trace.h"

namespace lateral::fleet {
namespace {

// ---------------------------------------------------------------------------
// TicketIssuer: the resumption-ticket state machine in isolation.

crypto::Digest test_measurement(std::uint8_t fill = 0xAB) {
  crypto::Digest digest{};
  digest.fill(fill);
  return digest;
}

TEST(TicketIssuer, MintRedeemRoundTripIsSingleUse) {
  TicketIssuer issuer(to_bytes("ticket-key"), /*ttl=*/1000);
  const MintedTicket minted = issuer.mint(test_measurement(), /*now=*/100);
  EXPECT_FALSE(minted.wire.empty());
  EXPECT_EQ(minted.secret.size(), 32u);

  auto claims = issuer.redeem(minted.wire, /*now=*/200);
  ASSERT_TRUE(claims.ok());
  EXPECT_EQ(claims->measurement, test_measurement());
  EXPECT_EQ(claims->secret, minted.secret);
  EXPECT_EQ(claims->expiry, 1100u);
  EXPECT_EQ(claims->id, minted.id);

  // Single-use: the same wire a second time is a replay.
  EXPECT_EQ(issuer.redeem(minted.wire, 300).error(), Errc::ticket_replayed);
  EXPECT_EQ(issuer.redeemed_live(), 1u);
}

TEST(TicketIssuer, ExpiryRejectsAndPrunesReplayState) {
  TicketIssuer issuer(to_bytes("ticket-key"), /*ttl=*/1000);
  const MintedTicket early = issuer.mint(test_measurement(), 0);
  ASSERT_TRUE(issuer.redeem(early.wire, 10).ok());
  EXPECT_EQ(issuer.redeemed_live(), 1u);

  const MintedTicket late = issuer.mint(test_measurement(), 0);
  EXPECT_EQ(issuer.redeem(late.wire, 2000).error(), Errc::ticket_expired);
  // The replay set is bounded by tickets-per-TTL: pruning rode on the same
  // redeem call, so the long-expired first id is gone.
  EXPECT_EQ(issuer.redeemed_live(), 0u);
}

TEST(TicketIssuer, RotationInvalidatesOutstandingTickets) {
  TicketIssuer issuer(to_bytes("ticket-key"), 1000);
  const MintedTicket minted = issuer.mint(test_measurement(), 0);
  issuer.rotate();
  // Sealed under a key that no longer exists: indistinguishable from a
  // forgery, and that is the point.
  EXPECT_EQ(issuer.redeem(minted.wire, 1).error(), Errc::verification_failed);
  // Tickets minted after the rotation work.
  const MintedTicket fresh = issuer.mint(test_measurement(), 0);
  EXPECT_TRUE(issuer.redeem(fresh.wire, 1).ok());
}

TEST(TicketIssuer, TamperedWireRefused) {
  TicketIssuer issuer(to_bytes("ticket-key"), 1000);
  MintedTicket minted = issuer.mint(test_measurement(), 0);
  minted.wire[minted.wire.size() / 2] ^= 0x01;
  EXPECT_EQ(issuer.redeem(minted.wire, 1).error(), Errc::verification_failed);
  EXPECT_EQ(issuer.redeem(to_bytes("short"), 1).error(),
            Errc::verification_failed);
}

// ---------------------------------------------------------------------------
// Protocol framing + resumption crypto.

TEST(FleetProtocol, FrameRoundTripAndRejection) {
  const Bytes wire = frame(FrameKind::resume, to_bytes("payload"));
  auto parsed = parse_frame(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, FrameKind::resume);
  EXPECT_EQ(to_string(parsed->payload), "payload");
  EXPECT_FALSE(parse_frame(Bytes{}).ok());
  EXPECT_FALSE(parse_frame(Bytes{0x7F, 1, 2}).ok());  // unknown kind
}

TEST(FleetProtocol, ResumeEncodingRoundTrip) {
  const Bytes ticket = to_bytes("opaque-ticket-bytes");
  const Bytes nonce(32, 0x11);
  const Bytes binder = resume_binder(to_bytes("secret"), ticket, nonce);
  auto decoded = decode_resume(encode_resume(ticket, nonce, binder));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ticket_wire, ticket);
  EXPECT_EQ(decoded->client_nonce, nonce);
  EXPECT_EQ(decoded->binder, binder);
  EXPECT_FALSE(decode_resume(to_bytes("garbage")).ok());
}

TEST(FleetProtocol, KeysAndBindersDependOnEveryInput) {
  const Bytes nc(32, 1), ns(32, 2);
  const Bytes keys = resumption_keys(to_bytes("s"), nc, ns);
  EXPECT_EQ(keys.size(), 32u);
  EXPECT_NE(keys, resumption_keys(to_bytes("t"), nc, ns));
  EXPECT_NE(keys, resumption_keys(to_bytes("s"), ns, nc));
  const Bytes binder = resume_binder(to_bytes("s"), to_bytes("w"), nc);
  EXPECT_NE(binder, resume_binder(to_bytes("s"), to_bytes("x"), nc));
  EXPECT_NE(binder, resume_binder(to_bytes("r"), to_bytes("w"), nc));
}

// ---------------------------------------------------------------------------
// AdmissionGate: token bucket on simulated time.

TEST(AdmissionGate, ShedsWhenBurstExhaustedRefillsWithTime) {
  AdmissionGate gate({.burst = 2, .refill_per_megacycle = 1});
  EXPECT_TRUE(gate.admit(0).ok());
  EXPECT_TRUE(gate.admit(0).ok());
  EXPECT_EQ(gate.admit(0).error(), Errc::exhausted);
  EXPECT_EQ(gate.admitted(), 2u);
  EXPECT_EQ(gate.shed(), 1u);
  // One megacycle later one token has dripped in.
  EXPECT_TRUE(gate.admit(1'000'000).ok());
  EXPECT_EQ(gate.admit(1'000'000).error(), Errc::exhausted);
  // Refill is capped at the burst ceiling, not unbounded.
  EXPECT_TRUE(gate.admit(100'000'000).ok());
  EXPECT_TRUE(gate.admit(100'000'000).ok());
  EXPECT_EQ(gate.admit(100'000'000).error(), Errc::exhausted);
}

TEST(AdmissionGate, SubMegacycleProgressIsNotLost) {
  AdmissionGate gate({.burst = 1, .refill_per_megacycle = 2});
  ASSERT_TRUE(gate.admit(0).ok());
  // 2 tokens per megacycle = one per 500k cycles; two half-steps must add
  // up instead of rounding to nothing twice.
  EXPECT_EQ(gate.admit(250'000).error(), Errc::exhausted);
  EXPECT_TRUE(gate.admit(500'000).ok());
}

// ---------------------------------------------------------------------------
// CachedVerifier: amortized quote verification, with the cheap checks kept.

class CachedVerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("cache");
    sgx_ = *test::shared_registry().create("sgx", *machine_);
    meter_ = *sgx_->create_domain(test::tc_spec("metering"));
  }

  std::unique_ptr<CachedVerifier> make_verifier(CacheConfig config) {
    config.clock = machine_.get();
    auto verifier =
        std::make_unique<CachedVerifier>(to_bytes("cv-seed"), config);
    verifier->add_trusted_root(test::shared_vendor().root_public_key());
    verifier->expect_measurement(
        "metering", test::tc_spec("metering").image.measurement());
    return verifier;
  }

  /// One full challenge/response round against `domain`.
  Status attest_once(CachedVerifier& verifier, substrate::DomainId domain,
                     const std::string& name = "metering") {
    const Bytes nonce = verifier.make_challenge();
    auto quote = core::respond_to_challenge(*sgx_, domain, nonce,
                                            to_bytes("ctx"));
    if (!quote) return quote.error();
    return verifier.verify(name, *quote, nonce, to_bytes("ctx"));
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> sgx_;
  substrate::DomainId meter_ = 0;
};

TEST_F(CachedVerifierTest, SecondVerificationOfSameMeasurementIsAHit) {
  // Quote *generation* alone advances the clock ~12M cycles on sgx (the
  // RSA signature is modeled honestly), so a hit window meant to span two
  // attestations must be much wider than that.
  auto verifier = make_verifier({.capacity = 8, .ttl = 100'000'000});
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  EXPECT_EQ(verifier->cache_stats().misses, 1u);
  EXPECT_EQ(verifier->cache_stats().hits, 0u);
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  EXPECT_EQ(verifier->cache_stats().misses, 1u);
  EXPECT_EQ(verifier->cache_stats().hits, 1u);
  EXPECT_EQ(verifier->cache_size(), 1u);
}

TEST_F(CachedVerifierTest, HitPathStillEnforcesNonceFreshness) {
  auto verifier = make_verifier({.capacity = 8, .ttl = 100'000'000});
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());  // warm the cache
  // Replay: a quote over a consumed nonce must fail even though the
  // measurement is cached — the hit path skips RSA, not freshness.
  const Bytes nonce = verifier->make_challenge();
  auto quote = core::respond_to_challenge(*sgx_, meter_, nonce,
                                          to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  ASSERT_TRUE(verifier->verify("metering", *quote, nonce, to_bytes("ctx"))
                  .ok());
  EXPECT_EQ(verifier->cache_stats().hits, 1u);  // that WAS the hit path
  EXPECT_EQ(verifier->verify("metering", *quote, nonce, to_bytes("ctx"))
                .error(),
            Errc::verification_failed);
  // A nonce the verifier never issued fails the same way.
  EXPECT_FALSE(verifier
                   ->verify("metering", *quote, Bytes(32, 0x42),
                            to_bytes("ctx"))
                   .ok());
}

TEST_F(CachedVerifierTest, TtlExpiryForcesReverification) {
  auto verifier = make_verifier({.capacity = 8, .ttl = 1000});
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  machine_->advance(2000);  // past the ttl
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  EXPECT_EQ(verifier->cache_stats().misses, 2u);
  EXPECT_EQ(verifier->cache_stats().hits, 0u);
  EXPECT_GE(verifier->cache_stats().evictions, 1u);
}

TEST_F(CachedVerifierTest, ZeroTtlDisablesCachingEntirely) {
  auto verifier = make_verifier({.capacity = 8, .ttl = 0});
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  EXPECT_EQ(verifier->cache_stats().hits, 0u);
  EXPECT_EQ(verifier->cache_stats().misses, 2u);
}

TEST_F(CachedVerifierTest, CapacityBoundEvictsLeastRecentlyUsed) {
  const auto other_spec = test::tc_spec("metering-v2");
  const auto other = *sgx_->create_domain(other_spec);
  auto verifier = make_verifier({.capacity = 1, .ttl = 100'000'000});
  verifier->expect_measurement("metering-v2",
                               other_spec.image.measurement());
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  ASSERT_TRUE(attest_once(*verifier, other, "metering-v2").ok());
  EXPECT_EQ(verifier->cache_size(), 1u);
  EXPECT_GE(verifier->cache_stats().evictions, 1u);
  // The first identity was evicted: verifying it again is a miss.
  ASSERT_TRUE(attest_once(*verifier, meter_).ok());
  EXPECT_EQ(verifier->cache_stats().misses, 3u);
}

// ---------------------------------------------------------------------------
// FleetServer + FleetClient end to end: one utility endpoint, many meters.

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_machine_ = test::make_machine("utility-machine");
    sgx_ = *test::shared_registry().create("sgx", *server_machine_);
    anonymizer_ = *sgx_->create_domain(test::tc_spec("anonymizer"));
    frontend_ = *sgx_->create_domain(test::tc_spec("frontend"));
    channel_ = *sgx_->create_channel(frontend_, anonymizer_);
    ASSERT_TRUE(sgx_
                    ->set_handler(anonymizer_,
                                  [this](const substrate::Invocation& inv)
                                      -> Result<Bytes> {
                                    ++service_runs_;
                                    return to_bytes("ack:" +
                                                    to_string(inv.data));
                                  })
                    .ok());

    meter_machine_ = test::make_machine("meter-machine");
    tz_ = *test::shared_registry().create("trustzone", *meter_machine_);
    metering_ = *tz_->create_domain(test::tc_spec("metering"));

    meter_verifier_ =
        std::make_unique<core::AttestationVerifier>(to_bytes("mv"));
    meter_verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    meter_verifier_->expect_measurement(
        "anonymizer", test::tc_spec("anonymizer").image.measurement());

    utility_verifier_ = std::make_unique<CachedVerifier>(
        to_bytes("uv"), CacheConfig{.capacity = 16,
                                    .ttl = 100'000'000,
                                    .clock = server_machine_.get()});
    utility_verifier_->add_trusted_root(
        test::shared_vendor().root_public_key());
    utility_verifier_->expect_measurement(
        "metering", test::tc_spec("metering").image.measurement());

    ASSERT_TRUE(network_.register_endpoint("utility").ok());
  }

  FleetServerConfig server_config() {
    FleetServerConfig config;
    config.endpoint = "utility";
    config.network = &network_;
    config.substrate = sgx_.get();
    config.service_domain = anonymizer_;
    config.frontend_domain = frontend_;
    config.service_channel = channel_;
    config.verifier = utility_verifier_.get();
    config.expected_client = "metering";
    config.hub = &hub_;
    config.label = "fleet.utility";
    return config;
  }

  FleetClient make_client(const std::string& name, FleetServer& server) {
    FleetClientConfig config;
    config.endpoint = name;
    config.server_endpoint = "utility";
    config.network = &network_;
    config.prover = net::ProverConfig{tz_.get(), metering_};
    config.verifier = net::VerifierConfig{meter_verifier_.get(), "anonymizer"};
    config.drive = [&server] { (void)server.pump(); };
    return FleetClient(std::move(config));
  }

  std::unique_ptr<hw::Machine> server_machine_;
  std::unique_ptr<substrate::IsolationSubstrate> sgx_;
  substrate::DomainId anonymizer_ = 0, frontend_ = 0;
  substrate::ChannelId channel_ = 0;
  int service_runs_ = 0;

  std::unique_ptr<hw::Machine> meter_machine_;
  std::unique_ptr<substrate::IsolationSubstrate> tz_;
  substrate::DomainId metering_ = 0;

  std::unique_ptr<core::AttestationVerifier> meter_verifier_;
  std::unique_ptr<CachedVerifier> utility_verifier_;
  net::SimNetwork network_;
  runtime::MetricsHub hub_;
};

TEST_F(FleetTest, FullHandshakeGrantsTicketAndServesBatchedRpc) {
  FleetServer server(server_config());
  FleetClient meter = make_client("meter-1", server);

  ASSERT_TRUE(meter.connect().ok());
  EXPECT_FALSE(meter.resumed());
  EXPECT_TRUE(meter.has_ticket());
  EXPECT_EQ(server.sessions(), 1u);
  EXPECT_EQ(server.stats().handshakes_full, 1u);
  EXPECT_EQ(server.stats().tickets_issued, 1u);

  auto reply = meter.call("report", to_bytes("42kWh"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "ack:42kWh");
  EXPECT_EQ(service_runs_, 1);
  EXPECT_EQ(hub_.counters("fleet.utility")->completed, 1u);
}

TEST_F(FleetTest, ResumptionIsOneRoundTripAndCountedSeparately) {
  FleetServer server(server_config());
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());

  const std::uint64_t before = network_.stats().messages;
  ASSERT_TRUE(meter.connect().ok());
  const std::uint64_t after = network_.stats().messages;

  EXPECT_TRUE(meter.resumed());
  EXPECT_EQ(meter.last_reject(), Errc::ok);
  // One RTT: resume out, resume_ok back. The full handshake takes four
  // messages (msg1, msg2, msg3, grant).
  EXPECT_EQ(after - before, 2u);
  EXPECT_EQ(server.stats().handshakes_full, 1u);
  EXPECT_EQ(server.stats().handshakes_resumed, 1u);

  // The resumed channel carries records like any other.
  auto reply = meter.call("report", to_bytes("7kWh"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "ack:7kWh");
  // Single-use: the ticket was spent on this resumption.
  EXPECT_FALSE(meter.has_ticket());
}

TEST_F(FleetTest, HandshakeSpansLabelResumptionDistinctly) {
  trace::Tracer tracer;
  sgx_->set_tracer(&tracer);
  FleetServerConfig config = server_config();
  config.tracer = &tracer;
  FleetServer server(config);
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());  // full
  ASSERT_TRUE(meter.connect().ok());  // resumed

  const auto events = tracer.snapshot(sgx_.get(), anonymizer_);
  const auto count_phase = [&](trace::SpanPhase phase) {
    return std::count_if(events.begin(), events.end(),
                         [&](const trace::SpanEvent& e) {
                           return e.phase == phase;
                         });
  };
  EXPECT_EQ(count_phase(trace::SpanPhase::handshake_full), 1);
  EXPECT_EQ(count_phase(trace::SpanPhase::handshake_resumed), 1);

  // And the exporter names them apart (satellite: the flame view shows
  // resumed handshakes distinctly).
  trace::TraceExporter exporter(tracer, &hub_);
  const std::string text = exporter.text_snapshot();
  EXPECT_NE(text.find("handshake_full"), std::string::npos);
  EXPECT_NE(text.find("handshake_resumed"), std::string::npos);
  sgx_->set_tracer(nullptr);
}

TEST_F(FleetTest, ReplayedResumeFrameIsRejectedAndCounted) {
  FleetServer server(server_config());
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());

  // Wiretap: capture the resume frame as it crosses the (untrusted) network.
  Bytes captured;
  network_.set_tamperer([&](const std::string&, const std::string&,
                            BytesView payload) -> std::optional<Bytes> {
    Bytes copy(payload.begin(), payload.end());
    if (!copy.empty() &&
        copy[0] == static_cast<std::uint8_t>(FrameKind::resume))
      captured = copy;
    return copy;
  });
  ASSERT_TRUE(meter.connect().ok());
  ASSERT_TRUE(meter.resumed());
  ASSERT_FALSE(captured.empty());
  network_.set_tamperer(nullptr);

  // The attacker replays the captured frame with a forged source address.
  ASSERT_TRUE(network_.inject("meter-1", "utility", captured).ok());
  ASSERT_TRUE(server.pump().ok());
  EXPECT_EQ(server.stats().tickets_rejected, 1u);
  auto rejection = network_.receive("meter-1");
  ASSERT_TRUE(rejection.ok());
  auto parsed = parse_frame(rejection->payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, FrameKind::reject);
  ASSERT_EQ(parsed->payload.size(), 1u);
  EXPECT_EQ(static_cast<Errc>(parsed->payload[0]), Errc::ticket_replayed);
}

TEST_F(FleetTest, ExpiredTicketFallsBackToFullHandshake) {
  FleetServerConfig config = server_config();
  config.ticket_ttl = 1000;
  FleetServer server(config);
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());
  ASSERT_TRUE(meter.has_ticket());

  server_machine_->advance(10'000);  // well past the ttl
  ASSERT_TRUE(meter.connect().ok());
  EXPECT_FALSE(meter.resumed());  // fell back
  EXPECT_EQ(meter.last_reject(), Errc::ticket_expired);
  EXPECT_EQ(server.stats().tickets_rejected, 1u);
  EXPECT_EQ(server.stats().handshakes_full, 2u);
  // The fallback handshake granted a fresh ticket; it resumes fine.
  ASSERT_TRUE(meter.connect().ok());
  EXPECT_TRUE(meter.resumed());
}

TEST_F(FleetTest, ServiceRestartRotatesTicketsAndCancelsBackloggedWork) {
  FleetServer server(server_config());
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());

  // Admitted-but-unserved work at restart time is accounted, never lost:
  // three records in, a capped pump serves one and leaves two in backlog.
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(meter.submit("report", to_bytes("r")).ok());
  ASSERT_TRUE(server.pump(1).ok());
  EXPECT_EQ(server.backlog(), 2u);
  ASSERT_TRUE(meter.collect().ok());  // the one served reply

  server.on_service_restart(anonymizer_);
  EXPECT_EQ(server.sessions(), 0u);
  EXPECT_EQ(server.backlog(), 0u);
  const runtime::InvocationCounters counters =
      hub_.counters("fleet.utility").snapshot();
  EXPECT_EQ(counters.submitted, 3u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_EQ(counters.cancelled, 2u);

  // The old ticket was sealed by the rotated-away key: full fallback.
  ASSERT_TRUE(meter.connect().ok());
  EXPECT_FALSE(meter.resumed());
  EXPECT_EQ(meter.last_reject(), Errc::verification_failed);
  EXPECT_EQ(server.stats().tickets_rejected, 1u);

  // And the re-established session serves through the new channel epoch.
  auto reply = meter.call("report", to_bytes("post-restart"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "ack:post-restart");
}

TEST_F(FleetTest, ChangedIdentityPolicyRefusesOldTickets) {
  FleetServer server(server_config());
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());

  // Policy update: only a newer meter build is acceptable from now on.
  utility_verifier_->expect_measurement(
      "metering", test::tc_spec("metering-v2").image.measurement());
  utility_verifier_->flush_cache();

  // The ticket is intact and unexpired, but bound to the outdated identity
  // — refused. The full-handshake fallback then fails honestly too, because
  // the meter genuinely no longer matches policy.
  EXPECT_FALSE(meter.connect().ok());
  EXPECT_EQ(meter.last_reject(), Errc::access_denied);
  EXPECT_EQ(server.stats().tickets_rejected, 1u);
  EXPECT_FALSE(meter.has_ticket());
}

TEST_F(FleetTest, VerificationCacheAmortizesAcrossIdenticalMeters) {
  FleetServer server(server_config());
  FleetClient first = make_client("meter-1", server);
  FleetClient second = make_client("meter-2", server);
  FleetClient third = make_client("meter-3", server);

  ASSERT_TRUE(first.connect().ok());
  ASSERT_TRUE(second.connect().ok());
  ASSERT_TRUE(third.connect().ok());
  EXPECT_EQ(server.sessions(), 3u);

  // One RSA chain verification for the whole burst; the rest were hits.
  EXPECT_EQ(utility_verifier_->cache_stats().misses, 1u);
  EXPECT_EQ(utility_verifier_->cache_stats().hits, 2u);

  server.sync_verifier_cache(*utility_verifier_);
  EXPECT_EQ(server.stats().verify_cache_hits, 2u);
  EXPECT_EQ(server.stats().verify_cache_misses, 1u);
  EXPECT_EQ(hub_.fleet("fleet.utility")->verify_cache_hits, 2u);
}

TEST_F(FleetTest, AdmissionShedsVisiblyAndAdmittedWorkIsNeverLost) {
  FleetServerConfig config = server_config();
  config.admission = {.burst = 4, .refill_per_megacycle = 1};
  FleetServer server(config);
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());

  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i)
    ASSERT_TRUE(
        meter.submit("report", to_bytes("r" + std::to_string(i))).ok());
  ASSERT_TRUE(server.pump().ok());

  int served = 0, shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    auto reply = meter.collect();
    if (reply.ok()) {
      ++served;
      EXPECT_EQ(to_string(*reply).substr(0, 4), "ack:");
    } else {
      ASSERT_EQ(reply.error(), Errc::exhausted);
      ++shed;
    }
  }
  EXPECT_EQ(served, 4);
  EXPECT_EQ(shed, 6);
  EXPECT_EQ(server.stats().admission_shed, 6u);

  // Lossless: every admitted request completed; shed ones were rejected
  // visibly at the edge, not queued and not dropped.
  const runtime::InvocationCounters counters =
      hub_.counters("fleet.utility").snapshot();
  EXPECT_EQ(counters.submitted, 4u);
  EXPECT_EQ(counters.completed, 4u);
  EXPECT_EQ(counters.rejected, 6u);
  EXPECT_EQ(counters.cancelled, 0u);
}

TEST_F(FleetTest, BoundedPumpIsBackpressureNotLoss) {
  FleetServerConfig config = server_config();
  config.admission_enabled = false;  // backlog growth is the point here
  FleetServer server(config);
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());

  constexpr int kRequests = 9;
  for (int i = 0; i < kRequests; ++i)
    ASSERT_TRUE(
        meter.submit("report", to_bytes("b" + std::to_string(i))).ok());

  // A capped pump serves at most 3 per tick; the rest wait their turn.
  ASSERT_TRUE(server.pump(3).ok());
  EXPECT_EQ(server.backlog(), static_cast<std::size_t>(kRequests - 3));
  ASSERT_TRUE(server.pump(3).ok());
  ASSERT_TRUE(server.pump(3).ok());
  EXPECT_EQ(server.backlog(), 0u);

  for (int i = 0; i < kRequests; ++i) {
    auto reply = meter.collect();
    ASSERT_TRUE(reply.ok()) << "request " << i;
    EXPECT_EQ(to_string(*reply), "ack:b" + std::to_string(i));
  }
  EXPECT_EQ(hub_.counters("fleet.utility")->completed,
            static_cast<std::uint64_t>(kRequests));
}

TEST_F(FleetTest, ObservabilityDumpCarriesFleetCounters) {
  FleetServer server(server_config());
  FleetClient meter = make_client("meter-1", server);
  ASSERT_TRUE(meter.connect().ok());
  ASSERT_TRUE(meter.connect().ok());
  server.sync_verifier_cache(*utility_verifier_);

  trace::Tracer tracer;
  trace::TraceExporter exporter(tracer, &hub_);
  const std::string text = exporter.text_snapshot();
  EXPECT_NE(text.find("fleet.utility (fleet): handshakes_full=1 "
                      "handshakes_resumed=1"),
            std::string::npos);
  EXPECT_NE(text.find("verify_cache_misses=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared-state pieces under concurrency (TSan job runs this binary).

TEST(FleetConcurrency, GateTicketsAndStatsAreThreadSafe) {
  AdmissionGate gate({.burst = 1'000'000, .refill_per_megacycle = 1});
  TicketIssuer issuer(to_bytes("tsan-key"), 1'000'000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        (void)gate.admit(static_cast<Cycles>(i));
        const MintedTicket minted =
            issuer.mint(test_measurement(static_cast<std::uint8_t>(t)), 0);
        (void)issuer.redeem(minted.wire, 1);
        (void)gate.shed();
        (void)issuer.redeemed_live();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gate.admitted(), 800u);
}

}  // namespace
}  // namespace lateral::fleet
