// SEP specifics: exactly two execution environments, mailbox-priced
// invocations, inline DRAM encryption, AP/SEP mutual inaccessibility.
#include <gtest/gtest.h>

#include "hw/attacker.h"
#include "sep/sep.h"
#include "test_support.h"

namespace lateral::sep {
namespace {

using test::legacy_spec;
using test::tc_spec;

class SepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("sep");
    sep_ = std::make_unique<Sep>(*machine_, substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Sep> sep_;
};

TEST_F(SepTest, ExactlyTwoEnvironments) {
  ASSERT_TRUE(sep_->create_domain(tc_spec("sep-firmware")).ok());
  ASSERT_TRUE(sep_->create_domain(legacy_spec("ios")).ok());
  // "Inflexible and offers only two separated execution environments."
  EXPECT_EQ(sep_->create_domain(tc_spec("second-tc")).error(),
            Errc::exhausted);
  EXPECT_EQ(sep_->create_domain(legacy_spec("second-os")).error(),
            Errc::exhausted);
}

TEST_F(SepTest, SlotsFreedOnDestroy) {
  auto tc = sep_->create_domain(tc_spec("sep-firmware"));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(sep_->destroy_domain(*tc).ok());
  EXPECT_TRUE(sep_->create_domain(tc_spec("replacement")).ok());
}

TEST_F(SepTest, SepMemoryEncryptedInDram) {
  auto tc = sep_->create_domain(tc_spec("sep-firmware", 1));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(
      sep_->write_memory(*tc, *tc, 0, to_bytes("FINGERPRINT-TEMPLATE")).ok());
  hw::PhysicalAttacker attacker(*machine_);
  EXPECT_TRUE(
      attacker.scan(machine_->dram(), to_bytes("FINGERPRINT-TEMPLATE"))
          .empty());
  auto read = sep_->read_memory(*tc, *tc, 0, 20);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "FINGERPRINT-TEMPLATE");
}

TEST_F(SepTest, InlineEncryptionDetectsTamper) {
  auto tc = sep_->create_domain(tc_spec("sep-firmware", 1));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(sep_->write_memory(*tc, *tc, 0, to_bytes("keys")).ok());
  auto frames = sep_->domain_frames(*tc);
  ASSERT_TRUE(frames.ok());
  hw::PhysicalAttacker attacker(*machine_);
  ASSERT_TRUE(attacker.tamper((*frames)[0] + 1, to_bytes("\xff")).ok());
  EXPECT_EQ(sep_->read_memory(*tc, *tc, 0, 4).error(), Errc::tamper_detected);
}

TEST_F(SepTest, ProcessorsCannotTouchEachOthersMemory) {
  auto tc = sep_->create_domain(tc_spec("sep-firmware"));
  auto ap = sep_->create_domain(legacy_spec("ios"));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(ap.ok());
  // Separate silicon: even the trusted side goes through the mailbox, not
  // through a shared address space.
  EXPECT_EQ(sep_->read_memory(*ap, *tc, 0, 4).error(), Errc::access_denied);
  EXPECT_EQ(sep_->read_memory(*tc, *ap, 0, 4).error(), Errc::access_denied);
}

TEST_F(SepTest, MailboxPricing) {
  auto tc = sep_->create_domain(tc_spec("sep-firmware"));
  auto ap = sep_->create_domain(legacy_spec("ios"));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(ap.ok());
  auto chan = sep_->create_channel(*ap, *tc);
  ASSERT_TRUE(chan.ok());
  ASSERT_TRUE(sep_->set_handler(*tc, [](const substrate::Invocation&)
                                    -> Result<Bytes> { return Bytes{}; })
                  .ok());
  const Cycles before = machine_->now();
  ASSERT_TRUE(sep_->call(*ap, *chan, to_bytes("unlock")).ok());
  EXPECT_GE(machine_->now() - before,
            machine_->costs().sep_mailbox_round_trip);
}

TEST_F(SepTest, OnlySepSideHoldsKeys) {
  auto ap = sep_->create_domain(legacy_spec("ios"));
  ASSERT_TRUE(ap.ok());
  EXPECT_EQ(sep_->attest(*ap, to_bytes("x")).error(), Errc::access_denied);
  EXPECT_EQ(sep_->seal(*ap, to_bytes("x")).error(), Errc::access_denied);
  auto tc = sep_->create_domain(tc_spec("sep-firmware"));
  ASSERT_TRUE(tc.ok());
  EXPECT_TRUE(sep_->attest(*tc, to_bytes("x")).ok());
}

TEST_F(SepTest, DefendsPhysicalBusInMatrix) {
  EXPECT_TRUE(sep_->info().defends(substrate::AttackerModel::physical_bus));
  EXPECT_TRUE(has_feature(sep_->info().features,
                          substrate::Feature::memory_encryption));
  EXPECT_FALSE(has_feature(sep_->info().features,
                           substrate::Feature::concurrent_domains));
}

}  // namespace
}  // namespace lateral::sep
