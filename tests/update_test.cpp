// lateral::update — attested OTA updates, rollback protection, auto-revert.
//
// The contract under test: a vendor-signed UpdateManifest streams into the
// inactive slot while the old image serves, the swap is a supervised
// restart with fresh attestation against the new measurement, probation
// decides commit-or-revert, and the TPM's monotonic NV counter (bumped only
// on commit) makes stale-version replay impossible even for validly signed
// images. The fault matrix at the bottom is FIG15's: crash mid-transfer,
// corrupted image, stale replay, post-swap heartbeat failure, power loss
// between arm and commit.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/composer.h"
#include "fleet/fleet_client.h"
#include "fleet/fleet_server.h"
#include "ftpm/ftpm.h"
#include "microkernel/microkernel.h"
#include "net/network.h"
#include "supervisor/supervisor.h"
#include "test_support.h"
#include "tpm/tpm.h"
#include "trace/trace.h"
#include "update/update.h"

namespace lateral::update {
namespace {

using supervisor::Health;
using supervisor::Supervisor;

// --- NV counter primitive ---------------------------------------------------

TEST(NvCounterBank, DefinesReadsAndIncrementsMonotonically) {
  tpm::NvCounterBank bank;
  EXPECT_EQ(bank.read("boot").error(), Errc::invalid_argument);  // undefined
  EXPECT_EQ(bank.increment("boot").error(), Errc::invalid_argument);
  EXPECT_EQ(bank.define("").error(), Errc::invalid_argument);

  ASSERT_TRUE(bank.define("boot").ok());
  EXPECT_EQ(*bank.read("boot"), 0u);
  EXPECT_EQ(*bank.increment("boot"), 1u);
  EXPECT_EQ(*bank.increment("boot"), 2u);
  EXPECT_EQ(*bank.read("boot"), 2u);
  // Re-defining is idempotent provisioning, never a reset.
  ASSERT_TRUE(bank.define("boot").ok());
  EXPECT_EQ(*bank.read("boot"), 2u);
  EXPECT_EQ(bank.defined(), 1u);
}

TEST(NvCounterBank, BudgetIsBounded) {
  tpm::NvCounterBank bank;
  for (std::size_t i = 0; i < tpm::kMaxNvCounters; ++i)
    ASSERT_TRUE(bank.define("c" + std::to_string(i)).ok());
  EXPECT_EQ(bank.define("one-too-many").error(), Errc::exhausted);
  // Existing names still provision fine once the budget is full.
  EXPECT_TRUE(bank.define("c0").ok());
}

TEST(NvCounter, PersistsAcrossDomainLifecyclesOnTpmAndFtpm) {
  auto machine = test::make_machine("nv-machine");
  tpm::Tpm tpm_chip(*machine, {});
  ftpm::Ftpm ftpm_chip(*machine, {});

  const auto exercise = [&](auto& device) {
    ASSERT_TRUE(device.nv_define("update.fw").ok());
    ASSERT_TRUE(device.nv_increment("update.fw").ok());
    // Counters are chip state, not domain state: killing and re-creating
    // domains (the supervised-restart lifecycle) does not touch them.
    auto domain = device.create_domain(test::tc_spec("fw"));
    ASSERT_TRUE(domain.ok());
    ASSERT_TRUE(device.kill_domain(*domain).ok());
    EXPECT_EQ(*device.nv_read("update.fw"), 1u);
    EXPECT_EQ(*device.nv_increment("update.fw"), 2u);
  };
  exercise(tpm_chip);
  exercise(ftpm_chip);

  // The adapter the orchestrator uses sees the same values.
  DeviceRollbackCounters<tpm::Tpm> counters(tpm_chip);
  EXPECT_EQ(*counters.read("update.fw"), 2u);
}

// --- Manifest signing -------------------------------------------------------

class ManifestSigningTest : public ::testing::Test {
 protected:
  static crypto::RsaKeyPair make_vendor_key() {
    crypto::HmacDrbg drbg(to_bytes("update-test-vendor-key"));
    return crypto::RsaKeyPair::generate(drbg, 512);
  }
};

TEST_F(ManifestSigningTest, SignedManifestVerifiesAndTamperFailsClosed) {
  const crypto::RsaKeyPair vendor = make_vendor_key();
  const Bytes image = to_bytes("firmware-v2");
  UpdateManifest manifest = make_manifest("fw", 2, image);
  EXPECT_EQ(manifest.new_measurement, manifest.image_hash);
  sign_manifest(manifest, vendor);
  EXPECT_TRUE(verify_manifest(manifest, vendor.pub).ok());

  // Every signed field is covered: flipping any one kills the signature.
  UpdateManifest bad = manifest;
  bad.version = 3;
  EXPECT_EQ(verify_manifest(bad, vendor.pub).error(),
            Errc::verification_failed);
  bad = manifest;
  bad.component = "other";
  EXPECT_FALSE(verify_manifest(bad, vendor.pub).ok());
  bad = manifest;
  bad.image_hash[0] ^= 1;
  EXPECT_FALSE(verify_manifest(bad, vendor.pub).ok());
  bad = manifest;
  bad.new_measurement[0] ^= 1;
  EXPECT_FALSE(verify_manifest(bad, vendor.pub).ok());

  // And a different vendor's signature is not this vendor's.
  crypto::HmacDrbg other_drbg(to_bytes("another-vendor"));
  const auto other = crypto::RsaKeyPair::generate(other_drbg, 512);
  EXPECT_FALSE(verify_manifest(manifest, other.pub).ok());
}

// --- Slot bank --------------------------------------------------------------

TEST(SlotBank, StagesSwapsAndRollsBackAb) {
  SlotBank bank(2, to_bytes("factory"), 1);
  EXPECT_EQ(bank.active_slot(), 0u);
  EXPECT_EQ(to_string(bank.active_image()), "factory");
  EXPECT_EQ(bank.active_version(), 1u);
  EXPECT_EQ(bank.append(to_bytes("x")).error(), Errc::invalid_argument);
  EXPECT_EQ(bank.swap().error(), Errc::invalid_argument);  // nothing staged

  ASSERT_TRUE(bank.begin_staging(2).ok());
  ASSERT_TRUE(bank.append(to_bytes("fw-")).ok());
  ASSERT_TRUE(bank.append(to_bytes("v2")).ok());
  EXPECT_EQ(bank.staged_hash(), crypto::Sha256::hash(to_bytes("fw-v2")));
  EXPECT_EQ(bank.swap().error(), Errc::invalid_argument);  // still open
  ASSERT_TRUE(bank.finish_staging().ok());

  ASSERT_TRUE(bank.swap().ok());
  EXPECT_EQ(bank.active_slot(), 1u);
  EXPECT_EQ(to_string(bank.active_image()), "fw-v2");
  EXPECT_EQ(bank.active_version(), 2u);

  // Revert restores the previous slot; the failed image stays for forensics.
  ASSERT_TRUE(bank.rollback().ok());
  EXPECT_EQ(bank.active_slot(), 0u);
  EXPECT_EQ(to_string(bank.active_image()), "factory");
  EXPECT_EQ(bank.rollback().error(), Errc::invalid_argument);  // once only
}

TEST(SlotBank, AbortedStagingLeavesActiveUntouched) {
  SlotBank bank(2, to_bytes("factory"));
  ASSERT_TRUE(bank.begin_staging(5).ok());
  ASSERT_TRUE(bank.append(to_bytes("partial")).ok());
  bank.abort_staging();
  EXPECT_FALSE(bank.staged_valid());
  EXPECT_EQ(to_string(bank.active_image()), "factory");
  EXPECT_EQ(bank.swap().error(), Errc::invalid_argument);
}

// --- Orchestrator -----------------------------------------------------------

constexpr const char* kUpdatableSystem = R"(
component updater {
  substrate microkernel
  channel worker
  region worker 65536
}
component front {
  substrate microkernel
  channel worker
}
component worker {
  substrate microkernel
  channel updater
  channel front
  restart {
    max 4
    backoff 10
    escalate degraded
  }
  update {
    key vendor
    slots 2
    probation 3
  }
}
)";

class UpdateOrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("update");
    mk_ = std::make_unique<microkernel::Microkernel>(
        *machine_, substrate::SubstrateConfig{});
    tpm_ = std::make_unique<tpm::Tpm>(*machine_, substrate::SubstrateConfig{});
    core::SystemComposer composer(
        {{"microkernel",
          static_cast<substrate::IsolationSubstrate*>(mk_.get())}});
    auto manifests = core::parse_manifests(kUpdatableSystem);
    ASSERT_TRUE(manifests.ok());
    auto assembly = composer.compose(*manifests);
    ASSERT_TRUE(assembly.ok()) << composer.diagnostics().size();
    assembly_ = std::move(*assembly);
    ASSERT_TRUE(assembly_
                    ->set_behavior("worker",
                                   [](const substrate::Invocation&)
                                       -> Result<Bytes> {
                                     return to_bytes("serving");
                                   })
                    .ok());
    verifier_ = std::make_unique<core::AttestationVerifier>(
        to_bytes("update-test-verifier"));
    verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    supervisor_ = std::make_unique<Supervisor>(
        *assembly_, supervisor::SupervisorConfig{.hub = &hub_,
                                                 .verifier = verifier_.get()});
    ASSERT_TRUE(supervisor_->watch_all().ok());
    counters_ =
        std::make_unique<DeviceRollbackCounters<tpm::Tpm>>(*tpm_);
    crypto::HmacDrbg drbg(to_bytes("orchestrator-vendor"));
    vendor_ = crypto::RsaKeyPair::generate(drbg, 512);
    UpdateOrchestratorConfig config;
    config.chunk_bytes = 64;  // several chunks for a ~200-byte image
    config.hub = &hub_;
    orchestrator_ = std::make_unique<UpdateOrchestrator>(
        *assembly_, *supervisor_, *counters_, vendor_.pub, config);
  }

  /// A signed manifest + image pair for `worker`.
  std::pair<UpdateManifest, Bytes> signed_update(std::uint64_t version) {
    Bytes image = to_bytes("worker-image-v" + std::to_string(version) + ":");
    while (image.size() < 200) image.push_back(0x5a);  // force chunking
    UpdateManifest manifest = make_manifest("worker", version, image);
    sign_manifest(manifest, vendor_);
    return {manifest, image};
  }

  crypto::Digest worker_measurement() {
    auto comp = assembly_->component("worker");
    return *(*comp)->substrate->measurement((*comp)->domain);
  }

  /// Full happy path through commit; leaves the update in probation.
  void stage_arm_commit(std::uint64_t version) {
    auto [manifest, image] = signed_update(version);
    ASSERT_TRUE(orchestrator_->stage(manifest, image).ok());
    ASSERT_TRUE(orchestrator_->arm("worker").ok());
    ASSERT_TRUE(orchestrator_->commit("worker").ok());
    ASSERT_EQ(orchestrator_->state("worker"), UpdateState::probation);
  }

  runtime::MetricsHub hub_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<microkernel::Microkernel> mk_;
  std::unique_ptr<tpm::Tpm> tpm_;
  std::unique_ptr<core::Assembly> assembly_;
  std::unique_ptr<core::AttestationVerifier> verifier_;
  std::unique_ptr<Supervisor> supervisor_;
  std::unique_ptr<DeviceRollbackCounters<tpm::Tpm>> counters_;
  crypto::RsaKeyPair vendor_;
  std::unique_ptr<UpdateOrchestrator> orchestrator_;
};

TEST_F(UpdateOrchestratorTest, FullLifecycleCommitsAndBumpsCounter) {
  const crypto::Digest old_measurement = worker_measurement();
  auto [manifest, image] = signed_update(1);

  ASSERT_TRUE(orchestrator_->stage(manifest, image).ok());
  EXPECT_EQ(orchestrator_->state("worker"), UpdateState::verified);
  // The old image serves throughout staging.
  EXPECT_TRUE(assembly_->invoke("front", "worker", to_bytes("x")).ok());
  EXPECT_EQ(worker_measurement(), old_measurement);
  const SlotBank* bank = orchestrator_->slots("worker");
  ASSERT_NE(bank, nullptr);
  EXPECT_TRUE(bank->staged_valid());

  ASSERT_TRUE(orchestrator_->arm("worker").ok());
  EXPECT_EQ(worker_measurement(), old_measurement);  // armed != swapped

  ASSERT_TRUE(orchestrator_->commit("worker").ok());
  EXPECT_EQ(orchestrator_->state("worker"), UpdateState::probation);
  // Running the new image, re-attested against the manifest's measurement.
  EXPECT_EQ(worker_measurement(), manifest.new_measurement);
  EXPECT_EQ(*supervisor_->health("worker"), Health::running);
  // Behaviour was reinstalled through the supervised-restart path.
  EXPECT_TRUE(assembly_->invoke("front", "worker", to_bytes("x")).ok());
  // The counter must not move until probation ends.
  EXPECT_EQ(*counters_->read("update.worker"), 0u);

  for (int i = 0; i < 2; ++i) {
    auto state = orchestrator_->probation_tick("worker");
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, UpdateState::probation);
  }
  auto state = orchestrator_->probation_tick("worker");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, UpdateState::committed);
  EXPECT_EQ(*counters_->read("update.worker"), 1u);

  const runtime::UpdateStats stats = orchestrator_->stats();
  EXPECT_EQ(stats.staged, 1u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.reverted, 0u);
  EXPECT_EQ(stats.bytes_streamed, image.size());
  EXPECT_GT(stats.mean_update_cycles(), 0u);
}

TEST_F(UpdateOrchestratorTest, RefusesBadSignatureAndMismatchedMeasurement) {
  auto [manifest, image] = signed_update(1);
  UpdateManifest unsigned_copy = manifest;
  unsigned_copy.signature.clear();
  EXPECT_EQ(orchestrator_->stage(unsigned_copy, image).error(),
            Errc::verification_failed);

  // Signed but internally inconsistent: measurement != image hash.
  UpdateManifest inconsistent = make_manifest("worker", 1, image);
  inconsistent.new_measurement[0] ^= 1;
  sign_manifest(inconsistent, vendor_);
  EXPECT_EQ(orchestrator_->stage(inconsistent, image).error(),
            Errc::invalid_argument);

  EXPECT_EQ(orchestrator_->state("worker"), UpdateState::idle);
  const runtime::UpdateStats stats = orchestrator_->stats();
  EXPECT_EQ(stats.signature_refused, 1u);
  EXPECT_EQ(stats.image_refused, 1u);
  EXPECT_EQ(stats.staged, 0u);
}

TEST_F(UpdateOrchestratorTest, UnsupervisedComponentIsRefused) {
  // `front` has no update stanza: the manifest never consented to field
  // updates, so even a validly signed image is refused.
  Bytes image = to_bytes("front-v2");
  UpdateManifest manifest = make_manifest("front", 1, image);
  sign_manifest(manifest, vendor_);
  EXPECT_EQ(orchestrator_->stage(manifest, image).error(),
            Errc::policy_violation);
}

TEST_F(UpdateOrchestratorTest, StaleVersionReplayIsRefusedByCounter) {
  stage_arm_commit(3);
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(orchestrator_->probation_tick("worker").ok());
  ASSERT_EQ(orchestrator_->state("worker"), UpdateState::committed);
  ASSERT_EQ(*counters_->read("update.worker"), 1u);

  // A validly signed *old* manifest — the classic rollback attack. The
  // signature verifies; only the monotonic counter can refuse it.
  auto [stale, stale_image] = signed_update(1);
  EXPECT_EQ(orchestrator_->stage(stale, stale_image).error(),
            Errc::rollback_refused);
  // The just-committed version itself is also "not strictly newer".
  auto [same, same_image] = signed_update(1);
  EXPECT_EQ(orchestrator_->stage(same, same_image).error(),
            Errc::rollback_refused);
  EXPECT_EQ(orchestrator_->stats().rollback_refused, 2u);

  // A genuinely newer version is still welcome.
  auto [next, next_image] = signed_update(4);
  EXPECT_TRUE(orchestrator_->stage(next, next_image).ok());
}

TEST_F(UpdateOrchestratorTest, CorruptedImageIsRefusedAfterTransfer) {
  auto [manifest, image] = signed_update(1);
  Bytes corrupted = image;
  corrupted[corrupted.size() / 2] ^= 0xff;  // bit-flip in transit
  EXPECT_EQ(orchestrator_->stage(manifest, corrupted).error(),
            Errc::tamper_detected);
  EXPECT_EQ(orchestrator_->state("worker"), UpdateState::idle);
  EXPECT_EQ(orchestrator_->stats().image_refused, 1u);
  // The active image never stopped serving and a clean retry succeeds.
  EXPECT_TRUE(assembly_->invoke("front", "worker", to_bytes("x")).ok());
  EXPECT_TRUE(orchestrator_->stage(manifest, image).ok());
}

TEST_F(UpdateOrchestratorTest, CrashMidTransferAbortsAndIsRecoverable) {
  auto [manifest, image] = signed_update(1);
  // Kill the worker on the third chunk delivery — mid-transfer.
  const auto worker_domain = (*assembly_->component("worker"))->domain;
  int deliveries = 0;
  mk_->set_fault_hook([&](substrate::DomainId callee, std::string_view) {
    return callee == worker_domain && ++deliveries == 3;
  });
  EXPECT_EQ(orchestrator_->stage(manifest, image).error(), Errc::domain_dead);
  mk_->set_fault_hook(nullptr);
  EXPECT_EQ(orchestrator_->state("worker"), UpdateState::idle);

  // The supervisor recovers the crashed target...
  supervisor_->tick();
  for (int i = 0; i < 10 && *supervisor_->health("worker") != Health::running;
       ++i) {
    machine_->advance(1 << 16);
    supervisor_->tick();
  }
  ASSERT_EQ(*supervisor_->health("worker"), Health::running);
  // ...and the same update stages cleanly on retry: nothing leaked.
  EXPECT_TRUE(orchestrator_->stage(manifest, image).ok());
  EXPECT_TRUE(orchestrator_->arm("worker").ok());
  EXPECT_TRUE(orchestrator_->commit("worker").ok());
}

TEST_F(UpdateOrchestratorTest, HeartbeatFailureInProbationAutoReverts) {
  const crypto::Digest old_measurement = worker_measurement();
  stage_arm_commit(1);
  const crypto::Digest new_measurement = worker_measurement();
  ASSERT_NE(new_measurement, old_measurement);

  // First probation heartbeat is healthy...
  ASSERT_EQ(*orchestrator_->probation_tick("worker"), UpdateState::probation);
  // ...then the new incarnation dies.
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  auto state = orchestrator_->probation_tick("worker");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, UpdateState::reverted);

  // Old image is back, serving, and attested as its old self.
  EXPECT_EQ(worker_measurement(), old_measurement);
  EXPECT_TRUE(assembly_->invoke("front", "worker", to_bytes("x")).ok());
  // The counter never moved: the failed version may be retried, but an
  // older one still cannot be replayed.
  EXPECT_EQ(*counters_->read("update.worker"), 0u);

  const runtime::UpdateStats stats = orchestrator_->stats();
  EXPECT_EQ(stats.reverted, 1u);
  EXPECT_EQ(stats.committed, 0u);
  EXPECT_GT(stats.mean_revert_cycles(), 0u);
  // The revert is auditable next to the supervisor's restart accounting.
  EXPECT_EQ(hub_.recovery("supervisor")->update_reverts, 1u);
}

TEST_F(UpdateOrchestratorTest, PowerLossBetweenArmAndCommitRollsBack) {
  const crypto::Digest old_measurement = worker_measurement();
  auto [manifest, image] = signed_update(1);
  ASSERT_TRUE(orchestrator_->stage(manifest, image).ok());
  ASSERT_TRUE(orchestrator_->arm("worker").ok());

  // Power loss: the orchestrator restarts and runs boot-time recovery
  // before anything else. The armed-but-uncommitted update rolls back —
  // the NV counter never advanced, so the old slot is still the newest
  // committed image.
  EXPECT_EQ(orchestrator_->recover(), 1u);
  EXPECT_EQ(orchestrator_->state("worker"), UpdateState::reverted);
  EXPECT_EQ(worker_measurement(), old_measurement);
  EXPECT_EQ(*counters_->read("update.worker"), 0u);
  EXPECT_TRUE(assembly_->invoke("front", "worker", to_bytes("x")).ok());
  // The same version can be retried after the rollback.
  EXPECT_TRUE(orchestrator_->stage(manifest, image).ok());
}

TEST_F(UpdateOrchestratorTest, FlapDampingStopsTheRevertLoop) {
  // Every new incarnation fails probation. Each cycle consumes supervisor
  // restart budget (the relaunch) and ends in a revert; once the policy's
  // budget is exhausted the component escalates and commit() refuses with
  // Errc::exhausted instead of revert-looping forever.
  std::uint64_t version = 1;
  for (; version < 16; ++version) {
    auto [manifest, image] = signed_update(version);
    ASSERT_TRUE(orchestrator_->stage(manifest, image).ok());
    ASSERT_TRUE(orchestrator_->arm("worker").ok());
    machine_->advance(1 << 16);  // past any accumulated backoff
    const Status committed = orchestrator_->commit("worker");
    if (!committed.ok()) {
      EXPECT_EQ(committed.error(), Errc::exhausted);
      break;
    }
    ASSERT_TRUE(assembly_->kill_component("worker").ok());
    ASSERT_EQ(*orchestrator_->probation_tick("worker"),
              UpdateState::reverted);
    machine_->advance(1 << 16);
    supervisor_->tick();  // let the supervisor settle after the revert
  }
  EXPECT_LT(version, 16u) << "flap damping never engaged";
  const runtime::UpdateStats stats = orchestrator_->stats();
  EXPECT_GE(stats.reverted, 1u);
  EXPECT_EQ(stats.committed, 0u);
  // Every revert is auditable in the supervisor's recovery accounting.
  EXPECT_EQ(hub_.recovery("supervisor")->update_reverts, stats.reverted);
  EXPECT_EQ(*counters_->read("update.worker"), 0u);  // nothing committed
}

TEST_F(UpdateOrchestratorTest, LifecycleEmitsTraceSpans) {
  trace::Tracer tracer;
  mk_->set_tracer(&tracer);
  const auto has_phase = [&](trace::SpanPhase phase) {
    auto comp = assembly_->component("worker");
    const auto events =
        tracer.snapshot((*comp)->substrate, (*comp)->domain);
    return std::any_of(events.begin(), events.end(),
                       [&](const trace::SpanEvent& e) {
                         return e.phase == phase;
                       });
  };

  auto [manifest, image] = signed_update(1);
  ASSERT_TRUE(orchestrator_->stage(manifest, image).ok());
  EXPECT_TRUE(has_phase(trace::SpanPhase::update_stage));
  ASSERT_TRUE(orchestrator_->arm("worker").ok());
  ASSERT_TRUE(orchestrator_->commit("worker").ok());
  EXPECT_TRUE(has_phase(trace::SpanPhase::update_commit));
  ASSERT_TRUE(assembly_->kill_component("worker").ok());
  ASSERT_EQ(*orchestrator_->probation_tick("worker"), UpdateState::reverted);
  EXPECT_TRUE(has_phase(trace::SpanPhase::update_revert));
  mk_->set_tracer(nullptr);
}

TEST_F(UpdateOrchestratorTest, ObservabilityDumpCarriesUpdateCounters) {
  stage_arm_commit(1);
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(orchestrator_->probation_tick("worker").ok());
  const std::string dump = assembly_->dump_observability(nullptr, &hub_);
  EXPECT_NE(dump.find("(update)"), std::string::npos);
  EXPECT_NE(dump.find("committed=1"), std::string::npos);
  EXPECT_NE(dump.find("update_reverts=0"), std::string::npos);
}

// --- Fleet-wide update under load (FIG15's serving-traffic half) ------------

TEST_F(UpdateOrchestratorTest, FleetServesAcrossUpdateAndRotatesTickets) {
  net::SimNetwork network;
  ASSERT_TRUE(network.register_endpoint("utility").ok());
  auto endpoint = assembly_->endpoint("front", "worker");
  ASSERT_TRUE(endpoint.ok());

  fleet::FleetServerConfig config;
  config.endpoint = "utility";
  config.network = &network;
  config.substrate = mk_.get();
  config.service_domain = (*assembly_->component("worker"))->domain;
  config.frontend_domain = (*assembly_->component("front"))->domain;
  config.service_channel = endpoint->channel();
  fleet::FleetServer server(std::move(config));

  fleet::FleetClientConfig client_config;
  client_config.endpoint = "meter";
  client_config.server_endpoint = "utility";
  client_config.network = &network;
  client_config.drive = [&server] { (void)server.pump(); };
  fleet::FleetClient meter(std::move(client_config));

  ASSERT_TRUE(meter.connect().ok());
  ASSERT_TRUE(meter.has_ticket());

  // Tickets minted by the pre-update incarnation die with the swap.
  supervisor_->on_restart([&](const std::string& name, std::uint32_t) {
    if (name == "worker")
      server.on_service_restart((*assembly_->component(name))->domain);
  });

  std::uint64_t admitted = 0, served = 0;
  const auto drive_traffic = [&](int n) {
    for (int i = 0; i < n; ++i) {
      auto reply = meter.call("report", to_bytes("r"));
      if (reply.ok()) {
        ++admitted;
        ++served;
        EXPECT_EQ(to_string(*reply), "serving");
      }
    }
  };

  drive_traffic(8);  // baseline load
  auto [manifest, image] = signed_update(1);
  ASSERT_TRUE(orchestrator_->stage(manifest, image).ok());
  drive_traffic(8);  // the old slot serves during staging
  ASSERT_TRUE(orchestrator_->arm("worker").ok());
  ASSERT_TRUE(orchestrator_->commit("worker").ok());

  // The held ticket was sealed by the dead incarnation: refused, and the
  // meter re-proves itself with a full handshake against the new identity.
  ASSERT_TRUE(meter.connect().ok());
  EXPECT_FALSE(meter.resumed());
  EXPECT_GE(server.stats().tickets_rejected, 1u);
  ASSERT_TRUE(meter.has_ticket());

  drive_traffic(8);  // probation traffic against the new image
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(orchestrator_->probation_tick("worker").ok());
  EXPECT_EQ(orchestrator_->state("worker"), UpdateState::committed);
  drive_traffic(8);

  // Lossless across the whole update: every admitted request was served.
  EXPECT_EQ(admitted, served);
  EXPECT_EQ(admitted, 32u);
}

}  // namespace
}  // namespace lateral::update
