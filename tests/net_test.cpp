// Untrusted network + SecureChannel: handshake with one-way and mutual
// attestation, MITM splice refusal, record tamper/replay/reorder detection.
#include <gtest/gtest.h>

#include "fleet/ticket.h"
#include "net/network.h"
#include "net/remote.h"
#include "net/secure_channel.h"
#include "test_support.h"

namespace lateral::net {
namespace {

TEST(SimNetwork, DeliversDatagrams) {
  SimNetwork network;
  ASSERT_TRUE(network.register_endpoint("meter").ok());
  ASSERT_TRUE(network.register_endpoint("utility").ok());
  ASSERT_TRUE(network.send("meter", "utility", to_bytes("reading")).ok());
  auto datagram = network.receive("utility");
  ASSERT_TRUE(datagram.ok());
  EXPECT_EQ(datagram->from, "meter");
  EXPECT_EQ(to_string(datagram->payload), "reading");
  EXPECT_EQ(network.receive("utility").error(), Errc::would_block);
}

TEST(SimNetwork, UnknownEndpointsRejected) {
  SimNetwork network;
  ASSERT_TRUE(network.register_endpoint("a").ok());
  EXPECT_FALSE(network.send("a", "ghost", to_bytes("x")).ok());
  EXPECT_FALSE(network.send("ghost", "a", to_bytes("x")).ok());
  EXPECT_FALSE(network.receive("ghost").ok());
  EXPECT_FALSE(network.register_endpoint("a").ok());
}

TEST(SimNetwork, TampererCanDropAndModify) {
  SimNetwork network;
  ASSERT_TRUE(network.register_endpoint("a").ok());
  ASSERT_TRUE(network.register_endpoint("b").ok());
  network.set_tamperer([](const std::string&, const std::string&,
                          BytesView payload) -> std::optional<Bytes> {
    if (payload.size() == 4) return std::nullopt;  // drop short ones
    Bytes modified(payload.begin(), payload.end());
    modified[0] ^= 0xFF;
    return modified;
  });
  ASSERT_TRUE(network.send("a", "b", to_bytes("drop")).ok());
  EXPECT_EQ(network.receive("b").error(), Errc::would_block);
  ASSERT_TRUE(network.send("a", "b", to_bytes("modify-me")).ok());
  auto datagram = network.receive("b");
  ASSERT_TRUE(datagram.ok());
  EXPECT_NE(to_string(datagram->payload), "modify-me");
  EXPECT_EQ(network.stats().dropped, 1u);
  EXPECT_EQ(network.stats().modified, 1u);
}

TEST(SimNetwork, InjectionForgesSource) {
  SimNetwork network;
  ASSERT_TRUE(network.register_endpoint("victim").ok());
  ASSERT_TRUE(network.inject("trusted-peer", "victim", to_bytes("evil")).ok());
  auto datagram = network.receive("victim");
  ASSERT_TRUE(datagram.ok());
  // The "from" field is attacker-chosen — claimed identity means nothing.
  EXPECT_EQ(datagram->from, "trusted-peer");
}

// ---------------------------------------------------------------------------
// SecureChannel fixture: an SGX responder ("anonymizer") that the initiator
// verifies, plus optional initiator attestation (TrustZone metering TC).
class SecureChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_machine_ = test::make_machine("server");
    sgx_ = *test::shared_registry().create("sgx", *server_machine_);
    anonymizer_ = *sgx_->create_domain(test::tc_spec("anonymizer"));

    verifier_ = std::make_unique<core::AttestationVerifier>(to_bytes("v"));
    verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    verifier_->expect_measurement(
        "anonymizer", test::tc_spec("anonymizer").image.measurement());
  }

  /// Run the full handshake; returns (initiator, responder) established.
  static void run_handshake(SecureChannelEndpoint& initiator,
                            SecureChannelEndpoint& responder) {
    auto msg1 = initiator.start();
    ASSERT_TRUE(msg1.ok());
    auto msg2 = responder.handle_msg1(*msg1);
    ASSERT_TRUE(msg2.ok());
    auto msg3 = initiator.handle_msg2(*msg2);
    ASSERT_TRUE(msg3.ok());
    ASSERT_TRUE(responder.handle_msg3(*msg3).ok());
    ASSERT_TRUE(initiator.established());
    ASSERT_TRUE(responder.established());
  }

  std::unique_ptr<hw::Machine> server_machine_;
  std::unique_ptr<substrate::IsolationSubstrate> sgx_;
  substrate::DomainId anonymizer_ = 0;
  std::unique_ptr<core::AttestationVerifier> verifier_;
};

TEST_F(SecureChannelTest, HandshakeWithResponderAttestation) {
  SecureChannelEndpoint initiator(
      Role::initiator, to_bytes("i-seed"), std::nullopt,
      VerifierConfig{verifier_.get(), "anonymizer"});
  SecureChannelEndpoint responder(Role::responder, to_bytes("r-seed"),
                                  ProverConfig{sgx_.get(), anonymizer_},
                                  std::nullopt);
  run_handshake(initiator, responder);

  auto wire = initiator.seal_record(to_bytes("meter-reading:42kWh"));
  ASSERT_TRUE(wire.ok());
  auto plain = responder.open_record(*wire);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(to_string(*plain), "meter-reading:42kWh");

  auto reply = responder.seal_record(to_bytes("price-update:0.30"));
  ASSERT_TRUE(reply.ok());
  auto opened = initiator.open_record(*reply);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(*opened), "price-update:0.30");
}

TEST_F(SecureChannelTest, RefusesManipulatedResponder) {
  // The Fig. 3 flow: the utility swapped in a tracking anonymizer; the
  // meter's verifier knows only the audited build's measurement.
  auto evil_spec = test::tc_spec("anonymizer");
  evil_spec.image.code = to_bytes("code-of-anonymizer+tracking");
  auto evil = *sgx_->create_domain(evil_spec);

  SecureChannelEndpoint initiator(
      Role::initiator, to_bytes("i-seed"), std::nullopt,
      VerifierConfig{verifier_.get(), "anonymizer"});
  SecureChannelEndpoint responder(Role::responder, to_bytes("r-seed"),
                                  ProverConfig{sgx_.get(), evil},
                                  std::nullopt);
  auto msg1 = initiator.start();
  ASSERT_TRUE(msg1.ok());
  auto msg2 = responder.handle_msg1(*msg1);
  ASSERT_TRUE(msg2.ok());
  EXPECT_EQ(initiator.handle_msg2(*msg2).error(), Errc::verification_failed);
  EXPECT_FALSE(initiator.established());
}

TEST_F(SecureChannelTest, RefusesMissingAttestation) {
  SecureChannelEndpoint initiator(
      Role::initiator, to_bytes("i-seed"), std::nullopt,
      VerifierConfig{verifier_.get(), "anonymizer"});
  // Responder cannot attest (no prover config).
  SecureChannelEndpoint responder(Role::responder, to_bytes("r-seed"),
                                  std::nullopt, std::nullopt);
  auto msg1 = initiator.start();
  ASSERT_TRUE(msg1.ok());
  auto msg2 = responder.handle_msg1(*msg1);
  ASSERT_TRUE(msg2.ok());
  EXPECT_FALSE(initiator.handle_msg2(*msg2).ok());
}

TEST_F(SecureChannelTest, MutualAttestation) {
  // The responder (utility) also verifies the initiator (metering TC on a
  // TrustZone device).
  auto meter_machine = test::make_machine("meter");
  auto tz = *test::shared_registry().create("trustzone", *meter_machine);
  auto metering = *tz->create_domain(test::tc_spec("metering"));

  core::AttestationVerifier utility_verifier(to_bytes("uv"));
  utility_verifier.add_trusted_root(test::shared_vendor().root_public_key());
  utility_verifier.expect_measurement(
      "metering", test::tc_spec("metering").image.measurement());

  SecureChannelEndpoint initiator(
      Role::initiator, to_bytes("i-seed"),
      ProverConfig{tz.get(), metering},
      VerifierConfig{verifier_.get(), "anonymizer"});
  SecureChannelEndpoint responder(
      Role::responder, to_bytes("r-seed"),
      ProverConfig{sgx_.get(), anonymizer_},
      VerifierConfig{&utility_verifier, "metering"});
  run_handshake(initiator, responder);
}

TEST_F(SecureChannelTest, MutualAttestationRejectsFakeMeter) {
  core::AttestationVerifier utility_verifier(to_bytes("uv"));
  utility_verifier.add_trusted_root(test::shared_vendor().root_public_key());
  utility_verifier.expect_measurement(
      "metering", test::tc_spec("metering").image.measurement());

  // The "software emulation" attack from the paper: initiator has no
  // hardware to attest with and sends an empty quote.
  SecureChannelEndpoint initiator(
      Role::initiator, to_bytes("i-seed"), std::nullopt,
      VerifierConfig{verifier_.get(), "anonymizer"});
  SecureChannelEndpoint responder(
      Role::responder, to_bytes("r-seed"),
      ProverConfig{sgx_.get(), anonymizer_},
      VerifierConfig{&utility_verifier, "metering"});
  auto msg1 = initiator.start();
  ASSERT_TRUE(msg1.ok());
  auto msg2 = responder.handle_msg1(*msg1);
  ASSERT_TRUE(msg2.ok());
  auto msg3 = initiator.handle_msg2(*msg2);
  ASSERT_TRUE(msg3.ok());
  EXPECT_EQ(responder.handle_msg3(*msg3).error(), Errc::verification_failed);
  EXPECT_FALSE(responder.established());
}

TEST_F(SecureChannelTest, MitmSpliceBreaksQuoteBinding) {
  // Mallory intercepts msg1 and substitutes her own DH half before passing
  // it to the genuine responder. The quote then binds Mallory's key, not
  // the initiator's — so when Mallory relays msg2 back, verification fails.
  SecureChannelEndpoint initiator(
      Role::initiator, to_bytes("i-seed"), std::nullopt,
      VerifierConfig{verifier_.get(), "anonymizer"});
  SecureChannelEndpoint responder(Role::responder, to_bytes("r-seed"),
                                  ProverConfig{sgx_.get(), anonymizer_},
                                  std::nullopt);
  SecureChannelEndpoint mallory(Role::initiator, to_bytes("mallory"),
                                std::nullopt, std::nullopt);

  auto msg1 = initiator.start();
  ASSERT_TRUE(msg1.ok());
  auto mallory_msg1 = mallory.start();  // her own DH half + nonce
  ASSERT_TRUE(mallory_msg1.ok());

  // Mallory forwards HER msg1; the responder answers (and binds her key).
  auto msg2 = responder.handle_msg1(*mallory_msg1);
  ASSERT_TRUE(msg2.ok());
  // Relayed to the real initiator: user_data = H(nonce_i' || dh_m || dh_r)
  // does not match what the initiator expects for its own nonce and key.
  EXPECT_FALSE(initiator.handle_msg2(*msg2).ok());
}

TEST_F(SecureChannelTest, RecordTamperingDetected) {
  SecureChannelEndpoint initiator(Role::initiator, to_bytes("i"),
                                  std::nullopt, std::nullopt);
  SecureChannelEndpoint responder(Role::responder, to_bytes("r"),
                                  std::nullopt, std::nullopt);
  run_handshake(initiator, responder);
  auto wire = initiator.seal_record(to_bytes("authentic"));
  ASSERT_TRUE(wire.ok());
  (*wire)[wire->size() - 1] ^= 0x01;
  EXPECT_EQ(responder.open_record(*wire).error(), Errc::verification_failed);
}

TEST_F(SecureChannelTest, RecordReplayDetected) {
  SecureChannelEndpoint initiator(Role::initiator, to_bytes("i"),
                                  std::nullopt, std::nullopt);
  SecureChannelEndpoint responder(Role::responder, to_bytes("r"),
                                  std::nullopt, std::nullopt);
  run_handshake(initiator, responder);
  auto wire = initiator.seal_record(to_bytes("pay 100 EUR"));
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(responder.open_record(*wire).ok());
  // Replaying the exact same record must fail (sequence moved on).
  EXPECT_EQ(responder.open_record(*wire).error(), Errc::verification_failed);
}

TEST_F(SecureChannelTest, RecordReorderDetected) {
  SecureChannelEndpoint initiator(Role::initiator, to_bytes("i"),
                                  std::nullopt, std::nullopt);
  SecureChannelEndpoint responder(Role::responder, to_bytes("r"),
                                  std::nullopt, std::nullopt);
  run_handshake(initiator, responder);
  auto first = initiator.seal_record(to_bytes("one"));
  auto second = initiator.seal_record(to_bytes("two"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(responder.open_record(*second).ok());  // out of order
  EXPECT_TRUE(responder.open_record(*first).ok());    // order restored
}

TEST_F(SecureChannelTest, DirectionConfusionDetected) {
  // A record sealed by the initiator cannot be reflected back to it.
  SecureChannelEndpoint initiator(Role::initiator, to_bytes("i"),
                                  std::nullopt, std::nullopt);
  SecureChannelEndpoint responder(Role::responder, to_bytes("r"),
                                  std::nullopt, std::nullopt);
  run_handshake(initiator, responder);
  auto wire = initiator.seal_record(to_bytes("hello"));
  ASSERT_TRUE(wire.ok());
  EXPECT_FALSE(initiator.open_record(*wire).ok());
}

TEST_F(SecureChannelTest, RecordsBeforeEstablishmentRefused) {
  SecureChannelEndpoint endpoint(Role::initiator, to_bytes("i"), std::nullopt,
                                 std::nullopt);
  EXPECT_EQ(endpoint.seal_record(to_bytes("early")).error(),
            Errc::would_block);
  EXPECT_EQ(endpoint.open_record(Bytes(32, 0)).error(), Errc::would_block);
}

TEST_F(SecureChannelTest, MalformedHandshakeMessagesRejected) {
  SecureChannelEndpoint initiator(Role::initiator, to_bytes("i"),
                                  std::nullopt, std::nullopt);
  SecureChannelEndpoint responder(Role::responder, to_bytes("r"),
                                  std::nullopt, std::nullopt);
  EXPECT_FALSE(responder.handle_msg1(Bytes{1, 2, 3}).ok());
  auto msg1 = initiator.start();
  ASSERT_TRUE(msg1.ok());
  Bytes truncated(*msg1);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(responder.handle_msg1(truncated).ok());
  // Role misuse.
  EXPECT_FALSE(responder.start().ok());
  EXPECT_FALSE(initiator.handle_msg1(*msg1).ok());
}

// ---------------------------------------------------------------------------
// Resumed channels: SecureChannelEndpoint::resume skips the handshake and
// derives everything from externally agreed key material (fleet tickets).

TEST_F(SecureChannelTest, ResumedEndpointsInteroperateImmediately) {
  const Bytes keys(32, 0x5A);
  auto initiator = SecureChannelEndpoint::resume(Role::initiator, keys);
  auto responder = SecureChannelEndpoint::resume(Role::responder, keys);
  ASSERT_TRUE(initiator->established());
  ASSERT_TRUE(responder->established());
  auto wire = initiator->seal_record(to_bytes("resumed-reading"));
  ASSERT_TRUE(wire.ok());
  auto plain = responder->open_record(*wire);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(to_string(*plain), "resumed-reading");
  auto reply = responder->seal_record(to_bytes("price"));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(initiator->open_record(*reply).ok());
}

TEST_F(SecureChannelTest, ResumedEndpointWithWrongKeysFailsEveryRecord) {
  // A stolen ticket without its secret derives different keys; the channel
  // authenticates itself in use — the first record already fails.
  auto initiator =
      SecureChannelEndpoint::resume(Role::initiator, Bytes(32, 0x01));
  auto responder =
      SecureChannelEndpoint::resume(Role::responder, Bytes(32, 0x02));
  auto wire = initiator->seal_record(to_bytes("forged"));
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(responder->open_record(*wire).error(), Errc::verification_failed);
}

// Ticket abuse at the issuer: the rejection paths a fleet server relies on
// (replay, expiry, rotation) answer with distinct, typed errors.
TEST(ResumptionTickets, AbuseIsRejectedWithTypedErrors) {
  fleet::TicketIssuer issuer(to_bytes("net-ticket-key"), /*ttl=*/500);
  crypto::Digest measurement{};
  measurement.fill(0x33);

  const fleet::MintedTicket replayed = issuer.mint(measurement, 0);
  ASSERT_TRUE(issuer.redeem(replayed.wire, 10).ok());
  EXPECT_EQ(issuer.redeem(replayed.wire, 20).error(), Errc::ticket_replayed);

  const fleet::MintedTicket expired = issuer.mint(measurement, 0);
  EXPECT_EQ(issuer.redeem(expired.wire, 1000).error(), Errc::ticket_expired);

  const fleet::MintedTicket rotated = issuer.mint(measurement, 0);
  issuer.rotate();
  EXPECT_EQ(issuer.redeem(rotated.wire, 10).error(),
            Errc::verification_failed);
}

// ---------------------------------------------------------------------------
// RemoteProxy / RemoteDispatcher error paths: the RPC layer must turn every
// kind of malformed or hostile input into a clean refusal, never into a
// stuck channel or a fabricated success.
class RemoteRpcTest : public SecureChannelTest {
 protected:
  void SetUp() override {
    SecureChannelTest::SetUp();
    client_ = std::make_unique<SecureChannelEndpoint>(
        Role::initiator, to_bytes("rpc-i"), std::nullopt, std::nullopt);
    server_ = std::make_unique<SecureChannelEndpoint>(
        Role::responder, to_bytes("rpc-r"), std::nullopt, std::nullopt);
    run_handshake(*client_, *server_);
    dispatcher_ = std::make_unique<RemoteDispatcher>(*server_);
    ASSERT_TRUE(dispatcher_
                    ->register_method("echo",
                                      [](BytesView request) -> Result<Bytes> {
                                        return Bytes(request.begin(),
                                                     request.end());
                                      })
                    .ok());
    ASSERT_TRUE(dispatcher_
                    ->register_method("refuse",
                                      [](BytesView) -> Result<Bytes> {
                                        return Errc::access_denied;
                                      })
                    .ok());
    proxy_ = std::make_unique<RemoteProxy>(
        *client_, [this](BytesView record) -> Result<Bytes> {
          return dispatcher_->handle(record);
        });
  }

  std::unique_ptr<SecureChannelEndpoint> client_;
  std::unique_ptr<SecureChannelEndpoint> server_;
  std::unique_ptr<RemoteDispatcher> dispatcher_;
  std::unique_ptr<RemoteProxy> proxy_;
};

TEST_F(RemoteRpcTest, EchoRoundTrip) {
  auto reply = proxy_->call("echo", to_bytes("ping"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "ping");
}

TEST_F(RemoteRpcTest, UnknownAndMalformedMethodNamesRefused) {
  EXPECT_EQ(proxy_->call("no-such-method", {}).error(),
            Errc::invalid_argument);
  // An empty method name is well-framed but matches nothing.
  EXPECT_EQ(proxy_->call("", {}).error(), Errc::invalid_argument);
  // A method name with embedded NULs and control bytes is just a string
  // that matches nothing — it must not confuse the framing.
  const std::string weird("\x00\x01\xffmethod\n", 9);
  EXPECT_EQ(proxy_->call(weird, to_bytes("x")).error(),
            Errc::invalid_argument);
  // The channel must still be usable afterwards.
  EXPECT_TRUE(proxy_->call("echo", to_bytes("still-alive")).ok());
}

TEST_F(RemoteRpcTest, HandlerRefusalTravelsBack) {
  EXPECT_EQ(proxy_->call("refuse", to_bytes("x")).error(), Errc::access_denied);
}

TEST_F(RemoteRpcTest, LyingMethodLengthRefused) {
  // Craft an authentic record whose method_len field points past the end
  // of the plaintext. The dispatcher must answer invalid_argument (inside
  // an authentic reply), not crash or hang.
  Bytes plain;
  plain.push_back(0xFF);  // method_len = 0xFF00 + 0xFF, far beyond the data
  plain.push_back(0xFF);
  plain.push_back('x');
  auto record = client_->seal_record(plain);
  ASSERT_TRUE(record.ok());
  auto reply_record = dispatcher_->handle(*record);
  ASSERT_TRUE(reply_record.ok());
  auto reply = client_->open_record(*reply_record);
  ASSERT_TRUE(reply.ok());
  ASSERT_FALSE(reply->empty());
  EXPECT_EQ(static_cast<Errc>((*reply)[0]), Errc::invalid_argument);
}

TEST_F(RemoteRpcTest, TruncatedSealedRecordRefused) {
  auto record = client_->seal_record(
      to_bytes(std::string("\x00\x04echopayload", 13)));
  ASSERT_TRUE(record.ok());
  // Losing the last byte leaves a parseable record with a broken MAC.
  Bytes clipped(*record);
  clipped.pop_back();
  EXPECT_EQ(dispatcher_->handle(clipped).error(), Errc::verification_failed);
  // Losing half the record leaves nothing parseable at all.
  Bytes truncated(*record);
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(dispatcher_->handle(truncated).error(), Errc::invalid_argument);
  Bytes empty;
  EXPECT_FALSE(dispatcher_->handle(empty).ok());
}

TEST_F(RemoteRpcTest, ReplayedRequestRecordRefused) {
  auto record =
      client_->seal_record(to_bytes(std::string("\x00\x04echoonce", 10)));
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE(dispatcher_->handle(*record).ok());
  // An attacker replaying the captured request record gets a channel-level
  // refusal: the receive sequence has moved on.
  EXPECT_EQ(dispatcher_->handle(*record).error(), Errc::verification_failed);
}

}  // namespace
}  // namespace lateral::net
