// lateral::trace — context codec, flight recorder (incl. concurrent
// writers; run under TSan in CI), tracer bookkeeping, exporter output, and
// the trust-aware redaction policy at the export boundary.
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "substrate/substrate.h"
#include "test_support.h"
#include "trace/exporter.h"
#include "trace/trace.h"

namespace lateral::trace {
namespace {

// --- TraceContext ---

TEST(TraceContextTest, WireRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 0x0123'4567'89ab'cdefull;
  ctx.parent_span = 0xdead'beef;
  ctx.flags = TraceContext::kSampled;
  Bytes wire;
  ctx.encode(wire);
  ASSERT_EQ(wire.size(), kTraceContextWireBytes);
  EXPECT_EQ(wire[0], 0x01);  // big-endian, trace id first
  EXPECT_EQ(TraceContext::decode(wire), ctx);
}

TEST(TraceContextTest, ZeroContextIsNotSampled) {
  EXPECT_FALSE(TraceContext{}.sampled());
  // A nonzero id without the sampled flag is carried but not recorded.
  TraceContext unsampled{42, 0, 0};
  EXPECT_FALSE(unsampled.sampled());
  TraceContext sampled{42, 0, TraceContext::kSampled};
  EXPECT_TRUE(sampled.sampled());
}

TEST(TraceContextTest, DecodeShortBufferYieldsZeroContext) {
  const Bytes short_buffer(kTraceContextWireBytes - 1, 0xff);
  EXPECT_EQ(TraceContext::decode(short_buffer), TraceContext{});
}

// --- SpanEvent ---

TEST(SpanEventTest, OpcodeIsLeftAlignedAndNeedsNoConsent) {
  SpanEvent event;
  event.note_payload(to_bytes("FETCH inbox"), /*capture=*/false);
  EXPECT_EQ(event.opcode, 0x46455443u);  // "FETC"
  EXPECT_EQ(event.payload_len, 0u);      // redacted by default

  SpanEvent short_op;
  short_op.note_payload(to_bytes("OK"), /*capture=*/false);
  EXPECT_EQ(short_op.opcode, 0x4f4b'0000u);  // left-aligned, zero-padded
}

TEST(SpanEventTest, PayloadCaptureIsBoundedAndOptIn) {
  SpanEvent event;
  const Bytes data = to_bytes("a-message-longer-than-sixteen-bytes");
  event.note_payload(data, /*capture=*/true);
  EXPECT_EQ(event.payload_len, SpanEvent::kCaptureBytes);
  EXPECT_EQ(event.payload[0], 'a');
  EXPECT_EQ(event.payload[15], data[15]);
}

// --- FlightRecorder ---

TEST(FlightRecorderTest, RetainsEventsInTicketOrder) {
  FlightRecorder ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    SpanEvent event;
    event.span_id = static_cast<std::uint32_t>(i);
    EXPECT_TRUE(ring.record(event));
  }
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].span_id, i);
    EXPECT_EQ(events[i].ticket, i);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(FlightRecorderTest, WrapsKeepingTheRecentTail) {
  FlightRecorder ring(4);
  for (std::uint32_t i = 0; i < 11; ++i) {
    SpanEvent event;
    event.span_id = i;
    ring.record(event);
  }
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);  // capacity retained, oldest first
  EXPECT_EQ(events.front().span_id, 7u);
  EXPECT_EQ(events.back().span_id, 10u);
  EXPECT_EQ(ring.recorded(), 11u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  FlightRecorder tiny(0);
  EXPECT_GE(tiny.capacity(), 1u);
}

TEST(FlightRecorderTest, ClearRestartsTheRing) {
  FlightRecorder ring(4);
  for (std::uint32_t i = 0; i < 6; ++i) ring.record({});
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  // Post-clear writes land normally (lap arithmetic restarted, not wedged).
  SpanEvent event;
  event.span_id = 99;
  EXPECT_TRUE(ring.record(event));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span_id, 99u);
}

TEST(FlightRecorderTest, ConcurrentWritersAndReadersStayConsistent) {
  // The TSan regression for the seqlock protocol: hammer one small ring
  // from several writers while a reader snapshots continuously. Every
  // snapshot must be internally consistent (strictly increasing tickets,
  // self-consistent word packing); accounting must be lossless.
  FlightRecorder ring(16);
  static constexpr int kWriters = 4;
  static constexpr std::uint32_t kPerWriter = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (std::uint32_t i = 0; i < kPerWriter; ++i) {
        SpanEvent event;
        event.trace_id = static_cast<std::uint64_t>(w) + 1;
        event.span_id = i;
        event.at = i;
        ring.record(event);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&ring, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto events = ring.snapshot();
      std::uint64_t last_ticket = 0;
      bool first = true;
      for (const SpanEvent& event : events) {
        if (!first) EXPECT_GT(event.ticket, last_ticket);
        last_ticket = event.ticket;
        first = false;
        EXPECT_GE(event.trace_id, 1u);
        EXPECT_LE(event.trace_id, kWriters);
        EXPECT_EQ(event.at, event.span_id);  // packed words belong together
      }
    }
  });
  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ring.recorded() + ring.dropped(), kWriters * kPerWriter);
  EXPECT_LE(ring.snapshot().size(), ring.capacity());
}

TEST(FlightRecorderTest, WriterLappingASnapshotNeverTearsRecords) {
  // Wraparound regression for the seqlock: one fast writer laps a tiny ring
  // thousands of times while a reader snapshots mid-lap. The dangerous
  // interleaving is a slot rewritten a FULL LAP (or several) after the
  // reader's acquire — the per-slot sequence has moved to a different
  // stable value, and the post-copy recheck must still notice. A stale
  // recheck would splice words from lap N and lap N+k into one event, which
  // the derived-field invariant below catches: every field of an event is a
  // function of one counter, so any cross-lap mix is visible.
  FlightRecorder ring(4);
  static constexpr std::uint64_t kEvents = 200'000;  // 50k laps of 4 slots
  std::thread writer([&ring] {
    for (std::uint64_t i = 1; i <= kEvents; ++i) {
      SpanEvent event;
      event.trace_id = i;
      event.span_id = static_cast<std::uint32_t>(i);
      event.at = i;
      event.size = i * 3;
      ring.record(event);
    }
  });
  std::atomic<bool> done{false};
  std::thread reader([&ring, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const SpanEvent& event : ring.snapshot()) {
        EXPECT_EQ(event.span_id, static_cast<std::uint32_t>(event.trace_id));
        EXPECT_EQ(event.at, event.trace_id);
        EXPECT_EQ(event.size, event.trace_id * 3);
      }
    }
  });
  writer.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ring.recorded() + ring.dropped(), kEvents);
  // Single writer: nothing ever contends a slot, so nothing was dropped and
  // the final snapshot is exactly the last lap, in order.
  EXPECT_EQ(ring.dropped(), 0u);
  const auto tail = ring.snapshot();
  ASSERT_EQ(tail.size(), ring.capacity());
  EXPECT_EQ(tail.back().trace_id, kEvents);
  for (std::size_t i = 1; i < tail.size(); ++i)
    EXPECT_EQ(tail[i].trace_id, tail[i - 1].trace_id + 1);
}

// --- Tracer ---

TEST(TracerTest, MintsDistinctSampledTraces) {
  Tracer tracer;
  const TraceContext first = tracer.begin_trace();
  const TraceContext second = tracer.begin_trace();
  EXPECT_TRUE(first.sampled());
  EXPECT_TRUE(second.sampled());
  EXPECT_NE(first.trace_id, second.trace_id);
  EXPECT_EQ(tracer.traces_started(), 2u);
  EXPECT_NE(tracer.next_span(), tracer.next_span());
}

TEST(TracerTest, RecordersAreKeyedAndLabelled) {
  Tracer tracer(/*ring_capacity=*/8);
  const int owner_a = 0, owner_b = 0;
  FlightRecorder& ring = tracer.recorder(&owner_a, 7, "imap");
  EXPECT_EQ(&ring, &tracer.recorder(&owner_a, 7, "imap"));
  EXPECT_NE(&ring, &tracer.recorder(&owner_b, 7, "other"));
  EXPECT_NE(&ring, &tracer.recorder(&owner_a, 8, "other"));

  SpanEvent event;
  event.span_id = 1;
  ring.record(event);
  EXPECT_EQ(tracer.snapshot(&owner_a, 7).size(), 1u);
  EXPECT_TRUE(tracer.snapshot(&owner_a, 99).empty());

  const auto rings = tracer.rings();
  ASSERT_EQ(rings.size(), 3u);
  bool found = false;
  for (const Tracer::RingRef& ref : rings)
    if (ref.label == "imap" && ref.domain == 7) found = true;
  EXPECT_TRUE(found);

  tracer.scrub(&owner_a, 7);
  EXPECT_TRUE(tracer.snapshot(&owner_a, 7).empty());
}

TEST(TracerTest, EmptyLabelIsBackfilledOnFirstNamedUse) {
  Tracer tracer;
  const int owner = 0;
  tracer.recorder(&owner, 1, "");
  tracer.recorder(&owner, 1, "late-name");
  ASSERT_EQ(tracer.rings().size(), 1u);
  EXPECT_EQ(tracer.rings()[0].label, "late-name");
}

// --- TraceScope ---

TEST(TraceScopeTest, NestsAndRestores) {
  EXPECT_EQ(current_context(), TraceContext{});
  TraceContext outer{1, 10, TraceContext::kSampled};
  {
    TraceScope outer_scope(outer);
    EXPECT_EQ(current_context(), outer);
    TraceContext inner{2, 20, TraceContext::kSampled};
    {
      TraceScope inner_scope(inner);
      EXPECT_EQ(current_context(), inner);
    }
    EXPECT_EQ(current_context(), outer);
  }
  EXPECT_EQ(current_context(), TraceContext{});
}

// --- Exporter + redaction ---

core::Manifest subject_manifest() {
  core::Manifest m;
  m.name = "imap";
  m.substrate_name = "microkernel";
  m.trace.emplace();
  m.trace->capture_payload = true;
  m.trace->observers = {"ui"};
  return m;
}

core::Manifest plain_manifest(const std::string& name) {
  core::Manifest m;
  m.name = name;
  m.substrate_name = "microkernel";
  return m;
}

TEST(ExporterTest, AnonymousExportRedactsEverything) {
  Tracer tracer;
  const int owner = 0;
  SpanEvent event;
  event.trace_id = 5;
  event.at = 123;
  event.note_payload(to_bytes("SECRET-BODY"), /*capture=*/true);
  tracer.recorder(&owner, 1, "imap").record(event);

  TraceExporter exporter(tracer);
  auto json = exporter.chrome_trace_json();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json->find("\"name\":\"imap\""), std::string::npos);
  EXPECT_NE(json->find("\"op\":\"SECR\""), std::string::npos);
  EXPECT_EQ(json->find("payload"), std::string::npos);  // no observer: redact
}

TEST(ExporterTest, AuthorizedObserverSeesPayloadBytes) {
  Tracer tracer;
  const int owner = 0;
  SpanEvent event;
  event.note_payload(to_bytes("AB"), /*capture=*/true);
  tracer.recorder(&owner, 1, "imap").record(event);

  ExportOptions opts;
  opts.observer = "ui";
  opts.manifests = {subject_manifest(), plain_manifest("ui"),
                    plain_manifest("render")};
  auto json = TraceExporter(tracer).chrome_trace_json(opts);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"payload\":\"4142\""), std::string::npos);
}

TEST(ExporterTest, UnauthorizedObserverIsRefusedOutright) {
  Tracer tracer;
  const int owner = 0;
  SpanEvent event;
  event.note_payload(to_bytes("AB"), /*capture=*/true);
  tracer.recorder(&owner, 1, "imap").record(event);

  ExportOptions opts;
  opts.observer = "render";  // not in imap's observer list, not trusted
  opts.manifests = {subject_manifest(), plain_manifest("ui"),
                    plain_manifest("render")};
  EXPECT_EQ(TraceExporter(tracer).chrome_trace_json(opts).error(),
            Errc::redaction_denied);

  // Without any captured payload the same observer exports fine: the
  // policy governs payload bytes, not the redacted timeline.
  tracer.scrub(&owner, 1);
  SpanEvent redacted;
  redacted.note_payload(to_bytes("AB"), /*capture=*/false);
  tracer.recorder(&owner, 1, "imap").record(redacted);
  EXPECT_TRUE(TraceExporter(tracer).chrome_trace_json(opts).ok());
}

TEST(ExporterTest, UnmanifestedRingExportsRedactedNotRefused) {
  Tracer tracer;
  const int owner = 0;
  SpanEvent event;
  event.note_payload(to_bytes("AB"), /*capture=*/true);
  tracer.recorder(&owner, 1, "bench-ring").record(event);

  ExportOptions opts;
  opts.observer = "ui";
  opts.manifests = {plain_manifest("ui")};
  auto json = TraceExporter(tracer).chrome_trace_json(opts);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->find("payload"), std::string::npos);
}

TEST(ExporterTest, CountersRideInOtherData) {
  Tracer tracer;
  runtime::MetricsHub hub;
  hub.counters("mail.ui->imap")->submitted = 17;
  auto json = TraceExporter(tracer, &hub).chrome_trace_json();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"mail.ui->imap\""), std::string::npos);
  EXPECT_NE(json->find("\"submitted\":17"), std::string::npos);
  EXPECT_NE(json->find("\"latency_p99\""), std::string::npos);
}

TEST(ExporterTest, TextSnapshotNeverCarriesPayloadBytes) {
  Tracer tracer;
  const int owner = 0;
  SpanEvent event;
  event.note_payload(to_bytes("TOPSECRET"), /*capture=*/true);
  tracer.recorder(&owner, 1, "imap").record(event);
  const std::string text = TraceExporter(tracer).text_snapshot();
  EXPECT_NE(text.find("== imap"), std::string::npos);
  EXPECT_NE(text.find("op=TOPS"), std::string::npos);
  EXPECT_NE(text.find("redacted"), std::string::npos);
  EXPECT_EQ(text.find("TOPSECRET"), std::string::npos);
}

// --- End-to-end overhead: the ≤5% contract, per substrate ---

TEST(TraceOverheadTest, BatchedPathOverheadWithinFivePercentOnAllSubstrates) {
  for (const std::string& name : test::shared_registry().names()) {
    auto machine = test::make_machine("trace-overhead-" + name);
    auto created = test::shared_registry().create(name, *machine);
    ASSERT_TRUE(created.ok()) << name;
    auto& substrate = **created;

    auto a = substrate.create_domain(test::tc_spec("alpha"));
    auto b = substrate.create_domain(
        substrate::has_feature(substrate.info().features,
                               substrate::Feature::legacy_hosting)
            ? test::legacy_spec("beta")
            : test::tc_spec("beta"));
    ASSERT_TRUE(a.ok() && b.ok()) << name;
    auto channel = substrate.create_channel(*a, *b);
    ASSERT_TRUE(channel.ok()) << name;
    ASSERT_TRUE(substrate
                    .set_handler(*b,
                                 [](const substrate::Invocation&)
                                     -> Result<Bytes> { return Bytes{}; })
                    .ok());

    const std::vector<Bytes> requests(32, to_bytes("0123456789abcdef"));
    const auto crossing_cost = [&]() -> Cycles {
      auto reply = substrate.call_batch(*a, *channel, requests);
      EXPECT_TRUE(reply.ok()) << name;
      return reply->crossing_cycles;
    };
    crossing_cost();  // warm up one-time charges
    const Cycles baseline = crossing_cost();

    Tracer tracer;
    substrate.set_tracer(&tracer);
    const TraceContext ctx = tracer.begin_trace();
    TraceScope scope(ctx);
    const Cycles traced = crossing_cost();

    ASSERT_GE(traced, baseline) << name;
    // The whole economics of the design: per-crossing (not per-request)
    // context charge, so a batch of 32 amortizes tracing to noise.
    EXPECT_LE((traced - baseline) * 100, baseline * 5)
        << name << ": baseline=" << baseline << " traced=" << traced;
    substrate.set_tracer(nullptr);
  }
}

}  // namespace
}  // namespace lateral::trace
