// Shared fixtures: a process-wide test vendor (RSA keygen is the expensive
// part) and machine/substrate factories.
#pragma once

#include <memory>
#include <string>

#include "core/standard_registry.h"
#include "crypto/hmac.h"
#include "hw/machine.h"
#include "substrate/substrate.h"

namespace lateral::test {

/// One vendor (root CA) for the whole test process.
inline hw::Vendor& shared_vendor() {
  static hw::Vendor vendor(/*seed=*/0x1a7e5a1, /*key_bits=*/512);
  return vendor;
}

inline std::unique_ptr<hw::Machine> make_machine(
    const std::string& name = "test-machine") {
  hw::MachineConfig config;
  config.name = name;
  return std::make_unique<hw::Machine>(config, shared_vendor(),
                                       to_bytes("boot-rom-v1"));
}

/// A machine with N symmetric cores (FIG13 scaling tests).
inline std::unique_ptr<hw::Machine> make_smp_machine(
    std::size_t cores, const std::string& name = "test-smp-machine") {
  hw::MachineConfig config;
  config.name = name;
  config.cores = cores;
  return std::make_unique<hw::Machine>(config, shared_vendor(),
                                       to_bytes("boot-rom-v1"));
}

inline substrate::SubstrateRegistry& shared_registry() {
  static substrate::SubstrateRegistry registry =
      core::make_standard_registry();
  return registry;
}

/// A small trusted-component spec.
inline substrate::DomainSpec tc_spec(const std::string& name,
                                     std::size_t pages = 2) {
  substrate::DomainSpec spec;
  spec.name = name;
  spec.kind = substrate::DomainKind::trusted_component;
  spec.image.name = name + "-image";
  spec.image.code = to_bytes("code-of-" + name);
  spec.memory_pages = pages;
  return spec;
}

inline substrate::DomainSpec legacy_spec(const std::string& name,
                                         std::size_t pages = 4) {
  substrate::DomainSpec spec = tc_spec(name, pages);
  spec.kind = substrate::DomainKind::legacy;
  return spec;
}

}  // namespace lateral::test
