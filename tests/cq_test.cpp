// lateral::cq — the CompletionQueue API and its adaptive batch controller.
//
// Three layers of coverage:
//  * AdaptiveBatchController as pure policy (cold start, saturation,
//    tail damping, clamps, fixed mode) — no substrate needed;
//  * CompletionQueue semantics on one substrate (doorbell coalescing,
//    saturated-ring backpressure, deadlines interleaved with completions,
//    pool-slot return on expiry, the Future-style wait shim, hub export,
//    Executor submit_call coalescing);
//  * x8 conformance that reap() charges exactly one crossing per drain.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/endpoint.h"
#include "runtime/completion_queue.h"
#include "runtime/executor.h"
#include "runtime/region_pool.h"
#include "test_support.h"

namespace lateral::runtime {
namespace {

using test::legacy_spec;
using test::tc_spec;

// ---------------------------------------------------------------------------
// AdaptiveBatchController — pure policy.

TEST(AdaptiveController, ColdStartGrowsOnOccupancyAlone) {
  // Empty histogram (p50 == p99 == 0): nothing ever crossed yet. The
  // controller must still deepen under load instead of waiting for a
  // latency signal that cannot exist before the first flush.
  AdaptiveBatchController c({.min_batch = 4, .max_batch = 64});
  EXPECT_EQ(c.depth(), 4u);
  c.observe(/*occupancy=*/4, /*p50=*/0, /*p99=*/0);
  EXPECT_EQ(c.depth(), 8u);
  c.observe(8, 0, 0);
  EXPECT_EQ(c.depth(), 16u);
  EXPECT_EQ(c.grows(), 2u);
  EXPECT_EQ(c.shrinks(), 0u);
}

TEST(AdaptiveController, FixedModeNeverMoves) {
  AdaptiveBatchController c(
      {.min_batch = 4, .max_batch = 256, .initial = 32, .adaptive = false});
  EXPECT_EQ(c.depth(), 32u);
  c.observe(32, 10, 10);          // saturated
  c.observe(1, 10, 1'000'000);    // shallow AND tail-blown
  EXPECT_EQ(c.depth(), 32u);
  EXPECT_EQ(c.grows() + c.shrinks(), 0u);
}

TEST(AdaptiveController, InitialIsClampedToBounds) {
  EXPECT_EQ(AdaptiveBatchController({.min_batch = 4, .max_batch = 64,
                                     .initial = 1000}).depth(), 64u);
  EXPECT_EQ(AdaptiveBatchController({.min_batch = 4, .max_batch = 64,
                                     .initial = 1}).depth(), 4u);
  // Degenerate configs are repaired, not UB.
  EXPECT_EQ(AdaptiveBatchController({.min_batch = 0, .max_batch = 0}).depth(),
            1u);
}

TEST(AdaptiveController, ShrinksWhenShallowWithHysteresis) {
  AdaptiveBatchController c({.min_batch = 4, .max_batch = 64, .initial = 32});
  c.observe(/*occupancy=*/8, /*p50=*/100, /*p99=*/100);  // 8*4 <= 32
  EXPECT_EQ(c.depth(), 16u);
  // Hovering just below target is NOT shallow: 10*4 > 16, no shrink.
  c.observe(10, 100, 100);
  EXPECT_EQ(c.depth(), 16u);
  EXPECT_EQ(c.shrinks(), 1u);
}

TEST(AdaptiveController, TailDamperShrinksRegardlessOfOccupancy) {
  AdaptiveBatchController c(
      {.min_batch = 4, .max_batch = 64, .initial = 32, .tail_factor = 8});
  // Establish the floor: p50 = 100 -> tail bound = 800.
  c.observe(32, 100, 200);
  EXPECT_EQ(c.depth(), 64u);  // saturated with headroom (2*200 <= 800)
  // A saturated window whose p99 blew the bound still shrinks.
  c.observe(64, 100, 900);
  EXPECT_EQ(c.depth(), 32u);
  EXPECT_EQ(c.shrinks(), 1u);
}

TEST(AdaptiveController, GrowthRequiresTailHeadroom) {
  AdaptiveBatchController c(
      {.min_batch = 4, .max_batch = 64, .initial = 32, .tail_factor = 8});
  // floor = 100, bound = 800. p99 = 500 is within the bound, but doubling
  // could double it past the bound (2*500 > 800): hold depth.
  c.observe(32, 100, 500);
  EXPECT_EQ(c.depth(), 32u);
  EXPECT_EQ(c.grows(), 0u);
}

TEST(AdaptiveController, FloorRatchetsDownToBestWindow) {
  AdaptiveBatchController c(
      {.min_batch = 4, .max_batch = 64, .initial = 4, .tail_factor = 8});
  // A congested first window must not inflate the floor forever.
  c.observe(4, 1000, 1000);   // floor 1000, bound 8000 -> grow
  EXPECT_EQ(c.depth(), 8u);
  c.observe(8, 100, 100);     // floor ratchets to 100, bound 800 -> grow
  EXPECT_EQ(c.depth(), 16u);
  c.observe(16, 100, 700);    // 2*700 > 800: the tighter bound now binds
  EXPECT_EQ(c.depth(), 16u);
}

TEST(AdaptiveController, ClampsAtMinAndMax) {
  AdaptiveBatchController c({.min_batch = 4, .max_batch = 8, .initial = 8});
  c.observe(8, 0, 0);
  EXPECT_EQ(c.depth(), 8u);  // at max: no grow
  EXPECT_EQ(c.grows(), 0u);
  c.observe(1, 0, 0);
  EXPECT_EQ(c.depth(), 4u);
  c.observe(1, 0, 0);
  EXPECT_EQ(c.depth(), 4u);  // at min: no shrink
  EXPECT_EQ(c.shrinks(), 1u);
}

// ---------------------------------------------------------------------------
// CompletionQueue semantics (one representative substrate).

class CqTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("cq");
    substrate_ = *test::shared_registry().create("microkernel", *machine_);
    client_ = *substrate_->create_domain(tc_spec("client"));
    server_ = *substrate_->create_domain(tc_spec("server"));
    channel_ = *substrate_->create_channel(client_, server_);
    ASSERT_TRUE(substrate_
                    ->set_handler(server_,
                                  [](const substrate::Invocation& inv)
                                      -> Result<Bytes> {
                                    Bytes reply(inv.data.begin(),
                                                inv.data.end());
                                    reply.push_back('!');
                                    return reply;
                                  })
                    .ok());
  }

  /// One sync call: moves the clock well past cycle 1 so an absolute
  /// deadline of 1 is expired in later submissions.
  void warm() {
    ASSERT_TRUE(substrate_->call(client_, channel_, to_bytes("warm")).ok());
    ASSERT_GT(machine_->now(), 1u);
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> substrate_;
  substrate::DomainId client_ = 0, server_ = 0;
  substrate::ChannelId channel_ = 0;
};

TEST_F(CqTest, DoorbellFlushesAndDrainsInOneRing) {
  CompletionQueue cq(*substrate_, client_, channel_);
  std::vector<SubmissionId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(*cq.submit(to_bytes("m" + std::to_string(i))));
  EXPECT_EQ(cq.pending(), 8u);
  EXPECT_EQ(cq.ready(), 0u);
  ASSERT_TRUE(cq.doorbell().ok());
  EXPECT_EQ(cq.pending(), 0u);
  EXPECT_EQ(cq.ready(), 8u);  // completions drained by the same ring
  auto events = cq.reap();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*events)[i].id, ids[i]);
    ASSERT_TRUE((*events)[i].ok());
    EXPECT_EQ(to_string((*events)[i].payload),
              "m" + std::to_string(i) + "!");
    EXPECT_GT((*events)[i].cycles, 0u);  // submit->complete latency
  }
}

TEST_F(CqTest, SaturatedRingIsBackpressureNotLoss) {
  CompletionQueueConfig cfg;
  cfg.depth = 4;
  cfg.adaptive.min_batch = 2;
  cfg.adaptive.max_batch = 4;
  CompletionQueue cq(*substrate_, client_, channel_, cfg);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(cq.submit(to_bytes("x")).ok());
  EXPECT_EQ(cq.submit(to_bytes("overflow")).error(), Errc::exhausted);
  EXPECT_EQ(cq.metrics().rejected, 1u);
  // The doorbell makes room; the refused submission succeeds on retry.
  ASSERT_TRUE(cq.doorbell().ok());
  ASSERT_TRUE(cq.submit(to_bytes("retry")).ok());
  auto first = cq.reap();  // the 4 already-drained events, no new crossing
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 4u);
  auto second = cq.reap();  // nothing ready -> rings for the retry
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ(to_string((*second)[0].payload), "retry!");
  const InvocationCounters m = cq.metrics();
  EXPECT_EQ(m.submitted, 5u);
  EXPECT_EQ(m.completed, 5u);
  EXPECT_EQ(m.in_flight(), 0u);
}

TEST_F(CqTest, DeadlineExpiredInterleavedWithCompletions) {
  warm();
  CompletionQueue cq(*substrate_, client_, channel_);
  std::map<SubmissionId, int> index;
  for (int i = 0; i < 6; ++i) {
    auto id = cq.submit(to_bytes("p" + std::to_string(i)),
                        {.deadline = (i % 2 == 1) ? Cycles{1} : Cycles{0}});
    ASSERT_TRUE(id.ok());
    index[*id] = i;
  }
  auto events = cq.reap();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 6u);
  for (const CqEvent& event : *events) {
    const int i = index.at(event.id);
    if (i % 2 == 1) {
      EXPECT_EQ(event.status, Errc::timed_out);
      EXPECT_EQ(event.cycles, 0u);  // never crossed
    } else {
      ASSERT_TRUE(event.ok());
      EXPECT_EQ(to_string(event.payload), "p" + std::to_string(i) + "!");
      EXPECT_GT(event.cycles, 0u);
    }
  }
  const InvocationCounters m = cq.metrics();
  EXPECT_EQ(m.timed_out, 3u);
  EXPECT_EQ(m.completed, 3u);
  EXPECT_EQ(m.submitted, m.completed + m.cancelled + m.timed_out);
  EXPECT_EQ(m.in_flight(), 0u);
}

TEST_F(CqTest, PastDeadlineReapNeverCrosses) {
  warm();
  CompletionQueue cq(*substrate_, client_, channel_);
  ASSERT_TRUE(cq.submit(to_bytes("queued")).ok());
  const Cycles before = machine_->now();
  auto events = cq.reap(/*max=*/0, /*deadline=*/Cycles{1});
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
  EXPECT_EQ(machine_->now(), before);  // no crossing was charged
  EXPECT_EQ(cq.pending(), 1u);        // the submission is still queued
}

TEST_F(CqTest, CancelledSubmissionYieldsOneEvent) {
  CompletionQueue cq(*substrate_, client_, channel_);
  const SubmissionId keep = *cq.submit(to_bytes("keep"));
  const SubmissionId gone = *cq.submit(to_bytes("gone"));
  ASSERT_TRUE(cq.cancel(gone).ok());
  auto events = cq.reap();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  std::map<SubmissionId, CqEvent> by_id;
  for (CqEvent& event : *events) by_id[event.id] = std::move(event);
  EXPECT_EQ(by_id.at(gone).status, Errc::cancelled);
  EXPECT_EQ(by_id.at(gone).cycles, 0u);
  EXPECT_EQ(to_string(by_id.at(keep).payload), "keep!");
}

TEST_F(CqTest, ExpiredStagedSubmissionReturnsPoolSlot) {
  warm();
  auto region = substrate_->create_region(client_, server_, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(substrate_->map_region(client_, *region).ok());
  ASSERT_TRUE(substrate_->map_region(server_, *region).ok());
  RegionPool pool(*substrate_, client_, *region, 4096, 256);
  const std::size_t free_before = pool.slots_free();
  CompletionQueue cq(*substrate_, client_, channel_);
  ASSERT_TRUE(cq.submit_staged(pool, to_bytes("hdr"), to_bytes("payload"),
                               {.deadline = Cycles{1}})
                  .ok());
  EXPECT_EQ(pool.slots_free(), free_before - 1);
  auto events = cq.reap();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].status, Errc::timed_out);
  // The unified completion helper returned the slot — no leak on the
  // deadline path.
  EXPECT_EQ(pool.slots_free(), free_before);
}

TEST_F(CqTest, MaybeDoorbellRingsAtDepthTarget) {
  CompletionQueueConfig cfg;
  cfg.adaptive.min_batch = 2;
  cfg.adaptive.max_batch = 8;
  CompletionQueue cq(*substrate_, client_, channel_, cfg);
  ASSERT_TRUE(cq.submit(to_bytes("a")).ok());
  ASSERT_TRUE(cq.maybe_doorbell().ok());
  EXPECT_EQ(cq.ready(), 0u);  // 1 < target 2: no ring
  ASSERT_TRUE(cq.submit(to_bytes("b")).ok());
  ASSERT_TRUE(cq.maybe_doorbell().ok());
  EXPECT_EQ(cq.ready(), 2u);  // occupancy reached the target
}

TEST_F(CqTest, MaybeDoorbellRingsForAgedStragglers) {
  CompletionQueueConfig cfg;
  cfg.adaptive.min_batch = 8;
  cfg.adaptive.max_batch = 8;
  cfg.adaptive.flush_age = 100;
  CompletionQueue cq(*substrate_, client_, channel_, cfg);
  ASSERT_TRUE(cq.submit(to_bytes("straggler")).ok());
  ASSERT_TRUE(cq.maybe_doorbell().ok());
  EXPECT_EQ(cq.ready(), 0u);  // young and far below the depth target
  machine_->advance(150);
  ASSERT_TRUE(cq.maybe_doorbell().ok());
  EXPECT_EQ(cq.ready(), 1u);  // age bound fired
}

TEST_F(CqTest, WaitShimResolvesOneIdAndKeepsTheRest) {
  CompletionQueue cq(*substrate_, client_, channel_);
  const SubmissionId a = *cq.submit(to_bytes("a"));
  const SubmissionId b = *cq.submit(to_bytes("b"));
  EXPECT_EQ(to_string(*cq.wait(b)), "b!");
  EXPECT_EQ(cq.ready(), 1u);  // a's event stayed in the ready queue
  EXPECT_EQ(to_string(*cq.wait(a)), "a!");
  EXPECT_EQ(cq.wait(9999).error(), Errc::invalid_argument);
}

TEST_F(CqTest, ControllerStateIsExportedThroughTheHub) {
  MetricsHub hub;
  CompletionQueueConfig cfg;
  cfg.adaptive.min_batch = 2;
  cfg.adaptive.max_batch = 8;
  cfg.hub = &hub;
  cfg.label = "cq.export";
  CompletionQueue cq(*substrate_, client_, channel_, cfg);
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(cq.submit(to_bytes("x")).ok());
  ASSERT_TRUE(cq.doorbell().ok());
  const InvocationCounters snap = hub.counters("cq.export").snapshot();
  EXPECT_EQ(snap.doorbells, 1u);
  EXPECT_EQ(snap.adaptive_depth, cq.batch_depth());
  EXPECT_EQ(snap.adaptive_grows + snap.adaptive_shrinks,
            cq.metrics().adaptive_grows + cq.metrics().adaptive_shrinks);
}

TEST_F(CqTest, ExecutorCoalescesSameEndpointCalls) {
  const std::uint64_t epoch = *substrate_->channel_epoch(channel_);
  const core::Endpoint endpoint(substrate_.get(), channel_, client_, epoch);
  Executor executor({.threads = 1});
  std::vector<Future> futures;
  for (int i = 0; i < 8; ++i) {
    auto f = executor.submit_call(endpoint,
                                  to_bytes("e" + std::to_string(i)));
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  for (int i = 0; i < 8; ++i) {
    auto reply = futures[static_cast<std::size_t>(i)].wait();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(to_string(*reply), "e" + std::to_string(i) + "!");
  }
  executor.wait_all();
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.cq_calls, 8u);
  EXPECT_GE(stats.cq_batches, 1u);
  // Coalescing means doorbells never exceed calls; with one worker and a
  // pre-filled queue they should be strictly fewer.
  EXPECT_LE(stats.cq_batches, stats.cq_calls);
}

// ---------------------------------------------------------------------------
// x8 conformance: one doorbell == one coalesced crossing, on every
// substrate.

class CqConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("cq-" + GetParam());
    substrate_ = *test::shared_registry().create(GetParam(), *machine_);
    client_ = *substrate_->create_domain(tc_spec("client"));
    const bool use_legacy = has_feature(substrate_->info().features,
                                        substrate::Feature::legacy_hosting);
    server_ = *substrate_->create_domain(use_legacy
                                             ? legacy_spec("server")
                                             : tc_spec("server"));
    channel_ = *substrate_->create_channel(client_, server_);
    ASSERT_TRUE(substrate_
                    ->set_handler(server_,
                                  [](const substrate::Invocation& inv)
                                      -> Result<Bytes> {
                                    return Bytes(inv.data.begin(),
                                                 inv.data.end());
                                  })
                    .ok());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> substrate_;
  substrate::DomainId client_ = 0, server_ = 0;
  substrate::ChannelId channel_ = 0;
};

TEST_P(CqConformance, ReapChargesExactlyOneCrossingPerDrain) {
  // Baseline: what one synchronous call costs here.
  const Cycles sync_start = machine_->now();
  ASSERT_TRUE(substrate_->call(client_, channel_, to_bytes("ping")).ok());
  const Cycles sync_cost = machine_->now() - sync_start;
  ASSERT_GT(sync_cost, 0u);

  CompletionQueue cq(*substrate_, client_, channel_);
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(cq.submit(to_bytes("m" + std::to_string(i))).ok());
  const Cycles drain_start = machine_->now();
  auto events = cq.reap();
  const Cycles drain_cost = machine_->now() - drain_start;
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 8u);
  // One coalesced crossing for all 8: far cheaper than 8 sync calls, and
  // cheaper than even 2 (the fixed crossing is paid once, not per call).
  EXPECT_LT(drain_cost, 2 * sync_cost) << GetParam();
  const InvocationCounters m = cq.metrics();
  EXPECT_EQ(m.batches, 1u) << GetParam();
  EXPECT_EQ(m.doorbells, 1u) << GetParam();

  // And a drain with nothing queued and nothing ready is free: no charge,
  // no phantom doorbell.
  const Cycles idle_start = machine_->now();
  auto idle = cq.reap();
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle->empty());
  EXPECT_EQ(machine_->now(), idle_start) << GetParam();
  EXPECT_EQ(cq.metrics().doorbells, 1u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, CqConformance,
                         ::testing::Values("microkernel", "trustzone", "sgx",
                                           "tpm", "ftpm", "sep", "cheri",
                                           "noc"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace lateral::runtime
