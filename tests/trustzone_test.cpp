// TrustZone specifics: world asymmetry, single normal world, secondary
// isolation in the secure world, Knox-style measurement, plaintext DRAM.
#include <gtest/gtest.h>

#include "hw/attacker.h"
#include "test_support.h"
#include "trustzone/trustzone.h"

namespace lateral::trustzone {
namespace {

using test::legacy_spec;
using test::tc_spec;

class TrustZoneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("tz");
    tz_ = std::make_unique<TrustZone>(*machine_,
                                      substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<TrustZone> tz_;
};

TEST_F(TrustZoneTest, TrustedComponentsLandInSecureWorld) {
  auto tc = tz_->create_domain(tc_spec("keymaster"));
  ASSERT_TRUE(tc.ok());
  auto secure = tz_->is_secure_world(*tc);
  ASSERT_TRUE(secure.ok());
  EXPECT_TRUE(*secure);

  auto legacy = tz_->create_domain(legacy_spec("android"));
  ASSERT_TRUE(legacy.ok());
  auto normal = tz_->is_secure_world(*legacy);
  ASSERT_TRUE(normal.ok());
  EXPECT_FALSE(*normal);
}

TEST_F(TrustZoneTest, OnlyOneNormalWorld) {
  // "The normal world can host exactly one legacy codebase, because
  // TrustZone itself does not support multiplexing."
  ASSERT_TRUE(tz_->create_domain(legacy_spec("android")).ok());
  EXPECT_EQ(tz_->create_domain(legacy_spec("second-os")).error(),
            Errc::exhausted);
}

TEST_F(TrustZoneTest, NormalWorldSlotFreedOnDestroy) {
  auto first = tz_->create_domain(legacy_spec("android"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(tz_->destroy_domain(*first).ok());
  EXPECT_TRUE(tz_->create_domain(legacy_spec("replacement")).ok());
}

TEST_F(TrustZoneTest, MultipleTrustedComponentsShareSecureWorld) {
  EXPECT_TRUE(tz_->create_domain(tc_spec("crypto")).ok());
  EXPECT_TRUE(tz_->create_domain(tc_spec("drm")).ok());
  EXPECT_TRUE(tz_->create_domain(tc_spec("attest")).ok());
}

TEST_F(TrustZoneTest, WorldAsymmetry) {
  // Secure world reads/writes normal world; never the reverse.
  auto tc = tz_->create_domain(tc_spec("inspector"));
  auto legacy = tz_->create_domain(legacy_spec("android"));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(legacy.ok());

  ASSERT_TRUE(
      tz_->write_memory(*legacy, *legacy, 0, to_bytes("normal-data")).ok());
  auto peek = tz_->read_memory(*tc, *legacy, 0, 11);
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(to_string(*peek), "normal-data");
  EXPECT_TRUE(tz_->write_memory(*tc, *legacy, 0, to_bytes("patched")).ok());

  ASSERT_TRUE(tz_->write_memory(*tc, *tc, 0, to_bytes("secure-key")).ok());
  EXPECT_EQ(tz_->read_memory(*legacy, *tc, 0, 10).error(),
            Errc::access_denied);
  EXPECT_EQ(tz_->write_memory(*legacy, *tc, 0, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST_F(TrustZoneTest, SecondaryIsolationProtectsTrustlets) {
  auto a = tz_->create_domain(tc_spec("trustlet-a"));
  auto b = tz_->create_domain(tc_spec("trustlet-b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(tz_->write_memory(*a, *a, 0, to_bytes("a-secret")).ok());
  // With a well-built secure-world OS, trustlets are mutually isolated.
  EXPECT_EQ(tz_->read_memory(*b, *a, 0, 8).error(), Errc::access_denied);
}

TEST_F(TrustZoneTest, WithoutSecondaryIsolationTrustletsShareFate) {
  // "Multiple trusted components may share the secure world, but then they
  // rely on secondary isolation by the secure world operating system."
  auto machine = test::make_machine("tz-weak");
  TrustZone weak(*machine, substrate::SubstrateConfig{},
                 /*secure_world_isolation=*/false);
  auto a = weak.create_domain(tc_spec("trustlet-a"));
  auto b = weak.create_domain(tc_spec("trustlet-b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(weak.write_memory(*a, *a, 0, to_bytes("a-secret")).ok());
  auto stolen = weak.read_memory(*b, *a, 0, 8);
  ASSERT_TRUE(stolen.ok());  // compromise of b reaches a
  EXPECT_EQ(to_string(*stolen), "a-secret");
}

TEST_F(TrustZoneTest, NormalWorldCannotAttestOrSeal) {
  auto legacy = tz_->create_domain(legacy_spec("android"));
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(tz_->attest(*legacy, to_bytes("x")).error(), Errc::access_denied);
  EXPECT_EQ(tz_->seal(*legacy, to_bytes("x")).error(), Errc::access_denied);
}

TEST_F(TrustZoneTest, KnoxStyleNormalWorldMeasurement) {
  auto tc = tz_->create_domain(tc_spec("ima"));
  auto legacy = tz_->create_domain(legacy_spec("android"));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(legacy.ok());

  auto baseline = tz_->measure_normal_world(*tc);
  ASSERT_TRUE(baseline.ok());
  auto again = tz_->measure_normal_world(*tc);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*baseline, *again);  // stable while untouched

  // A kernel intrusion (memory change) shows up in the measurement.
  ASSERT_TRUE(
      tz_->write_memory(*legacy, *legacy, 64, to_bytes("rootkit")).ok());
  auto after = tz_->measure_normal_world(*tc);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*baseline, *after);
}

TEST_F(TrustZoneTest, NormalWorldCannotRunMeasurement) {
  auto legacy = tz_->create_domain(legacy_spec("android"));
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(tz_->measure_normal_world(*legacy).error(), Errc::access_denied);
}

TEST_F(TrustZoneTest, SecureWorldDramIsPlaintextToPhysicalAttacker) {
  // TrustZone protects against software, not the memory bus (§II-D).
  auto tc = tz_->create_domain(tc_spec("keymaster"));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(
      tz_->write_memory(*tc, *tc, 0, to_bytes("TZ-SECURE-SECRET")).ok());
  hw::PhysicalAttacker attacker(*machine_);
  EXPECT_FALSE(
      attacker.scan(machine_->dram(), to_bytes("TZ-SECURE-SECRET")).empty());
}

TEST_F(TrustZoneTest, HypervisorMultiplexesNormalWorlds) {
  // §II-B: "TrustZone can be combined with virtualization techniques to
  // host multiple normal world operating systems" — the Simko3
  // "Merkel-Phone": private and business Android side by side.
  auto machine = test::make_machine("simko3");
  TrustZone phone(*machine, substrate::SubstrateConfig{},
                  TrustZoneOptions{.hypervisor = true});
  auto private_android = phone.create_domain(legacy_spec("android-private"));
  auto business_android = phone.create_domain(legacy_spec("android-business"));
  ASSERT_TRUE(private_android.ok());
  ASSERT_TRUE(business_android.ok());

  // The two VMs are mutually isolated.
  ASSERT_TRUE(phone
                  .write_memory(*private_android, *private_android, 0,
                                to_bytes("private-photos"))
                  .ok());
  EXPECT_EQ(phone.read_memory(*business_android, *private_android, 0, 14)
                .error(),
            Errc::access_denied);

  // The hypervisor is part of the isolation substrate: bigger TCB than
  // plain TrustZone.
  auto machine2 = test::make_machine("plain-tz");
  TrustZone plain(*machine2, substrate::SubstrateConfig{});
  EXPECT_GT(phone.info().tcb_loc, plain.info().tcb_loc);
}

TEST_F(TrustZoneTest, HypervisorAddsVmExitToll) {
  auto machine = test::make_machine("tz-hyp-cost");
  TrustZone phone(*machine, substrate::SubstrateConfig{},
                  TrustZoneOptions{.hypervisor = true});
  auto machine2 = test::make_machine("tz-plain-cost");
  TrustZone plain(*machine2, substrate::SubstrateConfig{});
  // message_cost is public on the unified interface.
  const substrate::IsolationSubstrate& phone_api = phone;
  const substrate::IsolationSubstrate& plain_api = plain;
  EXPECT_GT(phone_api.message_cost(64), plain_api.message_cost(64));
}

TEST_F(TrustZoneTest, SoftwareMemoryEncryptionHidesSecureWorld) {
  // §II-D: "SGX-style memory encryption could be implemented using for
  // example ARM TrustZone" — scratchpad-keyed software MEE.
  auto machine = test::make_machine("tz-swmee");
  TrustZone tz(*machine, substrate::SubstrateConfig{},
               TrustZoneOptions{.software_memory_encryption = true});
  auto tc = tz.create_domain(tc_spec("keymaster", 1));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(
      tz.write_memory(*tc, *tc, 0, to_bytes("SWMEE-PROTECTED-KEY")).ok());

  // The physical attacker now sees only ciphertext...
  hw::PhysicalAttacker attacker(*machine);
  EXPECT_TRUE(
      attacker.scan(machine->dram(), to_bytes("SWMEE-PROTECTED-KEY")).empty());
  // ...and the secure world still reads its plaintext.
  auto read = tz.read_memory(*tc, *tc, 0, 19);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "SWMEE-PROTECTED-KEY");
  // The substrate's contract upgrades accordingly.
  EXPECT_TRUE(tz.info().defends(substrate::AttackerModel::physical_bus));
  EXPECT_TRUE(has_feature(tz.info().features,
                          substrate::Feature::memory_encryption));
}

TEST_F(TrustZoneTest, SoftwareMeeDetectsBusTampering) {
  auto machine = test::make_machine("tz-swmee-tamper");
  TrustZone tz(*machine, substrate::SubstrateConfig{},
               TrustZoneOptions{.software_memory_encryption = true});
  auto tc = tz.create_domain(tc_spec("keymaster", 1));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(tz.write_memory(*tc, *tc, 0, to_bytes("keys")).ok());
  auto frames = tz.domain_frames(*tc);
  ASSERT_TRUE(frames.ok());

  hw::PhysicalAttacker attacker(*machine);
  auto probed = attacker.probe((*frames)[0], 4);
  ASSERT_TRUE(probed.ok());
  for (auto& b : *probed) b ^= 0xFF;
  ASSERT_TRUE(attacker.tamper((*frames)[0], *probed).ok());
  EXPECT_EQ(tz.read_memory(*tc, *tc, 0, 4).error(), Errc::tamper_detected);
}

TEST_F(TrustZoneTest, SoftwareMeeCostsMoreThanPlain) {
  auto machine_enc = test::make_machine("tz-enc-cost");
  TrustZone enc(*machine_enc, substrate::SubstrateConfig{},
                TrustZoneOptions{.software_memory_encryption = true});
  auto machine_plain = test::make_machine("tz-plain2");
  TrustZone plain(*machine_plain, substrate::SubstrateConfig{});

  auto tc_enc = enc.create_domain(tc_spec("a", 1));
  auto tc_plain = plain.create_domain(tc_spec("a", 1));
  ASSERT_TRUE(tc_enc.ok());
  ASSERT_TRUE(tc_plain.ok());

  const Bytes data(1024, 0x5A);
  const Cycles enc_before = machine_enc->now();
  ASSERT_TRUE(enc.write_memory(*tc_enc, *tc_enc, 0, data).ok());
  const Cycles enc_cost = machine_enc->now() - enc_before;
  const Cycles plain_before = machine_plain->now();
  ASSERT_TRUE(plain.write_memory(*tc_plain, *tc_plain, 0, data).ok());
  const Cycles plain_cost = machine_plain->now() - plain_before;
  EXPECT_GT(enc_cost, plain_cost * 2);
}

TEST_F(TrustZoneTest, InvocationPaysWorldSwitch) {
  auto tc = tz_->create_domain(tc_spec("service"));
  auto legacy = tz_->create_domain(legacy_spec("android"));
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(legacy.ok());
  auto channel = tz_->create_channel(*legacy, *tc);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(tz_
                  ->set_handler(*tc, [](const substrate::Invocation&)
                                    -> Result<Bytes> { return Bytes{}; })
                  .ok());
  const Cycles before = machine_->now();
  ASSERT_TRUE(tz_->call(*legacy, *channel, to_bytes("smc")).ok());
  // Round trip: two one-way messages, each >= one SMC world switch.
  EXPECT_GE(machine_->now() - before,
            2 * machine_->costs().smc_world_switch);
}

}  // namespace
}  // namespace lateral::trustzone
