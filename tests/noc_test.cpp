// NoC/M3 substrate specifics: tile placement, no cross-tile load/store,
// fixed DTU endpoint tables, cheap DTU messaging, structural temporal
// isolation.
#include <gtest/gtest.h>

#include "noc/noc.h"
#include "test_support.h"

namespace lateral::noc {
namespace {

using test::tc_spec;

class NocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("noc");
    fabric_ = std::make_unique<NocFabric>(*machine_,
                                          substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<NocFabric> fabric_;
};

TEST_F(NocTest, DomainsLandOnDistinctTiles) {
  auto a = fabric_->create_domain(tc_spec("a"));
  auto b = fabric_->create_domain(tc_spec("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto distance = fabric_->hop_distance(*a, *b);
  ASSERT_TRUE(distance.ok());
  EXPECT_GT(*distance, 0u);
  auto self_distance = fabric_->hop_distance(*a, *a);
  ASSERT_TRUE(self_distance.ok());
  EXPECT_EQ(*self_distance, 0u);
}

TEST_F(NocTest, NoCrossTileLoadStorePath) {
  auto a = fabric_->create_domain(tc_spec("a"));
  auto b = fabric_->create_domain(tc_spec("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fabric_->write_memory(*a, *a, 0, to_bytes("tile-local")).ok());
  EXPECT_EQ(fabric_->read_memory(*b, *a, 0, 10).error(), Errc::access_denied);
  EXPECT_EQ(fabric_->write_memory(*b, *a, 0, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST_F(NocTest, EndpointTablesAreFinite) {
  auto hub = fabric_->create_domain(tc_spec("hub", 1));
  ASSERT_TRUE(hub.ok());
  std::vector<substrate::DomainId> spokes;
  // Fill the hub's endpoint table.
  for (std::size_t i = 0; i < kEndpointsPerTile; ++i) {
    auto spoke =
        fabric_->create_domain(tc_spec("spoke" + std::to_string(i), 1));
    ASSERT_TRUE(spoke.ok());
    spokes.push_back(*spoke);
    ASSERT_TRUE(fabric_->create_channel(*hub, *spoke).ok()) << i;
  }
  EXPECT_EQ(*fabric_->endpoints_used(*hub), kEndpointsPerTile);
  // One more is a hard error, not a slowdown.
  auto extra = fabric_->create_domain(tc_spec("extra", 1));
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(fabric_->create_channel(*hub, *extra).error(), Errc::exhausted);
  // The spoke side only used one endpoint each.
  EXPECT_EQ(*fabric_->endpoints_used(spokes[0]), 1u);
}

TEST_F(NocTest, RegionsConsumeDtuEndpoints) {
  // A grant region is realized as a DTU memory endpoint on each tile, so
  // regions and channels compete for the same finite slots.
  auto hub = fabric_->create_domain(tc_spec("hub", 1));
  ASSERT_TRUE(hub.ok());
  ASSERT_TRUE(fabric_->endpoints_used(*hub).ok());
  std::vector<substrate::DomainId> spokes;
  for (std::size_t i = 0; i + 1 < kEndpointsPerTile; ++i) {
    auto spoke =
        fabric_->create_domain(tc_spec("spoke" + std::to_string(i), 1));
    ASSERT_TRUE(spoke.ok());
    spokes.push_back(*spoke);
    ASSERT_TRUE(fabric_->create_channel(*hub, *spoke).ok()) << i;
  }
  auto peer = fabric_->create_domain(tc_spec("peer", 1));
  ASSERT_TRUE(peer.ok());
  auto region = fabric_->create_region(*hub, *peer, 4096);
  ASSERT_TRUE(region.ok());  // takes the hub's last slot
  EXPECT_EQ(*fabric_->endpoints_used(*hub), kEndpointsPerTile);
  EXPECT_EQ(fabric_->create_channel(*hub, *peer).error(), Errc::exhausted);
  EXPECT_EQ(fabric_->create_region(*hub, *peer, 4096).error(),
            Errc::exhausted);
  // Tearing the region down returns the slots on both tiles.
  ASSERT_TRUE(fabric_->revoke_region(*region).ok());
  EXPECT_EQ(*fabric_->endpoints_used(*hub), kEndpointsPerTile - 1);
  EXPECT_EQ(*fabric_->endpoints_used(*peer), 0u);
  EXPECT_TRUE(fabric_->create_channel(*hub, *peer).ok());
}

TEST_F(NocTest, RegionBackingLandsOnTheConsumerTile) {
  // Tile-aware placement: the grantee (the descriptor-consuming side of
  // the zero-copy flow) hosts the backing, so its views are tile-local.
  auto producer = fabric_->create_domain(tc_spec("producer"));
  auto consumer = fabric_->create_domain(tc_spec("consumer"));
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE(consumer.ok());
  auto region = fabric_->create_region(*producer, *consumer, 4096);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(*fabric_->region_host(*region), *consumer);
  EXPECT_EQ(fabric_->region_host(9999).error(), Errc::invalid_argument);
}

TEST_F(NocTest, ConsumerViewsAreLocalProducerPaysTheMesh) {
  auto producer = fabric_->create_domain(tc_spec("producer"));
  auto consumer = fabric_->create_domain(tc_spec("consumer"));
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE(consumer.ok());
  auto region = fabric_->create_region(*producer, *consumer, 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(fabric_->map_region(*producer, *region).ok());
  ASSERT_TRUE(fabric_->map_region(*consumer, *region).ok());
  const Bytes payload(1024, 0x5a);

  // The producer's staging write streams over the mesh to the consumer's
  // tile; the same write issued by the host is a local SRAM copy.
  const Cycles w0 = machine_->now();
  ASSERT_TRUE(fabric_->region_write(*producer, *region, 0, payload).ok());
  const Cycles remote_write = machine_->now() - w0;
  const Cycles w1 = machine_->now();
  ASSERT_TRUE(fabric_->region_write(*consumer, *region, 0, payload).ok());
  const Cycles local_write = machine_->now() - w1;
  EXPECT_GT(remote_write, local_write);

  auto desc = fabric_->make_descriptor(*producer, *region, 0, 1024);
  ASSERT_TRUE(desc.ok());
  // In-place views: the consumer reads tile-local memory at the flat
  // region-access cost; the producer's view pays hop latency on top.
  const Cycles v0 = machine_->now();
  ASSERT_TRUE(fabric_->region_view(*consumer, *desc).ok());
  const Cycles consumer_view = machine_->now() - v0;
  const Cycles v1 = machine_->now();
  ASSERT_TRUE(fabric_->region_view(*producer, *desc).ok());
  const Cycles producer_view = machine_->now() - v1;
  EXPECT_EQ(consumer_view, machine_->costs().region_access);
  EXPECT_GT(producer_view, consumer_view);
}

TEST_F(NocTest, DtuMessagingIsCheap) {
  auto a = fabric_->create_domain(tc_spec("a"));
  auto b = fabric_->create_domain(tc_spec("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto channel = fabric_->create_channel(*a, *b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(fabric_->set_handler(*b, [](const substrate::Invocation&)
                                       -> Result<Bytes> { return Bytes{}; })
                  .ok());
  const Cycles before = machine_->now();
  ASSERT_TRUE(fabric_->call(*a, *channel, to_bytes("msg")).ok());
  const Cycles roundtrip = machine_->now() - before;
  // No kernel entry on either side: cheaper than one microkernel IPC leg.
  EXPECT_LT(roundtrip, machine_->costs().ipc_one_way);
}

TEST_F(NocTest, NoLegacyHosting) {
  EXPECT_EQ(fabric_->create_domain(test::legacy_spec("os")).error(),
            Errc::not_supported);
}

TEST_F(NocTest, StructuralTemporalIsolationClaimed) {
  // Whole-core-per-domain: the covert-channel-mitigation feature is
  // inherent, not a scheduler mode.
  EXPECT_TRUE(has_feature(fabric_->info().features,
                          substrate::Feature::covert_channel_mitigation));
  EXPECT_TRUE(has_feature(fabric_->info().features,
                          substrate::Feature::temporal_isolation));
}

TEST_F(NocTest, SealingAndAttestationWork) {
  auto domain = fabric_->create_domain(tc_spec("tile-app"));
  ASSERT_TRUE(domain.ok());
  auto sealed = fabric_->seal(*domain, to_bytes("tile-secret"));
  ASSERT_TRUE(sealed.ok());
  auto opened = fabric_->unseal(*domain, *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(*opened), "tile-secret");
  auto quote = fabric_->attest(*domain, to_bytes("n"));
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(quote->verify(test::shared_vendor().root_public_key()).ok());
}

TEST_F(NocTest, TilesReleasedOnDestroy) {
  auto a = fabric_->create_domain(tc_spec("transient", 4));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(fabric_->destroy_domain(*a).ok());
  EXPECT_FALSE(fabric_->endpoints_used(*a).ok());
  // Memory is reusable.
  auto b = fabric_->create_domain(tc_spec("next", 4));
  EXPECT_TRUE(b.ok());
}

}  // namespace
}  // namespace lateral::noc
