// TPM specifics: PCR semantics, authenticated boot via CRTM, quotes over
// PCR state, sealing to PCRs, Flicker-style non-concurrent late launch,
// and the (intentionally) brutal command costs.
#include <gtest/gtest.h>

#include "hw/attacker.h"
#include "test_support.h"
#include "tpm/tpm.h"

namespace lateral::tpm {
namespace {

using test::tc_spec;

class TpmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("tpm");
    tpm_ = std::make_unique<Tpm>(*machine_, substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Tpm> tpm_;
};

TEST_F(TpmTest, CrtmMeasuresBootRomIntoPcr0) {
  auto pcr0 = tpm_->pcr_read(0);
  ASSERT_TRUE(pcr0.ok());
  // PCR0 = extend(zero, H(boot rom)).
  const crypto::Digest expected = crypto::Sha256::hash2(
      crypto::digest_view(crypto::Digest{}),
      crypto::digest_view(machine_->boot_rom().measurement()));
  EXPECT_EQ(*pcr0, expected);
}

TEST_F(TpmTest, ExtendIsOrderDependent) {
  const crypto::Digest a = crypto::Sha256::hash(to_bytes("a"));
  const crypto::Digest b = crypto::Sha256::hash(to_bytes("b"));
  auto machine2 = test::make_machine("tpm2");
  Tpm other(*machine2, substrate::SubstrateConfig{});

  ASSERT_TRUE(tpm_->pcr_extend(5, a).ok());
  ASSERT_TRUE(tpm_->pcr_extend(5, b).ok());
  ASSERT_TRUE(other.pcr_extend(5, b).ok());
  ASSERT_TRUE(other.pcr_extend(5, a).ok());
  EXPECT_NE(*tpm_->pcr_read(5), *other.pcr_read(5));
}

TEST_F(TpmTest, ExtendCannotBeUndone) {
  const auto before = *tpm_->pcr_read(6);
  ASSERT_TRUE(
      tpm_->pcr_extend(6, crypto::Sha256::hash(to_bytes("malware"))).ok());
  // There is no API that returns PCR6 to `before` short of reboot — extend
  // with anything cannot restore it (hash preimage resistance); verify the
  // value changed and extending again does not restore.
  EXPECT_NE(*tpm_->pcr_read(6), before);
  ASSERT_TRUE(
      tpm_->pcr_extend(6, crypto::Sha256::hash(to_bytes("cleanup?"))).ok());
  EXPECT_NE(*tpm_->pcr_read(6), before);
}

TEST_F(TpmTest, PcrIndexValidated) {
  EXPECT_FALSE(tpm_->pcr_extend(kNumPcrs, crypto::Digest{}).ok());
  EXPECT_FALSE(tpm_->pcr_read(kNumPcrs).ok());
}

TEST_F(TpmTest, QuoteCoversPcrSelectionAndNonce) {
  ASSERT_TRUE(
      tpm_->pcr_extend(10, crypto::Sha256::hash(to_bytes("app"))).ok());
  auto quote = tpm_->quote_pcrs({0, 10}, to_bytes("fresh-nonce"));
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(quote->verify(test::shared_vendor().root_public_key()).ok());
  EXPECT_EQ(quote->measurement, tpm_->pcr_composite({0, 10}));
  EXPECT_EQ(to_string(quote->user_data), "fresh-nonce");
}

TEST_F(TpmTest, QuoteChangesWhenPcrsChange) {
  auto before = tpm_->quote_pcrs({0, 10}, to_bytes("n"));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      tpm_->pcr_extend(10, crypto::Sha256::hash(to_bytes("rootkit"))).ok());
  auto after = tpm_->quote_pcrs({0, 10}, to_bytes("n"));
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->measurement, after->measurement);
}

TEST_F(TpmTest, SealToPcrsUnsealsWhileStateMatches) {
  auto sealed = tpm_->seal_to_pcrs({0}, to_bytes("bitlocker-key"));
  ASSERT_TRUE(sealed.ok());
  auto opened = tpm_->unseal_pcrs(*sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(*opened), "bitlocker-key");
}

TEST_F(TpmTest, SealedDataLockedAfterPcrChange) {
  // The BitLocker story: boot something else, the key stays locked.
  auto sealed = tpm_->seal_to_pcrs({4}, to_bytes("disk-key"));
  ASSERT_TRUE(sealed.ok());
  ASSERT_TRUE(
      tpm_->pcr_extend(4, crypto::Sha256::hash(to_bytes("evil-loader"))).ok());
  EXPECT_EQ(tpm_->unseal_pcrs(*sealed).error(), Errc::verification_failed);
}

TEST_F(TpmTest, UnsealValidatesBlobShape) {
  EXPECT_FALSE(tpm_->unseal_pcrs(Bytes{}).ok());
  EXPECT_FALSE(tpm_->unseal_pcrs(Bytes(10, 0)).ok());
  Bytes bogus_selection{static_cast<std::uint8_t>(kNumPcrs)};
  bogus_selection.resize(40, 0);
  bogus_selection[1] = static_cast<std::uint8_t>(kNumPcrs);  // bad pcr index
  EXPECT_FALSE(tpm_->unseal_pcrs(bogus_selection).ok());
}

TEST_F(TpmTest, NoLegacyHosting) {
  EXPECT_EQ(tpm_->create_domain(test::legacy_spec("os")).error(),
            Errc::not_supported);
}

TEST_F(TpmTest, ComponentsMustFitChipMemory) {
  EXPECT_FALSE(tpm_->create_domain(tc_spec("huge", 9)).ok());
  EXPECT_TRUE(tpm_->create_domain(tc_spec("small", 8)).ok());
}

TEST_F(TpmTest, LateLaunchSerializesComponents) {
  // Flicker: mutually isolated components "cannot run concurrently" —
  // switching the invocation target costs a full late launch and re-measures
  // into the DRTM PCR.
  auto pal_a = tpm_->create_domain(tc_spec("pal-a"));
  auto pal_b = tpm_->create_domain(tc_spec("pal-b"));
  auto caller = tpm_->create_domain(tc_spec("caller"));
  ASSERT_TRUE(pal_a.ok());
  ASSERT_TRUE(pal_b.ok());
  ASSERT_TRUE(caller.ok());

  auto chan_a = tpm_->create_channel(*caller, *pal_a);
  auto chan_b = tpm_->create_channel(*caller, *pal_b);
  ASSERT_TRUE(chan_a.ok());
  ASSERT_TRUE(chan_b.ok());
  const auto echo = [](const substrate::Invocation&) -> Result<Bytes> {
    return Bytes{};
  };
  ASSERT_TRUE(tpm_->set_handler(*pal_a, echo).ok());
  ASSERT_TRUE(tpm_->set_handler(*pal_b, echo).ok());

  ASSERT_TRUE(tpm_->call(*caller, *chan_a, to_bytes("x")).ok());
  EXPECT_EQ(tpm_->active_component(), *pal_a);
  const auto drtm_a = *tpm_->pcr_read(kDrtmPcr);

  // Same target again: no relaunch, PCR17 unchanged.
  const Cycles same_before = machine_->now();
  ASSERT_TRUE(tpm_->call(*caller, *chan_a, to_bytes("x")).ok());
  const Cycles same_cost = machine_->now() - same_before;
  EXPECT_EQ(*tpm_->pcr_read(kDrtmPcr), drtm_a);

  // Different target: late launch — measurably more expensive, new DRTM id.
  const Cycles switch_before = machine_->now();
  ASSERT_TRUE(tpm_->call(*caller, *chan_b, to_bytes("x")).ok());
  const Cycles switch_cost = machine_->now() - switch_before;
  EXPECT_EQ(tpm_->active_component(), *pal_b);
  EXPECT_NE(*tpm_->pcr_read(kDrtmPcr), drtm_a);
  EXPECT_GT(switch_cost, same_cost);
}

TEST_F(TpmTest, DrtmPcrReflectsActiveComponentIdentity) {
  auto pal = tpm_->create_domain(tc_spec("pal"));
  auto caller = tpm_->create_domain(tc_spec("caller"));
  ASSERT_TRUE(pal.ok());
  ASSERT_TRUE(caller.ok());
  auto chan = tpm_->create_channel(*caller, *pal);
  ASSERT_TRUE(chan.ok());
  ASSERT_TRUE(tpm_->set_handler(*pal, [](const substrate::Invocation&)
                                    -> Result<Bytes> { return Bytes{}; })
                  .ok());
  ASSERT_TRUE(tpm_->call(*caller, *chan, to_bytes("x")).ok());

  const crypto::Digest expected = crypto::Sha256::hash2(
      crypto::digest_view(crypto::Digest{}),
      crypto::digest_view(tc_spec("pal").image.measurement()));
  EXPECT_EQ(*tpm_->pcr_read(kDrtmPcr), expected);
}

TEST_F(TpmTest, EveryCommandIsExpensive) {
  const Cycles before = machine_->now();
  ASSERT_TRUE(tpm_->pcr_extend(3, crypto::Digest{}).ok());
  EXPECT_GE(machine_->now() - before, machine_->costs().tpm_command_base);
}

TEST_F(TpmTest, ComponentMemoryOnChip) {
  auto pal = tpm_->create_domain(tc_spec("pal", 1));
  ASSERT_TRUE(pal.ok());
  ASSERT_TRUE(tpm_->write_memory(*pal, *pal, 0, to_bytes("CHIP-SECRET")).ok());
  // The physical attacker scans ALL of DRAM and finds nothing: component
  // state lives inside the chip.
  hw::PhysicalAttacker attacker(*machine_);
  EXPECT_TRUE(
      attacker.scan(machine_->dram(), to_bytes("CHIP-SECRET")).empty());
}

}  // namespace
}  // namespace lateral::tpm
