// lateral::health — SLO watchdogs, sampling cycle-profiler, tamper-evident
// attested audit log (FIG16).
//
// The tamper matrix here is the contract: truncation, reordering, record
// mutation and a forged seal must each yield a *typed* rejection from
// verify_segment, on both attestation-bearing substrate families (SGX and
// TPM). The profiler's off position is pinned to cost exactly zero
// simulated cycles, and the SLO watchdog is driven end to end: a breach
// declared in the manifest measurably restarts the component through the
// Supervisor's existing machinery.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/attestation.h"
#include "core/composer.h"
#include "fleet/fleet_client.h"
#include "fleet/fleet_server.h"
#include "fleet/protocol.h"
#include "fleet/verification_cache.h"
#include "health/audit.h"
#include "health/profiler.h"
#include "health/slo.h"
#include "net/network.h"
#include "runtime/metrics.h"
#include "supervisor/supervisor.h"
#include "test_support.h"
#include "trace/exporter.h"

namespace lateral::health {
namespace {

// --- Audit chain: append, seal, pull, verify -------------------------------

struct AuditRig {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<substrate::IsolationSubstrate> substrate;
  substrate::DomainId auditor = 0;

  explicit AuditRig(const std::string& substrate_name) {
    machine = test::make_machine("audit-" + substrate_name);
    substrate = *test::shared_registry().create(substrate_name, *machine);
    auditor = *substrate->create_domain(test::tc_spec("auditor"));
  }

  AuditVerifyConfig verify_config() const {
    AuditVerifyConfig config;
    config.vendor_root = test::shared_vendor().root_public_key();
    config.expected_measurement = test::tc_spec("auditor").image.measurement();
    return config;
  }
};

AuditSegment pulled_segment(AuditRig& rig, AuditLog& log,
                            std::uint64_t from_seq = 0) {
  auto segment = log.segment(from_seq, *rig.substrate, rig.auditor);
  EXPECT_TRUE(segment.ok());
  return *segment;
}

void fill(AuditLog& log, int n) {
  for (int i = 0; i < n; ++i)
    log.append(AuditKind::ticket_rejected, "meter-" + std::to_string(i),
               Errc::ticket_replayed, "resume");
}

TEST(AuditChain, AppendExtendsChainAndSequencesDensely) {
  AuditLog log;
  EXPECT_EQ(log.append(AuditKind::policy_violation, "ui", Errc::ok, "a"), 0u);
  EXPECT_EQ(log.append(AuditKind::redaction_denied, "ui", Errc::ok, "b"), 1u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records(1).size(), 1u);
  EXPECT_EQ(log.records(1).front().seq, 1u);
  EXPECT_NE(log.head(), crypto::Digest{});  // genesis left behind
}

TEST(AuditChain, SealEpochsAreMonotonicAndEmptySealWouldBlock) {
  auto machine = test::make_machine("audit-epochs");
  AuditLog log(machine.get());
  EXPECT_EQ(log.seal_epoch().error(), Errc::would_block);  // nothing to seal
  fill(log, 2);
  const auto first = log.seal_epoch();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(log.seal_epoch().error(), Errc::would_block);  // nothing new
  fill(log, 1);
  const auto second = log.seal_epoch();
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->epoch, first->epoch);
  EXPECT_EQ(second->first_seq, 2u);
  EXPECT_EQ(second->last_seq, 2u);
}

TEST(AuditChain, SegmentSerializationRoundTrips) {
  AuditRig rig("sgx");
  AuditLog log(rig.machine.get());
  fill(log, 4);
  const AuditSegment segment = pulled_segment(rig, log);
  const Bytes wire = segment.serialize();
  auto back = AuditSegment::deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->records, segment.records);
  EXPECT_EQ(back->seal, segment.seal);
  EXPECT_EQ(back->prev_head, segment.prev_head);
  EXPECT_TRUE(verify_segment(*back, rig.verify_config()).ok());

  // A truncated or padded wire is malformed, not silently accepted.
  const BytesView head(wire.data(), wire.size() - 1);
  EXPECT_FALSE(AuditSegment::deserialize(head).ok());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(AuditSegment::deserialize(padded).ok());
}

/// The FIG16 tamper matrix, run per substrate family: each manipulation an
/// attacker with full control of the stored log (but not the endorsement
/// key) could attempt, and the typed verdict it must earn.
void run_tamper_matrix(const std::string& substrate_name) {
  AuditRig rig(substrate_name);
  AuditLog log(rig.machine.get());
  fill(log, 6);
  const AuditSegment honest = pulled_segment(rig, log);
  const AuditVerifyConfig config = rig.verify_config();
  ASSERT_TRUE(verify_segment(honest, config).ok()) << substrate_name;

  {  // Truncation: drop the tail; the seal still claims the full range.
    AuditSegment tampered = honest;
    tampered.records.pop_back();
    EXPECT_EQ(verify_segment(tampered, config).error(), Errc::tamper_detected)
        << substrate_name << ": truncation";
  }
  {  // Reordering: swap two records; the sequence run breaks.
    AuditSegment tampered = honest;
    std::swap(tampered.records[1], tampered.records[2]);
    EXPECT_EQ(verify_segment(tampered, config).error(), Errc::tamper_detected)
        << substrate_name << ": reorder";
  }
  {  // Mutation: rewrite one record's content; the chain head diverges.
    AuditSegment tampered = honest;
    tampered.records[3].detail = "nothing happened here";
    EXPECT_EQ(verify_segment(tampered, config).error(), Errc::tamper_detected)
        << substrate_name << ": mutation";
  }
  {  // Forged seal: rewrite history AND recompute a consistent seal — the
     // chain now checks out, but the quote still binds the honest seal.
    AuditSegment tampered = honest;
    tampered.records[3].detail = "nothing happened here";
    crypto::Digest head = tampered.prev_head;
    for (const AuditRecord& record : tampered.records)
      head = crypto::Sha256::hash2(crypto::digest_view(head), record.encode());
    tampered.seal.head = head;
    EXPECT_EQ(verify_segment(tampered, config).error(),
              Errc::verification_failed)
        << substrate_name << ": forged seal";
  }
  {  // Replay: a validly sealed log from an epoch the verifier already saw.
    AuditVerifyConfig replay = config;
    replay.min_epoch = honest.seal.epoch;
    EXPECT_EQ(verify_segment(honest, replay).error(), Errc::tamper_detected)
        << substrate_name << ": epoch replay";
  }
  {  // Wrong device/code identity behind an otherwise valid quote.
    AuditVerifyConfig wrong = config;
    wrong.expected_measurement = test::tc_spec("impostor").image.measurement();
    EXPECT_EQ(verify_segment(honest, wrong).error(),
              Errc::verification_failed)
        << substrate_name << ": wrong measurement";
  }
}

TEST(AuditChain, TamperMatrixOnSgx) { run_tamper_matrix("sgx"); }
TEST(AuditChain, TamperMatrixOnTpm) { run_tamper_matrix("tpm"); }

TEST(AuditChain, IncrementalPullsChainAcrossSegments) {
  AuditRig rig("sgx");
  AuditLog log(rig.machine.get());
  fill(log, 3);
  const AuditSegment first = pulled_segment(rig, log);
  AuditVerifyConfig config = rig.verify_config();
  ASSERT_TRUE(verify_segment(first, config).ok());

  fill(log, 2);
  const AuditSegment second =
      pulled_segment(rig, log, first.seal.last_seq + 1);
  // The verifier resumes from its recorded high-water mark: next seq, last
  // chain head, last epoch. Anything the device dropped or rewound in
  // between becomes a typed failure.
  config.expected_first_seq = first.seal.last_seq + 1;
  config.expected_prev_head = first.seal.head;
  config.min_epoch = first.seal.epoch;
  EXPECT_TRUE(verify_segment(second, config).ok());
  EXPECT_EQ(second.records.size(), 2u);

  // A second pull that rewinds (replays already-verified records) fails the
  // first-seq check.
  const AuditSegment rewind = pulled_segment(rig, log, 0);
  EXPECT_EQ(verify_segment(rewind, config).error(), Errc::tamper_detected);
}

TEST(AuditChain, EmptyLogAndOutOfRangePullsAreTyped) {
  AuditRig rig("sgx");
  AuditLog log(rig.machine.get());
  EXPECT_EQ(log.segment(0, *rig.substrate, rig.auditor).error(),
            Errc::would_block);
  fill(log, 2);
  EXPECT_EQ(log.segment(7, *rig.substrate, rig.auditor).error(),
            Errc::invalid_argument);
}

// --- Sampling cycle-profiler ------------------------------------------------

struct ProfiledRig {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<substrate::IsolationSubstrate> substrate;
  substrate::DomainId client = 0, server = 0;
  substrate::ChannelId channel = 0;

  explicit ProfiledRig(const std::string& name) {
    machine = test::make_machine("prof-" + name);
    substrate = *test::shared_registry().create("microkernel", *machine);
    server = *substrate->create_domain(test::tc_spec("server"));
    client = *substrate->create_domain(test::tc_spec("client"));
    channel = *substrate->create_channel(client, server);
    (void)substrate->set_handler(
        server, [](const substrate::Invocation& inv) -> Result<Bytes> {
          return Bytes(inv.data.begin(), inv.data.end());
        });
  }

  Cycles run(int calls) {
    const Bytes data = to_bytes("ping");
    const Cycles before = machine->now();
    for (int i = 0; i < calls; ++i)
      (void)substrate->call(client, channel, data);
    return machine->now() - before;
  }
};

TEST(CycleProfiler, AttachedButDisabledChargesExactlyZero) {
  ProfiledRig plain("baseline");
  ProfiledRig profiled("attached");
  CycleProfiler profiler;  // default-off
  profiled.substrate->set_profiler(&profiler);

  EXPECT_EQ(plain.run(16), profiled.run(16));  // bit-exact, conformance pin
  EXPECT_EQ(profiler.samples_taken(), 0u);
}

TEST(CycleProfiler, SampledCrossingChargesOneStampBothPhasesRecorded) {
  ProfiledRig plain("baseline");
  ProfiledRig profiled("sampled");
  CycleProfiler profiler({.ring_capacity = 64, .sample_every = 1});
  profiler.set_enabled(true);
  profiled.substrate->set_profiler(&profiler);

  const int kCalls = 8;
  const Cycles baseline = plain.run(kCalls);
  const Cycles sampled = profiled.run(kCalls);
  // One sampling decision per crossing covers both directions; the stamp is
  // folded into the request-direction charge.
  EXPECT_EQ(sampled, baseline + kCalls * profiled.machine->costs().profile_stamp);

  const auto samples =
      profiler.snapshot(profiled.substrate.get(), profiled.server);
  ASSERT_EQ(samples.size(), static_cast<std::size_t>(2 * kCalls));
  EXPECT_EQ(samples[0].phase, ProfilePhase::request);
  EXPECT_EQ(samples[1].phase, ProfilePhase::reply);
  EXPECT_GT(samples[0].cycles, 0u);
}

TEST(CycleProfiler, ProfileSurvivesKillDomainUntilScrubbed) {
  ProfiledRig rig("postmortem");
  CycleProfiler profiler({.ring_capacity = 64, .sample_every = 1});
  profiler.set_enabled(true);
  rig.substrate->set_profiler(&profiler);
  rig.run(4);
  ASSERT_TRUE(rig.substrate->kill_domain(rig.server).ok());

  // The corpse's profile is still attributable: where the final cycles went.
  const auto samples = profiler.snapshot(rig.substrate.get(), rig.server);
  EXPECT_FALSE(samples.empty());
  const std::string collapsed = profiler.collapsed_stacks();
  EXPECT_NE(collapsed.find("server;request"), std::string::npos);
  EXPECT_NE(collapsed.find("server;reply"), std::string::npos);

  profiler.scrub(rig.substrate.get(), rig.server);
  EXPECT_TRUE(profiler.snapshot(rig.substrate.get(), rig.server).empty());
}

TEST(CycleProfiler, CollapsedStacksSplitShardsAndScaleBySamplingStride) {
  CycleProfiler profiler({.ring_capacity = 16, .sample_every = 4});
  const int owner = 0;
  profiler.sample(&owner, 1, "imap#2", ProfilePhase::request, 100, 0);
  profiler.sample(&owner, 1, "imap#2", ProfilePhase::request, 50, 10);
  const std::string collapsed = profiler.collapsed_stacks();
  // Shard labels split into component;shard frames so a flame view groups
  // the sharded domain under one root; cycles scale by the stride (the
  // sampling estimate of the true total): (100 + 50) * 4.
  EXPECT_NE(collapsed.find("imap;shard#2;request 600"), std::string::npos);
}

// --- SLO watchdogs ----------------------------------------------------------

struct SloHarness {
  std::unique_ptr<hw::Machine> machine = test::make_machine("slo");
  runtime::MetricsHub hub;
  AuditLog audit;
  HealthMonitor monitor{{.hub = &hub,
                         .clock = machine.get(),
                         .assembly = nullptr,
                         .audit = &audit,
                         .label = "health"}};

  /// One watchdog tick after `advance` cycles of traffic: `good` completed
  /// calls, `bad` rejections, each completed call at `latency` cycles.
  std::vector<HealthEvent> drive(Cycles advance, std::uint64_t good,
                                 std::uint64_t bad, Cycles latency = 10) {
    machine->advance(advance);
    auto svc = hub.counters("svc");
    svc->submitted += good;
    svc->completed += good;
    svc->rejected += bad;
    for (std::uint64_t i = 0; i < good; ++i) svc->record_latency(latency);
    return monitor.tick();
  }
};

TEST(HealthMonitor, SustainedErrorRateBreachIsConfirmedOnce) {
  SloHarness harness;
  core::SloPolicy policy;
  policy.error_permille = 50;
  policy.window_cycles = 10'000;
  policy.burn_windows = 4;
  harness.monitor.watch("svc", policy);

  for (int i = 0; i < 64; ++i)
    EXPECT_TRUE(harness.drive(1'000, 100, 0).empty());  // healthy warm-up

  std::vector<HealthEvent> confirmed;
  for (int i = 0; i < 64 && confirmed.empty(); ++i) {
    auto events = harness.drive(1'000, 90, 10);  // ~9% > the 5% objective
    confirmed.insert(confirmed.end(), events.begin(), events.end());
  }
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].kind, HealthEvent::Kind::error_rate_breach);
  EXPECT_EQ(confirmed[0].component, "svc");
  EXPECT_GT(confirmed[0].observed, 50u);
  EXPECT_EQ(confirmed[0].limit, 50u);

  const auto stats = harness.monitor.stats();
  EXPECT_EQ(stats.error_breaches, 1u);
  EXPECT_GT(stats.mean_detect_cycles(), 0u);
  // The breach is evidence: it landed in the audit log, typed.
  ASSERT_EQ(harness.audit.size(), 1u);
  EXPECT_EQ(harness.audit.records()[0].kind, AuditKind::slo_breach);
  EXPECT_EQ(harness.audit.records()[0].component, "svc");
}

TEST(HealthMonitor, TransientSpikeBurnsShortWindowOnlyAndStaysQuiet) {
  SloHarness harness;
  core::SloPolicy policy;
  policy.error_permille = 50;
  policy.window_cycles = 10'000;
  policy.burn_windows = 8;  // long window: 80k cycles
  harness.monitor.watch("svc", policy);

  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(harness.drive(1'000, 100, 0).empty());
  // A 5-tick blip (half the short window) then recovery: the long window
  // never goes bad, so the multi-window rule keeps the pager quiet.
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(harness.drive(1'000, 50, 50).empty());
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(harness.drive(1'000, 100, 0).empty());
  EXPECT_EQ(harness.monitor.stats().error_breaches, 0u);
  EXPECT_EQ(harness.audit.size(), 0u);
}

TEST(HealthMonitor, P99RegressionBreachesLatencyObjective) {
  SloHarness harness;
  core::SloPolicy policy;
  policy.p99_cycles = 100;       // objective: p99 under 100 cycles
  policy.error_permille = 1000;  // error objective disabled
  policy.window_cycles = 10'000;
  policy.burn_windows = 4;
  harness.monitor.watch("svc", policy);

  for (int i = 0; i < 64; ++i)
    EXPECT_TRUE(harness.drive(1'000, 100, 0, /*latency=*/20).empty());

  std::vector<HealthEvent> confirmed;
  for (int i = 0; i < 64 && confirmed.empty(); ++i) {
    auto events = harness.drive(1'000, 100, 0, /*latency=*/500);
    confirmed.insert(confirmed.end(), events.begin(), events.end());
  }
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].kind, HealthEvent::Kind::p99_breach);
  EXPECT_GT(confirmed[0].observed, 100u);
  EXPECT_EQ(harness.monitor.stats().p99_breaches, 1u);
}

// --- SLO breach -> supervised restart, end to end ---------------------------

constexpr const char* kSloManifest = R"(
component front {
  substrate microkernel
  channel worker
}
component worker {
  substrate microkernel
  channel front
  restart {
    max 4
    backoff 512
    escalate degraded
  }
  slo {
    error_rate 50
    window 10000
    burn_windows 4
    restart
  }
}
)";

TEST(HealthMonitor, ManifestSloBreachRestartsComponentThroughSupervisor) {
  auto machine = test::make_machine("slo-e2e");
  auto mk = *test::shared_registry().create("microkernel", *machine);
  core::SystemComposer composer({{"microkernel", mk.get()}});
  auto manifests = core::parse_manifests(kSloManifest);
  ASSERT_TRUE(manifests.ok());
  auto assembly = composer.compose(*manifests);
  ASSERT_TRUE(assembly.ok());
  (void)(*assembly)->set_behavior(
      "worker", [](const substrate::Invocation& inv) -> Result<Bytes> {
        return Bytes(inv.data.begin(), inv.data.end());
      });

  supervisor::Supervisor sup(**assembly);
  ASSERT_TRUE(sup.watch_all().ok());

  runtime::MetricsHub hub;
  AuditLog audit(machine.get());
  HealthMonitor monitor({.hub = &hub,
                         .clock = machine.get(),
                         .assembly = assembly->get(),
                         .audit = &audit,
                         .label = "health"});
  monitor.watch_all(**assembly);
  ASSERT_EQ(monitor.watched(), 1u);  // only worker declared an slo stanza

  // The watchdog reads the counters the component publishes under its own
  // name; drive a sustained error-rate violation through them.
  auto worker = hub.counters("worker");
  bool escalated = false;
  for (int i = 0; i < 200 && !escalated; ++i) {
    machine->advance(1'000);
    worker->submitted += 90;
    worker->completed += 90;
    worker->rejected += 10;
    for (const HealthEvent& event : monitor.tick())
      escalated = escalated || event.kind == HealthEvent::Kind::escalated;
    (void)sup.tick();
  }
  ASSERT_TRUE(escalated);

  // The monitor killed the domain; the supervisor's heartbeat/backoff
  // machinery owns everything from there: detect, relaunch, re-measure.
  for (int i = 0; i < 32; ++i) {
    machine->advance(1'024);
    (void)sup.tick();
    if (*sup.health("worker") == supervisor::Health::running &&
        *sup.restarts_of("worker") >= 1)
      break;
  }
  EXPECT_GE(*sup.restarts_of("worker"), 1u);
  EXPECT_EQ(*sup.health("worker"), supervisor::Health::running);
  EXPECT_GE(monitor.stats().escalations, 1u);

  // The incident reads back from the audit log: breach, then escalation.
  const auto records = audit.records();
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records[0].kind, AuditKind::slo_breach);
  EXPECT_EQ(records[1].kind, AuditKind::escalation);
  EXPECT_EQ(records[1].component, "worker");

  // The restarted incarnation is in cooldown: the still-bad counters must
  // not instantly re-kill it before a full long window elapses.
  const auto escalations = monitor.stats().escalations;
  machine->advance(1'000);
  worker->rejected += 100;
  (void)monitor.tick();
  EXPECT_EQ(monitor.stats().escalations, escalations);
}

TEST(HealthMonitor, HealthStatsRenderInObservabilityDump) {
  SloHarness harness;
  core::SloPolicy policy;
  policy.error_permille = 50;
  harness.monitor.watch("svc", policy);
  (void)harness.drive(1'000, 10, 0);

  std::ostringstream out;
  trace::render_metrics_text(out, harness.hub);
  EXPECT_NE(out.str().find("health (health): evaluations=1"),
            std::string::npos);
}

TEST(AuditIntegration, UndeclaredInvokeIsRefusedAndAudited) {
  auto machine = test::make_machine("pola-audit");
  auto mk = *test::shared_registry().create("microkernel", *machine);
  core::SystemComposer composer({{"microkernel", mk.get()}});
  auto manifests = core::parse_manifests(
      "component a {\n  substrate microkernel\n}\n"
      "component b {\n  substrate microkernel\n}\n");
  ASSERT_TRUE(manifests.ok());
  auto assembly = composer.compose(*manifests);
  ASSERT_TRUE(assembly.ok());

  // The POLA refusal itself predates this PR; what is new is that the
  // refusal leaves evidence.
  AuditLog audit;
  (*assembly)->set_audit(&audit);
  EXPECT_EQ((*assembly)->invoke("a", "b", to_bytes("x")).error(),
            Errc::policy_violation);
  ASSERT_EQ(audit.size(), 1u);
  EXPECT_EQ(audit.records()[0].kind, AuditKind::policy_violation);
  EXPECT_EQ(audit.records()[0].component, "a");
  EXPECT_EQ(audit.records()[0].detail, "a->b");
}

// --- Fleet integration: attested scrape and audit pull ----------------------

class FleetHealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_machine_ = test::make_machine("health-utility");
    sgx_ = *test::shared_registry().create("sgx", *server_machine_);
    anonymizer_ = *sgx_->create_domain(test::tc_spec("anonymizer"));
    frontend_ = *sgx_->create_domain(test::tc_spec("frontend"));
    channel_ = *sgx_->create_channel(frontend_, anonymizer_);
    ASSERT_TRUE(sgx_
                    ->set_handler(anonymizer_,
                                  [](const substrate::Invocation& inv)
                                      -> Result<Bytes> {
                                    return Bytes(inv.data.begin(),
                                                 inv.data.end());
                                  })
                    .ok());
    meter_machine_ = test::make_machine("health-meter");
    tz_ = *test::shared_registry().create("trustzone", *meter_machine_);
    metering_ = *tz_->create_domain(test::tc_spec("metering"));
    meter_verifier_ =
        std::make_unique<core::AttestationVerifier>(to_bytes("mv"));
    meter_verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    meter_verifier_->expect_measurement(
        "anonymizer", test::tc_spec("anonymizer").image.measurement());
    utility_verifier_ = std::make_unique<fleet::CachedVerifier>(
        to_bytes("uv"), fleet::CacheConfig{.capacity = 16,
                                           .ttl = 100'000'000,
                                           .clock = server_machine_.get()});
    utility_verifier_->add_trusted_root(
        test::shared_vendor().root_public_key());
    utility_verifier_->expect_measurement(
        "metering", test::tc_spec("metering").image.measurement());
    ASSERT_TRUE(network_.register_endpoint("utility").ok());
    audit_ = std::make_unique<AuditLog>(server_machine_.get());
  }

  fleet::FleetServerConfig server_config() {
    fleet::FleetServerConfig config;
    config.endpoint = "utility";
    config.network = &network_;
    config.substrate = sgx_.get();
    config.service_domain = anonymizer_;
    config.frontend_domain = frontend_;
    config.service_channel = channel_;
    config.verifier = utility_verifier_.get();
    config.expected_client = "metering";
    config.hub = &hub_;
    config.label = "fleet.utility";
    config.audit = audit_.get();
    config.scrape_source = [this] {
      std::ostringstream out;
      trace::render_metrics_text(out, hub_);
      return out.str();
    };
    return config;
  }

  fleet::FleetClient make_client(const std::string& name,
                                 fleet::FleetServer& server) {
    fleet::FleetClientConfig config;
    config.endpoint = name;
    config.server_endpoint = "utility";
    config.network = &network_;
    config.prover = net::ProverConfig{tz_.get(), metering_};
    config.verifier = net::VerifierConfig{meter_verifier_.get(), "anonymizer"};
    config.drive = [&server] { (void)server.pump(); };
    return fleet::FleetClient(std::move(config));
  }

  std::unique_ptr<hw::Machine> server_machine_, meter_machine_;
  std::unique_ptr<substrate::IsolationSubstrate> sgx_, tz_;
  substrate::DomainId anonymizer_ = 0, frontend_ = 0, metering_ = 0;
  substrate::ChannelId channel_ = 0;
  std::unique_ptr<core::AttestationVerifier> meter_verifier_;
  std::unique_ptr<fleet::CachedVerifier> utility_verifier_;
  std::unique_ptr<AuditLog> audit_;
  net::SimNetwork network_;
  runtime::MetricsHub hub_;
};

TEST_F(FleetHealthTest, ScrapeServesMetricsOverSealedSessionOnly) {
  fleet::FleetServer server(server_config());
  fleet::FleetClient meter = make_client("operator-1", server);
  ASSERT_TRUE(meter.connect().ok());

  auto text = meter.call("scrape", {});
  ASSERT_TRUE(text.ok());
  EXPECT_NE(to_string(*text).find("fleet.utility (fleet):"),
            std::string::npos);
  EXPECT_EQ(server.stats().scrapes, 1u);

  // The built-in names are reserved; applications cannot shadow them.
  EXPECT_EQ(server
                .register_method("scrape",
                                 [](BytesView) -> Result<Bytes> {
                                   return Bytes{};
                                 })
                .error(),
            Errc::invalid_argument);
  EXPECT_EQ(server
                .register_method("audit_pull",
                                 [](BytesView) -> Result<Bytes> {
                                   return Bytes{};
                                 })
                .error(),
            Errc::invalid_argument);
}

TEST_F(FleetHealthTest, AuditPullReturnsVerifiableSegment) {
  fleet::FleetServer server(server_config());
  fleet::FleetClient meter = make_client("operator-1", server);
  ASSERT_TRUE(meter.connect().ok());

  audit_->append(AuditKind::rollback_refused, "worker", Errc::rollback_refused,
                 "version 1 <= nv 3");
  audit_->append(AuditKind::ticket_rejected, "meter-7", Errc::ticket_expired,
                 "redeem");

  auto wire = meter.call("audit_pull", {});
  ASSERT_TRUE(wire.ok());
  auto segment = AuditSegment::deserialize(*wire);
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ(segment->records.size(), 2u);
  EXPECT_EQ(server.stats().audit_pulls, 1u);

  // The pull verifies against nothing but the vendor root and the service's
  // expected identity: the device attested its own audit history.
  AuditVerifyConfig config;
  config.vendor_root = test::shared_vendor().root_public_key();
  config.expected_measurement =
      test::tc_spec("anonymizer").image.measurement();
  EXPECT_TRUE(verify_segment(*segment, config).ok());

  // Incremental pull: 8-byte big-endian from_seq skips verified history.
  audit_->append(AuditKind::session_tamper, "meter-9",
                 Errc::verification_failed, "open_record");
  Bytes from_seq(8, 0);
  from_seq[7] = 2;
  auto next = meter.call("audit_pull", from_seq);
  ASSERT_TRUE(next.ok());
  auto tail = AuditSegment::deserialize(*next);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->records.size(), 1u);
  EXPECT_EQ(tail->records[0].kind, AuditKind::session_tamper);
  config.expected_first_seq = 2;
  config.expected_prev_head = segment->seal.head;
  config.min_epoch = segment->seal.epoch;
  EXPECT_TRUE(verify_segment(*tail, config).ok());
}

TEST_F(FleetHealthTest, TamperedRecordLandsInAuditLog) {
  fleet::FleetServer server(server_config());
  fleet::FleetClient meter = make_client("operator-1", server);
  ASSERT_TRUE(meter.connect().ok());

  // A garbage record frame from the session's peer: open_record fails, the
  // session drops, and the incident is written down as evidence.
  (void)network_.send("operator-1", "utility",
                      fleet::frame(fleet::FrameKind::record,
                                   to_bytes("not a sealed record")));
  (void)server.pump();
  EXPECT_EQ(server.sessions(), 0u);
  const auto records = audit_->records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, AuditKind::session_tamper);
  EXPECT_EQ(records[0].component, "operator-1");
  EXPECT_EQ(records[0].errc, Errc::verification_failed);
}

}  // namespace
}  // namespace lateral::health
