// Bignum arithmetic: identities, division properties, modular arithmetic,
// primality. Property sweeps use randomized operands checked against
// algebraic invariants rather than fixed expected values.
#include <gtest/gtest.h>

#include "crypto/bignum.h"
#include "crypto/hmac.h"
#include "util/rng.h"

namespace lateral::crypto {
namespace {

Bignum rand_bignum(util::Xoshiro& rng, std::size_t max_bytes) {
  return Bignum::from_bytes(rng.bytes(1 + rng.below(max_bytes)));
}

TEST(Bignum, ZeroProperties) {
  const Bignum zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_odd());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_bytes().size(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
}

TEST(Bignum, FromUint64) {
  EXPECT_EQ(Bignum(0x1234).to_hex(), "1234");
  EXPECT_EQ(Bignum(0xFFFFFFFFFFFFFFFFULL).to_hex(), "ffffffffffffffff");
  EXPECT_EQ(Bignum(1).bit_length(), 1u);
  EXPECT_EQ(Bignum(0x100).bit_length(), 9u);
}

TEST(Bignum, BytesRoundTrip) {
  util::Xoshiro rng(1);
  for (int i = 0; i < 50; ++i) {
    Bytes raw = rng.bytes(1 + rng.below(40));
    raw[0] |= 1;  // avoid leading zero ambiguity
    const Bignum n = Bignum::from_bytes(raw);
    EXPECT_EQ(n.to_bytes(), raw);
  }
}

TEST(Bignum, LeadingZerosCanonicalized) {
  const Bytes padded = {0x00, 0x00, 0x12, 0x34};
  EXPECT_EQ(Bignum::from_bytes(padded), Bignum(0x1234));
}

TEST(Bignum, HexRoundTrip) {
  auto n = Bignum::from_hex("deadbeefcafebabe0123456789abcdef");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->to_hex(), "deadbeefcafebabe0123456789abcdef");
}

TEST(Bignum, HexRejectsGarbage) {
  EXPECT_FALSE(Bignum::from_hex("xyz").ok());
}

TEST(Bignum, PaddedBytes) {
  auto padded = Bignum(0x1234).to_bytes_padded(4);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(*padded, (Bytes{0x00, 0x00, 0x12, 0x34}));
  EXPECT_FALSE(Bignum(0x123456).to_bytes_padded(2).ok());
}

TEST(Bignum, Comparisons) {
  EXPECT_LT(Bignum(3), Bignum(5));
  EXPECT_GT(Bignum(1) << 64, Bignum(0xFFFFFFFFFFFFFFFFULL));
  EXPECT_EQ(Bignum(7), Bignum(7));
}

TEST(Bignum, AdditionCarries) {
  const Bignum max32(0xFFFFFFFFULL);
  EXPECT_EQ(max32 + Bignum(1), Bignum(0x100000000ULL));
  const Bignum big = (Bignum(1) << 128) - Bignum(1);
  EXPECT_EQ((big + Bignum(1)).bit_length(), 129u);
}

TEST(Bignum, SubtractionBorrows) {
  EXPECT_EQ(Bignum(0x100000000ULL) - Bignum(1), Bignum(0xFFFFFFFFULL));
  EXPECT_EQ(Bignum(5) - Bignum(5), Bignum());
  EXPECT_THROW(Bignum(3) - Bignum(4), Error);
}

TEST(Bignum, MultiplicationKnown) {
  EXPECT_EQ(Bignum(0xFFFFFFFFULL) * Bignum(0xFFFFFFFFULL),
            Bignum(0xFFFFFFFE00000001ULL));
  EXPECT_EQ(Bignum(12345) * Bignum(), Bignum());
}

TEST(Bignum, ShiftsInverse) {
  util::Xoshiro rng(2);
  for (int i = 0; i < 30; ++i) {
    const Bignum n = rand_bignum(rng, 24);
    const std::size_t shift = rng.below(100);
    EXPECT_EQ((n << shift) >> shift, n);
  }
}

TEST(Bignum, ShiftEqualsMultiplyByPowerOfTwo) {
  const Bignum n(0x1234567890ABCDEFULL);
  EXPECT_EQ(n << 5, n * Bignum(32));
}

TEST(Bignum, DivisionByZeroThrows) {
  EXPECT_THROW(Bignum(5).divmod(Bignum()), Error);
}

TEST(Bignum, DivModIdentityProperty) {
  // a == q*b + r with r < b, across random operand sizes (hits both the
  // single-limb fast path and Knuth D, including the add-back case space).
  util::Xoshiro rng(3);
  for (int i = 0; i < 300; ++i) {
    const Bignum a = rand_bignum(rng, 32);
    Bignum b = rand_bignum(rng, 16);
    if (b.is_zero()) b = Bignum(1);
    const auto [q, r] = a.divmod(b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(Bignum, DivModSmallDivisorFastPath) {
  const Bignum a = (Bignum(1) << 100) + Bignum(12345);
  const auto [q, r] = a.divmod(Bignum(7));
  EXPECT_EQ(q * Bignum(7) + r, a);
  EXPECT_LT(r, Bignum(7));
}

TEST(Bignum, KnuthDAddBackCases) {
  // Crafted operands that drive Algorithm D's rare "add back" correction
  // (q_hat estimated one too large). Classic trigger family: u with a
  // high limb pattern just below the divisor's leading limbs.
  struct Case {
    const char* u;
    const char* v;
  };
  const Case cases[] = {
      // Knuth's own add-back example family (base 2^32).
      {"7fffffff800000010000000000000000", "800000008000000200000005"},
      {"8000000000000000fffffffe00000000", "80000000ffffffff"},
      {"00008000000000000000fffe00000000", "800000000000ffff"},
  };
  for (const Case& c : cases) {
    const auto u = *crypto::Bignum::from_hex(c.u);
    const auto v = *crypto::Bignum::from_hex(c.v);
    const auto [q, r] = u.divmod(v);
    EXPECT_LT(r, v) << c.u;
    EXPECT_EQ(q * v + r, u) << c.u;
  }
}

TEST(Bignum, DivisorWithManyEqualLimbs) {
  // Equal leading limbs stress the q_hat refinement loop.
  const auto u = *crypto::Bignum::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffff");
  const auto v = *crypto::Bignum::from_hex("ffffffffffffffffffffffff");
  const auto [q, r] = u.divmod(v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(Bignum, ModOperator) {
  EXPECT_EQ(Bignum(17) % Bignum(5), Bignum(2));
  EXPECT_EQ(Bignum(4) % Bignum(5), Bignum(4));
}

TEST(Bignum, MulModMatchesDirect) {
  util::Xoshiro rng(4);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = rand_bignum(rng, 16);
    const Bignum b = rand_bignum(rng, 16);
    Bignum m = rand_bignum(rng, 8);
    if (m.is_zero()) m = Bignum(97);
    EXPECT_EQ(a.mulmod(b, m), (a * b) % m);
  }
}

TEST(Bignum, PowModKnownValues) {
  EXPECT_EQ(Bignum(2).powmod(Bignum(10), Bignum(1000)), Bignum(24));
  EXPECT_EQ(Bignum(5).powmod(Bignum(117), Bignum(19)), Bignum(1));
  EXPECT_EQ(Bignum(7).powmod(Bignum(), Bignum(13)), Bignum(1));  // x^0 = 1
  EXPECT_EQ(Bignum(7).powmod(Bignum(5), Bignum(1)), Bignum());   // mod 1
}

TEST(Bignum, PowModFermat) {
  // a^(p-1) = 1 mod p for prime p and gcd(a,p)=1.
  const Bignum p(1000003);
  util::Xoshiro rng(5);
  for (int i = 0; i < 20; ++i) {
    const Bignum a(2 + rng.below(1000000));
    EXPECT_EQ(a.powmod(p - Bignum(1), p), Bignum(1));
  }
}

TEST(Bignum, GcdKnown) {
  EXPECT_EQ(Bignum::gcd(Bignum(48), Bignum(36)), Bignum(12));
  EXPECT_EQ(Bignum::gcd(Bignum(17), Bignum(13)), Bignum(1));
  EXPECT_EQ(Bignum::gcd(Bignum(0), Bignum(5)), Bignum(5));
}

TEST(Bignum, InvModProperty) {
  util::Xoshiro rng(6);
  const Bignum m(1000003);  // prime modulus: everything nonzero invertible
  for (int i = 0; i < 50; ++i) {
    const Bignum a(1 + rng.below(1000002));
    auto inv = a.invmod(m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(a.mulmod(*inv, m), Bignum(1));
  }
}

TEST(Bignum, InvModNonCoprimeFails) {
  EXPECT_FALSE(Bignum(6).invmod(Bignum(9)).ok());
  EXPECT_FALSE(Bignum(4).invmod(Bignum(8)).ok());
}

TEST(Bignum, MillerRabinKnownPrimes) {
  HmacDrbg drbg(to_bytes("mr"));
  for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 104729ULL, 2147483647ULL})
    EXPECT_TRUE(Bignum(p).is_probable_prime(drbg)) << p;
}

TEST(Bignum, MillerRabinKnownComposites) {
  HmacDrbg drbg(to_bytes("mr"));
  // Includes Carmichael numbers 561 and 1105 (Fermat-test killers).
  for (const std::uint64_t c : {1ULL, 4ULL, 561ULL, 1105ULL, 104730ULL,
                                2147483647ULL * 3})
    EXPECT_FALSE(Bignum(c).is_probable_prime(drbg)) << c;
}

TEST(Bignum, GeneratePrimeHasExactBitLength) {
  HmacDrbg drbg(to_bytes("prime-gen"));
  for (const std::size_t bits : {16u, 64u, 128u}) {
    const Bignum p = Bignum::generate_prime(drbg, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_probable_prime(drbg));
  }
}

TEST(Bignum, RandomBelowInRange) {
  HmacDrbg drbg(to_bytes("rb"));
  const Bignum bound(1000);
  for (int i = 0; i < 100; ++i)
    EXPECT_LT(Bignum::random_below(drbg, bound), bound);
}

TEST(Bignum, RandomBitsExactWidth) {
  HmacDrbg drbg(to_bytes("rbits"));
  for (const std::size_t bits : {1u, 8u, 9u, 31u, 32u, 33u, 257u})
    EXPECT_EQ(Bignum::random_bits(drbg, bits).bit_length(), bits);
}

TEST(Bignum, BitAccess) {
  const Bignum n(0b1010);
  EXPECT_FALSE(n.bit(0));
  EXPECT_TRUE(n.bit(1));
  EXPECT_FALSE(n.bit(2));
  EXPECT_TRUE(n.bit(3));
  EXPECT_FALSE(n.bit(100));
}

}  // namespace
}  // namespace lateral::crypto
