// RSA signature scheme: correctness, tamper rejection, serialization.
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/rsa.h"

namespace lateral::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  // Shared keypair: generation dominates test time, correctness tests can
  // reuse it.
  static const RsaKeyPair& keypair() {
    static const RsaKeyPair kp = [] {
      HmacDrbg drbg(to_bytes("rsa-test-keys"));
      return RsaKeyPair::generate(drbg, 512);
    }();
    return kp;
  }
};

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const Bytes sig = rsa_sign(keypair(), to_bytes("hello world"));
  EXPECT_TRUE(rsa_verify(keypair().pub, to_bytes("hello world"), sig).ok());
}

TEST_F(RsaTest, RejectsDifferentMessage) {
  const Bytes sig = rsa_sign(keypair(), to_bytes("message-a"));
  EXPECT_EQ(rsa_verify(keypair().pub, to_bytes("message-b"), sig).error(),
            Errc::verification_failed);
}

TEST_F(RsaTest, RejectsTamperedSignature) {
  Bytes sig = rsa_sign(keypair(), to_bytes("msg"));
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(keypair().pub, to_bytes("msg"), sig).ok());
}

TEST_F(RsaTest, RejectsTruncatedSignature) {
  Bytes sig = rsa_sign(keypair(), to_bytes("msg"));
  sig.pop_back();
  EXPECT_FALSE(rsa_verify(keypair().pub, to_bytes("msg"), sig).ok());
}

TEST_F(RsaTest, RejectsWrongKey) {
  HmacDrbg drbg(to_bytes("other-key"));
  const RsaKeyPair other = RsaKeyPair::generate(drbg, 512);
  const Bytes sig = rsa_sign(keypair(), to_bytes("msg"));
  EXPECT_FALSE(rsa_verify(other.pub, to_bytes("msg"), sig).ok());
}

TEST_F(RsaTest, SignatureWidthEqualsModulusWidth) {
  const Bytes sig = rsa_sign(keypair(), to_bytes("x"));
  EXPECT_EQ(sig.size(), (keypair().pub.n.bit_length() + 7) / 8);
}

TEST_F(RsaTest, EmptyMessageSignable) {
  const Bytes sig = rsa_sign(keypair(), {});
  EXPECT_TRUE(rsa_verify(keypair().pub, {}, sig).ok());
}

TEST_F(RsaTest, LargeMessageSignable) {
  const Bytes big(100'000, 0x42);
  const Bytes sig = rsa_sign(keypair(), big);
  EXPECT_TRUE(rsa_verify(keypair().pub, big, sig).ok());
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  auto parsed = RsaPublicKey::deserialize(keypair().pub.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, keypair().pub);
}

TEST_F(RsaTest, DeserializeRejectsTruncation) {
  Bytes wire = keypair().pub.serialize();
  wire.pop_back();
  EXPECT_FALSE(RsaPublicKey::deserialize(wire).ok());
}

TEST_F(RsaTest, DeserializeRejectsTrailingGarbage) {
  Bytes wire = keypair().pub.serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(RsaPublicKey::deserialize(wire).ok());
}

TEST_F(RsaTest, FingerprintStableAndDistinct) {
  EXPECT_EQ(keypair().pub.fingerprint(), keypair().pub.fingerprint());
  HmacDrbg drbg(to_bytes("fp-key"));
  const RsaKeyPair other = RsaKeyPair::generate(drbg, 512);
  EXPECT_NE(keypair().pub.fingerprint(), other.pub.fingerprint());
}

TEST_F(RsaTest, GenerationRejectsTinyModulus) {
  HmacDrbg drbg(to_bytes("tiny"));
  EXPECT_THROW(RsaKeyPair::generate(drbg, 128), Error);
}

TEST_F(RsaTest, DistinctKeysFromDistinctSeeds) {
  HmacDrbg a(to_bytes("seed-a")), b(to_bytes("seed-b"));
  EXPECT_NE(RsaKeyPair::generate(a, 512).pub,
            RsaKeyPair::generate(b, 512).pub);
}

TEST_F(RsaTest, DeterministicKeygenFromSeed) {
  HmacDrbg a(to_bytes("same-seed")), b(to_bytes("same-seed"));
  EXPECT_EQ(RsaKeyPair::generate(a, 512).pub,
            RsaKeyPair::generate(b, 512).pub);
}

}  // namespace
}  // namespace lateral::crypto
