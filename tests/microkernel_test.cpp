// Microkernel substrate specifics: address spaces over DRAM frames, the
// two-policy scheduler (covert-channel mitigation), IOMMU-guarded DMA, and
// what a physical attacker sees (plaintext — the substrate's documented
// limit).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hw/attacker.h"
#include "microkernel/microkernel.h"
#include "test_support.h"

namespace lateral::microkernel {
namespace {

using substrate::DomainId;
using test::tc_spec;

class MicrokernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("mk");
    kernel_ = std::make_unique<Microkernel>(*machine_,
                                            substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Microkernel> kernel_;
};

TEST_F(MicrokernelTest, FramesComeFromDram) {
  auto domain = kernel_->create_domain(tc_spec("d", 3));
  ASSERT_TRUE(domain.ok());
  auto frames = kernel_->domain_frames(*domain);
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 3u);
  for (const hw::PhysAddr frame : *frames) {
    EXPECT_GE(frame, machine_->dram().begin);
    EXPECT_LT(frame, machine_->dram().end);
  }
}

TEST_F(MicrokernelTest, FramesReclaimedOnDestroy) {
  auto d1 = kernel_->create_domain(tc_spec("d1", 4));
  ASSERT_TRUE(d1.ok());
  auto frames1 = kernel_->domain_frames(*d1);
  ASSERT_TRUE(frames1.ok());
  ASSERT_TRUE(kernel_->destroy_domain(*d1).ok());
  auto d2 = kernel_->create_domain(tc_spec("d2", 4));
  ASSERT_TRUE(d2.ok());
  auto frames2 = kernel_->domain_frames(*d2);
  ASSERT_TRUE(frames2.ok());
  EXPECT_EQ(*frames1, *frames2);  // first-fit reuses the hole
}

TEST_F(MicrokernelTest, PhysicalAttackerSeesPlaintext) {
  // §II-D: plain MMU isolation does not defend the memory bus. This is a
  // *feature test* of the model: the microkernel must NOT hide data from
  // the physical attacker, or the TAB1 matrix would lie.
  auto domain = kernel_->create_domain(tc_spec("victim", 1));
  ASSERT_TRUE(domain.ok());
  ASSERT_TRUE(kernel_
                  ->write_memory(*domain, *domain, 0,
                                 to_bytes("SECRET-IN-PLAINTEXT"))
                  .ok());
  hw::PhysicalAttacker attacker(*machine_);
  const auto hits =
      attacker.scan(machine_->dram(), to_bytes("SECRET-IN-PLAINTEXT"));
  EXPECT_FALSE(hits.empty());
}

TEST_F(MicrokernelTest, LegacyOsHosting) {
  // Paravirtualized legacy OS next to trusted components (L4Android style).
  auto legacy = kernel_->create_domain(test::legacy_spec("android", 16));
  ASSERT_TRUE(legacy.ok());
  auto tc = kernel_->create_domain(tc_spec("keystore"));
  ASSERT_TRUE(tc.ok());
  // Both run concurrently; the legacy OS cannot touch the component.
  EXPECT_EQ(kernel_->read_memory(*legacy, *tc, 0, 4).error(),
            Errc::access_denied);
}

TEST_F(MicrokernelTest, GrantDmaMapsOnlyOwnFrames) {
  auto driver = kernel_->create_domain(tc_spec("driver", 2));
  auto victim = kernel_->create_domain(tc_spec("victim", 2));
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(victim.ok());
  hw::Device nic = kernel_->make_device("nic");
  ASSERT_TRUE(kernel_->grant_dma(*driver, nic, /*writable=*/true).ok());

  auto driver_frames = kernel_->domain_frames(*driver);
  auto victim_frames = kernel_->domain_frames(*victim);
  ASSERT_TRUE(driver_frames.ok());
  ASSERT_TRUE(victim_frames.ok());

  // DMA into the driver's own buffer: allowed.
  EXPECT_TRUE(nic.dma_write((*driver_frames)[0], to_bytes("packet")).ok());
  // DMA into the victim: the IOMMU stops the malicious driver/device.
  EXPECT_EQ(nic.dma_write((*victim_frames)[0], to_bytes("pwn")).error(),
            Errc::access_denied);
}

TEST_F(MicrokernelTest, DmaAttackSucceedsWithIommuDisabled) {
  // The fig6 ablation case: no IOMMU -> any device overwrites anything.
  auto victim = kernel_->create_domain(tc_spec("victim", 1));
  ASSERT_TRUE(victim.ok());
  kernel_->iommu().set_mode(hw::Iommu::Mode::disabled);
  hw::Device rogue = kernel_->make_device("rogue");
  auto frames = kernel_->domain_frames(*victim);
  ASSERT_TRUE(frames.ok());
  EXPECT_TRUE(rogue.dma_write((*frames)[0], to_bytes("overwritten")).ok());
  auto read = kernel_->read_memory(*victim, *victim, 0, 11);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "overwritten");
}

TEST_F(MicrokernelTest, MemoryGrantSharesExactPages) {
  auto producer = kernel_->create_domain(tc_spec("producer", 4));
  auto consumer = kernel_->create_domain(tc_spec("consumer", 2));
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE(consumer.ok());

  // Without a grant: nothing.
  EXPECT_EQ(kernel_->read_granted(*consumer, *producer, 0, 16).error(),
            Errc::access_denied);

  // Grant page 1 read-only.
  ASSERT_TRUE(kernel_
                  ->grant_memory(*producer, *consumer, /*first_page=*/1,
                                 /*pages=*/1, /*writable=*/false)
                  .ok());
  ASSERT_TRUE(kernel_
                  ->write_memory(*producer, *producer, hw::kPageSize,
                                 to_bytes("shared-buffer"))
                  .ok());
  auto read = kernel_->read_granted(*consumer, *producer, hw::kPageSize, 13);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "shared-buffer");

  // The grant is exact: page 0 stays private, writes stay refused, and
  // a range straddling out of the grant fails.
  EXPECT_EQ(kernel_->read_granted(*consumer, *producer, 0, 8).error(),
            Errc::access_denied);
  EXPECT_EQ(kernel_
                ->write_granted(*consumer, *producer, hw::kPageSize,
                                to_bytes("x"))
                .error(),
            Errc::access_denied);
  EXPECT_EQ(kernel_
                ->read_granted(*consumer, *producer,
                               2 * hw::kPageSize - 4, 8)
                .error(),
            Errc::access_denied);
}

TEST_F(MicrokernelTest, WritableGrantAllowsSharedWrite) {
  auto a = kernel_->create_domain(tc_spec("a", 2));
  auto b = kernel_->create_domain(tc_spec("b", 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(kernel_->grant_memory(*a, *b, 0, 1, /*writable=*/true).ok());
  ASSERT_TRUE(
      kernel_->write_granted(*b, *a, 100, to_bytes("from-peer")).ok());
  auto read = kernel_->read_memory(*a, *a, 100, 9);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "from-peer");
}

TEST_F(MicrokernelTest, RevocationRemovesAccess) {
  auto a = kernel_->create_domain(tc_spec("a", 2));
  auto b = kernel_->create_domain(tc_spec("b", 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(kernel_->grant_memory(*a, *b, 0, 2, true).ok());
  ASSERT_TRUE(kernel_->read_granted(*b, *a, 0, 16).ok());
  ASSERT_TRUE(kernel_->revoke_memory(*a, *b).ok());
  EXPECT_EQ(kernel_->read_granted(*b, *a, 0, 16).error(),
            Errc::access_denied);
  EXPECT_FALSE(kernel_->revoke_memory(*a, *b).ok());  // nothing left
}

TEST_F(MicrokernelTest, GrantValidation) {
  auto a = kernel_->create_domain(tc_spec("a", 2));
  auto b = kernel_->create_domain(tc_spec("b", 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(kernel_->grant_memory(*a, *a, 0, 1, true).ok());   // self
  EXPECT_FALSE(kernel_->grant_memory(*a, *b, 0, 0, true).ok());   // empty
  EXPECT_FALSE(kernel_->grant_memory(*a, *b, 1, 2, true).ok());   // beyond
  EXPECT_FALSE(kernel_->grant_memory(*a, 999, 0, 1, true).ok());  // ghost
}

TEST_F(MicrokernelTest, GrantsDieWithEitherDomain) {
  auto a = kernel_->create_domain(tc_spec("a", 2));
  auto b = kernel_->create_domain(tc_spec("b", 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(kernel_->grant_memory(*a, *b, 0, 1, false).ok());
  ASSERT_TRUE(kernel_->destroy_domain(*a).ok());
  // A new domain may reuse a's frames; b must not retain a path to them.
  auto c = kernel_->create_domain(tc_spec("c", 2));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(kernel_->read_granted(*b, *c, 0, 16).error(),
            Errc::access_denied);
}

TEST(Scheduler, SharesRespectedUnderFullDemand) {
  Scheduler sched(SchedulingPolicy::fixed_partition);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.add_domain(2, 250).ok());
  ASSERT_TRUE(sched.add_domain(3, 250).ok());
  for (DomainId d : {1u, 2u, 3u}) ASSERT_TRUE(sched.set_demand(d, 1'000'000).ok());
  const auto grants = sched.run_epoch(100'000);
  EXPECT_EQ(grants.at(1), 50'000u);
  EXPECT_EQ(grants.at(2), 25'000u);
  EXPECT_EQ(grants.at(3), 25'000u);
}

TEST(Scheduler, WorkConservingDonatesSlack) {
  Scheduler sched(SchedulingPolicy::work_conserving);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.add_domain(2, 500).ok());
  ASSERT_TRUE(sched.set_demand(1, 10'000).ok());   // mostly idle
  ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());  // greedy
  const auto grants = sched.run_epoch(100'000);
  EXPECT_EQ(grants.at(1), 10'000u);
  EXPECT_EQ(grants.at(2), 90'000u);  // received domain 1's slack
}

TEST(Scheduler, FixedPartitionIdlesSlack) {
  Scheduler sched(SchedulingPolicy::fixed_partition);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.add_domain(2, 500).ok());
  ASSERT_TRUE(sched.set_demand(1, 10'000).ok());
  ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());
  const auto grants = sched.run_epoch(100'000);
  EXPECT_EQ(grants.at(1), 10'000u);
  EXPECT_EQ(grants.at(2), 50'000u);  // capped at its partition
}

TEST(Scheduler, CovertChannelExistsWhenWorkConserving) {
  // Sender signals a bit by yielding (0) or burning (1) its slice; the
  // receiver's grant varies with the sender's behaviour => readable bit.
  Scheduler sched(SchedulingPolicy::work_conserving);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());  // sender
  ASSERT_TRUE(sched.add_domain(2, 500).ok());  // receiver (always greedy)
  ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());

  ASSERT_TRUE(sched.set_demand(1, 0).ok());  // bit 0: yield
  const Cycles bit0 = sched.run_epoch(100'000).at(2);
  ASSERT_TRUE(sched.set_demand(1, 1'000'000).ok());  // bit 1: burn
  const Cycles bit1 = sched.run_epoch(100'000).at(2);
  EXPECT_NE(bit0, bit1);  // the channel is wide open
  EXPECT_GT(bit0, bit1);
}

TEST(Scheduler, CovertChannelClosedByFixedPartitions) {
  Scheduler sched(SchedulingPolicy::fixed_partition);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.add_domain(2, 500).ok());
  ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());

  ASSERT_TRUE(sched.set_demand(1, 0).ok());
  const Cycles bit0 = sched.run_epoch(100'000).at(2);
  ASSERT_TRUE(sched.set_demand(1, 1'000'000).ok());
  const Cycles bit1 = sched.run_epoch(100'000).at(2);
  EXPECT_EQ(bit0, bit1);  // receiver cannot observe the sender at all
}

TEST(Scheduler, RemoveDomainStopsScheduling) {
  Scheduler sched(SchedulingPolicy::work_conserving);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.remove_domain(1).ok());
  EXPECT_FALSE(sched.set_demand(1, 100).ok());
  EXPECT_TRUE(sched.run_epoch(1000).empty());
}

TEST(Scheduler, ZeroShareRejected) {
  Scheduler sched(SchedulingPolicy::work_conserving);
  EXPECT_FALSE(sched.add_domain(1, 0).ok());
}

TEST(Scheduler, RoundRobinPlacementAndAffinity) {
  Scheduler sched(SchedulingPolicy::work_conserving, 2);
  EXPECT_EQ(sched.core_count(), 2u);
  ASSERT_TRUE(sched.add_domain(1, 100).ok());
  ASSERT_TRUE(sched.add_domain(2, 100).ok());
  ASSERT_TRUE(sched.add_domain(3, 100).ok());
  EXPECT_EQ(*sched.core_of(1), 0u);  // deterministic round-robin homes
  EXPECT_EQ(*sched.core_of(2), 1u);
  EXPECT_EQ(*sched.core_of(3), 0u);
  ASSERT_TRUE(sched.set_affinity(3, 1).ok());
  EXPECT_EQ(*sched.core_of(3), 1u);
  EXPECT_FALSE(sched.set_affinity(3, 2).ok());  // no such core
  EXPECT_FALSE(sched.set_affinity(9, 0).ok());  // no such domain
}

TEST(Scheduler, IdleBalanceMigratesHungriestDomain) {
  Scheduler sched(SchedulingPolicy::work_conserving, 2);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());  // core 0, mostly idle
  ASSERT_TRUE(sched.add_domain(2, 500).ok());  // core 1, greedy
  ASSERT_TRUE(sched.set_demand(1, 10'000).ok());
  ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());
  const auto grants = sched.run_epoch(100'000);
  // Domain 2 exhausted its own core's epoch, then idle balancing pulled it
  // to core 0 and granted it the slack there too (an IPI kick).
  EXPECT_EQ(grants.at(1), 10'000u);
  EXPECT_EQ(grants.at(2), 190'000u);
  EXPECT_EQ(*sched.core_of(2), 0u);  // the migration moved its home
  EXPECT_EQ(sched.smp_stats().migrations, 1u);
  EXPECT_EQ(sched.smp_stats().ipi_kicks, 1u);
}

TEST(Scheduler, PinnedDomainIsNeverMigrated) {
  Scheduler sched(SchedulingPolicy::work_conserving, 2);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.add_domain(2, 500).ok());
  ASSERT_TRUE(sched.set_affinity(2, 1).ok());
  ASSERT_TRUE(sched.set_demand(1, 10'000).ok());
  ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());
  const auto grants = sched.run_epoch(100'000);
  EXPECT_EQ(grants.at(2), 100'000u);  // capped at its own core's epoch
  EXPECT_EQ(*sched.core_of(2), 1u);
  EXPECT_EQ(sched.smp_stats().migrations, 0u);
}

TEST(Scheduler, FixedPartitionNeverMigratesAcrossCores) {
  // Cross-core donation would reopen the covert channel the policy closes:
  // a sender could signal by yielding its core's time to a receiver homed
  // elsewhere. Partitions are strictly per-core.
  Scheduler sched(SchedulingPolicy::fixed_partition, 2);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.add_domain(2, 500).ok());
  ASSERT_TRUE(sched.set_demand(1, 0).ok());  // core 0 fully idle
  ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());
  const auto grants = sched.run_epoch(100'000);
  EXPECT_EQ(grants.at(2), 100'000u);
  EXPECT_EQ(*sched.core_of(2), 1u);
  EXPECT_EQ(sched.smp_stats().migrations, 0u);
  EXPECT_EQ(sched.smp_stats().ipi_kicks, 0u);
}

TEST(Scheduler, CoreTimeIsMonotone) {
  Scheduler sched(SchedulingPolicy::work_conserving, 2);
  ASSERT_TRUE(sched.add_domain(1, 500).ok());
  ASSERT_TRUE(sched.add_domain(2, 500).ok());
  Cycles last0 = 0;
  Cycles last1 = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sched.set_demand(1, i % 3 == 0 ? 0 : 50'000).ok());
    ASSERT_TRUE(sched.set_demand(2, 1'000'000).ok());
    (void)sched.run_epoch(100'000);
    EXPECT_GE(sched.core_time(0), last0);
    EXPECT_GE(sched.core_time(1), last1);
    last0 = sched.core_time(0);
    last1 = sched.core_time(1);
  }
  EXPECT_GT(last0 + last1, 0u);
}

TEST(Scheduler, ThreadSafeUnderConcurrentEpochs) {
  // TSan pin: demands, epochs and stat reads race from worker threads the
  // way executor workers and a supervisor would drive one kernel instance.
  Scheduler sched(SchedulingPolicy::work_conserving, 4);
  for (DomainId d = 1; d <= 8; ++d)
    ASSERT_TRUE(sched.add_domain(d, 100).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sched, t] {
      Cycles last = 0;
      for (int i = 0; i < 50; ++i) {
        (void)sched.set_demand(1 + (t + i) % 8, 1'000 * (i + 1));
        (void)sched.run_epoch(10'000);
        (void)sched.core_of(1 + i % 8);
        (void)sched.smp_stats();
        const Cycles seen = sched.core_time(static_cast<std::size_t>(t));
        EXPECT_GE(seen, last);  // monotone even under the races
        last = seen;
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST_F(MicrokernelTest, SchedulerSizedToMachineCores) {
  auto machine = test::make_smp_machine(4, "mk-smp");
  Microkernel kernel(*machine, substrate::SubstrateConfig{});
  EXPECT_EQ(kernel.scheduler().core_count(), 4u);
  EXPECT_EQ(kernel_->scheduler().core_count(), 1u);  // default machine
}

TEST(Scheduler, CovertMitigationReflectedInFeatures) {
  auto machine = test::make_machine("mk-feat");
  Microkernel partitioned(*machine, substrate::SubstrateConfig{},
                          SchedulingPolicy::fixed_partition);
  EXPECT_TRUE(has_feature(partitioned.info().features,
                          substrate::Feature::covert_channel_mitigation));
  auto machine2 = test::make_machine("mk-feat2");
  Microkernel shared(*machine2, substrate::SubstrateConfig{},
                     SchedulingPolicy::work_conserving);
  EXPECT_FALSE(has_feature(shared.info().features,
                           substrate::Feature::covert_channel_mitigation));
}

}  // namespace
}  // namespace lateral::microkernel
