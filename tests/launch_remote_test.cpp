// Boot-chain orchestration (core/launch) and remote component invocation
// (net/remote).
#include <gtest/gtest.h>

#include "core/launch.h"
#include "net/federation.h"
#include "net/network.h"
#include "net/remote.h"
#include "test_support.h"

namespace lateral {
namespace {

// ---------------------------------------------------------------------------
// Boot chains.
class BootChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto::HmacDrbg drbg(to_bytes("owner"));
    owner_ = crypto::RsaKeyPair::generate(drbg, 512);
    stages_ = {make_stage("bootloader"), make_stage("kernel"),
               make_stage("system-services")};
  }

  core::BootStage make_stage(const std::string& name) {
    core::BootStage stage;
    stage.name = name;
    stage.image = {name, to_bytes("code-of-" + name)};
    stage.signature = crypto::rsa_sign(owner_, stage.image.code);
    return stage;
  }

  crypto::RsaKeyPair owner_;
  std::vector<core::BootStage> stages_;
};

TEST_F(BootChainTest, SecureBootRunsFullySignedChain) {
  const core::BootOutcome outcome = core::run_secure_boot(owner_.pub, stages_);
  EXPECT_TRUE(outcome.booted);
  EXPECT_EQ(outcome.stages_run, 3u);
  EXPECT_EQ(outcome.log.size(), 3u);
  EXPECT_TRUE(outcome.refusal.empty());
}

TEST_F(BootChainTest, SecureBootHaltsAtFirstBadStage) {
  // The evil maid swaps the kernel.
  stages_[1].image.code = to_bytes("code-of-kernel-with-backdoor");
  const core::BootOutcome outcome = core::run_secure_boot(owner_.pub, stages_);
  EXPECT_FALSE(outcome.booted);
  EXPECT_EQ(outcome.stages_run, 1u);  // only the boot loader ran
  EXPECT_NE(outcome.refusal.find("kernel"), std::string::npos);
}

TEST_F(BootChainTest, SecureBootRejectsResignedByOtherKey) {
  crypto::HmacDrbg drbg(to_bytes("attacker"));
  const crypto::RsaKeyPair attacker = crypto::RsaKeyPair::generate(drbg, 512);
  stages_[2].image.code = to_bytes("payload");
  stages_[2].signature = crypto::rsa_sign(attacker, stages_[2].image.code);
  const core::BootOutcome outcome = core::run_secure_boot(owner_.pub, stages_);
  EXPECT_FALSE(outcome.booted);
  EXPECT_EQ(outcome.stages_run, 2u);
}

TEST_F(BootChainTest, AuthenticatedBootNeverRefuses) {
  // Strip every signature; the open platform still boots.
  for (auto& stage : stages_) stage.signature.clear();
  tpm::PcrBank pcrs;
  const core::BootOutcome outcome =
      core::run_authenticated_boot(pcrs, 4, stages_);
  EXPECT_TRUE(outcome.booted);
  EXPECT_EQ(outcome.stages_run, 3u);
  // ...but the log faithfully records what ran.
  EXPECT_EQ(*pcrs.read(4), core::expected_pcr_after_boot(stages_));
}

TEST_F(BootChainTest, AuthenticatedBootLogRevealsSubstitution) {
  tpm::PcrBank honest, tampered;
  (void)core::run_authenticated_boot(honest, 4, stages_);
  auto evil = stages_;
  evil[1].image.code = to_bytes("code-of-kernel-with-rootkit");
  (void)core::run_authenticated_boot(tampered, 4, evil);
  EXPECT_NE(*honest.read(4), *tampered.read(4));
  // A verifier who knows the good chain can tell exactly.
  EXPECT_EQ(*honest.read(4), core::expected_pcr_after_boot(stages_));
  EXPECT_NE(*tampered.read(4), core::expected_pcr_after_boot(stages_));
}

TEST_F(BootChainTest, SamePolicyDifferenceAsThePaperDescribes) {
  // "The difference between secure and authenticated booting is simply
  // caused by different launch policies": one chain with an unsigned
  // stage — secure refuses, authenticated records.
  stages_[2].signature.clear();
  const core::BootOutcome secure = core::run_secure_boot(owner_.pub, stages_);
  tpm::PcrBank pcrs;
  const core::BootOutcome authenticated =
      core::run_authenticated_boot(pcrs, 4, stages_);
  EXPECT_FALSE(secure.booted);
  EXPECT_TRUE(authenticated.booted);
  EXPECT_EQ(authenticated.log.size(), 3u);
}

// ---------------------------------------------------------------------------
// Remote invocation.
class RemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    client_ = std::make_unique<net::SecureChannelEndpoint>(
        net::Role::initiator, to_bytes("c"), std::nullopt, std::nullopt);
    server_ = std::make_unique<net::SecureChannelEndpoint>(
        net::Role::responder, to_bytes("s"), std::nullopt, std::nullopt);
    auto msg1 = *client_->start();
    auto msg2 = *server_->handle_msg1(msg1);
    auto msg3 = *client_->handle_msg2(msg2);
    ASSERT_TRUE(server_->handle_msg3(msg3).ok());

    dispatcher_ = std::make_unique<net::RemoteDispatcher>(*server_);
    ASSERT_TRUE(dispatcher_
                    ->register_method("anonymize",
                                      [](BytesView req) -> Result<Bytes> {
                                        Bytes out = to_bytes("anon(");
                                        out.insert(out.end(), req.begin(),
                                                   req.end());
                                        out.push_back(')');
                                        return out;
                                      })
                    .ok());
    ASSERT_TRUE(dispatcher_
                    ->register_method("forbidden",
                                      [](BytesView) -> Result<Bytes> {
                                        return Errc::access_denied;
                                      })
                    .ok());

    proxy_ = std::make_unique<net::RemoteProxy>(
        *client_, [this](BytesView record) -> Result<Bytes> {
          // Loopback transport through the (optionally tampering) network.
          if (tamper_) {
            Bytes evil(record.begin(), record.end());
            evil[evil.size() / 2] ^= 0x01;
            return dispatcher_->handle(evil);
          }
          return dispatcher_->handle(record);
        });
  }

  std::unique_ptr<net::SecureChannelEndpoint> client_, server_;
  std::unique_ptr<net::RemoteDispatcher> dispatcher_;
  std::unique_ptr<net::RemoteProxy> proxy_;
  bool tamper_ = false;
};

TEST_F(RemoteTest, CallRoundTrip) {
  auto reply = proxy_->call("anonymize", to_bytes("household-17"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "anon(household-17)");
}

TEST_F(RemoteTest, SequentialCallsKeepOrdering) {
  for (int i = 0; i < 5; ++i) {
    auto reply = proxy_->call("anonymize", to_bytes(std::to_string(i)));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(to_string(*reply), "anon(" + std::to_string(i) + ")");
  }
}

TEST_F(RemoteTest, RemoteRefusalTravelsAsErrorCode) {
  auto reply = proxy_->call("forbidden", to_bytes("x"));
  EXPECT_EQ(reply.error(), Errc::access_denied);
}

TEST_F(RemoteTest, UnknownMethodRejected) {
  EXPECT_EQ(proxy_->call("no-such-method", {}).error(),
            Errc::invalid_argument);
}

TEST_F(RemoteTest, TamperedRequestNeverReachesTheMethod) {
  tamper_ = true;
  auto reply = proxy_->call("anonymize", to_bytes("data"));
  EXPECT_EQ(reply.error(), Errc::verification_failed);
}

TEST_F(RemoteTest, EmptyPayloadSupported) {
  auto reply = proxy_->call("anonymize", {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "anon()");
}

TEST_F(RemoteTest, DuplicateMethodRegistrationRejected) {
  EXPECT_FALSE(dispatcher_
                   ->register_method("anonymize",
                                     [](BytesView) -> Result<Bytes> {
                                       return Bytes{};
                                     })
                   .ok());
}

TEST_F(RemoteTest, DispatcherRequiresEstablishedChannel) {
  net::SecureChannelEndpoint fresh(net::Role::responder, to_bytes("f"),
                                   std::nullopt, std::nullopt);
  EXPECT_THROW(net::RemoteDispatcher{fresh}, Error);
}

// ---------------------------------------------------------------------------
// Federation: establish_link packages handshake + RPC over a SimNetwork.
class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(network_.register_endpoint("meter").ok());
    ASSERT_TRUE(network_.register_endpoint("utility").ok());

    server_machine_ = test::make_machine("fed-server");
    sgx_ = *test::shared_registry().create("sgx", *server_machine_);
    anonymizer_ = *sgx_->create_domain(test::tc_spec("anonymizer"));
    verifier_ = std::make_unique<core::AttestationVerifier>(to_bytes("fv"));
    verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    verifier_->expect_measurement(
        "anonymizer", test::tc_spec("anonymizer").image.measurement());
  }

  net::SimNetwork network_;
  std::unique_ptr<hw::Machine> server_machine_;
  std::unique_ptr<substrate::IsolationSubstrate> sgx_;
  substrate::DomainId anonymizer_ = 0;
  std::unique_ptr<core::AttestationVerifier> verifier_;
};

TEST_F(FederationTest, EstablishAndCallAcrossMachines) {
  auto link = net::establish_link(
      network_, "meter", "utility",
      {.initiator_verifier = net::VerifierConfig{verifier_.get(), "anonymizer"},
       .responder_prover = net::ProverConfig{sgx_.get(), anonymizer_}});
  ASSERT_TRUE(link.ok());

  ASSERT_TRUE((*link)
                  ->responder_dispatcher()
                  .register_method("submit",
                                   [](BytesView reading) -> Result<Bytes> {
                                     return to_bytes("accepted:" +
                                                     to_string(reading));
                                   })
                  .ok());
  auto reply = (*link)->proxy().call("submit", to_bytes("3.2kWh"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "accepted:3.2kWh");
}

TEST_F(FederationTest, RefusesUnattestedResponder) {
  // Responder cannot prove the expected code identity: no link.
  auto link = net::establish_link(
      network_, "meter", "utility",
      {.initiator_verifier =
           net::VerifierConfig{verifier_.get(), "anonymizer"}});
  EXPECT_FALSE(link.ok());
}

TEST_F(FederationTest, SurvivesPassiveMitmFailsOnActive) {
  // Passive observer: link works.
  std::size_t observed = 0;
  network_.set_tamperer([&](const std::string&, const std::string&,
                            BytesView payload) -> std::optional<Bytes> {
    ++observed;
    return Bytes(payload.begin(), payload.end());
  });
  auto link = net::establish_link(
      network_, "meter", "utility",
      {.initiator_verifier = net::VerifierConfig{verifier_.get(), "anonymizer"},
       .responder_prover = net::ProverConfig{sgx_.get(), anonymizer_}});
  ASSERT_TRUE(link.ok());
  EXPECT_GE(observed, 3u);

  // Active tampering on records: every call fails closed.
  network_.set_tamperer([](const std::string&, const std::string&,
                           BytesView payload) -> std::optional<Bytes> {
    Bytes evil(payload.begin(), payload.end());
    evil[evil.size() / 2] ^= 0x01;
    return evil;
  });
  ASSERT_TRUE((*link)
                  ->responder_dispatcher()
                  .register_method("submit",
                                   [](BytesView) -> Result<Bytes> {
                                     return Bytes{};
                                   })
                  .ok());
  EXPECT_FALSE((*link)->proxy().call("submit", to_bytes("x")).ok());
}

TEST_F(FederationTest, DroppedHandshakeFailsCleanly) {
  network_.set_tamperer([](const std::string&, const std::string&,
                           BytesView) -> std::optional<Bytes> {
    return std::nullopt;  // black hole
  });
  auto link = net::establish_link(network_, "meter", "utility", {});
  EXPECT_EQ(link.error(), Errc::io_error);
}

}  // namespace
}  // namespace lateral
