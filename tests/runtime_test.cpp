// lateral::runtime — rings, batched channels, executor, async RPC.
//
// The load-bearing property throughout: lossless backpressure. Every
// accepted submission terminates in exactly one of {completed, cancelled,
// timed_out}, every refused submission surfaces a distinct Errc, and the
// counters reconcile: submitted == completed + cancelled + timed_out +
// in-flight, with rejections tallied separately.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "net/remote.h"
#include "net/secure_channel.h"
#include "runtime/async_proxy.h"
#include "runtime/batch_channel.h"
#include "runtime/executor.h"
#include "runtime/spsc_ring.h"
#include "test_support.h"

namespace lateral::runtime {
namespace {

using test::tc_spec;

// ---------------------------------------------------------------------------
// SpscRing

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FullAndEmpty) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop().has_value());
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(3));  // refused, not overwritten
  EXPECT_EQ(*ring.pop(), 1);
  EXPECT_TRUE(ring.push(3));
  EXPECT_EQ(*ring.pop(), 2);
  EXPECT_EQ(*ring.pop(), 3);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FifoAcrossManyWraparounds) {
  SpscRing<std::size_t> ring(4);
  std::size_t next_in = 0, next_out = 0;
  // Stay near-full so the indices wrap dozens of times.
  for (int round = 0; round < 100; ++round) {
    while (ring.push(next_in)) ++next_in;
    ASSERT_TRUE(ring.full());
    EXPECT_EQ(*ring.pop(), next_out++);
    EXPECT_EQ(*ring.pop(), next_out++);
  }
  while (auto v = ring.pop()) EXPECT_EQ(*v, next_out++);
  EXPECT_EQ(next_in, next_out);
}

TEST(SpscRing, ThreadedProducerConsumer) {
  SpscRing<std::size_t> ring(8);
  constexpr std::size_t kCount = 20000;
  std::thread producer([&] {
    for (std::size_t i = 0; i < kCount;) {
      if (ring.push(i)) ++i;
    }
  });
  std::size_t expected = 0;
  while (expected < kCount) {
    if (auto v = ring.pop()) {
      ASSERT_EQ(*v, expected);  // order survives concurrency
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// BatchChannel on a concrete substrate.

class BatchChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("batch");
    substrate_ = *test::shared_registry().create("microkernel", *machine_);
    client_ = *substrate_->create_domain(tc_spec("client"));
    server_ = *substrate_->create_domain(tc_spec("server"));
    channel_ = *substrate_->create_channel(client_, server_);
    ASSERT_TRUE(substrate_
                    ->set_handler(
                        server_,
                        [this](const substrate::Invocation& inv)
                            -> Result<Bytes> {
                          ++handler_runs_;
                          const std::string request = to_string(inv.data);
                          if (request == "refuse") return Errc::access_denied;
                          return to_bytes("echo:" + request);
                        })
                    .ok());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> substrate_;
  substrate::DomainId client_ = 0, server_ = 0;
  substrate::ChannelId channel_ = 0;
  int handler_runs_ = 0;
};

TEST_F(BatchChannelTest, BatchRoundTripMatchesIds) {
  BatchChannel batch(*substrate_, client_, channel_);
  std::vector<SubmissionId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(*batch.submit(to_bytes("m" + std::to_string(i))));
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(handler_runs_, 8);
  // Retrieve out of submission order: ids, not positions, do the matching.
  for (int i = 7; i >= 0; --i) {
    auto reply = batch.wait(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(to_string(*reply), "echo:m" + std::to_string(i));
  }
}

TEST_F(BatchChannelTest, PerRequestRefusalsStayPerRequest) {
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId good = *batch.submit(to_bytes("fine"));
  const SubmissionId bad = *batch.submit(to_bytes("refuse"));
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(to_string(*batch.wait(good)), "echo:fine");
  EXPECT_EQ(batch.wait(bad).error(), Errc::access_denied);
}

TEST_F(BatchChannelTest, SubmissionRingBackpressure) {
  BatchChannel batch(*substrate_, client_, channel_, {.depth = 4});
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(batch.submit(to_bytes("x")).ok());
  EXPECT_EQ(batch.submit(to_bytes("overflow")).error(), Errc::exhausted);
  EXPECT_EQ(batch.metrics().rejected, 1u);
  EXPECT_EQ(batch.metrics().submitted, 4u);
  // Flushing drains the ring; submission is possible again.
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_TRUE(batch.submit(to_bytes("again")).ok());
}

TEST_F(BatchChannelTest, CompletionRingGuardKeepsSubmissionsQueued) {
  BatchChannel batch(*substrate_, client_, channel_, {.depth = 2});
  const SubmissionId first = *batch.submit(to_bytes("a"));
  ASSERT_TRUE(batch.flush().ok());
  // Two unread completions would not fit next to two more: flush refuses
  // and the queued submissions survive untouched.
  ASSERT_TRUE(batch.submit(to_bytes("b")).ok());
  ASSERT_TRUE(batch.submit(to_bytes("c")).ok());
  EXPECT_EQ(batch.flush().error(), Errc::exhausted);
  EXPECT_EQ(batch.pending(), 2u);
  // Draining the completion ring unblocks the flush.
  EXPECT_EQ(to_string(*batch.wait(first)), "echo:a");
  EXPECT_TRUE(batch.flush().ok());
  EXPECT_EQ(batch.pending(), 0u);
}

TEST_F(BatchChannelTest, CancellationCompletesWithoutRunning) {
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId keep = *batch.submit(to_bytes("keep"));
  const SubmissionId drop = *batch.submit(to_bytes("drop"));
  ASSERT_TRUE(batch.cancel(drop).ok());
  EXPECT_EQ(batch.cancel(999).error(), Errc::invalid_argument);
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(handler_runs_, 1);  // only "keep" crossed the boundary
  EXPECT_EQ(batch.wait(drop).error(), Errc::cancelled);
  EXPECT_EQ(to_string(*batch.wait(keep)), "echo:keep");
  EXPECT_EQ(batch.metrics().cancelled, 1u);
}

TEST_F(BatchChannelTest, ExpiredDeadlineCompletesTimedOut) {
  BatchChannel batch(*substrate_, client_, channel_);
  // Domain/channel creation already advanced the simulated clock, so an
  // absolute deadline of 1 cycle is long gone.
  ASSERT_GT(substrate_->machine().now(), 1u);
  const SubmissionId late = *batch.submit(to_bytes("late"), {.deadline = 1});
  const SubmissionId fresh = *batch.submit(
      to_bytes("fresh"), {.deadline = substrate_->machine().now() + 100000});
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(handler_runs_, 1);
  EXPECT_EQ(batch.wait(late).error(), Errc::timed_out);
  EXPECT_EQ(to_string(*batch.wait(fresh)), "echo:fresh");
  EXPECT_EQ(batch.metrics().timed_out, 1u);
}

TEST_F(BatchChannelTest, BatchLevelRefusalDeliveredToEveryEntry) {
  // A channel the actor does not hold: the whole batch is refused, and the
  // refusal is delivered as every entry's completion — not silently lost.
  BatchChannel batch(*substrate_, server_ + 17, channel_);
  const SubmissionId a = *batch.submit(to_bytes("a"));
  const SubmissionId b = *batch.submit(to_bytes("b"));
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(batch.wait(a).error(), Errc::access_denied);
  EXPECT_EQ(batch.wait(b).error(), Errc::access_denied);
  EXPECT_EQ(batch.metrics().in_flight(), 0u);
}

TEST_F(BatchChannelTest, DeadPeerRefusalDeliveredToEveryEntry) {
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId a = *batch.submit(to_bytes("a"));
  const SubmissionId b = *batch.submit(to_bytes("b"));
  // The server crashes with work in flight: every queued invocation still
  // completes — promptly, with the honest error — and nothing is lost.
  ASSERT_TRUE(substrate_->kill_domain(server_).ok());
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(handler_runs_, 0);
  EXPECT_EQ(batch.wait(a).error(), Errc::domain_dead);
  EXPECT_EQ(batch.wait(b).error(), Errc::domain_dead);
  EXPECT_EQ(batch.metrics().in_flight(), 0u);
  EXPECT_EQ(batch.metrics().completed, 2u);
}

TEST_F(BatchChannelTest, EpochFenceDeliversStaleEpoch) {
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId a = *batch.submit(to_bytes("a"));
  const SubmissionId b = *batch.submit(to_bytes("b"));
  // A supervised restart re-epochs the channel under the adapter.
  ASSERT_TRUE(substrate_->bump_channel_epoch(channel_).ok());
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(handler_runs_, 0);  // nothing addressed to the old life runs
  EXPECT_EQ(batch.wait(a).error(), Errc::stale_epoch);
  EXPECT_EQ(batch.wait(b).error(), Errc::stale_epoch);
  EXPECT_EQ(batch.metrics().in_flight(), 0u);
  // Re-attaching captures the new epoch; the channel serves again.
  BatchChannel fresh(*substrate_, client_, channel_);
  const SubmissionId c = *fresh.submit(to_bytes("c"));
  ASSERT_TRUE(fresh.flush().ok());
  EXPECT_EQ(to_string(*fresh.wait(c)), "echo:c");
}

TEST_F(BatchChannelTest, LosslessAccountingInvariant) {
  BatchChannel batch(*substrate_, client_, channel_, {.depth = 8});
  std::vector<SubmissionId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(*batch.submit(to_bytes("m" + std::to_string(i))));
  ASSERT_TRUE(batch.cancel(ids[1]).ok());
  ASSERT_TRUE(batch.cancel(ids[4]).ok());
  // Rejected submissions are tallied but never enter the pipeline.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(batch.submit(to_bytes("no")).error(), Errc::exhausted);
  ASSERT_TRUE(batch.flush().ok());
  while (batch.next_completion().ok()) {
  }
  const InvocationCounters& m = batch.metrics();
  EXPECT_EQ(m.submitted, 8u);
  EXPECT_EQ(m.rejected, 4u);
  EXPECT_EQ(m.completed, 6u);
  EXPECT_EQ(m.cancelled, 2u);
  EXPECT_EQ(m.timed_out, 0u);
  EXPECT_EQ(m.submitted, m.completed + m.cancelled + m.timed_out);
  EXPECT_EQ(m.in_flight(), 0u);
  EXPECT_EQ(m.queue_depth_hwm, 8u);
}

TEST_F(BatchChannelTest, AmortizationBeatsPerCallCosts) {
  const Cycles before_sync = substrate_->machine().now();
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(substrate_->call(client_, channel_, to_bytes("one")).ok());
  const Cycles sync_cost = substrate_->machine().now() - before_sync;

  BatchChannel batch(*substrate_, client_, channel_);
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(batch.submit(to_bytes("one")).ok());
  const Cycles before_batch = substrate_->machine().now();
  ASSERT_TRUE(batch.flush().ok());
  const Cycles batch_cost = substrate_->machine().now() - before_batch;

  EXPECT_LT(batch_cost, sync_cost);
  const InvocationCounters& m = batch.metrics();
  EXPECT_EQ(m.crossing_cycles, batch_cost);
  EXPECT_EQ(m.sync_equivalent_cycles, sync_cost);
  EXPECT_EQ(m.cycles_saved(), sync_cost - batch_cost);
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batch_size_histogram[4], 1u);  // 16 lands in bucket 2^4
}

TEST_F(BatchChannelTest, LatencyAccountedPerInvocationWithoutTracing) {
  // Latency is part of the base metrics contract — no tracer attached.
  BatchChannel batch(*substrate_, client_, channel_);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(batch.submit(to_bytes("m")).ok());
  ASSERT_TRUE(batch.flush().ok());
  const InvocationCounters& m = batch.metrics();
  EXPECT_EQ(m.latency_count, 4u);
  EXPECT_GT(m.latency_total_cycles, 0u);
  EXPECT_GT(m.mean_latency_cycles(), 0u);
  // Percentile estimates are bucket upper bounds: monotone in p, and p99
  // bounds the worst submit->complete span from above.
  EXPECT_LE(m.latency_percentile(0.5), m.latency_percentile(0.99));
  EXPECT_GE(m.latency_percentile(0.99), m.latency_total_cycles / 4);
}

TEST(InvocationCountersTest, LatencyHistogramAndPercentiles) {
  InvocationCounters c;
  // Buckets: [2^i, 2^(i+1)). 1 -> bucket 0, 3 -> bucket 1, 1000 -> bucket 9.
  c.record_latency(1);
  c.record_latency(3);
  c.record_latency(3);
  c.record_latency(1000);
  EXPECT_EQ(c.latency_count, 4u);
  EXPECT_EQ(c.latency_histogram[0], 1u);
  EXPECT_EQ(c.latency_histogram[1], 2u);
  EXPECT_EQ(c.latency_histogram[9], 1u);
  EXPECT_EQ(c.mean_latency_cycles(), (1u + 3 + 3 + 1000) / 4);
  EXPECT_EQ(c.latency_percentile(0.0), 1u);    // bucket 0 upper bound: 2^1-1
  EXPECT_EQ(c.latency_percentile(0.5), 3u);    // bucket 1 upper bound: 2^2-1
  EXPECT_EQ(c.latency_percentile(1.0), 1023u); // bucket 9 upper bound: 2^10-1
  EXPECT_EQ(InvocationCounters{}.latency_percentile(0.99), 0u);
}

TEST(MetricsHubTest, ConcurrentLabelRegistrationIsSafe) {
  // The TSan regression for the hub's locking: many threads register
  // distinct labels (mutating the map) and hammer one *shared* label's
  // fields through the locking Ref, while a reader snapshots via all().
  // Pre-fix this raced on std::map rebalancing and on the field copies.
  MetricsHub hub;
  constexpr int kThreads = 8;
  constexpr int kLabels = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hub, t] {
      MetricsHub::CounterRef shared = hub.counters("shared");
      for (int i = 0; i < kLabels; ++i) {
        MetricsHub::CounterRef c =
            hub.counters("worker-" + std::to_string(t) + "-" +
                         std::to_string(i));
        ++c->submitted;  // slot-locked for the statement
        ++c->completed;
        ++shared->submitted;  // contended across all workers
        hub.recovery("rec-" + std::to_string(t))->kills_detected = 1;
      }
    });
  }
  std::thread reader([&hub] {
    for (int i = 0; i < 100; ++i) {
      const auto snapshot = hub.all();  // copies each slot under its lock
      for (const auto& [label, c] : snapshot)
        if (label != "shared") EXPECT_LE(c.completed, 1u);
      (void)hub.all_recovery();
    }
  });
  for (std::thread& worker : workers) worker.join();
  reader.join();
  EXPECT_EQ(hub.all().size(), kThreads * kLabels + 1u);
  EXPECT_EQ(hub.all_recovery().size(), kThreads);
  // Refs handed out earlier stay stable (std::map node stability), and the
  // contended label lost no increments.
  EXPECT_EQ(hub.counters("worker-0-0")->submitted, 1u);
  EXPECT_EQ(hub.counters("shared").snapshot().submitted,
            static_cast<std::uint64_t>(kThreads) * kLabels);
}

// ---------------------------------------------------------------------------
// Executor

// ---------------------------------------------------------------------------
// Zero-copy data plane: RegionPool + scatter-gather BatchChannel

class ZeroCopyBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("zerocopy");
    substrate_ = *test::shared_registry().create("microkernel", *machine_);
    client_ = *substrate_->create_domain(tc_spec("client"));
    server_ = *substrate_->create_domain(tc_spec("server"));
    channel_ = *substrate_->create_channel(client_, server_);
    region_ = *substrate_->create_region(client_, server_, 4096);
    ASSERT_TRUE(substrate_->map_region(client_, region_).ok());
    ASSERT_TRUE(substrate_->map_region(server_, region_).ok());
    ASSERT_TRUE(
        substrate_
            ->set_handler(
                server_,
                [this](const substrate::Invocation& inv) -> Result<Bytes> {
                  ++handler_runs_;
                  // Consumer side of the plane: header inline, payload read
                  // in place from the grant region.
                  std::string assembled = to_string(inv.data);
                  for (const substrate::RegionDescriptor& seg : inv.segments) {
                    auto view = substrate_->region_view(server_, seg);
                    if (!view) return view.error();
                    assembled.append(view->begin(), view->end());
                  }
                  return to_bytes("got:" + assembled);
                })
            .ok());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> substrate_;
  substrate::DomainId client_ = 0, server_ = 0;
  substrate::ChannelId channel_ = 0;
  substrate::RegionId region_ = 0;
  int handler_runs_ = 0;
};

TEST_F(ZeroCopyBatchTest, RegionPoolLeaseStageRelease) {
  RegionPool pool(*substrate_, client_, region_, 4096, 1024);
  EXPECT_EQ(pool.slots_total(), 4u);
  EXPECT_EQ(pool.slots_free(), 4u);

  auto slot = pool.acquire();
  ASSERT_TRUE(slot.ok());
  auto desc = pool.stage(*slot, to_bytes("payload"));
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->length, 7u);
  auto view = substrate_->region_view(server_, *desc);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(to_string(*view), "payload");

  // Oversized payloads are refused at stage time, not truncated.
  EXPECT_EQ(pool.stage(*slot, Bytes(2048, 1)).error(), Errc::invalid_argument);
  EXPECT_EQ(pool.stage(*slot, Bytes{}).error(), Errc::invalid_argument);

  // Drain the pool: the empty pool is backpressure, not an error state.
  auto s2 = pool.acquire(), s3 = pool.acquire(), s4 = pool.acquire();
  ASSERT_TRUE(s2.ok() && s3.ok() && s4.ok());
  EXPECT_EQ(pool.acquire().error(), Errc::exhausted);
  pool.release(*slot);
  EXPECT_EQ(pool.slots_free(), 1u);
  EXPECT_TRUE(pool.acquire().ok());
}

TEST_F(ZeroCopyBatchTest, SubmitSgDeliversInPlacePayload) {
  BatchChannel batch(*substrate_, client_, channel_);
  // A bulk payload — the path's target case. (Below ~16 bytes the
  // descriptor wire bytes would cost more than the payload they replace.)
  const Bytes bulk(2048, 0xB7);
  ASSERT_TRUE(substrate_->region_write(client_, region_, 0, bulk).ok());
  auto desc = substrate_->make_descriptor(client_, region_, 0, bulk.size());
  ASSERT_TRUE(desc.ok());
  const SubmissionId id = *batch.submit_sg(to_bytes("hdr|"), {*desc});
  EXPECT_EQ(batch.submit_sg(to_bytes("x"), {}).error(),
            Errc::invalid_argument);  // SG without segments is a misuse
  ASSERT_TRUE(batch.flush().ok());
  Bytes expected = to_bytes("got:hdr|");
  expected.insert(expected.end(), bulk.begin(), bulk.end());
  EXPECT_EQ(*batch.wait(id), expected);
  EXPECT_EQ(batch.metrics().zero_copy_bytes, bulk.size());
  // The descriptor crossed, not the payload: the batched crossing is
  // cheaper than the payload-copying sync equivalent it replaced.
  EXPECT_LT(batch.metrics().crossing_cycles,
            batch.metrics().sync_equivalent_cycles);
}

TEST_F(ZeroCopyBatchTest, SubmitStagedReturnsSlotAtCompletion) {
  RegionPool pool(*substrate_, client_, region_, 4096, 1024);
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId id =
      *batch.submit_staged(pool, to_bytes("h:"), to_bytes("staged"));
  EXPECT_EQ(pool.slots_free(), 3u);  // slot leased while in flight
  ASSERT_TRUE(batch.flush().ok());
  // By completion time the handler has consumed the bytes in place, so the
  // slot is already back in the pool.
  EXPECT_EQ(pool.slots_free(), 4u);
  EXPECT_EQ(to_string(*batch.wait(id)), "got:h:staged");

  // The pool sustains repeated bursts without leaking slots.
  for (int round = 0; round < 3; ++round) {
    std::vector<SubmissionId> ids;
    for (int i = 0; i < 4; ++i)
      ids.push_back(
          *batch.submit_staged(pool, to_bytes("r:"), to_bytes("p")));
    EXPECT_EQ(pool.slots_free(), 0u);
    EXPECT_EQ(batch.submit_staged(pool, to_bytes("r:"), to_bytes("p")).error(),
              Errc::exhausted);  // pool empty = backpressure, fail closed
    ASSERT_TRUE(batch.flush().ok());
    EXPECT_EQ(pool.slots_free(), 4u);
    for (const SubmissionId i : ids) EXPECT_TRUE(batch.wait(i).ok());
  }
}

TEST_F(ZeroCopyBatchTest, MixedBatchCompletesInlineAndSgEntries) {
  RegionPool pool(*substrate_, client_, region_, 4096, 1024);
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId inline_id = *batch.submit(to_bytes("plain"));
  const SubmissionId sg_id =
      *batch.submit_staged(pool, to_bytes("sg:"), to_bytes("body"));
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(handler_runs_, 2);  // one crossing, both delivered
  EXPECT_EQ(batch.metrics().batches, 1u);
  EXPECT_EQ(to_string(*batch.wait(inline_id)), "got:plain");
  EXPECT_EQ(to_string(*batch.wait(sg_id)), "got:sg:body");
}

TEST_F(ZeroCopyBatchTest, EpochFenceReleasesStagedSlots) {
  RegionPool pool(*substrate_, client_, region_, 4096, 1024);
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId a =
      *batch.submit_staged(pool, to_bytes("h"), to_bytes("x"));
  const SubmissionId b =
      *batch.submit_staged(pool, to_bytes("h"), to_bytes("y"));
  EXPECT_EQ(pool.slots_free(), 2u);
  ASSERT_TRUE(substrate_->bump_channel_epoch(channel_).ok());
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(batch.wait(a).error(), Errc::stale_epoch);
  EXPECT_EQ(batch.wait(b).error(), Errc::stale_epoch);
  EXPECT_EQ(pool.slots_free(), 4u);  // fenced completions still free slots
  EXPECT_EQ(batch.metrics().in_flight(), 0u);
}

TEST_F(ZeroCopyBatchTest, CancelledStagedSubmissionFreesItsSlot) {
  RegionPool pool(*substrate_, client_, region_, 4096, 1024);
  BatchChannel batch(*substrate_, client_, channel_);
  const SubmissionId drop =
      *batch.submit_staged(pool, to_bytes("h"), to_bytes("x"));
  ASSERT_TRUE(batch.cancel(drop).ok());
  ASSERT_TRUE(batch.flush().ok());
  EXPECT_EQ(handler_runs_, 0);
  EXPECT_EQ(batch.wait(drop).error(), Errc::cancelled);
  EXPECT_EQ(pool.slots_free(), 4u);
}

TEST_F(ZeroCopyBatchTest, RevokedRegionFailsStagingClosed) {
  RegionPool pool(*substrate_, client_, region_, 4096, 1024);
  ASSERT_TRUE(substrate_->revoke_region(region_).ok());
  auto slot = pool.acquire();
  ASSERT_TRUE(slot.ok());  // the free list is local; the substrate decides
  EXPECT_EQ(pool.stage(*slot, to_bytes("x")).error(), Errc::stale_epoch);
}

TEST_F(ZeroCopyBatchTest, ExecutorSubmitCallSgDeliversThroughFuture) {
  const std::uint64_t epoch = *substrate_->channel_epoch(channel_);
  const core::Endpoint endpoint(substrate_.get(), channel_, client_, epoch);
  auto pool =
      std::make_shared<RegionPool>(*substrate_, client_, region_, 4096, 1024);
  Executor executor({.threads = 2});
  auto future = executor.submit_call_sg(endpoint, pool, to_bytes("exec:"),
                                        to_bytes("task-payload"));
  ASSERT_TRUE(future.ok());
  auto reply = future->wait();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "got:exec:task-payload");
  executor.wait_all();
  EXPECT_EQ(pool->slots_free(), 4u);  // slot returned after the call
}

TEST_F(ZeroCopyBatchTest, ExecutorSubmitCallSgSurvivesCallerDroppingPool) {
  const std::uint64_t epoch = *substrate_->channel_epoch(channel_);
  const core::Endpoint endpoint(substrate_.get(), channel_, client_, epoch);
  Executor executor({.threads = 2});
  Future future;
  {
    auto pool = std::make_shared<RegionPool>(*substrate_, client_, region_,
                                             4096, 1024);
    auto submitted = executor.submit_call_sg(endpoint, pool, to_bytes("exec:"),
                                             to_bytes("late"));
    ASSERT_TRUE(submitted.ok());
    future = std::move(*submitted);
  }  // caller's reference gone; the queued task co-owns the pool
  auto reply = future.wait();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "got:exec:late");
  executor.wait_all();
}

TEST_F(ZeroCopyBatchTest, RegionPoolIgnoresDoubleRelease) {
  RegionPool pool(*substrate_, client_, region_, 4096, 1024);
  auto a = pool.acquire();
  ASSERT_TRUE(a.ok());
  pool.release(*a);
  pool.release(*a);  // stale second release must not mint a duplicate slot
  EXPECT_EQ(pool.slots_free(), 4u);
  auto x = pool.acquire();
  auto y = pool.acquire();
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_NE(x->offset, y->offset);
}

// ---------------------------------------------------------------------------
// RegionPool sharding (FIG13): per-shard arenas, cache-line-strided slots

TEST(RegionPoolSharded, PerShardArenasWithCacheLineStride) {
  auto machine = test::make_smp_machine(4, "pool-smp");
  auto sub = *test::shared_registry().create("microkernel", *machine);
  const auto client = *sub->create_domain(tc_spec("client"));
  const auto server = *sub->create_domain(tc_spec("server"));
  const auto region = *sub->create_region(client, server, 1 << 16);
  ASSERT_TRUE(sub->map_region(client, region).ok());
  ASSERT_TRUE(sub->map_region(server, region).ok());

  // 100-byte slots on a multi-core machine pad to the cache-line stride:
  // two slots (and two shards' free-list heads) never share a line.
  RegionPool pool(*sub, client, region, 1 << 16, 100, 4);
  EXPECT_EQ(pool.shard_count(), 4u);
  EXPECT_EQ(pool.slot_bytes(), 100u);
  const std::size_t line = machine->costs().cache_line_bytes;
  EXPECT_EQ(pool.slot_stride() % line, 0u);
  EXPECT_GE(pool.slot_stride(), 100u);
  EXPECT_LT(pool.slot_stride(), 100u + line);
  ASSERT_GT(pool.slots_total(), 0u);
  EXPECT_EQ(pool.slots_total() % 4, 0u);  // symmetric arenas

  // Arena bases are one whole span apart; the first lease from each shard
  // is that shard's base, stride-aligned.
  const std::size_t per_shard = pool.slots_total() / 4;
  const std::uint64_t span = per_shard * pool.slot_stride();
  for (std::size_t s = 0; s < 4; ++s) {
    auto slot = pool.acquire(s);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->offset, s * span);
    EXPECT_EQ(slot->offset % pool.slot_stride(), 0u);
    pool.release(*slot);
  }
}

TEST(RegionPoolSharded, StrictShardAcquireAndOwnerRouting) {
  auto machine = test::make_smp_machine(2, "pool-strict");
  auto sub = *test::shared_registry().create("microkernel", *machine);
  const auto client = *sub->create_domain(tc_spec("client"));
  const auto server = *sub->create_domain(tc_spec("server"));
  const auto region = *sub->create_region(client, server, 4096);
  ASSERT_TRUE(sub->map_region(client, region).ok());
  ASSERT_TRUE(sub->map_region(server, region).ok());

  RegionPool pool(*sub, client, region, 4096, 256, 2);
  const std::size_t per_shard = pool.slots_total() / 2;
  ASSERT_GT(per_shard, 0u);

  // acquire(shard) never borrows from another arena: draining shard 0
  // exhausts it even though shard 1 is untouched.
  std::vector<RegionPool::Slot> held;
  for (std::size_t i = 0; i < per_shard; ++i) {
    auto slot = pool.acquire(0);
    ASSERT_TRUE(slot.ok());
    held.push_back(*slot);
  }
  EXPECT_EQ(pool.acquire(0).error(), Errc::exhausted);
  EXPECT_EQ(pool.slots_free(0), 0u);
  EXPECT_EQ(pool.slots_free(1), per_shard);
  EXPECT_EQ(pool.acquire(2).error(), Errc::invalid_argument);

  // The shard-blind acquire() still finds shard 1's slots (pre-FIG13
  // behaviour for unsharded callers).
  auto spill = pool.acquire();
  ASSERT_TRUE(spill.ok());
  EXPECT_GE(spill->offset, per_shard * pool.slot_stride());
  pool.release(*spill);

  // release() routes by offset to the owning arena, not round-robin.
  pool.release(held.back());
  EXPECT_EQ(pool.slots_free(0), 1u);
  EXPECT_EQ(pool.slots_free(1), per_shard);
  for (std::size_t i = 0; i + 1 < held.size(); ++i) pool.release(held[i]);
  EXPECT_EQ(pool.slots_free(), pool.slots_total());
}

TEST(RegionPoolSharded, SingleCoreMachineKeepsDenseLayout) {
  // N=1 bit-exactness: without a live contention model there is nothing to
  // pad against, so offsets are dense — byte for byte the pre-FIG13 layout,
  // even when the pool itself is sharded.
  auto machine = test::make_machine("pool-dense");
  auto sub = *test::shared_registry().create("microkernel", *machine);
  const auto client = *sub->create_domain(tc_spec("client"));
  const auto server = *sub->create_domain(tc_spec("server"));
  const auto region = *sub->create_region(client, server, 4096);
  ASSERT_TRUE(sub->map_region(client, region).ok());
  ASSERT_TRUE(sub->map_region(server, region).ok());

  RegionPool pool(*sub, client, region, 4096, 100, 2);
  EXPECT_EQ(pool.slot_stride(), 100u);  // no cache-line padding
  EXPECT_EQ(pool.shard_count(), 2u);
  auto first = pool.acquire(0);
  auto second = pool.acquire(0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->offset - first->offset, 100u);

  // Staging through a shard-1 slot still goes through the monitor and
  // mints a descriptor for exactly the staged bytes.
  auto slot = pool.acquire(1);
  ASSERT_TRUE(slot.ok());
  auto desc = pool.stage(*slot, to_bytes("sharded-payload"));
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->offset, slot->offset);
  EXPECT_EQ(desc->length, std::string("sharded-payload").size());
}

TEST(Executor, RunsTasksAndDeliversResults) {
  Executor executor({.threads = 4});
  std::vector<Future> futures;
  for (int i = 0; i < 32; ++i) {
    auto future = executor.submit(
        DomainKey{nullptr, static_cast<substrate::DomainId>(i % 4)},
        [i]() -> Result<Bytes> { return to_bytes(std::to_string(i)); });
    ASSERT_TRUE(future.ok());
    futures.push_back(std::move(*future));
  }
  executor.wait_all();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(futures[static_cast<std::size_t>(i)].poll());
    auto result = futures[static_cast<std::size_t>(i)].wait();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(to_string(*result), std::to_string(i));
  }
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.counters.submitted, 32u);
  EXPECT_EQ(stats.counters.completed, 32u);
  EXPECT_EQ(stats.counters.in_flight(), 0u);
}

TEST(Executor, PerDomainOrderIsSubmissionOrder) {
  Executor executor({.threads = 4});
  const DomainKey key{nullptr, 7};
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(executor
                    .submit(key,
                            [&, i]() -> Result<Bytes> {
                              std::lock_guard<std::mutex> guard(mu);
                              order.push_back(i);
                              return Bytes{};
                            })
                    .ok());
  }
  executor.wait_all();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Executor, TasksErrorsComeBackThroughFutures) {
  Executor executor({.threads = 1});
  auto future = executor.submit(
      DomainKey{}, []() -> Result<Bytes> { return Errc::io_error; });
  ASSERT_TRUE(future.ok());
  EXPECT_EQ(future->wait().error(), Errc::io_error);
}

TEST(Executor, DeadDomainWorkCompletesWithDomainDead) {
  auto machine = test::make_machine("executor-dead");
  auto substrate = *test::shared_registry().create("microkernel", *machine);
  const auto domain = *substrate->create_domain(tc_spec("worker"));
  ASSERT_TRUE(substrate->kill_domain(domain).ok());

  Executor executor({.threads = 2});
  bool ran = false;
  auto future = executor.submit(DomainKey{substrate.get(), domain},
                                [&]() -> Result<Bytes> {
                                  ran = true;
                                  return to_bytes("impossible");
                                });
  ASSERT_TRUE(future.ok());
  // Work addressed to a corpse completes promptly with the honest error —
  // the task never runs, and the accounting stays lossless.
  EXPECT_EQ(future->wait().error(), Errc::domain_dead);
  EXPECT_FALSE(ran);
  executor.wait_all();
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.counters.submitted, 1u);
  EXPECT_EQ(stats.counters.completed, 1u);
  EXPECT_EQ(stats.counters.in_flight(), 0u);
}

TEST(Executor, CancelBeforeRunWins) {
  Executor executor({.threads = 1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  // Occupy the single worker so the second task stays queued.
  auto blocker = executor.submit(DomainKey{nullptr, 1},
                                 [opened]() -> Result<Bytes> {
                                   opened.wait();
                                   return Bytes{};
                                 });
  ASSERT_TRUE(blocker.ok());
  bool ran = false;
  auto victim = executor.submit(DomainKey{nullptr, 2},
                                [&ran]() -> Result<Bytes> {
                                  ran = true;
                                  return Bytes{};
                                });
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(victim->cancel().ok());
  gate.set_value();
  executor.wait_all();
  EXPECT_EQ(victim->wait().error(), Errc::cancelled);
  EXPECT_FALSE(ran);
  EXPECT_EQ(executor.stats().counters.cancelled, 1u);
}

TEST(Executor, QueueDepthBackpressure) {
  Executor executor({.threads = 1, .queue_depth = 2});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  const DomainKey busy{nullptr, 1};
  ASSERT_TRUE(executor
                  .submit(busy,
                          [opened]() -> Result<Bytes> {
                            opened.wait();
                            return Bytes{};
                          })
                  .ok());
  // The worker may or may not have dequeued the blocker yet; fill whatever
  // is left of the domain's budget, then expect a refusal.
  int accepted = 1;
  for (;;) {
    auto r = executor.submit(busy, []() -> Result<Bytes> { return Bytes{}; });
    if (!r.ok()) {
      EXPECT_EQ(r.error(), Errc::exhausted);
      break;
    }
    ++accepted;
    ASSERT_LE(accepted, 3);  // blocker (running) + depth 2 queued
  }
  // An unrelated domain is NOT affected: the bound is per-domain.
  EXPECT_TRUE(executor
                  .submit(DomainKey{nullptr, 2},
                          []() -> Result<Bytes> { return Bytes{}; })
                  .ok());
  gate.set_value();
  executor.wait_all();
  EXPECT_GE(executor.stats().counters.rejected, 1u);
}

TEST(Executor, ExpiredDeadlineSkipsTask) {
  auto machine = test::make_machine("executor-deadline");
  auto substrate = *test::shared_registry().create("microkernel", *machine);
  auto domain = *substrate->create_domain(tc_spec("component"));
  ASSERT_GT(substrate->machine().now(), 1u);

  Executor executor({.threads = 2});
  bool ran = false;
  auto late = executor.submit(DomainKey{substrate.get(), domain},
                              [&ran]() -> Result<Bytes> {
                                ran = true;
                                return Bytes{};
                              },
                              {.deadline = 1});
  auto fresh = executor.submit(
      DomainKey{substrate.get(), domain},
      []() -> Result<Bytes> { return to_bytes("ok"); },
      {.deadline = substrate->machine().now() + 1000000});
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(fresh.ok());
  executor.wait_all();
  EXPECT_EQ(late->wait().error(), Errc::timed_out);
  EXPECT_FALSE(ran);
  EXPECT_EQ(to_string(*fresh->wait()), "ok");
  EXPECT_EQ(executor.stats().counters.timed_out, 1u);
}

TEST(Executor, ShutdownCancelsQueuedTasksLosslessly) {
  std::vector<Future> futures;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::thread releaser;
  {
    Executor executor({.threads = 1});
    ASSERT_TRUE(executor
                    .submit(DomainKey{nullptr, 1},
                            [opened]() -> Result<Bytes> {
                              opened.wait();
                              return Bytes{};
                            })
                    .ok());
    for (int i = 0; i < 3; ++i) {
      auto f = executor.submit(DomainKey{nullptr, 2},
                               []() -> Result<Bytes> { return Bytes{}; });
      ASSERT_TRUE(f.ok());
      futures.push_back(std::move(*f));
    }
    releaser = std::thread([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      gate.set_value();
    });
    // Destructor runs here with the worker still blocked: the three queued
    // tasks must terminate as cancelled, never hang or vanish.
  }
  releaser.join();
  for (Future& future : futures)
    EXPECT_EQ(future.wait().error(), Errc::cancelled);
}

TEST(Executor, ParallelismAcrossSubstratesWithSerializedMachines) {
  // Two independent machines may run truly in parallel; all clock movement
  // for one machine is serialized by the executor's substrate stripes.
  auto machine_a = test::make_machine("exec-a");
  auto machine_b = test::make_machine("exec-b");
  auto sub_a = *test::shared_registry().create("microkernel", *machine_a);
  auto sub_b = *test::shared_registry().create("microkernel", *machine_b);
  struct Wire {
    substrate::DomainId client, server;
    substrate::ChannelId channel;
  };
  auto wire_up = [](substrate::IsolationSubstrate& sub) -> Wire {
    Wire wire{};
    wire.client = *sub.create_domain(tc_spec("client"));
    wire.server = *sub.create_domain(tc_spec("server"));
    wire.channel = *sub.create_channel(wire.client, wire.server);
    (void)sub.set_handler(wire.server,
                          [](const substrate::Invocation& inv) -> Result<Bytes> {
                            return Bytes(inv.data.begin(), inv.data.end());
                          });
    return wire;
  };
  const Wire wire_a = wire_up(*sub_a);
  const Wire wire_b = wire_up(*sub_b);
  const Cycles start_a = sub_a->machine().now();
  const Cycles start_b = sub_b->machine().now();

  Executor executor({.threads = 4});
  std::vector<Future> futures;
  for (int i = 0; i < 50; ++i) {
    substrate::IsolationSubstrate& sub = (i % 2 == 0) ? *sub_a : *sub_b;
    const Wire& wire = (i % 2 == 0) ? wire_a : wire_b;
    auto f = executor.submit(
        DomainKey{&sub, wire.client},
        [&sub, wire]() -> Result<Bytes> {
          return sub.call(wire.client, wire.channel, to_bytes("tick"));
        });
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  executor.wait_all();
  for (Future& future : futures) ASSERT_TRUE(future.wait().ok());
  // 25 calls each; the per-substrate serialization means the simulated
  // clocks advanced by exactly 25 round trips — no torn updates.
  const Cycles per_call =
      sub_a->message_cost(4) + sub_a->message_cost(4);
  EXPECT_EQ(sub_a->machine().now() - start_a, 25 * per_call);
  EXPECT_EQ(sub_b->machine().now() - start_b, 25 * per_call);
}

TEST(Executor, CoreRoutingHashFallbackAndAffinity) {
  auto machine = test::make_smp_machine(4, "exec-smp");
  auto sub = *test::shared_registry().create("microkernel", *machine);
  const auto worker = *sub->create_domain(tc_spec("worker"));
  const auto helper = *sub->create_domain(tc_spec("helper"));
  Executor executor({.threads = 2});

  // Without an explicit pin a domain's home core is its key hash modulo the
  // machine's core count — stable across queries, and always on-machine.
  const DomainKey kw{sub.get(), worker};
  const std::size_t home = executor.core_of(kw);
  EXPECT_LT(home, 4u);
  EXPECT_EQ(executor.core_of(kw), home);
  // Keys without simulated hardware have no cores to route across.
  EXPECT_EQ(executor.core_of(DomainKey{}), 0u);

  // set_affinity overrides the hash; off-machine cores are refused and the
  // previous pin survives the refusal.
  ASSERT_TRUE(executor.set_affinity(kw, 3).ok());
  EXPECT_EQ(executor.core_of(kw), 3u);
  EXPECT_EQ(executor.set_affinity(kw, 4).error(), Errc::invalid_argument);
  EXPECT_EQ(executor.core_of(kw), 3u);

  // The pin is real accounting, not a label: a task submitted on a pinned
  // key runs under a CoreLease, so its cycles land on that core's clock.
  const DomainKey kh{sub.get(), helper};
  ASSERT_TRUE(executor.set_affinity(kh, 2).ok());
  const Cycles before1 = machine->core(1);
  const Cycles before2 = machine->core(2);
  auto future = executor.submit(kh, [&]() -> Result<Bytes> {
    sub->machine().advance(700);
    return Bytes{};
  });
  ASSERT_TRUE(future.ok());
  ASSERT_TRUE(future->wait().ok());
  executor.wait_all();
  EXPECT_EQ(machine->core(2) - before2, 700u);
  EXPECT_EQ(machine->core(1), before1);
}

TEST(Executor, PublishesSchedStatsThroughMetricsHub) {
  // The FIG13 observability satellite: an executor configured with a hub
  // publishes SchedStats under its label — steals/migrations counters plus
  // a per-core run-queue depth gauge sized to the widest machine it serves.
  MetricsHub hub;
  auto machine = test::make_smp_machine(4, "exec-hub");
  auto sub = *test::shared_registry().create("microkernel", *machine);
  const auto domain = *sub->create_domain(tc_spec("d"));
  Executor executor({.threads = 3, .hub = &hub, .label = "fig13.exec"});

  const DomainKey key{sub.get(), domain};
  ASSERT_TRUE(executor.set_affinity(key, 1).ok());
  for (int i = 0; i < 24; ++i) {
    // Spread across several domains (some hardware-free) so queues migrate
    // between workers; all of it must fold into one labelled block.
    const DomainKey k = (i % 3 == 0)
                            ? key
                            : DomainKey{nullptr,
                                        static_cast<substrate::DomainId>(
                                            100 + i % 5)};
    ASSERT_TRUE(
        executor.submit(k, []() -> Result<Bytes> { return Bytes{}; }).ok());
  }
  executor.wait_all();

  const SchedStats sched = hub.sched("fig13.exec").snapshot();
  ASSERT_EQ(sched.run_queue_depth.size(), 4u);  // sized to the machine
  for (const std::uint64_t depth : sched.run_queue_depth)
    EXPECT_EQ(depth, 0u);  // drained: the gauge reads empty queues
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(sched.steals, stats.steals);
  EXPECT_EQ(sched.migrations, stats.migrations);
  // A microkernel machine with one busy domain neither stalls at a serial
  // gate nor bounces cache lines; the published signals agree.
  EXPECT_EQ(sched.serial_stalls, sub->serial_stalls());
  EXPECT_EQ(sched.contention_events, machine->contention_events());
}

// ---------------------------------------------------------------------------
// AsyncRemoteProxy / AsyncRemoteDispatcher

class AsyncRemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    client_ = std::make_unique<net::SecureChannelEndpoint>(
        net::Role::initiator, to_bytes("async-i"), std::nullopt, std::nullopt);
    server_ = std::make_unique<net::SecureChannelEndpoint>(
        net::Role::responder, to_bytes("async-r"), std::nullopt, std::nullopt);
    auto msg1 = client_->start();
    ASSERT_TRUE(msg1.ok());
    auto msg2 = server_->handle_msg1(*msg1);
    ASSERT_TRUE(msg2.ok());
    auto msg3 = client_->handle_msg2(*msg2);
    ASSERT_TRUE(msg3.ok());
    ASSERT_TRUE(server_->handle_msg3(*msg3).ok());

    dispatcher_ = std::make_unique<AsyncRemoteDispatcher>(*server_);
    ASSERT_TRUE(dispatcher_
                    ->register_method("echo",
                                      [this](BytesView request)
                                          -> Result<Bytes> {
                                        ++server_calls_;
                                        return Bytes(request.begin(),
                                                     request.end());
                                      })
                    .ok());
    ASSERT_TRUE(dispatcher_
                    ->register_method("refuse",
                                      [](BytesView) -> Result<Bytes> {
                                        return Errc::access_denied;
                                      })
                    .ok());
  }

  AsyncRemoteProxy make_proxy(AsyncProxyConfig config = {}) {
    return AsyncRemoteProxy(
        *client_,
        [this](const std::vector<Bytes>& records)
            -> Result<std::vector<Bytes>> {
          ++bursts_;
          return dispatcher_->handle_burst(records);
        },
        config);
  }

  std::unique_ptr<net::SecureChannelEndpoint> client_;
  std::unique_ptr<net::SecureChannelEndpoint> server_;
  std::unique_ptr<AsyncRemoteDispatcher> dispatcher_;
  int server_calls_ = 0;
  int bursts_ = 0;
};

TEST_F(AsyncRemoteTest, PipelinedBurstMatchesRepliesById) {
  AsyncRemoteProxy proxy = make_proxy();
  std::vector<RequestId> ids;
  for (int i = 0; i < 5; ++i)
    ids.push_back(*proxy.submit("echo", to_bytes("r" + std::to_string(i))));
  ASSERT_TRUE(proxy.flush().ok());
  EXPECT_EQ(bursts_, 1);  // five invocations, one transport exchange
  EXPECT_EQ(server_calls_, 5);
  for (int i = 4; i >= 0; --i) {
    auto reply = proxy.take(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(to_string(*reply), "r" + std::to_string(i));
  }
}

TEST_F(AsyncRemoteTest, RemoteErrorsStayPerRequest) {
  AsyncRemoteProxy proxy = make_proxy();
  const RequestId good = *proxy.submit("echo", to_bytes("fine"));
  const RequestId bad = *proxy.submit("refuse", to_bytes("x"));
  const RequestId missing = *proxy.submit("no-such-method", {});
  ASSERT_TRUE(proxy.flush().ok());
  EXPECT_EQ(to_string(*proxy.take(good)), "fine");
  EXPECT_EQ(proxy.take(bad).error(), Errc::access_denied);
  EXPECT_EQ(proxy.take(missing).error(), Errc::invalid_argument);
}

TEST_F(AsyncRemoteTest, CancelBeforeFlushLeavesChannelHealthy) {
  AsyncRemoteProxy proxy = make_proxy();
  const RequestId keep = *proxy.submit("echo", to_bytes("keep"));
  const RequestId drop = *proxy.submit("echo", to_bytes("drop"));
  ASSERT_TRUE(proxy.cancel(drop).ok());
  ASSERT_TRUE(proxy.flush().ok());
  EXPECT_EQ(proxy.take(drop).error(), Errc::cancelled);
  EXPECT_EQ(to_string(*proxy.take(keep)), "keep");
  EXPECT_EQ(server_calls_, 1);
  // Cancellation left no hole in the record sequence: further traffic works.
  EXPECT_EQ(to_string(*proxy.call("echo", to_bytes("after"))), "after");
}

TEST_F(AsyncRemoteTest, DepthBoundRejectsExcessSubmissions) {
  AsyncRemoteProxy proxy = make_proxy({.depth = 2});
  ASSERT_TRUE(proxy.submit("echo", to_bytes("a")).ok());
  ASSERT_TRUE(proxy.submit("echo", to_bytes("b")).ok());
  EXPECT_EQ(proxy.submit("echo", to_bytes("c")).error(), Errc::exhausted);
  EXPECT_EQ(proxy.metrics().rejected, 1u);
  ASSERT_TRUE(proxy.flush().ok());
  EXPECT_TRUE(proxy.submit("echo", to_bytes("c")).ok());
}

TEST_F(AsyncRemoteTest, TransportFailureCompletesEveryInFlightRequest) {
  AsyncRemoteProxy proxy(
      *client_,
      [](const std::vector<Bytes>&) -> Result<std::vector<Bytes>> {
        return Errc::io_error;  // the network ate the burst
      });
  const RequestId a = *proxy.submit("echo", to_bytes("a"));
  const RequestId b = *proxy.submit("echo", to_bytes("b"));
  ASSERT_TRUE(proxy.flush().ok());
  EXPECT_EQ(proxy.take(a).error(), Errc::io_error);
  EXPECT_EQ(proxy.take(b).error(), Errc::io_error);
  EXPECT_EQ(proxy.pending(), 0u);
}

TEST_F(AsyncRemoteTest, TamperedBurstRecordRefusedByDispatcher) {
  AsyncRemoteProxy proxy(
      *client_,
      [this](const std::vector<Bytes>& records) -> Result<std::vector<Bytes>> {
        std::vector<Bytes> tampered = records;
        tampered.back()[tampered.back().size() - 1] ^= 0x01;
        return dispatcher_->handle_burst(tampered);
      });
  ASSERT_TRUE(proxy.submit("echo", to_bytes("x")).ok());
  const RequestId last = *proxy.submit("echo", to_bytes("y"));
  (void)last;
  // The dispatcher refuses the whole burst (its sequence window broke);
  // the proxy surfaces that as each request's completion.
  ASSERT_TRUE(proxy.flush().ok());
  EXPECT_EQ(proxy.take(1).error(), Errc::verification_failed);
  EXPECT_EQ(proxy.take(2).error(), Errc::verification_failed);
}

TEST_F(AsyncRemoteTest, ReapDrainsCompletedEventsInOrder) {
  AsyncRemoteProxy proxy = make_proxy();
  std::vector<RequestId> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(*proxy.submit("echo", to_bytes("r" + std::to_string(i))));
  ASSERT_TRUE(proxy.flush().ok());
  std::vector<CqEvent> first = proxy.reap(3);
  ASSERT_EQ(first.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(first[i].id, ids[i]);  // oldest request id first
    ASSERT_TRUE(first[i].ok());
    EXPECT_EQ(to_string(first[i].payload), "r" + std::to_string(i));
  }
  std::size_t rest = proxy.for_each_completion([&](CqEvent& event) {
    EXPECT_EQ(event.id, ids[3]);
  });
  EXPECT_EQ(rest, 1u);
  EXPECT_TRUE(proxy.reap().empty());
}

TEST_F(AsyncRemoteTest, AdaptiveAutoFlushRingsAtDepthTarget) {
  AsyncProxyConfig config;
  config.adaptive.min_batch = 2;
  config.adaptive.max_batch = 8;
  config.adaptive.adaptive = true;
  AsyncRemoteProxy proxy = make_proxy(config);
  EXPECT_EQ(proxy.batch_depth(), 2u);
  ASSERT_TRUE(proxy.submit("echo", to_bytes("a")).ok());
  EXPECT_EQ(bursts_, 0);  // below target: nothing on the wire yet
  ASSERT_TRUE(proxy.submit("echo", to_bytes("b")).ok());
  EXPECT_EQ(bursts_, 1);  // target reached: implicit flush
  EXPECT_EQ(proxy.pending(), 0u);
  EXPECT_EQ(proxy.reap().size(), 2u);
  // The saturated no-latency window grew the target (cold start).
  EXPECT_EQ(proxy.batch_depth(), 4u);
  EXPECT_EQ(proxy.metrics().doorbells, 1u);
}

TEST_F(AsyncRemoteTest, WaitFlushesImplicitly) {
  AsyncRemoteProxy proxy = make_proxy();
  const RequestId id = *proxy.submit("echo", to_bytes("lazy"));
  EXPECT_EQ(proxy.take(id).error(), Errc::would_block);  // not flushed yet
  EXPECT_EQ(to_string(*proxy.wait(id)), "lazy");
  EXPECT_EQ(proxy.take(999).error(), Errc::invalid_argument);
}

// ---------------------------------------------------------------------------
// The batched path behaves identically on every capable substrate — same
// conformance posture as substrate_conformance_test.cpp.

class BatchedPathConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("batched-" + GetParam());
    substrate_ = *test::shared_registry().create(GetParam(), *machine_);
    client_ = *substrate_->create_domain(tc_spec("client"));
    const bool use_legacy = has_feature(substrate_->info().features,
                                        substrate::Feature::legacy_hosting);
    server_ = *substrate_->create_domain(use_legacy
                                             ? test::legacy_spec("server")
                                             : tc_spec("server"));
    channel_ = *substrate_->create_channel(client_, server_);
    ASSERT_TRUE(substrate_
                    ->set_handler(server_,
                                  [](const substrate::Invocation& inv)
                                      -> Result<Bytes> {
                                    Bytes reply(inv.data.begin(),
                                                inv.data.end());
                                    reply.push_back('!');
                                    return reply;
                                  })
                    .ok());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> substrate_;
  substrate::DomainId client_ = 0, server_ = 0;
  substrate::ChannelId channel_ = 0;
};

TEST_P(BatchedPathConformance, BatchRoundTrip) {
  BatchChannel batch(*substrate_, client_, channel_);
  std::vector<SubmissionId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(*batch.submit(to_bytes("m" + std::to_string(i))));
  ASSERT_TRUE(batch.flush().ok());
  for (int i = 0; i < 8; ++i) {
    auto reply = batch.wait(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(to_string(*reply), "m" + std::to_string(i) + "!");
  }
}

TEST_P(BatchedPathConformance, BatchingAmortizesTheCrossing) {
  const Cycles before_sync = substrate_->machine().now();
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(substrate_->call(client_, channel_, to_bytes("ping")).ok());
  const Cycles sync_cost = substrate_->machine().now() - before_sync;

  BatchChannel batch(*substrate_, client_, channel_);
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(batch.submit(to_bytes("ping")).ok());
  const Cycles before_batch = substrate_->machine().now();
  ASSERT_TRUE(batch.flush().ok());
  const Cycles batch_cost = substrate_->machine().now() - before_batch;

  ASSERT_GT(batch_cost, 0u);
  // The acceptance bar: batch-32 must be at least 5x cheaper per call.
  EXPECT_GE(sync_cost / batch_cost, 5u)
      << GetParam() << ": sync=" << sync_cost << " batched=" << batch_cost;
}

TEST_P(BatchedPathConformance, LosslessUnderCancelAndDeadline) {
  // Move the simulated clock past cycle 1 so an absolute deadline of 1 is
  // expired on every substrate regardless of its setup costs.
  ASSERT_TRUE(substrate_->call(client_, channel_, to_bytes("warm")).ok());
  ASSERT_GT(substrate_->machine().now(), 1u);
  BatchChannel batch(*substrate_, client_, channel_, {.depth = 8});
  std::vector<SubmissionId> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(*batch.submit(to_bytes("x"), {.deadline = (i == 5)
                                                    ? Cycles{1}
                                                    : Cycles{0}}));
  ASSERT_TRUE(batch.cancel(ids[0]).ok());
  ASSERT_TRUE(batch.flush().ok());
  std::size_t drained = 0;
  while (batch.next_completion().ok()) ++drained;
  EXPECT_EQ(drained, 6u);
  const InvocationCounters& m = batch.metrics();
  EXPECT_EQ(m.submitted, m.completed + m.cancelled + m.timed_out);
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_EQ(m.timed_out, 1u);
  EXPECT_EQ(m.in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBatchedSubstrates, BatchedPathConformance,
                         ::testing::Values("microkernel", "trustzone", "sgx"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace lateral::runtime
