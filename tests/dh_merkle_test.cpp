// Diffie-Hellman agreement and Merkle tree properties.
#include <gtest/gtest.h>

#include "crypto/dh.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "util/rng.h"

namespace lateral::crypto {
namespace {

TEST(Dh, SharedSecretAgrees) {
  HmacDrbg drbg(to_bytes("dh"));
  const DhGroup& group = DhGroup::oakley1();
  const DhKeyPair a = DhKeyPair::generate(group, drbg);
  const DhKeyPair b = DhKeyPair::generate(group, drbg);
  auto sa = dh_shared_secret(group, a.private_key, b.public_key);
  auto sb = dh_shared_secret(group, b.private_key, a.public_key);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(*sa, *sb);
}

TEST(Dh, DistinctSessionsDistinctSecrets) {
  HmacDrbg drbg(to_bytes("dh2"));
  const DhGroup& group = DhGroup::oakley1();
  const DhKeyPair a = DhKeyPair::generate(group, drbg);
  const DhKeyPair b = DhKeyPair::generate(group, drbg);
  const DhKeyPair c = DhKeyPair::generate(group, drbg);
  EXPECT_NE(*dh_shared_secret(group, a.private_key, b.public_key),
            *dh_shared_secret(group, a.private_key, c.public_key));
}

TEST(Dh, RejectsDegeneratePublicValues) {
  HmacDrbg drbg(to_bytes("dh3"));
  const DhGroup& group = DhGroup::oakley1();
  const DhKeyPair a = DhKeyPair::generate(group, drbg);
  EXPECT_FALSE(dh_shared_secret(group, a.private_key, Bignum(0)).ok());
  EXPECT_FALSE(dh_shared_secret(group, a.private_key, Bignum(1)).ok());
  EXPECT_FALSE(
      dh_shared_secret(group, a.private_key, group.p - Bignum(1)).ok());
  EXPECT_FALSE(dh_shared_secret(group, a.private_key, group.p).ok());
}

TEST(Dh, SecretIsFixedWidth) {
  HmacDrbg drbg(to_bytes("dh4"));
  const DhGroup& group = DhGroup::oakley1();
  const DhKeyPair a = DhKeyPair::generate(group, drbg);
  const DhKeyPair b = DhKeyPair::generate(group, drbg);
  auto s = dh_shared_secret(group, a.private_key, b.public_key);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), (group.p.bit_length() + 7) / 8);
}

TEST(Dh, PublicKeyInGroup) {
  HmacDrbg drbg(to_bytes("dh5"));
  const DhGroup& group = DhGroup::oakley1();
  for (int i = 0; i < 5; ++i) {
    const DhKeyPair kp = DhKeyPair::generate(group, drbg);
    EXPECT_LT(kp.public_key, group.p);
    EXPECT_GT(kp.public_key, Bignum(1));
  }
}

TEST(Merkle, EmptyTreeHasStableRoot) {
  MerkleTree a(4), b(4);
  EXPECT_EQ(a.root(), b.root());
}

TEST(Merkle, UpdateChangesRoot) {
  MerkleTree tree(4);
  const Digest before = tree.root();
  ASSERT_TRUE(tree.update_leaf(2, to_bytes("data")).ok());
  EXPECT_NE(tree.root(), before);
}

TEST(Merkle, SameContentSameRoot) {
  MerkleTree a(8), b(8);
  for (std::size_t i = 0; i < 8; ++i) {
    const Bytes data = to_bytes("leaf-" + std::to_string(i));
    ASSERT_TRUE(a.update_leaf(i, data).ok());
    ASSERT_TRUE(b.update_leaf(i, data).ok());
  }
  EXPECT_EQ(a.root(), b.root());
}

TEST(Merkle, OrderOfUpdatesIrrelevant) {
  MerkleTree a(4), b(4);
  ASSERT_TRUE(a.update_leaf(0, to_bytes("x")).ok());
  ASSERT_TRUE(a.update_leaf(3, to_bytes("y")).ok());
  ASSERT_TRUE(b.update_leaf(3, to_bytes("y")).ok());
  ASSERT_TRUE(b.update_leaf(0, to_bytes("x")).ok());
  EXPECT_EQ(a.root(), b.root());
}

TEST(Merkle, ProofVerifies) {
  MerkleTree tree(8);
  for (std::size_t i = 0; i < 8; ++i)
    ASSERT_TRUE(tree.update_leaf(i, to_bytes("v" + std::to_string(i))).ok());
  for (std::size_t i = 0; i < 8; ++i) {
    auto proof = tree.prove(i);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(MerkleTree::verify(tree.root(),
                                   to_bytes("v" + std::to_string(i)), *proof)
                    .ok());
  }
}

TEST(Merkle, ProofRejectsWrongData) {
  MerkleTree tree(4);
  ASSERT_TRUE(tree.update_leaf(1, to_bytes("real")).ok());
  auto proof = tree.prove(1);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(
      MerkleTree::verify(tree.root(), to_bytes("fake"), *proof).error(),
      Errc::verification_failed);
}

TEST(Merkle, ProofRejectsWrongPosition) {
  MerkleTree tree(4);
  ASSERT_TRUE(tree.update_leaf(0, to_bytes("a")).ok());
  ASSERT_TRUE(tree.update_leaf(1, to_bytes("b")).ok());
  auto proof = tree.prove(0);
  ASSERT_TRUE(proof.ok());
  proof->index = 1;  // leaf 0's data claimed at position 1
  // The sibling path for leaf 0 applied at index 1 folds in the wrong
  // order, so the computed root differs.
  EXPECT_FALSE(MerkleTree::verify(tree.root(), to_bytes("a"), *proof).ok());
}

TEST(Merkle, OutOfRangeLeafRejected) {
  MerkleTree tree(4);
  EXPECT_FALSE(tree.update_leaf(4, to_bytes("x")).ok());
  EXPECT_FALSE(tree.prove(4).ok());
}

TEST(Merkle, NonPowerOfTwoLeafCount) {
  MerkleTree tree(5);
  EXPECT_EQ(tree.leaf_count(), 5u);
  ASSERT_TRUE(tree.update_leaf(4, to_bytes("last")).ok());
  auto proof = tree.prove(4);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), to_bytes("last"), *proof).ok());
}

TEST(Merkle, DomainSeparationLeafVsNode) {
  // A leaf containing what looks like two concatenated digests must not
  // equal an interior node hash (0x00 vs 0x01 tags).
  const Digest l = MerkleTree::leaf_hash(to_bytes("x"));
  const Digest r = MerkleTree::leaf_hash(to_bytes("y"));
  Bytes fake;
  fake.insert(fake.end(), l.begin(), l.end());
  fake.insert(fake.end(), r.begin(), r.end());
  EXPECT_NE(MerkleTree::leaf_hash(fake), MerkleTree::node_hash(l, r));
}

class MerkleSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizeTest, AllProofsVerifyAtSize) {
  const std::size_t n = GetParam();
  MerkleTree tree(n);
  util::Xoshiro rng(n);
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(rng.bytes(16));
    ASSERT_TRUE(tree.update_leaf(i, leaves.back()).ok());
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto proof = tree.prove(i);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], *proof).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizeTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 31, 64));

}  // namespace
}  // namespace lateral::crypto
