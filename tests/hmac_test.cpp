// HMAC-SHA256 against RFC 4231, HKDF against RFC 5869, HMAC-DRBG behaviour.
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "util/hex.h"
#include "util/rng.h"

namespace lateral::crypto {
namespace {

Bytes unhex(const std::string& hex) {
  auto r = util::from_hex(hex);
  EXPECT_TRUE(r.ok());
  return *r;
}

std::string hex_of(const Digest& d) { return util::to_hex(digest_view(d)); }

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_of(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 (short key).
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_of(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa key, 0xdd data).
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_of(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6 (key longer than the block size).
TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex_of(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, IncrementalMatchesOneShot) {
  Hmac ctx(to_bytes("key"));
  ctx.update(to_bytes("part1"));
  ctx.update(to_bytes("part2"));
  EXPECT_EQ(ctx.finish(), hmac_sha256(to_bytes("key"), to_bytes("part1part2")));
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  EXPECT_NE(hmac_sha256(to_bytes("k1"), to_bytes("m")),
            hmac_sha256(to_bytes("k2"), to_bytes("m")));
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = unhex("000102030405060708090a0b0c");
  const Bytes info = unhex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(util::to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3 (empty salt and info).
TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(util::to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthControl) {
  const Digest prk = hkdf_extract(to_bytes("salt"), to_bytes("ikm"));
  EXPECT_EQ(hkdf_expand(prk, to_bytes("i"), 1).size(), 1u);
  EXPECT_EQ(hkdf_expand(prk, to_bytes("i"), 33).size(), 33u);
  EXPECT_EQ(hkdf_expand(prk, to_bytes("i"), 255 * 32).size(), 255u * 32);
  EXPECT_THROW(hkdf_expand(prk, to_bytes("i"), 255 * 32 + 1), Error);
}

TEST(Hkdf, ExpandPrefixConsistency) {
  // Shorter outputs are prefixes of longer ones (HKDF structure).
  const Digest prk = hkdf_extract(to_bytes("s"), to_bytes("k"));
  const Bytes long_out = hkdf_expand(prk, to_bytes("ctx"), 64);
  const Bytes short_out = hkdf_expand(prk, to_bytes("ctx"), 16);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(HmacDrbg, DeterministicForSameSeed) {
  HmacDrbg a(to_bytes("seed")), b(to_bytes("seed"));
  EXPECT_EQ(a.generate(64), b.generate(64));
  EXPECT_EQ(a.generate(17), b.generate(17));
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a(to_bytes("seed-a")), b(to_bytes("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, OutputAdvancesState) {
  HmacDrbg drbg(to_bytes("seed"));
  EXPECT_NE(drbg.generate(32), drbg.generate(32));
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(to_bytes("seed")), b(to_bytes("seed"));
  (void)a.generate(8);
  (void)b.generate(8);
  b.reseed(to_bytes("extra entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, LargeRequest) {
  HmacDrbg drbg(to_bytes("seed"));
  EXPECT_EQ(drbg.generate(10'000).size(), 10'000u);
}

}  // namespace
}  // namespace lateral::crypto
