// Core ecosystem: manifest DSL, validation, policy checker, trust graph,
// TCB accounting, composer/assembly POLA, session demux (confused deputy),
// attestation protocol.
#include <gtest/gtest.h>

#include "core/attestation.h"
#include "core/composer.h"
#include "core/manifest.h"
#include "core/policy.h"
#include "core/session.h"
#include "core/standard_registry.h"
#include "core/tcb.h"
#include "core/trust_graph.h"
#include "microkernel/microkernel.h"
#include "test_support.h"

namespace lateral::core {
namespace {

using substrate::AttackerModel;
using substrate::DomainKind;
using substrate::Feature;

constexpr const char* kEmailManifest = R"(
# Decomposed email client (paper §III-C)
component tls {
  kind trusted
  substrate sgx
  pages 4
  attacker physical_bus
  channel imap
  seal
  attest
  assets 10
  loc 4000
}
component imap {
  kind trusted
  substrate microkernel
  channel tls
  channel render
  assets 2
  loc 8000
}
component render {
  kind trusted
  substrate microkernel
  channel imap
  trusts imap
  assets 1
  loc 30000
}
)";

TEST(ManifestParser, ParsesFullExample) {
  auto manifests = parse_manifests(kEmailManifest);
  ASSERT_TRUE(manifests.ok());
  ASSERT_EQ(manifests->size(), 3u);
  const Manifest& tls = (*manifests)[0];
  EXPECT_EQ(tls.name, "tls");
  EXPECT_EQ(tls.kind, DomainKind::trusted_component);
  EXPECT_EQ(tls.substrate_name, "sgx");
  EXPECT_EQ(tls.memory_pages, 4u);
  EXPECT_EQ(tls.attacker, AttackerModel::physical_bus);
  EXPECT_EQ(tls.channels, std::vector<std::string>{"imap"});
  EXPECT_TRUE(tls.needs_sealing);
  EXPECT_TRUE(tls.needs_attestation);
  EXPECT_DOUBLE_EQ(tls.asset_value, 10.0);
  EXPECT_EQ(tls.loc, 4000u);
  EXPECT_EQ((*manifests)[2].trusts, std::vector<std::string>{"imap"});
}

TEST(ManifestParser, CommentsAndBlankLinesIgnored) {
  auto manifests = parse_manifests(
      "# top comment\n\ncomponent x {\n  kind legacy  # inline\n}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_EQ(manifests->size(), 1u);
  EXPECT_EQ((*manifests)[0].kind, DomainKind::legacy);
}

TEST(ManifestParser, RejectsMalformedInput) {
  EXPECT_FALSE(parse_manifests("component x {").ok());       // unterminated
  EXPECT_FALSE(parse_manifests("kind trusted\n").ok());      // outside block
  EXPECT_FALSE(parse_manifests("component x {\n component y {\n}\n}\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n bogus y\n}\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n attacker alien\n}\n").ok());
  EXPECT_FALSE(parse_manifests("component x y {\n}\n").ok());
}

TEST(ManifestParser, RoundTripsThroughText) {
  auto original = parse_manifests(kEmailManifest);
  ASSERT_TRUE(original.ok());
  auto reparsed = parse_manifests(to_text(*original));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), original->size());
  for (std::size_t i = 0; i < original->size(); ++i) {
    EXPECT_EQ((*reparsed)[i].name, (*original)[i].name);
    EXPECT_EQ((*reparsed)[i].channels, (*original)[i].channels);
    EXPECT_EQ((*reparsed)[i].trusts, (*original)[i].trusts);
    EXPECT_EQ((*reparsed)[i].attacker, (*original)[i].attacker);
    EXPECT_EQ((*reparsed)[i].loc, (*original)[i].loc);
  }
}

TEST(ManifestParser, ParsesRestartStanza) {
  auto manifests = parse_manifests(
      "component x {\n"
      "  restart {\n"
      "    max 5\n"
      "    backoff 2000\n"
      "    escalate halted\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].restart.has_value());
  EXPECT_EQ((*manifests)[0].restart->max_restarts, 5u);
  EXPECT_EQ((*manifests)[0].restart->backoff_cycles, 2000u);
  EXPECT_EQ((*manifests)[0].restart->escalation,
            RestartPolicy::Escalation::halted);
}

TEST(ManifestParser, EmptyRestartStanzaMeansDefaults) {
  auto manifests = parse_manifests("component x {\n  restart {\n  }\n}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].restart.has_value());
  EXPECT_EQ(*(*manifests)[0].restart, RestartPolicy{});
  // And absence means unsupervised — the two are different declarations.
  auto plain = parse_manifests("component y {\n}\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)[0].restart.has_value());
}

TEST(ManifestParser, RestartStanzaRoundTrips) {
  auto original = parse_manifests(
      "component x {\n  restart {\n    max 2\n    backoff 512\n"
      "    escalate degraded\n  }\n}\n");
  ASSERT_TRUE(original.ok());
  auto reparsed = parse_manifests(to_text(*original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].restart, (*original)[0].restart);
}

TEST(ManifestParser, RejectsMalformedRestartStanza) {
  EXPECT_FALSE(parse_manifests("component x {\n restart {\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n restart\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n restart {\n bogus 1\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n restart {\n escalate meltdown\n}\n}\n")
          .ok());
  EXPECT_FALSE(parse_manifests("component x {\n restart {\n}\n restart {\n}\n}\n")
                   .ok());  // one stanza per component
}

TEST(ManifestParser, ParsesSloStanza) {
  auto manifests = parse_manifests(
      "component svc {\n"
      "  restart {\n"
      "  }\n"
      "  slo {\n"
      "    p99 5000\n"
      "    error_rate 50\n"
      "    window 10000\n"
      "    burn_windows 4\n"
      "    restart\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].slo.has_value());
  EXPECT_EQ((*manifests)[0].slo->p99_cycles, 5000u);
  EXPECT_EQ((*manifests)[0].slo->error_permille, 50u);
  EXPECT_EQ((*manifests)[0].slo->window_cycles, 10'000u);
  EXPECT_EQ((*manifests)[0].slo->burn_windows, 4u);
  EXPECT_TRUE((*manifests)[0].slo->restart);
}

TEST(ManifestParser, EmptySloStanzaMeansDefaultsAndAbsenceMeansUnwatched) {
  auto manifests = parse_manifests("component x {\n  slo {\n  }\n}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].slo.has_value());
  EXPECT_EQ(*(*manifests)[0].slo, SloPolicy{});
  auto plain = parse_manifests("component y {\n}\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)[0].slo.has_value());
}

TEST(ManifestParser, SloStanzaRoundTrips) {
  auto original = parse_manifests(
      "component svc {\n  restart {\n  }\n  slo {\n    p99 777\n"
      "    error_rate 10\n    window 4096\n    burn_windows 6\n"
      "    restart\n  }\n}\n");
  ASSERT_TRUE(original.ok());
  auto reparsed = parse_manifests(to_text(*original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].slo, (*original)[0].slo);
}

TEST(ManifestParser, RejectsMalformedSloStanza) {
  EXPECT_FALSE(parse_manifests("component x {\n slo {\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n slo\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n slo {\n bogus 1\n}\n}\n").ok());
  // error_rate is permille of offered load: 1001 cannot be an objective.
  EXPECT_FALSE(
      parse_manifests("component x {\n slo {\n error_rate 1001\n}\n}\n").ok());
  // `restart` inside slo is a bare flag, not a key-value.
  EXPECT_FALSE(
      parse_manifests("component x {\n slo {\n restart now\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n slo {\n}\n slo {\n}\n}\n").ok());
}

TEST(ManifestValidate, FlagsSloPolicyProblems) {
  const auto make = [] {
    auto manifests = parse_manifests(
        "component svc {\n  restart {\n  }\n  slo {\n    error_rate 50\n"
        "    window 10000\n    burn_windows 4\n    restart\n  }\n}\n");
    EXPECT_TRUE(manifests.ok());
    return (*manifests)[0];
  };
  EXPECT_TRUE(validate({make()}).empty());

  Manifest zero_window = make();
  zero_window.slo->window_cycles = 0;
  EXPECT_FALSE(validate({zero_window}).empty());

  Manifest zero_burn = make();
  zero_burn.slo->burn_windows = 0;
  EXPECT_FALSE(validate({zero_burn}).empty());

  // An slo stanza with every objective disabled checks nothing.
  Manifest no_objective = make();
  no_objective.slo->p99_cycles = 0;
  no_objective.slo->error_permille = 1000;
  const auto problems = validate({no_objective});
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no objective"), std::string::npos);

  // The watchdog only pulls triggers the recovery plan owns.
  Manifest unsupervised = make();
  unsupervised.restart.reset();
  const auto restart_problems = validate({unsupervised});
  ASSERT_EQ(restart_problems.size(), 1u);
  EXPECT_NE(restart_problems[0].find("slo restart without restart stanza"),
            std::string::npos);
}

TEST(ManifestParser, ParsesFleetStanzaAndRoundTrips) {
  auto manifests = parse_manifests(
      "component utility {\n"
      "  fleet {\n"
      "    ticket_ttl 7000000\n"
      "    cache 128 9000000\n"
      "    admit 32 512\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].fleet.has_value());
  EXPECT_EQ((*manifests)[0].fleet->ticket_ttl, 7'000'000u);
  EXPECT_EQ((*manifests)[0].fleet->cache_capacity, 128u);
  EXPECT_EQ((*manifests)[0].fleet->cache_ttl, 9'000'000u);
  EXPECT_EQ((*manifests)[0].fleet->admit_rate, 32u);
  EXPECT_EQ((*manifests)[0].fleet->admit_burst, 512u);

  auto reparsed = parse_manifests(to_text(*manifests));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].fleet, (*manifests)[0].fleet);

  // An empty stanza means "fleet frontend with defaults"; absence means
  // "not a fleet frontend" — different declarations.
  auto defaulted = parse_manifests("component x {\n  fleet {\n  }\n}\n");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(*(*defaulted)[0].fleet, FleetPolicy{});
  auto plain = parse_manifests("component y {\n}\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)[0].fleet.has_value());
}

TEST(ManifestParser, RejectsMalformedFleetStanza) {
  EXPECT_FALSE(parse_manifests("component x {\n fleet\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n fleet {\n bogus 1\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n fleet {\n cache 1\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n fleet {\n admit x y\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n fleet {\n}\n fleet {\n}\n}\n").ok());
  // Zero admission capacity is a validation problem, not a parse error.
  auto zero =
      parse_manifests("component x {\n fleet {\n admit 0 0\n}\n}\n");
  ASSERT_TRUE(zero.ok());
  const auto problems = validate(*zero);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("admission"), std::string::npos);
}

TEST(ManifestParser, ParsesRegionStanza) {
  auto manifests = parse_manifests(
      "component ui {\n"
      "  channel storage\n"
      "  region storage 65536\n"
      "  region render 4096 ro\n"
      "}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_EQ((*manifests)[0].regions.size(), 2u);
  EXPECT_EQ((*manifests)[0].regions[0],
            (RegionDecl{"storage", 65536, substrate::RegionPerms::read_write}));
  EXPECT_EQ((*manifests)[0].regions[1],
            (RegionDecl{"render", 4096, substrate::RegionPerms::read_only}));
}

TEST(ManifestParser, RegionStanzaRoundTrips) {
  auto original = parse_manifests(
      "component ui {\n  channel storage\n  region storage 8192\n"
      "  region render 512 ro\n}\ncomponent storage {\n}\n"
      "component render {\n}\n");
  ASSERT_TRUE(original.ok());
  auto reparsed = parse_manifests(to_text(*original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].regions, (*original)[0].regions);
}

TEST(ManifestParser, RejectsMalformedRegionStanza) {
  EXPECT_FALSE(parse_manifests("component x {\n region y\n}\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n region y 0\n}\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n region y 64 rw\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n region y 64 ro extra\n}\n").ok());
}

TEST(ManifestParser, ParsesTraceStanza) {
  auto manifests = parse_manifests(
      "component imap {\n"
      "  trace {\n"
      "    payload\n"
      "    observer ui\n"
      "    observer audit\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].trace.has_value());
  EXPECT_TRUE((*manifests)[0].trace->capture_payload);
  EXPECT_EQ((*manifests)[0].trace->observers,
            (std::vector<std::string>{"ui", "audit"}));
}

TEST(ManifestParser, EmptyTraceStanzaMeansRedactedDefaults) {
  auto manifests = parse_manifests("component x {\n  trace {\n  }\n}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].trace.has_value());
  EXPECT_EQ(*(*manifests)[0].trace, TracePolicy{});
  // Absence means no stanza at all — spans stay fully redacted either way,
  // but only the stanza can later grant observers.
  auto plain = parse_manifests("component y {\n}\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)[0].trace.has_value());
}

TEST(ManifestParser, TraceStanzaRoundTrips) {
  auto original = parse_manifests(
      "component x {\n  trace {\n    payload\n    observer ui\n  }\n}\n");
  ASSERT_TRUE(original.ok());
  auto reparsed = parse_manifests(to_text(*original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].trace, (*original)[0].trace);
}

TEST(ManifestParser, RejectsMalformedTraceStanza) {
  EXPECT_FALSE(parse_manifests("component x {\n trace {\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n trace\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n trace {\n bogus\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n trace {\n payload extra\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n trace {\n observer\n}\n}\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n trace {\n}\n trace {\n}\n}\n")
                   .ok());  // one stanza per component
}

TEST(ManifestParser, ParsesUpdateStanzaAndRoundTrips) {
  auto manifests = parse_manifests(
      "component fw {\n"
      "  restart {\n"
      "  }\n"
      "  update {\n"
      "    key vendor\n"
      "    slots 3\n"
      "    probation 7\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].update.has_value());
  EXPECT_EQ((*manifests)[0].update->key, "vendor");
  EXPECT_EQ((*manifests)[0].update->slots, 3u);
  EXPECT_EQ((*manifests)[0].update->probation_ticks, 7u);
  auto reparsed = parse_manifests(to_text(*manifests));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].update, (*manifests)[0].update);
}

TEST(ManifestParser, EmptyUpdateStanzaMeansDefaults) {
  auto manifests =
      parse_manifests("component fw {\n restart {\n}\n update {\n}\n}\n");
  ASSERT_TRUE(manifests.ok());
  ASSERT_TRUE((*manifests)[0].update.has_value());
  EXPECT_EQ(*(*manifests)[0].update, UpdatePolicy{});
}

TEST(ManifestParser, RejectsMalformedUpdateStanza) {
  EXPECT_FALSE(parse_manifests("component x {\n update {\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n update\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n update {\n bogus\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n update {\n slots\n}\n}\n").ok());
  EXPECT_FALSE(
      parse_manifests("component x {\n update {\n probation x\n}\n}\n").ok());
}

TEST(ManifestParser, DuplicateStanzasRejectedWithDiagnostics) {
  // Duplicate nested stanzas used to silently last-win; each one is now a
  // parse error whose diagnostic names the component and the stanza.
  const struct {
    const char* text;
    const char* expect;
  } cases[] = {
      {"component x {\n restart {\n}\n restart {\n}\n}\n",
       "duplicate restart"},
      {"component x {\n trace {\n}\n trace {\n}\n}\n", "duplicate trace"},
      {"component x {\n fleet {\n}\n fleet {\n}\n}\n", "duplicate fleet"},
      {"component x {\n update {\n}\n update {\n}\n}\n", "duplicate update"},
      {"component x {\n channel y\n region y 64\n region y 128\n}\n",
       "duplicate region y"},
  };
  for (const auto& c : cases) {
    std::string error;
    auto result = parse_manifests(c.text, &error);
    EXPECT_FALSE(result.ok()) << c.text;
    EXPECT_EQ(result.error(), Errc::invalid_argument);
    EXPECT_NE(error.find("component x"), std::string::npos) << error;
    EXPECT_NE(error.find(c.expect), std::string::npos) << error;
  }
}

TEST(ManifestValidate, FlagsUpdatePolicyProblems) {
  auto make = [] {
    std::vector<Manifest> bundle(1);
    bundle[0].name = "fw";
    bundle[0].restart.emplace();
    bundle[0].update.emplace();
    return bundle;
  };
  EXPECT_TRUE(validate(make()).empty());

  auto no_key = make();
  no_key[0].update->key.clear();
  EXPECT_FALSE(validate(no_key).empty());

  auto one_slot = make();
  one_slot[0].update->slots = 1;
  const auto slot_problems = validate(one_slot);
  ASSERT_EQ(slot_problems.size(), 1u);
  EXPECT_NE(slot_problems[0].find("fewer than 2 slots"), std::string::npos);

  auto zero_probation = make();
  zero_probation[0].update->probation_ticks = 0;
  EXPECT_FALSE(validate(zero_probation).empty());

  // An update policy on an unsupervised component can never commit (the
  // swap is a supervised restart), so validation refuses it up front.
  auto unsupervised = make();
  unsupervised[0].restart.reset();
  const auto problems = validate(unsupervised);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("without restart"), std::string::npos);
}

TEST(ManifestValidate, FlagsDuplicateRegionPeers) {
  std::vector<Manifest> bundle(2);
  bundle[0].name = "a";
  bundle[0].channels = {"b"};
  bundle[0].regions = {{"b", 4096, substrate::RegionPerms::read_write},
                       {"b", 512, substrate::RegionPerms::read_only}};
  bundle[1].name = "b";
  const auto problems = validate(bundle);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("duplicate region stanza to peer b"),
            std::string::npos);
}

TEST(ManifestValidate, AcceptsGoodBundle) {
  auto manifests = parse_manifests(kEmailManifest);
  ASSERT_TRUE(manifests.ok());
  EXPECT_TRUE(validate(*manifests).empty());
}

TEST(ManifestValidate, FlagsDuplicatesAndDanglingReferences) {
  std::vector<Manifest> bad(2);
  bad[0].name = "a";
  bad[0].channels = {"ghost"};
  bad[1].name = "a";
  const auto problems = validate(bad);
  EXPECT_GE(problems.size(), 2u);
}

TEST(ManifestValidate, FlagsTrustWithoutChannel) {
  std::vector<Manifest> bundle(2);
  bundle[0].name = "a";
  bundle[0].trusts = {"b"};  // no channel to b
  bundle[1].name = "b";
  EXPECT_FALSE(validate(bundle).empty());
}

TEST(ManifestValidate, FlagsSelfChannel) {
  std::vector<Manifest> bundle(1);
  bundle[0].name = "a";
  bundle[0].channels = {"a"};
  EXPECT_FALSE(validate(bundle).empty());
}

TEST(Policy, RequiredFeaturesEscalate) {
  const auto remote = required_features(AttackerModel::remote_network);
  const auto bus = required_features(AttackerModel::physical_bus);
  const auto intrusion = required_features(AttackerModel::physical_intrusion);
  EXPECT_TRUE(has_feature(remote, Feature::spatial_isolation));
  EXPECT_FALSE(has_feature(remote, Feature::memory_encryption));
  EXPECT_TRUE(has_feature(bus, Feature::memory_encryption));
  EXPECT_TRUE(has_feature(intrusion, Feature::attestation));
}

TEST(Policy, MicrokernelInsufficientForPhysicalBus) {
  // §III-C: "MMU-based isolation substrates are insufficient, because we
  // must assume the utility could access the server."
  auto machine = test::make_machine("policy");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  Manifest m;
  m.name = "anonymizer";
  m.attacker = AttackerModel::physical_bus;
  const PolicyVerdict verdict = check(m, kernel.info());
  EXPECT_FALSE(verdict.satisfied);
  EXPECT_FALSE(verdict.missing.empty());
}

TEST(Policy, SuitableSubstratesSortedByTcb) {
  auto machine = test::make_machine("policy2");
  auto& registry = test::shared_registry();
  std::vector<substrate::SubstrateInfo> infos;
  for (const std::string& name : registry.names()) {
    auto sub = registry.create(name, *machine);
    ASSERT_TRUE(sub.ok());
    infos.push_back((*sub)->info());
  }

  Manifest remote_only;
  remote_only.name = "x";
  remote_only.attacker = AttackerModel::remote_network;
  const auto fits_remote = suitable_substrates(remote_only, infos);
  EXPECT_GE(fits_remote.size(), 7u);
  // Cheapest-TCB first: NoC kernel (6 kLoC), CHERI (8 kLoC), microkernel.
  ASSERT_GE(fits_remote.size(), 3u);
  EXPECT_EQ(fits_remote[0], "noc");
  EXPECT_EQ(fits_remote[1], "cheri");
  EXPECT_EQ(fits_remote[2], "microkernel");

  Manifest bus;
  bus.name = "y";
  bus.attacker = AttackerModel::physical_bus;
  const auto fits_bus = suitable_substrates(bus, infos);
  for (const std::string& name : fits_bus) {
    EXPECT_NE(name, "microkernel");
    EXPECT_NE(name, "trustzone");
    EXPECT_NE(name, "cheri");
    EXPECT_NE(name, "ftpm");
  }
  EXPECT_FALSE(fits_bus.empty());
}

TEST(Policy, LegacyNeedsLegacyHosting) {
  auto machine = test::make_machine("policy3");
  auto tpm = test::shared_registry().create("tpm", *machine);
  ASSERT_TRUE(tpm.ok());
  Manifest legacy_os;
  legacy_os.name = "android";
  legacy_os.kind = DomainKind::legacy;
  EXPECT_FALSE(check(legacy_os, (*tpm)->info()).satisfied);
}

TEST(TrustGraph, MonolithicIsTotalLoss) {
  auto manifests = parse_manifests(kEmailManifest);
  ASSERT_TRUE(manifests.ok());
  const TrustGraph mono = TrustGraph::monolithic_counterfactual(*manifests);
  // Exploit anything, lose everything.
  EXPECT_DOUBLE_EQ(mono.containment(), 1.0);
  EXPECT_DOUBLE_EQ(*mono.compromised_value("render"), mono.total_value());
}

TEST(TrustGraph, DecompositionContains) {
  auto manifests = parse_manifests(kEmailManifest);
  ASSERT_TRUE(manifests.ok());
  const TrustGraph graph = TrustGraph::from_manifests(*manifests);
  // render trusts imap => compromising imap also takes render (value 2+1),
  // but tls (value 10) survives.
  auto from_imap = graph.compromised_set("imap");
  ASSERT_TRUE(from_imap.ok());
  EXPECT_TRUE(from_imap->contains("render"));
  EXPECT_FALSE(from_imap->contains("tls"));
  EXPECT_LT(graph.containment(),
            TrustGraph::monolithic_counterfactual(*manifests).containment());
}

TEST(TrustGraph, PropagationIsTransitive) {
  TrustGraph graph;
  for (const char* n : {"a", "b", "c", "d"}) ASSERT_TRUE(graph.add_node(n).ok());
  ASSERT_TRUE(graph.add_propagation_edge("a", "b").ok());
  ASSERT_TRUE(graph.add_propagation_edge("b", "c").ok());
  auto set = graph.compromised_set("a");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 3u);  // a, b, c — not d
  EXPECT_FALSE(set->contains("d"));
}

TEST(TrustGraph, EdgesRequireNodes) {
  TrustGraph graph;
  ASSERT_TRUE(graph.add_node("a").ok());
  EXPECT_FALSE(graph.add_propagation_edge("a", "ghost").ok());
  EXPECT_FALSE(graph.add_propagation_edge("ghost", "a").ok());
  EXPECT_FALSE(graph.compromised_set("ghost").ok());
}

TEST(TrustGraph, DotExportContainsStructure) {
  TrustGraph graph;
  ASSERT_TRUE(graph.add_node("alpha", 2.0).ok());
  ASSERT_TRUE(graph.add_node("beta").ok());
  ASSERT_TRUE(graph.add_propagation_edge("alpha", "beta").ok());
  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("\"alpha\" -> \"beta\""), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Tcb, PerComponentClosure) {
  auto manifests = parse_manifests(kEmailManifest);
  ASSERT_TRUE(manifests.ok());
  const std::map<std::string, std::uint64_t> substrate_loc = {
      {"microkernel", 10'000}, {"sgx", 20'000}};
  const auto reports = tcb_of_manifests(*manifests, substrate_loc);
  ASSERT_EQ(reports.size(), 3u);

  // tls: own 4000 + sgx 20000, trusts nobody.
  EXPECT_EQ(reports[0].component, "tls");
  EXPECT_EQ(reports[0].total(), 4000u + 20'000u);
  // render trusts imap: own 30000 + microkernel 10000 + imap 8000.
  EXPECT_EQ(reports[2].component, "render");
  EXPECT_EQ(reports[2].trusted_peer_loc, 8000u);
  EXPECT_EQ(reports[2].total(), 30'000u + 10'000u + 8'000u);

  // Monolith: everything plus one substrate.
  EXPECT_EQ(monolithic_tcb(*manifests, 10'000),
            10'000u + 4'000u + 8'000u + 30'000u);
  // Every decomposed component beats the monolith.
  for (const auto& report : reports)
    EXPECT_LT(report.total(), monolithic_tcb(*manifests, 10'000));
}

TEST(Tcb, TrustCyclesTerminate) {
  std::vector<Manifest> cyclic(2);
  cyclic[0].name = "a";
  cyclic[0].loc = 100;
  cyclic[0].channels = {"b"};
  cyclic[0].trusts = {"b"};
  cyclic[1].name = "b";
  cyclic[1].loc = 200;
  cyclic[1].channels = {"a"};
  cyclic[1].trusts = {"a"};
  const auto reports = tcb_of_manifests(cyclic, {});
  EXPECT_EQ(reports[0].trusted_peer_loc, 200u);
  EXPECT_EQ(reports[1].trusted_peer_loc, 100u);
}

class ComposerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("composer");
    mk_ = std::make_unique<microkernel::Microkernel>(
        *machine_, substrate::SubstrateConfig{});
    composer_ = std::make_unique<SystemComposer>(
        std::map<std::string, substrate::IsolationSubstrate*>{
            {"microkernel", mk_.get()}});
  }

  static std::vector<Manifest> triangle() {
    // a <-> b declared; c is isolated (no channels).
    std::vector<Manifest> m(3);
    m[0].name = "a";
    m[0].channels = {"b"};
    m[1].name = "b";
    m[1].channels = {"a"};
    m[2].name = "c";
    return m;
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<microkernel::Microkernel> mk_;
  std::unique_ptr<SystemComposer> composer_;
};

TEST(ManifestValidate, FlagsUnknownTraceObserver) {
  std::vector<Manifest> bundle(2);
  bundle[0].name = "a";
  bundle[0].trace.emplace();
  bundle[0].trace->observers = {"b", "ghost"};
  bundle[1].name = "b";
  const auto problems = validate(bundle);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("ghost"), std::string::npos);
}

TEST(TraceExportPolicy, GrantsAndDeniesByManifestConsent) {
  auto parsed = parse_manifests(
      "component imap {\n"
      "  channel ui\n"
      "  channel tls\n"
      "  trusts tls\n"
      "  trace {\n"
      "    payload\n"
      "    observer ui\n"
      "  }\n"
      "}\n"
      "component ui {\n  channel imap\n}\n"
      "component tls {\n  channel imap\n}\n"
      "component render {\n}\n");
  ASSERT_TRUE(parsed.ok());
  const auto& manifests = *parsed;
  // A component may always see its own spans.
  EXPECT_TRUE(check_trace_export(manifests, "imap", "imap").ok());
  // Observers named by the trace stanza are authorized.
  EXPECT_TRUE(check_trace_export(manifests, "imap", "ui").ok());
  // A declared trust edge also authorizes — the boundary was already open.
  EXPECT_TRUE(check_trace_export(manifests, "imap", "tls").ok());
  // Anyone else is refused outright.
  EXPECT_EQ(check_trace_export(manifests, "imap", "render").error(),
            Errc::redaction_denied);
  // Unknown component or observer names are caller errors, not denials.
  EXPECT_EQ(check_trace_export(manifests, "ghost", "ui").error(),
            Errc::invalid_argument);
  EXPECT_EQ(check_trace_export(manifests, "imap", "ghost").error(),
            Errc::invalid_argument);
}

TEST(ManifestValidate, FlagsRegionProblems) {
  std::vector<Manifest> bundle(2);
  bundle[0].name = "a";
  bundle[0].channels = {"b"};
  bundle[0].regions = {{"ghost", 4096, substrate::RegionPerms::read_write},
                       {"a", 4096, substrate::RegionPerms::read_write}};
  bundle[1].name = "b";
  // Region to b is fine channel-wise, but c declares one without a channel.
  bundle[1].regions = {{"a", 4096, substrate::RegionPerms::read_write}};
  const auto problems = validate(bundle);
  // ghost peer + self region + b's region without a channel.
  EXPECT_GE(problems.size(), 3u);
}

TEST_F(ComposerTest, ComposesDeclaredSystem) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok()) << composer_->diagnostics().size();
  EXPECT_EQ((*assembly)->component_names().size(), 3u);
  ASSERT_TRUE((*assembly)
                  ->set_behavior("b",
                                 [](const substrate::Invocation& inv)
                                     -> Result<Bytes> {
                                   Bytes reply = to_bytes("b-saw:");
                                   reply.insert(reply.end(), inv.data.begin(),
                                                inv.data.end());
                                   return reply;
                                 })
                  .ok());
  auto reply = (*assembly)->invoke("a", "b", to_bytes("hello"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "b-saw:hello");
}

TEST_F(ComposerTest, PolaRefusesUndeclaredChannel) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  // a <-> c was never declared: the framework refuses before the substrate.
  EXPECT_EQ((*assembly)->invoke("a", "c", to_bytes("x")).error(),
            Errc::policy_violation);
  EXPECT_EQ((*assembly)->send("c", "b", to_bytes("x")).error(),
            Errc::policy_violation);
}

TEST_F(ComposerTest, SubstrateEnforcesEvenWithoutManifestCheck) {
  // Defence in depth (fig6 ablation): disable the framework check; the
  // substrate still refuses because no channel object exists.
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  (*assembly)->set_manifest_enforcement(false);
  EXPECT_EQ((*assembly)->invoke("a", "c", to_bytes("x")).error(),
            Errc::no_such_channel);
}

TEST_F(ComposerTest, AsyncSendReceive) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  ASSERT_TRUE((*assembly)->send("a", "b", to_bytes("async")).ok());
  auto msg = (*assembly)->receive("b", "a");
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(to_string(msg->data), "async");
  EXPECT_EQ(msg->badge, *(*assembly)->badge_of("a", "b"));
}

TEST_F(ComposerTest, RejectsPolicyViolations) {
  std::vector<Manifest> bad(1);
  bad[0].name = "needs-bus-defence";
  bad[0].attacker = AttackerModel::physical_bus;  // microkernel can't
  EXPECT_EQ(composer_->compose(bad).error(), Errc::policy_violation);
  EXPECT_FALSE(composer_->diagnostics().empty());
}

TEST_F(ComposerTest, FailedCompositionLeavesNoOrphanDomains) {
  // The fourth component exhausts SEP's two-environment limit mid-compose;
  // everything created before it must be torn down again.
  auto machine = test::make_machine("composer-unwind");
  auto sep = *test::shared_registry().create("sep", *machine);
  SystemComposer composer({{"sep", sep.get()}});
  std::vector<Manifest> bundle(2);
  bundle[0].name = "first";
  bundle[0].substrate_name = "sep";
  bundle[1].name = "second";  // second trusted component: SEP refuses
  bundle[1].substrate_name = "sep";
  EXPECT_EQ(composer.compose(bundle).error(), Errc::policy_violation);
  EXPECT_TRUE(sep->domains().empty());
  // The slot is genuinely free again.
  EXPECT_TRUE(sep->create_domain(test::tc_spec("later")).ok());
}

TEST_F(ComposerTest, RejectsUnknownSubstrate) {
  std::vector<Manifest> bad(1);
  bad[0].name = "x";
  bad[0].substrate_name = "quantum-isolator";
  EXPECT_EQ(composer_->compose(bad).error(), Errc::policy_violation);
}

TEST_F(ComposerTest, CompromiseMarksSubstrateDomain) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  ASSERT_TRUE((*assembly)->compromise("a").ok());
  auto component = (*assembly)->component("a");
  ASSERT_TRUE(component.ok());
  EXPECT_TRUE(mk_->is_compromised((*component)->domain));
}

TEST_F(ComposerTest, TrustGraphFromAssembly) {
  auto manifests = triangle();
  manifests[0].trusts = {"b"};
  auto assembly = composer_->compose(manifests);
  ASSERT_TRUE(assembly.ok());
  const TrustGraph graph = (*assembly)->trust_graph();
  auto set = graph.compromised_set("b");
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set->contains("a"));
}

TEST_F(ComposerTest, HandleApiMatchesStringApi) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  auto a = (*assembly)->ref("a");
  auto b = (*assembly)->ref("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*assembly)->name_of(*a), "a");
  EXPECT_EQ((*assembly)->ref("ghost").error(), Errc::no_such_domain);
  EXPECT_EQ((*assembly)->name_of(ComponentRef{}), "");

  ASSERT_TRUE((*assembly)
                  ->set_behavior(*b,
                                 [](const substrate::Invocation&)
                                     -> Result<Bytes> { return to_bytes("r"); })
                  .ok());
  // The interned hot path and the string wrappers drive the same channel.
  auto via_ref = (*assembly)->invoke(*a, *b, to_bytes("x"));
  auto via_name = (*assembly)->invoke("a", "b", to_bytes("x"));
  ASSERT_TRUE(via_ref.ok());
  ASSERT_TRUE(via_name.ok());
  EXPECT_EQ(*via_ref, *via_name);
  // POLA holds identically on the handle path.
  auto c = (*assembly)->ref("c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*assembly)->invoke(*a, *c, to_bytes("x")).error(),
            Errc::policy_violation);
  EXPECT_EQ((*assembly)->invoke(ComponentRef{}, *b, to_bytes("x")).error(),
            Errc::no_such_domain);
}

TEST_F(ComposerTest, KillComponentIsVisibleAsDomainDead) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  ASSERT_TRUE((*assembly)->kill_component("b").ok());
  EXPECT_EQ((*assembly)->invoke("a", "b", to_bytes("x")).error(),
            Errc::domain_dead);
  EXPECT_EQ((*assembly)->send("a", "b", to_bytes("x")).error(),
            Errc::domain_dead);
  EXPECT_EQ((*assembly)->kill_component("ghost").error(), Errc::no_such_domain);
}

TEST_F(ComposerTest, RestartComponentRestoresService) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  ASSERT_TRUE((*assembly)
                  ->set_behavior("b",
                                 [](const substrate::Invocation&)
                                     -> Result<Bytes> {
                                   return to_bytes("serving");
                                 })
                  .ok());
  const std::uint64_t old_badge = *(*assembly)->badge_of("b", "a");
  // component() hands back a live view; capture the old identity by value.
  const auto old_domain = (*(*assembly)->component("b"))->domain;
  const auto old_measurement = mk_->measurement(old_domain);
  ASSERT_TRUE(old_measurement.ok());

  ASSERT_TRUE((*assembly)->kill_component("b").ok());
  EXPECT_EQ((*assembly)->invoke("a", "b", to_bytes("x")).error(),
            Errc::domain_dead);

  ASSERT_TRUE((*assembly)->restart_component("b").ok());
  // The recorded behaviour was reinstalled — no re-set_behavior needed —
  // and the declared wiring survived the restart.
  auto reply = (*assembly)->invoke("a", "b", to_bytes("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "serving");
  auto after = (*assembly)->component("b");
  EXPECT_EQ((*after)->incarnation, 1u);
  EXPECT_NE((*after)->domain, old_domain);  // ids are never reused
  // Same composer path, same deterministic image: identity is preserved...
  EXPECT_EQ(*mk_->measurement((*after)->domain), *old_measurement);
  // ...but the channel badge is fresh (the old life cannot be impersonated).
  EXPECT_NE(*(*assembly)->badge_of("b", "a"), old_badge);
  // The corpse was reaped.
  EXPECT_EQ(mk_->domains().size(), 3u);
}

TEST_F(ComposerTest, RestartUnknownComponentRefused) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  EXPECT_EQ((*assembly)->restart_component("ghost").error(),
            Errc::no_such_domain);
  EXPECT_EQ((*assembly)->restart_component(ComponentRef{}).error(),
            Errc::no_such_domain);
}

TEST_F(ComposerTest, EndpointGoesStaleAcrossRestart) {
  auto assembly = composer_->compose(triangle());
  ASSERT_TRUE(assembly.ok());
  ASSERT_TRUE((*assembly)
                  ->set_behavior("b",
                                 [](const substrate::Invocation&)
                                     -> Result<Bytes> { return to_bytes("ok"); })
                  .ok());
  auto ep = (*assembly)->endpoint("a", "b");
  ASSERT_TRUE(ep.ok());
  EXPECT_TRUE(ep->check().ok());
  EXPECT_TRUE(ep->call(to_bytes("x")).ok());
  // Undeclared pairs get no endpoint (the manifest check happens at mint).
  EXPECT_EQ((*assembly)->endpoint("a", "c").error(), Errc::policy_violation);

  ASSERT_TRUE((*assembly)->kill_component("b").ok());
  ASSERT_TRUE((*assembly)->restart_component("b").ok());
  // The endpoint was minted against the dead incarnation: every operation
  // now fails fast instead of silently driving the reincarnated channel.
  EXPECT_EQ(ep->check().error(), Errc::stale_epoch);
  EXPECT_EQ(ep->call(to_bytes("x")).error(), Errc::stale_epoch);
  EXPECT_EQ(ep->send(to_bytes("x")).error(), Errc::stale_epoch);
  EXPECT_EQ(ep->receive().error(), Errc::stale_epoch);
  // Re-minting picks up the new epoch and works.
  auto fresh = (*assembly)->endpoint("a", "b");
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->call(to_bytes("x")).ok());
}

TEST_F(ComposerTest, ComposeWiresDeclaredRegionBothEndsMapped) {
  auto manifests = triangle();
  manifests[0].regions = {{"b", 4096, substrate::RegionPerms::read_write}};
  auto assembly = composer_->compose(manifests);
  ASSERT_TRUE(assembly.ok());
  auto region = (*assembly)->region_between("a", "b");
  ASSERT_TRUE(region.ok());
  // The lookup is direction-agnostic, like the declaration.
  EXPECT_EQ(*(*assembly)->region_between("b", "a"), *region);
  const auto a_dom = (*(*assembly)->component("a"))->domain;
  const auto b_dom = (*(*assembly)->component("b"))->domain;
  // Both endpoints were mapped at compose time: the caller goes straight
  // to the data plane, no map_region choreography.
  ASSERT_TRUE(mk_->region_write(a_dom, *region, 0, to_bytes("zero-copy")).ok());
  auto desc = mk_->make_descriptor(a_dom, *region, 0, 9);
  ASSERT_TRUE(desc.ok());
  auto view = mk_->region_view(b_dom, *desc);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(std::string(view->begin(), view->end()), "zero-copy");
}

TEST_F(ComposerTest, RegionBetweenRefusesUndeclaredPair) {
  auto manifests = triangle();
  manifests[0].regions = {{"b", 4096, substrate::RegionPerms::read_write}};
  auto assembly = composer_->compose(manifests);
  ASSERT_TRUE(assembly.ok());
  // POLA on the data plane: no declaration, no region — the composer never
  // created one, so there is nothing to leak.
  EXPECT_EQ((*assembly)->region_between("a", "c").error(),
            Errc::policy_violation);
  EXPECT_EQ((*assembly)->region_between("c", "b").error(),
            Errc::policy_violation);
  EXPECT_EQ((*assembly)->region_between("a", "ghost").error(),
            Errc::no_such_domain);
}

TEST_F(ComposerTest, RegionWithoutSubstrateSupportIsHonestAndNonFatal) {
  // TPM has no shared-memory plane. The declaration is recorded, compose
  // succeeds, the control plane works — and region_between names the exact
  // reason so callers take the copy path.
  auto machine = test::make_machine("composer-tpm");
  auto tpm = *test::shared_registry().create("tpm", *machine);
  SystemComposer composer({{"tpm", tpm.get()}});
  std::vector<Manifest> bundle(2);
  bundle[0].name = "a";
  bundle[0].substrate_name = "tpm";
  bundle[0].channels = {"b"};
  bundle[0].regions = {{"b", 4096, substrate::RegionPerms::read_write}};
  bundle[1].name = "b";
  bundle[1].substrate_name = "tpm";
  bundle[1].channels = {"a"};
  auto assembly = composer.compose(bundle);
  ASSERT_TRUE(assembly.ok());
  EXPECT_EQ((*assembly)->region_between("a", "b").error(),
            Errc::no_region_support);
  bool mentioned = false;
  for (const std::string& d : composer.diagnostics())
    if (d.find("no region support") != std::string::npos) mentioned = true;
  EXPECT_TRUE(mentioned);
  // The control plane is unaffected by the missing data plane.
  ASSERT_TRUE((*assembly)
                  ->set_behavior("b",
                                 [](const substrate::Invocation&)
                                     -> Result<Bytes> { return to_bytes("r"); })
                  .ok());
  EXPECT_TRUE((*assembly)->invoke("a", "b", to_bytes("x")).ok());
}

TEST_F(ComposerTest, RestartRebindsRegionAndFencesStaleDescriptors) {
  auto manifests = triangle();
  manifests[0].regions = {{"b", 4096, substrate::RegionPerms::read_write}};
  auto assembly = composer_->compose(manifests);
  ASSERT_TRUE(assembly.ok());
  const auto region = *(*assembly)->region_between("a", "b");
  const auto a_dom = (*(*assembly)->component("a"))->domain;
  ASSERT_TRUE(mk_->region_write(a_dom, region, 0, to_bytes("oldlife")).ok());
  const auto stale = *mk_->make_descriptor(a_dom, region, 0, 7);

  ASSERT_TRUE((*assembly)->kill_component("b").ok());
  ASSERT_TRUE((*assembly)->restart_component("b").ok());
  const auto b_dom = (*(*assembly)->component("b"))->domain;

  // The id survives the restart; descriptors minted against the dead
  // incarnation do not.
  EXPECT_EQ(*(*assembly)->region_between("a", "b"), region);
  EXPECT_EQ(mk_->check_descriptor(a_dom, stale).error(), Errc::stale_epoch);
  EXPECT_EQ(mk_->region_view(a_dom, stale).error(), Errc::stale_epoch);
  // The reincarnation must not inherit the old life's bytes...
  EXPECT_EQ(*mk_->region_read(b_dom, region, 0, 7), Bytes(7, 0));
  // ...and both sides were re-mapped, so the fast path resumes immediately.
  ASSERT_TRUE(mk_->region_write(a_dom, region, 0, to_bytes("newlife")).ok());
  auto fresh = mk_->make_descriptor(a_dom, region, 0, 7);
  ASSERT_TRUE(fresh.ok());
  auto view = mk_->region_view(b_dom, *fresh);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(std::string(view->begin(), view->end()), "newlife");
}

// ---------------------------------------------------------------------------
// Shard stanza + expansion (FIG13): `shard N` splits a hot component into
// one domain per core at compose time.

TEST(ManifestParser, ParsesShardStanzaAndRoundTrips) {
  auto manifests = parse_manifests(
      "component anonymizer {\n"
      "  channel meter\n"
      "  shard 4\n"
      "}\n"
      "component meter {\n  channel anonymizer\n}\n");
  ASSERT_TRUE(manifests.ok());
  EXPECT_EQ((*manifests)[0].shards, 4u);
  EXPECT_EQ((*manifests)[1].shards, 1u);  // default: an ordinary domain

  const std::string text = to_text(*manifests);
  EXPECT_NE(text.find("shard 4"), std::string::npos);
  auto reparsed = parse_manifests(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].shards, 4u);
  // `shard 1` is the default and is not emitted — the round trip stays
  // textually stable for unsharded manifests.
  EXPECT_EQ(to_text(*reparsed), text);
}

TEST(ManifestParser, RejectsMalformedShardStanza) {
  EXPECT_FALSE(parse_manifests("component x {\n shard\n}\n").ok());
  EXPECT_FALSE(parse_manifests("component x {\n shard four\n}\n").ok());
}

TEST(ManifestValidate, FlagsShardProblems) {
  // '#' is the expansion's namespace separator — user manifests must not
  // squat on it, or expanded names could collide with declared ones.
  std::vector<Manifest> bundle(2);
  bundle[0].name = "worker#0";
  bundle[1].name = "front";
  bundle[1].channels = {"worker#0"};
  const auto reserved = validate(bundle);
  ASSERT_GE(reserved.size(), 1u);
  EXPECT_NE(reserved[0].find("#"), std::string::npos);

  std::vector<Manifest> zero(1);
  zero[0].name = "w";
  zero[0].shards = 0;
  const auto flagged = validate(zero);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_NE(flagged[0].find("shard"), std::string::npos);
}

TEST(ShardExpansion, FansOutEveryPeerReference) {
  std::vector<Manifest> m(2);
  m[0].name = "worker";
  m[0].shards = 3;
  m[0].channels = {"front"};
  m[1].name = "front";
  m[1].channels = {"worker"};
  m[1].trusts = {"worker"};
  m[1].regions = {{"worker", 4096, substrate::RegionPerms::read_write}};
  m[1].trace.emplace();
  m[1].trace->observers = {"worker"};

  const std::vector<Manifest> out = expand_shards(m);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].name, "worker#" + std::to_string(i));
    EXPECT_EQ(out[i].shards, 1u);  // expansion is not re-entrant
    EXPECT_EQ(out[i].channels, std::vector<std::string>{"front"});
  }
  // Every reference to the sharded name fans out to all N shards: the
  // unsharded peer can reach (and trust, and share regions with, and be
  // observed by) each one.
  const Manifest& front = out[3];
  const std::vector<std::string> fanned{"worker#0", "worker#1", "worker#2"};
  EXPECT_EQ(front.channels, fanned);
  EXPECT_EQ(front.trusts, fanned);
  ASSERT_EQ(front.regions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(front.regions[i].peer, fanned[i]);
    EXPECT_EQ(front.regions[i].bytes, 4096u);
  }
  ASSERT_TRUE(front.trace.has_value());
  EXPECT_EQ(front.trace->observers, fanned);

  // No shard declarations -> byte-identical pass-through.
  std::vector<Manifest> plain(1);
  plain[0].name = "solo";
  plain[0].channels = {"solo-peer"};
  const auto untouched = expand_shards(plain);
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_EQ(untouched[0].name, "solo");
  EXPECT_EQ(untouched[0].channels, plain[0].channels);
}

TEST_F(ComposerTest, ShardedComposeRoutesByKey) {
  std::vector<Manifest> m(2);
  m[0].name = "shardy";
  m[0].shards = 2;
  m[0].channels = {"gate"};
  m[1].name = "gate";
  m[1].channels = {"shardy"};
  auto assembly = composer_->compose(m);
  ASSERT_TRUE(assembly.ok()) << composer_->diagnostics().size();

  // The expansion made real domains: shardy#0, shardy#1, gate.
  EXPECT_EQ((*assembly)->component_names().size(), 3u);
  EXPECT_EQ((*assembly)->shard_count("shardy"), 2u);
  EXPECT_EQ((*assembly)->shard_count("gate"), 1u);
  EXPECT_EQ((*assembly)->shard_count("ghost"), 0u);

  // shard_ref routes a key to its shard (mod N) and falls back to ref()
  // for unsharded names — callers need not know which kind they hold.
  auto s0 = (*assembly)->shard_ref("shardy", 0);
  auto s1 = (*assembly)->shard_ref("shardy", 1);
  auto wrapped = (*assembly)->shard_ref("shardy", 2);
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ((*assembly)->name_of(*s0), "shardy#0");
  EXPECT_EQ((*assembly)->name_of(*s1), "shardy#1");
  EXPECT_EQ((*assembly)->name_of(*wrapped), "shardy#0");
  auto gate = (*assembly)->shard_ref("gate", 7);
  ASSERT_TRUE(gate.ok());
  EXPECT_EQ((*assembly)->name_of(*gate), "gate");
  EXPECT_EQ((*assembly)->shard_ref("ghost", 0).error(), Errc::no_such_domain);

  // Each shard is an independent domain on its own channel to the peer.
  for (const std::string name : {"shardy#0", "shardy#1"}) {
    ASSERT_TRUE((*assembly)
                    ->set_behavior(name,
                                   [name](const substrate::Invocation&)
                                       -> Result<Bytes> {
                                     return to_bytes("from-" + name);
                                   })
                    .ok());
  }
  auto r0 = (*assembly)->invoke("gate", "shardy#0", to_bytes("k"));
  auto r1 = (*assembly)->invoke("gate", "shardy#1", to_bytes("k"));
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(to_string(*r0), "from-shardy#0");
  EXPECT_EQ(to_string(*r1), "from-shardy#1");
  // POLA still holds between sibling shards: no channel was declared.
  EXPECT_EQ(
      (*assembly)->invoke("shardy#0", "shardy#1", to_bytes("x")).error(),
      Errc::policy_violation);
}

TEST(SessionDemux, BadgeKeyedSessionsAreIsolated) {
  SessionDemux<int> demux;
  substrate::Invocation alice{1, 0xA11CE, {}};
  substrate::Invocation bob{1, 0xB0B, {}};
  demux.session_for(alice) = 100;
  demux.session_for(bob) = 200;
  EXPECT_EQ(demux.session_for(alice), 100);
  EXPECT_EQ(demux.session_for(bob), 200);
  EXPECT_EQ(demux.session_count(), 2u);
}

TEST(SessionDemux, ConfusedDeputyAttackAndDefence) {
  // Deputy holds per-client balances. Mallory claims Alice's id in her
  // message payload.
  SessionDemux<int> accounts;
  const std::uint64_t alice_badge = 0xA11CE, mallory_badge = 0x3A770;
  accounts.session_by_badge(alice_badge) = 1000;   // Alice's balance
  accounts.session_by_badge(mallory_badge) = 1;    // Mallory's balance

  // VULNERABLE deputy: trusts the claimed id -> Mallory drains Alice.
  auto victim = accounts.unsafe_session_by_claimed_id(alice_badge);
  ASSERT_TRUE(victim.ok());
  **victim -= 1000;  // the deputy debits the WRONG session
  EXPECT_EQ(accounts.session_by_badge(alice_badge), 0);

  // SAFE deputy: keys on the kernel-minted badge of the invocation;
  // Mallory's claimed id is irrelevant.
  accounts.session_by_badge(alice_badge) = 1000;
  substrate::Invocation mallory_call{1, mallory_badge, {}};
  accounts.session_for(mallory_call) -= 1;  // only Mallory's own session
  EXPECT_EQ(accounts.session_by_badge(alice_badge), 1000);
  EXPECT_EQ(accounts.session_by_badge(mallory_badge), 0);
}

TEST(SessionDemux, EraseRemovesSession) {
  SessionDemux<int> demux;
  demux.session_by_badge(5) = 1;
  EXPECT_TRUE(demux.has_session(5));
  demux.erase(5);
  EXPECT_FALSE(demux.has_session(5));
  EXPECT_FALSE(demux.unsafe_session_by_claimed_id(5).ok());
}

class AttestationProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("attest");
    sgx_ = *test::shared_registry().create("sgx", *machine_);
    domain_ = *sgx_->create_domain(test::tc_spec("anonymizer"));
    verifier_ = std::make_unique<AttestationVerifier>(to_bytes("verifier"));
    verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    verifier_->expect_measurement(
        "anonymizer", test::tc_spec("anonymizer").image.measurement());
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<substrate::IsolationSubstrate> sgx_;
  substrate::DomainId domain_ = 0;
  std::unique_ptr<AttestationVerifier> verifier_;
};

TEST_F(AttestationProtocolTest, ChallengeResponseSucceeds) {
  const Bytes nonce = verifier_->make_challenge();
  auto quote = respond_to_challenge(*sgx_, domain_, nonce, to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(
      verifier_->verify("anonymizer", *quote, nonce, to_bytes("ctx")).ok());
}

TEST_F(AttestationProtocolTest, NonceCannotBeReplayed) {
  const Bytes nonce = verifier_->make_challenge();
  auto quote = respond_to_challenge(*sgx_, domain_, nonce, to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  ASSERT_TRUE(
      verifier_->verify("anonymizer", *quote, nonce, to_bytes("ctx")).ok());
  // Second use of the same nonce: replay, refused.
  EXPECT_FALSE(
      verifier_->verify("anonymizer", *quote, nonce, to_bytes("ctx")).ok());
}

TEST_F(AttestationProtocolTest, UnissuedNonceRejected) {
  const Bytes fake_nonce(32, 0x42);
  auto quote =
      respond_to_challenge(*sgx_, domain_, fake_nonce, to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  EXPECT_FALSE(
      verifier_->verify("anonymizer", *quote, fake_nonce, to_bytes("ctx"))
          .ok());
}

TEST_F(AttestationProtocolTest, ContextBindingEnforced) {
  const Bytes nonce = verifier_->make_challenge();
  auto quote =
      respond_to_challenge(*sgx_, domain_, nonce, to_bytes("session-1"));
  ASSERT_TRUE(quote.ok());
  // Relaying the quote into a different context fails.
  EXPECT_FALSE(
      verifier_->verify("anonymizer", *quote, nonce, to_bytes("session-2"))
          .ok());
}

TEST_F(AttestationProtocolTest, ManipulatedCodeRefused) {
  // The utility "opens the source code of the anonymizer for third-party
  // auditing"; a manipulated build has a different measurement.
  auto evil_spec = test::tc_spec("anonymizer");
  evil_spec.image.code = to_bytes("code-of-anonymizer-PLUS-TRACKING");
  auto evil = sgx_->create_domain(evil_spec);
  ASSERT_TRUE(evil.ok());

  const Bytes nonce = verifier_->make_challenge();
  auto quote = respond_to_challenge(*sgx_, *evil, nonce, to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  EXPECT_FALSE(
      verifier_->verify("anonymizer", *quote, nonce, to_bytes("ctx")).ok());
}

TEST_F(AttestationProtocolTest, UnknownLogicalNameRejected) {
  const Bytes nonce = verifier_->make_challenge();
  auto quote = respond_to_challenge(*sgx_, domain_, nonce, to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  EXPECT_FALSE(
      verifier_->verify("never-registered", *quote, nonce, to_bytes("ctx"))
          .ok());
}

TEST_F(AttestationProtocolTest, UntrustedVendorRejected) {
  AttestationVerifier paranoid(to_bytes("no-roots"));
  paranoid.expect_measurement(
      "anonymizer", test::tc_spec("anonymizer").image.measurement());
  const Bytes nonce = paranoid.make_challenge();
  auto quote = respond_to_challenge(*sgx_, domain_, nonce, to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  // No trusted roots registered: nothing chains.
  EXPECT_FALSE(
      paranoid.verify("anonymizer", *quote, nonce, to_bytes("ctx")).ok());
}

TEST(StandardRegistry, ContainsAllBackends) {
  auto& registry = test::shared_registry();
  for (const char* name : {"microkernel", "trustzone", "sgx", "tpm", "ftpm",
                           "sep", "cheri", "noc"})
    EXPECT_TRUE(registry.contains(name)) << name;
  EXPECT_FALSE(registry.contains("nonexistent"));
}

}  // namespace
}  // namespace lateral::core
