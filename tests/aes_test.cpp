// AES-128 against FIPS 197 / NIST SP 800-38A vectors; CTR mode and the
// encrypt-then-MAC AEAD construction.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "util/hex.h"
#include "util/rng.h"

namespace lateral::crypto {
namespace {

Bytes unhex(const std::string& hex) {
  auto r = util::from_hex(hex);
  EXPECT_TRUE(r.ok());
  return *r;
}

Aes128Key key_of(const std::string& hex) {
  const Bytes raw = unhex(hex);
  Aes128Key key{};
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

// FIPS 197 Appendix C.1.
TEST(Aes128, Fips197Vector) {
  const Aes128Key key = key_of("000102030405060708090a0b0c0d0e0f");
  AesBlock block{};
  const Bytes pt = unhex("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), block.begin());
  Aes128(key).encrypt_block(block);
  EXPECT_EQ(util::to_hex(BytesView(block.data(), block.size())),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// FIPS 197 Appendix B.
TEST(Aes128, Fips197AppendixB) {
  const Aes128Key key = key_of("2b7e151628aed2a6abf7158809cf4f3c");
  AesBlock block{};
  const Bytes pt = unhex("3243f6a8885a308d313198a2e0370734");
  std::copy(pt.begin(), pt.end(), block.begin());
  Aes128(key).encrypt_block(block);
  EXPECT_EQ(util::to_hex(BytesView(block.data(), block.size())),
            "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesCtr, RoundTripsArbitraryLengths) {
  const Aes128Key key = key_of("000102030405060708090a0b0c0d0e0f");
  util::Xoshiro rng(3);
  for (const std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    const Bytes plain = rng.bytes(len);
    const Bytes ct = aes128_ctr(key, 99, plain);
    EXPECT_EQ(aes128_ctr(key, 99, ct), plain) << "len=" << len;
    if (len >= 16) {
      EXPECT_NE(ct, plain);
    }
  }
}

TEST(AesCtr, DifferentNoncesDifferentStreams) {
  const Aes128Key key = key_of("000102030405060708090a0b0c0d0e0f");
  const Bytes plain(64, 0);
  EXPECT_NE(aes128_ctr(key, 1, plain), aes128_ctr(key, 2, plain));
}

TEST(AesCtr, KeystreamIsNotPlaintextDependent) {
  // CTR XORs a keystream: ct(a) XOR ct(b) == a XOR b for same key/nonce.
  const Aes128Key key = key_of("2b7e151628aed2a6abf7158809cf4f3c");
  util::Xoshiro rng(5);
  const Bytes a = rng.bytes(48), b = rng.bytes(48);
  const Bytes ca = aes128_ctr(key, 7, a), cb = aes128_ctr(key, 7, b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(ca[i] ^ cb[i], a[i] ^ b[i]);
}

TEST(Aead, SealOpenRoundTrip) {
  const Aead aead(to_bytes("key material"));
  const SealedBox box = aead.seal(1, to_bytes("aad"), to_bytes("payload"));
  auto open = aead.open(box, to_bytes("aad"));
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(to_string(*open), "payload");
}

TEST(Aead, DetectsCiphertextTampering) {
  const Aead aead(to_bytes("key material"));
  SealedBox box = aead.seal(1, {}, to_bytes("payload"));
  box.ciphertext[0] ^= 0x01;
  EXPECT_EQ(aead.open(box, {}).error(), Errc::verification_failed);
}

TEST(Aead, DetectsTagTampering) {
  const Aead aead(to_bytes("key material"));
  SealedBox box = aead.seal(1, {}, to_bytes("payload"));
  box.tag[5] ^= 0x80;
  EXPECT_EQ(aead.open(box, {}).error(), Errc::verification_failed);
}

TEST(Aead, DetectsNonceTampering) {
  const Aead aead(to_bytes("key material"));
  SealedBox box = aead.seal(1, {}, to_bytes("payload"));
  box.nonce = 2;
  EXPECT_EQ(aead.open(box, {}).error(), Errc::verification_failed);
}

TEST(Aead, DetectsAadMismatch) {
  const Aead aead(to_bytes("key material"));
  const SealedBox box = aead.seal(1, to_bytes("context-a"), to_bytes("data"));
  EXPECT_EQ(aead.open(box, to_bytes("context-b")).error(),
            Errc::verification_failed);
}

TEST(Aead, EmptyPlaintextStillAuthenticated) {
  const Aead aead(to_bytes("key material"));
  SealedBox box = aead.seal(4, to_bytes("aad"), {});
  ASSERT_TRUE(aead.open(box, to_bytes("aad")).ok());
  box.tag[0] ^= 1;
  EXPECT_FALSE(aead.open(box, to_bytes("aad")).ok());
}

TEST(Aead, DifferentKeyMaterialCannotOpen) {
  const Aead a(to_bytes("key-1")), b(to_bytes("key-2"));
  const SealedBox box = a.seal(1, {}, to_bytes("data"));
  EXPECT_FALSE(b.open(box, {}).ok());
}

TEST(Aead, AadLengthConfusionResisted) {
  // (aad="ab", pt starts "c...") must not collide with (aad="a", pt "bc..."):
  // the AAD is length-prefixed in the MAC input.
  const Aead aead(to_bytes("key"));
  const SealedBox box = aead.seal(1, to_bytes("ab"), to_bytes("xyz"));
  EXPECT_FALSE(aead.open(box, to_bytes("a")).ok());
}

TEST(KeyFromBytes, RequiresSixteenBytes) {
  EXPECT_FALSE(key_from_bytes(Bytes(15, 1)).ok());
  auto key = key_from_bytes(Bytes(16, 1));
  ASSERT_TRUE(key.ok());
  auto longer = key_from_bytes(Bytes(32, 1));
  ASSERT_TRUE(longer.ok());
  EXPECT_EQ(*key, *longer);  // uses the first 16 bytes
}

class AeadSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadSizeTest, RoundTripsAtSize) {
  const Aead aead(to_bytes("sweep key"));
  util::Xoshiro rng(GetParam() + 1);
  const Bytes plain = rng.bytes(GetParam());
  const SealedBox box = aead.seal(GetParam(), to_bytes("s"), plain);
  auto open = aead.open(box, to_bytes("s"));
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(*open, plain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadSizeTest,
                         ::testing::Values(0, 1, 15, 16, 17, 255, 256, 1000,
                                           4096, 10000));

}  // namespace
}  // namespace lateral::crypto
