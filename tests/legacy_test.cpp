// Legacy filesystem and legacy OS: normal operation plus every injected
// misbehaviour mode the trusted wrappers must survive.
#include <gtest/gtest.h>

#include "legacy/filesystem.h"
#include "legacy/legacy_os.h"
#include "util/rng.h"

namespace lateral::legacy {
namespace {

TEST(LegacyFilesystem, CreateWriteRead) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/a.txt").ok());
  ASSERT_TRUE(fs.write("/a.txt", 0, to_bytes("hello")).ok());
  auto read = fs.read("/a.txt", 0, 5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "hello");
  EXPECT_EQ(*fs.size("/a.txt"), 5u);
}

TEST(LegacyFilesystem, CreateRejectsDuplicatesAndEmpty) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/a").ok());
  EXPECT_FALSE(fs.create("/a").ok());
  EXPECT_FALSE(fs.create("").ok());
}

TEST(LegacyFilesystem, SparseWriteExtends) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/sparse").ok());
  ASSERT_TRUE(fs.write("/sparse", 10'000, to_bytes("end")).ok());
  EXPECT_EQ(*fs.size("/sparse"), 10'003u);
  auto hole = fs.read("/sparse", 0, 4);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ((*hole)[0], 0);
}

TEST(LegacyFilesystem, CrossBlockWriteRead) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/big").ok());
  util::Xoshiro rng(1);
  const Bytes data = rng.bytes(3 * kBlockSize + 100);
  ASSERT_TRUE(fs.write("/big", 50, data).ok());
  auto read = fs.read("/big", 50, data.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(LegacyFilesystem, ReadPastEndTruncates) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/short").ok());
  ASSERT_TRUE(fs.write("/short", 0, to_bytes("abc")).ok());
  auto read = fs.read("/short", 1, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "bc");
  EXPECT_TRUE(fs.read("/short", 10, 5)->empty());
}

TEST(LegacyFilesystem, RemoveAndRename) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/old").ok());
  ASSERT_TRUE(fs.write("/old", 0, to_bytes("x")).ok());
  ASSERT_TRUE(fs.rename("/old", "/new").ok());
  EXPECT_FALSE(fs.exists("/old"));
  EXPECT_TRUE(fs.exists("/new"));
  ASSERT_TRUE(fs.remove("/new").ok());
  EXPECT_FALSE(fs.exists("/new"));
  EXPECT_FALSE(fs.remove("/new").ok());
}

TEST(LegacyFilesystem, RenameOntoExistingRejected) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/a").ok());
  ASSERT_TRUE(fs.create("/b").ok());
  EXPECT_FALSE(fs.rename("/a", "/b").ok());
}

TEST(LegacyFilesystem, TruncateShrinksAndGrows) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/t").ok());
  ASSERT_TRUE(fs.write("/t", 0, to_bytes("0123456789")).ok());
  ASSERT_TRUE(fs.truncate("/t", 4).ok());
  EXPECT_EQ(*fs.size("/t"), 4u);
  ASSERT_TRUE(fs.truncate("/t", 0).ok());
  EXPECT_EQ(*fs.size("/t"), 0u);
}

TEST(LegacyFilesystem, ListByPrefix) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/vpfs/a").ok());
  ASSERT_TRUE(fs.create("/vpfs/b").ok());
  ASSERT_TRUE(fs.create("/other/c").ok());
  EXPECT_EQ(fs.list("/vpfs/").size(), 2u);
  EXPECT_EQ(fs.list("/").size(), 3u);
  EXPECT_TRUE(fs.list("/nothing").empty());
}

TEST(LegacyFilesystem, StatsAccumulate) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/s").ok());
  ASSERT_TRUE(fs.write("/s", 0, Bytes(100, 1)).ok());
  (void)fs.read("/s", 0, 100);
  EXPECT_EQ(fs.stats().writes, 1u);
  EXPECT_EQ(fs.stats().reads, 1u);
  EXPECT_EQ(fs.stats().bytes_written, 100u);
  EXPECT_EQ(fs.stats().bytes_read, 100u);
}

TEST(LegacyFilesystem, CorruptRandomBitChangesContent) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/c").ok());
  const Bytes original(1000, 0xAA);
  ASSERT_TRUE(fs.write("/c", 0, original).ok());
  util::Xoshiro rng(7);
  ASSERT_TRUE(fs.corrupt_random_bit("/c", rng).ok());
  EXPECT_NE(*fs.read("/c", 0, 1000), original);
}

TEST(LegacyFilesystem, TamperBlockOverwrites) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/t").ok());
  ASSERT_TRUE(fs.write("/t", 0, Bytes(2 * kBlockSize, 0x11)).ok());
  ASSERT_TRUE(fs.tamper_block("/t", 1, to_bytes("EVIL")).ok());
  auto read = fs.read("/t", kBlockSize, 4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "EVIL");
  EXPECT_FALSE(fs.tamper_block("/t", 99, to_bytes("x")).ok());
}

TEST(LegacyFilesystem, SnapshotRollbackServesStaleData) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/r").ok());
  ASSERT_TRUE(fs.write("/r", 0, to_bytes("version-1")).ok());
  ASSERT_TRUE(fs.snapshot("/r").ok());
  ASSERT_TRUE(fs.write("/r", 0, to_bytes("version-2")).ok());
  ASSERT_TRUE(fs.rollback("/r").ok());
  EXPECT_EQ(to_string(*fs.read("/r", 0, 9)), "version-1");
}

TEST(LegacyFilesystem, DropWritesLiesAboutDurability) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/d").ok());
  ASSERT_TRUE(fs.write("/d", 0, to_bytes("real")).ok());
  fs.set_drop_writes(true);
  EXPECT_TRUE(fs.write("/d", 0, to_bytes("gone")).ok());  // claims success
  fs.set_drop_writes(false);
  EXPECT_EQ(to_string(*fs.read("/d", 0, 4)), "real");
}

TEST(LegacyFilesystem, FailReadsMode) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/f").ok());
  ASSERT_TRUE(fs.write("/f", 0, to_bytes("x")).ok());
  fs.set_fail_reads(true);
  EXPECT_EQ(fs.read("/f", 0, 1).error(), Errc::io_error);
  fs.set_fail_reads(false);
  EXPECT_TRUE(fs.read("/f", 0, 1).ok());
}

TEST(LegacyFilesystem, SnoopSeesEverything) {
  LegacyFilesystem fs;
  ASSERT_TRUE(fs.create("/secret").ok());
  ASSERT_TRUE(fs.write("/secret", 0, to_bytes("plaintext-password")).ok());
  auto snooped = fs.snoop("/secret");
  ASSERT_TRUE(snooped.ok());
  EXPECT_EQ(to_string(*snooped), "plaintext-password");
}

TEST(LegacyOs, ServiceDispatch) {
  LegacyOs os("android");
  ASSERT_TRUE(os.register_service("upper", [](BytesView req) -> Result<Bytes> {
                  Bytes out(req.begin(), req.end());
                  for (auto& b : out)
                    if (b >= 'a' && b <= 'z') b = static_cast<std::uint8_t>(b - 32);
                  return out;
                }).ok());
  auto reply = os.call_service("upper", to_bytes("abc"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "ABC");
  EXPECT_FALSE(os.call_service("missing", to_bytes("x")).ok());
}

TEST(LegacyOs, DuplicateServiceRejected) {
  LegacyOs os("os");
  const auto echo = [](BytesView r) -> Result<Bytes> {
    return Bytes(r.begin(), r.end());
  };
  ASSERT_TRUE(os.register_service("echo", echo).ok());
  EXPECT_FALSE(os.register_service("echo", echo).ok());
}

TEST(LegacyOs, TamperRepliesMode) {
  LegacyOs os("pwned");
  ASSERT_TRUE(os.register_service("echo", [](BytesView r) -> Result<Bytes> {
                  return Bytes(r.begin(), r.end());
                }).ok());
  os.compromise(MaliciousMode::tamper_replies);
  EXPECT_TRUE(os.is_compromised());
  auto reply = os.call_service("echo", to_bytes("untampered-data"));
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(to_string(*reply), "untampered-data");
}

TEST(LegacyOs, LeakRequestsMode) {
  LegacyOs os("pwned");
  ASSERT_TRUE(os.register_service("store", [](BytesView) -> Result<Bytes> {
                  return Bytes{};
                }).ok());
  os.compromise(MaliciousMode::leak_requests);
  ASSERT_TRUE(os.call_service("store", to_bytes("credit-card-number")).ok());
  ASSERT_EQ(os.attacker_log().size(), 1u);
  EXPECT_EQ(to_string(os.attacker_log()[0]), "credit-card-number");
}

TEST(LegacyOs, RefuseServiceMode) {
  LegacyOs os("pwned");
  ASSERT_TRUE(os.register_service("echo", [](BytesView r) -> Result<Bytes> {
                  return Bytes(r.begin(), r.end());
                }).ok());
  os.compromise(MaliciousMode::refuse_service);
  EXPECT_EQ(os.call_service("echo", to_bytes("x")).error(), Errc::io_error);
}

}  // namespace
}  // namespace lateral::legacy
