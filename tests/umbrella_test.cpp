// Compile-and-smoke test of the umbrella header: everything is reachable
// through one include, with no conflicts between subsystem headers.
#include "lateral.h"

#include <gtest/gtest.h>

namespace lateral {
namespace {

TEST(Umbrella, EverythingLinksTogether) {
  hw::Vendor vendor(/*seed=*/0xBEEF, /*key_bits=*/512);
  hw::Machine machine(hw::MachineConfig{.name = "umbrella"}, vendor,
                      to_bytes("rom"));
  auto registry = core::make_standard_registry();
  EXPECT_EQ(registry.names().size(), 8u);

  auto substrate = registry.create("microkernel", machine);
  ASSERT_TRUE(substrate.ok());
  substrate::DomainSpec spec;
  spec.name = "probe";
  spec.image = {"probe", to_bytes("code")};
  auto domain = (*substrate)->create_domain(spec);
  ASSERT_TRUE(domain.ok());
  EXPECT_TRUE((*substrate)->seal(*domain, to_bytes("x")).ok());
}

}  // namespace
}  // namespace lateral
