// End-to-end integration of the paper's two worked examples (§III-C):
// the decomposed email client and the distributed smart-meter scenario.
#include <gtest/gtest.h>

#include "core/attestation.h"
#include "core/composer.h"
#include "hw/attacker.h"
#include "core/session.h"
#include "gui/secure_gui.h"
#include "legacy/legacy_os.h"
#include "microkernel/microkernel.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "test_support.h"
#include "vpfs/vpfs.h"

namespace lateral {
namespace {

// ---------------------------------------------------------------------------
// Email client: tls | imap | render | addressbook | storage — mutually
// isolated components on one microkernel, talking only along declared
// channels. We compromise the HTML renderer (the network-facing parser) and
// verify the blast radius.
class EmailClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("laptop");
    kernel_ = std::make_unique<microkernel::Microkernel>(
        *machine_, substrate::SubstrateConfig{});

    const char* text = R"(
      component tls {
        channel imap
        seal
        assets 10
        loc 4000
      }
      component imap {
        channel tls
        channel render
        channel storage
        assets 2
        loc 8000
      }
      component render {
        channel imap
        assets 1
        loc 30000
      }
      component addressbook {
        channel imap
        assets 5
        loc 2000
      }
      component storage {
        channel imap
        seal
        assets 4
        loc 3000
      }
    )";
    auto manifests = core::parse_manifests(text);
    ASSERT_TRUE(manifests.ok());
    // addressbook needs a channel from imap too (symmetric declaration).
    (*manifests)[1].channels.push_back("addressbook");

    core::SystemComposer composer({{"microkernel", kernel_.get()}});
    auto assembly = composer.compose(*manifests);
    ASSERT_TRUE(assembly.ok()) << composer.diagnostics().empty();
    assembly_ = std::move(*assembly);
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<microkernel::Microkernel> kernel_;
  std::unique_ptr<core::Assembly> assembly_;
};

TEST_F(EmailClientTest, MailFlowWorks) {
  // storage holds mail; imap fetches from "server" and stores; render
  // formats on demand.
  std::map<std::string, std::string> mailbox;
  ASSERT_TRUE(assembly_
                  ->set_behavior("storage",
                                 [&](const substrate::Invocation& inv)
                                     -> Result<Bytes> {
                                   mailbox["mail1"] = to_string(inv.data);
                                   return to_bytes("stored");
                                 })
                  .ok());
  ASSERT_TRUE(assembly_
                  ->set_behavior("render",
                                 [](const substrate::Invocation& inv)
                                     -> Result<Bytes> {
                                   return to_bytes("<rendered>" +
                                                   to_string(inv.data) +
                                                   "</rendered>");
                                 })
                  .ok());
  auto stored = assembly_->invoke("imap", "storage", to_bytes("Hi Bob"));
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(mailbox["mail1"], "Hi Bob");
  auto rendered = assembly_->invoke("imap", "render", to_bytes("Hi Bob"));
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(to_string(*rendered), "<rendered>Hi Bob</rendered>");
}

TEST_F(EmailClientTest, CompromisedRendererIsContained) {
  // A malicious HTML mail exploits the renderer. The attacker now "is" the
  // render component and tries to pivot.
  ASSERT_TRUE(assembly_->compromise("render").ok());
  const auto render = *assembly_->component("render");
  const auto tls = *assembly_->component("tls");
  const auto addressbook = *assembly_->component("addressbook");

  // 1. It cannot read the TLS component's key memory.
  EXPECT_EQ(kernel_->read_memory(render->domain, tls->domain, 0, 64).error(),
            Errc::access_denied);
  // 2. It cannot reach the address book: no declared channel.
  EXPECT_EQ(assembly_->invoke("render", "addressbook",
                              to_bytes("give-me-contacts")).error(),
            Errc::policy_violation);
  // 3. It cannot talk to the network directly: only tls<->imap exists.
  EXPECT_EQ(assembly_->invoke("render", "tls", to_bytes("exfil")).error(),
            Errc::policy_violation);
  // 4. Its blast radius in the trust graph is itself only.
  const core::TrustGraph graph = assembly_->trust_graph();
  auto blast = graph.compromised_set("render");
  ASSERT_TRUE(blast.ok());
  EXPECT_EQ(blast->size(), 1u);
  (void)addressbook;
}

TEST_F(EmailClientTest, MonolithicCounterfactualLosesEverything) {
  const core::TrustGraph graph = assembly_->trust_graph();
  std::vector<core::Manifest> manifests;
  for (const std::string& name : assembly_->component_names())
    manifests.push_back((*assembly_->component(name))->manifest);
  const core::TrustGraph mono =
      core::TrustGraph::monolithic_counterfactual(manifests);
  EXPECT_DOUBLE_EQ(mono.containment(), 1.0);
  EXPECT_LT(graph.containment(), 0.5);
}

TEST_F(EmailClientTest, StorageUsesVpfsOverUntrustedFs) {
  // The storage component stores mail through VPFS on a legacy filesystem
  // that later gets compromised and tampers with the data.
  legacy::LegacyFilesystem disk;
  const auto storage = *assembly_->component("storage");
  auto vpfs = vpfs::Vpfs::format(disk, *kernel_, storage->domain, "/mail",
                                 to_bytes("mail-keys"));
  ASSERT_TRUE(vpfs.ok());
  ASSERT_TRUE((*vpfs)->create("inbox").ok());
  ASSERT_TRUE((*vpfs)->write("inbox", 0, to_bytes("private mail")).ok());
  ASSERT_TRUE((*vpfs)->sync().ok());

  // Compromised FS snoops: sees no plaintext.
  for (const std::string& path : disk.list("")) {
    auto raw = disk.snoop(path);
    ASSERT_TRUE(raw.ok());
    const Bytes needle = to_bytes("private mail");
    EXPECT_EQ(std::search(raw->begin(), raw->end(), needle.begin(),
                          needle.end()),
              raw->end());
  }
}

TEST_F(EmailClientTest, SecureGuiIndicatesComposerVsPhish) {
  // Secure path to the user: composing in the trusted mail UI shows GREEN;
  // a phishing page (legacy browser) cannot fake it.
  gui::SecureGui screen(80, 24);
  auto mail_ui = screen.create_session("mail-composer",
                                       gui::TrustLevel::trusted,
                                       gui::Rect{0, 1, 80, 10});
  auto phish = screen.create_session("mail-composer2",
                                     gui::TrustLevel::legacy,
                                     gui::Rect{0, 12, 80, 10});
  ASSERT_TRUE(mail_ui.ok());
  ASSERT_TRUE(phish.ok());

  ASSERT_TRUE(screen.set_focus(*phish).ok());
  EXPECT_EQ(screen.indicator_text(), "[ RED | mail-composer2 ]");
  // The phishing page draws a fake "GREEN" banner inside its viewport; the
  // real indicator row is untouched and still says RED.
  ASSERT_TRUE(screen.draw_text(*phish, 0, 0, "[ GREEN | mail-composer ]").ok());
  EXPECT_EQ(screen.indicator_text(), "[ RED | mail-composer2 ]");

  ASSERT_TRUE(screen.set_focus(*mail_ui).ok());
  EXPECT_EQ(screen.indicator_text(), "[ GREEN | mail-composer ]");
}

// ---------------------------------------------------------------------------
// Smart meter (Fig. 3): meter appliance = microkernel + virtualized Android
// + TrustZone-attested metering component + gateway; utility server =
// legacy OS + SGX anonymizer. Untrusted network in between.
class SmartMeterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    meter_machine_ = test::make_machine("smart-meter");
    tz_ = *test::shared_registry().create("trustzone", *meter_machine_);
    metering_ = *tz_->create_domain(test::tc_spec("metering"));
    android_ = *tz_->create_domain(test::legacy_spec("android", 8));

    server_machine_ = test::make_machine("utility-server");
    sgx_ = *test::shared_registry().create("sgx", *server_machine_);
    anonymizer_ = *sgx_->create_domain(test::tc_spec("anonymizer"));
    server_os_ = *sgx_->create_domain(test::legacy_spec("server-os", 8));

    ASSERT_TRUE(network_.register_endpoint("meter").ok());
    ASSERT_TRUE(network_.register_endpoint("utility").ok());

    meter_verifier_ =
        std::make_unique<core::AttestationVerifier>(to_bytes("meter-v"));
    meter_verifier_->add_trusted_root(test::shared_vendor().root_public_key());
    meter_verifier_->expect_measurement(
        "anonymizer", test::tc_spec("anonymizer").image.measurement());

    utility_verifier_ =
        std::make_unique<core::AttestationVerifier>(to_bytes("utility-v"));
    utility_verifier_->add_trusted_root(
        test::shared_vendor().root_public_key());
    utility_verifier_->expect_measurement(
        "metering", test::tc_spec("metering").image.measurement());
  }

  std::unique_ptr<hw::Machine> meter_machine_;
  std::unique_ptr<substrate::IsolationSubstrate> tz_;
  substrate::DomainId metering_ = 0, android_ = 0;

  std::unique_ptr<hw::Machine> server_machine_;
  std::unique_ptr<substrate::IsolationSubstrate> sgx_;
  substrate::DomainId anonymizer_ = 0, server_os_ = 0;

  net::SimNetwork network_;
  std::unique_ptr<core::AttestationVerifier> meter_verifier_;
  std::unique_ptr<core::AttestationVerifier> utility_verifier_;
};

TEST_F(SmartMeterTest, EndToEndAttestedTelemetry) {
  net::SecureChannelEndpoint meter(
      net::Role::initiator, to_bytes("meter-drbg"),
      net::ProverConfig{tz_.get(), metering_},
      net::VerifierConfig{meter_verifier_.get(), "anonymizer"});
  net::SecureChannelEndpoint utility(
      net::Role::responder, to_bytes("utility-drbg"),
      net::ProverConfig{sgx_.get(), anonymizer_},
      net::VerifierConfig{utility_verifier_.get(), "metering"});

  // Handshake across the untrusted network.
  auto msg1 = meter.start();
  ASSERT_TRUE(msg1.ok());
  ASSERT_TRUE(network_.send("meter", "utility", *msg1).ok());
  auto msg2 = utility.handle_msg1(network_.receive("utility")->payload);
  ASSERT_TRUE(msg2.ok());
  ASSERT_TRUE(network_.send("utility", "meter", *msg2).ok());
  auto msg3 = meter.handle_msg2(network_.receive("meter")->payload);
  ASSERT_TRUE(msg3.ok());
  ASSERT_TRUE(network_.send("meter", "utility", *msg3).ok());
  ASSERT_TRUE(utility.handle_msg3(network_.receive("utility")->payload).ok());

  // Telemetry flows; the wire shows only ciphertext.
  auto record = meter.seal_record(to_bytes("usage:3.2kWh@14:00"));
  ASSERT_TRUE(record.ok());
  const Bytes needle = to_bytes("usage:3.2kWh");
  EXPECT_EQ(std::search(record->begin(), record->end(), needle.begin(),
                        needle.end()),
            record->end());
  ASSERT_TRUE(network_.send("meter", "utility", *record).ok());
  auto plain = utility.open_record(network_.receive("utility")->payload);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(to_string(*plain), "usage:3.2kWh@14:00");
}

TEST_F(SmartMeterTest, FakeMeterEmulationRejected) {
  // "Users could disconnect the actual meter and instead have a software
  // emulation send fake data" — the emulation has no fused key, so it
  // cannot produce a quote chaining to the vendor root.
  net::SecureChannelEndpoint fake_meter(
      net::Role::initiator, to_bytes("fake"), std::nullopt,  // no hardware
      std::nullopt);
  net::SecureChannelEndpoint utility(
      net::Role::responder, to_bytes("utility-drbg"),
      net::ProverConfig{sgx_.get(), anonymizer_},
      net::VerifierConfig{utility_verifier_.get(), "metering"});

  auto msg1 = fake_meter.start();
  ASSERT_TRUE(msg1.ok());
  auto msg2 = utility.handle_msg1(*msg1);
  ASSERT_TRUE(msg2.ok());
  auto msg3 = fake_meter.handle_msg2(*msg2);
  ASSERT_TRUE(msg3.ok());
  EXPECT_FALSE(utility.handle_msg3(*msg3).ok());
}

TEST_F(SmartMeterTest, CompromisedAndroidCannotForgeReadings) {
  // The Android VM is rooted; it still cannot read the metering component's
  // state or its keys — those live in the secure world.
  ASSERT_TRUE(tz_->mark_compromised(android_).ok());
  ASSERT_TRUE(
      tz_->write_memory(metering_, metering_, 0, to_bytes("calib=1.00")).ok());
  EXPECT_EQ(tz_->read_memory(android_, metering_, 0, 10).error(),
            Errc::access_denied);
  EXPECT_EQ(tz_->write_memory(android_, metering_, 0, to_bytes("calib=0.5"))
                .error(),
            Errc::access_denied);
  EXPECT_EQ(tz_->attest(android_, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST_F(SmartMeterTest, GatewayEnforcesDomainWhitelist) {
  // "Network access of the Android subsystem can be filtered by an isolated
  // gateway component ... enforce domain whitelists and bandwidth policies."
  auto gateway = *tz_->create_domain(test::tc_spec("gateway"));
  auto chan = *tz_->create_channel(android_, gateway);

  std::uint64_t bytes_this_window = 0;
  const std::uint64_t kBandwidthCap = 1024;
  ASSERT_TRUE(
      tz_->set_handler(gateway,
                       [&](const substrate::Invocation& inv) -> Result<Bytes> {
                         const std::string request = to_string(inv.data);
                         const auto split = request.find(' ');
                         const std::string host = request.substr(0, split);
                         if (host != "utility.example")
                           return Errc::access_denied;  // whitelist
                         bytes_this_window += request.size();
                         if (bytes_this_window > kBandwidthCap)
                           return Errc::exhausted;  // anti-DDoS budget
                         return to_bytes("forwarded");
                       })
          .ok());

  // Legitimate telemetry to the utility: allowed.
  EXPECT_TRUE(tz_->call(android_, chan, to_bytes("utility.example data")).ok());
  // Botnet traffic to a DDoS victim: refused by the whitelist.
  EXPECT_EQ(tz_->call(android_, chan, to_bytes("victim.example syn-flood"))
                .error(),
            Errc::access_denied);
  // Flooding the allowed host: throttled by the bandwidth budget.
  Status last = Status::success();
  for (int i = 0; i < 100; ++i) {
    auto r = tz_->call(android_, chan, to_bytes("utility.example flood"));
    if (!r.ok()) {
      last = r.error();
      break;
    }
  }
  EXPECT_EQ(last.error(), Errc::exhausted);
}

TEST_F(SmartMeterTest, PasswordlessAuthIsPhishingResistant) {
  // The user never types a credential: the appliance authenticates with its
  // fused key. A phishing server (wrong vendor root) gets nothing useful.
  hw::Vendor phisher_vendor(/*seed=*/777, /*key_bits=*/512);
  core::AttestationVerifier phisher(to_bytes("phisher"));
  phisher.add_trusted_root(phisher_vendor.root_public_key());
  phisher.expect_measurement("metering",
                             test::tc_spec("metering").image.measurement());

  const Bytes nonce = phisher.make_challenge();
  auto quote =
      core::respond_to_challenge(*tz_, metering_, nonce, to_bytes("ctx"));
  ASSERT_TRUE(quote.ok());
  // The phisher can't validate it against its own root...
  EXPECT_FALSE(phisher.verify("metering", *quote, nonce, to_bytes("ctx")).ok());
  // ...and what it captured is useless elsewhere: the real verifier never
  // issued that nonce (and would refuse the replayed context binding).
  EXPECT_FALSE(
      utility_verifier_->verify("metering", *quote, nonce, to_bytes("ctx"))
          .ok());
}

TEST_F(SmartMeterTest, ServerOsCannotSeeReadingsInsideEnclave) {
  // The utility rents cloud capacity; the cloud OS must not see individual
  // readings. Readings live in the anonymizer enclave.
  ASSERT_TRUE(sgx_->write_memory(anonymizer_, anonymizer_, 0,
                                 to_bytes("reading:household-17")).ok());
  EXPECT_EQ(sgx_->read_memory(server_os_, anonymizer_, 0, 16).error(),
            Errc::access_denied);
  // Even the physical bus shows only ciphertext.
  hw::PhysicalAttacker attacker(*server_machine_);
  EXPECT_TRUE(attacker
                  .scan(server_machine_->dram(),
                        to_bytes("reading:household-17"))
                  .empty());
}

}  // namespace
}  // namespace lateral
