// Secure GUI: viewport confinement, indicator spoofing refused, focus-routed
// input, label uniqueness — the "secure path to the user".
#include <gtest/gtest.h>

#include "gui/secure_gui.h"

namespace lateral::gui {
namespace {

class GuiTest : public ::testing::Test {
 protected:
  GuiTest() : gui_(80, 24) {}
  SecureGui gui_;
};

TEST_F(GuiTest, ScreenTooSmallRejected) {
  EXPECT_THROW(SecureGui(8, 1), Error);
}

TEST_F(GuiTest, SessionsGetViewports) {
  auto mail = gui_.create_session("mail", TrustLevel::trusted,
                                  Rect{0, 1, 40, 10});
  ASSERT_TRUE(mail.ok());
  auto browser = gui_.create_session("browser", TrustLevel::legacy,
                                     Rect{40, 1, 40, 10});
  ASSERT_TRUE(browser.ok());
  EXPECT_NE(*mail, *browser);
}

TEST_F(GuiTest, ViewportsMayNotOverlap) {
  ASSERT_TRUE(
      gui_.create_session("a", TrustLevel::trusted, Rect{0, 1, 40, 10}).ok());
  EXPECT_FALSE(
      gui_.create_session("b", TrustLevel::trusted, Rect{20, 5, 40, 10}).ok());
}

TEST_F(GuiTest, ViewportMayNotCoverIndicatorRow) {
  EXPECT_FALSE(
      gui_.create_session("spoof", TrustLevel::legacy, Rect{0, 0, 20, 5}).ok());
}

TEST_F(GuiTest, ViewportMustFitScreen) {
  EXPECT_FALSE(
      gui_.create_session("big", TrustLevel::legacy, Rect{70, 20, 20, 10}).ok());
  EXPECT_FALSE(
      gui_.create_session("neg", TrustLevel::legacy, Rect{-1, 1, 5, 5}).ok());
  EXPECT_FALSE(
      gui_.create_session("zero", TrustLevel::legacy, Rect{0, 1, 0, 5}).ok());
}

TEST_F(GuiTest, LabelsMustBeUnique) {
  ASSERT_TRUE(
      gui_.create_session("bank", TrustLevel::trusted, Rect{0, 1, 20, 5}).ok());
  // A phisher cannot register the same label.
  EXPECT_FALSE(
      gui_.create_session("bank", TrustLevel::legacy, Rect{0, 10, 20, 5}).ok());
}

TEST_F(GuiTest, DrawInsideOwnViewport) {
  auto session =
      gui_.create_session("app", TrustLevel::trusted, Rect{10, 5, 30, 10});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(gui_.draw_text(*session, 0, 0, "hello").ok());
  EXPECT_EQ(gui_.row_text(5).substr(10, 5), "hello");
  EXPECT_EQ(gui_.owner_at(10, 5), *session);
}

TEST_F(GuiTest, DrawOutsideViewportRefused) {
  auto session =
      gui_.create_session("app", TrustLevel::legacy, Rect{10, 5, 10, 3});
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(gui_.draw_text(*session, 8, 0, "too-long").error(),
            Errc::access_denied);
  EXPECT_EQ(gui_.draw_text(*session, 0, 5, "below").error(),
            Errc::access_denied);
  EXPECT_EQ(gui_.draw_text(*session, -1, 0, "x").error(), Errc::access_denied);
}

TEST_F(GuiTest, IndicatorSpoofingImpossible) {
  // A malicious client wants to paint "[ GREEN | bank ]" into row 0. Its
  // viewport cannot include row 0 and draws are clipped to the viewport,
  // so every attempt fails — the indicator is server-owned.
  auto evil =
      gui_.create_session("evil", TrustLevel::legacy, Rect{0, 1, 80, 5});
  ASSERT_TRUE(evil.ok());
  EXPECT_FALSE(gui_.draw_text(*evil, 0, -1, "[ GREEN | bank ]").ok());
  for (int x = 0; x < 80; ++x) EXPECT_EQ(gui_.owner_at(x, 0), 0u);
}

TEST_F(GuiTest, IndicatorShowsFocusAndTrustLevel) {
  auto bank =
      gui_.create_session("bank", TrustLevel::trusted, Rect{0, 1, 20, 5});
  auto game =
      gui_.create_session("game", TrustLevel::legacy, Rect{0, 10, 20, 5});
  ASSERT_TRUE(bank.ok());
  ASSERT_TRUE(game.ok());

  ASSERT_TRUE(gui_.set_focus(*bank).ok());
  EXPECT_EQ(gui_.indicator_text(), "[ GREEN | bank ]");
  ASSERT_TRUE(gui_.set_focus(*game).ok());
  EXPECT_EQ(gui_.indicator_text(), "[ RED | game ]");
}

TEST_F(GuiTest, NoFocusIndicator) {
  EXPECT_EQ(gui_.indicator_text(), "[ --- | no focus ]");
}

TEST_F(GuiTest, InputRoutedToFocusedSessionOnly) {
  auto bank =
      gui_.create_session("bank", TrustLevel::trusted, Rect{0, 1, 20, 5});
  auto keylogger =
      gui_.create_session("keylogger", TrustLevel::legacy, Rect{0, 10, 20, 5});
  ASSERT_TRUE(bank.ok());
  ASSERT_TRUE(keylogger.ok());

  ASSERT_TRUE(gui_.set_focus(*bank).ok());
  for (const char key : std::string("hunter2"))
    ASSERT_TRUE(gui_.inject_key(key).ok());

  auto stolen = gui_.read_input(*keylogger);
  ASSERT_TRUE(stolen.ok());
  EXPECT_TRUE(stolen->empty());  // the background app saw nothing
  auto received = gui_.read_input(*bank);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(to_string(*received), "hunter2");
}

TEST_F(GuiTest, InputWithoutFocusBlocked) {
  EXPECT_EQ(gui_.inject_key('x').error(), Errc::would_block);
}

TEST_F(GuiTest, ReadInputDrainsQueue) {
  auto session =
      gui_.create_session("s", TrustLevel::trusted, Rect{0, 1, 10, 2});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(gui_.set_focus(*session).ok());
  ASSERT_TRUE(gui_.inject_key('a').ok());
  EXPECT_EQ(to_string(*gui_.read_input(*session)), "a");
  EXPECT_TRUE(gui_.read_input(*session)->empty());
}

TEST_F(GuiTest, DestroySessionClearsScreenAndFocus) {
  auto session =
      gui_.create_session("temp", TrustLevel::trusted, Rect{0, 1, 10, 2});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(gui_.draw_text(*session, 0, 0, "gone?").ok());
  ASSERT_TRUE(gui_.set_focus(*session).ok());
  ASSERT_TRUE(gui_.destroy_session(*session).ok());
  EXPECT_EQ(gui_.row_text(1).substr(0, 5), "     ");
  EXPECT_EQ(gui_.indicator_text(), "[ --- | no focus ]");
  EXPECT_FALSE(gui_.read_input(*session).ok());
  // The label is free again.
  EXPECT_TRUE(
      gui_.create_session("temp", TrustLevel::legacy, Rect{0, 1, 10, 2}).ok());
}

}  // namespace
}  // namespace lateral::gui
