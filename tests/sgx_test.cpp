// SGX specifics: EPC protection, memory encryption visible as ciphertext on
// the bus, tamper detection by the MEE, enclave->host access (Haven-style
// reuse), quoting-enclave costs, cache side-channel model.
#include <gtest/gtest.h>

#include "hw/attacker.h"
#include "sgx/sgx.h"
#include "test_support.h"

namespace lateral::sgx {
namespace {

using test::legacy_spec;
using test::tc_spec;

class SgxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("sgx");
    sgx_ = std::make_unique<Sgx>(*machine_, substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Sgx> sgx_;
};

TEST_F(SgxTest, ManyConcurrentEnclaves) {
  // Unlike TrustZone/SEP, independent enclaves run side by side.
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(
        sgx_->create_domain(tc_spec("enclave-" + std::to_string(i))).ok());
  EXPECT_EQ(sgx_->domains().size(), 8u);
}

TEST_F(SgxTest, EnclaveMemoryIsCiphertextOnTheBus) {
  auto enclave = sgx_->create_domain(tc_spec("vault", 2));
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(sgx_
                  ->write_memory(*enclave, *enclave, 0,
                                 to_bytes("ENCLAVE-CONFIDENTIAL"))
                  .ok());
  // The physical attacker scans all of DRAM: the plaintext is nowhere.
  hw::PhysicalAttacker attacker(*machine_);
  EXPECT_TRUE(
      attacker.scan(machine_->dram(), to_bytes("ENCLAVE-CONFIDENTIAL"))
          .empty());
  // But the enclave itself reads it back fine.
  auto read = sgx_->read_memory(*enclave, *enclave, 0, 20);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "ENCLAVE-CONFIDENTIAL");
}

TEST_F(SgxTest, HostMemoryIsPlaintext) {
  auto host = sgx_->create_domain(legacy_spec("host-os", 2));
  ASSERT_TRUE(host.ok());
  ASSERT_TRUE(
      sgx_->write_memory(*host, *host, 0, to_bytes("HOST-PLAINTEXT")).ok());
  hw::PhysicalAttacker attacker(*machine_);
  EXPECT_FALSE(
      attacker.scan(machine_->dram(), to_bytes("HOST-PLAINTEXT")).empty());
}

TEST_F(SgxTest, MeeDetectsPhysicalTampering) {
  auto enclave = sgx_->create_domain(tc_spec("vault", 1));
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(
      sgx_->write_memory(*enclave, *enclave, 0, to_bytes("protected")).ok());
  auto frames = sgx_->domain_frames(*enclave);
  ASSERT_TRUE(frames.ok());

  hw::PhysicalAttacker attacker(*machine_);
  // Flip ciphertext bits on the bus; page owner tags don't stop raw access.
  auto probed = attacker.probe((*frames)[0], 3);
  ASSERT_TRUE(probed.ok());
  for (auto& b : *probed) b ^= 0xFF;
  ASSERT_TRUE(attacker.tamper((*frames)[0], *probed).ok());
  EXPECT_EQ(sgx_->read_memory(*enclave, *enclave, 0, 9).error(),
            Errc::tamper_detected);
}

TEST_F(SgxTest, MeeDetectsReplayOfStaleCiphertext) {
  auto enclave = sgx_->create_domain(tc_spec("vault", 1));
  ASSERT_TRUE(enclave.ok());
  auto frames = sgx_->domain_frames(*enclave);
  ASSERT_TRUE(frames.ok());

  ASSERT_TRUE(
      sgx_->write_memory(*enclave, *enclave, 0, to_bytes("version-1")).ok());
  Bytes stale;
  ASSERT_TRUE(
      machine_->memory().raw_read((*frames)[0], hw::kPageSize, stale).ok());
  ASSERT_TRUE(
      sgx_->write_memory(*enclave, *enclave, 0, to_bytes("version-2")).ok());
  // Replay the old ciphertext (rollback attack on DRAM).
  ASSERT_TRUE(machine_->memory().raw_write((*frames)[0], stale).ok());
  EXPECT_EQ(sgx_->read_memory(*enclave, *enclave, 0, 9).error(),
            Errc::tamper_detected);
}

TEST_F(SgxTest, OsCannotTouchEpc) {
  auto host = sgx_->create_domain(legacy_spec("host-os"));
  auto enclave = sgx_->create_domain(tc_spec("vault"));
  ASSERT_TRUE(host.ok());
  ASSERT_TRUE(enclave.ok());
  EXPECT_EQ(sgx_->read_memory(*host, *enclave, 0, 4).error(),
            Errc::access_denied);
  EXPECT_EQ(sgx_->write_memory(*host, *enclave, 0, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST_F(SgxTest, EnclaveCannotTouchOtherEnclave) {
  auto a = sgx_->create_domain(tc_spec("enclave-a"));
  auto b = sgx_->create_domain(tc_spec("enclave-b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(sgx_->read_memory(*a, *b, 0, 4).error(), Errc::access_denied);
}

TEST_F(SgxTest, EnclaveReadsHostMemoryForTrustedReuse) {
  // Haven-style: "Reuse of services offered by the legacy operating system
  // outside the enclave is possible" — the enclave reaches into untrusted
  // memory (and must vet what it finds).
  auto host = sgx_->create_domain(legacy_spec("host-os"));
  auto enclave = sgx_->create_domain(tc_spec("haven"));
  ASSERT_TRUE(host.ok());
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(
      sgx_->write_memory(*host, *host, 0, to_bytes("syscall-result")).ok());
  auto read = sgx_->read_memory(*enclave, *host, 0, 14);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "syscall-result");
}

TEST_F(SgxTest, AttestOnlyForEnclaves) {
  auto host = sgx_->create_domain(legacy_spec("host-os"));
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(sgx_->attest(*host, to_bytes("x")).error(), Errc::access_denied);
}

TEST_F(SgxTest, QuotingEnclaveCostsMoreThanLocalWork) {
  auto enclave = sgx_->create_domain(tc_spec("prover"));
  ASSERT_TRUE(enclave.ok());
  const Cycles before = machine_->now();
  ASSERT_TRUE(sgx_->attest(*enclave, to_bytes("nonce")).ok());
  // EREPORT + two enclave crossings + signature: a visible six-figure bill.
  EXPECT_GE(machine_->now() - before,
            machine_->costs().sgx_ereport +
                2 * (machine_->costs().sgx_eenter + machine_->costs().sgx_eexit));
}

TEST_F(SgxTest, SideChannelLeaksDespiteIsolation) {
  // §II-C: "even high-profile security technologies such as SGX suffer from
  // ... cache side-channels attacks". The EPC check denies direct reads, but
  // the side channel recovers a fraction of the secret anyway.
  auto enclave = sgx_->create_domain(tc_spec("leaky", 1));
  ASSERT_TRUE(enclave.ok());
  const Bytes secret = to_bytes("0123456789abcdef");
  ASSERT_TRUE(sgx_->write_memory(*enclave, *enclave, 0, secret).ok());

  auto leak = sgx_->side_channel_leak(*enclave, 0, secret.size(), 0.25);
  ASSERT_TRUE(leak.ok());
  std::size_t recovered = 0;
  for (std::size_t i = 0; i < secret.size(); ++i)
    if ((*leak)[i] == secret[i] && (*leak)[i] != 0) ++recovered;
  EXPECT_GE(recovered, secret.size() / 4);
  EXPECT_LT(recovered, secret.size());  // partial, not total, recovery
}

TEST_F(SgxTest, SideChannelValidatesArguments) {
  auto enclave = sgx_->create_domain(tc_spec("leaky", 1));
  ASSERT_TRUE(enclave.ok());
  EXPECT_FALSE(sgx_->side_channel_leak(*enclave, 0, 16, 1.5).ok());
  EXPECT_FALSE(sgx_->side_channel_leak(*enclave, 0, 1 << 20, 0.1).ok());
  auto host = sgx_->create_domain(legacy_spec("host"));
  ASSERT_TRUE(host.ok());
  EXPECT_FALSE(sgx_->side_channel_leak(*host, 0, 16, 0.1).ok());
}

TEST_F(SgxTest, LocalAttestationBetweenEnclaves) {
  auto app = sgx_->create_domain(tc_spec("app-enclave"));
  auto quoting = sgx_->create_domain(tc_spec("quoting-enclave"));
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(quoting.ok());

  auto report = sgx_->ereport(*app, *quoting, to_bytes("key-exchange-hash"));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->source_measurement,
            tc_spec("app-enclave").image.measurement());
  EXPECT_TRUE(sgx_->verify_report(*quoting, *report).ok());
}

TEST_F(SgxTest, LocalReportOnlyVerifiableByItsTarget) {
  auto app = sgx_->create_domain(tc_spec("app-enclave"));
  auto target = sgx_->create_domain(tc_spec("target-enclave"));
  auto bystander = sgx_->create_domain(tc_spec("bystander-enclave"));
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE(bystander.ok());

  auto report = sgx_->ereport(*app, *target, to_bytes("ud"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(sgx_->verify_report(*target, *report).ok());
  // A different enclave does not hold the target's report key.
  EXPECT_EQ(sgx_->verify_report(*bystander, *report).error(),
            Errc::verification_failed);
}

TEST_F(SgxTest, LocalReportTamperDetected) {
  auto app = sgx_->create_domain(tc_spec("app-enclave"));
  auto target = sgx_->create_domain(tc_spec("target-enclave"));
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(target.ok());
  auto report = sgx_->ereport(*app, *target, to_bytes("ud"));
  ASSERT_TRUE(report.ok());

  auto forged_source = *report;
  forged_source.source_measurement[0] ^= 1;  // claim a different identity
  EXPECT_FALSE(sgx_->verify_report(*target, forged_source).ok());

  auto forged_data = *report;
  forged_data.user_data = to_bytes("different binding");
  EXPECT_FALSE(sgx_->verify_report(*target, forged_data).ok());
}

TEST_F(SgxTest, HostCannotUseLocalAttestation) {
  auto host = sgx_->create_domain(legacy_spec("host-os"));
  auto enclave = sgx_->create_domain(tc_spec("enclave"));
  ASSERT_TRUE(host.ok());
  ASSERT_TRUE(enclave.ok());
  EXPECT_EQ(sgx_->ereport(*host, *enclave, to_bytes("x")).error(),
            Errc::access_denied);
  EXPECT_EQ(sgx_->ereport(*enclave, *host, to_bytes("x")).error(),
            Errc::invalid_argument);
  Sgx::LocalReport bogus;
  EXPECT_EQ(sgx_->verify_report(*host, bogus).error(), Errc::access_denied);
}

TEST_F(SgxTest, LocalAttestationIsMuchCheaperThanRemote) {
  auto app = sgx_->create_domain(tc_spec("app-enclave"));
  auto target = sgx_->create_domain(tc_spec("target-enclave"));
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(target.ok());

  const Cycles local_before = machine_->now();
  auto report = sgx_->ereport(*app, *target, to_bytes("x"));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(sgx_->verify_report(*target, *report).ok());
  const Cycles local_cost = machine_->now() - local_before;

  const Cycles remote_before = machine_->now();
  ASSERT_TRUE(sgx_->attest(*app, to_bytes("x")).ok());
  const Cycles remote_cost = machine_->now() - remote_before;
  EXPECT_LT(local_cost * 100, remote_cost);
}

TEST_F(SgxTest, EpcPagesReleasedOnDestroy) {
  auto enclave = sgx_->create_domain(tc_spec("transient", 2));
  ASSERT_TRUE(enclave.ok());
  auto frames = sgx_->domain_frames(*enclave);
  ASSERT_TRUE(frames.ok());
  ASSERT_TRUE(sgx_->destroy_domain(*enclave).ok());
  // Pages are untagged again: a fresh host domain can reuse them.
  for (const hw::PhysAddr frame : *frames)
    EXPECT_EQ(machine_->memory().page_owner(frame), 0u);
}

}  // namespace
}  // namespace lateral::sgx
