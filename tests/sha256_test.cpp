// SHA-256 against FIPS 180-4 / NIST CAVP vectors plus incremental-update
// properties.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "util/hex.h"
#include "util/rng.h"

namespace lateral::crypto {
namespace {

std::string hex_of(const Digest& d) { return util::to_hex(digest_view(d)); }

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex_of(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const Bytes input(1'000'000, 'a');
  EXPECT_EQ(hex_of(Sha256::hash(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: exercises the padding-into-second-block path.
  const Bytes input(64, 0x61);
  EXPECT_EQ(hex_of(Sha256::hash(input)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes is the largest single-block message; 56 forces two blocks.
  const Digest d55 = Sha256::hash(Bytes(55, 0));
  const Digest d56 = Sha256::hash(Bytes(56, 0));
  EXPECT_EQ(hex_of(d55),
            "02779466cdec163811d078815c633f21901413081449002f24aa3e80f0b88ef7");
  EXPECT_EQ(hex_of(d56),
            "d4817aa5497628e7c77e6b606107042bbba3130888c5f47a375e6179be789fbb");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  util::Xoshiro rng(11);
  const Bytes data = rng.bytes(1000);
  Sha256 ctx;
  std::size_t offset = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 128, 679};
  for (const std::size_t chunk : chunks) {
    ctx.update(BytesView(data.data() + offset, chunk));
    offset += chunk;
  }
  ASSERT_EQ(offset, data.size());
  EXPECT_EQ(ctx.finish(), Sha256::hash(data));
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 ctx;
  ctx.update(to_bytes("x"));
  (void)ctx.finish();
  EXPECT_THROW(ctx.update(to_bytes("y")), Error);
  EXPECT_THROW(ctx.finish(), Error);
}

TEST(Sha256, Hash2ConcatenatesInputs) {
  const Digest combined = Sha256::hash2(to_bytes("ab"), to_bytes("c"));
  EXPECT_EQ(combined, Sha256::hash(to_bytes("abc")));
}

TEST(Sha256, DigestBytesMatchesView) {
  const Digest d = Sha256::hash(to_bytes("x"));
  const Bytes b = digest_bytes(d);
  ASSERT_EQ(b.size(), 32u);
  EXPECT_TRUE(ct_equal(b, digest_view(d)));
}

// Property sweep: every split point of a two-part update equals one-shot.
class Sha256SplitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256SplitTest, SplitUpdateEqualsOneShot) {
  util::Xoshiro rng(17);
  const Bytes data = rng.bytes(200);
  const std::size_t split = GetParam();
  Sha256 ctx;
  ctx.update(BytesView(data.data(), split));
  ctx.update(BytesView(data.data() + split, data.size() - split));
  EXPECT_EQ(ctx.finish(), Sha256::hash(data));
}

INSTANTIATE_TEST_SUITE_P(Splits, Sha256SplitTest,
                         ::testing::Values(0, 1, 31, 32, 63, 64, 65, 100, 127,
                                           128, 199, 200));

// Distinct inputs give distinct digests (trivial collision sanity).
TEST(Sha256, NoTrivialCollisions) {
  util::Xoshiro rng(23);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i)
    EXPECT_TRUE(seen.insert(hex_of(Sha256::hash(rng.bytes(32)))).second);
}

}  // namespace
}  // namespace lateral::crypto
