// VPFS: functional round trips plus the full adversarial matrix —
// confidentiality (no plaintext on the legacy FS), integrity (block and
// metadata tampering detected), freshness (rollback detected via the NV
// counter), code-identity binding, and crash-consistent sync.
#include <gtest/gtest.h>

#include "microkernel/microkernel.h"
#include "test_support.h"
#include "util/rng.h"
#include "vpfs/vpfs.h"

namespace lateral::vpfs {
namespace {

class VpfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("vpfs");
    kernel_ = std::make_unique<microkernel::Microkernel>(
        *machine_, substrate::SubstrateConfig{});
    domain_ = *kernel_->create_domain(test::tc_spec("mail-storage"));
    auto fs = Vpfs::format(backing_, *kernel_, domain_, "/vp",
                           to_bytes("format-seed"));
    ASSERT_TRUE(fs.ok());
    vpfs_ = std::move(*fs);
  }

  Result<std::unique_ptr<Vpfs>> remount() {
    vpfs_.reset();
    return Vpfs::mount(backing_, *kernel_, domain_, "/vp");
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<microkernel::Microkernel> kernel_;
  substrate::DomainId domain_ = 0;
  legacy::LegacyFilesystem backing_;
  std::unique_ptr<Vpfs> vpfs_;
};

TEST_F(VpfsTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(vpfs_->create("inbox/mail1").ok());
  ASSERT_TRUE(vpfs_->write("inbox/mail1", 0, to_bytes("Dear user,")).ok());
  auto read = vpfs_->read("inbox/mail1", 0, 10);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "Dear user,");
  EXPECT_EQ(*vpfs_->size("inbox/mail1"), 10u);
}

TEST_F(VpfsTest, OverwriteWithinBlock) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("aaaaaaaaaa")).ok());
  ASSERT_TRUE(vpfs_->write("f", 3, to_bytes("BBB")).ok());
  EXPECT_EQ(to_string(*vpfs_->read("f", 0, 10)), "aaaBBBaaaa");
}

TEST_F(VpfsTest, MultiBlockFile) {
  ASSERT_TRUE(vpfs_->create("big").ok());
  util::Xoshiro rng(1);
  const Bytes data = rng.bytes(3 * kVpfsBlockSize + 777);
  ASSERT_TRUE(vpfs_->write("big", 0, data).ok());
  auto read = vpfs_->read("big", 0, data.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  // Unaligned region in the middle.
  auto middle = vpfs_->read("big", kVpfsBlockSize - 10, 20);
  ASSERT_TRUE(middle.ok());
  EXPECT_TRUE(std::equal(middle->begin(), middle->end(),
                         data.begin() + kVpfsBlockSize - 10));
}

TEST_F(VpfsTest, SparseHolesReadAsZero) {
  ASSERT_TRUE(vpfs_->create("sparse").ok());
  ASSERT_TRUE(vpfs_->write("sparse", 2 * kVpfsBlockSize, to_bytes("tail")).ok());
  auto hole = vpfs_->read("sparse", 100, 8);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(*hole, Bytes(8, 0));
}

TEST_F(VpfsTest, ListAndRemove) {
  ASSERT_TRUE(vpfs_->create("a").ok());
  ASSERT_TRUE(vpfs_->create("b").ok());
  EXPECT_EQ(vpfs_->list().size(), 2u);
  ASSERT_TRUE(vpfs_->remove("a").ok());
  EXPECT_EQ(vpfs_->list().size(), 1u);
  EXPECT_FALSE(vpfs_->exists("a"));
  EXPECT_FALSE(vpfs_->remove("a").ok());
  EXPECT_FALSE(vpfs_->read("a", 0, 1).ok());
}

TEST_F(VpfsTest, PersistsAcrossRemount) {
  ASSERT_TRUE(vpfs_->create("persistent").ok());
  ASSERT_TRUE(vpfs_->write("persistent", 0, to_bytes("survives")).ok());
  ASSERT_TRUE(vpfs_->sync().ok());
  auto remounted = remount();
  ASSERT_TRUE(remounted.ok());
  EXPECT_EQ(to_string(*(*remounted)->read("persistent", 0, 8)), "survives");
}

TEST_F(VpfsTest, NoPlaintextEverTouchesLegacyStorage) {
  // "It never handles plaintext data" — scan every byte the legacy FS holds.
  const Bytes secret = to_bytes("TOP-SECRET-LOVE-LETTER");
  ASSERT_TRUE(vpfs_->create("letter").ok());
  ASSERT_TRUE(vpfs_->write("letter", 100, secret).ok());
  ASSERT_TRUE(vpfs_->sync().ok());

  for (const std::string& path : backing_.list("")) {
    auto raw = backing_.snoop(path);
    ASSERT_TRUE(raw.ok());
    const auto it =
        std::search(raw->begin(), raw->end(), secret.begin(), secret.end());
    EXPECT_EQ(it, raw->end()) << "plaintext leaked into " << path;
  }
  // File NAMES are confidential too (they live in the encrypted meta blob).
  const Bytes name = to_bytes("letter");
  for (const std::string& path : backing_.list("")) {
    auto raw = backing_.snoop(path);
    const auto it =
        std::search(raw->begin(), raw->end(), name.begin(), name.end());
    EXPECT_EQ(it, raw->end());
  }
}

TEST_F(VpfsTest, DetectsBlockTampering) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  ASSERT_TRUE(vpfs_->write("f", 0, Bytes(kVpfsBlockSize, 0x55)).ok());
  ASSERT_TRUE(vpfs_->sync().ok());

  // The compromised legacy stack flips a bit inside the live ciphertext.
  // (Block version 1 lives in shadow slot 1, which starts at the stored
  // block size = data + MAC.)
  const auto files = backing_.list("/vp/f");
  ASSERT_FALSE(files.empty());
  const std::size_t in_slot1 = (kVpfsBlockSize + 32) + 100;
  auto byte = backing_.read(files[0], in_slot1, 1);
  ASSERT_TRUE(byte.ok());
  (*byte)[0] ^= 0x01;
  ASSERT_TRUE(backing_.write(files[0], in_slot1, *byte).ok());

  auto remounted = remount();
  ASSERT_TRUE(remounted.ok());  // metadata untouched, mount fine
  EXPECT_EQ((*remounted)->read("f", 0, 64).error(), Errc::tamper_detected);
  EXPECT_GE((*remounted)->stats().mac_failures, 1u);
}

TEST_F(VpfsTest, DetectsMetadataTampering) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  ASSERT_TRUE(vpfs_->sync().ok());
  util::Xoshiro rng(4);
  ASSERT_TRUE(backing_.corrupt_random_bit("/vp/meta", rng).ok());
  EXPECT_EQ(remount().error(), Errc::tamper_detected);
}

TEST_F(VpfsTest, DetectsSealTampering) {
  ASSERT_TRUE(vpfs_->sync().ok());
  util::Xoshiro rng(5);
  ASSERT_TRUE(backing_.corrupt_random_bit("/vp/root.seal", rng).ok());
  EXPECT_EQ(remount().error(), Errc::tamper_detected);
}

TEST_F(VpfsTest, DetectsWholeSnapshotRollback) {
  // The strongest storage attack: capture a consistent old snapshot of
  // EVERYTHING (data + metadata + sealed root) and restore it later. The
  // sealed state embeds the on-chip NV counter, which moved on.
  ASSERT_TRUE(vpfs_->create("wallet").ok());
  ASSERT_TRUE(vpfs_->write("wallet", 0, to_bytes("balance=1000")).ok());
  ASSERT_TRUE(vpfs_->sync().ok());
  for (const std::string& path : backing_.list(""))
    ASSERT_TRUE(backing_.snapshot(path).ok());

  ASSERT_TRUE(vpfs_->write("wallet", 0, to_bytes("balance=0000")).ok());
  ASSERT_TRUE(vpfs_->sync().ok());

  for (const std::string& path : backing_.list(""))
    ASSERT_TRUE(backing_.rollback(path).ok());
  EXPECT_EQ(remount().error(), Errc::tamper_detected);
}

TEST_F(VpfsTest, SealedStateBoundToCodeIdentity) {
  ASSERT_TRUE(vpfs_->sync().ok());
  vpfs_.reset();
  // A different component (different measurement) on the same machine
  // cannot mount the file system.
  auto other = kernel_->create_domain(test::tc_spec("evil-app"));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(Vpfs::mount(backing_, *kernel_, *other, "/vp").error(),
            Errc::tamper_detected);
}

TEST_F(VpfsTest, DroppedWritesDetectedAtRemount) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  backing_.set_drop_writes(true);  // the legacy FS lies about durability
  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("lost")).ok());
  const Status sync_status = vpfs_->sync();
  backing_.set_drop_writes(false);
  (void)sync_status;  // sync may "succeed" — the FS lied convincingly
  // But the damage cannot go unnoticed: the stored state is inconsistent
  // with the sealed root.
  EXPECT_FALSE(remount().ok());
}

TEST_F(VpfsTest, CrashBeforeMetaWriteRecoversOldState) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("committed")).ok());
  ASSERT_TRUE(vpfs_->sync().ok());

  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("uncommitt")).ok());
  vpfs_->set_crash_point(CrashPoint::after_data_blocks);
  EXPECT_FALSE(vpfs_->sync().ok());  // power failure

  auto recovered = remount();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(to_string(*(*recovered)->read("f", 0, 9)), "committed");
}

TEST_F(VpfsTest, CrashAfterMetaStageRecoversOldState) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("committed")).ok());
  ASSERT_TRUE(vpfs_->sync().ok());

  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("uncommitt")).ok());
  vpfs_->set_crash_point(CrashPoint::after_meta_write);
  EXPECT_FALSE(vpfs_->sync().ok());

  auto recovered = remount();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(to_string(*(*recovered)->read("f", 0, 9)), "committed");
}

TEST_F(VpfsTest, CrashAfterJournalCommitRecoversOldState) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("committed")).ok());
  ASSERT_TRUE(vpfs_->sync().ok());

  ASSERT_TRUE(vpfs_->write("f", 0, to_bytes("uncommitt")).ok());
  vpfs_->set_crash_point(CrashPoint::after_journal_commit);
  EXPECT_FALSE(vpfs_->sync().ok());

  // The seal was never updated, so the pre-crash state is authoritative.
  auto recovered = remount();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(to_string(*(*recovered)->read("f", 0, 9)), "committed");
}

TEST_F(VpfsTest, RepeatedSyncsAndRemounts) {
  for (int round = 0; round < 5; ++round) {
    const std::string name = "file-" + std::to_string(round);
    ASSERT_TRUE(vpfs_->create(name).ok());
    ASSERT_TRUE(
        vpfs_->write(name, 0, to_bytes("round-" + std::to_string(round)))
            .ok());
    ASSERT_TRUE(vpfs_->sync().ok());
    auto remounted = remount();
    ASSERT_TRUE(remounted.ok());
    vpfs_ = std::move(*remounted);
    for (int j = 0; j <= round; ++j)
      EXPECT_EQ(to_string(*vpfs_->read("file-" + std::to_string(j), 0, 7)),
                "round-" + std::to_string(j));
  }
}

TEST_F(VpfsTest, StatsTrackCryptoWork) {
  ASSERT_TRUE(vpfs_->create("f").ok());
  ASSERT_TRUE(vpfs_->write("f", 0, Bytes(2 * kVpfsBlockSize, 1)).ok());
  EXPECT_GE(vpfs_->stats().blocks_encrypted, 2u);
  (void)vpfs_->read("f", 0, kVpfsBlockSize);
  EXPECT_GE(vpfs_->stats().blocks_decrypted, 1u);
}

TEST_F(VpfsTest, RenamePreservesContent) {
  ASSERT_TRUE(vpfs_->create("draft").ok());
  ASSERT_TRUE(vpfs_->write("draft", 0, to_bytes("text")).ok());
  ASSERT_TRUE(vpfs_->rename("draft", "final").ok());
  EXPECT_FALSE(vpfs_->exists("draft"));
  EXPECT_EQ(to_string(*vpfs_->read("final", 0, 4)), "text");
  // Survives a commit + remount.
  ASSERT_TRUE(vpfs_->sync().ok());
  auto remounted = remount();
  ASSERT_TRUE(remounted.ok());
  EXPECT_EQ(to_string(*(*remounted)->read("final", 0, 4)), "text");
}

TEST_F(VpfsTest, RenameValidation) {
  ASSERT_TRUE(vpfs_->create("a").ok());
  ASSERT_TRUE(vpfs_->create("b").ok());
  EXPECT_FALSE(vpfs_->rename("ghost", "x").ok());
  EXPECT_FALSE(vpfs_->rename("a", "b").ok());
  EXPECT_FALSE(vpfs_->rename("a", "").ok());
}

TEST_F(VpfsTest, FsckCleanAndDamaged) {
  ASSERT_TRUE(vpfs_->create("good").ok());
  ASSERT_TRUE(vpfs_->write("good", 0, Bytes(kVpfsBlockSize, 1)).ok());
  ASSERT_TRUE(vpfs_->create("bad").ok());
  ASSERT_TRUE(vpfs_->write("bad", 0, Bytes(kVpfsBlockSize, 2)).ok());
  ASSERT_TRUE(vpfs_->sync().ok());

  auto clean = vpfs_->fsck();
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.files_checked, 2u);
  EXPECT_EQ(clean.blocks_checked, 2u);

  // Damage 'bad' in its live shadow slot.
  const auto files = backing_.list("/vp/f");
  ASSERT_EQ(files.size(), 2u);
  const std::size_t in_slot1 = (kVpfsBlockSize + 32) + 7;
  for (const auto& path : files) {
    auto byte = backing_.read(path, in_slot1, 1);
    ASSERT_TRUE(byte.ok());
    (*byte)[0] ^= 0x01;
    ASSERT_TRUE(backing_.write(path, in_slot1, *byte).ok());
    break;  // only the first file
  }
  auto damaged = vpfs_->fsck();
  EXPECT_FALSE(damaged.clean());
  EXPECT_EQ(damaged.damaged_files.size(), 1u);
}

TEST_F(VpfsTest, CreateValidation) {
  EXPECT_FALSE(vpfs_->create("").ok());
  ASSERT_TRUE(vpfs_->create("dup").ok());
  EXPECT_FALSE(vpfs_->create("dup").ok());
}

class VpfsBlockSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VpfsBlockSweepTest, WriteReadAtOffset) {
  auto machine = test::make_machine("vpfs-sweep");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto domain = *kernel.create_domain(test::tc_spec("sweeper"));
  legacy::LegacyFilesystem backing;
  auto vpfs = Vpfs::format(backing, kernel, domain, "/s", to_bytes("seed"));
  ASSERT_TRUE(vpfs.ok());

  util::Xoshiro rng(GetParam());
  const Bytes data = rng.bytes(333);
  ASSERT_TRUE((*vpfs)->create("f").ok());
  ASSERT_TRUE((*vpfs)->write("f", GetParam(), data).ok());
  auto read = (*vpfs)->read("f", GetParam(), data.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

INSTANTIATE_TEST_SUITE_P(Offsets, VpfsBlockSweepTest,
                         ::testing::Values(0, 1, 4095, 4096, 4097, 8191,
                                           12288, 100000));

}  // namespace
}  // namespace lateral::vpfs
