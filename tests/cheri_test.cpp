// CHERI substrate specifics: guarded-pointer semantics — monotonic
// derivation, bounds/permission faults, unforgeability, object-granular
// cross-domain sharing, and the cost profile (cheapest invocation).
#include <gtest/gtest.h>

#include "cheri/cheri.h"
#include "hw/attacker.h"
#include "test_support.h"

namespace lateral::cheri {
namespace {

using test::tc_spec;

class CheriTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("cheri");
    cheri_ = std::make_unique<Cheri>(*machine_, substrate::SubstrateConfig{});
  }
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Cheri> cheri_;
};

TEST_F(CheriTest, RootCapabilityCoversAllocation) {
  auto domain = cheri_->create_domain(tc_spec("comp", 3));
  ASSERT_TRUE(domain.ok());
  auto root = cheri_->root_capability(*domain);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->length, 3 * hw::kPageSize);
  EXPECT_TRUE(root->read);
  EXPECT_TRUE(root->write);
  EXPECT_TRUE(root->tag);
}

TEST_F(CheriTest, LoadStoreThroughCapability) {
  auto domain = cheri_->create_domain(tc_spec("comp"));
  ASSERT_TRUE(domain.ok());
  auto root = cheri_->root_capability(*domain);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(cheri_->cap_store(*root, 64, to_bytes("object")).ok());
  auto loaded = cheri_->cap_load(*root, 64, 6);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(to_string(*loaded), "object");
}

TEST_F(CheriTest, BoundsFaultOnOverflow) {
  auto domain = cheri_->create_domain(tc_spec("comp", 1));
  ASSERT_TRUE(domain.ok());
  auto root = cheri_->root_capability(*domain);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(cheri_->cap_load(*root, hw::kPageSize - 2, 4).error(),
            Errc::access_denied);
  EXPECT_EQ(cheri_->cap_store(*root, hw::kPageSize, to_bytes("x")).error(),
            Errc::access_denied);
}

TEST_F(CheriTest, DerivationIsMonotonic) {
  auto domain = cheri_->create_domain(tc_spec("comp", 2));
  ASSERT_TRUE(domain.ok());
  auto root = cheri_->root_capability(*domain);
  ASSERT_TRUE(root.ok());

  auto narrow = cheri_->derive(*root, 100, 50, /*read=*/true, /*write=*/false);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->length, 50u);
  EXPECT_FALSE(narrow->write);

  // Widening bounds is refused.
  EXPECT_EQ(cheri_->derive(*narrow, 0, 51, true, false).error(),
            Errc::access_denied);
  // Regaining a dropped permission is refused.
  EXPECT_EQ(cheri_->derive(*narrow, 0, 10, true, true).error(),
            Errc::access_denied);
  // Narrowing further is fine.
  EXPECT_TRUE(cheri_->derive(*narrow, 10, 10, true, false).ok());
}

TEST_F(CheriTest, PermissionsEnforcedOnUse) {
  auto domain = cheri_->create_domain(tc_spec("comp"));
  ASSERT_TRUE(domain.ok());
  auto root = cheri_->root_capability(*domain);
  ASSERT_TRUE(root.ok());
  auto read_only = cheri_->derive(*root, 0, 128, true, false);
  ASSERT_TRUE(read_only.ok());
  EXPECT_TRUE(cheri_->cap_load(*read_only, 0, 16).ok());
  EXPECT_EQ(cheri_->cap_store(*read_only, 0, to_bytes("w")).error(),
            Errc::access_denied);

  auto write_only = cheri_->derive(*root, 0, 128, false, true);
  ASSERT_TRUE(write_only.ok());
  EXPECT_TRUE(cheri_->cap_store(*write_only, 0, to_bytes("w")).ok());
  EXPECT_EQ(cheri_->cap_load(*write_only, 0, 1).error(), Errc::access_denied);
}

TEST_F(CheriTest, ForgedCapabilitiesRejected) {
  auto domain = cheri_->create_domain(tc_spec("victim"));
  ASSERT_TRUE(domain.ok());
  auto root = cheri_->root_capability(*domain);
  ASSERT_TRUE(root.ok());

  // An attacker crafts a capability from raw integers: the tag is unset.
  Capability forged;
  forged.base = root->base;
  forged.length = root->length;
  forged.read = forged.write = true;
  forged.tag = false;  // only the CPU can set this
  EXPECT_EQ(cheri_->cap_load(forged, 0, 16).error(), Errc::access_denied);
  EXPECT_EQ(cheri_->derive(forged, 0, 8, true, false).error(),
            Errc::access_denied);
}

TEST_F(CheriTest, ObjectGranularSharing) {
  // The paper's "more fine-grained disaggregation of authority": give a
  // peer exactly one buffer, nothing else.
  auto producer = cheri_->create_domain(tc_spec("producer", 2));
  auto consumer = cheri_->create_domain(tc_spec("consumer", 2));
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE(consumer.ok());

  // Without a shared capability, the consumer sees nothing of the producer.
  EXPECT_EQ(cheri_->read_memory(*consumer, *producer, 0, 16).error(),
            Errc::access_denied);

  // The producer derives a read-only window over one object and hands it
  // over (capability transfer rides the ordinary channel machinery).
  auto root = cheri_->root_capability(*producer);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(cheri_->cap_store(*root, 256, to_bytes("shared-object")).ok());
  auto window = cheri_->derive(*root, 256, 13, true, false);
  ASSERT_TRUE(window.ok());

  // The consumer uses the received capability: exactly that object, read-only.
  auto read = cheri_->cap_load(*window, 0, 13);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(*read), "shared-object");
  EXPECT_EQ(cheri_->cap_store(*window, 0, to_bytes("x")).error(),
            Errc::access_denied);
  EXPECT_EQ(cheri_->cap_load(*window, 13, 1).error(), Errc::access_denied);
}

TEST_F(CheriTest, NoLegacyHostingNoAttestation) {
  EXPECT_EQ(cheri_->create_domain(test::legacy_spec("os")).error(),
            Errc::not_supported);
  auto domain = cheri_->create_domain(tc_spec("comp"));
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ(cheri_->attest(*domain, to_bytes("x")).error(),
            Errc::not_supported);
  EXPECT_EQ(cheri_->seal(*domain, to_bytes("x")).error(), Errc::not_supported);
}

TEST_F(CheriTest, CheapestInvocationOfAllSubstrates) {
  auto a = cheri_->create_domain(tc_spec("a"));
  auto b = cheri_->create_domain(tc_spec("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto channel = cheri_->create_channel(*a, *b);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(cheri_->set_handler(*b, [](const substrate::Invocation&)
                                      -> Result<Bytes> { return Bytes{}; })
                  .ok());
  const Cycles before = machine_->now();
  ASSERT_TRUE(cheri_->call(*a, *channel, to_bytes("x")).ok());
  const Cycles roundtrip = machine_->now() - before;
  // Cheaper than even one direction of microkernel IPC.
  EXPECT_LT(roundtrip, machine_->costs().ipc_one_way);
}

TEST_F(CheriTest, PlaintextInDramNoPhysicalDefence) {
  auto domain = cheri_->create_domain(tc_spec("comp"));
  ASSERT_TRUE(domain.ok());
  ASSERT_TRUE(
      cheri_->write_memory(*domain, *domain, 0, to_bytes("CHERI-SECRET"))
          .ok());
  hw::PhysicalAttacker attacker(*machine_);
  EXPECT_FALSE(
      attacker.scan(machine_->dram(), to_bytes("CHERI-SECRET")).empty());
  EXPECT_FALSE(
      cheri_->info().defends(substrate::AttackerModel::physical_bus));
}

}  // namespace
}  // namespace lateral::cheri
