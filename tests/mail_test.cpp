// The decomposed mail application: message parsing (incl. adversarial
// input), IMAP server/client engines, VPFS-backed MailStore, the
// exploitable renderer, the address book, and the fully assembled
// MailClient with its containment story.
#include <gtest/gtest.h>

#include <set>

#include "mail/client.h"
#include "microkernel/microkernel.h"
#include "test_support.h"
#include "trace/exporter.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace lateral::mail {
namespace {

// ---------------------------------------------------------------------------
// Message parsing.
TEST(MessageParse, BasicHeadersAndBody) {
  auto message = parse_message(
      "From: alice@example\nTo: bob@example\nSubject: Lunch\n\nAt noon?");
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message->from(), "alice@example");
  EXPECT_EQ(message->to(), "bob@example");
  EXPECT_EQ(message->subject(), "Lunch");
  EXPECT_EQ(message->body, "At noon?");
}

TEST(MessageParse, CrlfAndCaseInsensitiveHeaders) {
  auto message =
      parse_message("FROM: a@x\r\nSUBJECT: Hi\r\n\r\nbody\r\nline2");
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message->from(), "a@x");
  EXPECT_EQ(message->subject(), "Hi");
  EXPECT_EQ(message->body, "body\nline2");
}

TEST(MessageParse, FoldedHeaderContinuation) {
  auto message =
      parse_message("Subject: a very\n  long subject\nFrom: a@x\n\n.");
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message->subject(), "a very long subject");
}

TEST(MessageParse, RejectsBrokenHeaders) {
  EXPECT_FALSE(parse_message("NoColonHere\n\nbody").ok());
  EXPECT_FALSE(parse_message(": empty name\n\nbody").ok());
  EXPECT_FALSE(parse_message("  continuation first\n\nbody").ok());
}

TEST(MessageParse, EmptyBodyAndNoBody) {
  auto message = parse_message("From: a@x\n\n");
  ASSERT_TRUE(message.ok());
  EXPECT_TRUE(message->body.empty());
  auto headers_only = parse_message("From: a@x\n");
  ASSERT_TRUE(headers_only.ok());
  EXPECT_TRUE(headers_only->body.empty());
}

TEST(MessageParse, WireRoundTrip) {
  const Message original =
      make_message("a@x", "b@y", "Subject here", "line1\nline2");
  auto reparsed = parse_message(original.to_wire());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->from(), "a@x");
  EXPECT_EQ(reparsed->subject(), "Subject here");
  EXPECT_EQ(reparsed->body, "line1\nline2");
}

TEST(MessageParse, AdversarialInputNeverCrashes) {
  util::Xoshiro rng(4);
  for (int i = 0; i < 300; ++i) {
    const Bytes junk = rng.bytes(rng.below(300));
    (void)parse_message(std::string(junk.begin(), junk.end()));
  }
}

// ---------------------------------------------------------------------------
// IMAP engines.
class ImapTest : public ::testing::Test {
 protected:
  ImapTest()
      : server_("alice", "token123"),
        client_([this](const std::string& line) -> Result<std::string> {
          return server_.handle(line);
        }) {}
  ImapServer server_;
  ImapClient client_;
};

TEST_F(ImapTest, LoginRequired) {
  EXPECT_FALSE(client_.select("INBOX").ok());
  EXPECT_FALSE(client_.login("alice", "wrong").ok());
  EXPECT_TRUE(client_.login("alice", "token123").ok());
  EXPECT_TRUE(client_.select("INBOX").ok());
}

TEST_F(ImapTest, FetchDeliveredMail) {
  ASSERT_TRUE(server_.deliver("INBOX", make_message("bob@x", "alice@x",
                                                    "Hello", "Hi Alice"))
                  .ok());
  ASSERT_TRUE(client_.login("alice", "token123").ok());
  auto count = client_.select("INBOX");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  auto message = client_.fetch(0);
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message->subject(), "Hello");
  EXPECT_EQ(message->body, "Hi Alice");
  EXPECT_FALSE(client_.fetch(1).ok());
}

TEST_F(ImapTest, AppendAndListFolders) {
  ASSERT_TRUE(client_.login("alice", "token123").ok());
  auto index = client_.append("Sent", make_message("alice@x", "bob@x",
                                                   "Re: Hello", "reply"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 0u);
  auto folders = client_.list_folders();
  ASSERT_TRUE(folders.ok());
  EXPECT_EQ(folders->size(), 2u);  // INBOX + Sent
}

TEST_F(ImapTest, ExpungeRemoves) {
  ASSERT_TRUE(server_.deliver("INBOX", make_message("a", "b", "1", "x")).ok());
  ASSERT_TRUE(server_.deliver("INBOX", make_message("a", "b", "2", "y")).ok());
  ASSERT_TRUE(client_.login("alice", "token123").ok());
  ASSERT_TRUE(client_.select("INBOX").ok());
  ASSERT_TRUE(client_.expunge(0).ok());
  auto remaining = client_.select("INBOX");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(*remaining, 1u);
  auto message = client_.fetch(0);
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message->subject(), "2");
}

TEST_F(ImapTest, LogoutEndsSession) {
  ASSERT_TRUE(client_.login("alice", "token123").ok());
  ASSERT_TRUE(client_.logout().ok());
  EXPECT_FALSE(client_.select("INBOX").ok());
}

TEST_F(ImapTest, ServerRejectsGarbage) {
  EXPECT_EQ(server_.handle(""), "NO empty request");
  EXPECT_EQ(server_.handle("FROBNICATE x").rfind("NO", 0), 0u);
}

// ---------------------------------------------------------------------------
// MailStore on VPFS.
class MailStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("mailstore");
    kernel_ = std::make_unique<microkernel::Microkernel>(
        *machine_, substrate::SubstrateConfig{});
    domain_ = *kernel_->create_domain(test::tc_spec("storage"));
    auto fs = vpfs::Vpfs::format(disk_, *kernel_, domain_, "/mail",
                                 to_bytes("seed"));
    ASSERT_TRUE(fs.ok());
    store_ = std::make_unique<MailStore>(std::move(*fs));
    ASSERT_TRUE(store_->create_folder("INBOX").ok());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<microkernel::Microkernel> kernel_;
  substrate::DomainId domain_ = 0;
  legacy::LegacyFilesystem disk_;
  std::unique_ptr<MailStore> store_;
};

TEST_F(MailStoreTest, StoreLoadRoundTrip) {
  auto index = store_->store("INBOX", make_message("a@x", "b@y", "S", "body"));
  ASSERT_TRUE(index.ok());
  auto message = store_->load("INBOX", *index);
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message->subject(), "S");
  EXPECT_EQ(*store_->count("INBOX"), 1u);
}

TEST_F(MailStoreTest, FoldersAreIndependent) {
  ASSERT_TRUE(store_->create_folder("Sent").ok());
  ASSERT_TRUE(store_->store("INBOX", make_message("a", "b@x", "in", "1")).ok());
  ASSERT_TRUE(store_->store("Sent", make_message("b", "a@x", "out", "2")).ok());
  EXPECT_EQ(*store_->count("INBOX"), 1u);
  EXPECT_EQ(*store_->count("Sent"), 1u);
  EXPECT_EQ(store_->load("Sent", 0)->subject(), "out");
  EXPECT_EQ(store_->folders().size(), 2u);
}

TEST_F(MailStoreTest, RemoveKeepsOthersStable) {
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(store_
                    ->store("INBOX", make_message("a", "b@x",
                                                  std::to_string(i), "."))
                    .ok());
  ASSERT_TRUE(store_->remove("INBOX", 1).ok());
  EXPECT_EQ(*store_->count("INBOX"), 2u);
  EXPECT_EQ(store_->load("INBOX", 0)->subject(), "0");
  EXPECT_EQ(store_->load("INBOX", 1)->subject(), "2");
}

TEST_F(MailStoreTest, SearchFindsSubjectAndBody) {
  ASSERT_TRUE(store_->store("INBOX", make_message("a", "b@x", "invoice",
                                                  "pay me")).ok());
  ASSERT_TRUE(store_->store("INBOX", make_message("a", "b@x", "hello",
                                                  "the invoice is attached"))
                  .ok());
  ASSERT_TRUE(store_->store("INBOX", make_message("a", "b@x", "spam",
                                                  "buy now")).ok());
  auto hits = store_->search("INBOX", "invoice");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, (std::vector<std::size_t>{0, 1}));
}

TEST_F(MailStoreTest, SurvivesRemountAndDetectsDiskTampering) {
  ASSERT_TRUE(store_->store("INBOX", make_message("a", "b@x", "keep", "me"))
                  .ok());
  ASSERT_TRUE(store_->sync().ok());
  store_.reset();

  auto remount = vpfs::Vpfs::mount(disk_, *kernel_, domain_, "/mail");
  ASSERT_TRUE(remount.ok());
  MailStore reopened(std::move(*remount));
  EXPECT_EQ(*reopened.count("INBOX"), 1u);
  EXPECT_EQ(reopened.load("INBOX", 0)->subject(), "keep");

  // No plaintext mail on the untrusted disk.
  for (const std::string& path : disk_.list("")) {
    auto raw = disk_.snoop(path);
    const Bytes needle = to_bytes("keep");
    EXPECT_EQ(std::search(raw->begin(), raw->end(), needle.begin(),
                          needle.end()),
              raw->end());
  }
}

TEST_F(MailStoreTest, UnknownFolderErrors) {
  EXPECT_FALSE(store_->store("Ghost", make_message("a", "b@x", "s", ".")).ok());
  EXPECT_FALSE(store_->count("Ghost").ok());
  EXPECT_FALSE(store_->load("INBOX", 5).ok());
  EXPECT_FALSE(store_->create_folder("INBOX").ok());
  EXPECT_FALSE(store_->create_folder("bad/name").ok());
}

// ---------------------------------------------------------------------------
// Renderer.
TEST(Renderer, SanitizesHtml) {
  HtmlRenderer renderer;
  EXPECT_EQ(renderer.render("<p>Hello <b>world</b></p>"), "Hello world");
  EXPECT_EQ(renderer.render("a &lt;tag&gt; &amp; more"), "a <tag> & more");
  EXPECT_EQ(renderer.render("  spaced\n\nout  "), "spaced out");
  EXPECT_FALSE(renderer.is_compromised());
}

TEST(Renderer, CraftedMailExploitsIt) {
  HtmlRenderer renderer;
  (void)renderer.render(std::string("<p>innocent</p>") +
                        HtmlRenderer::kExploitMarker);
  EXPECT_TRUE(renderer.is_compromised());
  // Every later output is attacker-controlled.
  EXPECT_EQ(renderer.render("<p>clean mail</p>"),
            "[renderer owned by attacker]");
}

// ---------------------------------------------------------------------------
// AddressBook.
TEST(AddressBookTest, AddLookupComplete) {
  AddressBook book;
  ASSERT_TRUE(book.add("bob", "bob@example").ok());
  ASSERT_TRUE(book.add("bonnie", "bonnie@example").ok());
  ASSERT_TRUE(book.add("carol", "carol@example").ok());
  EXPECT_EQ(*book.lookup("bob"), "bob@example");
  EXPECT_FALSE(book.lookup("mallory").ok());
  EXPECT_EQ(book.complete("bo"), (std::vector<std::string>{"bob", "bonnie"}));
  EXPECT_TRUE(book.complete("z").empty());
  EXPECT_FALSE(book.add("", "x@y").ok());
  EXPECT_FALSE(book.add("dave", "not-an-address").ok());
  ASSERT_TRUE(book.remove("bob").ok());
  EXPECT_FALSE(book.lookup("bob").ok());
}

// ---------------------------------------------------------------------------
// InputMethod.
TEST(InputMethodTest, LearnsAndSuggestsByFrequency) {
  InputMethod input;
  input.learn("the meeting is at the office; the meeting moved");
  EXPECT_EQ(input.vocabulary(), 6u);  // the meeting is at office moved
  const auto suggestions = input.suggest("m");
  ASSERT_GE(suggestions.size(), 2u);
  EXPECT_EQ(suggestions[0], "meeting");  // frequency 2 beats moved (1)
  EXPECT_EQ(suggestions[1], "moved");
}

TEST(InputMethodTest, SuggestLimitsAndCaseFolds) {
  InputMethod input;
  input.learn("Apple apricot Avocado anchovy almond");
  EXPECT_EQ(input.suggest("a", 3).size(), 3u);
  EXPECT_EQ(input.suggest("A", 10).size(), 5u);
  EXPECT_TRUE(input.suggest("z").empty());
}

TEST(InputMethodTest, AutocorrectWithinOneEdit) {
  InputMethod input;
  input.learn("meeting tomorrow schedule");
  EXPECT_EQ(input.autocorrect("meetng"), "meeting");    // deletion
  EXPECT_EQ(input.autocorrect("meetings"), "meeting");  // insertion
  EXPECT_EQ(input.autocorrect("meeying"), "meeting");   // substitution
  EXPECT_EQ(input.autocorrect("meeting"), "meeting");   // exact
  EXPECT_EQ(input.autocorrect("zzzzzz"), "zzzzzz");     // no candidate
}

TEST(InputMethodTest, AutocorrectPrefersFrequentWords) {
  InputMethod input;
  input.learn("cart cart cart card");
  EXPECT_EQ(input.autocorrect("carx"), "cart");
}

// ---------------------------------------------------------------------------
// The assembled client.
class MailClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = test::make_machine("mail-client");
    kernel_ = std::make_unique<microkernel::Microkernel>(
        *machine_, substrate::SubstrateConfig{});
    server_ = std::make_unique<ImapServer>("alice", "token123");
    auto client = MailClient::create({.substrate = kernel_.get(),
                                      .disk = &disk_,
                                      .server = server_.get(),
                                      .vpfs_seed = to_bytes("mail-seed")});
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<microkernel::Microkernel> kernel_;
  legacy::LegacyFilesystem disk_;
  std::unique_ptr<ImapServer> server_;
  std::unique_ptr<MailClient> client_;
};

TEST_F(MailClientTest, EndToEndMailFlow) {
  ASSERT_TRUE(server_->deliver("INBOX",
                               make_message("bob@example", "alice@example",
                                            "Dinner?",
                                            "<p>How about <b>8pm</b>?</p>"))
                  .ok());
  ASSERT_TRUE(client_->login("alice", "token123").ok());
  auto count = client_->sync_inbox();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);

  auto display = client_->read_mail(0);
  ASSERT_TRUE(display.ok());
  EXPECT_EQ(*display, "bob@example: Dinner?\nHow about 8pm?");

  ASSERT_TRUE(client_->add_contact("bob", "bob@example").ok());
  auto completions = client_->complete_recipient("b");
  ASSERT_TRUE(completions.ok());
  EXPECT_EQ(*completions, std::vector<std::string>{"bob"});
  ASSERT_TRUE(client_->compose("bob", "Re: Dinner?", "8pm works").ok());

  // The reply landed in the provider's Sent folder.
  EXPECT_EQ(server_->handle("SELECT Sent"), "OK 1");
}

TEST_F(MailClientTest, SyncIsIncremental) {
  ASSERT_TRUE(client_->login("alice", "token123").ok());
  ASSERT_TRUE(
      server_->deliver("INBOX", make_message("x@y", "a@b", "1", ".")).ok());
  EXPECT_EQ(*client_->sync_inbox(), 1u);
  ASSERT_TRUE(
      server_->deliver("INBOX", make_message("x@y", "a@b", "2", ".")).ok());
  EXPECT_EQ(*client_->sync_inbox(), 2u);
  EXPECT_EQ(*client_->sync_inbox(), 2u);  // idempotent
}

TEST_F(MailClientTest, TracedSyncExportsSpansFromThreeDomains) {
  trace::Tracer tracer;
  kernel_->set_tracer(&tracer);
  ASSERT_TRUE(client_->login("alice", "token123").ok());
  ASSERT_TRUE(
      server_->deliver("INBOX", make_message("x@y", "a@b", "hello", "body"))
          .ok());
  {
    trace::TraceScope scope(tracer.begin_trace());
    ASSERT_TRUE(client_->sync_inbox().ok());
  }

  // The one traced sync touched at least three isolated domains.
  std::set<std::string> active;
  for (const auto& ref : tracer.rings())
    if (!ref.ring->snapshot().empty()) active.insert(ref.label);
  EXPECT_GE(active.size(), 3u) << "domains seen: " << active.size();
  EXPECT_TRUE(active.count("imap"));

  // The ui component is an authorized observer of imap's payload-bearing
  // spans (the manifest's trace stanza says so), so the export succeeds
  // and carries payload bytes.
  trace::TraceExporter exporter(tracer, &client_->runtime_metrics());
  trace::ExportOptions opts;
  opts.observer = "ui";
  opts.manifests = client_->assembly().manifests();
  auto json = exporter.chrome_trace_json(opts);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json->find("\"imap\""), std::string::npos);
  EXPECT_NE(json->find("\"payload\""), std::string::npos);

  // The plain-text snapshot never carries payload bytes, observer or not.
  const std::string text = client_->assembly().dump_observability(
      &tracer, &client_->runtime_metrics());
  EXPECT_NE(text.find("imap"), std::string::npos);
  EXPECT_NE(text.find("redacted"), std::string::npos);

  kernel_->set_tracer(nullptr);
}

TEST_F(MailClientTest, UnauthorizedObserverCannotExportImapPayloads) {
  trace::Tracer tracer;
  kernel_->set_tracer(&tracer);
  ASSERT_TRUE(client_->login("alice", "token123").ok());
  ASSERT_TRUE(
      server_->deliver("INBOX", make_message("x@y", "a@b", "secret", "pin"))
          .ok());
  {
    trace::TraceScope scope(tracer.begin_trace());
    ASSERT_TRUE(client_->sync_inbox().ok());
  }

  // render is a declared component but neither a trace observer of imap
  // nor trusted by it — exporting imap's payload-bearing spans to it is
  // refused outright rather than silently redacted.
  trace::TraceExporter exporter(tracer, &client_->runtime_metrics());
  trace::ExportOptions opts;
  opts.observer = "render";
  opts.manifests = client_->assembly().manifests();
  auto json = exporter.chrome_trace_json(opts);
  ASSERT_FALSE(json.ok());
  EXPECT_EQ(json.error(), Errc::redaction_denied);

  // An anonymous export (no observer) redacts everything and succeeds.
  auto anon = exporter.chrome_trace_json({});
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon->find("\"payload\":\""), std::string::npos);

  kernel_->set_tracer(nullptr);
}

TEST_F(MailClientTest, SearchLocalMail) {
  ASSERT_TRUE(client_->login("alice", "token123").ok());
  ASSERT_TRUE(server_->deliver("INBOX", make_message("x@y", "a@b", "invoice",
                                                     "pay")).ok());
  ASSERT_TRUE(server_->deliver("INBOX", make_message("x@y", "a@b", "cats",
                                                     "pictures")).ok());
  ASSERT_TRUE(client_->sync_inbox().ok());
  auto hits = client_->search("invoice");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<std::size_t>{0});
}

TEST_F(MailClientTest, CraftedMailCompromisesOnlyTheRenderer) {
  ASSERT_TRUE(client_->login("alice", "token123").ok());
  ASSERT_TRUE(server_
                  ->deliver("INBOX",
                            make_message("evil@attacker", "alice@example",
                                         "Totally safe",
                                         std::string("<p>hi</p>") +
                                             HtmlRenderer::kExploitMarker))
                  .ok());
  ASSERT_TRUE(client_->sync_inbox().ok());

  // Reading the mail triggers the exploit inside the renderer domain.
  auto display = client_->read_mail(0);
  ASSERT_TRUE(display.ok());
  EXPECT_NE(display->find("[renderer owned by attacker]"), std::string::npos);
  EXPECT_TRUE(client_->renderer_compromised());
  ASSERT_TRUE(client_->flag_renderer_compromised().ok());

  // Containment: the renderer domain cannot reach the address book, the
  // TLS component or the storage component.
  const auto render = *client_->assembly().component("render");
  const auto tls = *client_->assembly().component("tls");
  const auto book = *client_->assembly().component("addressbook");
  EXPECT_EQ(kernel_->read_memory(render->domain, tls->domain, 0, 16).error(),
            Errc::access_denied);
  EXPECT_EQ(kernel_->read_memory(render->domain, book->domain, 0, 16).error(),
            Errc::access_denied);
  EXPECT_EQ(client_->assembly()
                .invoke("render", "addressbook", to_bytes("LOOKUP bob"))
                .error(),
            Errc::policy_violation);
  EXPECT_EQ(client_->assembly()
                .invoke("render", "tls", to_bytes("LOGIN alice token123"))
                .error(),
            Errc::policy_violation);

  // The rest of the client still works.
  ASSERT_TRUE(client_->add_contact("carol", "carol@example").ok());
  EXPECT_TRUE(client_->compose("carol", "unaffected", "still fine").ok());
}

TEST_F(MailClientTest, WrongCredentialsSurface) {
  EXPECT_FALSE(client_->login("alice", "wrong-token").ok());
}

TEST_F(MailClientTest, InputMethodLearnsFromComposedMail) {
  ASSERT_TRUE(client_->login("alice", "token123").ok());
  ASSERT_TRUE(client_->add_contact("bob", "bob@example").ok());
  ASSERT_TRUE(client_->compose("bob", "project sigma update",
                               "the sigma milestone shipped")
                  .ok());
  auto suggestions = client_->suggest_word("sig");
  ASSERT_TRUE(suggestions.ok());
  ASSERT_FALSE(suggestions->empty());
  EXPECT_EQ((*suggestions)[0], "sigma");
  auto corrected = client_->autocorrect("sigmaa");
  ASSERT_TRUE(corrected.ok());
  EXPECT_EQ(*corrected, "sigma");
}

TEST_F(MailClientTest, DictionaryUnreachableFromRenderer) {
  // The paper's point about input-method data: the compromised renderer
  // has no channel to the input component, so the dictionary (everything
  // the user ever typed) stays private.
  ASSERT_TRUE(client_->flag_renderer_compromised().ok());
  EXPECT_EQ(client_->assembly()
                .invoke("render", "input", to_bytes("SUGGEST a"))
                .error(),
            Errc::policy_violation);
  const auto render = *client_->assembly().component("render");
  const auto input = *client_->assembly().component("input");
  // Nor via memory.
  auto machine_kernel = render->substrate;
  EXPECT_EQ(machine_kernel
                ->read_memory(render->domain, input->domain, 0, 16)
                .error(),
            Errc::access_denied);
}

}  // namespace
}  // namespace lateral::mail
