// Property-based and model-based tests.
//
//  * VPFS vs. an in-memory reference model under random operation sequences
//    (including syncs and remounts) — functional equivalence.
//  * Bignum vs. native 128-bit arithmetic on random operands.
//  * SecureChannel handshake: no single bit flip in a handshake message may
//    lead to a silently working channel ("fail closed").
//  * Manifest parser: arbitrary junk never crashes; valid bundles survive
//    a text round trip.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "core/composer.h"
#include "core/manifest.h"
#include "crypto/bignum.h"
#include "microkernel/microkernel.h"
#include "net/secure_channel.h"
#include "test_support.h"
#include "util/rng.h"
#include "vpfs/vpfs.h"

namespace lateral {
namespace {

// ---------------------------------------------------------------------------
// VPFS model test.
class VpfsModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VpfsModelTest, MatchesReferenceModel) {
  auto machine = test::make_machine("vpfs-model");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto domain = *kernel.create_domain(test::tc_spec("model"));
  legacy::LegacyFilesystem disk;
  auto formatted = vpfs::Vpfs::format(disk, kernel, domain, "/m",
                                      to_bytes("model-seed"));
  ASSERT_TRUE(formatted.ok());
  auto fs = std::move(*formatted);

  std::map<std::string, Bytes> model;
  util::Xoshiro rng(GetParam());
  const std::vector<std::string> names = {"a", "b", "c", "d"};

  for (int step = 0; step < 200; ++step) {
    const std::string& name = names[rng.below(names.size())];
    switch (rng.below(6)) {
      case 0: {  // create
        const bool exists = model.contains(name);
        const Status status = fs->create(name);
        EXPECT_EQ(status.ok(), !exists) << "step " << step;
        if (!exists) model.emplace(name, Bytes{});
        break;
      }
      case 1: {  // write at random offset
        if (!model.contains(name)) break;
        const std::size_t offset = rng.below(20'000);
        const Bytes data = rng.bytes(1 + rng.below(6'000));
        ASSERT_TRUE(fs->write(name, offset, data).ok()) << "step " << step;
        Bytes& ref = model[name];
        if (ref.size() < offset + data.size())
          ref.resize(offset + data.size(), 0);
        std::copy(data.begin(), data.end(),
                  ref.begin() + static_cast<long>(offset));
        break;
      }
      case 2: {  // read and compare
        if (!model.contains(name)) {
          EXPECT_FALSE(fs->read(name, 0, 1).ok());
          break;
        }
        const Bytes& ref = model[name];
        const std::size_t offset = rng.below(ref.size() + 100);
        const std::size_t len = 1 + rng.below(8'000);
        auto got = fs->read(name, offset, len);
        ASSERT_TRUE(got.ok()) << "step " << step;
        Bytes expected;
        if (offset < ref.size()) {
          const std::size_t n = std::min(len, ref.size() - offset);
          expected.assign(ref.begin() + static_cast<long>(offset),
                          ref.begin() + static_cast<long>(offset + n));
        }
        EXPECT_EQ(*got, expected) << "step " << step;
        break;
      }
      case 3: {  // remove
        const bool exists = model.contains(name);
        EXPECT_EQ(fs->remove(name).ok(), exists);
        model.erase(name);
        break;
      }
      case 4: {  // size check
        if (!model.contains(name)) break;
        auto size = fs->size(name);
        ASSERT_TRUE(size.ok());
        EXPECT_EQ(*size, model[name].size());
        break;
      }
      case 5: {  // sync; occasionally remount
        ASSERT_TRUE(fs->sync().ok()) << "step " << step;
        if (rng.below(3) == 0) {
          fs.reset();
          auto remounted = vpfs::Vpfs::mount(disk, kernel, domain, "/m");
          ASSERT_TRUE(remounted.ok()) << "step " << step;
          fs = std::move(*remounted);
        }
        break;
      }
    }
  }

  // Final full comparison.
  EXPECT_EQ(fs->list().size(), model.size());
  for (const auto& [name, ref] : model) {
    auto got = fs->read(name, 0, ref.size());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, ref) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VpfsModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Bignum vs native 128-bit arithmetic.
TEST(BignumProperty, MatchesNativeArithmetic) {
  util::Xoshiro rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next() | 1;  // nonzero divisor
    const crypto::Bignum big_a(a), big_b(b);

    const unsigned __int128 sum = (unsigned __int128)a + b;
    crypto::Bignum big_sum = big_a + big_b;
    EXPECT_EQ(big_sum % (crypto::Bignum(1) << 64),
              crypto::Bignum(static_cast<std::uint64_t>(sum)));
    EXPECT_EQ(big_sum >> 64,
              crypto::Bignum(static_cast<std::uint64_t>(sum >> 64)));

    const unsigned __int128 product = (unsigned __int128)a * b;
    crypto::Bignum big_product = big_a * big_b;
    EXPECT_EQ(big_product % (crypto::Bignum(1) << 64),
              crypto::Bignum(static_cast<std::uint64_t>(product)));
    EXPECT_EQ(big_product >> 64,
              crypto::Bignum(static_cast<std::uint64_t>(product >> 64)));

    EXPECT_EQ(big_a / big_b, crypto::Bignum(a / b));
    EXPECT_EQ(big_a % big_b, crypto::Bignum(a % b));
    if (a >= b) {
      EXPECT_EQ(big_a - big_b, crypto::Bignum(a - b));
    }
    EXPECT_EQ(crypto::Bignum::gcd(big_a, big_b),
              crypto::Bignum(std::gcd(a, b)));
  }
}

TEST(BignumProperty, ShiftMulDivConsistency) {
  util::Xoshiro rng(7);
  for (int i = 0; i < 200; ++i) {
    const crypto::Bignum n = crypto::Bignum::from_bytes(rng.bytes(1 + rng.below(32)));
    const std::size_t k = rng.below(64);
    EXPECT_EQ((n << k) >> k, n);
    EXPECT_EQ((n << k) / (crypto::Bignum(1) << k), n);
  }
}

// ---------------------------------------------------------------------------
// SecureChannel: fail closed under any single-bit handshake corruption.
TEST(SecureChannelProperty, SingleBitFlipsFailClosed) {
  // A clean handshake first, to know the baseline works.
  util::Xoshiro rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    net::SecureChannelEndpoint initiator(net::Role::initiator,
                                         to_bytes("i" + std::to_string(trial)),
                                         std::nullopt, std::nullopt);
    net::SecureChannelEndpoint responder(net::Role::responder,
                                         to_bytes("r" + std::to_string(trial)),
                                         std::nullopt, std::nullopt);
    auto msg1 = initiator.start();
    ASSERT_TRUE(msg1.ok());
    auto msg2 = responder.handle_msg1(*msg1);
    ASSERT_TRUE(msg2.ok());

    // Corrupt one random bit of msg2.
    Bytes corrupted(*msg2);
    const std::size_t byte = rng.below(corrupted.size());
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));

    auto msg3 = initiator.handle_msg2(corrupted);
    if (!msg3.ok()) continue;  // failed loudly: fine

    // The handshake "succeeded" structurally; the keys MUST disagree, so
    // any record exchange fails. Silence would be a downgrade bug.
    (void)responder.handle_msg3(*msg3);
    auto record = initiator.seal_record(to_bytes("probe"));
    ASSERT_TRUE(record.ok());
    auto opened = responder.open_record(*record);
    EXPECT_FALSE(opened.ok()) << "bit flip at byte " << byte
                              << " produced a silently working channel";
  }
}

TEST(SecureChannelProperty, TruncationsNeverCrashAndFail) {
  net::SecureChannelEndpoint initiator(net::Role::initiator, to_bytes("i"),
                                       std::nullopt, std::nullopt);
  net::SecureChannelEndpoint responder(net::Role::responder, to_bytes("r"),
                                       std::nullopt, std::nullopt);
  auto msg1 = initiator.start();
  ASSERT_TRUE(msg1.ok());
  for (std::size_t len = 0; len < msg1->size(); len += 7) {
    net::SecureChannelEndpoint fresh(net::Role::responder, to_bytes("f"),
                                     std::nullopt, std::nullopt);
    const Bytes truncated(msg1->begin(), msg1->begin() + static_cast<long>(len));
    EXPECT_FALSE(fresh.handle_msg1(truncated).ok()) << "len " << len;
  }
}

// ---------------------------------------------------------------------------
// Manifest parser robustness.
TEST(ManifestProperty, RandomJunkNeverCrashes) {
  util::Xoshiro rng(5);
  const std::string alphabet =
      "component {}\n chanel channel trusts kind pages # 0123456789 abc";
  for (int i = 0; i < 500; ++i) {
    std::string junk;
    const std::size_t len = rng.below(200);
    for (std::size_t j = 0; j < len; ++j)
      junk.push_back(alphabet[rng.below(alphabet.size())]);
    (void)core::parse_manifests(junk);  // must not crash or throw
  }
}

TEST(ManifestProperty, RandomValidBundlesRoundTrip) {
  util::Xoshiro rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<core::Manifest> bundle(1 + rng.below(6));
    for (std::size_t i = 0; i < bundle.size(); ++i) {
      bundle[i].name = "c" + std::to_string(i);
      bundle[i].memory_pages = 1 + rng.below(16);
      bundle[i].time_share_permille = 1 + static_cast<std::uint32_t>(rng.below(999));
      bundle[i].asset_value = static_cast<double>(rng.below(100));
      bundle[i].loc = rng.below(50'000);
      bundle[i].needs_sealing = rng.below(2) == 1;
      bundle[i].needs_attestation = rng.below(2) == 1;
      if (i > 0 && rng.below(2) == 1) {
        bundle[i].channels.push_back("c" + std::to_string(rng.below(i)));
        if (rng.below(2) == 1) bundle[i].trusts = bundle[i].channels;
      }
    }
    auto reparsed = core::parse_manifests(core::to_text(bundle));
    ASSERT_TRUE(reparsed.ok()) << core::to_text(bundle);
    ASSERT_EQ(reparsed->size(), bundle.size());
    for (std::size_t i = 0; i < bundle.size(); ++i) {
      EXPECT_EQ((*reparsed)[i].name, bundle[i].name);
      EXPECT_EQ((*reparsed)[i].memory_pages, bundle[i].memory_pages);
      EXPECT_EQ((*reparsed)[i].channels, bundle[i].channels);
      EXPECT_EQ((*reparsed)[i].trusts, bundle[i].trusts);
      EXPECT_EQ((*reparsed)[i].needs_sealing, bundle[i].needs_sealing);
      EXPECT_EQ((*reparsed)[i].loc, bundle[i].loc);
    }
  }
}

// ---------------------------------------------------------------------------
// Wire-format robustness: parsers of attacker-supplied bytes never crash
// and never accept garbage.
TEST(WireFormatProperty, QuoteDeserializeSurvivesFuzz) {
  util::Xoshiro rng(77);
  for (int i = 0; i < 500; ++i) {
    const Bytes junk = rng.bytes(rng.below(200));
    auto quote = substrate::Quote::deserialize(junk);
    if (quote.ok()) {
      // Structurally parseable garbage must still fail verification.
      EXPECT_FALSE(
          quote->verify(test::shared_vendor().root_public_key()).ok());
    }
  }
}

TEST(WireFormatProperty, QuoteTruncationsAllRejected) {
  auto machine = test::make_machine("quote-fuzz");
  auto sgx = *test::shared_registry().create("sgx", *machine);
  auto enclave = *sgx->create_domain(test::tc_spec("prover"));
  auto quote = sgx->attest(enclave, to_bytes("ud"));
  ASSERT_TRUE(quote.ok());
  const Bytes wire = quote->serialize();
  for (std::size_t len = 0; len < wire.size(); len += 11) {
    auto parsed = substrate::Quote::deserialize(
        BytesView(wire.data(), len));
    EXPECT_FALSE(parsed.ok()) << "truncated to " << len;
  }
}

TEST(WireFormatProperty, SealedBlobFuzzNeverUnseals) {
  auto machine = test::make_machine("seal-fuzz");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto domain = *kernel.create_domain(test::tc_spec("sealer"));
  util::Xoshiro rng(88);
  for (int i = 0; i < 300; ++i) {
    const Bytes junk = rng.bytes(rng.below(120));
    EXPECT_FALSE(kernel.unseal(domain, junk).ok());
  }
}

// ---------------------------------------------------------------------------
// Substrate channel property: badges are unique across all channels.
TEST(SubstrateProperty, BadgesNeverCollide) {
  auto machine = test::make_machine("badges");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  std::vector<substrate::DomainId> domains;
  for (int i = 0; i < 8; ++i)
    domains.push_back(
        *kernel.create_domain(test::tc_spec("d" + std::to_string(i), 1)));

  std::set<std::uint64_t> badges;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    for (std::size_t j = i + 1; j < domains.size(); ++j) {
      auto channel = kernel.create_channel(domains[i], domains[j]);
      ASSERT_TRUE(channel.ok());
      for (const auto d : {domains[i], domains[j]}) {
        auto badge = kernel.endpoint_badge(*channel, d);
        ASSERT_TRUE(badge.ok());
        EXPECT_TRUE(badges.insert(*badge).second)
            << "badge collision: " << *badge;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos containment: compromise random subsets of a random assembly and
// check the architecture's core invariant — an uncompromised component's
// memory is unreachable from every compromised one, and undeclared
// channels stay closed, no matter which subset fell.
TEST(ChaosProperty, RandomCompromiseNeverEscapesIsolation) {
  util::Xoshiro rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    auto machine = test::make_machine("chaos" + std::to_string(trial));
    microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});

    const std::size_t n = 4 + rng.below(6);
    std::vector<core::Manifest> manifests(n);
    for (std::size_t i = 0; i < n; ++i) {
      manifests[i].name = "c" + std::to_string(i);
      manifests[i].memory_pages = 1 + rng.below(3);
    }
    // Sparse random channel topology.
    for (std::size_t i = 1; i < n; ++i)
      if (rng.below(2) == 1)
        manifests[i].channels.push_back("c" + std::to_string(rng.below(i)));

    core::SystemComposer composer({{"microkernel", &kernel}});
    auto assembly = composer.compose(manifests);
    ASSERT_TRUE(assembly.ok());

    // Give every component a secret in its first page.
    for (std::size_t i = 0; i < n; ++i) {
      const auto component = *(*assembly)->component("c" + std::to_string(i));
      ASSERT_TRUE(kernel
                      .write_memory(component->domain, component->domain, 0,
                                    to_bytes("secret-" + std::to_string(i)))
                      .ok());
    }

    // Compromise a random nonempty strict subset.
    std::set<std::size_t> compromised;
    const std::size_t how_many = 1 + rng.below(n - 1);
    while (compromised.size() < how_many) compromised.insert(rng.below(n));
    for (const std::size_t i : compromised)
      ASSERT_TRUE((*assembly)->compromise("c" + std::to_string(i)).ok());

    // Invariant: no compromised domain can read any other domain's memory,
    // and undeclared channels refuse traffic.
    for (const std::size_t bad : compromised) {
      const auto attacker = *(*assembly)->component("c" + std::to_string(bad));
      for (std::size_t i = 0; i < n; ++i) {
        if (i == bad) continue;
        const auto victim = *(*assembly)->component("c" + std::to_string(i));
        EXPECT_EQ(
            kernel.read_memory(attacker->domain, victim->domain, 0, 8).error(),
            Errc::access_denied)
            << "trial " << trial << ": c" << bad << " read c" << i;

        const std::string from = "c" + std::to_string(bad);
        const std::string to = "c" + std::to_string(i);
        const bool declared =
            std::find(manifests[bad].channels.begin(),
                      manifests[bad].channels.end(),
                      to) != manifests[bad].channels.end() ||
            std::find(manifests[i].channels.begin(),
                      manifests[i].channels.end(),
                      from) != manifests[i].channels.end();
        if (!declared) {
          EXPECT_EQ((*assembly)->send(from, to, to_bytes("x")).error(),
                    Errc::policy_violation);
        }
      }
    }
  }
}

// Sealing round-trips arbitrary binary data of many sizes.
TEST(SubstrateProperty, SealRoundTripsArbitraryData) {
  auto machine = test::make_machine("seal-prop");
  microkernel::Microkernel kernel(*machine, substrate::SubstrateConfig{});
  auto domain = *kernel.create_domain(test::tc_spec("sealer"));
  util::Xoshiro rng(8);
  for (const std::size_t size : {0u, 1u, 16u, 100u, 4096u, 70'000u}) {
    const Bytes data = rng.bytes(size);
    auto sealed = kernel.seal(domain, data);
    ASSERT_TRUE(sealed.ok()) << size;
    auto opened = kernel.unseal(domain, *sealed);
    ASSERT_TRUE(opened.ok()) << size;
    EXPECT_EQ(*opened, data) << size;
  }
}

}  // namespace
}  // namespace lateral
