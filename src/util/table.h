// Plain-text table rendering for benchmark reports.
//
// Every bench binary prints the rows of the experiment it regenerates
// (see EXPERIMENTS.md) in a fixed-width table so results can be compared
// against the paper's qualitative claims at a glance.
#pragma once

#include <string>
#include <vector>

namespace lateral::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a separator under the header.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used across benches.
std::string fmt_cycles(unsigned long long cycles);
std::string fmt_ratio(double r);

}  // namespace lateral::util
