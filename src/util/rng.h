// Deterministic pseudo-random source for the simulation.
//
// Everything in lateral is reproducible run-to-run: workload generators,
// attack injection and key generation all draw from explicitly seeded
// xoshiro256** instances. (Cryptographic randomness inside protocols uses
// crypto::HmacDrbg, which is itself seeded deterministically in tests.)
#pragma once

#include <cstdint>

#include "util/types.h"

namespace lateral::util {

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Xoshiro {
 public:
  /// Seeds via splitmix64 expansion of a single 64-bit seed.
  explicit Xoshiro(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Fill a fresh buffer with n pseudo-random bytes.
  Bytes bytes(std::size_t n);

  /// UniformRandomBitGenerator interface for <algorithm> shuffles.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace lateral::util
