// Common vocabulary types shared by every lateral subsystem.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lateral {

/// Owning byte buffer. All payloads, keys, digests and wire messages use this.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view of bytes.
using BytesView = std::span<const std::uint8_t>;

/// Simulated clock value, in CPU cycles of the simulated machine.
using Cycles = std::uint64_t;

/// Convert a string literal / std::string into a byte buffer.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Convert bytes back to a std::string (for human-readable payloads).
inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

/// Constant-time byte comparison; returns true when equal.
/// Used wherever secrets or MACs are compared, so the simulation's trusted
/// components follow the same discipline real ones must.
inline bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace lateral
