// Hex encoding/decoding for digests, keys and diagnostics.
#pragma once

#include <string>

#include "util/result.h"
#include "util/types.h"

namespace lateral::util {

/// Lower-case hex string of a byte buffer.
std::string to_hex(BytesView data);

/// Parse a hex string (upper or lower case). Errc::invalid_argument on
/// odd length or non-hex characters.
Result<Bytes> from_hex(std::string_view hex);

}  // namespace lateral::util
