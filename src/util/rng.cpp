#include "util/rng.h"

namespace lateral::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro::Xoshiro(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Bytes Xoshiro::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next();
    for (int k = 0; k < 8 && i < n; ++k, ++i) {
      out[i] = static_cast<std::uint8_t>(v & 0xFF);
      v >>= 8;
    }
  }
  return out;
}

}  // namespace lateral::util
