// Result<T> / Errc: expected-style error handling for *anticipated* security
// outcomes. In an isolation library, "access denied" and "verification
// failed" are normal data-flow results, not exceptional conditions, so they
// travel in the return value. Exceptions (lateral::Error) are reserved for
// contract violations and programmer misuse.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace lateral {

/// Error codes for anticipated failures across all subsystems.
enum class Errc {
  ok = 0,
  access_denied,        // reference monitor refused the operation
  no_such_domain,       // domain id not known to the substrate
  no_such_channel,      // channel id not known / not granted
  invalid_argument,     // malformed input from an (untrusted) caller
  verification_failed,  // signature / MAC / measurement mismatch
  tamper_detected,      // integrity check on stored/transit data failed
  not_supported,        // substrate lacks the requested capability
  exhausted,            // out of simulated resource (memory, slots, budget)
  busy,                 // substrate is single-threaded for this op (e.g. late launch)
  compromised,          // operation refused because the domain is flagged compromised
  would_block,          // no message available / peer not ready
  policy_violation,     // manifest/POLA policy check failed
  crypto_failure,       // low-level crypto error (bad key size etc.)
  io_error,             // simulated storage failure
  timed_out,            // deadline budget expired before the work ran
  cancelled,            // caller withdrew the request before it ran
  domain_dead,          // operation names a crashed (killed, not destroyed) domain
  stale_epoch,          // endpoint minted before the channel's last restart
  no_region_support,    // substrate cannot realize shared grant regions
  redaction_denied,     // trace export would leak payload spans to an
                        // observer the trust graph does not authorize
  ticket_expired,       // resumption ticket presented after its expiry
  ticket_replayed,      // resumption ticket redeemed a second time
  rollback_refused,     // update version not newer than the monotonic
                        // NV counter (stale-image replay)
};

/// Human-readable name for an error code.
constexpr std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::access_denied: return "access_denied";
    case Errc::no_such_domain: return "no_such_domain";
    case Errc::no_such_channel: return "no_such_channel";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::verification_failed: return "verification_failed";
    case Errc::tamper_detected: return "tamper_detected";
    case Errc::not_supported: return "not_supported";
    case Errc::exhausted: return "exhausted";
    case Errc::busy: return "busy";
    case Errc::compromised: return "compromised";
    case Errc::would_block: return "would_block";
    case Errc::policy_violation: return "policy_violation";
    case Errc::crypto_failure: return "crypto_failure";
    case Errc::io_error: return "io_error";
    case Errc::timed_out: return "timed_out";
    case Errc::cancelled: return "cancelled";
    case Errc::domain_dead: return "domain_dead";
    case Errc::stale_epoch: return "stale_epoch";
    case Errc::no_region_support: return "no_region_support";
    case Errc::redaction_denied: return "redaction_denied";
    case Errc::ticket_expired: return "ticket_expired";
    case Errc::ticket_replayed: return "ticket_replayed";
    case Errc::rollback_refused: return "rollback_refused";
  }
  return "unknown";
}

/// Exception for contract violations (misuse of the library itself).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Minimal expected<T, Errc>. Either holds a value or an error code.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Errc error) : state_(error) {                     // NOLINT(google-explicit-constructor)
    if (error == Errc::ok)
      throw Error("Result<T> constructed from Errc::ok without a value");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  Errc error() const { return ok() ? Errc::ok : std::get<Errc>(state_); }

  /// Access the value; throws on misuse (calling value() on an error).
  T& value() & {
    check();
    return std::get<T>(state_);
  }
  const T& value() const& {
    check();
    return std::get<T>(state_);
  }
  T&& value() && {
    check();
    return std::get<T>(std::move(state_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check() const {
    if (!ok())
      throw Error(std::string("Result::value() on error: ") +
                  std::string(errc_name(std::get<Errc>(state_))));
  }
  std::variant<T, Errc> state_;
};

/// Result<void> analogue: success or an error code.
class [[nodiscard]] Status {
 public:
  Status() : error_(Errc::ok) {}
  Status(Errc error) : error_(error) {}  // NOLINT(google-explicit-constructor)

  static Status success() { return Status(); }

  bool ok() const { return error_ == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return error_; }

 private:
  Errc error_;
};

}  // namespace lateral
