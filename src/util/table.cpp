#include "util/table.h"

#include <iomanip>
#include <sstream>

#include "util/result.h"

namespace lateral::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw Error("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw Error("Table row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_cycles(unsigned long long cycles) {
  // Group digits for readability: 1234567 -> "1,234,567".
  std::string digits = std::to_string(cycles);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_ratio(double r) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << r << "x";
  return out.str();
}

}  // namespace lateral::util
