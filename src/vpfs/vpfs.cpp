#include "vpfs/vpfs.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"

namespace lateral::vpfs {
namespace {

constexpr std::size_t kStoredBlockSize = kVpfsBlockSize + 32;  // ct || mac

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_u64(BytesView in, std::size_t& offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[offset++];
  return v;
}

}  // namespace

Vpfs::Vpfs(legacy::LegacyFilesystem& backing,
           substrate::IsolationSubstrate& substrate,
           substrate::DomainId domain, std::string prefix)
    : backing_(backing),
      substrate_(substrate),
      domain_(domain),
      prefix_(std::move(prefix)) {}

std::string Vpfs::data_path(std::uint64_t file_id) const {
  return prefix_ + "/f" + std::to_string(file_id);
}

std::uint64_t Vpfs::block_nonce(std::uint64_t file_id, std::size_t block,
                                std::uint64_t version) const {
  // Nonce uniqueness across (file, block, version): fold into 64 bits via
  // hashing — AES-CTR reuse of a (key, nonce) pair would break
  // confidentiality.
  Bytes material;
  append_u64(material, file_id);
  append_u64(material, block);
  append_u64(material, version);
  const crypto::Digest d = crypto::Sha256::hash(material);
  std::uint64_t nonce = 0;
  for (int i = 0; i < 8; ++i) nonce = (nonce << 8) | d[i];
  return nonce;
}

crypto::Digest Vpfs::block_mac(std::uint64_t file_id, std::size_t block,
                               std::uint64_t version,
                               BytesView ciphertext) const {
  crypto::Hmac mac(mac_key_);
  Bytes header;
  append_u64(header, file_id);
  append_u64(header, block);
  append_u64(header, version);
  mac.update(header);
  mac.update(ciphertext);
  return mac.finish();
}

Status Vpfs::attach_block_plane(substrate::DomainId disk,
                                substrate::RegionId region) {
  // Pre-flight with the same reference-monitor logic transit will use: the
  // probe descriptor must name a full stored block and pass endpoint /
  // mapping / epoch validation for both sides of the handoff.
  auto probe = substrate_.make_descriptor(domain_, region, 0,
                                          kStoredBlockSize);
  if (!probe) return probe.error();
  if (const Status s = substrate_.check_descriptor(disk, *probe); !s.ok())
    return s;
  disk_domain_ = disk;
  block_region_ = region;
  return Status::success();
}

void Vpfs::detach_block_plane() {
  disk_domain_ = substrate::kInvalidDomain;
  block_region_ = 0;
}

Result<Bytes> Vpfs::load_block(const FileMeta& file, std::size_t block) const {
  const BlockMeta& meta = file.blocks[block];
  const std::size_t slot_offset =
      (2 * block + (meta.version & 1)) * kStoredBlockSize;
  auto stored = backing_.read(data_path(file.file_id), slot_offset,
                              kStoredBlockSize);
  if (!stored) return Errc::io_error;
  if (stored->size() != kStoredBlockSize) return Errc::tamper_detected;

  BytesView transit(stored->data(), stored->size());
  if (block_region_ != 0) {
    // Zero-copy inbound: the disk domain stages the stored block into the
    // grant region (its single copy) and this domain verifies/decrypts it
    // in place — constant-cost access instead of another owned-buffer copy.
    auto desc = substrate_.make_descriptor(disk_domain_, block_region_, 0,
                                           kStoredBlockSize);
    if (!desc) return desc.error();
    if (const Status s =
            substrate_.region_write(disk_domain_, block_region_, 0, transit);
        !s.ok())
      return s.error();
    auto view = substrate_.region_view(domain_, *desc);
    if (!view) return view.error();
    transit = *view;
    stats_.zero_copy_blocks++;
  }

  const BytesView ciphertext(transit.data(), kVpfsBlockSize);
  const BytesView stored_mac(transit.data() + kVpfsBlockSize, 32);
  const crypto::Digest expected =
      block_mac(file.file_id, block, meta.version, ciphertext);
  // Double check against both the stored MAC and the metadata's record —
  // either mismatch means the legacy stack served tampered bytes.
  if (!ct_equal(crypto::digest_view(expected), stored_mac) ||
      !ct_equal(crypto::digest_view(expected),
                crypto::digest_view(meta.mac))) {
    stats_.mac_failures++;
    return Errc::tamper_detected;
  }
  stats_.blocks_decrypted++;
  // Software AES + HMAC per block, billed to the simulated CPU.
  substrate_.machine().charge(
      0, substrate_.machine().costs().sw_aes_per_16_bytes, kVpfsBlockSize);
  substrate_.machine().charge(
      0, substrate_.machine().costs().sw_sha_per_64_bytes / 4, kVpfsBlockSize);
  return crypto::aes128_ctr(enc_key_,
                            block_nonce(file.file_id, block, meta.version),
                            ciphertext);
}

Status Vpfs::store_block(FileMeta& file, std::size_t block,
                         BytesView plaintext) {
  BlockMeta& meta = file.blocks[block];
  if (!meta.dirty) {
    meta.version++;
    meta.dirty = true;
  }
  const Bytes ciphertext = crypto::aes128_ctr(
      enc_key_, block_nonce(file.file_id, block, meta.version), plaintext);
  meta.mac = block_mac(file.file_id, block, meta.version, ciphertext);
  stats_.blocks_encrypted++;
  substrate_.machine().charge(
      0, substrate_.machine().costs().sw_aes_per_16_bytes, kVpfsBlockSize);
  substrate_.machine().charge(
      0, substrate_.machine().costs().sw_sha_per_64_bytes / 4, kVpfsBlockSize);

  Bytes stored(ciphertext);
  stored.insert(stored.end(), meta.mac.begin(), meta.mac.end());
  // Shadow slots: version v lives in slot v%2, so the previously committed
  // version survives until the next commit makes it garbage.
  const std::size_t slot_offset =
      (2 * block + (meta.version & 1)) * kStoredBlockSize;

  if (block_region_ != 0) {
    // Zero-copy outbound: stage ciphertext+MAC into the grant region (the
    // producer's single copy) and let the disk domain consume it in place.
    // Only ciphertext crosses — the shared mapping leaks nothing the
    // compromised legacy stack couldn't already snoop from its own store.
    auto desc = substrate_.make_descriptor(domain_, block_region_, 0,
                                           stored.size());
    if (!desc) return desc.error();
    if (const Status s =
            substrate_.region_write(domain_, block_region_, 0, stored);
        !s.ok())
      return s;
    auto view = substrate_.region_view(disk_domain_, *desc);
    if (!view) return view.error();
    stats_.zero_copy_blocks++;
    return backing_.write(data_path(file.file_id), slot_offset, *view);
  }
  return backing_.write(data_path(file.file_id), slot_offset, stored);
}

Status Vpfs::create(const std::string& name) {
  if (name.empty()) return Errc::invalid_argument;
  if (files_.contains(name)) return Errc::invalid_argument;
  FileMeta meta;
  meta.file_id = next_file_id_++;
  files_.emplace(name, std::move(meta));
  (void)backing_.create(data_path(files_.at(name).file_id));
  return Status::success();
}

bool Vpfs::exists(const std::string& name) const {
  return files_.contains(name);
}

Status Vpfs::remove(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return Errc::invalid_argument;
  pending_deletes_.push_back(data_path(it->second.file_id));
  files_.erase(it);
  return Status::success();
}

Result<std::size_t> Vpfs::size(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) return Errc::invalid_argument;
  return it->second.size;
}

std::vector<std::string> Vpfs::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, meta] : files_) names.push_back(name);
  return names;
}

Status Vpfs::write(const std::string& name, std::size_t offset,
                   BytesView data) {
  const auto it = files_.find(name);
  if (it == files_.end()) return Errc::invalid_argument;
  FileMeta& file = it->second;

  const std::size_t end = offset + data.size();
  const std::size_t blocks_needed = (end + kVpfsBlockSize - 1) / kVpfsBlockSize;
  while (file.blocks.size() < blocks_needed) file.blocks.emplace_back();
  if (end > file.size) file.size = end;

  std::size_t cursor = offset;
  while (!data.empty()) {
    const std::size_t block = cursor / kVpfsBlockSize;
    const std::size_t in_block = cursor % kVpfsBlockSize;
    const std::size_t n = std::min(data.size(), kVpfsBlockSize - in_block);

    Bytes plaintext(kVpfsBlockSize, 0);
    if (file.blocks[block].version > 0 || file.blocks[block].dirty) {
      // Read-modify-write of an existing block.
      if (file.blocks[block].version > 0) {
        auto existing = load_block(file, block);
        if (!existing) return existing.error();
        plaintext = std::move(*existing);
      }
    }
    std::copy(data.begin(), data.begin() + static_cast<long>(n),
              plaintext.begin() + static_cast<long>(in_block));
    if (const Status s = store_block(file, block, plaintext); !s.ok())
      return s;
    data = data.subspan(n);
    cursor += n;
  }
  return Status::success();
}

Result<Bytes> Vpfs::read(const std::string& name, std::size_t offset,
                         std::size_t len) const {
  const auto it = files_.find(name);
  if (it == files_.end()) return Errc::invalid_argument;
  const FileMeta& file = it->second;
  if (offset >= file.size) return Bytes{};
  len = std::min(len, file.size - offset);

  Bytes out;
  out.reserve(len);
  std::size_t cursor = offset;
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::size_t block = cursor / kVpfsBlockSize;
    const std::size_t in_block = cursor % kVpfsBlockSize;
    const std::size_t n = std::min(remaining, kVpfsBlockSize - in_block);
    if (file.blocks[block].version == 0) {
      out.insert(out.end(), n, 0);  // sparse hole
    } else {
      auto plaintext = load_block(file, block);
      if (!plaintext) return plaintext.error();
      out.insert(out.end(), plaintext->begin() + static_cast<long>(in_block),
                 plaintext->begin() + static_cast<long>(in_block + n));
    }
    cursor += n;
    remaining -= n;
  }
  return out;
}

Status Vpfs::rename(const std::string& from, const std::string& to) {
  if (to.empty() || files_.contains(to)) return Errc::invalid_argument;
  const auto it = files_.find(from);
  if (it == files_.end()) return Errc::invalid_argument;
  // Pure metadata operation: block MACs bind file_id, not the name.
  files_.emplace(to, std::move(it->second));
  files_.erase(it);
  return Status::success();
}

Vpfs::FsckReport Vpfs::fsck() const {
  FsckReport report;
  for (const auto& [name, file] : files_) {
    report.files_checked++;
    bool damaged = false;
    for (std::size_t block = 0; block < file.blocks.size(); ++block) {
      if (file.blocks[block].version == 0) continue;  // sparse hole
      report.blocks_checked++;
      if (!load_block(file, block).ok()) damaged = true;
    }
    if (damaged) report.damaged_files.push_back(name);
  }
  return report;
}

Bytes Vpfs::serialize_meta() const {
  Bytes plain;
  append_u64(plain, next_file_id_);
  append_u64(plain, files_.size());
  for (const auto& [name, file] : files_) {
    append_u64(plain, name.size());
    plain.insert(plain.end(), name.begin(), name.end());
    append_u64(plain, file.file_id);
    append_u64(plain, file.size);
    append_u64(plain, file.blocks.size());
    for (const BlockMeta& block : file.blocks) {
      append_u64(plain, block.version);
      plain.insert(plain.end(), block.mac.begin(), block.mac.end());
    }
  }
  // Encrypt the whole table: file names and shapes are confidential too.
  return crypto::aes128_ctr(enc_key_, block_nonce(0, 0, commit_seq_ + 1),
                            plain);
}

Status Vpfs::deserialize_meta(BytesView blob) {
  const Bytes plain =
      crypto::aes128_ctr(enc_key_, block_nonce(0, 0, commit_seq_), blob);
  files_.clear();
  std::size_t offset = 0;
  auto need = [&](std::size_t n) { return offset + n <= plain.size(); };
  if (!need(16)) return Errc::tamper_detected;
  next_file_id_ = read_u64(plain, offset);
  const std::uint64_t file_count = read_u64(plain, offset);
  for (std::uint64_t i = 0; i < file_count; ++i) {
    if (!need(8)) return Errc::tamper_detected;
    const std::uint64_t name_len = read_u64(plain, offset);
    if (!need(name_len + 24)) return Errc::tamper_detected;
    std::string name(plain.begin() + static_cast<long>(offset),
                     plain.begin() + static_cast<long>(offset + name_len));
    offset += name_len;
    FileMeta file;
    file.file_id = read_u64(plain, offset);
    file.size = read_u64(plain, offset);
    const std::uint64_t block_count = read_u64(plain, offset);
    if (!need(block_count * 40)) return Errc::tamper_detected;
    file.blocks.resize(block_count);
    for (std::uint64_t b = 0; b < block_count; ++b) {
      file.blocks[b].version = read_u64(plain, offset);
      std::copy(plain.begin() + static_cast<long>(offset),
                plain.begin() + static_cast<long>(offset + 32),
                file.blocks[b].mac.begin());
      offset += 32;
    }
    files_.emplace(std::move(name), std::move(file));
  }
  return Status::success();
}

Status Vpfs::write_seal(const crypto::Digest& meta_digest) {
  Bytes state;
  state.insert(state.end(), enc_key_.begin(), enc_key_.end());
  state.insert(state.end(), mac_key_.begin(), mac_key_.end());
  state.insert(state.end(), meta_digest.begin(), meta_digest.end());
  append_u64(state, commit_seq_);
  append_u64(state, substrate_.machine().nv_counter());
  auto sealed = substrate_.seal(domain_, state);
  if (!sealed) return sealed.error();
  if (!backing_.exists(seal_path())) (void)backing_.create(seal_path());
  (void)backing_.truncate(seal_path(), 0);
  return backing_.write(seal_path(), 0, *sealed);
}

Status Vpfs::sync() {
  stats_.syncs++;
  // Step 1: data blocks are already durable in their shadow slots.
  if (crash_point_ == CrashPoint::after_data_blocks) {
    crash_point_ = CrashPoint::none;
    return Errc::io_error;  // "power failed here"
  }

  // Step 2: stage the new metadata blob.
  const std::uint64_t new_seq = commit_seq_ + 1;
  const Bytes meta_blob = serialize_meta();
  const crypto::Digest meta_digest = crypto::Sha256::hash(meta_blob);
  if (!backing_.exists(staged_meta_path()))
    (void)backing_.create(staged_meta_path());
  (void)backing_.truncate(staged_meta_path(), 0);
  if (const Status s = backing_.write(staged_meta_path(), 0, meta_blob);
      !s.ok())
    return s;
  if (crash_point_ == CrashPoint::after_meta_write) {
    crash_point_ = CrashPoint::none;
    return Errc::io_error;
  }

  // Step 3: journal the commit intent (jVPFS-style roll-forward record).
  Bytes record;
  append_u64(record, new_seq);
  record.insert(record.end(), meta_digest.begin(), meta_digest.end());
  const crypto::Digest record_mac = crypto::hmac_sha256(mac_key_, record);
  record.insert(record.end(), record_mac.begin(), record_mac.end());
  if (!backing_.exists(journal_path())) (void)backing_.create(journal_path());
  const auto journal_size = backing_.size(journal_path());
  if (!journal_size) return Errc::io_error;
  if (const Status s = backing_.write(journal_path(), *journal_size, record);
      !s.ok())
    return s;
  if (crash_point_ == CrashPoint::after_journal_commit) {
    crash_point_ = CrashPoint::none;
    return Errc::io_error;
  }

  // Step 4: seal the new root and advance the hardware freshness counter.
  commit_seq_ = new_seq;
  substrate_.machine().nv_counter_increment();
  if (const Status s = write_seal(meta_digest); !s.ok()) return s;

  // Step 5: publish the metadata and collect garbage.
  if (backing_.exists(meta_path())) (void)backing_.remove(meta_path());
  if (const Status s = backing_.rename(staged_meta_path(), meta_path());
      !s.ok())
    return s;
  for (const std::string& path : pending_deletes_)
    (void)backing_.remove(path);
  pending_deletes_.clear();
  for (auto& [name, file] : files_)
    for (BlockMeta& block : file.blocks) block.dirty = false;
  return Status::success();
}

Result<std::unique_ptr<Vpfs>> Vpfs::format(
    legacy::LegacyFilesystem& backing,
    substrate::IsolationSubstrate& substrate, substrate::DomainId domain,
    const std::string& prefix, BytesView key_seed) {
  auto fs = std::unique_ptr<Vpfs>(new Vpfs(backing, substrate, domain, prefix));
  const Bytes keys = crypto::hkdf(to_bytes("vpfs.format.v1"), key_seed,
                                  to_bytes("enc+mac"), 48);
  std::copy(keys.begin(), keys.begin() + 16, fs->enc_key_.begin());
  fs->mac_key_.assign(keys.begin() + 16, keys.end());
  if (const Status s = fs->sync(); !s.ok()) return s.error();
  return fs;
}

Result<std::unique_ptr<Vpfs>> Vpfs::mount(
    legacy::LegacyFilesystem& backing,
    substrate::IsolationSubstrate& substrate, substrate::DomainId domain,
    const std::string& prefix) {
  auto fs = std::unique_ptr<Vpfs>(new Vpfs(backing, substrate, domain, prefix));

  // 1. Unseal the root state — only the same code identity on the same
  //    device gets past this line.
  const auto seal_size = backing.size(fs->seal_path());
  if (!seal_size) return Errc::io_error;
  auto sealed = backing.read(fs->seal_path(), 0, *seal_size);
  if (!sealed) return Errc::io_error;
  auto state = substrate.unseal(domain, *sealed);
  if (!state) return Errc::tamper_detected;
  if (state->size() != 16 + 32 + 32 + 8 + 8) return Errc::tamper_detected;

  std::size_t offset = 0;
  std::copy(state->begin(), state->begin() + 16, fs->enc_key_.begin());
  offset += 16;
  fs->mac_key_.assign(state->begin() + 16, state->begin() + 48);
  offset += 32;
  crypto::Digest sealed_digest;
  std::copy(state->begin() + 48, state->begin() + 80, sealed_digest.begin());
  offset += 32;
  fs->commit_seq_ = read_u64(*state, offset);
  const std::uint64_t sealed_nv = read_u64(*state, offset);

  // 2. Freshness: an attacker replaying an old (seal, data) snapshot cannot
  //    rewind the on-chip counter.
  if (sealed_nv != substrate.machine().nv_counter())
    return Errc::tamper_detected;

  // 3. Locate the metadata matching the sealed digest; complete an
  //    interrupted commit when the staged copy is the sealed one.
  auto try_load = [&](const std::string& path) -> Status {
    const auto size = backing.size(path);
    if (!size) return Errc::io_error;
    auto blob = backing.read(path, 0, *size);
    if (!blob) return Errc::io_error;
    const crypto::Digest digest = crypto::Sha256::hash(*blob);
    if (!ct_equal(crypto::digest_view(digest),
                  crypto::digest_view(sealed_digest)))
      return Errc::tamper_detected;
    return fs->deserialize_meta(*blob);
  };

  if (try_load(fs->meta_path()).ok()) return fs;
  if (backing.exists(fs->staged_meta_path()) &&
      try_load(fs->staged_meta_path()).ok()) {
    // Crash happened between seal write and publish: roll forward.
    if (backing.exists(fs->meta_path())) (void)backing.remove(fs->meta_path());
    if (const Status s =
            backing.rename(fs->staged_meta_path(), fs->meta_path());
        !s.ok())
      return s.error();
    return fs;
  }
  return Errc::tamper_detected;
}

}  // namespace lateral::vpfs
