// VPFS — Virtual Private File System (paper §III-D "Trusted Reuse";
// Weinhold & Härtig, EuroSys'08, plus jVPFS-style journaling, ATC'11).
//
// "The legacy stack takes care of actually storing file contents and
// managing the storage medium, but it never handles plaintext data. The
// VPFS wrapper guarantees confidentiality and integrity of all file system
// data and metadata by means of encryption and message authentication
// codes."
//
// Guarantees against a fully compromised legacy::LegacyFilesystem:
//  * confidentiality — every stored byte is AES-CTR ciphertext; keys are
//    derived at format time and kept only in sealed state;
//  * integrity — every block carries an HMAC bound to (file id, block
//    index, version); metadata is MACed as a whole; any tamper =>
//    Errc::tamper_detected;
//  * freshness — sealed state embeds a monotonic counter mirrored in the
//    machine's on-chip NV counter, so rolling back both data AND sealed
//    state to a consistent old snapshot is still detected;
//  * crash consistency — jVPFS-style commit journal: sync() is atomic;
//    a crash at any injected crash point recovers to the last committed
//    state on mount.
//
// The sealing substrate binds all of this to the code identity of the
// component using the VPFS: only the same measurement on the same device
// can unseal the master keys.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "legacy/filesystem.h"
#include "substrate/substrate.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::vpfs {

constexpr std::size_t kVpfsBlockSize = 4096;

/// Crash-injection points inside sync() for recovery testing.
enum class CrashPoint : std::uint8_t {
  none,
  after_data_blocks,    // data written, no new metadata yet
  after_meta_write,     // new metadata staged, not committed
  after_journal_commit, // journal committed, seal not yet updated
};

struct VpfsStats {
  std::uint64_t blocks_encrypted = 0;
  std::uint64_t blocks_decrypted = 0;
  std::uint64_t mac_failures = 0;
  std::uint64_t syncs = 0;
  /// Blocks that crossed to/from the disk domain by grant-region descriptor
  /// instead of an owned-buffer copy (attach_block_plane).
  std::uint64_t zero_copy_blocks = 0;
};

class Vpfs {
 public:
  /// Create a fresh VPFS inside `backing` under `prefix`. Master keys come
  /// from the substrate-sealed state; `domain` is the trusted component that
  /// owns this file system.
  static Result<std::unique_ptr<Vpfs>> format(
      legacy::LegacyFilesystem& backing,
      substrate::IsolationSubstrate& substrate, substrate::DomainId domain,
      const std::string& prefix, BytesView key_seed);

  /// Mount an existing VPFS: unseal state, verify freshness (NV counter)
  /// and metadata integrity, recover from an interrupted sync if needed.
  static Result<std::unique_ptr<Vpfs>> mount(
      legacy::LegacyFilesystem& backing,
      substrate::IsolationSubstrate& substrate, substrate::DomainId domain,
      const std::string& prefix);

  // --- File interface (plaintext only ever exists in here) ----------------
  Status create(const std::string& name);
  bool exists(const std::string& name) const;
  Status remove(const std::string& name);
  Result<std::size_t> size(const std::string& name) const;
  std::vector<std::string> list() const;
  Status write(const std::string& name, std::size_t offset, BytesView data);
  Result<Bytes> read(const std::string& name, std::size_t offset,
                     std::size_t len) const;
  Status rename(const std::string& from, const std::string& to);

  /// Full integrity walk: verify every block of every file against its
  /// recorded MAC. Cheap way to audit a suspicious backing store without
  /// waiting for reads to trip over damage.
  struct FsckReport {
    std::size_t files_checked = 0;
    std::size_t blocks_checked = 0;
    std::vector<std::string> damaged_files;
    bool clean() const { return damaged_files.empty(); }
  };
  FsckReport fsck() const;

  /// Commit all state: data blocks are already durable; this writes and
  /// MACs the metadata, journals the commit, reseals the root and bumps the
  /// hardware counter. Atomic with respect to the injected crash points.
  Status sync();

  // --- Zero-copy block plane ----------------------------------------------
  /// Route block transit through a grant region shared with the (untrusted)
  /// disk-driver domain `disk`. Stored blocks are then handed over by
  /// descriptor: one staging copy of the ciphertext into the region plus a
  /// constant in-place access on the far side, instead of an owned-buffer
  /// copy per block. The region must span at least one stored block
  /// (kVpfsBlockSize + MAC) and have been created between this VPFS's
  /// domain and `disk` by the composer. Security is unchanged: only
  /// ciphertext+MAC ever enters the shared region, so the disk domain
  /// learns nothing it could not already snoop.
  Status attach_block_plane(substrate::DomainId disk,
                            substrate::RegionId region);
  /// Back to the owned-buffer copy path (also the right response to
  /// stale_epoch after the disk domain was restarted: detach, re-wire,
  /// re-attach).
  void detach_block_plane();
  bool block_plane_attached() const { return block_region_ != 0; }

  const VpfsStats& stats() const { return stats_; }

  /// Inject a crash at the given point of the NEXT sync (testing hook).
  void set_crash_point(CrashPoint point) { crash_point_ = point; }

 private:
  struct BlockMeta {
    std::uint64_t version = 0;
    crypto::Digest mac{};
    /// Written since the last commit (shadow slot holds the new version).
    bool dirty = false;
  };
  struct FileMeta {
    std::uint64_t file_id = 0;
    std::size_t size = 0;
    std::vector<BlockMeta> blocks;
  };

  Vpfs(legacy::LegacyFilesystem& backing,
       substrate::IsolationSubstrate& substrate, substrate::DomainId domain,
       std::string prefix);

  std::string data_path(std::uint64_t file_id) const;
  std::string meta_path() const { return prefix_ + "/meta"; }
  std::string staged_meta_path() const { return prefix_ + "/meta.new"; }
  std::string journal_path() const { return prefix_ + "/journal"; }
  std::string seal_path() const { return prefix_ + "/root.seal"; }

  std::uint64_t block_nonce(std::uint64_t file_id, std::size_t block,
                            std::uint64_t version) const;
  crypto::Digest block_mac(std::uint64_t file_id, std::size_t block,
                           std::uint64_t version, BytesView ciphertext) const;

  Result<Bytes> load_block(const FileMeta& file, std::size_t block) const;
  Status store_block(FileMeta& file, std::size_t block, BytesView plaintext);

  Bytes serialize_meta() const;
  Status deserialize_meta(BytesView blob);

  /// Seal {keys, meta digest, commit seq} and persist.
  Status write_seal(const crypto::Digest& meta_digest);

  legacy::LegacyFilesystem& backing_;
  substrate::IsolationSubstrate& substrate_;
  substrate::DomainId domain_;
  std::string prefix_;

  /// Zero-copy block plane (0 = detached, the default copy path).
  substrate::DomainId disk_domain_ = substrate::kInvalidDomain;
  substrate::RegionId block_region_ = 0;

  crypto::Aes128Key enc_key_{};
  Bytes mac_key_;
  std::map<std::string, FileMeta> files_;
  std::uint64_t next_file_id_ = 1;
  std::uint64_t commit_seq_ = 0;
  /// Legacy files of removed VPFS files; deleted after the next commit so
  /// an interrupted sync can still recover the previous state.
  std::vector<std::string> pending_deletes_;
  mutable VpfsStats stats_;
  CrashPoint crash_point_ = CrashPoint::none;
};

}  // namespace lateral::vpfs
