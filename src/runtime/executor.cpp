#include "runtime/executor.h"

#include <functional>

namespace lateral::runtime {

struct Future::State {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<Bytes>> result;
  bool cancel_requested = false;
};

bool Future::poll() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> guard(state_->mu);
  return state_->result.has_value();
}

Result<Bytes> Future::wait() {
  if (!state_) return Errc::invalid_argument;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->result.has_value(); });
  return *state_->result;
}

Status Future::cancel() {
  if (!state_) return Errc::invalid_argument;
  std::lock_guard<std::mutex> guard(state_->mu);
  if (state_->result.has_value()) return Errc::busy;  // already terminal
  state_->cancel_requested = true;
  return Status::success();
}

namespace {

std::size_t key_hash(const DomainKey& key) {
  return std::hash<const void*>{}(key.substrate) ^
         std::hash<std::uint64_t>{}(key.domain * 0x9E3779B97F4A7C15ull);
}

}  // namespace

Executor::Executor(ExecutorConfig config) : config_(config) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
  decks_.resize(config_.threads);
  workers_.reserve(config_.threads);
  for (std::size_t i = 0; i < config_.threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stopping_ = true;
    // Everything still queued terminates as cancelled — never silently
    // dropped, so the stats invariant survives teardown.
    for (auto& [key, queue] : domains_) {
      while (!queue->items.empty()) {
        Item item = std::move(queue->items.front());
        queue->items.pop_front();
        ++stats_.counters.cancelled;
        --outstanding_;
        finish(item.state, Errc::cancelled);
      }
    }
    for (auto& deck : decks_) deck.clear();
    if (outstanding_ == 0) idle_cv_.notify_all();
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::mutex& Executor::stripe_for(
    const substrate::IsolationSubstrate* substrate) {
  return substrate_stripes_[std::hash<const void*>{}(substrate) % kStripes];
}

std::size_t Executor::core_for_locked(const DomainKey& key) const {
  if (const auto it = affinity_.find(key); it != affinity_.end())
    return it->second;
  if (!key.substrate) return 0;
  const std::size_t cores = key.substrate->machine().core_count();
  return cores > 1 ? key_hash(key) % cores : 0;
}

std::shared_ptr<Executor::DomainQueue>& Executor::queue_for_locked(
    const DomainKey& key) {
  std::shared_ptr<DomainQueue>& queue = domains_[key];
  if (!queue) {
    queue = std::make_shared<DomainQueue>();
    queue->key = key;
    queue->core = core_for_locked(key);
  }
  return queue;
}

Status Executor::set_affinity(const DomainKey& key, std::size_t core) {
  std::lock_guard<std::mutex> guard(mu_);
  if (key.substrate && core >= key.substrate->machine().core_count())
    return Errc::invalid_argument;
  affinity_[key] = core;
  queue_for_locked(key)->core = core;
  return Status::success();
}

std::size_t Executor::core_of(const DomainKey& key) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (const auto it = domains_.find(key); it != domains_.end())
    return it->second->core;
  return core_for_locked(key);
}

void Executor::publish_sched_locked() {
  if (!config_.hub) return;
  std::size_t cores = 1;
  for (const auto& [key, queue] : domains_)
    if (key.substrate)
      cores = std::max(cores, key.substrate->machine().core_count());
  std::vector<std::uint64_t> depth(cores, 0);
  std::uint64_t contention = 0;
  std::uint64_t stalls = 0;
  Cycles stall_cycles = 0;
  // One machine/substrate may appear under many keys; sum each once.
  std::map<const void*, bool> seen_machine, seen_substrate;
  for (const auto& [key, queue] : domains_) {
    depth[queue->core < cores ? queue->core : 0] += queue->items.size();
    if (!key.substrate) continue;
    if (!seen_machine[&key.substrate->machine()]) {
      seen_machine[&key.substrate->machine()] = true;
      contention += key.substrate->machine().contention_events();
    }
    if (!seen_substrate[key.substrate]) {
      seen_substrate[key.substrate] = true;
      stalls += key.substrate->serial_stalls();
      stall_cycles += key.substrate->serial_stall_cycles();
    }
  }
  auto ref = config_.hub->sched(config_.label);
  ref->steals = stats_.steals;
  ref->migrations = stats_.migrations;
  ref->contention_events = contention;
  ref->serial_stalls = stalls;
  ref->serial_stall_cycles = stall_cycles;
  ref->run_queue_depth = std::move(depth);
}

Result<Future> Executor::enqueue_locked(const DomainKey& key, Item item) {
  std::shared_ptr<DomainQueue>& queue = queue_for_locked(key);
  if (queue->items.size() >= config_.queue_depth) {
    ++stats_.counters.rejected;
    return Errc::exhausted;
  }

  item.state = std::make_shared<Future::State>();
  item.ctx = trace::current_context();
  Future future;
  future.state_ = item.state;
  queue->items.push_back(std::move(item));
  ++stats_.counters.submitted;
  stats_.counters.record_depth(queue->items.size());
  ++outstanding_;

  if (!queue->in_run_deck && !queue->running) {
    decks_[key_hash(key) % decks_.size()].push_back(queue);
    queue->in_run_deck = true;
  }
  work_cv_.notify_one();
  return future;
}

Result<Future> Executor::submit(const DomainKey& key, Task task,
                                SubmitOptions opts) {
  if (!task) return Errc::invalid_argument;
  std::lock_guard<std::mutex> guard(mu_);
  if (stopping_) return Errc::cancelled;
  Item item;
  item.task = std::move(task);
  item.deadline = opts.deadline;
  return enqueue_locked(key, std::move(item));
}

Result<Future> Executor::submit_cq(const core::Endpoint& endpoint, CqPrep prep,
                                   SubmitOptions opts) {
  const DomainKey key{endpoint.substrate(), endpoint.actor()};
  std::lock_guard<std::mutex> guard(mu_);
  if (stopping_) return Errc::cancelled;
  const CqKey cq_key{endpoint.substrate(), endpoint.actor(),
                     endpoint.channel(), endpoint.epoch(),
                     core_for_locked(key)};
  std::shared_ptr<CompletionQueue>& cq = cqs_[cq_key];
  if (!cq) {
    // The ring must be able to hold everything one coalesced run can stage
    // — a run is bounded by the domain's queue depth.
    CompletionQueueConfig cfg;
    cfg.depth = config_.queue_depth;
    cq = std::make_shared<CompletionQueue>(endpoint, cfg);
  }
  Item item;
  item.cq = cq;
  item.prep = std::move(prep);
  item.deadline = opts.deadline;
  return enqueue_locked(key, std::move(item));
}

Result<Future> Executor::submit_call(const core::Endpoint& endpoint,
                                     Bytes request, SubmitOptions opts) {
  return submit_cq(
      endpoint,
      // The prep may run twice (retry after a drain when the ring was
      // saturated), so it stages from a copy and keeps the original.
      [request = std::move(request), opts](CompletionQueue& cq) {
        return cq.submit(BytesView(request), opts);
      },
      opts);
}

Result<Future> Executor::submit_call_sg(const core::Endpoint& endpoint,
                                        std::shared_ptr<RegionPool> pool,
                                        Bytes header, Bytes payload,
                                        SubmitOptions opts) {
  if (!pool) return Errc::invalid_argument;
  // Staging happens inside the prep, not here: region_write advances the
  // simulated machine, so it must run under the substrate stripe lock the
  // worker takes for this key. The prep co-owns the pool, so a caller
  // dropping its reference before the task runs cannot dangle it; the
  // staged slot rides the Pending and is released when its completion is
  // formed (the callee consumed the bytes in place by then).
  return submit_cq(
      endpoint,
      [pool = std::move(pool), header = std::move(header),
       payload = std::move(payload), opts](CompletionQueue& cq) {
        return cq.submit_staged(*pool, header, payload, opts);
      },
      opts);
}

std::shared_ptr<Executor::DomainQueue> Executor::next_queue_locked(
    std::size_t index) {
  auto take = [](std::deque<std::shared_ptr<DomainQueue>>& deck, bool front) {
    std::shared_ptr<DomainQueue> queue =
        front ? std::move(deck.front()) : std::move(deck.back());
    if (front)
      deck.pop_front();
    else
      deck.pop_back();
    queue->in_run_deck = false;
    return queue;
  };
  // Own deck first (FIFO over domains)...
  while (!decks_[index].empty()) {
    auto queue = take(decks_[index], /*front=*/true);
    if (!queue->items.empty()) return queue;
  }
  // ...then steal a whole domain queue from the back of a victim's deck.
  // Whole-queue stealing keeps each domain's tasks ordered and
  // non-concurrent even after migration.
  for (std::size_t offset = 1; offset < decks_.size(); ++offset) {
    auto& victim = decks_[(index + offset) % decks_.size()];
    while (!victim.empty()) {
      auto queue = take(victim, /*front=*/false);
      if (!queue->items.empty()) {
        ++stats_.steals;
        return queue;
      }
    }
  }
  return nullptr;
}

void Executor::finish(const std::shared_ptr<Future::State>& state,
                      Result<Bytes> result) {
  {
    std::lock_guard<std::mutex> guard(state->mu);
    state->result = std::move(result);
  }
  state->cv.notify_all();
}

void Executor::run_cq_batch(
    const std::shared_ptr<DomainQueue>& queue, std::vector<Item>& run,
    std::vector<std::uint64_t InvocationCounters::*>& outcomes) {
  CompletionQueue& cq = *run.front().cq;
  outcomes.assign(run.size(), &InvocationCounters::completed);
  std::vector<std::optional<SubmissionId>> sids(run.size());
  std::vector<std::optional<Result<Bytes>>> results(run.size());

  // Everything touching the queue (and through it the simulated machine)
  // is serialized per substrate, same as the single-task path.
  std::lock_guard<std::mutex> stripe(stripe_for(queue->key.substrate));
  // This domain's cycles account to its home core for the whole run.
  std::optional<hw::CoreLease> lease;
  if (queue->key.substrate)
    lease.emplace(queue->key.substrate->machine(), queue->core);
  for (std::size_t i = 0; i < run.size(); ++i) {
    Item& item = run[i];
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> state_guard(item.state->mu);
      cancelled = item.state->cancel_requested;
    }
    if (cancelled) {
      outcomes[i] = &InvocationCounters::cancelled;
      results[i] = Result<Bytes>(Errc::cancelled);
      continue;
    }
    // The submitter's trace context rides with the item, so the submit
    // span the queue stamps chains under the right trace.
    trace::TraceScope scope(item.ctx);
    auto sid = item.prep(cq);
    if (!sid && sid.error() == Errc::exhausted) {
      // Ring saturated mid-run: ring the doorbell (drains into the ready
      // queue) and retry once. A second refusal is terminal.
      (void)cq.doorbell();
      sid = item.prep(cq);
    }
    if (!sid) {
      // Delivered refusal (pool empty, ring full twice, ...): the future
      // carries the error; accounting-wise the invocation completed.
      results[i] = Result<Bytes>(sid.error());
      continue;
    }
    sids[i] = *sid;
  }

  // ONE doorbell for the whole run — this is the crossing the per-call
  // future path used to pay per task.
  {
    trace::TraceScope scope(run.front().ctx);
    (void)cq.doorbell();
  }

  for (std::size_t i = 0; i < run.size(); ++i) {
    if (!sids[i]) continue;
    Result<Bytes> r = cq.wait(*sids[i]);
    if (!r) {
      if (r.error() == Errc::cancelled)
        outcomes[i] = &InvocationCounters::cancelled;
      else if (r.error() == Errc::timed_out)
        outcomes[i] = &InvocationCounters::timed_out;
    }
    results[i] = std::move(r);
  }
  for (std::size_t i = 0; i < run.size(); ++i)
    finish(run[i].state, std::move(*results[i]));
}

void Executor::worker_loop(std::size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::shared_ptr<DomainQueue> queue = next_queue_locked(index);
    if (!queue) {
      if (stopping_) return;
      work_cv_.wait(lock);
      continue;
    }
    if (queue->last_worker != static_cast<std::size_t>(-1) &&
        queue->last_worker != index)
      ++stats_.migrations;
    queue->last_worker = index;
    Item item = std::move(queue->items.front());
    queue->items.pop_front();

    if (item.cq) {
      // Coalesce: every consecutive head item bound for the same
      // CompletionQueue joins this run and shares its doorbell. Only
      // consecutive items, so per-domain ordering is untouched.
      std::vector<Item> run;
      run.push_back(std::move(item));
      while (!queue->items.empty() && queue->items.front().cq == run[0].cq) {
        run.push_back(std::move(queue->items.front()));
        queue->items.pop_front();
      }
      queue->running = true;
      lock.unlock();

      std::vector<std::uint64_t InvocationCounters::*> outcomes;
      run_cq_batch(queue, run, outcomes);

      lock.lock();
      queue->running = false;
      for (const auto counter : outcomes) ++(stats_.counters.*counter);
      ++stats_.cq_batches;
      stats_.cq_calls += run.size();
      publish_sched_locked();
      if (!queue->items.empty() && !queue->in_run_deck && !stopping_) {
        decks_[index].push_back(queue);
        queue->in_run_deck = true;
        work_cv_.notify_one();
      } else if (stopping_) {
        while (!queue->items.empty()) {
          Item cancelled = std::move(queue->items.front());
          queue->items.pop_front();
          ++stats_.counters.cancelled;
          --outstanding_;
          finish(cancelled.state, Errc::cancelled);
        }
      }
      outstanding_ -= run.size();
      if (outstanding_ == 0) idle_cv_.notify_all();
      continue;
    }

    queue->running = true;
    lock.unlock();

    // Resolve the task outside the scheduler lock.
    auto counter = &InvocationCounters::completed;
    std::optional<Result<Bytes>> result;
    {
      std::lock_guard<std::mutex> state_guard(item.state->mu);
      if (item.state->cancel_requested) {
        counter = &InvocationCounters::cancelled;
        result = Result<Bytes>(Errc::cancelled);
      }
    }
    if (!result) {
      if (queue->key.substrate != nullptr) {
        // Reading the simulated clock, probing liveness, and running the
        // task must be serialized per substrate: the machine is
        // single-threaded hardware.
        std::lock_guard<std::mutex> stripe(stripe_for(queue->key.substrate));
        hw::CoreLease lease(queue->key.substrate->machine(), queue->core);
        if (item.deadline != 0 &&
            queue->key.substrate->machine().now() > item.deadline) {
          counter = &InvocationCounters::timed_out;
          result = Result<Bytes>(Errc::timed_out);
        } else if (queue->key.substrate->is_dead(queue->key.domain)) {
          // The target crashed while this work was queued: complete
          // promptly with the same error a direct caller would see, instead
          // of running a task addressed to a corpse. Counted as completed —
          // a delivered refusal, not lost work.
          result = Result<Bytes>(Errc::domain_dead);
        } else {
          // The submitter's trace context rides with the item: crossings
          // the task makes on this worker thread chain under it.
          trace::TraceScope scope(item.ctx);
          result = item.task();
        }
      } else {
        trace::TraceScope scope(item.ctx);
        result = item.task();
      }
    }
    finish(item.state, std::move(*result));

    lock.lock();
    queue->running = false;
    ++(stats_.counters.*counter);
    publish_sched_locked();
    if (!queue->items.empty() && !queue->in_run_deck && !stopping_) {
      decks_[index].push_back(queue);
      queue->in_run_deck = true;
      work_cv_.notify_one();
    } else if (stopping_) {
      while (!queue->items.empty()) {
        Item cancelled = std::move(queue->items.front());
        queue->items.pop_front();
        ++stats_.counters.cancelled;
        --outstanding_;
        finish(cancelled.state, Errc::cancelled);
      }
    }
    if (--outstanding_ == 0) idle_cv_.notify_all();
  }
}

void Executor::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

ExecutorStats Executor::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

}  // namespace lateral::runtime
