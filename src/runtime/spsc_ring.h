// Single-producer single-consumer ring queue — the submission/completion
// queue shape of io_uring, shrunk to this simulation's needs.
//
// The runtime lays a pair of these over a substrate shared-memory channel:
// the client (producer) enqueues invocations into the submission ring
// without crossing the isolation boundary, then crosses ONCE per batch
// (BatchChannel::flush), and completions come back through the twin ring.
// Head and tail are monotonically increasing 64-bit counters; the index is
// `counter & mask`, so wraparound is free and full/empty are `tail-head`
// comparisons, never an ambiguous head==tail.
//
// Progress is wait-free for both sides: the producer only writes `tail`,
// the consumer only writes `head`. That makes the ring safe for the
// executor's worker threads as well as the (single-threaded) batching
// path.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace lateral::runtime {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so indexing is a
  /// mask, exactly like the kernel ring buffers this models.
  explicit SpscRing(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
  }

  std::size_t capacity() const { return slots_.size(); }

  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  bool empty() const { return size() == 0; }
  bool full() const { return size() == capacity(); }

  /// Producer side. False when the ring is full (backpressure — the caller
  /// must surface this, never drop).
  bool push(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == capacity()) return false;
    slots_[tail & (capacity() - 1)] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. nullopt when empty.
  std::optional<T> pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T>& slot = slots_[head & (capacity() - 1)];
    std::optional<T> out = std::move(slot);
    slot.reset();
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

 private:
  std::vector<std::optional<T>> slots_;
  std::atomic<std::uint64_t> head_{0};  // consumer cursor
  std::atomic<std::uint64_t> tail_{0};  // producer cursor
};

}  // namespace lateral::runtime
