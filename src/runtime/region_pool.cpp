#include "runtime/region_pool.h"

namespace lateral::runtime {

RegionPool::RegionPool(substrate::IsolationSubstrate& substrate,
                       substrate::DomainId actor,
                       substrate::RegionId region, std::size_t region_size,
                       std::size_t slot_bytes, std::size_t shards)
    : substrate_(substrate),
      actor_(actor),
      region_(region),
      slot_bytes_(slot_bytes),
      stride_(slot_bytes) {
  if (shards == 0) shards = 1;
  // Pad slots to the cache-line stride whenever the contention model is
  // live (multi-core machine): distinct slots must never share a simulated
  // line, or the penalty would charge allocator layout, not true sharing.
  // Single-core machines keep the dense legacy layout bit-exact.
  const std::size_t line = substrate.machine().costs().cache_line_bytes;
  if (substrate.machine().core_count() > 1 && slot_bytes_ != 0 && line != 0)
    stride_ = ((slot_bytes_ + line - 1) / line) * line;

  // Arena spans are stride-aligned by construction (a whole number of
  // strides), so every shard's first slot — its free-list head in the
  // simulated memory — starts on its own cache line.
  arena_span_ =
      stride_ == 0 ? 0 : ((region_size / shards) / stride_) * stride_;
  const std::size_t slots_per_shard =
      stride_ == 0 ? 0 : arena_span_ / stride_;

  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->base = static_cast<std::uint64_t>(s) * arena_span_;
    shard->slots = slots_per_shard;
    shard->leased.assign(slots_per_shard, false);
    shard->free.reserve(slots_per_shard);
    // Push in reverse so the first acquire() hands out the arena base.
    for (std::size_t i = slots_per_shard; i > 0; --i)
      shard->free.push_back(shard->base +
                            static_cast<std::uint64_t>(i - 1) * stride_);
    slots_total_ += slots_per_shard;
    shards_.push_back(std::move(shard));
  }
}

Result<RegionPool::Slot> RegionPool::acquire() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    auto slot = acquire(s);
    if (slot || slot.error() != Errc::exhausted) return slot;
  }
  return Errc::exhausted;
}

Result<RegionPool::Slot> RegionPool::acquire(std::size_t shard) {
  if (shard >= shards_.size()) return Errc::invalid_argument;
  Shard& arena = *shards_[shard];
  std::lock_guard<std::mutex> guard(arena.mu);
  if (arena.free.empty()) return Errc::exhausted;
  Slot slot;
  slot.offset = arena.free.back();
  slot.bytes = slot_bytes_;
  arena.free.pop_back();
  arena.leased[(slot.offset - arena.base) / stride_] = true;
  return slot;
}

void RegionPool::release(const Slot& slot) {
  if (slot.bytes != slot_bytes_ || stride_ == 0 || arena_span_ == 0) return;
  const std::size_t shard = static_cast<std::size_t>(slot.offset / arena_span_);
  if (shard >= shards_.size()) return;
  Shard& arena = *shards_[shard];
  const std::uint64_t local = slot.offset - arena.base;
  if (local % stride_ != 0) return;
  const std::size_t index = static_cast<std::size_t>(local / stride_);
  if (index >= arena.slots) return;
  std::lock_guard<std::mutex> guard(arena.mu);
  if (!arena.leased[index]) return;  // double release: already free
  arena.leased[index] = false;
  arena.free.push_back(slot.offset);
}

std::size_t RegionPool::slots_free() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) total += slots_free(s);
  return total;
}

std::size_t RegionPool::slots_free(std::size_t shard) const {
  if (shard >= shards_.size()) return 0;
  const Shard& arena = *shards_[shard];
  std::lock_guard<std::mutex> guard(arena.mu);
  return arena.free.size();
}

Result<substrate::RegionDescriptor> RegionPool::stage(const Slot& slot,
                                                      BytesView payload) {
  if (payload.empty() || payload.size() > slot.bytes)
    return Errc::invalid_argument;
  if (const Status s =
          substrate_.region_write(actor_, region_, slot.offset, payload);
      !s.ok())
    return s.error();
  return substrate_.make_descriptor(actor_, region_, slot.offset,
                                    payload.size());
}

}  // namespace lateral::runtime
