#include "runtime/region_pool.h"

namespace lateral::runtime {

RegionPool::RegionPool(substrate::IsolationSubstrate& substrate,
                       substrate::DomainId actor,
                       substrate::RegionId region, std::size_t region_size,
                       std::size_t slot_bytes)
    : substrate_(substrate),
      actor_(actor),
      region_(region),
      slot_bytes_(slot_bytes),
      slots_total_(slot_bytes == 0 ? 0 : region_size / slot_bytes) {
  free_.reserve(slots_total_);
  // Push in reverse so the first acquire() hands out offset 0.
  for (std::size_t i = slots_total_; i > 0; --i)
    free_.push_back(static_cast<std::uint64_t>((i - 1) * slot_bytes_));
}

Result<RegionPool::Slot> RegionPool::acquire() {
  if (free_.empty()) return Errc::exhausted;
  Slot slot;
  slot.offset = free_.back();
  slot.bytes = slot_bytes_;
  free_.pop_back();
  return slot;
}

void RegionPool::release(const Slot& slot) {
  if (slot.bytes != slot_bytes_ || slot.offset % slot_bytes_ != 0) return;
  if (slot.offset / slot_bytes_ >= slots_total_) return;
  free_.push_back(slot.offset);
}

Result<substrate::RegionDescriptor> RegionPool::stage(const Slot& slot,
                                                      BytesView payload) {
  if (payload.empty() || payload.size() > slot.bytes)
    return Errc::invalid_argument;
  if (const Status s =
          substrate_.region_write(actor_, region_, slot.offset, payload);
      !s.ok())
    return s.error();
  return substrate_.make_descriptor(actor_, region_, slot.offset,
                                    payload.size());
}

}  // namespace lateral::runtime
