#include "runtime/region_pool.h"

namespace lateral::runtime {

RegionPool::RegionPool(substrate::IsolationSubstrate& substrate,
                       substrate::DomainId actor,
                       substrate::RegionId region, std::size_t region_size,
                       std::size_t slot_bytes)
    : substrate_(substrate),
      actor_(actor),
      region_(region),
      slot_bytes_(slot_bytes),
      slots_total_(slot_bytes == 0 ? 0 : region_size / slot_bytes),
      leased_(slots_total_, false) {
  free_.reserve(slots_total_);
  // Push in reverse so the first acquire() hands out offset 0.
  for (std::size_t i = slots_total_; i > 0; --i)
    free_.push_back(static_cast<std::uint64_t>((i - 1) * slot_bytes_));
}

Result<RegionPool::Slot> RegionPool::acquire() {
  std::lock_guard<std::mutex> guard(mu_);
  if (free_.empty()) return Errc::exhausted;
  Slot slot;
  slot.offset = free_.back();
  slot.bytes = slot_bytes_;
  free_.pop_back();
  leased_[slot.offset / slot_bytes_] = true;
  return slot;
}

void RegionPool::release(const Slot& slot) {
  if (slot.bytes != slot_bytes_ || slot.offset % slot_bytes_ != 0) return;
  const std::size_t index = slot.offset / slot_bytes_;
  if (index >= slots_total_) return;
  std::lock_guard<std::mutex> guard(mu_);
  if (!leased_[index]) return;  // double release: the slot is already free
  leased_[index] = false;
  free_.push_back(slot.offset);
}

std::size_t RegionPool::slots_free() const {
  std::lock_guard<std::mutex> guard(mu_);
  return free_.size();
}

Result<substrate::RegionDescriptor> RegionPool::stage(const Slot& slot,
                                                      BytesView payload) {
  if (payload.empty() || payload.size() > slot.bytes)
    return Errc::invalid_argument;
  if (const Status s =
          substrate_.region_write(actor_, region_, slot.offset, payload);
      !s.ok())
    return s.error();
  return substrate_.make_descriptor(actor_, region_, slot.offset,
                                    payload.size());
}

}  // namespace lateral::runtime
