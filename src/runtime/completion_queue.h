// CompletionQueue — the runtime's hot-path invocation API (lateral::cq).
//
// BatchChannel amortizes the submit side, but its consumers still drain one
// Completion at a time and every composition layer (Executor futures,
// AsyncRemoteProxy, FleetServer) re-invents the drain loop. CompletionQueue
// is the io_uring-shaped redesign: a paired submission/completion ring with
// a DOORBELL — one crossing charge that flushes everything queued AND
// drains every completion back into a ready queue of CqEvents — plus batch
// drain APIs (reap / for_each_completion) so completions are consumed at
// the same granularity they are produced.
//
// Batch depth is adaptive. An AdaptiveBatchController watches the windowed
// p50/p99 of submit->complete latency (the PR-5 log2 histograms, computed
// per doorbell window, not cumulatively) and the ring occupancy:
//   - under load (occupancy reached the target) it doubles the target, but
//     only while the tail has headroom — growth must not push the windowed
//     p99 past tail_factor x the best p50 ever observed (the latency floor,
//     which is what the smallest batches cost). On substrates whose
//     crossing is byte-dominated (NoC) this is what stops depth from
//     climbing into latency territory that batching cannot buy back;
//   - when the queue runs shallow it halves the target, so sparse traffic
//     is flushed in small, low-latency batches;
//   - a flush_age bound rings the doorbell for stragglers: an entry never
//     waits longer than flush_age cycles just because traffic went quiet.
// The chosen depth is exported through MetricsHub (adaptive_depth /
// adaptive_grows / adaptive_shrinks / doorbells) and, when tracing is on,
// as a SpanPhase::doorbell span whose size field carries the depth.
//
// Contract (inherited from BatchChannel and strengthened):
//   - submit paths are lossless-or-rejected (Errc::exhausted = ring full);
//   - every accepted invocation terminates in exactly one CqEvent;
//   - one doorbell == at most one boundary crossing: the completion ring is
//     always drained into the ready queue before the next flush, so the
//     flush's up-front completion-space reservation can never refuse.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/endpoint.h"
#include "runtime/batch_channel.h"
#include "runtime/metrics.h"
#include "runtime/region_pool.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::runtime {

/// One completed invocation, as drained from the completion ring. This is
/// the batch-path replacement for a per-call Future: plain data, no shared
/// state, no allocation beyond the payload itself.
struct CqEvent {
  SubmissionId id = 0;
  Errc status = Errc::ok;
  /// Reply payload (meaningful when status == ok).
  Bytes payload;
  /// Submit->complete simulated cycles (zero when the invocation never
  /// crossed: cancelled, deadline-expired, epoch-fenced).
  Cycles cycles = 0;

  bool ok() const { return status == Errc::ok; }
};

struct AdaptiveConfig {
  std::size_t min_batch = 4;
  std::size_t max_batch = 256;
  /// Starting depth target; 0 means min_batch. A fixed-depth queue
  /// (adaptive = false) stays at this value forever.
  std::size_t initial = 0;
  /// Tail headroom: growth stops once doubling could push the windowed p99
  /// past tail_factor x the latency floor (best windowed p50 seen), and a
  /// window that already violates the bound forces a shrink.
  std::uint64_t tail_factor = 8;
  /// maybe_doorbell() rings when the oldest queued entry has waited this
  /// many cycles, regardless of depth. 0 = never ring on age.
  Cycles flush_age = 0;
  bool adaptive = true;
};

/// Histogram-driven batch-depth controller. Pure policy — no rings, no
/// clocks — so the edge cases (cold start, saturation, tail damping) are
/// unit-testable without a substrate.
class AdaptiveBatchController {
 public:
  explicit AdaptiveBatchController(AdaptiveConfig config);

  std::size_t depth() const { return depth_; }
  std::uint64_t grows() const { return grows_; }
  std::uint64_t shrinks() const { return shrinks_; }

  /// Feed one doorbell window: `occupancy` = entries flushed by the
  /// doorbell, window_p50/p99 = that window's latency percentiles (0 when
  /// the window recorded nothing, e.g. every entry was cancelled — the
  /// cold-start case, where occupancy alone drives the decision).
  void observe(std::size_t occupancy, Cycles window_p50, Cycles window_p99);

 private:
  AdaptiveConfig config_;
  std::size_t depth_;
  /// Best (smallest) windowed p50 seen — what a small batch costs on this
  /// substrate; the reference the tail bound is measured against.
  Cycles floor_p50_ = 0;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
};

struct CompletionQueueConfig {
  /// Ring depth (submission and completion each); raised to at least
  /// adaptive.max_batch so the controller's deepest batch always fits.
  std::size_t depth = 512;
  AdaptiveConfig adaptive;
  MetricsHub* hub = nullptr;
  std::string label;
};

class CompletionQueue {
 public:
  /// Attach to one side of an assembly channel (epoch captured at attach,
  /// exactly like BatchChannel).
  explicit CompletionQueue(const core::Endpoint& endpoint,
                           CompletionQueueConfig config = {});
  /// Raw-substrate attach (tests, benches).
  CompletionQueue(substrate::IsolationSubstrate& substrate,
                  substrate::DomainId actor, substrate::ChannelId channel,
                  CompletionQueueConfig config = {});

  // --- Submission ring ------------------------------------------------------
  Result<SubmissionId> submit(BytesView request, SubmitOptions opts = {});
  Result<SubmissionId> submit(Bytes&& request, SubmitOptions opts = {});
  Result<SubmissionId> submit_sg(BytesView header,
                                 std::vector<substrate::RegionDescriptor>
                                     segments,
                                 SubmitOptions opts = {});
  Result<SubmissionId> submit_staged(RegionPool& pool, BytesView header,
                                     BytesView payload, SubmitOptions opts = {});
  Status cancel(SubmissionId id);

  // --- Doorbell -------------------------------------------------------------
  /// Ring unconditionally: flush the submission ring (one crossing) and
  /// drain every completion into the ready queue, then feed the adaptive
  /// controller with the window. No-op (no charge) when nothing is queued
  /// and nothing is ready to drain.
  Status doorbell();
  /// Ring only when policy says so: occupancy reached the controller's
  /// depth target, or the oldest queued entry is older than flush_age.
  Status maybe_doorbell();

  // --- Completion drain -----------------------------------------------------
  /// Drain up to `max` ready events (0 = all). Never blocks; rings the
  /// doorbell at most once (only when nothing is ready but submissions are
  /// queued). A non-zero `deadline` already in the past suppresses even
  /// that crossing: past-deadline reaps only return what is already ready.
  Result<std::vector<CqEvent>> reap(std::size_t max = 0, Cycles deadline = 0);
  /// Apply `fn` to every ready event (no doorbell, no crossing) and return
  /// how many were consumed.
  std::size_t for_each_completion(const std::function<void(CqEvent&)>& fn);

  /// Future-compatibility shim for sync callers: ring as needed, drain, and
  /// return `id`'s result (other ids' events stay in the ready queue).
  Result<Bytes> wait(SubmissionId id);

  // --- Introspection --------------------------------------------------------
  std::size_t pending() const { return channel_.pending(); }
  std::size_t ready() const { return ready_.size(); }
  /// The controller's current batch-depth target.
  std::size_t batch_depth() const { return controller_.depth(); }
  InvocationCounters metrics() const { return channel_.metrics(); }

 private:
  Result<SubmissionId> note_submit(Result<SubmissionId> id);
  void export_controller_metrics();

  substrate::IsolationSubstrate& substrate_;
  substrate::DomainId actor_;
  BatchChannel channel_;
  AdaptiveBatchController controller_;
  std::deque<CqEvent> ready_;
  /// Machine clock when the oldest currently-queued entry was submitted
  /// (meaningful only while pending() > 0); drives the flush_age bound.
  Cycles oldest_submitted_at_ = 0;
  Cycles flush_age_ = 0;
};

}  // namespace lateral::runtime
