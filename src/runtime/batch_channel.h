// BatchChannel — asynchronous, batched cross-domain invocation.
//
// The paper's horizontal paradigm pays a boundary-crossing toll on every
// component interaction; at serving scale that toll dominates. BatchChannel
// is the io_uring answer: an SPSC submission ring and completion ring
// layered over a substrate channel. The client enqueues many invocations
// (no crossing), then flush() carries the whole batch across the isolation
// boundary with the fixed crossing cost paid ONCE per direction
// (IsolationSubstrate::call_batch), and replies come back through the
// completion ring tagged with their submission ids.
//
// Contract:
//   - submit() is lossless-or-rejected: a full submission ring refuses
//     with Errc::exhausted (backpressure) — nothing is ever dropped.
//   - flush() refuses with Errc::exhausted when the completion ring cannot
//     hold every would-be completion; submissions stay queued.
//   - Every accepted invocation terminates in exactly one of: completed
//     (reply or refusal from the handler), cancelled, timed_out. The
//     metrics counters mirror this one-to-one.
//   - Deadlines are absolute simulated cycles, checked against the
//     substrate machine's clock at flush time (the invocation's budget is
//     charged against the cost model like everything else).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "core/endpoint.h"
#include "runtime/metrics.h"
#include "runtime/region_pool.h"
#include "runtime/spsc_ring.h"
#include "substrate/substrate.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::runtime {

using SubmissionId = std::uint64_t;

struct SubmitOptions {
  /// Absolute deadline in simulated machine cycles; 0 = no deadline. An
  /// invocation still queued when the clock passes its deadline completes
  /// with Errc::timed_out instead of running.
  Cycles deadline = 0;
};

struct Completion {
  SubmissionId id = 0;
  Result<Bytes> result;
  /// Submit->complete simulated cycles for invocations that ran (zero for
  /// cancelled/expired/fenced ones — they never crossed). CompletionQueue
  /// surfaces this as CqEvent::cycles and the adaptive controller feeds on
  /// it, so it is carried on every completion, not recomputed by callers.
  Cycles latency = 0;
};

struct BatchChannelConfig {
  /// Ring depth (submission and completion each); rounded up to a power
  /// of two. This bound IS the backpressure contract.
  std::size_t depth = 64;
  /// Optional shared metrics sink; falls back to channel-local counters.
  MetricsHub* hub = nullptr;
  std::string label;
};

class BatchChannel {
 public:
  /// Attach to one side of an assembly channel. The channel's epoch is
  /// captured at attach time: if the peer is restarted by a supervisor
  /// (epoch bump), every invocation queued here completes with
  /// Errc::stale_epoch at the next flush — delivered, not lost — and the
  /// caller re-attaches via a fresh Assembly::endpoint().
  explicit BatchChannel(const core::Endpoint& endpoint,
                        BatchChannelConfig config = {});
  /// Raw-substrate attach (tests, benches); captures the current epoch.
  BatchChannel(substrate::IsolationSubstrate& substrate,
               substrate::DomainId actor, substrate::ChannelId channel,
               BatchChannelConfig config = {});

  /// Enqueue an invocation; returns its id. Errc::exhausted when the
  /// submission ring is full — resolve by flushing or draining.
  Result<SubmissionId> submit(BytesView request, SubmitOptions opts = {});
  /// Move-in overload: adopts the request buffer instead of copying it.
  /// On substrates without region support this is the whole fallback
  /// story — the payload is copied exactly once (by call_batch's delivery),
  /// never re-copied into the ring.
  Result<SubmissionId> submit(Bytes&& request, SubmitOptions opts = {});

  /// Enqueue a scatter-gather invocation: a small inline header plus
  /// descriptors naming payload already staged in a shared grant region
  /// (see RegionPool::stage). The flush crosses with O(descriptors) bytes
  /// for this entry regardless of payload size.
  Result<SubmissionId> submit_sg(
      BytesView header, std::vector<substrate::RegionDescriptor> segments,
      SubmitOptions opts = {});

  /// Convenience producer path: lease a pool slot, stage `payload` into it
  /// (the single copy), and submit header+descriptor. The slot is returned
  /// to the pool automatically when this submission's completion is
  /// formed — by then the peer's handler has consumed the bytes in place.
  /// Staging failures are reported, not papered over: Errc::exhausted means
  /// the pool is empty (flush and retry), stale_epoch means the region was
  /// re-epoched (re-wire via Assembly::region_between). Callers that want
  /// the copy fallback call submit() instead.
  Result<SubmissionId> submit_staged(RegionPool& pool, BytesView header,
                                     BytesView payload,
                                     SubmitOptions opts = {});

  /// Withdraw a still-queued invocation. It will surface as a cancelled
  /// completion at the next flush (so the accounting stays lossless).
  /// Errc::invalid_argument when the id is unknown or already flushed.
  Status cancel(SubmissionId id);

  /// Cross the boundary once with everything queued. Cancelled and
  /// deadline-expired invocations complete without running; the rest go
  /// through IsolationSubstrate::call_batch. No-op on an empty queue.
  Status flush();

  /// Pop the next completion; Errc::would_block when none is ready.
  Result<Completion> next_completion();

  /// Convenience: flush if `id` is still queued, then drain completions
  /// (stashing others for later retrieval) until `id`'s result arrives.
  Result<Bytes> wait(SubmissionId id);

  std::size_t pending() const { return submissions_.size(); }
  std::size_t completions_ready() const {
    return completions_.size() + stashed_.size();
  }

  InvocationCounters metrics() const { return counters_.snapshot(); }

  /// The live counter block this channel accounts to (the hub's label slot
  /// when configured, else the channel-local block). CompletionQueue layers
  /// its doorbell/adaptive gauges into the same block so one snapshot shows
  /// the whole queue pair.
  MetricsHub::CounterRef counters_ref() const { return counters_; }

 private:
  struct Pending {
    SubmissionId id = 0;
    Bytes request;  // inline payload, or the SG header
    std::vector<substrate::RegionDescriptor> segments;  // non-empty => SG
    Cycles deadline = 0;
    /// Pool to return the staged slot to once the completion is formed
    /// (submit_staged only).
    RegionPool* pool = nullptr;
    RegionPool::Slot slot;
    /// Trace context captured at submit (zero when the submitter's thread
    /// carried none): parent_span is this submission's own submit span, so
    /// the dispatch span the substrate mints at flush chains under it.
    trace::TraceContext ctx;
    /// Machine clock at submit; the completed path records submit->complete
    /// latency from it (always captured — latency accounting is not gated
    /// on tracing).
    Cycles submitted_at = 0;
  };

  Result<SubmissionId> enqueue(Pending pending);
  void complete(Completion completion);
  /// Return a staged slot (if any) — called exactly once per pending, when
  /// its completion is formed.
  static void release_slot(Pending& pending);
  /// The single terminal path for every accepted invocation: bump exactly
  /// one terminal counter, close the submit span (when `phase` names a
  /// terminal span and the submission was traced), return the staged slot,
  /// and form the completion. Every way out of flush() funnels through
  /// here so no path can leak a RegionPool slot or skip the accounting.
  void finish_pending(Pending& pending,
                      std::uint64_t InvocationCounters::* counter,
                      std::optional<trace::SpanPhase> phase,
                      Result<Bytes> result, Cycles latency = 0);

  substrate::IsolationSubstrate& substrate_;
  substrate::DomainId actor_;
  substrate::ChannelId channel_;
  std::uint64_t epoch_;  // channel epoch at attach; flush checks it
  SpscRing<Pending> submissions_;
  SpscRing<Completion> completions_;
  /// Completions popped while waiting for a different id.
  std::map<SubmissionId, Result<Bytes>> stashed_;
  std::set<SubmissionId> live_;       // ids currently in the submission ring
  std::set<SubmissionId> cancelled_;  // subset of live_
  SubmissionId next_id_ = 1;
  MetricsHub::CounterSlot own_counters_;
  MetricsHub::CounterRef counters_;
};

}  // namespace lateral::runtime
