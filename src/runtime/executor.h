// Executor — a work-stealing thread pool with per-domain run queues and a
// Future-style completion API (submit / poll / wait / wait_all).
//
// Scheduling model: every task is bound to a domain (a DomainKey). Tasks of
// one domain run in submission order and never concurrently — a domain is a
// single-threaded component; that is what the isolation model promises its
// handler. Each domain has a FIFO run queue; domain queues are dealt to a
// home worker by hash, and an idle worker steals whole domain queues from
// the back of a victim's deck (stealing whole queues, not single tasks,
// is what preserves per-domain ordering).
//
// The simulated hardware is not thread-safe (Machine::advance is a plain
// add), so the executor serializes all work touching one substrate through
// a striped lock. Parallelism is real across substrates/machines — which
// is also the physically honest model: one machine, one clock.
//
// Backpressure: per-domain queue depth is bounded; submit() refuses with
// Errc::exhausted when full. Deadlines (absolute simulated cycles) and
// cancellation resolve at dequeue time: the task completes with
// Errc::timed_out / Errc::cancelled instead of running. Together with the
// stats() counters this gives the same lossless accounting contract as
// BatchChannel.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/batch_channel.h"
#include "runtime/completion_queue.h"
#include "runtime/metrics.h"
#include "substrate/substrate.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::runtime {

/// What a task is charged to: a domain on a substrate. `substrate` may be
/// null for work not tied to simulated hardware (no stripe lock, no
/// deadline clock).
struct DomainKey {
  substrate::IsolationSubstrate* substrate = nullptr;
  substrate::DomainId domain = substrate::kInvalidDomain;

  auto operator<=>(const DomainKey&) const = default;
};

/// Completion handle for one submitted task.
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }
  /// True once the task reached a terminal state (result available).
  bool poll() const;
  /// Block until terminal; returns the task's result (or Errc::cancelled /
  /// Errc::timed_out when it never ran).
  Result<Bytes> wait();
  /// Best-effort withdrawal: takes effect only if the task has not started.
  Status cancel();

 private:
  friend class Executor;
  struct State;
  std::shared_ptr<State> state_;
};

struct ExecutorConfig {
  std::size_t threads = 2;
  /// Per-domain run-queue bound (backpressure).
  std::size_t queue_depth = 256;
  /// Publish SchedStats (steals, migrations, per-core run-queue depth
  /// gauges) under `label` after every queue run. Optional: a null hub
  /// keeps the pre-FIG13 behaviour of stats() being the only export.
  MetricsHub* hub = nullptr;
  std::string label = "executor";
};

struct ExecutorStats {
  InvocationCounters counters;
  std::uint64_t steals = 0;  // domain queues migrated to an idle worker
  /// Domain queues observed running on a different worker than their last
  /// run — the cross-worker moves FIG13 attributes (a steal moves a queue;
  /// a migration is that move actually landing somewhere new).
  std::uint64_t migrations = 0;
  /// Completion-queue path: cq_calls invocations were carried by
  /// cq_batches doorbells, i.e. consecutive submit_call* tasks bound for
  /// the same endpoint crossed together instead of future-by-future.
  std::uint64_t cq_batches = 0;
  std::uint64_t cq_calls = 0;
};

class Executor {
 public:
  using Task = std::function<Result<Bytes>()>;

  explicit Executor(ExecutorConfig config = {});
  /// Joins workers; tasks still queued complete with Errc::cancelled.
  ~Executor();

  /// Enqueue `task` on `key`'s run queue. Errc::exhausted when that
  /// domain's queue is at its depth bound.
  Result<Future> submit(const DomainKey& key, Task task,
                        SubmitOptions opts = {});

  /// Plain call as a task, routed through the endpoint's CompletionQueue:
  /// consecutive submit_call* tasks bound for the same endpoint are popped
  /// together by the worker and cross the boundary under ONE doorbell —
  /// the future-per-call API on the outside, the CqEvent batch path on the
  /// inside. The Future resolves with the reply (or the queue's terminal
  /// error: cancelled, timed_out, stale_epoch after a peer restart).
  Result<Future> submit_call(const core::Endpoint& endpoint, Bytes request,
                             SubmitOptions opts = {});

  /// Zero-copy call as a task: when the task runs (under the endpoint
  /// substrate's stripe lock, in domain order), it leases a pool slot,
  /// stages `payload` (the path's one copy), and submits header+descriptor
  /// to the endpoint's CompletionQueue; the slot is returned when the
  /// completion is formed. The task co-owns the pool, so the pool outlives
  /// every deferred call staged through it, and the pool's free list is
  /// internally locked, so one pool may serve tasks keyed to different
  /// domains. Errors surface through the Future (exhausted = pool empty,
  /// stale_epoch = peer restarted; re-wire and resubmit). Like
  /// submit_call, consecutive same-endpoint tasks share one doorbell.
  Result<Future> submit_call_sg(const core::Endpoint& endpoint,
                                std::shared_ptr<RegionPool> pool,
                                Bytes header, Bytes payload,
                                SubmitOptions opts = {});

  /// Pin `key`'s tasks to simulated core `core` of its substrate's machine.
  /// Without an explicit affinity a domain's home core is its key hash
  /// modulo the machine's core count — the executor-side half of shard
  /// routing (one shard per core). Takes effect for tasks not yet running.
  Status set_affinity(const DomainKey& key, std::size_t core);
  /// The simulated core `key`'s tasks account to.
  std::size_t core_of(const DomainKey& key) const;

  /// Block until every task submitted so far is terminal.
  void wait_all();

  ExecutorStats stats() const;

 private:
  /// Stages one invocation into the endpoint's CompletionQueue; runs on the
  /// worker under the substrate stripe lock.
  using CqPrep = std::function<Result<SubmissionId>(CompletionQueue&)>;

  struct Item {
    std::shared_ptr<Future::State> state;
    Task task;
    /// Completion-queue item (submit_call*): `prep` stages the submission
    /// and `cq` is the shared per-(endpoint, epoch) queue it lands in.
    /// Consecutive items with the same `cq` are popped as one run and
    /// share a doorbell. Exactly one of task / prep is set.
    std::shared_ptr<CompletionQueue> cq;
    CqPrep prep;
    Cycles deadline = 0;
    /// Trace context of the submitting thread, captured at submit and
    /// re-installed around the task on the worker — the context follows the
    /// request across the thread hop, not the thread.
    trace::TraceContext ctx;
  };
  struct DomainQueue {
    DomainKey key;
    std::deque<Item> items;
    bool in_run_deck = false;  // scheduled on some worker's deck
    bool running = false;      // a worker is executing its head task
    /// Simulated core this domain's work accounts to (CoreLease around the
    /// task under the stripe lock). Hash-resolved at creation; overridden
    /// by set_affinity.
    std::size_t core = 0;
    /// Last worker that ran this queue (npos before the first run); a
    /// different worker picking it up is a migration.
    std::size_t last_worker = static_cast<std::size_t>(-1);
  };

  /// Cache key for per-endpoint CompletionQueues. The channel epoch is part
  /// of the key: a supervised restart re-epochs the channel, and the next
  /// submit_call against the fresh endpoint must get a fresh queue instead
  /// of one that would see stale_epoch forever.
  struct CqKey {
    substrate::IsolationSubstrate* substrate = nullptr;
    substrate::DomainId actor = substrate::kInvalidDomain;
    substrate::ChannelId channel = 0;
    std::uint64_t epoch = 0;
    /// Sharded components get one cached queue per (substrate, shard,
    /// core): a shard re-pinned to another core must not share a ring —
    /// rings carry per-core cycle stamps.
    std::size_t core = 0;

    auto operator<=>(const CqKey&) const = default;
  };

  void worker_loop(std::size_t index);
  std::shared_ptr<DomainQueue> next_queue_locked(std::size_t index);
  /// Resolve `key`'s home core (mu_ held): explicit affinity, else key hash
  /// modulo the substrate machine's core count.
  std::size_t core_for_locked(const DomainKey& key) const;
  /// Find-or-create `key`'s queue (mu_ held) with its core resolved.
  std::shared_ptr<DomainQueue>& queue_for_locked(const DomainKey& key);
  /// Push current SchedStats to the configured hub (mu_ held).
  void publish_sched_locked();
  void finish(const std::shared_ptr<Future::State>& state, Result<Bytes> r);
  std::mutex& stripe_for(const substrate::IsolationSubstrate* substrate);
  /// Enqueue a completion-queue item (shared plumbing of submit_call*).
  Result<Future> submit_cq(const core::Endpoint& endpoint, CqPrep prep,
                           SubmitOptions opts);
  /// Common enqueue tail (mu_ held): allocate the future state, bound the
  /// queue, schedule the domain.
  Result<Future> enqueue_locked(const DomainKey& key, Item item);
  /// Run a coalesced batch of same-queue items under the stripe lock and
  /// resolve their futures; returns each item's terminal counter.
  void run_cq_batch(const std::shared_ptr<DomainQueue>& queue,
                    std::vector<Item>& run,
                    std::vector<std::uint64_t InvocationCounters::*>&
                        outcomes);

  ExecutorConfig config_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::map<DomainKey, std::shared_ptr<DomainQueue>> domains_;
  /// Per-(endpoint, epoch) CompletionQueues (created under mu_; driven only
  /// under the owning substrate's stripe lock).
  std::map<CqKey, std::shared_ptr<CompletionQueue>> cqs_;
  /// Per-worker deck of runnable domain queues.
  std::vector<std::deque<std::shared_ptr<DomainQueue>>> decks_;
  std::vector<std::thread> workers_;
  std::uint64_t outstanding_ = 0;
  bool stopping_ = false;
  ExecutorStats stats_;
  /// Explicit core pins (set_affinity) consulted before the hash fallback.
  std::map<DomainKey, std::size_t> affinity_;
  /// Striped locks serializing access to each substrate's machine.
  static constexpr std::size_t kStripes = 16;
  std::array<std::mutex, kStripes> substrate_stripes_;
};

}  // namespace lateral::runtime
