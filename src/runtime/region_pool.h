// RegionPool — a region-backed staging buffer pool for the zero-copy path.
//
// The zero-copy contract (IsolationSubstrate::call_sg) needs payload bytes
// resident in a shared grant region before the descriptor crosses. A
// producer could region_write at ad-hoc offsets, but serving code wants the
// allocator question answered once: RegionPool carves one region into
// fixed-size slots, hands them out O(1) from a free list, and stages
// payloads with a single region_write (the path's one copy). Slots are
// returned either explicitly or by the BatchChannel integration when the
// matching completion is delivered — by then the consumer's handler has
// read the bytes in place, so reuse is safe.
//
// Crash recovery: the pool holds no epoch state of its own. Every stage()
// goes through the substrate's reference monitor, so after a revoke or a
// supervised restart (epoch bump) staging fails with Errc::stale_epoch and
// the owner re-wires through Assembly::region_between, exactly like a
// BatchChannel holder re-attaches after a fence.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "substrate/substrate.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::runtime {

class RegionPool {
 public:
  /// A lease on `bytes` bytes of the pool's region at `offset`. Only
  /// meaningful to the pool that issued it.
  struct Slot {
    std::uint64_t offset = 0;
    std::size_t bytes = 0;
  };

  /// Carve `region` (created and mapped beforehand — normally by the
  /// composer) into slots of `slot_bytes`. `region_size` is the region's
  /// total size; slot count = region_size / slot_bytes (at least 1 slot
  /// must fit or the pool is unusable and every acquire fails).
  RegionPool(substrate::IsolationSubstrate& substrate,
             substrate::DomainId actor, substrate::RegionId region,
             std::size_t region_size, std::size_t slot_bytes);

  /// Lease a free slot; Errc::exhausted when every slot is in flight —
  /// the pool's backpressure, analogous to a full submission ring.
  Result<Slot> acquire();
  /// Return a slot to the free list. Releasing a slot that is already free
  /// (or was never issued by this pool) is ignored — a double release must
  /// not put the same offset in flight twice.
  void release(const Slot& slot);

  /// Stage `payload` into `slot` (one region_write) and mint a descriptor
  /// for exactly the staged bytes. Errc::invalid_argument when the payload
  /// exceeds the slot; substrate errors (stale_epoch after a restart,
  /// access_denied after a revoke) propagate untouched.
  Result<substrate::RegionDescriptor> stage(const Slot& slot,
                                            BytesView payload);

  substrate::RegionId region() const { return region_; }
  std::size_t slot_bytes() const { return slot_bytes_; }
  std::size_t slots_total() const { return slots_total_; }
  std::size_t slots_free() const;

 private:
  substrate::IsolationSubstrate& substrate_;
  substrate::DomainId actor_;
  substrate::RegionId region_;
  std::size_t slot_bytes_;
  std::size_t slots_total_;
  // The free list is shared by every producer staging through this pool —
  // deferred Executor tasks run on worker threads, so lease bookkeeping
  // needs its own lock (the substrate stripe lock only covers stage()).
  mutable std::mutex mu_;
  std::vector<std::uint64_t> free_;  // free slot offsets (LIFO for locality)
  std::vector<bool> leased_;         // per-slot lease bit (double-free guard)
};

}  // namespace lateral::runtime
