// RegionPool — a region-backed staging buffer pool for the zero-copy path.
//
// The zero-copy contract (IsolationSubstrate::call_sg) needs payload bytes
// resident in a shared grant region before the descriptor crosses. A
// producer could region_write at ad-hoc offsets, but serving code wants the
// allocator question answered once: RegionPool carves one region into
// fixed-size slots, hands them out O(1) from a free list, and stages
// payloads with a single region_write (the path's one copy). Slots are
// returned either explicitly or by the BatchChannel integration when the
// matching completion is delivered — by then the consumer's handler has
// read the bytes in place, so reuse is safe.
//
// Sharding (FIG13): a pool serving a component sharded across cores is
// partitioned into per-shard arenas, each with its own free list and lock,
// so concurrent producers never bounce one free-list head between cores.
// On a multi-core machine slot offsets are additionally padded to a
// cache-line stride in the simulated cost model: two shards' slots never
// share a line, so the machine's contention penalty measures true sharing
// (two cores touching the same bytes), not allocator-induced false sharing.
// Single-core machines keep the dense pre-FIG13 layout, offset for offset.
//
// Crash recovery: the pool holds no epoch state of its own. Every stage()
// goes through the substrate's reference monitor, so after a revoke or a
// supervised restart (epoch bump) staging fails with Errc::stale_epoch and
// the owner re-wires through Assembly::region_between, exactly like a
// BatchChannel holder re-attaches after a fence.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "substrate/substrate.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::runtime {

class RegionPool {
 public:
  /// A lease on `bytes` bytes of the pool's region at `offset`. Only
  /// meaningful to the pool that issued it.
  struct Slot {
    std::uint64_t offset = 0;
    std::size_t bytes = 0;
  };

  /// Carve `region` (created and mapped beforehand — normally by the
  /// composer) into `shards` arenas of fixed-size slots. `region_size` is
  /// the region's total size. With one shard on a single-core machine the
  /// layout is dense: slot count = region_size / slot_bytes. On a
  /// multi-core machine slots are padded to the cost model's cache-line
  /// stride, so an arena too small for one padded slot yields no slots.
  RegionPool(substrate::IsolationSubstrate& substrate,
             substrate::DomainId actor, substrate::RegionId region,
             std::size_t region_size, std::size_t slot_bytes,
             std::size_t shards = 1);

  /// Lease a free slot; Errc::exhausted when every slot is in flight —
  /// the pool's backpressure, analogous to a full submission ring. Scans
  /// shards in order, so unsharded callers see the pre-FIG13 behaviour.
  Result<Slot> acquire();
  /// Lease from one shard only — the allocator half of shard routing (a
  /// producer pinned to core i leases from arena i and never touches
  /// another core's free list). Errc::exhausted when that arena is empty.
  Result<Slot> acquire(std::size_t shard);
  /// Return a slot to the free list of the shard that owns its offset.
  /// Releasing a slot that is already free (or was never issued by this
  /// pool) is ignored — a double release must not put the same offset in
  /// flight twice.
  void release(const Slot& slot);

  /// Stage `payload` into `slot` (one region_write) and mint a descriptor
  /// for exactly the staged bytes. Errc::invalid_argument when the payload
  /// exceeds the slot; substrate errors (stale_epoch after a restart,
  /// access_denied after a revoke) propagate untouched.
  Result<substrate::RegionDescriptor> stage(const Slot& slot,
                                            BytesView payload);

  substrate::RegionId region() const { return region_; }
  std::size_t slot_bytes() const { return slot_bytes_; }
  /// Slot offsets advance by this much: slot_bytes, padded to the cache
  /// line on multi-core machines (the false-sharing fix, see file header).
  std::size_t slot_stride() const { return stride_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t slots_total() const { return slots_total_; }
  std::size_t slots_free() const;
  std::size_t slots_free(std::size_t shard) const;

 private:
  /// One arena: a contiguous, cache-line-aligned span of the region with
  /// its own free list and lock (no cross-shard free-list bouncing).
  struct Shard {
    std::uint64_t base = 0;
    std::size_t slots = 0;
    // Each shard's bookkeeping has its own lock; deferred Executor tasks
    // run on worker threads, so lease bookkeeping cannot ride the substrate
    // stripe lock (which only covers stage()).
    mutable std::mutex mu;
    std::vector<std::uint64_t> free;  // free slot offsets (LIFO for locality)
    std::vector<bool> leased;         // per-slot lease bit (double-free guard)
  };

  substrate::IsolationSubstrate& substrate_;
  substrate::DomainId actor_;
  substrate::RegionId region_;
  std::size_t slot_bytes_;
  std::size_t stride_;
  std::uint64_t arena_span_ = 0;
  std::size_t slots_total_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lateral::runtime
