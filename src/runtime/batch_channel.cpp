#include "runtime/batch_channel.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace lateral::runtime {

BatchChannel::BatchChannel(substrate::IsolationSubstrate& substrate,
                           substrate::DomainId actor,
                           substrate::ChannelId channel,
                           BatchChannelConfig config)
    : substrate_(substrate),
      actor_(actor),
      channel_(channel),
      epoch_(substrate.channel_epoch(channel).value_or(0)),
      submissions_(config.depth),
      completions_(config.depth),
      counters_(config.hub ? config.hub->counters(config.label)
                           : MetricsHub::CounterRef(&own_counters_)) {}

BatchChannel::BatchChannel(const core::Endpoint& endpoint,
                           BatchChannelConfig config)
    : substrate_(*endpoint.substrate()),
      actor_(endpoint.actor()),
      channel_(endpoint.channel()),
      epoch_(endpoint.epoch()),
      submissions_(config.depth),
      completions_(config.depth),
      counters_(config.hub ? config.hub->counters(config.label)
                           : MetricsHub::CounterRef(&own_counters_)) {}

Result<SubmissionId> BatchChannel::enqueue(Pending pending) {
  pending.id = next_id_++;
  pending.submitted_at = substrate_.machine().now();
  if (const trace::TraceContext& cur = trace::current_context();
      substrate_.tracing_active() && cur.sampled()) {
    std::uint64_t total = pending.request.size();
    for (const substrate::RegionDescriptor& seg : pending.segments)
      total += seg.length;
    const std::uint32_t span = substrate_.tracer()->next_span();
    substrate_.stamp_span(actor_, cur, span, trace::SpanPhase::submit,
                          pending.request, total);
    pending.ctx = {cur.trace_id, span, cur.flags};
  }
  const SubmissionId id = pending.id;
  if (!submissions_.push(std::move(pending))) {
    ++counters_->rejected;
    // next_id_ already advanced; ids are opaque, gaps are fine.
    return Errc::exhausted;
  }
  live_.insert(id);
  ++counters_->submitted;
  counters_->record_depth(submissions_.size());
  return id;
}

Result<SubmissionId> BatchChannel::submit(BytesView request,
                                          SubmitOptions opts) {
  return submit(Bytes(request.begin(), request.end()), opts);
}

Result<SubmissionId> BatchChannel::submit(Bytes&& request, SubmitOptions opts) {
  Pending pending;
  pending.request = std::move(request);
  pending.deadline = opts.deadline;
  return enqueue(std::move(pending));
}

Result<SubmissionId> BatchChannel::submit_sg(
    BytesView header, std::vector<substrate::RegionDescriptor> segments,
    SubmitOptions opts) {
  if (segments.empty()) return Errc::invalid_argument;
  Pending pending;
  pending.request.assign(header.begin(), header.end());
  pending.segments = std::move(segments);
  pending.deadline = opts.deadline;
  return enqueue(std::move(pending));
}

Result<SubmissionId> BatchChannel::submit_staged(RegionPool& pool,
                                                 BytesView header,
                                                 BytesView payload,
                                                 SubmitOptions opts) {
  auto slot = pool.acquire();
  if (!slot) return slot.error();
  auto desc = pool.stage(*slot, payload);
  if (!desc) {
    pool.release(*slot);
    return desc.error();
  }
  Pending pending;
  pending.request.assign(header.begin(), header.end());
  pending.segments.push_back(*desc);
  pending.deadline = opts.deadline;
  pending.pool = &pool;
  pending.slot = *slot;
  auto id = enqueue(std::move(pending));
  if (!id) pool.release(*slot);  // ring full: the lease must not leak
  return id;
}

void BatchChannel::release_slot(Pending& pending) {
  if (!pending.pool) return;
  pending.pool->release(pending.slot);
  pending.pool = nullptr;
}

Status BatchChannel::cancel(SubmissionId id) {
  if (!live_.contains(id)) return Errc::invalid_argument;
  cancelled_.insert(id);
  return Status::success();
}

void BatchChannel::complete(Completion completion) {
  // Space was reserved up front in flush(), so this never fails.
  (void)completions_.push(std::move(completion));
}

void BatchChannel::finish_pending(Pending& pending,
                                  std::uint64_t InvocationCounters::* counter,
                                  std::optional<trace::SpanPhase> phase,
                                  Result<Bytes> result, Cycles latency) {
  {
    // One locked statement covers both counter updates.
    auto locked = counters_.operator->();
    InvocationCounters* c = locked.operator->();
    ++(c->*counter);
    if (latency > 0) c->record_latency(latency);
  }
  // Terminal without running: close the submit span in place (same span
  // id), so the ring shows submit -> cancelled/timed_out, never a dangling
  // submit. Invocations that ran get their dispatch/complete spans from the
  // substrate instead.
  if (phase && pending.ctx.sampled())
    substrate_.stamp_span(actor_, pending.ctx, pending.ctx.parent_span,
                          *phase, {}, 0);
  release_slot(pending);
  complete({pending.id, std::move(result), latency});
}

Status BatchChannel::flush() {
  const std::size_t queued = submissions_.size();
  if (queued == 0) return Status::success();
  // Reserve completion space for every queued invocation BEFORE popping
  // anything: refusing up front is what keeps backpressure lossless.
  if (completions_.capacity() - completions_.size() < queued)
    return Errc::exhausted;

  const Cycles now = substrate_.machine().now();
  std::vector<Pending> batch;
  batch.reserve(queued);
  while (auto pending = submissions_.pop()) {
    live_.erase(pending->id);
    if (cancelled_.erase(pending->id) > 0) {
      finish_pending(*pending, &InvocationCounters::cancelled,
                     trace::SpanPhase::cancelled, Errc::cancelled);
    } else if (pending->deadline != 0 && now > pending->deadline) {
      finish_pending(*pending, &InvocationCounters::timed_out,
                     trace::SpanPhase::timed_out, Errc::timed_out);
    } else {
      batch.push_back(std::move(*pending));
    }
  }
  if (batch.empty()) return Status::success();

  // Epoch fence: a supervised restart of the peer re-epochs the channel,
  // and everything queued here was addressed to the old incarnation. Fail
  // the whole batch fast with stale_epoch (lossless — every invocation
  // still gets its completion) so the holder re-attaches.
  Errc fence = Errc::ok;
  if (const auto epoch_now = substrate_.channel_epoch(channel_); !epoch_now)
    fence = epoch_now.error();
  else if (*epoch_now != epoch_)
    fence = Errc::stale_epoch;
  if (fence != Errc::ok) {
    for (Pending& pending : batch)
      finish_pending(pending, &InvocationCounters::completed, std::nullopt,
                     fence);
    return Status::success();
  }

  // One TraceContext represents the whole flush (the crossing is singular
  // even when the batch is not): the first traced submission's. Installing
  // it as the thread's context is what hands it to the substrate, which
  // then mints per-request dispatch/complete spans under it.
  const Pending* first_traced = nullptr;
  for (const Pending& pending : batch)
    if (pending.ctx.sampled()) {
      first_traced = &pending;
      break;
    }
  std::optional<trace::TraceScope> trace_scope;
  if (substrate_.tracing_active() && first_traced) {
    substrate_.stamp_span(actor_, first_traced->ctx,
                          substrate_.tracer()->next_span(),
                          trace::SpanPhase::flush, {}, batch.size());
    trace_scope.emplace(first_traced->ctx);
  }

  // Mixed batches ride the scatter-gather engine: an inline entry becomes
  // an SgRequest with no segments, which crosses at exactly the same cost
  // as it would on call_batch. A pure-inline batch keeps the plain path
  // (and its moved-buffer zero-recopy property).
  const bool has_sg = std::any_of(
      batch.begin(), batch.end(),
      [](const Pending& pending) { return !pending.segments.empty(); });

  Result<substrate::BatchReply> reply = Errc::would_block;  // placeholder
  // Per-entry size of the sync-equivalent *copy* message: inline bytes, or
  // header + the payload bytes the descriptors name. This is the honest
  // baseline the amortization/zero-copy savings are measured against.
  std::vector<std::size_t> sync_sizes(batch.size(), 0);

  if (!has_sg) {
    std::vector<Bytes> requests;
    requests.reserve(batch.size());
    for (Pending& pending : batch)
      requests.push_back(std::move(pending.request));
    for (std::size_t i = 0; i < batch.size(); ++i)
      sync_sizes[i] = requests[i].size();
    reply = substrate_.call_batch(actor_, channel_, requests);
  } else {
    std::vector<substrate::SgRequest> requests;
    requests.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Pending& pending = batch[i];
      std::size_t payload = 0;
      for (const substrate::RegionDescriptor& seg : pending.segments)
        payload += seg.length;
      sync_sizes[i] = pending.request.size() + payload;
      counters_->zero_copy_bytes += payload;
      substrate::SgRequest request;
      request.header = std::move(pending.request);
      request.segments = std::move(pending.segments);
      requests.push_back(std::move(request));
    }
    reply = substrate_.call_batch_sg(actor_, channel_, requests);
  }
  counters_->record_batch(batch.size());
  if (!reply) {
    // Batch-level refusal (no handler, revoked channel, ...): every
    // invocation gets the refusal as its completion — delivered, not lost.
    for (Pending& pending : batch)
      finish_pending(pending, &InvocationCounters::completed, std::nullopt,
                     reply.error());
    return Status::success();
  }

  // Cycle accounting: what would the same calls have cost one-at-a-time,
  // with every payload byte copied?
  Cycles sync_equivalent = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Result<Bytes>& r = reply->replies[i];
    sync_equivalent += substrate_.message_cost(sync_sizes[i]) +
                       substrate_.message_cost(r.ok() ? r->size() : 0);
  }
  counters_->sync_equivalent_cycles += sync_equivalent;
  counters_->crossing_cycles += reply->crossing_cycles;

  const Cycles after = substrate_.machine().now();
  for (std::size_t i = 0; i < batch.size(); ++i)
    finish_pending(batch[i], &InvocationCounters::completed, std::nullopt,
                   std::move(reply->replies[i]), after - batch[i].submitted_at);
  return Status::success();
}

Result<Completion> BatchChannel::next_completion() {
  if (!stashed_.empty()) {
    auto it = stashed_.begin();
    Completion out{it->first, std::move(it->second)};
    stashed_.erase(it);
    return out;
  }
  if (auto completion = completions_.pop()) return std::move(*completion);
  return Errc::would_block;
}

Result<Bytes> BatchChannel::wait(SubmissionId id) {
  if (const auto it = stashed_.find(id); it != stashed_.end()) {
    Result<Bytes> out = std::move(it->second);
    stashed_.erase(it);
    return out;
  }
  if (live_.contains(id)) {
    if (const Status s = flush(); !s.ok()) return s.error();
  }
  while (auto completion = completions_.pop()) {
    if (completion->id == id) return std::move(completion->result);
    stashed_.emplace(completion->id, std::move(completion->result));
  }
  return Errc::invalid_argument;  // id never submitted here or already taken
}

}  // namespace lateral::runtime
