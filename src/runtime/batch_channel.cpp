#include "runtime/batch_channel.h"

#include <vector>

namespace lateral::runtime {

BatchChannel::BatchChannel(substrate::IsolationSubstrate& substrate,
                           substrate::DomainId actor,
                           substrate::ChannelId channel,
                           BatchChannelConfig config)
    : substrate_(substrate),
      actor_(actor),
      channel_(channel),
      epoch_(substrate.channel_epoch(channel).value_or(0)),
      submissions_(config.depth),
      completions_(config.depth),
      counters_(config.hub ? &config.hub->counters(config.label)
                           : &own_counters_) {}

BatchChannel::BatchChannel(const core::Endpoint& endpoint,
                           BatchChannelConfig config)
    : substrate_(*endpoint.substrate()),
      actor_(endpoint.actor()),
      channel_(endpoint.channel()),
      epoch_(endpoint.epoch()),
      submissions_(config.depth),
      completions_(config.depth),
      counters_(config.hub ? &config.hub->counters(config.label)
                           : &own_counters_) {}

Result<SubmissionId> BatchChannel::submit(BytesView request,
                                          SubmitOptions opts) {
  const SubmissionId id = next_id_++;
  Pending pending;
  pending.id = id;
  pending.request.assign(request.begin(), request.end());
  pending.deadline = opts.deadline;
  if (!submissions_.push(std::move(pending))) {
    ++counters_->rejected;
    return Errc::exhausted;
  }
  live_.insert(id);
  ++counters_->submitted;
  counters_->record_depth(submissions_.size());
  return id;
}

Status BatchChannel::cancel(SubmissionId id) {
  if (!live_.contains(id)) return Errc::invalid_argument;
  cancelled_.insert(id);
  return Status::success();
}

void BatchChannel::complete(Completion completion) {
  // Space was reserved up front in flush(), so this never fails.
  (void)completions_.push(std::move(completion));
}

Status BatchChannel::flush() {
  const std::size_t queued = submissions_.size();
  if (queued == 0) return Status::success();
  // Reserve completion space for every queued invocation BEFORE popping
  // anything: refusing up front is what keeps backpressure lossless.
  if (completions_.capacity() - completions_.size() < queued)
    return Errc::exhausted;

  const Cycles now = substrate_.machine().now();
  std::vector<Pending> batch;
  batch.reserve(queued);
  while (auto pending = submissions_.pop()) {
    live_.erase(pending->id);
    if (cancelled_.erase(pending->id) > 0) {
      ++counters_->cancelled;
      complete({pending->id, Errc::cancelled});
    } else if (pending->deadline != 0 && now > pending->deadline) {
      ++counters_->timed_out;
      complete({pending->id, Errc::timed_out});
    } else {
      batch.push_back(std::move(*pending));
    }
  }
  if (batch.empty()) return Status::success();

  // Epoch fence: a supervised restart of the peer re-epochs the channel,
  // and everything queued here was addressed to the old incarnation. Fail
  // the whole batch fast with stale_epoch (lossless — every invocation
  // still gets its completion) so the holder re-attaches.
  Errc fence = Errc::ok;
  if (const auto epoch_now = substrate_.channel_epoch(channel_); !epoch_now)
    fence = epoch_now.error();
  else if (*epoch_now != epoch_)
    fence = Errc::stale_epoch;
  if (fence != Errc::ok) {
    for (const Pending& pending : batch) {
      ++counters_->completed;
      complete({pending.id, fence});
    }
    return Status::success();
  }

  std::vector<Bytes> requests;
  requests.reserve(batch.size());
  for (Pending& pending : batch) requests.push_back(std::move(pending.request));

  auto reply = substrate_.call_batch(actor_, channel_, requests);
  counters_->record_batch(batch.size());
  if (!reply) {
    // Batch-level refusal (no handler, revoked channel, ...): every
    // invocation gets the refusal as its completion — delivered, not lost.
    for (const Pending& pending : batch) {
      ++counters_->completed;
      complete({pending.id, reply.error()});
    }
    return Status::success();
  }

  // Cycle accounting: what would the same calls have cost one-at-a-time?
  Cycles sync_equivalent = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Result<Bytes>& r = reply->replies[i];
    sync_equivalent += substrate_.message_cost(requests[i].size()) +
                       substrate_.message_cost(r.ok() ? r->size() : 0);
  }
  counters_->sync_equivalent_cycles += sync_equivalent;
  counters_->crossing_cycles += reply->crossing_cycles;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    ++counters_->completed;
    complete({batch[i].id, std::move(reply->replies[i])});
  }
  return Status::success();
}

Result<Completion> BatchChannel::next_completion() {
  if (!stashed_.empty()) {
    auto it = stashed_.begin();
    Completion out{it->first, std::move(it->second)};
    stashed_.erase(it);
    return out;
  }
  if (auto completion = completions_.pop()) return std::move(*completion);
  return Errc::would_block;
}

Result<Bytes> BatchChannel::wait(SubmissionId id) {
  if (const auto it = stashed_.find(id); it != stashed_.end()) {
    Result<Bytes> out = std::move(it->second);
    stashed_.erase(it);
    return out;
  }
  if (live_.contains(id)) {
    if (const Status s = flush(); !s.ok()) return s.error();
  }
  while (auto completion = completions_.pop()) {
    if (completion->id == id) return std::move(completion->result);
    stashed_.emplace(completion->id, std::move(completion->result));
  }
  return Errc::invalid_argument;  // id never submitted here or already taken
}

}  // namespace lateral::runtime
