// Runtime metrics — the observability half of the batching contract.
//
// Every BatchChannel / Executor accounts each accepted invocation to
// exactly one terminal counter (completed, cancelled, timed_out), and each
// refused one to `rejected`. That makes lossless backpressure *checkable*:
//   submitted == completed + cancelled + timed_out + in_flight()
// holds at every instant, and tests assert it under sustained overload.
//
// Cycle accounting: `sync_equivalent_cycles` is what the same invocations
// would have cost as one-at-a-time synchronous calls (per-message
// message_cost, both directions); `crossing_cycles` is what the batched
// path actually charged. The difference is the amortization the runtime
// exists to deliver, and bench_fig9 reports it per substrate.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace lateral::runtime {

/// One stats block flattened to (snake_case name, value) pairs — the single
/// registration point every exporter renders from. Each *Stats struct
/// exposes `fields()` returning this; adding a counter there is all it
/// takes to appear in text snapshots and dump_observability.
using MetricFields = std::vector<std::pair<std::string, std::uint64_t>>;

struct InvocationCounters {
  // --- Invocation lifecycle (lossless accounting) ---
  std::uint64_t submitted = 0;   // accepted into a queue
  std::uint64_t completed = 0;   // handler ran; reply (or refusal) delivered
  std::uint64_t rejected = 0;    // refused at submit: queue full
  std::uint64_t cancelled = 0;   // withdrawn before running
  std::uint64_t timed_out = 0;   // deadline expired before running

  // --- Batching shape ---
  std::uint64_t batches = 0;          // boundary crossings (flushes)
  std::uint64_t queue_depth_hwm = 0;  // submission-queue high-water mark
  /// batch_size_histogram[i] counts batches of size in [2^i, 2^(i+1)).
  std::array<std::uint64_t, 12> batch_size_histogram{};

  // --- Completion-queue shape (lateral::cq) ---
  /// Coalesced ring crossings: one doorbell flushes the submission ring AND
  /// drains the completion ring for a single crossing charge.
  std::uint64_t doorbells = 0;
  /// The adaptive controller's current batch-depth target (a gauge, not a
  /// counter: the last exported value), plus its decision counters. A fixed
  /// (non-adaptive) queue exports its configured depth and zero decisions.
  std::uint64_t adaptive_depth = 0;
  std::uint64_t adaptive_grows = 0;    // depth doublings (throughput mode)
  std::uint64_t adaptive_shrinks = 0;  // depth halvings (latency mode)

  // --- Cycle accounting ---
  Cycles sync_equivalent_cycles = 0;  // cost had every call gone sync
  Cycles crossing_cycles = 0;         // cost the batched path paid

  // --- Zero-copy data plane ---
  /// Payload bytes that crossed by descriptor (scatter-gather) instead of
  /// being copied; the FIG11 bench and capacity planning read this.
  std::uint64_t zero_copy_bytes = 0;

  // --- Per-invocation latency (submit -> complete, simulated cycles) ---
  // Aggregate amortization (cycles_saved) hides the tail: a request that
  // waited a whole flush window paid for the batch's win. The histogram
  // makes p50/p99 derivable, and bench_fig9 reports both.
  Cycles latency_total_cycles = 0;
  std::uint64_t latency_count = 0;
  /// latency_histogram[i] counts invocations whose submit->complete span
  /// was in [2^i, 2^(i+1)) cycles (same bucketing as mttr_histogram).
  std::array<std::uint64_t, 32> latency_histogram{};

  /// Invocations accepted but not yet terminal (must equal live queue
  /// occupancy — the losslessness invariant).
  std::uint64_t in_flight() const {
    return submitted - completed - cancelled - timed_out;
  }

  /// Boundary-crossing cycles amortized away relative to the sync path.
  Cycles cycles_saved() const {
    return sync_equivalent_cycles > crossing_cycles
               ? sync_equivalent_cycles - crossing_cycles
               : 0;
  }

  void record_batch(std::size_t batch_size) {
    ++batches;
    std::size_t bucket = 0;
    while ((std::size_t{2} << bucket) <= batch_size &&
           bucket + 1 < batch_size_histogram.size())
      ++bucket;
    ++batch_size_histogram[bucket];
  }

  void record_depth(std::size_t depth) {
    if (depth > queue_depth_hwm) queue_depth_hwm = depth;
  }

  void record_latency(Cycles submit_to_complete) {
    latency_total_cycles += submit_to_complete;
    ++latency_count;
    std::size_t bucket = 0;
    while ((Cycles{2} << bucket) <= submit_to_complete &&
           bucket + 1 < latency_histogram.size())
      ++bucket;
    ++latency_histogram[bucket];
  }

  Cycles mean_latency_cycles() const {
    return latency_count == 0 ? 0 : latency_total_cycles / latency_count;
  }

  /// Upper bound of the histogram bucket holding the p-th percentile
  /// (p in [0, 1]), i.e. a conservative p50/p99 estimate from log2 buckets.
  Cycles latency_percentile(double p) const {
    if (latency_count == 0) return 0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    const std::uint64_t rank =
        static_cast<std::uint64_t>(p * static_cast<double>(latency_count - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < latency_histogram.size(); ++i) {
      seen += latency_histogram[i];
      if (seen > rank) return (Cycles{2} << i) - 1;
    }
    return latency_total_cycles;  // unreachable with consistent counters
  }

  MetricFields fields() const {
    return {{"submitted", submitted},
            {"completed", completed},
            {"rejected", rejected},
            {"cancelled", cancelled},
            {"timed_out", timed_out},
            {"in_flight", in_flight()},
            {"batches", batches},
            {"queue_depth_hwm", queue_depth_hwm},
            {"doorbells", doorbells},
            {"adaptive_depth", adaptive_depth},
            {"crossing_cycles", crossing_cycles},
            {"cycles_saved", cycles_saved()},
            {"zero_copy_bytes", zero_copy_bytes},
            {"mean_latency_cycles", mean_latency_cycles()},
            {"p99_latency_cycles", latency_percentile(0.99)}};
  }
};

/// Crash-recovery observability (lateral::supervisor). Same philosophy as
/// InvocationCounters: every detected death reaches exactly one terminal
/// outcome — restarted, or escalated after the budget ran out — and MTTR is
/// recorded per recovery so the fig10 bench can tabulate it.
struct RecoveryStats {
  std::uint64_t kills_detected = 0;   // heartbeat said: dead
  std::uint64_t restarts = 0;         // successful relaunches
  std::uint64_t restart_failures = 0; // relaunch attempts that failed
  std::uint64_t escalations = 0;      // budget exhausted -> degraded/halted
  std::uint64_t probe_cycles = 0;     // supervisor ticks that probed anyone
  /// Restarts that were update reverts: the new image failed probation and
  /// the supervisor relaunched the previous slot. Counted here (not only in
  /// UpdateStats) so flap-damping is auditable — a component revert-looping
  /// burns its restart budget and must hit the escalation cap.
  std::uint64_t update_reverts = 0;

  // --- Mean-time-to-recovery, in simulated cycles ---
  Cycles mttr_total_cycles = 0;  // sum over recoveries (detection -> serving)
  /// mttr_histogram[i] counts recoveries with MTTR in [2^i, 2^(i+1)) cycles.
  std::array<std::uint64_t, 32> mttr_histogram{};

  void record_recovery(Cycles mttr) {
    ++restarts;
    mttr_total_cycles += mttr;
    std::size_t bucket = 0;
    while ((Cycles{2} << bucket) <= mttr && bucket + 1 < mttr_histogram.size())
      ++bucket;
    ++mttr_histogram[bucket];
  }

  Cycles mean_mttr_cycles() const {
    return restarts == 0 ? 0 : mttr_total_cycles / restarts;
  }

  MetricFields fields() const {
    return {{"kills_detected", kills_detected},
            {"restarts", restarts},
            {"restart_failures", restart_failures},
            {"escalations", escalations},
            {"update_reverts", update_reverts},
            {"probe_cycles", probe_cycles},
            {"mean_mttr_cycles", mean_mttr_cycles()}};
  }
};

/// Fleet connectivity observability (lateral::fleet). The full/resumed
/// split is the subsystem's whole value proposition made measurable: every
/// accepted connection lands in exactly one of handshakes_full /
/// handshakes_resumed, every refused ticket in tickets_rejected (which then
/// falls back to a full handshake — the terminal counters still balance),
/// and admission_shed counts requests refused at the edge so overload is
/// visible as shedding, never as silent loss.
struct FleetStats {
  std::uint64_t handshakes_full = 0;     // three-message quote exchanges
  std::uint64_t handshakes_resumed = 0;  // one-RTT ticket resumptions
  std::uint64_t tickets_issued = 0;      // resumption tickets minted
  std::uint64_t tickets_rejected = 0;    // expired/replayed/unsealable/wrong id
  std::uint64_t admission_shed = 0;      // requests refused by the token bucket
  std::uint64_t verify_cache_hits = 0;   // quote verifications skipped
  std::uint64_t verify_cache_misses = 0; // full verifications performed
  std::uint64_t scrapes = 0;             // metrics snapshots served (sealed)
  std::uint64_t audit_pulls = 0;         // audit segments served (sealed)

  MetricFields fields() const {
    return {{"handshakes_full", handshakes_full},
            {"handshakes_resumed", handshakes_resumed},
            {"tickets_issued", tickets_issued},
            {"tickets_rejected", tickets_rejected},
            {"admission_shed", admission_shed},
            {"verify_cache_hits", verify_cache_hits},
            {"verify_cache_misses", verify_cache_misses},
            {"scrapes", scrapes},
            {"audit_pulls", audit_pulls}};
  }
};

/// Over-the-air update observability (lateral::update). Every accepted
/// UpdateManifest reaches exactly one terminal outcome — committed or
/// reverted — and every refused one exactly one refusal counter, so "did
/// the fleet converge" is a counter equation, not a log grep. Latency is
/// recorded per update (manifest accepted -> committed) and per revert
/// (probation failure detected -> old slot serving), mirroring
/// RecoveryStats::record_recovery so benches tabulate both the same way.
struct UpdateStats {
  std::uint64_t staged = 0;             // images fully transferred to a slot
  std::uint64_t verified = 0;           // staged images that passed all checks
  std::uint64_t committed = 0;          // probation survived; counter bumped
  std::uint64_t reverted = 0;           // probation failed; old slot restored
  std::uint64_t signature_refused = 0;  // manifest signature did not verify
  std::uint64_t rollback_refused = 0;   // version <= NV counter (replay)
  std::uint64_t image_refused = 0;      // staged bytes hash != manifest hash
  std::uint64_t bytes_streamed = 0;     // image bytes staged over the plane

  // --- Update latency (accept -> committed), simulated cycles ---
  Cycles update_total_cycles = 0;
  std::array<std::uint64_t, 32> update_histogram{};
  // --- Revert MTTR (failure detected -> old image serving), cycles ---
  Cycles revert_total_cycles = 0;
  std::array<std::uint64_t, 32> revert_histogram{};

  void record_commit(Cycles accept_to_commit) {
    ++committed;
    update_total_cycles += accept_to_commit;
    std::size_t bucket = 0;
    while ((Cycles{2} << bucket) <= accept_to_commit &&
           bucket + 1 < update_histogram.size())
      ++bucket;
    ++update_histogram[bucket];
  }

  void record_revert(Cycles detect_to_serving) {
    ++reverted;
    revert_total_cycles += detect_to_serving;
    std::size_t bucket = 0;
    while ((Cycles{2} << bucket) <= detect_to_serving &&
           bucket + 1 < revert_histogram.size())
      ++bucket;
    ++revert_histogram[bucket];
  }

  Cycles mean_update_cycles() const {
    return committed == 0 ? 0 : update_total_cycles / committed;
  }
  Cycles mean_revert_cycles() const {
    return reverted == 0 ? 0 : revert_total_cycles / reverted;
  }

  MetricFields fields() const {
    return {{"staged", staged},
            {"verified", verified},
            {"committed", committed},
            {"reverted", reverted},
            {"signature_refused", signature_refused},
            {"rollback_refused", rollback_refused},
            {"image_refused", image_refused},
            {"bytes_streamed", bytes_streamed},
            {"mean_update_cycles", mean_update_cycles()},
            {"mean_revert_cycles", mean_revert_cycles()}};
  }
};

/// Multi-core scheduling observability (FIG13). Published per label by the
/// Executor (steals/migrations + per-core run-queue depth gauges) and by
/// whoever drives a microkernel Scheduler (ipi_kicks), plus the machine's
/// contention counter and the substrate's serialization-gate stalls — the
/// four signals that attribute a flattened scaling curve: work moved
/// (migrations), work bounced (contention), work queued behind the
/// architecture (serial_stalls).
struct SchedStats {
  std::uint64_t steals = 0;       // domain queues taken by an idle worker
  std::uint64_t migrations = 0;   // domains that changed home core/worker
  std::uint64_t ipi_kicks = 0;    // cross-core kicks those moves sent
  std::uint64_t contention_events = 0;  // shared-bus/cache penalties charged
  std::uint64_t serial_stalls = 0;      // crossings queued at a serial gate
  Cycles serial_stall_cycles = 0;       // cycles spent in those queues
  /// Current run-queue depth per core (a gauge: last published value).
  std::vector<std::uint64_t> run_queue_depth;

  MetricFields fields() const {
    MetricFields out{{"steals", steals},
                     {"migrations", migrations},
                     {"ipi_kicks", ipi_kicks},
                     {"contention_events", contention_events},
                     {"serial_stalls", serial_stalls},
                     {"serial_stall_cycles", serial_stall_cycles}};
    for (std::size_t core = 0; core < run_queue_depth.size(); ++core)
      out.emplace_back("run_queue_depth_core" + std::to_string(core),
                       run_queue_depth[core]);
    return out;
  }
};

/// Health-plane observability (lateral::health, FIG16). Every watchdog
/// tick bumps evaluations; a confirmed multi-window breach lands in exactly
/// one of p99_breaches / error_breaches, and escalations counts the ones
/// that crossed into the supervisor's restart machinery. Detection latency
/// (first bad sample -> confirmed breach, simulated cycles) is recorded per
/// breach so bench_fig16 can tabulate it like MTTR.
struct HealthStats {
  std::uint64_t evaluations = 0;     // watchdog ticks that checked anyone
  std::uint64_t p99_breaches = 0;    // confirmed tail-latency breaches
  std::uint64_t error_breaches = 0;  // confirmed error-rate breaches
  std::uint64_t escalations = 0;     // breaches escalated to a restart
  Cycles detect_total_cycles = 0;    // sum over breaches (onset -> confirm)
  std::uint64_t detect_count = 0;

  void record_detection(Cycles onset_to_confirm) {
    detect_total_cycles += onset_to_confirm;
    ++detect_count;
  }

  Cycles mean_detect_cycles() const {
    return detect_count == 0 ? 0 : detect_total_cycles / detect_count;
  }

  MetricFields fields() const {
    return {{"evaluations", evaluations},
            {"p99_breaches", p99_breaches},
            {"error_breaches", error_breaches},
            {"escalations", escalations},
            {"mean_detect_cycles", mean_detect_cycles()}};
  }
};

/// Aggregates counters per domain label ("mail.ui->imap", "fig9.sgx", ...).
/// Channels configured with the same hub+label share one counter block, so
/// a component's traffic is queryable in one place regardless of how many
/// queue pairs it opens.
///
/// Thread-safety: the label map is guarded by an internal mutex, and every
/// counter block lives in a Slot pairing it with its own mutex.
/// counters()/recovery() hand back a Ref — a locking pointer whose
/// operator-> holds the slot lock for the enclosing full expression — so a
/// channel incrementing its block on one thread and a reporter copying via
/// all()/snapshot() on another never race on the fields either. Refs stay
/// valid for the hub's lifetime (std::map node stability). The slot lock
/// is a leaf: no Ref access ever takes another lock underneath it.
class MetricsHub {
 public:
  /// One label's block plus the lock that makes field access safe.
  /// `mu` is mutable so const traversals (all()) can still lock to copy.
  template <typename T>
  struct Slot {
    mutable std::mutex mu;
    T value;
  };

  /// Expression-scoped locked view of a Slot (what Ref::operator-> yields;
  /// the temporary's lifetime — and thus the lock — spans the statement).
  template <typename T>
  class Locked {
   public:
    explicit Locked(const Slot<T>& slot)
        : lock_(slot.mu), value_(const_cast<T*>(&slot.value)) {}
    T* operator->() const { return value_; }

   private:
    std::unique_lock<std::mutex> lock_;
    T* const value_;
  };

  /// Locking pointer to one label's block: `ref->submitted++` locks the
  /// slot for that statement; snapshot() returns a consistent copy.
  /// Copyable, and valid as long as the owning hub (or Slot) lives.
  template <typename T>
  class Ref {
   public:
    Ref() = default;
    explicit Ref(Slot<T>* slot) : slot_(slot) {}
    Locked<T> operator->() const { return Locked<T>(*slot_); }
    T snapshot() const {
      std::lock_guard<std::mutex> lock(slot_->mu);
      return slot_->value;
    }
    explicit operator bool() const { return slot_ != nullptr; }

   private:
    Slot<T>* slot_ = nullptr;
  };

  using CounterSlot = Slot<InvocationCounters>;
  using CounterRef = Ref<InvocationCounters>;
  using RecoverySlot = Slot<RecoveryStats>;
  using RecoveryRef = Ref<RecoveryStats>;

  CounterRef counters(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    return CounterRef(&counters_[label]);  // std::map: nodes stay stable
  }

  std::map<std::string, InvocationCounters> all() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, InvocationCounters> out;
    for (const auto& [label, slot] : counters_) {
      std::lock_guard<std::mutex> slot_lock(slot.mu);
      out.emplace(label, slot.value);
    }
    return out;
  }

  RecoveryRef recovery(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    return RecoveryRef(&recovery_[label]);
  }

  std::map<std::string, RecoveryStats> all_recovery() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, RecoveryStats> out;
    for (const auto& [label, slot] : recovery_) {
      std::lock_guard<std::mutex> slot_lock(slot.mu);
      out.emplace(label, slot.value);
    }
    return out;
  }

  using FleetSlot = Slot<FleetStats>;
  using FleetRef = Ref<FleetStats>;

  FleetRef fleet(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    return FleetRef(&fleet_[label]);
  }

  std::map<std::string, FleetStats> all_fleet() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, FleetStats> out;
    for (const auto& [label, slot] : fleet_) {
      std::lock_guard<std::mutex> slot_lock(slot.mu);
      out.emplace(label, slot.value);
    }
    return out;
  }

  using UpdateSlot = Slot<UpdateStats>;
  using UpdateRef = Ref<UpdateStats>;

  UpdateRef update(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    return UpdateRef(&update_[label]);
  }

  std::map<std::string, UpdateStats> all_update() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, UpdateStats> out;
    for (const auto& [label, slot] : update_) {
      std::lock_guard<std::mutex> slot_lock(slot.mu);
      out.emplace(label, slot.value);
    }
    return out;
  }

  using SchedSlot = Slot<SchedStats>;
  using SchedRef = Ref<SchedStats>;

  SchedRef sched(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    return SchedRef(&sched_[label]);
  }

  std::map<std::string, SchedStats> all_sched() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, SchedStats> out;
    for (const auto& [label, slot] : sched_) {
      std::lock_guard<std::mutex> slot_lock(slot.mu);
      out.emplace(label, slot.value);
    }
    return out;
  }

  using HealthSlot = Slot<HealthStats>;
  using HealthRef = Ref<HealthStats>;

  HealthRef health(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    return HealthRef(&health_[label]);
  }

  std::map<std::string, HealthStats> all_health() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, HealthStats> out;
    for (const auto& [label, slot] : health_) {
      std::lock_guard<std::mutex> slot_lock(slot.mu);
      out.emplace(label, slot.value);
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, CounterSlot> counters_;
  std::map<std::string, RecoverySlot> recovery_;
  std::map<std::string, FleetSlot> fleet_;
  std::map<std::string, UpdateSlot> update_;
  std::map<std::string, SchedSlot> sched_;
  std::map<std::string, HealthSlot> health_;
};

}  // namespace lateral::runtime
