// Runtime metrics — the observability half of the batching contract.
//
// Every BatchChannel / Executor accounts each accepted invocation to
// exactly one terminal counter (completed, cancelled, timed_out), and each
// refused one to `rejected`. That makes lossless backpressure *checkable*:
//   submitted == completed + cancelled + timed_out + in_flight()
// holds at every instant, and tests assert it under sustained overload.
//
// Cycle accounting: `sync_equivalent_cycles` is what the same invocations
// would have cost as one-at-a-time synchronous calls (per-message
// message_cost, both directions); `crossing_cycles` is what the batched
// path actually charged. The difference is the amortization the runtime
// exists to deliver, and bench_fig9 reports it per substrate.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "util/types.h"

namespace lateral::runtime {

struct InvocationCounters {
  // --- Invocation lifecycle (lossless accounting) ---
  std::uint64_t submitted = 0;   // accepted into a queue
  std::uint64_t completed = 0;   // handler ran; reply (or refusal) delivered
  std::uint64_t rejected = 0;    // refused at submit: queue full
  std::uint64_t cancelled = 0;   // withdrawn before running
  std::uint64_t timed_out = 0;   // deadline expired before running

  // --- Batching shape ---
  std::uint64_t batches = 0;          // boundary crossings (flushes)
  std::uint64_t queue_depth_hwm = 0;  // submission-queue high-water mark
  /// batch_size_histogram[i] counts batches of size in [2^i, 2^(i+1)).
  std::array<std::uint64_t, 12> batch_size_histogram{};

  // --- Cycle accounting ---
  Cycles sync_equivalent_cycles = 0;  // cost had every call gone sync
  Cycles crossing_cycles = 0;         // cost the batched path paid

  // --- Zero-copy data plane ---
  /// Payload bytes that crossed by descriptor (scatter-gather) instead of
  /// being copied; the FIG11 bench and capacity planning read this.
  std::uint64_t zero_copy_bytes = 0;

  /// Invocations accepted but not yet terminal (must equal live queue
  /// occupancy — the losslessness invariant).
  std::uint64_t in_flight() const {
    return submitted - completed - cancelled - timed_out;
  }

  /// Boundary-crossing cycles amortized away relative to the sync path.
  Cycles cycles_saved() const {
    return sync_equivalent_cycles > crossing_cycles
               ? sync_equivalent_cycles - crossing_cycles
               : 0;
  }

  void record_batch(std::size_t batch_size) {
    ++batches;
    std::size_t bucket = 0;
    while ((std::size_t{2} << bucket) <= batch_size &&
           bucket + 1 < batch_size_histogram.size())
      ++bucket;
    ++batch_size_histogram[bucket];
  }

  void record_depth(std::size_t depth) {
    if (depth > queue_depth_hwm) queue_depth_hwm = depth;
  }
};

/// Crash-recovery observability (lateral::supervisor). Same philosophy as
/// InvocationCounters: every detected death reaches exactly one terminal
/// outcome — restarted, or escalated after the budget ran out — and MTTR is
/// recorded per recovery so the fig10 bench can tabulate it.
struct RecoveryStats {
  std::uint64_t kills_detected = 0;   // heartbeat said: dead
  std::uint64_t restarts = 0;         // successful relaunches
  std::uint64_t restart_failures = 0; // relaunch attempts that failed
  std::uint64_t escalations = 0;      // budget exhausted -> degraded/halted
  std::uint64_t probe_cycles = 0;     // supervisor ticks that probed anyone

  // --- Mean-time-to-recovery, in simulated cycles ---
  Cycles mttr_total_cycles = 0;  // sum over recoveries (detection -> serving)
  /// mttr_histogram[i] counts recoveries with MTTR in [2^i, 2^(i+1)) cycles.
  std::array<std::uint64_t, 32> mttr_histogram{};

  void record_recovery(Cycles mttr) {
    ++restarts;
    mttr_total_cycles += mttr;
    std::size_t bucket = 0;
    while ((Cycles{2} << bucket) <= mttr && bucket + 1 < mttr_histogram.size())
      ++bucket;
    ++mttr_histogram[bucket];
  }

  Cycles mean_mttr_cycles() const {
    return restarts == 0 ? 0 : mttr_total_cycles / restarts;
  }
};

/// Aggregates counters per domain label ("mail.ui->imap", "fig9.sgx", ...).
/// Channels configured with the same hub+label share one counter block, so
/// a component's traffic is queryable in one place regardless of how many
/// queue pairs it opens.
class MetricsHub {
 public:
  InvocationCounters& counters(const std::string& label) {
    return counters_[label];  // std::map: references stay stable
  }

  const std::map<std::string, InvocationCounters>& all() const {
    return counters_;
  }

  RecoveryStats& recovery(const std::string& label) {
    return recovery_[label];
  }

  const std::map<std::string, RecoveryStats>& all_recovery() const {
    return recovery_;
  }

 private:
  std::map<std::string, InvocationCounters> counters_;
  std::map<std::string, RecoveryStats> recovery_;
};

}  // namespace lateral::runtime
