// Pipelined remote invocation over a SecureChannel — the network face of
// the batching runtime.
//
// net::RemoteProxy pays one network round trip per call. At serving scale
// the round trip dominates, so AsyncRemoteProxy pipelines: submit() queues
// invocations locally, flush() seals them into consecutive records (the
// channel's strict sequence ordering is why sealing happens at flush time:
// a sealed-but-withdrawn record would punch a hole in the peer's sequence
// window) and ships the whole burst in one transport exchange.
// AsyncRemoteDispatcher opens each record, dispatches, and returns one
// sealed reply record per request. Replies are matched to submissions by
// an explicit request id carried inside the authenticated plaintext, so
// completion order never depends on transport framing.
//
// Everything the channel guarantees — peer code identity, confidentiality,
// integrity, ordering, replay protection — covers the whole pipeline, and
// the usual runtime contract (bounded depth, Errc-surfaced backpressure,
// cancellation before flush, lossless accounting) applies.
//
// Wire formats (inside AEAD records):
//   request: [u32 request_id | 16B trace ctx | u16 method_len | method |
//             payload]
//   reply:   [u32 request_id | u8 errc | payload (when errc == ok)]
//
// The 16-byte TraceContext travels inside the authenticated plaintext —
// a remote trace id is integrity-protected exactly like the request id —
// and is re-installed (as a TraceScope) around the dispatcher's method, so
// crossings the method makes on the server chain under the client's trace.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/secure_channel.h"
#include "runtime/completion_queue.h"
#include "runtime/metrics.h"
#include "trace/trace.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::runtime {

using RequestId = std::uint32_t;

/// Server side: unseals a burst of request records, dispatches each to the
/// registered method, and seals one reply record per request.
class AsyncRemoteDispatcher {
 public:
  using Method = std::function<Result<Bytes>(BytesView request)>;

  explicit AsyncRemoteDispatcher(net::SecureChannelEndpoint& channel);

  Status register_method(const std::string& name, Method handler);

  /// Process one pipelined burst. A record that fails channel
  /// authentication fails the whole burst with verification_failed (the
  /// sequence window is broken; the caller should drop the connection).
  /// Method-level problems (unknown method, malformed request, handler
  /// refusal) travel back inside the matching reply record.
  Result<std::vector<Bytes>> handle_burst(
      const std::vector<Bytes>& request_records);

 private:
  net::SecureChannelEndpoint& channel_;
  std::map<std::string, Method> methods_;
};

struct AsyncProxyConfig {
  std::size_t depth = 64;  // max in-flight submissions per flush
  MetricsHub* hub = nullptr;
  std::string label;
  /// Optional simulated clock. When set, completions carry submit->flush
  /// cycles (CqEvent::cycles), the latency histogram fills, and the
  /// adaptive controller below has something to feed on.
  const hw::Machine* clock = nullptr;
  /// Burst sizing. With adaptive.adaptive = true, submit() rings an
  /// implicit flush whenever the pending burst reaches the controller's
  /// current depth target — the same histogram-driven policy as
  /// CompletionQueue, at transport granularity. Off by default: explicit
  /// flush() keeps full control of burst boundaries.
  AdaptiveConfig adaptive{.adaptive = false};
};

/// Client side.
class AsyncRemoteProxy {
 public:
  /// Delivers a burst of sealed request records and returns the sealed
  /// reply records (e.g. SimNetwork datagrams + AsyncRemoteDispatcher).
  using Transport =
      std::function<Result<std::vector<Bytes>>(const std::vector<Bytes>&)>;

  AsyncRemoteProxy(net::SecureChannelEndpoint& channel, Transport transport,
                   AsyncProxyConfig config = {});

  /// Queue an invocation; nothing touches the wire yet.
  /// Errc::exhausted when `depth` submissions are already queued.
  Result<RequestId> submit(const std::string& method, BytesView payload);

  /// Withdraw a queued (not yet flushed) submission.
  Status cancel(RequestId id);

  /// Seal every queued submission and run one transport exchange.
  /// Replies become retrievable via take()/wait(). On transport failure
  /// the submissions stay queued (sealing happens only on success paths —
  /// see header comment — so a retry flush is safe).
  Status flush();

  /// Drain up to `max` completed events (0 = all), oldest request id
  /// first — the CqEvent batch-drain face of the proxy. Never touches the
  /// wire; pair with flush() (or adaptive auto-flush).
  std::vector<CqEvent> reap(std::size_t max = 0);
  /// Apply `fn` to every completed event and return how many were drained.
  std::size_t for_each_completion(const std::function<void(CqEvent&)>& fn);

  /// Retrieve the reply for `id`; Errc::would_block while still queued or
  /// in flight, Errc::invalid_argument for unknown ids. Remote refusals
  /// come back as their original error codes. (Future-style shim over the
  /// CqEvent store — batch consumers use reap/for_each_completion.)
  Result<Bytes> take(RequestId id);

  /// flush() if needed, then take(id).
  Result<Bytes> wait(RequestId id);

  /// Single-call convenience — a thin shim over the batched path
  /// (submit + the same flush every pipelined burst uses + take). There is
  /// no separate single-call wire path: anything else queued rides the
  /// same transport exchange. Prefer submit()/flush()/reap() in new code;
  /// see docs/runtime.md for the migration table.
  Result<Bytes> call(const std::string& method, BytesView payload);

  std::size_t pending() const { return pending_.size(); }
  /// The adaptive controller's current burst target.
  std::size_t batch_depth() const { return controller_.depth(); }
  InvocationCounters metrics() const { return counters_.snapshot(); }

 private:
  struct PendingCall {
    RequestId id = 0;
    std::string method;
    Bytes payload;
    /// Submitting thread's trace context, sealed into the request record
    /// at flush time.
    trace::TraceContext ctx;
    /// Simulated clock at submit (0 without a configured clock).
    Cycles submitted_at = 0;
  };

  Cycles clock_now() const;

  net::SecureChannelEndpoint& channel_;
  Transport transport_;
  AsyncProxyConfig config_;
  AdaptiveBatchController controller_;
  std::vector<PendingCall> pending_;
  std::map<RequestId, CqEvent> completions_;
  RequestId next_id_ = 1;
  MetricsHub::CounterSlot own_counters_;
  MetricsHub::CounterRef counters_;
};

}  // namespace lateral::runtime
