// Pipelined remote invocation over a SecureChannel — the network face of
// the batching runtime.
//
// net::RemoteProxy pays one network round trip per call. At serving scale
// the round trip dominates, so AsyncRemoteProxy pipelines: submit() queues
// invocations locally, flush() seals them into consecutive records (the
// channel's strict sequence ordering is why sealing happens at flush time:
// a sealed-but-withdrawn record would punch a hole in the peer's sequence
// window) and ships the whole burst in one transport exchange.
// AsyncRemoteDispatcher opens each record, dispatches, and returns one
// sealed reply record per request. Replies are matched to submissions by
// an explicit request id carried inside the authenticated plaintext, so
// completion order never depends on transport framing.
//
// Everything the channel guarantees — peer code identity, confidentiality,
// integrity, ordering, replay protection — covers the whole pipeline, and
// the usual runtime contract (bounded depth, Errc-surfaced backpressure,
// cancellation before flush, lossless accounting) applies.
//
// Wire formats (inside AEAD records):
//   request: [u32 request_id | 16B trace ctx | u16 method_len | method |
//             payload]
//   reply:   [u32 request_id | u8 errc | payload (when errc == ok)]
//
// The 16-byte TraceContext travels inside the authenticated plaintext —
// a remote trace id is integrity-protected exactly like the request id —
// and is re-installed (as a TraceScope) around the dispatcher's method, so
// crossings the method makes on the server chain under the client's trace.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/secure_channel.h"
#include "runtime/metrics.h"
#include "trace/trace.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::runtime {

using RequestId = std::uint32_t;

/// Server side: unseals a burst of request records, dispatches each to the
/// registered method, and seals one reply record per request.
class AsyncRemoteDispatcher {
 public:
  using Method = std::function<Result<Bytes>(BytesView request)>;

  explicit AsyncRemoteDispatcher(net::SecureChannelEndpoint& channel);

  Status register_method(const std::string& name, Method handler);

  /// Process one pipelined burst. A record that fails channel
  /// authentication fails the whole burst with verification_failed (the
  /// sequence window is broken; the caller should drop the connection).
  /// Method-level problems (unknown method, malformed request, handler
  /// refusal) travel back inside the matching reply record.
  Result<std::vector<Bytes>> handle_burst(
      const std::vector<Bytes>& request_records);

 private:
  net::SecureChannelEndpoint& channel_;
  std::map<std::string, Method> methods_;
};

struct AsyncProxyConfig {
  std::size_t depth = 64;  // max in-flight submissions per flush
  MetricsHub* hub = nullptr;
  std::string label;
};

/// Client side.
class AsyncRemoteProxy {
 public:
  /// Delivers a burst of sealed request records and returns the sealed
  /// reply records (e.g. SimNetwork datagrams + AsyncRemoteDispatcher).
  using Transport =
      std::function<Result<std::vector<Bytes>>(const std::vector<Bytes>&)>;

  AsyncRemoteProxy(net::SecureChannelEndpoint& channel, Transport transport,
                   AsyncProxyConfig config = {});

  /// Queue an invocation; nothing touches the wire yet.
  /// Errc::exhausted when `depth` submissions are already queued.
  Result<RequestId> submit(const std::string& method, BytesView payload);

  /// Withdraw a queued (not yet flushed) submission.
  Status cancel(RequestId id);

  /// Seal every queued submission and run one transport exchange.
  /// Replies become retrievable via take()/wait(). On transport failure
  /// the submissions stay queued (sealing happens only on success paths —
  /// see header comment — so a retry flush is safe).
  Status flush();

  /// Retrieve the reply for `id`; Errc::would_block while still queued or
  /// in flight, Errc::invalid_argument for unknown ids. Remote refusals
  /// come back as their original error codes.
  Result<Bytes> take(RequestId id);

  /// flush() if needed, then take(id).
  Result<Bytes> wait(RequestId id);

  /// Single-call convenience (submit+flush+take) — the sync path, for
  /// drop-in use where pipelining has not been adopted yet.
  Result<Bytes> call(const std::string& method, BytesView payload);

  std::size_t pending() const { return pending_.size(); }
  InvocationCounters metrics() const { return counters_.snapshot(); }

 private:
  struct PendingCall {
    RequestId id = 0;
    std::string method;
    Bytes payload;
    /// Submitting thread's trace context, sealed into the request record
    /// at flush time.
    trace::TraceContext ctx;
  };

  net::SecureChannelEndpoint& channel_;
  Transport transport_;
  AsyncProxyConfig config_;
  std::vector<PendingCall> pending_;
  std::map<RequestId, Result<Bytes>> completions_;
  RequestId next_id_ = 1;
  MetricsHub::CounterSlot own_counters_;
  MetricsHub::CounterRef counters_;
};

}  // namespace lateral::runtime
