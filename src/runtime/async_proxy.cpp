#include "runtime/async_proxy.h"

#include <utility>

namespace lateral::runtime {
namespace {

// Request: [u32 request_id | 16B trace ctx | u16 method_len | method |
//           payload]
// Reply:   [u32 request_id | u8 errc | payload (on success)]

void put_u32(Bytes& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t get_u32(BytesView in) {
  return (std::uint32_t(in[0]) << 24) | (std::uint32_t(in[1]) << 16) |
         (std::uint32_t(in[2]) << 8) | std::uint32_t(in[3]);
}

// Fixed prefix before method_len: request id + trace context.
constexpr std::size_t kRequestPrefix = 4 + trace::kTraceContextWireBytes;

Bytes encode_request(RequestId id, const trace::TraceContext& ctx,
                     const std::string& method, BytesView payload) {
  Bytes out;
  put_u32(out, id);
  ctx.encode(out);
  out.push_back(static_cast<std::uint8_t>(method.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(method.size()));
  out.insert(out.end(), method.begin(), method.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

struct DecodedRequest {
  RequestId id = 0;
  trace::TraceContext ctx;
  std::string method;
  Bytes payload;
};

Result<DecodedRequest> decode_request(BytesView plain) {
  if (plain.size() < kRequestPrefix + 2) return Errc::invalid_argument;
  DecodedRequest out;
  out.id = get_u32(plain);
  out.ctx = trace::TraceContext::decode(plain.subspan(4));
  const std::size_t method_len =
      (std::size_t(plain[kRequestPrefix]) << 8) | plain[kRequestPrefix + 1];
  if (plain.size() < kRequestPrefix + 2 + method_len)
    return Errc::invalid_argument;
  const auto method_begin =
      plain.begin() + static_cast<long>(kRequestPrefix + 2);
  out.method.assign(method_begin,
                    method_begin + static_cast<long>(method_len));
  out.payload.assign(method_begin + static_cast<long>(method_len),
                     plain.end());
  return out;
}

Bytes encode_reply(RequestId id, Errc error, BytesView payload) {
  Bytes out;
  put_u32(out, id);
  out.push_back(static_cast<std::uint8_t>(error));
  if (error == Errc::ok)
    out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

AsyncRemoteDispatcher::AsyncRemoteDispatcher(net::SecureChannelEndpoint& channel)
    : channel_(channel) {
  if (!channel.established())
    throw Error("AsyncRemoteDispatcher needs an established channel");
}

Status AsyncRemoteDispatcher::register_method(const std::string& name,
                                              Method handler) {
  if (name.empty() || !handler) return Errc::invalid_argument;
  const auto [it, inserted] = methods_.emplace(name, std::move(handler));
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Result<std::vector<Bytes>> AsyncRemoteDispatcher::handle_burst(
    const std::vector<Bytes>& request_records) {
  std::vector<Bytes> reply_records;
  reply_records.reserve(request_records.size());
  for (const Bytes& record : request_records) {
    auto plain = channel_.open_record(record);
    if (!plain) return plain.error();  // unauthentic: do not even reply

    Bytes reply_plain;
    auto request = decode_request(*plain);
    if (!request) {
      // A malformed-but-authentic request still has a slot in the burst;
      // answer it (salvaging the id when the prefix survived) so the
      // client's matcher surfaces the problem instead of hanging.
      const RequestId id = plain->size() >= 4 ? get_u32(*plain) : 0;
      reply_plain = encode_reply(id, Errc::invalid_argument, {});
    } else {
      const auto it = methods_.find(request->method);
      if (it == methods_.end()) {
        reply_plain = encode_reply(request->id, Errc::invalid_argument, {});
      } else {
        // Run the method under the client's trace context: substrate
        // crossings it makes chain under the remote caller's span.
        trace::TraceScope scope(request->ctx);
        Result<Bytes> result = it->second(request->payload);
        reply_plain = result ? encode_reply(request->id, Errc::ok, *result)
                             : encode_reply(request->id, result.error(), {});
      }
    }
    auto sealed = channel_.seal_record(reply_plain);
    if (!sealed) return sealed.error();
    reply_records.push_back(std::move(*sealed));
  }
  return reply_records;
}

AsyncRemoteProxy::AsyncRemoteProxy(net::SecureChannelEndpoint& channel,
                                   Transport transport,
                                   AsyncProxyConfig config)
    : channel_(channel),
      transport_(std::move(transport)),
      config_(std::move(config)),
      controller_(config_.adaptive),
      counters_(config_.hub ? config_.hub->counters(config_.label)
                            : MetricsHub::CounterRef(&own_counters_)) {
  if (!transport_) throw Error("AsyncRemoteProxy needs a transport");
  if (config_.depth == 0) config_.depth = 1;
}

Cycles AsyncRemoteProxy::clock_now() const {
  return config_.clock ? config_.clock->now() : 0;
}

Result<RequestId> AsyncRemoteProxy::submit(const std::string& method,
                                           BytesView payload) {
  if (method.empty()) return Errc::invalid_argument;
  if (pending_.size() >= config_.depth) {
    ++counters_->rejected;
    return Errc::exhausted;
  }
  PendingCall call;
  call.id = next_id_++;
  call.method = method;
  call.payload.assign(payload.begin(), payload.end());
  call.ctx = trace::current_context();
  call.submitted_at = clock_now();
  pending_.push_back(std::move(call));
  ++counters_->submitted;
  counters_->record_depth(pending_.size());
  const RequestId id = pending_.back().id;
  // Adaptive auto-flush: the burst reached the controller's target, so ring
  // now rather than letting the tail of a deep queue age. A flush failure
  // here leaves the submission queued (or completed with the transport's
  // error) — either way the caller's id stays valid and the outcome
  // surfaces through take()/reap().
  if (config_.adaptive.adaptive && pending_.size() >= controller_.depth())
    (void)flush();
  return id;
}

Status AsyncRemoteProxy::cancel(RequestId id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      // Not sealed yet, so withdrawing leaves no hole in the channel's
      // sequence space; the completion is materialized immediately.
      completions_.emplace(id, CqEvent{id, Errc::cancelled, {}, 0});
      pending_.erase(it);
      ++counters_->cancelled;
      return Status::success();
    }
  }
  return Errc::invalid_argument;
}

Status AsyncRemoteProxy::flush() {
  if (pending_.empty()) return Status::success();

  // Seal in submission order. From the first seal on we are committed:
  // the channel's send sequence has advanced, so any failure past this
  // point is a channel-level failure, not a retryable one.
  std::vector<Bytes> records;
  records.reserve(pending_.size());
  for (const PendingCall& call : pending_) {
    auto record = channel_.seal_record(
        encode_request(call.id, call.ctx, call.method, call.payload));
    if (!record) return record.error();
    records.push_back(std::move(*record));
  }

  const std::size_t burst = pending_.size();
  auto reply_records = transport_(records);
  counters_->record_batch(burst);
  ++counters_->doorbells;
  if (!reply_records) {
    // The burst is gone (sequence space consumed) but the invocations are
    // not silently lost: each completes with the transport's error.
    for (const PendingCall& call : pending_) {
      ++counters_->completed;
      completions_.emplace(call.id,
                           CqEvent{call.id, reply_records.error(), {}, 0});
    }
    pending_.clear();
    return Status::success();
  }
  if (reply_records->size() != burst) return Errc::io_error;

  std::vector<PendingCall> sent = std::move(pending_);
  pending_.clear();
  std::map<RequestId, Cycles> submitted_at;
  for (const PendingCall& call : sent)
    submitted_at.emplace(call.id, call.submitted_at);
  const Cycles now = clock_now();
  // Windowed latency histogram for this exchange alone — the controller
  // judges the current burst depth by what *this* burst cost, not by the
  // cumulative history the exported counters keep.
  InvocationCounters window;
  for (const Bytes& record : *reply_records) {
    auto plain = channel_.open_record(record);
    if (!plain) return plain.error();
    if (plain->size() < 5) return Errc::invalid_argument;
    CqEvent event;
    event.id = get_u32(*plain);
    event.status = static_cast<Errc>((*plain)[4]);
    if (event.status == Errc::ok)
      event.payload.assign(plain->begin() + 5, plain->end());
    if (const auto sub = submitted_at.find(event.id);
        config_.clock && sub != submitted_at.end()) {
      event.cycles = now - sub->second;
      if (event.cycles > 0) {
        window.record_latency(event.cycles);
        counters_->record_latency(event.cycles);
      }
    }
    ++counters_->completed;
    completions_.emplace(event.id, std::move(event));
  }
  for (const PendingCall& call : sent) {
    // A reply burst that skipped one of our ids is a protocol violation;
    // the invocation must still terminate.
    if (!completions_.contains(call.id))
      completions_.emplace(call.id, CqEvent{call.id, Errc::io_error, {}, 0});
  }
  controller_.observe(burst, window.latency_percentile(0.50),
                      window.latency_percentile(0.99));
  counters_->adaptive_depth = controller_.depth();
  counters_->adaptive_grows = controller_.grows();
  counters_->adaptive_shrinks = controller_.shrinks();
  return Status::success();
}

std::vector<CqEvent> AsyncRemoteProxy::reap(std::size_t max) {
  std::vector<CqEvent> out;
  const std::size_t n =
      max == 0 ? completions_.size() : std::min(max, completions_.size());
  out.reserve(n);
  while (out.size() < n) {
    auto it = completions_.begin();
    out.push_back(std::move(it->second));
    completions_.erase(it);
  }
  return out;
}

std::size_t AsyncRemoteProxy::for_each_completion(
    const std::function<void(CqEvent&)>& fn) {
  std::size_t n = 0;
  while (!completions_.empty()) {
    auto it = completions_.begin();
    CqEvent event = std::move(it->second);
    completions_.erase(it);
    fn(event);
    ++n;
  }
  return n;
}

Result<Bytes> AsyncRemoteProxy::take(RequestId id) {
  if (const auto it = completions_.find(id); it != completions_.end()) {
    CqEvent event = std::move(it->second);
    completions_.erase(it);
    if (event.status != Errc::ok) return event.status;
    return std::move(event.payload);
  }
  for (const PendingCall& call : pending_)
    if (call.id == id) return Errc::would_block;
  return Errc::invalid_argument;
}

Result<Bytes> AsyncRemoteProxy::wait(RequestId id) {
  auto first = take(id);
  if (first || first.error() != Errc::would_block) return first;
  if (const Status s = flush(); !s.ok()) return s.error();
  return take(id);
}

Result<Bytes> AsyncRemoteProxy::call(const std::string& method,
                                     BytesView payload) {
  auto id = submit(method, payload);
  if (!id) return id.error();
  return wait(*id);
}

}  // namespace lateral::runtime
