#include "runtime/completion_queue.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace lateral::runtime {

// --- AdaptiveBatchController ------------------------------------------------

AdaptiveBatchController::AdaptiveBatchController(AdaptiveConfig config)
    : config_(config) {
  if (config_.min_batch == 0) config_.min_batch = 1;
  if (config_.max_batch < config_.min_batch)
    config_.max_batch = config_.min_batch;
  depth_ = config_.initial == 0
               ? config_.min_batch
               : std::clamp(config_.initial, config_.min_batch,
                            config_.max_batch);
}

void AdaptiveBatchController::observe(std::size_t occupancy, Cycles window_p50,
                                      Cycles window_p99) {
  if (!config_.adaptive) return;
  // The latency floor is what the smallest batches cost on this substrate;
  // it only ever ratchets down. An empty window (p50 == 0: cold start, or
  // nothing in the window actually crossed) leaves it untouched.
  if (window_p50 > 0 && (floor_p50_ == 0 || window_p50 < floor_p50_))
    floor_p50_ = window_p50;
  const Cycles bound = floor_p50_ * config_.tail_factor;

  // Tail damper first: a window whose p99 already blew the bound means the
  // current depth is buying throughput with latency we promised not to
  // spend — back off regardless of occupancy.
  if (window_p99 > 0 && bound > 0 && window_p99 > bound) {
    if (depth_ / 2 >= config_.min_batch) {
      depth_ /= 2;
      ++shrinks_;
    }
    return;
  }

  if (occupancy >= depth_) {
    // Saturated: deepen for throughput, but only with tail headroom —
    // doubling the batch can as much as double the per-entry latency on a
    // byte-dominated crossing, so require the doubled p99 to still fit.
    const bool headroom = window_p99 == 0 || bound == 0 ||
                          window_p99 * 2 <= bound;
    if (headroom && depth_ * 2 <= config_.max_batch) {
      depth_ *= 2;
      ++grows_;
    }
  } else if (occupancy * 4 <= depth_ && depth_ / 2 >= config_.min_batch) {
    // Shallow: shrink for latency. The 4x hysteresis keeps a queue
    // hovering just under target from oscillating.
    depth_ /= 2;
    ++shrinks_;
  }
}

// --- CompletionQueue --------------------------------------------------------

namespace {

BatchChannelConfig ring_config(const CompletionQueueConfig& config) {
  BatchChannelConfig out;
  out.depth = std::max<std::size_t>(
      {config.depth, config.adaptive.max_batch, 1});
  out.hub = config.hub;
  out.label = config.label;
  return out;
}

}  // namespace

CompletionQueue::CompletionQueue(substrate::IsolationSubstrate& substrate,
                                 substrate::DomainId actor,
                                 substrate::ChannelId channel,
                                 CompletionQueueConfig config)
    : substrate_(substrate),
      actor_(actor),
      channel_(substrate, actor, channel, ring_config(config)),
      controller_(config.adaptive),
      flush_age_(config.adaptive.flush_age) {}

CompletionQueue::CompletionQueue(const core::Endpoint& endpoint,
                                 CompletionQueueConfig config)
    : substrate_(*endpoint.substrate()),
      actor_(endpoint.actor()),
      channel_(endpoint, ring_config(config)),
      controller_(config.adaptive),
      flush_age_(config.adaptive.flush_age) {}

Result<SubmissionId> CompletionQueue::note_submit(Result<SubmissionId> id) {
  // The flush_age bound needs the age of the *oldest* queued entry; that
  // entry is the one that found the queue empty.
  if (id && channel_.pending() == 1)
    oldest_submitted_at_ = substrate_.machine().now();
  return id;
}

Result<SubmissionId> CompletionQueue::submit(BytesView request,
                                             SubmitOptions opts) {
  return note_submit(channel_.submit(request, opts));
}

Result<SubmissionId> CompletionQueue::submit(Bytes&& request,
                                             SubmitOptions opts) {
  return note_submit(channel_.submit(std::move(request), opts));
}

Result<SubmissionId> CompletionQueue::submit_sg(
    BytesView header, std::vector<substrate::RegionDescriptor> segments,
    SubmitOptions opts) {
  return note_submit(channel_.submit_sg(header, std::move(segments), opts));
}

Result<SubmissionId> CompletionQueue::submit_staged(RegionPool& pool,
                                                    BytesView header,
                                                    BytesView payload,
                                                    SubmitOptions opts) {
  return note_submit(channel_.submit_staged(pool, header, payload, opts));
}

Status CompletionQueue::cancel(SubmissionId id) { return channel_.cancel(id); }

void CompletionQueue::export_controller_metrics() {
  MetricsHub::CounterRef counters = channel_.counters_ref();
  auto locked = counters.operator->();
  InvocationCounters* c = locked.operator->();
  ++c->doorbells;
  c->adaptive_depth = controller_.depth();
  c->adaptive_grows = controller_.grows();
  c->adaptive_shrinks = controller_.shrinks();
}

Status CompletionQueue::doorbell() {
  const std::size_t occupancy = channel_.pending();
  if (occupancy == 0 && channel_.completions_ready() == 0)
    return Status::success();

  // One span represents the coalesced crossing; its size field carries the
  // controller's depth target so an exported timeline shows the depth
  // trajectory alongside the flush/dispatch spans the flush mints.
  if (const trace::TraceContext& cur = trace::current_context();
      substrate_.tracing_active() && cur.sampled())
    substrate_.stamp_span(actor_, cur, substrate_.tracer()->next_span(),
                          trace::SpanPhase::doorbell, {},
                          controller_.depth());

  if (const Status s = channel_.flush(); !s.ok()) return s;

  // Drain the completion ring into the ready queue, building this window's
  // latency histogram as it goes (the same log2 histogram the cumulative
  // counters keep — but windowed, so a long sparse phase cannot poison the
  // controller's view of what the current depth costs).
  InvocationCounters window;
  while (true) {
    auto completion = channel_.next_completion();
    if (!completion) break;
    CqEvent event;
    event.id = completion->id;
    event.cycles = completion->latency;
    if (completion->result) {
      event.status = Errc::ok;
      event.payload = std::move(*completion->result);
    } else {
      event.status = completion->result.error();
    }
    if (event.cycles > 0) window.record_latency(event.cycles);
    ready_.push_back(std::move(event));
  }
  controller_.observe(occupancy, window.latency_percentile(0.50),
                      window.latency_percentile(0.99));
  export_controller_metrics();
  return Status::success();
}

Status CompletionQueue::maybe_doorbell() {
  const std::size_t queued = channel_.pending();
  if (queued == 0) return Status::success();
  if (queued >= controller_.depth()) return doorbell();
  if (flush_age_ > 0 &&
      substrate_.machine().now() - oldest_submitted_at_ >= flush_age_)
    return doorbell();
  return Status::success();
}

Result<std::vector<CqEvent>> CompletionQueue::reap(std::size_t max,
                                                   Cycles deadline) {
  if (ready_.empty() && channel_.pending() > 0 &&
      (deadline == 0 || substrate_.machine().now() <= deadline)) {
    if (const Status s = doorbell(); !s.ok()) return s.error();
  }
  std::vector<CqEvent> out;
  const std::size_t n =
      max == 0 ? ready_.size() : std::min(max, ready_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(ready_.front()));
    ready_.pop_front();
  }
  return out;
}

std::size_t CompletionQueue::for_each_completion(
    const std::function<void(CqEvent&)>& fn) {
  std::size_t n = 0;
  while (!ready_.empty()) {
    CqEvent event = std::move(ready_.front());
    ready_.pop_front();
    fn(event);
    ++n;
  }
  return n;
}

Result<Bytes> CompletionQueue::wait(SubmissionId id) {
  const auto take = [&]() -> std::optional<CqEvent> {
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
      if (it->id == id) {
        CqEvent event = std::move(*it);
        ready_.erase(it);
        return event;
      }
    }
    return std::nullopt;
  };
  std::optional<CqEvent> event = take();
  if (!event && channel_.pending() > 0) {
    if (const Status s = doorbell(); !s.ok()) return s.error();
    event = take();
  }
  if (!event) return Errc::invalid_argument;
  if (event->status != Errc::ok) return event->status;
  return std::move(event->payload);
}

}  // namespace lateral::runtime
