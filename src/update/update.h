// lateral::update — attested over-the-air updates with rollback protection
// and automatic revert (FIG15).
//
// The paper's trust story is static: a component's measurement is fixed at
// launch. Real fleets re-flash components while they serve traffic, and the
// rollback gap is the weakest link of most deployed TEE designs. This
// subsystem closes the loop with the primitives the toolbox already has:
//
//  * a signed UpdateManifest — target component, version, image hash, new
//    measurement — verified against the vendor key from the device trust
//    chain (crypto::rsa_verify) before any byte is accepted;
//  * mcuboot-style A/B image slots (SlotBank): the new image streams into
//    the inactive slot over the zero-copy block plane (RegionPool staging,
//    chunked call_sg; copy fallback on TPM/fTPM targets) while the active
//    slot keeps serving;
//  * a monotonic NV counter in the platform TPM/fTPM (tpm::NvCounterBank,
//    reached through RollbackCounters) bumped only on commit: any manifest
//    whose version is not strictly newer is refused with
//    Errc::rollback_refused — rollback protection at the root of trust,
//    not in policy;
//  * a supervisor-orchestrated commit: kill the component, let the
//    Supervisor relaunch it into the staged image (fresh badges, channel
//    epochs, full challenge-response attestation against the manifest's
//    new measurement), then hold it in heartbeat probation;
//  * automatic revert: if the new incarnation dies or fails its heartbeat
//    during probation, the previous slot is restored, the attestation
//    expectation rolled back, and the component restarted — the NV counter
//    never moved, so the aborted version can be retried but an older one
//    still cannot be replayed.
//
// State machine (UpdateState):
//
//   idle -> staging -> verified -> armed -> probation -> committed
//                                    |          |
//                                    +----------+--> reverted
//
// stage() drives idle->verified (transfer + hash check), arm() installs
// the image override (verified->armed), commit() swaps and enters
// probation, probation_tick() ends in committed or reverted. recover()
// reverts anything armed-but-uncommitted — the power-loss-between-arm-and-
// commit path: the counter never advanced, so boot code falls back to the
// old slot.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/attestation.h"
#include "core/composer.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "runtime/metrics.h"
#include "supervisor/supervisor.h"
#include "trace/trace.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::update {

/// A signed update descriptor. The signature covers every field via
/// signing_bytes(); the vendor signs with the same root key the device's
/// endorsement chain anchors to, so the verifier needs no extra PKI.
struct UpdateManifest {
  std::string component;            // target component (manifest name)
  std::uint64_t version = 0;        // strictly increasing per component
  std::uint64_t image_size = 0;     // bytes of the new image
  crypto::Digest image_hash{};      // SHA-256 of the image bytes
  /// Measurement the relaunched domain must attest to. In this simulation
  /// a domain's measurement is SHA-256 of its code, so this must equal
  /// image_hash; both travel (and are signed) so a manifest corrupted in
  /// either field fails closed.
  crypto::Digest new_measurement{};
  Bytes signature;                  // rsa_sign(vendor, signing_bytes(*this))
};

/// The byte string the vendor signs (everything but the signature).
Bytes signing_bytes(const UpdateManifest& manifest);
/// Fill in the signature with the vendor key.
void sign_manifest(UpdateManifest& manifest, const crypto::RsaKeyPair& vendor);
/// Signature check only (field-consistency checks live in the orchestrator).
Status verify_manifest(const UpdateManifest& manifest,
                       const crypto::RsaPublicKey& vendor);
/// Build a consistent, unsigned manifest for `image`.
UpdateManifest make_manifest(const std::string& component,
                             std::uint64_t version, BytesView image);

/// Monotonic NV counter access for the orchestrator — the seam between the
/// update logic and whichever root of trust the platform has. Adapt a
/// tpm::Tpm or ftpm::Ftpm with DeviceRollbackCounters below.
class RollbackCounters {
 public:
  virtual ~RollbackCounters() = default;
  virtual Status define(const std::string& name) = 0;
  virtual Result<std::uint64_t> read(const std::string& name) = 0;
  virtual Result<std::uint64_t> increment(const std::string& name) = 0;
};

/// Adapter over any device exposing the TPM NV command set
/// (nv_define / nv_read / nv_increment): tpm::Tpm and ftpm::Ftpm.
template <typename Device>
class DeviceRollbackCounters final : public RollbackCounters {
 public:
  explicit DeviceRollbackCounters(Device& device) : device_(device) {}
  Status define(const std::string& name) override {
    return device_.nv_define(name);
  }
  Result<std::uint64_t> read(const std::string& name) override {
    return device_.nv_read(name);
  }
  Result<std::uint64_t> increment(const std::string& name) override {
    return device_.nv_increment(name);
  }

 private:
  Device& device_;
};

/// mcuboot-style image slot bank for one component. The active slot is
/// what the component runs; staging always targets the next slot round-
/// robin, so with the default two slots this is classic A/B: stage into B
/// while A serves, swap on commit, rollback by swapping back.
class SlotBank {
 public:
  /// Slot 0 starts active holding the factory image.
  SlotBank(std::uint32_t slot_count, Bytes factory_image,
           std::uint64_t factory_version = 0);

  std::size_t slot_count() const { return slots_.size(); }
  std::size_t active_slot() const { return active_; }
  std::size_t staging_slot() const { return staging_; }
  const Bytes& active_image() const { return slots_[active_].image; }
  std::uint64_t active_version() const { return slots_[active_].version; }
  const Bytes& staged_image() const { return slots_[staging_].image; }
  bool staged_valid() const { return slots_[staging_].valid; }

  /// Open the inactive slot for a new image (clears any previous staging).
  Status begin_staging(std::uint64_t version);
  /// Append transferred bytes to the staging slot.
  Status append(BytesView chunk);
  crypto::Digest staged_hash() const;
  /// Close staging (after the orchestrator's hash check passed).
  Status finish_staging();
  /// Drop a partial or refused staging.
  void abort_staging();

  /// Staging slot becomes active (commit path). Errc::invalid_argument
  /// unless a finished staging is present.
  Status swap();
  /// Return to the previously active slot (revert path).
  Status rollback();

 private:
  struct ImageSlot {
    Bytes image;
    std::uint64_t version = 0;
    bool valid = false;
  };

  std::vector<ImageSlot> slots_;
  std::size_t active_ = 0;
  std::size_t staging_ = 1;
  std::size_t previous_ = 0;
  bool staging_open_ = false;
};

enum class UpdateState : std::uint8_t {
  idle,       // no update in flight for the component
  staging,    // transfer in progress
  verified,   // staged bytes match the signed manifest
  armed,      // image override installed; next restart boots the new slot
  probation,  // running the new image under heartbeat probation
  committed,  // probation survived; NV counter advanced
  reverted,   // probation (or recovery) failed; old slot restored
};

constexpr std::string_view update_state_name(UpdateState s) {
  switch (s) {
    case UpdateState::idle: return "idle";
    case UpdateState::staging: return "staging";
    case UpdateState::verified: return "verified";
    case UpdateState::armed: return "armed";
    case UpdateState::probation: return "probation";
    case UpdateState::committed: return "committed";
    case UpdateState::reverted: return "reverted";
  }
  return "unknown";
}

struct UpdateOrchestratorConfig {
  /// Component that streams images to targets (needs a manifest channel —
  /// and ideally a region — to every updatable component).
  std::string updater = "updater";
  /// Transfer chunk size; also the RegionPool slot size on the zero-copy
  /// path.
  std::size_t chunk_bytes = 4096;
  /// Optional shared metrics sink; falls back to orchestrator-local stats.
  runtime::MetricsHub* hub = nullptr;
  std::string label = "update";
  /// Recovery label whose RecoveryStats::update_reverts the orchestrator
  /// bumps (give it the supervisor's label so reverts are auditable next
  /// to restarts). Only used when `hub` is set.
  std::string recovery_label = "supervisor";
  /// Bound on the supervisor-driving loop at commit (ticks + backoff
  /// advances before the swap restart is declared failed).
  std::uint32_t restart_spins = 64;
  /// Optional tamper-evident audit sink: refused updates (bad signature,
  /// image mismatch, rollback attempt) are exactly the events a post-
  /// compromise investigation needs sealed evidence of.
  health::AuditLog* audit = nullptr;
};

/// Drives the update state machine for every updatable component of one
/// assembly. The supervisor must already watch() each target (validate()
/// enforces `update` => `restart` in the manifest), because commit and
/// revert are supervised restarts with attestation.
class UpdateOrchestrator {
 public:
  UpdateOrchestrator(core::Assembly& assembly,
                     supervisor::Supervisor& supervisor,
                     RollbackCounters& counters,
                     crypto::RsaPublicKey vendor_key,
                     UpdateOrchestratorConfig config = {});

  /// idle -> verified: verify the manifest signature, refuse stale
  /// versions against the NV counter, stream `image` into the inactive
  /// slot over the zero-copy plane (copy fallback where unsupported), and
  /// check the *staged* bytes against the signed hash. Any refusal or
  /// mid-transfer death leaves the active slot untouched and the pool
  /// drained (no leaked leases).
  Status stage(const UpdateManifest& manifest, BytesView image);

  /// verified -> armed: install the staged image as the component's next
  /// boot image. The running domain is untouched.
  Status arm(const std::string& component);

  /// armed -> probation: re-point the attestation expectation at the new
  /// measurement, kill the component, and drive the supervisor until the
  /// relaunch (into the staged slot, freshly attested) is running again.
  /// Refused with Errc::exhausted once the component escalated to
  /// degraded/halted — the flap-damping endpoint.
  Status commit(const std::string& component);

  /// One probation heartbeat: drives supervisor::tick() and checks the
  /// new incarnation survived. Ends in `committed` (NV counter bumped)
  /// after the policy's probation ticks, or `reverted` the moment the
  /// incarnation dies or stops heartbeating.
  Result<UpdateState> probation_tick(const std::string& component);

  /// Manual revert of an in-flight update (armed or probation).
  Status revert(const std::string& component);

  /// Boot-time recovery: revert every update that armed but never
  /// committed (power loss between arm and commit). Returns how many
  /// updates were rolled back.
  std::size_t recover();

  /// Current state for a component (idle when nothing is pending).
  UpdateState state(const std::string& component) const;

  /// The slot bank of a component (nullptr before its first stage()).
  const SlotBank* slots(const std::string& component) const;

  runtime::UpdateStats stats() const { return stats_.snapshot(); }

 private:
  struct Pending {
    UpdateManifest manifest;
    UpdateState state = UpdateState::idle;
    Bytes previous_image;                 // revert target
    crypto::Digest previous_measurement;  // expectation restore fallback
    std::optional<crypto::Digest> previous_expectation;
    Cycles accepted_at = 0;
    /// Supervisor incident reports for this component at commit time; any
    /// growth during probation means the new incarnation died.
    std::size_t reports_baseline = 0;
    std::uint32_t probation_left = 0;
  };

  static std::string counter_name(const std::string& component) {
    return "update." + component;
  }
  Status transfer(const UpdateManifest& manifest, BytesView image,
                  SlotBank& bank);
  void do_revert(const std::string& component, Pending& pending);
  std::size_t reports_for(const std::string& component) const;
  void stamp(const std::string& component, trace::SpanPhase phase,
             std::uint64_t size);

  core::Assembly& assembly_;
  supervisor::Supervisor& supervisor_;
  RollbackCounters& counters_;
  crypto::RsaPublicKey vendor_key_;
  UpdateOrchestratorConfig config_;
  runtime::MetricsHub::UpdateSlot own_stats_;
  runtime::MetricsHub::UpdateRef stats_;
  std::map<std::string, SlotBank> banks_;
  std::map<std::string, Pending> pending_;
};

}  // namespace lateral::update
