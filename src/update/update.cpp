#include "update/update.h"

#include <algorithm>

#include "runtime/region_pool.h"

namespace lateral::update {

namespace {

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Chunk header on the transfer channel: magic + destination offset. The
/// target's handler acks the write; the bytes themselves travel by
/// descriptor on the zero-copy path and inline on the copy fallback.
Bytes chunk_header(std::uint64_t offset) {
  Bytes header = to_bytes("UPST");
  put_u64(header, offset);
  return header;
}

}  // namespace

Bytes signing_bytes(const UpdateManifest& manifest) {
  Bytes out = to_bytes("lateral.update.manifest");
  out.push_back(0);
  out.insert(out.end(), manifest.component.begin(), manifest.component.end());
  out.push_back(0);
  put_u64(out, manifest.version);
  put_u64(out, manifest.image_size);
  out.insert(out.end(), manifest.image_hash.begin(),
             manifest.image_hash.end());
  out.insert(out.end(), manifest.new_measurement.begin(),
             manifest.new_measurement.end());
  return out;
}

void sign_manifest(UpdateManifest& manifest, const crypto::RsaKeyPair& vendor) {
  manifest.signature = crypto::rsa_sign(vendor, signing_bytes(manifest));
}

Status verify_manifest(const UpdateManifest& manifest,
                       const crypto::RsaPublicKey& vendor) {
  return crypto::rsa_verify(vendor, signing_bytes(manifest),
                            manifest.signature);
}

UpdateManifest make_manifest(const std::string& component,
                             std::uint64_t version, BytesView image) {
  UpdateManifest manifest;
  manifest.component = component;
  manifest.version = version;
  manifest.image_size = image.size();
  manifest.image_hash = crypto::Sha256::hash(image);
  // In this simulation a domain's measurement IS the hash of its code.
  manifest.new_measurement = manifest.image_hash;
  return manifest;
}

// --- SlotBank ---------------------------------------------------------------

SlotBank::SlotBank(std::uint32_t slot_count, Bytes factory_image,
                   std::uint64_t factory_version)
    : slots_(std::max<std::uint32_t>(slot_count, 2)) {
  slots_[0].image = std::move(factory_image);
  slots_[0].version = factory_version;
  slots_[0].valid = true;
  staging_ = 1;
}

Status SlotBank::begin_staging(std::uint64_t version) {
  staging_ = (active_ + 1) % slots_.size();
  slots_[staging_].image.clear();
  slots_[staging_].version = version;
  slots_[staging_].valid = false;
  staging_open_ = true;
  return Status::success();
}

Status SlotBank::append(BytesView chunk) {
  if (!staging_open_) return Errc::invalid_argument;
  slots_[staging_].image.insert(slots_[staging_].image.end(), chunk.begin(),
                                chunk.end());
  return Status::success();
}

crypto::Digest SlotBank::staged_hash() const {
  return crypto::Sha256::hash(slots_[staging_].image);
}

Status SlotBank::finish_staging() {
  if (!staging_open_) return Errc::invalid_argument;
  staging_open_ = false;
  slots_[staging_].valid = true;
  return Status::success();
}

void SlotBank::abort_staging() {
  slots_[staging_].image.clear();
  slots_[staging_].valid = false;
  staging_open_ = false;
}

Status SlotBank::swap() {
  if (staging_open_ || !slots_[staging_].valid) return Errc::invalid_argument;
  previous_ = active_;
  active_ = staging_;
  staging_ = (active_ + 1) % slots_.size();
  return Status::success();
}

Status SlotBank::rollback() {
  if (previous_ == active_) return Errc::invalid_argument;
  // The failed image stays in its slot (forensics); staging will reuse it
  // on the next update because it is once again the slot after active.
  staging_ = active_;
  active_ = previous_;
  return Status::success();
}

// --- UpdateOrchestrator -----------------------------------------------------

UpdateOrchestrator::UpdateOrchestrator(core::Assembly& assembly,
                                       supervisor::Supervisor& supervisor,
                                       RollbackCounters& counters,
                                       crypto::RsaPublicKey vendor_key,
                                       UpdateOrchestratorConfig config)
    : assembly_(assembly),
      supervisor_(supervisor),
      counters_(counters),
      vendor_key_(std::move(vendor_key)),
      config_(std::move(config)),
      stats_(config_.hub ? config_.hub->update(config_.label)
                         : runtime::MetricsHub::UpdateRef(&own_stats_)) {
  if (config_.chunk_bytes == 0) config_.chunk_bytes = 4096;
  if (config_.restart_spins == 0) config_.restart_spins = 1;
}

std::size_t UpdateOrchestrator::reports_for(
    const std::string& component) const {
  std::size_t count = 0;
  for (const supervisor::RecoveryReport& report : supervisor_.reports())
    if (report.name == component) ++count;
  return count;
}

void UpdateOrchestrator::stamp(const std::string& component,
                               trace::SpanPhase phase, std::uint64_t size) {
  auto comp = assembly_.component(component);
  if (!comp) return;
  substrate::IsolationSubstrate* sub = (*comp)->substrate;
  if (trace::Tracer* tracer = sub->tracer())
    sub->stamp_span((*comp)->domain, trace::current_context(),
                    tracer->next_span(), phase, {}, size);
}

Status UpdateOrchestrator::transfer(const UpdateManifest& manifest,
                                    BytesView image, SlotBank& bank) {
  auto endpoint = assembly_.endpoint(config_.updater, manifest.component);
  if (!endpoint) return endpoint.error();

  auto updater = assembly_.component(config_.updater);
  if (!updater) return updater.error();
  substrate::IsolationSubstrate* sub = (*updater)->substrate;
  const substrate::DomainId updater_domain = (*updater)->domain;

  // Zero-copy block plane when the manifests declared a region and the
  // substrate can realize it; the TPM/fTPM targets fall back to inline
  // chunks over the same channel (the data still arrives, it just pays
  // per-byte crossing costs — exactly the paper's §II-C trade-off).
  auto region = assembly_.region_between(config_.updater, manifest.component);
  std::optional<runtime::RegionPool> pool;
  if (region) {
    auto region_size = sub->region_size(*region);
    if (!region_size) return region_size.error();
    pool.emplace(*sub, updater_domain, *region, *region_size,
                 config_.chunk_bytes);
  } else if (region.error() != Errc::no_region_support &&
             region.error() != Errc::policy_violation) {
    return region.error();
  }

  for (std::size_t offset = 0; offset < image.size();
       offset += config_.chunk_bytes) {
    const std::size_t n =
        std::min(config_.chunk_bytes, image.size() - offset);
    const BytesView chunk = image.subspan(offset, n);
    const Bytes header = chunk_header(offset);

    if (pool) {
      auto slot = pool->acquire();
      if (!slot) return slot.error();
      auto descriptor = pool->stage(*slot, chunk);
      if (!descriptor) {
        pool->release(*slot);
        return descriptor.error();
      }
      auto reply = endpoint->call_sg(
          header, std::span<const substrate::RegionDescriptor>(
                      &*descriptor, 1));
      // The slot is returned on every path — including a target killed
      // mid-transfer (domain_dead) — so an aborted update never leaks a
      // staging lease.
      pool->release(*slot);
      if (!reply) return reply.error();
    } else {
      Bytes payload = header;
      payload.insert(payload.end(), chunk.begin(), chunk.end());
      auto reply = endpoint->call(payload);
      if (!reply) return reply.error();
    }
    if (const Status s = bank.append(chunk); !s.ok()) return s;
    stats_->bytes_streamed += n;
  }
  return Status::success();
}

Status UpdateOrchestrator::stage(const UpdateManifest& manifest,
                                 BytesView image) {
  auto ref = assembly_.ref(manifest.component);
  if (!ref) return ref.error();
  auto comp = assembly_.component(*ref);
  if (!comp) return comp.error();
  const std::optional<core::UpdatePolicy>& policy =
      (*comp)->manifest.update;
  // No `update` stanza, no field updates: the manifest is the consent.
  if (!policy) return Errc::policy_violation;

  // 1. Signature, before anything else touches the payload.
  if (const Status s = verify_manifest(manifest, vendor_key_); !s.ok()) {
    ++stats_->signature_refused;
    if (config_.audit)
      config_.audit->append(health::AuditKind::update_refused,
                            manifest.component, s.error(), "signature");
    return s;
  }
  // A signed manifest whose measurement does not match its own image hash
  // can never attest after the swap; refuse it as malformed.
  if (manifest.new_measurement != manifest.image_hash) {
    ++stats_->image_refused;
    if (config_.audit)
      config_.audit->append(health::AuditKind::update_refused,
                            manifest.component, Errc::invalid_argument,
                            "measurement/image mismatch");
    return Errc::invalid_argument;
  }

  // 2. Rollback protection at the root of trust: the version must be
  // strictly newer than the monotonic NV counter. A replayed old manifest
  // is validly signed — only the counter stops it.
  const std::string counter = counter_name(manifest.component);
  if (const Status s = counters_.define(counter); !s.ok()) return s;
  auto current = counters_.read(counter);
  if (!current) return current.error();
  if (manifest.version <= *current) {
    ++stats_->rollback_refused;
    if (config_.audit)
      config_.audit->append(health::AuditKind::rollback_refused,
                            manifest.component, Errc::rollback_refused,
                            "version " + std::to_string(manifest.version) +
                                " <= nv " + std::to_string(*current));
    return Errc::rollback_refused;
  }

  // 3. Record what to revert to while the component is still the old one.
  auto previous_image = assembly_.component_image(*ref);
  if (!previous_image) return previous_image.error();
  auto previous_measurement =
      (*comp)->substrate->measurement((*comp)->domain);
  if (!previous_measurement) return previous_measurement.error();

  auto [bank_it, created] = banks_.try_emplace(
      manifest.component, policy->slots, *previous_image, *current);
  SlotBank& bank = bank_it->second;

  Pending pending;
  pending.manifest = manifest;
  pending.state = UpdateState::staging;
  pending.previous_image = std::move(*previous_image);
  pending.previous_measurement = *previous_measurement;
  pending.accepted_at = (*comp)->substrate->machine().now();

  // 4. Stream into the inactive slot while the active one keeps serving.
  if (const Status s = bank.begin_staging(manifest.version); !s.ok())
    return s;
  if (const Status s = transfer(manifest, image, bank); !s.ok()) {
    bank.abort_staging();
    return s;
  }

  // 5. Verify what actually arrived in the slot — not what the caller
  // handed us — against the signed hash. A corrupted transfer is tamper,
  // and the active slot never noticed any of this.
  if (bank.staged_hash() != manifest.image_hash ||
      bank.staged_image().size() != manifest.image_size) {
    bank.abort_staging();
    ++stats_->image_refused;
    if (config_.audit)
      config_.audit->append(health::AuditKind::update_refused,
                            manifest.component, Errc::tamper_detected,
                            "staged bytes != signed hash");
    return Errc::tamper_detected;
  }
  if (const Status s = bank.finish_staging(); !s.ok()) return s;

  ++stats_->staged;
  ++stats_->verified;
  pending.state = UpdateState::verified;
  stamp(manifest.component, trace::SpanPhase::update_stage, image.size());
  pending_[manifest.component] = std::move(pending);
  return Status::success();
}

Status UpdateOrchestrator::arm(const std::string& component) {
  const auto it = pending_.find(component);
  if (it == pending_.end()) return Errc::invalid_argument;
  Pending& pending = it->second;
  if (pending.state != UpdateState::verified) return Errc::invalid_argument;
  const SlotBank& bank = banks_.at(component);
  if (const Status s =
          assembly_.set_component_image(component, bank.staged_image());
      !s.ok())
    return s;
  pending.state = UpdateState::armed;
  return Status::success();
}

Status UpdateOrchestrator::commit(const std::string& component) {
  const auto it = pending_.find(component);
  if (it == pending_.end()) return Errc::invalid_argument;
  Pending& pending = it->second;
  if (pending.state != UpdateState::armed) return Errc::invalid_argument;

  // Flap damping: once the supervisor escalated this component, new swap
  // attempts are refused instead of burning a revert loop forever.
  auto health = supervisor_.health(component);
  if (!health) return health.error();  // commit is supervised by contract
  if (*health == supervisor::Health::degraded ||
      *health == supervisor::Health::halted)
    return Errc::exhausted;

  auto comp = assembly_.component(component);
  if (!comp) return comp.error();
  hw::Machine& machine = (*comp)->substrate->machine();
  const core::RestartPolicy policy =
      (*comp)->manifest.restart.value_or(core::RestartPolicy{});

  // The relaunch must attest to the *new* identity; remember the old
  // expectation for revert.
  if (core::AttestationVerifier* verifier = supervisor_.verifier()) {
    pending.previous_expectation = verifier->expectation(component);
    verifier->expect_measurement(component, pending.manifest.new_measurement);
  }

  // Reboot into the staged slot: kill, then let the supervisor do what it
  // does — confirm the death, relaunch (the assembly's image override now
  // points at the new slot), rebind channels under fresh badges and
  // epochs, and run challenge-response attestation against the manifest's
  // measurement.
  if (const Status s = assembly_.kill_component(component); !s.ok()) return s;
  bool running = false;
  for (std::uint32_t spin = 0; spin < config_.restart_spins; ++spin) {
    (void)supervisor_.tick();
    auto h = supervisor_.health(component);
    if (h && *h == supervisor::Health::running) {
      running = true;
      break;
    }
    if (h && (*h == supervisor::Health::degraded ||
              *h == supervisor::Health::halted))
      break;
    machine.advance(policy.backoff_cycles);
  }
  if (!running) {
    // The swap never came up; restore the old slot immediately. When the
    // supervisor escalated mid-commit (flap damping caught the relaunch
    // itself), surface that as the budget refusal it is.
    do_revert(component, pending);
    auto after = supervisor_.health(component);
    return after && (*after == supervisor::Health::degraded ||
                     *after == supervisor::Health::halted)
               ? Errc::exhausted
               : Errc::timed_out;
  }

  (void)banks_.at(component).swap();
  // Baseline the incident count only now: the intentional kill above opened
  // (and the relaunch closed) a report of its own, which is not a probation
  // failure. Anything past this count is.
  pending.reports_baseline = reports_for(component);
  pending.state = UpdateState::probation;
  pending.probation_left =
      std::max<std::uint32_t>((*comp)->manifest.update->probation_ticks, 1);
  stamp(component, trace::SpanPhase::update_commit,
        pending.manifest.image_size);
  return Status::success();
}

Result<UpdateState> UpdateOrchestrator::probation_tick(
    const std::string& component) {
  const auto it = pending_.find(component);
  if (it == pending_.end()) return Errc::invalid_argument;
  Pending& pending = it->second;
  if (pending.state != UpdateState::probation) return Errc::invalid_argument;

  (void)supervisor_.tick();

  // Probation fails the moment the new incarnation died (a new incident
  // report appeared) or stopped serving (health left `running`).
  auto health = supervisor_.health(component);
  const bool died = reports_for(component) > pending.reports_baseline;
  const bool unhealthy =
      !health || *health != supervisor::Health::running;
  if (died || unhealthy) {
    do_revert(component, pending);
    return pending.state;
  }

  if (--pending.probation_left > 0) return pending.state;

  // Survived probation: the update commits, and only now does the
  // monotonic counter move — this is the point of no rollback.
  auto bumped = counters_.increment(counter_name(component));
  if (!bumped) return bumped.error();
  auto comp = assembly_.component(component);
  const Cycles now =
      comp ? (*comp)->substrate->machine().now() : pending.accepted_at;
  stats_->record_commit(now - pending.accepted_at);
  pending.state = UpdateState::committed;
  pending.previous_expectation.reset();
  return pending.state;
}

void UpdateOrchestrator::do_revert(const std::string& component,
                                   Pending& pending) {
  auto comp = assembly_.component(component);
  const Cycles detected =
      comp ? (*comp)->substrate->machine().now() : pending.accepted_at;

  // Restore identity first: the relaunch below must attest as the OLD
  // component again.
  if (core::AttestationVerifier* verifier = supervisor_.verifier())
    verifier->expect_measurement(component,
                                 pending.previous_expectation.value_or(
                                     pending.previous_measurement));
  (void)assembly_.set_component_image(component, pending.previous_image);
  if (pending.state == UpdateState::probation)
    (void)banks_.at(component).rollback();

  // Direct relaunch into the old slot: revert must work even after the
  // supervisor exhausted its budget on the failing new image.
  (void)assembly_.restart_component(component);

  const Cycles serving =
      comp ? (*comp)->substrate->machine().now() : detected;
  stats_->record_revert(serving - detected);
  if (config_.hub)
    ++config_.hub->recovery(config_.recovery_label)->update_reverts;
  stamp(component, trace::SpanPhase::update_revert,
        pending.manifest.image_size);
  pending.state = UpdateState::reverted;
  pending.previous_expectation.reset();
}

Status UpdateOrchestrator::revert(const std::string& component) {
  const auto it = pending_.find(component);
  if (it == pending_.end()) return Errc::invalid_argument;
  Pending& pending = it->second;
  if (pending.state != UpdateState::armed &&
      pending.state != UpdateState::probation)
    return Errc::invalid_argument;
  do_revert(component, pending);
  return Status::success();
}

std::size_t UpdateOrchestrator::recover() {
  std::size_t reverted = 0;
  for (auto& [component, pending] : pending_) {
    if (pending.state != UpdateState::armed &&
        pending.state != UpdateState::probation)
      continue;
    // The counter never advanced for these, so the old slot is still the
    // newest committed image: fall back to it.
    do_revert(component, pending);
    ++reverted;
  }
  return reverted;
}

UpdateState UpdateOrchestrator::state(const std::string& component) const {
  const auto it = pending_.find(component);
  return it == pending_.end() ? UpdateState::idle : it->second.state;
}

const SlotBank* UpdateOrchestrator::slots(const std::string& component) const {
  const auto it = banks_.find(component);
  return it == banks_.end() ? nullptr : &it->second;
}

}  // namespace lateral::update
