#include "crypto/hmac.h"

#include <cstring>

#include "util/result.h"

namespace lateral::crypto {
namespace {

std::array<std::uint8_t, 64> normalize_key(BytesView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest d = Sha256::hash(key);
    std::memcpy(block.data(), d.data(), d.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }
  return block;
}

}  // namespace

Hmac::Hmac(BytesView key) {
  const auto block = normalize_key(key);
  std::array<std::uint8_t, 64> ipad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad_key_[i] = block[i] ^ 0x5c;
  }
  inner_.update(BytesView(ipad.data(), ipad.size()));
}

void Hmac::update(BytesView data) { inner_.update(data); }

Digest Hmac::finish() {
  const Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(BytesView(opad_key_.data(), opad_key_.size()));
  outer.update(digest_view(inner_digest));
  return outer.finish();
}

Digest hmac_sha256(BytesView key, BytesView message) {
  Hmac ctx(key);
  ctx.update(message);
  return ctx.finish();
}

Digest hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(const Digest& prk, BytesView info, std::size_t length) {
  if (length > 255 * 32) throw Error("hkdf_expand: length too large");
  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Hmac ctx(digest_view(prk));
    ctx.update(t);
    ctx.update(info);
    ctx.update(BytesView(&counter, 1));
    const Digest block = ctx.finish();
    t.assign(block.begin(), block.end());
    const std::size_t take = std::min<std::size_t>(32, length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

HmacDrbg::HmacDrbg(BytesView seed) : key_(32, 0x00), v_(32, 0x01) {
  update_state(seed);
}

void HmacDrbg::update_state(BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    Hmac ctx(key_);
    ctx.update(v_);
    const std::uint8_t zero = 0x00;
    ctx.update(BytesView(&zero, 1));
    ctx.update(provided);
    const Digest k = ctx.finish();
    key_.assign(k.begin(), k.end());
  }
  {
    const Digest v = hmac_sha256(key_, v_);
    v_.assign(v.begin(), v.end());
  }
  if (!provided.empty()) {
    Hmac ctx(key_);
    ctx.update(v_);
    const std::uint8_t one = 0x01;
    ctx.update(BytesView(&one, 1));
    ctx.update(provided);
    const Digest k = ctx.finish();
    key_.assign(k.begin(), k.end());
    const Digest v = hmac_sha256(key_, v_);
    v_.assign(v.begin(), v.end());
  }
}

Bytes HmacDrbg::generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const Digest v = hmac_sha256(key_, v_);
    v_.assign(v.begin(), v.end());
    const std::size_t take = std::min<std::size_t>(32, n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + static_cast<long>(take));
  }
  update_state({});
  return out;
}

void HmacDrbg::reseed(BytesView entropy) { update_state(entropy); }

}  // namespace lateral::crypto
