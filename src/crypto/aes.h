// AES-128 (FIPS 197) block cipher with CTR mode and an encrypt-then-MAC
// authenticated encryption construction (AES-128-CTR + HMAC-SHA256).
//
// This is the memory-encryption engine of the simulated SGX/SEP substrates
// and the record protection of net::SecureChannel and vpfs.
#pragma once

#include <array>

#include "crypto/sha256.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::crypto {

using Aes128Key = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// AES-128 block cipher (encryption direction only; CTR never decrypts).
class Aes128 {
 public:
  explicit Aes128(const Aes128Key& key);

  /// Encrypt a single 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

 private:
  std::array<std::uint32_t, 44> round_keys_;
};

/// AES-128-CTR keystream transform. Encryption and decryption are identical.
/// `nonce` occupies the first 8 bytes of the counter block; the remaining
/// 8 bytes are a big-endian block counter starting at 0.
Bytes aes128_ctr(const Aes128Key& key, std::uint64_t nonce, BytesView data);

/// Authenticated encryption: AES-128-CTR under enc_key, then HMAC-SHA256 of
/// (nonce || aad || ciphertext) under mac_key, truncated to 16 bytes.
struct SealedBox {
  std::uint64_t nonce = 0;
  Bytes ciphertext;
  std::array<std::uint8_t, 16> tag{};
};

class Aead {
 public:
  /// Derives independent encryption and MAC keys from `key_material`
  /// (any length) via HKDF.
  explicit Aead(BytesView key_material);

  SealedBox seal(std::uint64_t nonce, BytesView aad, BytesView plaintext) const;

  /// Errc::verification_failed when the tag does not match.
  Result<Bytes> open(const SealedBox& box, BytesView aad) const;

 private:
  std::array<std::uint8_t, 16> compute_tag(std::uint64_t nonce, BytesView aad,
                                           BytesView ciphertext) const;
  Aes128Key enc_key_;
  Bytes mac_key_;
};

/// Helper: build an Aes128Key from the first 16 bytes of a buffer.
Result<Aes128Key> key_from_bytes(BytesView material);

}  // namespace lateral::crypto
