// RSA signatures (PKCS#1 v1.5-style padding over SHA-256), from scratch.
//
// Attestation quotes, vendor certificate chains and launch-policy code
// signing all use these signatures. Key sizes are configurable: tests use
// 512-bit keys for speed, root/vendor keys default to 1024 bits. These
// parameters are simulation-scale, not deployment advice.
#pragma once

#include "crypto/bignum.h"
#include "crypto/sha256.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::crypto {

class HmacDrbg;

struct RsaPublicKey {
  Bignum n;  // modulus
  Bignum e;  // public exponent (65537)

  /// Stable fingerprint: SHA-256 of the serialized key.
  Digest fingerprint() const;

  /// Wire serialization (length-prefixed n and e).
  Bytes serialize() const;
  static Result<RsaPublicKey> deserialize(BytesView wire);

  bool operator==(const RsaPublicKey&) const = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  Bignum d;  // private exponent

  /// Generate a fresh key pair with an n of `modulus_bits`.
  static RsaKeyPair generate(HmacDrbg& drbg, std::size_t modulus_bits);
};

/// Sign SHA-256(message) with PKCS#1 v1.5-style padding.
Bytes rsa_sign(const RsaKeyPair& key, BytesView message);

/// Verify a signature over `message`. Status with
/// Errc::verification_failed on mismatch.
Status rsa_verify(const RsaPublicKey& key, BytesView message,
                  BytesView signature);

}  // namespace lateral::crypto
